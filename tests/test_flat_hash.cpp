// Unit tests for the flat open-addressing hash table and the in-flight
// sequence ring — the cache-friendly bookkeeping structures behind the
// LLHJ/HSJ hot paths (tombstones, seq indexes, IWS buffers).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/seq_ring.hpp"
#include "common/types.hpp"

namespace sjoin {
namespace {

TEST(FlatMap, InsertFindErase) {
  FlatMap<uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), nullptr);
  EXPECT_TRUE(map.Insert(1, 10));
  EXPECT_FALSE(map.Insert(1, 20));  // duplicate refused
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(*map.Find(1), 10);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_EQ(map.Find(1), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap, GetOrInsertDefaultConstructs) {
  FlatMap<uint64_t, int> map;
  bool inserted = false;
  int& v = map.GetOrInsert(7, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(v, 0);
  v = 42;
  EXPECT_EQ(*map.Find(7), 42);
  int& again = map.GetOrInsert(7, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(again, 42);
}

TEST(FlatMap, SurvivesGrowthAndTombstoneChurn) {
  FlatMap<uint64_t, uint64_t> map;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(99);
  for (int op = 0; op < 50'000; ++op) {
    const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 2000));
    if (rng.Chance(0.55)) {
      const uint64_t val = static_cast<uint64_t>(op);
      EXPECT_EQ(map.Insert(key, val), ref.emplace(key, val).second);
    } else {
      EXPECT_EQ(map.Erase(key), ref.erase(key) > 0);
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    const uint64_t* got = map.Find(k);
    ASSERT_NE(got, nullptr) << "missing key " << k;
    EXPECT_EQ(*got, v);
  }
  std::size_t visited = 0;
  map.ForEach([&](const uint64_t& k, const uint64_t&) {
    EXPECT_TRUE(ref.count(k));
    ++visited;
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatMap, DenseSequentialKeysProbeShort) {
  // Sequence numbers are dense integers; the mixing hash must spread them.
  FlatMap<uint64_t, int> map;
  for (uint64_t k = 0; k < 10'000; ++k) ASSERT_TRUE(map.Insert(k, 1));
  for (uint64_t k = 0; k < 10'000; ++k) ASSERT_NE(map.Find(k), nullptr);
  EXPECT_EQ(map.Find(10'000), nullptr);
}

TEST(FlatSet, BasicLifecycle) {
  FlatSet<Seq> set;
  EXPECT_TRUE(set.Insert(5));
  EXPECT_FALSE(set.Insert(5));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(6));
  EXPECT_TRUE(set.Erase(5));
  EXPECT_FALSE(set.Erase(5));
  EXPECT_TRUE(set.empty());
}

struct Item {
  Seq seq = 0;
  int payload = 0;
};

std::vector<Seq> LiveSeqs(const SeqRing<Item>& ring) {
  std::vector<Seq> out;
  ring.ForEach([&](const Item& item) { out.push_back(item.seq); });
  return out;
}

TEST(SeqRing, FifoOrderAndEraseBySeq) {
  SeqRing<Item> ring;
  for (Seq s = 0; s < 5; ++s) ring.PushBack(Item{s, static_cast<int>(s)});
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(LiveSeqs(ring), (std::vector<Seq>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(ring.Erase(2));   // middle hole
  EXPECT_FALSE(ring.Erase(2));  // already gone
  EXPECT_EQ(LiveSeqs(ring), (std::vector<Seq>{0, 1, 3, 4}));
  EXPECT_TRUE(ring.Erase(0));  // head trim
  EXPECT_TRUE(ring.Erase(4));  // tail trim
  EXPECT_EQ(LiveSeqs(ring), (std::vector<Seq>{1, 3}));
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SeqRing, GrowsWithHolesPreservingOrder) {
  SeqRing<Item> ring;
  Seq next = 0;
  std::vector<Seq> live;
  Rng rng(7);
  for (int op = 0; op < 20'000; ++op) {
    if (live.empty() || rng.Chance(0.6)) {
      ring.PushBack(Item{next, 0});
      live.push_back(next);
      ++next;
    } else {
      // Mostly FIFO (acks), occasionally out of order (expiry purge).
      const std::size_t pick =
          rng.Chance(0.8) ? 0
                          : static_cast<std::size_t>(rng.UniformInt(
                                0, static_cast<int64_t>(live.size()) - 1));
      EXPECT_TRUE(ring.Erase(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(ring.size(), live.size());
  }
  EXPECT_EQ(LiveSeqs(ring), live);
}

TEST(SeqRing, EraseUnknownSeqIsNoop) {
  SeqRing<Item> ring;
  ring.PushBack(Item{1, 0});
  EXPECT_FALSE(ring.Erase(99));
  EXPECT_EQ(ring.size(), 1u);
}

}  // namespace
}  // namespace sjoin
