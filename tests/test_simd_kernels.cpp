// Exhaustive scalar-vs-SIMD equivalence for the packed probe kernels of
// common/simd.hpp, on every dispatch level the host supports:
//  * each kernel against the scalar reference on randomized inputs, with
//    every tail length 0 .. 2*lane_width-1 (lane width 8 for AVX2 i32) plus
//    block-sized and block+1 lengths — the masked-tail contract (bits >= n
//    zero) is checked on every call;
//  * boundary values: exact band edges, INT32_MIN/MAX, zero-width bands,
//    negative zero and exact float bounds (inputs are NaN-free; the scalar
//    predicate and the ordered vector compares agree on all of them);
//  * the dispatch ladder itself: detection, env-independent override
//    clamping, and the kernel-table names;
//  * the fused store scan: VectorStore::MatchBatch (SIMD path, ring
//    wrapped and unwrapped) must produce exactly the generic scalar scan's
//    (probe, query, entry) set on every level, for the paper schema (band
//    int+float lanes, equi) and the int-only test schema.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/schema.hpp"
#include "common/simd.hpp"
#include "llhj/store.hpp"
#include "stream/query_set.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::TR;
using test::TS;



/// Widest vector lane count across kernels (AVX-512 i32: 16); tails are
/// swept to twice this.
constexpr std::size_t kMaxLanes = 16;

/// Lengths that stress the vector body / scalar epilogue boundary.
std::vector<std::size_t> TailLengths() {
  std::vector<std::size_t> ns;
  for (std::size_t n = 0; n < 2 * kMaxLanes; ++n) ns.push_back(n);
  ns.push_back(kSimdBlock - 1);
  ns.push_back(kSimdBlock);
  ns.push_back(kSimdBlock + 1);
  ns.push_back(1000);
  return ns;
}

/// Masks are compared word-for-word INCLUDING the tail bits, which the
/// contract requires to be zero. Buffers are pre-poisoned so a kernel that
/// fails to clear its words is caught.
class MaskBuf {
 public:
  explicit MaskBuf(std::size_t n) : words_(SimdMaskWords(n) + 1, ~uint64_t{0}) {}
  uint64_t* data() { return words_.data(); }
  std::vector<uint64_t> Covered(std::size_t n) const {
    return std::vector<uint64_t>(words_.begin(),
                                 words_.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         SimdMaskWords(n)));
  }
  /// The word past the covered range must never be touched.
  uint64_t Sentinel() const { return words_.back(); }

 private:
  std::vector<uint64_t> words_;
};

void ExpectTailZero(const std::vector<uint64_t>& mask, std::size_t n) {
  if (n % 64 == 0) return;
  const uint64_t tail = mask.back() >> (n % 64);
  EXPECT_EQ(tail, 0u) << "bits >= n must be zero (n=" << n << ")";
}

TEST(SimdDispatch, DetectionAndOverrideClamp) {
  EXPECT_GE(DetectedSimdLevel(), SimdLevel::kScalar);
  // Override never exceeds the detected ceiling.
  const SimdLevel got = OverrideSimdLevel(SimdLevel::kAvx2);
  EXPECT_LE(got, DetectedSimdLevel());
  EXPECT_EQ(ActiveSimdLevel(), got);
  EXPECT_STREQ(ActiveKernels().name, ToString(got));
  OverrideSimdLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  EXPECT_STREQ(ActiveKernels().name, "scalar");
  ClearSimdLevelOverride();
  EXPECT_LE(ActiveSimdLevel(), DetectedSimdLevel());
}

TEST(SimdDispatch, KernelTableNamesMatchLevels) {
  EXPECT_STREQ(KernelsFor(SimdLevel::kScalar).name, "scalar");
#if SJOIN_SIMD_X86
  EXPECT_STREQ(KernelsFor(SimdLevel::kSse2).name, "sse2");
  EXPECT_STREQ(KernelsFor(SimdLevel::kAvx2).name, "avx2");
  EXPECT_STREQ(KernelsFor(SimdLevel::kAvx512).name, "avx512");
#endif
}

// -- Per-kernel randomized equivalence ---------------------------------------

TEST(SimdKernels, RangeI32MatchesScalar) {
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    Rng rng(1 + static_cast<uint64_t>(level));
    for (std::size_t n : TailLengths()) {
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<int32_t> v(n);
        for (auto& x : v) x = static_cast<int32_t>(rng.UniformInt(-50, 50));
        const int32_t lo = static_cast<int32_t>(rng.UniformInt(-60, 60));
        const int32_t hi = lo + static_cast<int32_t>(rng.UniformInt(-5, 40));
        MaskBuf want(n), got(n);
        ref.range_i32(v.data(), n, lo, hi, want.data());
        k.range_i32(v.data(), n, lo, hi, got.data());
        ASSERT_EQ(want.Covered(n), got.Covered(n))
            << ToString(level) << " n=" << n << " lo=" << lo << " hi=" << hi;
        ExpectTailZero(got.Covered(n), n);
        EXPECT_EQ(got.Sentinel(), ~uint64_t{0});
      }
    }
  }
}

TEST(SimdKernels, RangeI32BoundaryValues) {
  constexpr int32_t kMin = std::numeric_limits<int32_t>::min();
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  const std::vector<int32_t> v = {kMin, kMin + 1, -1, 0, 1, kMax - 1, kMax,
                                  42,   42,       42};
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    for (auto [lo, hi] : std::vector<std::pair<int32_t, int32_t>>{
             {kMin, kMax},  // everything
             {kMax, kMin},  // empty (inverted)
             {42, 42},      // exact point
             {kMin, kMin},
             {kMax, kMax},
             {0, 0}}) {
      MaskBuf want(v.size()), got(v.size());
      ref.range_i32(v.data(), v.size(), lo, hi, want.data());
      k.range_i32(v.data(), v.size(), lo, hi, got.data());
      ASSERT_EQ(want.Covered(v.size()), got.Covered(v.size()))
          << ToString(level) << " lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(SimdKernels, RangeF32MatchesScalar) {
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    Rng rng(7 + static_cast<uint64_t>(level));
    for (std::size_t n : TailLengths()) {
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<float> v(n);
        for (auto& x : v) {
          x = static_cast<float>(rng.UniformInt(-400, 400)) * 0.25f;
        }
        const float lo = static_cast<float>(rng.UniformInt(-400, 400)) * 0.25f;
        const float hi = lo + static_cast<float>(rng.UniformInt(-20, 160)) * 0.25f;
        MaskBuf want(n), got(n);
        ref.range_f32(v.data(), n, lo, hi, want.data());
        k.range_f32(v.data(), n, lo, hi, got.data());
        ASSERT_EQ(want.Covered(n), got.Covered(n))
            << ToString(level) << " n=" << n << " lo=" << lo << " hi=" << hi;
        ExpectTailZero(got.Covered(n), n);
      }
    }
  }
}

TEST(SimdKernels, RangeF32BoundaryValues) {
  // Exact bounds, negative zero, denormal-free extremes. NaN-free per the
  // kernel contract (ordered compares and the scalar >= / <= agree anyway).
  const std::vector<float> v = {-0.0f, 0.0f,  1.0f, -1.0f, 10.0f,
                                10.0f, 9.99f, 1e30f, -1e30f, 0.5f};
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    for (auto [lo, hi] : std::vector<std::pair<float, float>>{
             {0.0f, 0.0f},      // negative zero == zero
             {-0.0f, 0.0f},
             {10.0f, 10.0f},    // exact band edge
             {-1e30f, 1e30f},
             {1.0f, -1.0f}}) {  // inverted: empty
      MaskBuf want(v.size()), got(v.size());
      ref.range_f32(v.data(), v.size(), lo, hi, want.data());
      k.range_f32(v.data(), v.size(), lo, hi, got.data());
      ASSERT_EQ(want.Covered(v.size()), got.Covered(v.size()))
          << ToString(level) << " lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(SimdKernels, BandEntryI32MatchesScalar) {
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    Rng rng(13 + static_cast<uint64_t>(level));
    for (std::size_t n : TailLengths()) {
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<int32_t> v(n);
        for (auto& x : v) x = static_cast<int32_t>(rng.UniformInt(-100, 100));
        const int32_t band = static_cast<int32_t>(rng.UniformInt(0, 20));
        const int32_t probe = static_cast<int32_t>(rng.UniformInt(-120, 120));
        MaskBuf want(n), got(n);
        ref.band_entry_i32(v.data(), n, band, probe, want.data());
        k.band_entry_i32(v.data(), n, band, probe, got.data());
        ASSERT_EQ(want.Covered(n), got.Covered(n))
            << ToString(level) << " n=" << n << " band=" << band
            << " probe=" << probe;
        ExpectTailZero(got.Covered(n), n);
      }
    }
  }
}

TEST(SimdKernels, BandEntryF32MatchesScalar) {
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    Rng rng(17 + static_cast<uint64_t>(level));
    for (std::size_t n : TailLengths()) {
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<float> v(n);
        for (auto& x : v) {
          x = static_cast<float>(rng.UniformInt(-1000, 1000)) * 0.1f;
        }
        const float band = static_cast<float>(rng.UniformInt(0, 100)) * 0.1f;
        const float probe =
            static_cast<float>(rng.UniformInt(-1100, 1100)) * 0.1f;
        MaskBuf want(n), got(n);
        ref.band_entry_f32(v.data(), n, band, probe, want.data());
        k.band_entry_f32(v.data(), n, band, probe, got.data());
        ASSERT_EQ(want.Covered(n), got.Covered(n))
            << ToString(level) << " n=" << n << " band=" << band
            << " probe=" << probe;
        ExpectTailZero(got.Covered(n), n);
      }
    }
  }
}

TEST(SimdKernels, BandEntryI32WrapsAtInt32Edges) {
  // The band arithmetic is defined as two's-complement wraparound (matching
  // _mm*_add/sub_epi32); entries at the int32 edges must produce the same
  // mask on every level instead of tripping signed-overflow UB.
  constexpr int32_t kMin = std::numeric_limits<int32_t>::min();
  constexpr int32_t kMax = std::numeric_limits<int32_t>::max();
  const std::vector<int32_t> v = {kMax, kMax - 1, kMin, kMin + 1, 0,
                                  kMax, kMin,     1,    -1};
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    for (int32_t band : {0, 1, 100, kMax}) {
      for (int32_t probe : {kMin, -1, 0, 1, kMax}) {
        MaskBuf want(v.size()), got(v.size());
        ref.band_entry_i32(v.data(), v.size(), band, probe, want.data());
        k.band_entry_i32(v.data(), v.size(), band, probe, got.data());
        ASSERT_EQ(want.Covered(v.size()), got.Covered(v.size()))
            << ToString(level) << " band=" << band << " probe=" << probe;
      }
    }
  }
}

TEST(SimdKernels, BandEntryExactEdges) {
  // probe exactly on v - band and v + band must match (>= / <=).
  const std::vector<int32_t> vi = {10, 10, 10, 20};
  const std::vector<float> vf = {10.0f, 10.0f, 10.0f, 20.0f};
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    MaskBuf mi(vi.size());
    k.band_entry_i32(vi.data(), vi.size(), 3, 7, mi.data());  // 7 == 10-3
    EXPECT_EQ(mi.Covered(vi.size())[0] & 0xfu, 0x7u) << ToString(level);
    MaskBuf mf(vf.size());
    k.band_entry_f32(vf.data(), vf.size(), 3.0f, 13.0f, mf.data());  // 10+3
    EXPECT_EQ(mf.Covered(vf.size())[0] & 0xfu, 0x7u) << ToString(level);
  }
}

TEST(SimdKernels, EqI32MatchesScalar) {
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    Rng rng(23 + static_cast<uint64_t>(level));
    for (std::size_t n : TailLengths()) {
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<int32_t> v(n);
        for (auto& x : v) x = static_cast<int32_t>(rng.UniformInt(0, 8));
        const int32_t key = static_cast<int32_t>(rng.UniformInt(0, 10));
        MaskBuf want(n), got(n);
        ref.eq_i32(v.data(), n, key, want.data());
        k.eq_i32(v.data(), n, key, got.data());
        ASSERT_EQ(want.Covered(n), got.Covered(n))
            << ToString(level) << " n=" << n << " key=" << key;
        ExpectTailZero(got.Covered(n), n);
      }
    }
  }
}

TEST(SimdKernels, EqU64MatchesScalar) {
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    Rng rng(29 + static_cast<uint64_t>(level));
    for (std::size_t n : TailLengths()) {
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<uint64_t> v(n);
        for (auto& x : v) {
          // Values whose 32-bit halves collide stress the SSE2 half-compare.
          x = static_cast<uint64_t>(rng.UniformInt(0, 3)) << 32 |
              static_cast<uint64_t>(rng.UniformInt(0, 3));
        }
        const uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 3)) << 32 |
                             static_cast<uint64_t>(rng.UniformInt(0, 3));
        MaskBuf want(n), got(n);
        ref.eq_u64(v.data(), n, key, want.data());
        k.eq_u64(v.data(), n, key, got.data());
        ASSERT_EQ(want.Covered(n), got.Covered(n))
            << ToString(level) << " n=" << n << " key=" << key;
        ExpectTailZero(got.Covered(n), n);
      }
    }
  }
}

// -- Grouped-equality kernels (lane-grouped hash store probe) ----------------
//
// Occupancy bytes sweep all-dead (0x00 — an erased-out / all-tombstone
// group must yield NO candidates no matter what the key lanes hold),
// fully-live (0xff) and random patterns; key lanes use colliding 32-bit
// halves to stress the SSE2 half-compare trick.

TEST(SimdKernels, EqGroupsI64MatchesScalar) {
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    Rng rng(31 + static_cast<uint64_t>(level));
    for (std::size_t n : TailLengths()) {
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<int64_t> keys(n);
        for (auto& x : keys) {
          x = static_cast<int64_t>(rng.UniformInt(0, 3)) << 32 |
              static_cast<int64_t>(rng.UniformInt(0, 3));
        }
        std::vector<uint8_t> full((n + 7) / 8);
        for (auto& b : full) {
          b = trial == 0   ? uint8_t{0x00}
              : trial == 1 ? uint8_t{0xff}
                           : static_cast<uint8_t>(rng.UniformInt(0, 255));
        }
        const int64_t key = static_cast<int64_t>(rng.UniformInt(0, 3)) << 32 |
                            static_cast<int64_t>(rng.UniformInt(0, 3));
        MaskBuf want(n), got(n);
        ref.eq_groups_i64(keys.data(), full.data(), n, key, want.data());
        k.eq_groups_i64(keys.data(), full.data(), n, key, got.data());
        ASSERT_EQ(want.Covered(n), got.Covered(n))
            << ToString(level) << " n=" << n << " trial=" << trial;
        ExpectTailZero(got.Covered(n), n);
        EXPECT_EQ(got.Sentinel(), ~uint64_t{0});
      }
    }
  }
}

TEST(SimdKernels, EqGroupsI32MatchesScalar) {
  const SimdKernels& ref = KernelsFor(SimdLevel::kScalar);
  for (SimdLevel level : SupportedSimdLevels()) {
    const SimdKernels& k = KernelsFor(level);
    Rng rng(37 + static_cast<uint64_t>(level));
    for (std::size_t n : TailLengths()) {
      for (int trial = 0; trial < 20; ++trial) {
        std::vector<int32_t> keys(n);
        for (auto& x : keys) x = static_cast<int32_t>(rng.UniformInt(-4, 4));
        std::vector<uint8_t> full((n + 7) / 8);
        for (auto& b : full) {
          b = trial == 0   ? uint8_t{0x00}
              : trial == 1 ? uint8_t{0xff}
                           : static_cast<uint8_t>(rng.UniformInt(0, 255));
        }
        const int32_t key = static_cast<int32_t>(rng.UniformInt(-4, 4));
        MaskBuf want(n), got(n);
        ref.eq_groups_i32(keys.data(), full.data(), n, key, want.data());
        k.eq_groups_i32(keys.data(), full.data(), n, key, got.data());
        ASSERT_EQ(want.Covered(n), got.Covered(n))
            << ToString(level) << " n=" << n << " trial=" << trial;
        ExpectTailZero(got.Covered(n), n);
        EXPECT_EQ(got.Sentinel(), ~uint64_t{0});
      }
    }
  }
}

// -- Fused store scan: MatchBatch across dispatch levels ---------------------

/// Guard that restores the startup dispatch selection.
struct LevelGuard {
  ~LevelGuard() { ClearSimdLevelOverride(); }
};

using Crossing = std::tuple<std::size_t, QueryId, Seq>;  // (probe j, q, seq)

template <bool kProbeIsLeft, typename Store, typename Pred, typename ProbeT>
std::multiset<Crossing> CollectMatches(const Store& store,
                                       const QuerySet<Pred>& queries,
                                       const std::vector<Stamped<ProbeT>>& ps) {
  std::multiset<Crossing> out;
  store.template MatchBatch<kProbeIsLeft>(
      queries, ps.data(), ps.size(),
      [&](std::size_t j, QueryId q, const auto& entry) {
        out.insert({j, q, entry.tuple.seq});
      });
  return out;
}

/// The generic scalar oracle: entry-major loop + QuerySet::Match.
template <bool kProbeIsLeft, typename Store, typename Pred, typename ProbeT>
std::multiset<Crossing> OracleMatches(const Store& store,
                                      const QuerySet<Pred>& queries,
                                      const std::vector<Stamped<ProbeT>>& ps) {
  std::multiset<Crossing> out;
  store.ForEach(0, [&](const auto& entry) {
    for (std::size_t j = 0; j < ps.size(); ++j) {
      queries.template MatchOriented<kProbeIsLeft>(
          ps[j].value, entry.tuple.value,
          [&](QueryId q) { out.insert({j, q, entry.tuple.seq}); });
    }
  });
  return out;
}

TEST(SimdMatchBatch, PaperSchemaBandIdenticalAcrossLevels) {
  LevelGuard guard;
  Rng rng(99);
  // Ring with wrap: insert past the grow boundary, expire a prefix.
  VectorStore<STuple> store;
  Seq seq = 0;
  for (int i = 0; i < 700; ++i) {
    STuple s;
    s.a = static_cast<int32_t>(rng.UniformInt(1, 200));
    s.b = static_cast<float>(rng.UniformInt(1, 200));
    store.Insert(Stamped<STuple>{s, seq++, 0, 0}, false);
  }
  for (Seq e = 0; e < 300; ++e) ASSERT_TRUE(store.EraseSeq(e));
  for (int i = 0; i < 400; ++i) {  // wraps the ring
    STuple s;
    s.a = static_cast<int32_t>(rng.UniformInt(1, 200));
    s.b = static_cast<float>(rng.UniformInt(1, 200));
    store.Insert(Stamped<STuple>{s, seq++, 0, 0}, false);
  }
  QuerySet<BandPredicate> queries(std::vector<BandPredicate>{
      BandPredicate{10, 10.0f}, BandPredicate{25, 3.0f},
      BandPredicate{0, 200.0f}});
  std::vector<Stamped<RTuple>> probes;
  for (std::size_t j = 0; j < 7; ++j) {
    RTuple r;
    r.x = static_cast<int32_t>(rng.UniformInt(1, 200));
    r.y = static_cast<float>(rng.UniformInt(1, 200));
    probes.push_back(Stamped<RTuple>{r, j, 0, 0});
  }
  const auto oracle = OracleMatches<true>(store, queries, probes);
  ASSERT_FALSE(oracle.empty());
  for (SimdLevel level : SupportedSimdLevels()) {
    OverrideSimdLevel(level);
    EXPECT_EQ(CollectMatches<true>(store, queries, probes), oracle)
        << ToString(level);
  }
}

TEST(SimdMatchBatch, PaperSchemaProbeBoundsDirectionIdentical) {
  LevelGuard guard;
  Rng rng(101);
  VectorStore<RTuple> store;
  for (Seq seq = 0; seq < 500; ++seq) {
    RTuple r;
    r.x = static_cast<int32_t>(rng.UniformInt(1, 100));
    r.y = static_cast<float>(rng.UniformInt(1, 100));
    store.Insert(Stamped<RTuple>{r, seq, 0, 0}, rng.Chance(0.5));
  }
  QuerySet<BandPredicate> queries(std::vector<BandPredicate>{
      BandPredicate{10, 10.0f}, BandPredicate{50, 50.0f}});
  std::vector<Stamped<STuple>> probes;
  for (std::size_t j = 0; j < 5; ++j) {
    STuple s;
    s.a = static_cast<int32_t>(rng.UniformInt(1, 100));
    s.b = static_cast<float>(rng.UniformInt(1, 100));
    probes.push_back(Stamped<STuple>{s, j, 0, 0});
  }
  const auto oracle = OracleMatches<false>(store, queries, probes);
  ASSERT_FALSE(oracle.empty());
  for (SimdLevel level : SupportedSimdLevels()) {
    OverrideSimdLevel(level);
    EXPECT_EQ(CollectMatches<false>(store, queries, probes), oracle)
        << ToString(level);
  }
}

TEST(SimdMatchBatch, PaperSchemaEquiIdenticalAcrossLevels) {
  LevelGuard guard;
  Rng rng(103);
  VectorStore<STuple> store;
  for (Seq seq = 0; seq < 300; ++seq) {
    STuple s;
    s.a = static_cast<int32_t>(rng.UniformInt(1, 20));
    store.Insert(Stamped<STuple>{s, seq, 0, 0}, false);
  }
  QuerySet<EquiPredicate> queries{EquiPredicate{}};
  std::vector<Stamped<RTuple>> probes;
  for (std::size_t j = 0; j < 6; ++j) {
    RTuple r;
    r.x = static_cast<int32_t>(rng.UniformInt(1, 20));
    probes.push_back(Stamped<RTuple>{r, j, 0, 0});
  }
  const auto oracle = OracleMatches<true>(store, queries, probes);
  ASSERT_FALSE(oracle.empty());
  for (SimdLevel level : SupportedSimdLevels()) {
    OverrideSimdLevel(level);
    EXPECT_EQ(CollectMatches<true>(store, queries, probes), oracle)
        << ToString(level);
  }
}

TEST(SimdMatchBatch, TestSchemaIntOnlyLanesIdenticalAcrossLevels) {
  LevelGuard guard;
  Rng rng(107);
  VectorStore<TS> store;
  for (Seq seq = 0; seq < 333; ++seq) {
    store.Insert(
        Stamped<TS>{TS{static_cast<int32_t>(rng.UniformInt(1, 12)), 0},
                    seq, 0, 0},
        false);
  }
  QuerySet<test::KeyBand> queries(
      std::vector<test::KeyBand>{test::KeyBand{1}, test::KeyBand{3}});
  std::vector<Stamped<TR>> probes;
  for (std::size_t j = 0; j < 9; ++j) {
    probes.push_back(Stamped<TR>{
        TR{static_cast<int32_t>(rng.UniformInt(1, 12)), 0}, j, 0, 0});
  }
  const auto oracle = OracleMatches<true>(store, queries, probes);
  ASSERT_FALSE(oracle.empty());
  for (SimdLevel level : SupportedSimdLevels()) {
    OverrideSimdLevel(level);
    EXPECT_EQ(CollectMatches<true>(store, queries, probes), oracle)
        << ToString(level);
  }
}

// The grouped equi store's batched probe (gather keys -> prefetch groups ->
// 8-lane group scans -> Seq-sorted emission) must reproduce the chain-walk
// baseline's crossings exactly on every dispatch level. ChainHashStore at
// whatever level (its probe path is scalar pointer chasing) is the oracle;
// churn leaves tombstoned lanes behind so the scan crosses dead groups.
TEST(SimdMatchBatch, GroupedHashStoreIdenticalAcrossLevelsAndChainOracle) {
  LevelGuard guard;
  Rng rng(113);
  HashStore<TS, test::TSKey, test::TRKey> grouped;
  ChainHashStore<TS, test::TSKey, test::TRKey> chain;
  std::vector<Seq> live;
  Seq seq = 0;
  for (int step = 0; step < 1200; ++step) {
    if (live.empty() || rng.Chance(0.6)) {
      const Stamped<TS> e{
          TS{static_cast<int32_t>(rng.UniformInt(1, 40)), step}, seq, 0, 0};
      grouped.Insert(e, rng.Chance(0.3));
      chain.Insert(e, rng.Chance(0.3));
      live.push_back(seq++);
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(grouped.EraseSeq(live[pick]));
      ASSERT_TRUE(chain.EraseSeq(live[pick]));
      live[pick] = live.back();
      live.pop_back();
    }
  }
  ASSERT_EQ(grouped.size(), chain.size());
  QuerySet<test::KeyEq> queries{test::KeyEq{}};
  std::vector<Stamped<TR>> probes;
  for (std::size_t j = 0; j < 25; ++j) {
    // Keys 41..44 are absent: the batch must also agree on zero-hit probes.
    probes.push_back(Stamped<TR>{
        TR{static_cast<int32_t>(rng.UniformInt(1, 44)), 0}, j, 0, 0});
  }
  const auto oracle = CollectMatches<true>(chain, queries, probes);
  ASSERT_FALSE(oracle.empty());
  for (SimdLevel level : SupportedSimdLevels()) {
    OverrideSimdLevel(level);
    EXPECT_EQ(CollectMatches<true>(grouped, queries, probes), oracle)
        << ToString(level);
  }
}

TEST(SimdMatchBatch, EmptyStoreAndEmptyProbesAreNoops) {
  LevelGuard guard;
  VectorStore<STuple> store;
  QuerySet<BandPredicate> queries{BandPredicate{}};
  std::vector<Stamped<RTuple>> none;
  for (SimdLevel level : SupportedSimdLevels()) {
    OverrideSimdLevel(level);
    EXPECT_TRUE(CollectMatches<true>(store, queries, none).empty());
    store.Insert(Stamped<STuple>{STuple{}, 0, 0, 0}, false);
    EXPECT_TRUE(CollectMatches<true>(store, queries, none).empty());
    ASSERT_TRUE(store.EraseSeq(0));
  }
}

// The Seq lane drives the packed expiry search; erases through it must stay
// consistent with the entry ring on every level (including ring wrap).
TEST(SimdMatchBatch, SeqLaneEraseConsistentAcrossLevels) {
  LevelGuard guard;
  for (SimdLevel level : SupportedSimdLevels()) {
    OverrideSimdLevel(level);
    Rng rng(1000 + static_cast<uint64_t>(level));
    VectorStore<TR> store;
    std::vector<Seq> live;
    Seq next = 0;
    for (int op = 0; op < 3000; ++op) {
      if (live.empty() || rng.Chance(0.55)) {
        store.Insert(Stamped<TR>{TR{1, 0}, next, 0, 0}, false);
        live.push_back(next++);
      } else {
        // Mostly head, sometimes middle/tail: exercises the lane shifts.
        const std::size_t pick =
            rng.Chance(0.7) ? 0
                            : static_cast<std::size_t>(rng.UniformInt(
                                  0, static_cast<int64_t>(live.size()) - 1));
        ASSERT_TRUE(store.EraseSeq(live[pick]));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      ASSERT_EQ(store.size(), live.size());
      ASSERT_FALSE(store.EraseSeq(next + 7));  // absent
    }
    std::vector<Seq> got;
    store.ForEach(0, [&](const StoreEntry<TR>& e) {
      got.push_back(e.tuple.seq);
    });
    EXPECT_EQ(got, live) << ToString(level);
  }
}

}  // namespace
}  // namespace sjoin
