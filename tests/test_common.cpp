// Unit tests for src/common: fixed strings, RNG, schemas, the latency
// model, and basic type helpers.
#include <gtest/gtest.h>

#include <set>

#include "common/fixed_string.hpp"
#include "common/rng.hpp"
#include "common/schema.hpp"
#include "common/types.hpp"
#include "stream/latency_model.hpp"

namespace sjoin {
namespace {

TEST(FixedString, DefaultIsEmpty) {
  FixedString<8> s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.str(), "");
}

TEST(FixedString, AssignAndRead) {
  FixedString<8> s;
  s.Assign("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.str(), "hello");
  EXPECT_EQ(s.view(), "hello");
}

TEST(FixedString, TruncatesAtCapacity) {
  FixedString<4> s("abcdefgh");
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.str(), "abcd");
}

TEST(FixedString, ExactCapacityNoNul) {
  FixedString<4> s("abcd");
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.str(), "abcd");
}

TEST(FixedString, ReassignShorterClearsTail) {
  FixedString<8> s("longtext");
  s.Assign("ab");
  EXPECT_EQ(s.str(), "ab");
  FixedString<8> t("ab");
  EXPECT_EQ(s, t);
}

TEST(FixedString, Equality) {
  FixedString<8> a("x"), b("x"), c("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 17);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Types, OppositeSide) {
  EXPECT_EQ(Opposite(StreamSide::kR), StreamSide::kS);
  EXPECT_EQ(Opposite(StreamSide::kS), StreamSide::kR);
}

TEST(Types, SideNames) {
  EXPECT_STREQ(ToString(StreamSide::kR), "R");
  EXPECT_STREQ(ToString(StreamSide::kS), "S");
}

TEST(Schema, BandPredicateMatchesInsideBand) {
  BandPredicate pred;
  RTuple r;
  r.x = 100;
  r.y = 200.0f;
  STuple s;
  s.a = 105;
  s.b = 195.0f;
  EXPECT_TRUE(pred(r, s));
}

TEST(Schema, BandPredicateRejectsOutsideX) {
  BandPredicate pred;
  RTuple r;
  r.x = 100;
  r.y = 200.0f;
  STuple s;
  s.a = 111;  // 11 > 10
  s.b = 200.0f;
  EXPECT_FALSE(pred(r, s));
}

TEST(Schema, BandPredicateRejectsOutsideY) {
  BandPredicate pred;
  RTuple r;
  r.x = 100;
  r.y = 200.0f;
  STuple s;
  s.a = 100;
  s.b = 211.0f;
  EXPECT_FALSE(pred(r, s));
}

TEST(Schema, BandBoundaryIsInclusive) {
  BandPredicate pred;
  RTuple r;
  r.x = 100;
  r.y = 200.0f;
  STuple s;
  s.a = 110;
  s.b = 190.0f;
  EXPECT_TRUE(pred(r, s));  // exactly +/-10
}

TEST(Schema, EquiPredicate) {
  EquiPredicate pred;
  RTuple r;
  r.x = 42;
  STuple s;
  s.a = 42;
  EXPECT_TRUE(pred(r, s));
  s.a = 43;
  EXPECT_FALSE(pred(r, s));
}

TEST(Schema, KeyExtractors) {
  RTuple r;
  r.x = 7;
  STuple s;
  s.a = 9;
  EXPECT_EQ(RKey{}(r), 7);
  EXPECT_EQ(SKey{}(s), 9);
}

TEST(LatencyModel, SymmetricWindows) {
  // |W_R| = |W_S| = W  =>  bound = W/2 (paper: "expected maximum is 1/2 W").
  EXPECT_DOUBLE_EQ(HsjMaxLatencyBound(200.0, 200.0), 100.0);
}

TEST(LatencyModel, AsymmetricWindowsFig5b) {
  // |W_R| = 100 s, |W_S| = 200 s => 66.6 s (paper Section 3.2).
  EXPECT_NEAR(HsjMaxLatencyBound(100.0, 200.0), 66.66, 0.01);
}

TEST(LatencyModel, ZeroWindow) {
  EXPECT_DOUBLE_EQ(HsjMaxLatencyBound(0.0, 200.0), 0.0);
}

TEST(LatencyModel, MeetingPointEqualWindows) {
  EXPECT_DOUBLE_EQ(HsjEqualTimestampMeetingPoint(100.0, 100.0), 0.5);
}

TEST(LatencyModel, MeetingPointSkewsTowardSmallerWindow) {
  // |W_S| smaller => alpha = WS/(WR+WS) < 1/2.
  EXPECT_LT(HsjEqualTimestampMeetingPoint(200.0, 100.0), 0.5);
}

}  // namespace
}  // namespace sjoin
