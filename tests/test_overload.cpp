// Latency-budget overload control (DESIGN.md Section 12).
//
// The invariant under test everywhere here: shedding happens AT INGEST
// ONLY, and every gap it tears into the arrival sequence is accounted for
// exactly — the union of all delivered OnLoss bounds (side, first_seq,
// count) equals the generator-side ground-truth set of shed sequence
// numbers, per side, with no overlap. On top of that the join stays exact
// over what was admitted: the result set equals the oracle run over the
// shed-filtered input, punctuations stay safe and monotone, and the
// anomaly counters stay zero. All four engines are held to the contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "baseline/kang_join.hpp"
#include "core/join_session.hpp"
#include "llhj/llhj_pipeline.hpp"
#include "stream/admission.hpp"
#include "stream/latency_model.hpp"

#include "schedule_fuzzer.hpp"
#include "test_util.hpp"

namespace sjoin {
namespace {

using test::FuzzOptions;
using test::KeyEq;
using test::MakeRandomTrace;
using test::RunFuzzedSchedule;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

// -- Policy knob parsing -----------------------------------------------------

TEST(OverloadPolicy, ParseRoundTripsEveryPolicy) {
  for (OverloadPolicy p :
       {OverloadPolicy::kNone, OverloadPolicy::kDropNewest,
        OverloadPolicy::kDropOldest, OverloadPolicy::kSample}) {
    EXPECT_EQ(ParseOverloadPolicy(ToString(p)), p);
  }
}

TEST(OverloadPolicy, ParseNamesTheOffendingValue) {
  try {
    ParseOverloadPolicy("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("drop_newest"), std::string::npos)
        << "message should list the valid policies: " << msg;
  }
}

// -- Projection closed form --------------------------------------------------

TEST(AdmissionProjection, WaitsAddAndQueueingTakesTheMax) {
  // Pipeline EWMA dominates an empty queue.
  EXPECT_EQ(ProjectedAdmissionLatencyNs(0, 500, 0, 100), 500);
  // Queueing dominates once backlog * service exceeds the EWMA (the EWMA
  // already contains steady-state queueing; max, not sum, avoids counting
  // it twice).
  EXPECT_EQ(ProjectedAdmissionLatencyNs(0, 500, 10, 100), 1000);
  // Time already waited at ingest always adds.
  EXPECT_EQ(ProjectedAdmissionLatencyNs(300, 500, 10, 100), 1300);
  // Clock skew must not produce negative waits.
  EXPECT_EQ(ProjectedAdmissionLatencyNs(-50, 500, 0, 100), 500);
}

// -- Gap accounting ----------------------------------------------------------

TEST(AdmissionController, CoalescesAdjacentShedsIntoOneGap) {
  AdmissionController adm;
  adm.RecordShed(StreamSide::kR, 4);
  adm.RecordShed(StreamSide::kR, 5);
  adm.RecordShed(StreamSide::kR, 6);
  adm.RecordShed(StreamSide::kR, 9);  // non-adjacent: new gap
  adm.RecordShed(StreamSide::kS, 0);

  EXPECT_EQ(adm.shed_count(StreamSide::kR), 4u);
  EXPECT_EQ(adm.shed_count(StreamSide::kS), 1u);

  LossBound gap;
  ASSERT_TRUE(adm.TakeGap(StreamSide::kR, &gap));
  EXPECT_EQ(gap.first_seq, 4u);
  EXPECT_EQ(gap.count, 3u);
  ASSERT_TRUE(adm.TakeGap(StreamSide::kR, &gap));
  EXPECT_EQ(gap.first_seq, 9u);
  EXPECT_EQ(gap.count, 1u);
  EXPECT_FALSE(adm.TakeGap(StreamSide::kR, &gap));
  ASSERT_TRUE(adm.TakeGap(StreamSide::kS, &gap));
  EXPECT_EQ(gap.side, StreamSide::kS);
  EXPECT_EQ(gap.first_seq, 0u);
  EXPECT_EQ(gap.count, 1u);
}

// -- Shared ground-truth helpers ---------------------------------------------

/// Deterministic shed predicates exercised against every path: a prefix, a
/// suffix, and a pseudo-random subset (Knuth multiplicative hash).
enum class ShedPattern { kPrefix, kSuffix, kSubset };

bool GroundTruthShed(ShedPattern pattern, StreamSide side, Seq seq,
                     Seq side_count) {
  switch (pattern) {
    case ShedPattern::kPrefix:
      return seq < side_count / 4;
    case ShedPattern::kSuffix:
      return seq >= (3 * side_count) / 4;
    case ShedPattern::kSubset:
      return ((seq * 2654435761u) ^ (side == StreamSide::kR ? 0u : 0x9e37u)) %
                 3 ==
             0;
  }
  return false;
}

/// The input the pipeline should effectively have seen: shed arrivals AND
/// the expiries referencing them removed (the windows never held them).
template <typename Pred>
DriverScript<TR, TS> FilterScript(const DriverScript<TR, TS>& script,
                                  Pred shed) {
  DriverScript<TR, TS> out;
  out.r_count = script.r_count;
  out.s_count = script.s_count;
  for (const auto& event : script.events) {
    StreamSide side = StreamSide::kR;
    bool has_seq = true;
    switch (event.op) {
      case DriverOp::kArriveR:
      case DriverOp::kExpireR:
        side = StreamSide::kR;
        break;
      case DriverOp::kArriveS:
      case DriverOp::kExpireS:
        side = StreamSide::kS;
        break;
      default:
        has_seq = false;
        break;
    }
    if (has_seq && shed(side, event.seq)) continue;
    out.events.push_back(event);
  }
  return out;
}

/// Expands delivered loss bounds into per-side seq sets, asserting that no
/// sequence number is reported lost twice.
void ExpandLosses(const std::vector<LossBound>& losses,
                  std::set<Seq>* lost_r, std::set<Seq>* lost_s) {
  for (const LossBound& bound : losses) {
    auto* dst = bound.side == StreamSide::kR ? lost_r : lost_s;
    for (uint64_t i = 0; i < bound.count; ++i) {
      const auto inserted = dst->insert(bound.first_seq + i);
      EXPECT_TRUE(inserted.second)
          << "seq " << bound.first_seq + i << " reported lost twice";
    }
  }
}

template <typename Pred>
void GroundTruthSets(const DriverScript<TR, TS>& script, Pred shed,
                     std::set<Seq>* shed_r, std::set<Seq>* shed_s) {
  for (const auto& event : script.events) {
    if (event.op == DriverOp::kArriveR &&
        shed(StreamSide::kR, event.seq)) {
      shed_r->insert(event.seq);
    } else if (event.op == DriverOp::kArriveS &&
               shed(StreamSide::kS, event.seq)) {
      shed_s->insert(event.seq);
    }
  }
}

// -- Feeder-path fuzz: exactness + accounting under adversarial schedules ----

class OverloadFuzz
    : public ::testing::TestWithParam<std::tuple<ShedPattern, uint64_t>> {};

TEST_P(OverloadFuzz, ExactLossAccountingUnderAdversarialSchedules) {
  const auto [pattern, seed] = GetParam();

  TraceConfig trace_config;
  trace_config.events = 240;
  trace_config.key_domain = 5;
  trace_config.max_gap_us = 3;
  auto trace = MakeRandomTrace(seed * 577 + 29, trace_config);
  auto script =
      BuildDriverScript(trace, WindowSpec::Count(22), WindowSpec::Count(17));

  const auto shed = [&](StreamSide side, Seq seq) {
    return GroundTruthShed(
        pattern, side, seq,
        side == StreamSide::kR ? script.r_count : script.s_count);
  };
  auto oracle = RunKangOracle<TR, TS, KeyEq>(FilterScript(script, shed));

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;
  options.channel_capacity = 64;
  options.punctuate = true;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);

  AdmissionController admission;
  admission.SetForceShed(shed);

  // Punctuation safety probe: the high-water marks must stay monotone no
  // matter which ingest prefixes/suffixes/subsets were shed.
  Timestamp last_safe_min = kMinTimestamp;
  Timestamp last_r = kMinTimestamp;
  Timestamp last_s = kMinTimestamp;

  FuzzOptions fuzz;
  fuzz.seed = seed * 131 + 17;
  fuzz.admission = &admission;
  fuzz.expiry_gate = &pipeline.hwm();
  fuzz.per_round = [&] {
    const Timestamp safe = pipeline.hwm().SafeMin();
    const Timestamp tr = pipeline.hwm().Get(StreamSide::kR);
    const Timestamp ts = pipeline.hwm().Get(StreamSide::kS);
    ASSERT_GE(safe, last_safe_min) << "SafeMin regressed";
    ASSERT_GE(tr, last_r) << "t_max,R regressed";
    ASSERT_GE(ts, last_s) << "t_max,S regressed";
    last_safe_min = safe;
    last_r = tr;
    last_s = ts;
  };

  auto fuzzed = RunFuzzedSchedule(pipeline, script, fuzz);

  EXPECT_EQ(pipeline.total_anomalies(), 0u);
  EXPECT_TRUE(SameResultSet(oracle, fuzzed.results));

  // Punctuations must be strictly increasing and safe: no later result may
  // carry a smaller timestamp than an already-emitted punctuation. Results
  // and punctuations are recorded by the same single-threaded handler, so
  // the last punctuation bounds only results that arrive after it; the
  // collector's mark-before-vacuum protocol guarantees the final state.
  for (std::size_t i = 1; i < fuzzed.punctuations.size(); ++i) {
    EXPECT_GT(fuzzed.punctuations[i], fuzzed.punctuations[i - 1]);
  }

  // Exact loss accounting: delivered bounds == generator-side ground truth.
  std::set<Seq> shed_r_truth, shed_s_truth;
  GroundTruthSets(script, shed, &shed_r_truth, &shed_s_truth);
  std::set<Seq> lost_r, lost_s;
  ExpandLosses(fuzzed.losses, &lost_r, &lost_s);
  EXPECT_EQ(lost_r, shed_r_truth);
  EXPECT_EQ(lost_s, shed_s_truth);
  EXPECT_EQ(admission.shed_count(StreamSide::kR), shed_r_truth.size());
  EXPECT_EQ(admission.shed_count(StreamSide::kS), shed_s_truth.size());
}

std::string ShedParamName(
    const ::testing::TestParamInfo<std::tuple<ShedPattern, uint64_t>>& info) {
  const char* names[] = {"Prefix", "Suffix", "Subset"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) + "s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Overload, OverloadFuzz,
    ::testing::Combine(::testing::Values(ShedPattern::kPrefix,
                                         ShedPattern::kSuffix,
                                         ShedPattern::kSubset),
                       ::testing::Values(1u, 2u, 3u)),
    ShedParamName);

// -- Session path: the loss-accounting oracle on all four engines ------------

struct EngineRun {
  std::vector<ResultMsg<TR, TS>> results;
  std::set<Seq> lost_r;
  std::set<Seq> lost_s;
  uint64_t shed_r = 0;
  uint64_t shed_s = 0;
};

template <typename Shed>
EngineRun RunEngineWithShedding(Algorithm algo, Shed shed, bool batch_push) {
  JoinConfig config;
  config.algorithm = algo;
  config.parallelism = 3;
  config.threaded = false;
  config.window_r = WindowSpec::Count(16);
  config.window_s = WindowSpec::Count(12);

  JoinSession<TR, TS, KeyEq> session(config);
  CollectingHandler<TR, TS> handler;
  session.AddQuery(KeyEq{}, &handler);
  session.admission().SetForceShed(shed);

  // Grouped interleaving — alternating runs of 8 R then 8 S — used by BOTH
  // ingestion paths, so scalar and batch runs see the identical cross-side
  // arrival order (join semantics depend on it) and differ only in how the
  // tuples are handed over.
  constexpr int kBlocks = 12;
  constexpr int kSpan = 8;
  struct Item {
    bool is_r;
    int32_t key;
    int id;
    Timestamp ts;
  };
  std::vector<Item> order;
  for (int block = 0; block < kBlocks; ++block) {
    for (int j = 0; j < kSpan; ++j) {
      const int id = block * 2 * kSpan + 2 * j;
      order.push_back(Item{true, static_cast<int32_t>((id * 7) % 5), id, id});
    }
    for (int j = 0; j < kSpan; ++j) {
      const int id = block * 2 * kSpan + 2 * j + 1;
      order.push_back(Item{false, static_cast<int32_t>((id * 7) % 5), id, id});
    }
  }

  if (batch_push) {
    std::size_t i = 0;
    while (i < order.size()) {
      const bool is_r = order[i].is_r;
      std::vector<TR> rs;
      std::vector<TS> ss;
      std::vector<Timestamp> tss;
      while (i < order.size() && order[i].is_r == is_r) {
        if (is_r) {
          rs.push_back(TR{order[i].key, order[i].id});
        } else {
          ss.push_back(TS{order[i].key, order[i].id});
        }
        tss.push_back(order[i].ts);
        ++i;
      }
      if (is_r) {
        session.PushR(std::span<const TR>(rs),
                      std::span<const Timestamp>(tss));
      } else {
        session.PushS(std::span<const TS>(ss),
                      std::span<const Timestamp>(tss));
      }
    }
  } else {
    for (const Item& item : order) {
      if (item.is_r) {
        session.PushR(TR{item.key, item.id}, item.ts);
      } else {
        session.PushS(TS{item.key, item.id}, item.ts);
      }
    }
  }
  session.FinishInput();
  session.Poll();

  EXPECT_EQ(session.pipeline_anomalies(), 0u) << ToString(algo);
  EXPECT_EQ(session.tuples_lost_reported(StreamSide::kR),
            session.tuples_shed(StreamSide::kR))
      << ToString(algo);
  EXPECT_EQ(session.tuples_lost_reported(StreamSide::kS),
            session.tuples_shed(StreamSide::kS))
      << ToString(algo);

  EngineRun run;
  run.results = handler.results();
  run.shed_r = session.tuples_shed(StreamSide::kR);
  run.shed_s = session.tuples_shed(StreamSide::kS);
  ExpandLosses(handler.losses(), &run.lost_r, &run.lost_s);
  return run;
}

TEST(OverloadSession, ExactLossAccountingOnAllFourEngines) {
  // Deterministic subset shed, identical for every engine (forced by seq),
  // so all four must agree on results AND accounting.
  const auto shed = [](StreamSide side, Seq seq) {
    return GroundTruthShed(ShedPattern::kSubset, side, seq, 100);
  };

  // Ground truth over the push order of RunEngineWithShedding: 12 blocks of
  // 8 tuples per side = 96 sequence numbers per side.
  std::set<Seq> shed_r_truth, shed_s_truth;
  for (Seq q = 0; q < 96; ++q) {
    if (shed(StreamSide::kR, q)) shed_r_truth.insert(q);
    if (shed(StreamSide::kS, q)) shed_s_truth.insert(q);
  }
  ASSERT_FALSE(shed_r_truth.empty());
  ASSERT_FALSE(shed_s_truth.empty());

  std::vector<EngineRun> runs;
  for (Algorithm algo : {Algorithm::kKang, Algorithm::kCellJoin,
                         Algorithm::kHandshake, Algorithm::kLowLatency}) {
    SCOPED_TRACE(ToString(algo));
    EngineRun run = RunEngineWithShedding(algo, shed, /*batch_push=*/false);
    EXPECT_EQ(run.lost_r, shed_r_truth);
    EXPECT_EQ(run.lost_s, shed_s_truth);
    EXPECT_EQ(run.shed_r, shed_r_truth.size());
    EXPECT_EQ(run.shed_s, shed_s_truth.size());
    runs.push_back(std::move(run));
  }

  // Cross-engine agreement: every engine shed the same tuples, so every
  // engine must produce the same result multiset (Kang is the oracle).
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_TRUE(SameResultSet(runs[0].results, runs[i].results));
  }
}

TEST(OverloadSession, BatchPushPathShedsAndAccountsIdentically) {
  const auto shed = [](StreamSide side, Seq seq) {
    return GroundTruthShed(ShedPattern::kSubset, side, seq, 100);
  };
  EngineRun scalar =
      RunEngineWithShedding(Algorithm::kLowLatency, shed, false);
  EngineRun batch = RunEngineWithShedding(Algorithm::kLowLatency, shed, true);
  EXPECT_TRUE(SameResultSet(scalar.results, batch.results));
  EXPECT_EQ(scalar.lost_r, batch.lost_r);
  EXPECT_EQ(scalar.lost_s, batch.lost_s);
}

TEST(OverloadSession, NoPolicyNeverSheds) {
  // Default config: no budget, no policy — admission disabled; everything
  // is admitted and no loss is ever reported.
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = 2;
  config.threaded = false;
  config.window_r = WindowSpec::Count(8);
  config.window_s = WindowSpec::Count(8);
  JoinSession<TR, TS, KeyEq> session(config);
  CollectingHandler<TR, TS> handler;
  session.AddQuery(KeyEq{}, &handler);
  for (int i = 0; i < 64; ++i) {
    session.PushR(TR{i % 3, i}, i);
    session.PushS(TS{i % 3, i}, i);
  }
  session.FinishInput();
  EXPECT_EQ(session.tuples_shed(StreamSide::kR), 0u);
  EXPECT_EQ(session.tuples_shed(StreamSide::kS), 0u);
  EXPECT_TRUE(handler.losses().empty());
  EXPECT_GT(handler.results().size(), 0u);
}

}  // namespace
}  // namespace sjoin
