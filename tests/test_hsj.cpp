// Tests for the original handshake join: oracle equivalence across pipeline
// lengths and segment capacities, relocation behaviour, expiry chasing, and
// flush semantics.
#include <gtest/gtest.h>

#include "baseline/kang_join.hpp"
#include "hsj/hsj_pipeline.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyBand;
using test::KeyEq;
using test::MakeRandomTrace;
using test::RunHsjSequential;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

typename HsjPipeline<TR, TS, KeyEq>::Options HsjOptions(int nodes,
                                                        int64_t cap) {
  typename HsjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = nodes;
  options.segment_capacity_r = cap;
  options.segment_capacity_s = cap;
  options.channel_capacity = 64;
  return options;
}

struct HsjParam {
  int nodes;
  int64_t cap;
};

class HsjOracle : public ::testing::TestWithParam<HsjParam> {};

TEST_P(HsjOracle, MatchesKangOnRandomTimeWindows) {
  // Segment capacities must respect the fair share (cap <= live window / n,
  // paper's self-balancing invariant): a tuple must traverse the pipeline
  // within its lifetime or latent pairs expire unmet. The 120 us windows
  // keep ~40 tuples per side alive, so every parameterized shape complies.
  const auto param = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    TraceConfig config;
    config.events = 240;
    config.key_domain = 5;
    config.max_gap_us = 3;
    auto trace = MakeRandomTrace(seed, config);
    auto script = BuildDriverScript(trace, WindowSpec::Time(120),
                                    WindowSpec::Time(120));
    auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
    auto hsj = RunHsjSequential<KeyEq>(
        script, HsjOptions(param.nodes, param.cap));
    EXPECT_TRUE(SameResultSet(oracle, hsj))
        << "nodes=" << param.nodes << " cap=" << param.cap << " seed="
        << seed;
  }
}

TEST_P(HsjOracle, MatchesKangOnRandomCountWindows) {
  const auto param = GetParam();
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    TraceConfig config;
    config.events = 240;
    config.key_domain = 4;
    auto trace = MakeRandomTrace(seed, config);
    auto script = BuildDriverScript(trace, WindowSpec::Count(40),
                                    WindowSpec::Count(33));
    auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
    auto hsj = RunHsjSequential<KeyEq>(
        script, HsjOptions(param.nodes, param.cap));
    EXPECT_TRUE(SameResultSet(oracle, hsj))
        << "nodes=" << param.nodes << " cap=" << param.cap << " seed="
        << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PipelineShapes, HsjOracle,
    ::testing::Values(HsjParam{1, 1024}, HsjParam{2, 8}, HsjParam{3, 4},
                      HsjParam{4, 2}, HsjParam{5, 1}, HsjParam{4, 8},
                      HsjParam{6, 3}, HsjParam{2, 0}, HsjParam{4, 0},
                      HsjParam{6, 0}),
    [](const ::testing::TestParamInfo<HsjParam>& info) {
      return "n" + std::to_string(info.param.nodes) +
             (info.param.cap == 0 ? "bal"
                                  : "cap" + std::to_string(info.param.cap));
    });

TEST(Hsj, SingleNodeDegeneratesToKang) {
  // Paper Section 3.2: with one core, handshake join degenerates to Kang's
  // procedure.
  TraceConfig config;
  config.events = 150;
  auto trace = MakeRandomTrace(3, config);
  auto script = BuildDriverScript(trace, WindowSpec::Time(40),
                                  WindowSpec::Time(40));
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
  auto hsj = RunHsjSequential<KeyEq>(script, HsjOptions(1, 1 << 20));
  EXPECT_TRUE(SameResultSet(oracle, hsj));
}

TEST(Hsj, TinySegmentsForceRelocationAndStayCorrect) {
  TraceConfig config;
  config.events = 200;
  config.key_domain = 3;
  auto trace = MakeRandomTrace(8, config);
  auto script = BuildDriverScript(trace, WindowSpec::Count(30),
                                  WindowSpec::Count(30));
  HsjPipeline<TR, TS, KeyEq> pipeline(HsjOptions(4, 1));
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.max_events_per_step = 1;  // bounded-lag regime (see RunHsjSequential)
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);
  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  EXPECT_GT(pipeline.total_relocations(), 0u);
  EXPECT_EQ(pipeline.total_anomalies(), 0u);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
  EXPECT_TRUE(SameResultSet(oracle, handler.results()));
}

TEST(Hsj, WithoutFlushDistantPairsAreDelayed) {
  // Construct a pair that rests far apart: r relocates right, s arrives
  // later. Without flush the pair is found only thanks to continued input;
  // here input stops, so the non-flushed run must miss it while the flushed
  // run finds it — this demonstrates *why* flush exists.
  Trace<TR, TS> trace;
  // Many R tuples push r0 deep into the pipeline.
  trace.push_back(ArriveR<TR, TS>(0, TR{1, 0}));
  for (int i = 1; i <= 20; ++i) {
    trace.push_back(ArriveR<TR, TS>(i, TR{100 + i, i}));
  }
  // A late S partner for r0.
  trace.push_back(ArriveS<TR, TS>(21, TS{1, 99}));

  auto with_flush = BuildDriverScript(trace, WindowSpec::Time(1000),
                                      WindowSpec::Time(1000), true);
  auto without_flush = BuildDriverScript(trace, WindowSpec::Time(1000),
                                         WindowSpec::Time(1000), false);
  auto options = HsjOptions(4, 2);  // tiny caps: r0 relocates to node 3

  auto flushed = RunHsjSequential<KeyEq>(with_flush, options);
  EXPECT_EQ(flushed.size(), 1u) << "flush must surface the distant pair";

  auto unflushed = RunHsjSequential<KeyEq>(without_flush, options);
  // s enters at the right end and r0 rests near the right end, so the pair
  // is actually found on arrival here; the flushed run must never produce
  // duplicates on top of that.
  EXPECT_LE(unflushed.size(), 1u);
}

TEST(Hsj, ExpiryChaseTerminatesWithTinyCaps) {
  // Relocations and expiries race constantly with cap=1; anomaly counters
  // (chase give-ups) must stay zero and the result set exact.
  TraceConfig config;
  config.events = 300;
  config.key_domain = 3;
  auto trace = MakeRandomTrace(21, config);
  auto script = BuildDriverScript(trace, WindowSpec::Count(6),
                                  WindowSpec::Count(6));
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
  auto hsj = RunHsjSequential<KeyEq>(script, HsjOptions(5, 1));
  EXPECT_TRUE(SameResultSet(oracle, hsj));
}

TEST(Hsj, BandPredicateWorks) {
  TraceConfig config;
  config.events = 200;
  config.key_domain = 12;
  auto trace = MakeRandomTrace(31, config);
  auto script = BuildDriverScript(trace, WindowSpec::Time(100),
                                  WindowSpec::Time(100));
  auto oracle = RunKangOracle<TR, TS, KeyBand>(script, KeyBand{2});

  typename HsjPipeline<TR, TS, KeyBand>::Options options;
  options.nodes = 3;
  options.segment_capacity_r = 4;  // <= live window (~33/side) / nodes
  options.segment_capacity_s = 4;
  options.channel_capacity = 64;
  auto hsj = RunHsjSequential<KeyBand>(script, options, KeyBand{2});
  EXPECT_TRUE(SameResultSet(oracle, hsj));
}

TEST(Hsj, EmptyScriptQuiesces) {
  DriverScript<TR, TS> script;
  auto results = RunHsjSequential<KeyEq>(script, HsjOptions(3, 4));
  EXPECT_TRUE(results.empty());
}

TEST(Hsj, SmallChannelsStillCorrect) {
  // Channel capacity 4 forces constant backpressure and staging.
  TraceConfig config;
  config.events = 200;
  config.key_domain = 4;
  auto trace = MakeRandomTrace(41, config);
  auto script = BuildDriverScript(trace, WindowSpec::Count(16),
                                  WindowSpec::Count(16));
  auto options = HsjOptions(4, 2);
  options.channel_capacity = 8;  // arrival slack is 4; leave some room
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
  auto hsj = RunHsjSequential<KeyEq>(script, options);
  EXPECT_TRUE(SameResultSet(oracle, hsj));
}

TEST(Hsj, ResidentTuplesRespectExpiries) {
  // After the full script (everything expired), windows must be empty.
  Trace<TR, TS> trace;
  for (int i = 0; i < 40; ++i) {
    if (i % 2 == 0) {
      trace.push_back(ArriveR<TR, TS>(i, TR{1, i}));
    } else {
      trace.push_back(ArriveS<TR, TS>(i, TS{1, i}));
    }
  }
  trace.push_back(ArriveR<TR, TS>(1000, TR{2, 99}));  // expires everything

  auto script = BuildDriverScript(trace, WindowSpec::Time(10),
                                  WindowSpec::Time(10), false);
  HsjPipeline<TR, TS, KeyEq> pipeline(HsjOptions(3, 4));
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.max_events_per_step = 1;  // bounded-lag regime (see RunHsjSequential)
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);
  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  EXPECT_EQ(pipeline.resident_tuples(), 1u);  // only the last arrival
  EXPECT_EQ(pipeline.total_anomalies(), 0u);
}

}  // namespace
}  // namespace sjoin
