// Tests for Kang's three-step procedure — the sequential baseline and the
// oracle every other engine is compared against. Because everything hinges
// on its correctness, it is verified here against hand-computed cases and
// an independent brute-force evaluation of the window-join semantics.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/kang_join.hpp"
#include "stream/script.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyBand;
using test::KeyEq;
using test::MakeRandomTrace;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

/// Brute-force reference for *time* windows, straight from the semantics:
/// p(r,s) and neither tuple expired when the other arrived.
std::vector<ResultMsg<TR, TS>> BruteForceTime(const Trace<TR, TS>& trace,
                                              int64_t wr, int64_t ws) {
  std::vector<Stamped<TR>> rs;
  std::vector<Stamped<TS>> ss;
  Seq r_seq = 0, s_seq = 0;
  for (const auto& e : trace) {
    if (e.side == StreamSide::kR) {
      rs.push_back(Stamped<TR>{e.r, r_seq++, e.ts, 0});
    } else {
      ss.push_back(Stamped<TS>{e.s, s_seq++, e.ts, 0});
    }
  }
  std::vector<ResultMsg<TR, TS>> out;
  KeyEq pred;
  for (const auto& r : rs) {
    for (const auto& s : ss) {
      if (!pred(r.value, s.value)) continue;
      const bool s_alive_at_r = r.ts < s.ts || (r.ts - s.ts) <= ws;
      const bool r_alive_at_s = s.ts < r.ts || (s.ts - r.ts) <= wr;
      if (s_alive_at_r && r_alive_at_s) out.push_back(MakeResult(r, s, -1));
    }
  }
  return out;
}

TEST(KangJoin, SimpleMatch) {
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(0, TR{1, 0}));
  trace.push_back(ArriveS<TR, TS>(1, TS{1, 1}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(10),
                                  WindowSpec::Time(10));
  auto results = RunKangOracle<TR, TS, KeyEq>(script);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].r_seq, 0u);
  EXPECT_EQ(results[0].s_seq, 0u);
  EXPECT_EQ(results[0].ts, 1);  // max(t_r, t_s)
}

TEST(KangJoin, NoMatchOutsideWindow) {
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(0, TR{1, 0}));
  trace.push_back(ArriveS<TR, TS>(100, TS{1, 1}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(10),
                                  WindowSpec::Time(10));
  EXPECT_TRUE((RunKangOracle<TR, TS, KeyEq>(script).empty()));
}

TEST(KangJoin, WindowBoundaryInclusive) {
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(0, TR{1, 0}));
  trace.push_back(ArriveS<TR, TS>(10, TS{1, 1}));  // exactly W apart
  auto script = BuildDriverScript(trace, WindowSpec::Time(10),
                                  WindowSpec::Time(10));
  EXPECT_EQ((RunKangOracle<TR, TS, KeyEq>(script).size()), 1u);
}

TEST(KangJoin, AsymmetricWindows) {
  // R window tiny, S window large: r@0 s@50 joins only through W_S ... the
  // surviving side is decided by who arrived first.
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(0, TR{1, 0}));
  trace.push_back(ArriveS<TR, TS>(50, TS{1, 1}));   // needs r alive: WR >= 50
  trace.push_back(ArriveR<TR, TS>(100, TR{1, 2}));  // needs s alive: WS >= 50
  auto script = BuildDriverScript(trace, WindowSpec::Time(49),
                                  WindowSpec::Time(100));
  auto results = RunKangOracle<TR, TS, KeyEq>(script);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].r_seq, 1u);  // the second R
  EXPECT_EQ(results[0].s_seq, 0u);
}

TEST(KangJoin, CountWindowKeepsLastK) {
  Trace<TR, TS> trace;
  for (int i = 0; i < 3; ++i) {
    trace.push_back(ArriveR<TR, TS>(i, TR{1, i}));
  }
  trace.push_back(ArriveS<TR, TS>(3, TS{1, 99}));
  auto script = BuildDriverScript(trace, WindowSpec::Count(2),
                                  WindowSpec::Count(2));
  auto results = RunKangOracle<TR, TS, KeyEq>(script);
  // Only the last two R tuples are in the window when s arrives.
  ASSERT_EQ(results.size(), 2u);
}

TEST(KangJoin, EqualTimestampsBothDirections) {
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(5, TR{1, 0}));
  trace.push_back(ArriveS<TR, TS>(5, TS{1, 1}));
  trace.push_back(ArriveR<TR, TS>(5, TR{1, 2}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(0),
                                  WindowSpec::Time(0));
  // All three share ts 5 with zero windows: both R's join the S.
  EXPECT_EQ((RunKangOracle<TR, TS, KeyEq>(script).size()), 2u);
}

TEST(KangJoin, BandPredicate) {
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(0, TR{10, 0}));
  trace.push_back(ArriveS<TR, TS>(1, TS{11, 1}));
  trace.push_back(ArriveS<TR, TS>(2, TS{12, 2}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(100),
                                  WindowSpec::Time(100));
  auto results = RunKangOracle<TR, TS, KeyBand>(script, KeyBand{1});
  EXPECT_EQ(results.size(), 1u);  // |10-11| <= 1 matches, |10-12| doesn't
}

TEST(KangJoin, MatchesBruteForceOnRandomTraces) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    TraceConfig config;
    config.events = 150;
    config.key_domain = 6;
    config.max_gap_us = 4;
    auto trace = MakeRandomTrace(seed, config);
    const int64_t wr = 20, ws = 35;
    auto script = BuildDriverScript(trace, WindowSpec::Time(wr),
                                    WindowSpec::Time(ws));
    auto kang = RunKangOracle<TR, TS, KeyEq>(script);
    auto brute = BruteForceTime(trace, wr, ws);
    EXPECT_TRUE(SameResultSet(brute, kang)) << "seed " << seed;
  }
}

TEST(KangJoin, WindowSizesTrackScript) {
  VectorSink<TR, TS> sink;
  KangJoin<TR, TS, KeyEq> join(&sink);
  Trace<TR, TS> trace;
  for (int i = 0; i < 5; ++i) trace.push_back(ArriveR<TR, TS>(i, TR{1, i}));
  auto script = BuildDriverScript(trace, WindowSpec::Count(3),
                                  WindowSpec::Count(3), false);
  join.RunScript(script);
  EXPECT_EQ(join.window_size(StreamSide::kR), 3u);
  EXPECT_EQ(join.window_size(StreamSide::kS), 0u);
}

TEST(KangJoin, ResultCarriesPayloads) {
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(0, TR{7, 123}));
  trace.push_back(ArriveS<TR, TS>(1, TS{7, 456}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(10),
                                  WindowSpec::Time(10));
  auto results = RunKangOracle<TR, TS, KeyEq>(script);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].r.id, 123);
  EXPECT_EQ(results[0].s.id, 456);
}

}  // namespace
}  // namespace sjoin
