// Tests for the public StreamJoiner facade: all four algorithms behind one
// push/poll API must produce identical result sets; window bookkeeping,
// punctuation, threaded and non-threaded operation.
#include <gtest/gtest.h>

#include <vector>

#include "core/stream_joiner.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyEq;
using test::MakeRandomTrace;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

std::vector<ResultMsg<TR, TS>> RunFacade(Algorithm algorithm,
                                         const Trace<TR, TS>& trace,
                                         WindowSpec wr, WindowSpec ws,
                                         bool threaded, int parallelism = 4,
                                         bool punctuate = false) {
  CollectingHandler<TR, TS> handler;
  JoinConfig config;
  config.algorithm = algorithm;
  config.parallelism = parallelism;
  config.window_r = wr;
  config.window_s = ws;
  config.threaded = threaded;
  config.punctuate = punctuate;
  // For time windows HSJ needs a live-window estimate to size its segments;
  // it must be a *lower* estimate (smaller segments mean more relocation,
  // which is always correct; larger ones strand tuples). The test traces
  // keep ~17 tuples/side alive in their 50 us windows.
  config.hsj_window_tuples_hint = 16;
  StreamJoiner<TR, TS, KeyEq> joiner(config, &handler);
  for (const auto& e : trace) {
    if (e.side == StreamSide::kR) {
      joiner.PushR(e.r, e.ts);
    } else {
      joiner.PushS(e.s, e.ts);
    }
  }
  joiner.FinishInput();
  joiner.Poll();
  EXPECT_EQ(joiner.pipeline_anomalies(), 0u);
  return handler.results();
}

class FacadeAlgorithms : public ::testing::TestWithParam<Algorithm> {};

TEST_P(FacadeAlgorithms, MatchesOracleNonThreaded) {
  TraceConfig config;
  config.events = 300;
  config.key_domain = 6;
  auto trace = MakeRandomTrace(91, config);
  const WindowSpec wr = WindowSpec::Time(50);
  const WindowSpec ws = WindowSpec::Time(50);

  auto expected = RunFacade(Algorithm::kKang, trace, wr, ws, false);
  ASSERT_FALSE(expected.empty());
  auto actual = RunFacade(GetParam(), trace, wr, ws, /*threaded=*/false);
  EXPECT_TRUE(SameResultSet(expected, actual));
}

TEST_P(FacadeAlgorithms, MatchesOracleThreaded) {
  TraceConfig config;
  config.events = 600;
  config.key_domain = 8;
  auto trace = MakeRandomTrace(92, config);
  // The handshake-join contract requires windows well above the pipeline's
  // own buffering (bounded-lag regime, DESIGN.md); 150 tuples with 4 nodes
  // satisfies it comfortably.
  const WindowSpec wr = WindowSpec::Count(150);
  const WindowSpec ws = WindowSpec::Count(150);

  auto expected = RunFacade(Algorithm::kKang, trace, wr, ws, false);
  auto actual = RunFacade(GetParam(), trace, wr, ws, /*threaded=*/true);
  EXPECT_TRUE(SameResultSet(expected, actual));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, FacadeAlgorithms,
    ::testing::Values(Algorithm::kKang, Algorithm::kCellJoin,
                      Algorithm::kHandshake, Algorithm::kLowLatency),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(ToString(info.param));
    });

TEST(Facade, AlgorithmNames) {
  EXPECT_STREQ(ToString(Algorithm::kKang), "kang");
  EXPECT_STREQ(ToString(Algorithm::kCellJoin), "celljoin");
  EXPECT_STREQ(ToString(Algorithm::kHandshake), "handshake");
  EXPECT_STREQ(ToString(Algorithm::kLowLatency), "llhj");
}

TEST(Facade, NonMonotonicTimestampsAreClamped) {
  CollectingHandler<TR, TS> handler;
  JoinConfig config;
  config.algorithm = Algorithm::kKang;
  config.window_r = WindowSpec::Time(10);
  config.window_s = WindowSpec::Time(10);
  StreamJoiner<TR, TS, KeyEq> joiner(config, &handler);
  joiner.PushR(TR{1, 0}, 100);
  joiner.PushS(TS{1, 1}, 50);  // clamped to 100 -> still joins
  joiner.FinishInput();
  EXPECT_EQ(handler.results().size(), 1u);
}

TEST(Facade, PunctuatedOutput) {
  TraceConfig tc;
  tc.events = 200;
  tc.key_domain = 4;
  auto trace = MakeRandomTrace(93, tc);
  CollectingHandler<TR, TS> handler;
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = 3;
  config.window_r = WindowSpec::Time(60);
  config.window_s = WindowSpec::Time(60);
  config.punctuate = true;
  config.threaded = false;
  StreamJoiner<TR, TS, KeyEq> joiner(config, &handler);
  for (const auto& e : trace) {
    if (e.side == StreamSide::kR) {
      joiner.PushR(e.r, e.ts);
    } else {
      joiner.PushS(e.s, e.ts);
    }
    joiner.Poll();
  }
  joiner.FinishInput();
  EXPECT_GT(handler.punctuations().size(), 0u);
  // Punctuations must be strictly increasing.
  for (std::size_t i = 1; i < handler.punctuations().size(); ++i) {
    EXPECT_LT(handler.punctuations()[i - 1], handler.punctuations()[i]);
  }
}

TEST(Facade, ResultsCollectedCounter) {
  CollectingHandler<TR, TS> handler;
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = 2;
  config.window_r = WindowSpec::Count(8);
  config.window_s = WindowSpec::Count(8);
  config.threaded = false;
  StreamJoiner<TR, TS, KeyEq> joiner(config, &handler);
  joiner.PushR(TR{5, 0}, 0);
  joiner.PushS(TS{5, 1}, 1);
  joiner.FinishInput();
  EXPECT_EQ(joiner.results_collected(), 1u);
  EXPECT_EQ(handler.results().size(), 1u);
}

TEST(Facade, InterleavedPollDeliversIncrementally) {
  CollectingHandler<TR, TS> handler;
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = 3;
  config.window_r = WindowSpec::Count(100);
  config.window_s = WindowSpec::Count(100);
  config.threaded = false;
  StreamJoiner<TR, TS, KeyEq> joiner(config, &handler);
  joiner.PushR(TR{1, 0}, 0);
  joiner.PushS(TS{1, 1}, 1);
  joiner.Poll();
  EXPECT_EQ(handler.results().size(), 1u);  // available before Finish
  joiner.PushS(TS{1, 2}, 2);
  joiner.Poll();
  EXPECT_EQ(handler.results().size(), 2u);
  joiner.FinishInput();
  EXPECT_EQ(handler.results().size(), 2u);
}

TEST(Facade, CellJoinUsesWorkers) {
  TraceConfig tc;
  tc.events = 150;
  tc.key_domain = 5;
  auto trace = MakeRandomTrace(94, tc);
  auto expected = RunFacade(Algorithm::kKang, trace, WindowSpec::Count(30),
                            WindowSpec::Count(30), false);
  auto actual = RunFacade(Algorithm::kCellJoin, trace, WindowSpec::Count(30),
                          WindowSpec::Count(30), false, /*parallelism=*/3);
  EXPECT_TRUE(SameResultSet(expected, actual));
}

TEST(Facade, StopIsIdempotentAndSafe) {
  CollectingHandler<TR, TS> handler;
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.threaded = true;
  StreamJoiner<TR, TS, KeyEq> joiner(config, &handler);
  joiner.PushR(TR{1, 0}, 0);
  joiner.Stop();
  joiner.Stop();
  SUCCEED();
}

TEST(Facade, SingleNodePipelines) {
  TraceConfig tc;
  tc.events = 120;
  auto trace = MakeRandomTrace(95, tc);
  auto expected = RunFacade(Algorithm::kKang, trace, WindowSpec::Time(40),
                            WindowSpec::Time(40), false);
  for (Algorithm a : {Algorithm::kHandshake, Algorithm::kLowLatency}) {
    auto actual = RunFacade(a, trace, WindowSpec::Time(40),
                            WindowSpec::Time(40), false, /*parallelism=*/1);
    EXPECT_TRUE(SameResultSet(expected, actual)) << ToString(a);
  }
}

}  // namespace
}  // namespace sjoin
