// Tests for topology (sysfs parsing, synthetic shapes, env override),
// placement planning, channel memory placement, affinity, backoff, and the
// two executors.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <utility>

#include "runtime/affinity.hpp"
#include "runtime/backoff.hpp"
#include "runtime/executor.hpp"
#include "runtime/mempolicy.hpp"
#include "runtime/placement.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/topology.hpp"

namespace sjoin {
namespace {

// -- Fake-sysfs fixtures ------------------------------------------------------

/// Builds a sysfs-shaped tree under a fresh temp dir for Topology::FromSysfs.
class SysfsFixture {
 public:
  explicit SysfsFixture(const std::string& name)
      : root_(std::filesystem::path(::testing::TempDir()) /
              ("sjoin_sysfs_" + name)) {
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "devices/system/cpu");
    std::filesystem::create_directories(root_ / "devices/system/node");
  }

  ~SysfsFixture() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  void WriteFile(const std::string& rel, const std::string& content) {
    const std::filesystem::path path = root_ / rel;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream(path) << content << "\n";
  }

  void AddCpu(int cpu, int package, int core) {
    const std::string dir =
        "devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    WriteFile(dir + "physical_package_id", std::to_string(package));
    WriteFile(dir + "core_id", std::to_string(core));
  }

  std::string root() const { return root_.string(); }

 private:
  std::filesystem::path root_;
};

/// 1 package, 2 NUMA nodes x 2 cores x 2 SMT siblings, Linux-style sibling
/// numbering (cpu k and cpu k+4 share a core).
void PopulateTwoNodeSmt(SysfsFixture* fix, const std::string& online) {
  fix->WriteFile("devices/system/cpu/possible", "0-7");
  fix->WriteFile("devices/system/cpu/online", online);
  for (int cpu = 0; cpu < 8; ++cpu) fix->AddCpu(cpu, 0, cpu % 4);
  fix->WriteFile("devices/system/node/node0/cpulist", "0-1,4-5");
  fix->WriteFile("devices/system/node/node1/cpulist", "2-3,6-7");
}

TEST(TopologySysfs, ParsesPackagesNodesSmt) {
  SysfsFixture fix("parse");
  PopulateTwoNodeSmt(&fix, "0-7");
  Topology topo = Topology::FromSysfs(fix.root());

  EXPECT_EQ(topo.cpu_count(), 8);
  EXPECT_EQ(topo.package_count(), 1);
  EXPECT_EQ(topo.node_count(), 2);
  EXPECT_EQ(topo.max_smt(), 2);
  EXPECT_EQ(topo.NodeOfCpu(0), 0);
  EXPECT_EQ(topo.NodeOfCpu(2), 1);
  EXPECT_EQ(topo.NodeOfCpu(6), 1);
  EXPECT_EQ(topo.SmtOfCpu(0), 0);
  EXPECT_EQ(topo.SmtOfCpu(4), 1);  // second sibling of core 0
  // Placement order: one position per physical core first (same-node cores
  // adjacent), SMT siblings only afterwards.
  const std::vector<int> expected = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(topo.cpus(), expected);
  EXPECT_EQ(topo.CpusOnNode(1), (std::vector<int>{2, 3, 6, 7}));
}

TEST(TopologySysfs, SkipsOfflineCpuHoles) {
  SysfsFixture fix("offline");
  PopulateTwoNodeSmt(&fix, "0-2,4-7");  // cpu3 offline
  Topology topo = Topology::FromSysfs(fix.root());

  EXPECT_EQ(topo.cpu_count(), 7);
  EXPECT_EQ(topo.NodeOfCpu(3), -1);  // offline cpu is not in the model
  for (int cpu : topo.cpus()) EXPECT_NE(cpu, 3);
  // cpu7 lost its sibling's co-runner? No: cpu3 and cpu7 share core 3 —
  // with cpu3 offline, cpu7 becomes that core's first (only) sibling.
  EXPECT_EQ(topo.SmtOfCpu(7), 0);
}

TEST(TopologySysfs, MissingTopologyFilesDegradeToFlat) {
  SysfsFixture fix("flat");
  fix.WriteFile("devices/system/cpu/online", "0-3");
  Topology topo = Topology::FromSysfs(fix.root());
  EXPECT_EQ(topo.cpu_count(), 4);
  EXPECT_EQ(topo.node_count(), 1);
  EXPECT_EQ(topo.package_count(), 1);
  EXPECT_EQ(topo.max_smt(), 1);
}

// -- Synthetic shapes and the SJOIN_TOPOLOGY override -------------------------

TEST(Topology, SyntheticShapeEnumerates) {
  Topology::SyntheticShape shape;
  shape.packages = 2;
  shape.nodes_per_package = 2;
  shape.cores_per_node = 2;
  shape.smt_per_core = 2;
  Topology topo = Topology::Synthetic(shape);

  EXPECT_EQ(topo.cpu_count(), 16);
  EXPECT_EQ(topo.package_count(), 2);
  EXPECT_EQ(topo.node_count(), 4);
  EXPECT_EQ(topo.max_smt(), 2);
  // First pass covers every core once (smt 0), second pass the siblings.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(topo.SmtOfCpu(topo.cpus()[static_cast<std::size_t>(i)]), 0)
        << "position " << i;
  }
  for (int i = 8; i < 16; ++i) {
    EXPECT_EQ(topo.SmtOfCpu(topo.cpus()[static_cast<std::size_t>(i)]), 1)
        << "position " << i;
  }
}

TEST(Topology, ParseShapeSpecForms) {
  Topology::SyntheticShape shape;
  ASSERT_TRUE(Topology::ParseShapeSpec("16", &shape));
  EXPECT_EQ(shape.cores_per_node, 16);
  ASSERT_TRUE(Topology::ParseShapeSpec("2x8", &shape));
  EXPECT_EQ(shape.nodes_per_package, 2);
  EXPECT_EQ(shape.cores_per_node, 8);
  ASSERT_TRUE(Topology::ParseShapeSpec("2x8x2", &shape));
  EXPECT_EQ(shape.smt_per_core, 2);
  ASSERT_TRUE(Topology::ParseShapeSpec("2x2x4x2", &shape));
  EXPECT_EQ(shape.packages, 2);
  EXPECT_EQ(shape.nodes_per_package, 2);
  EXPECT_EQ(shape.cores_per_node, 4);
  EXPECT_EQ(shape.smt_per_core, 2);

  // The product is bounded too — each dimension may pass the per-part cap
  // while the shape as a whole would OOM at Synthetic().
  for (const char* bad : {"", "0x2", "-1", "axb", "2x", "x2", "1x2x3x4x5",
                          "1048576x1048576", "1024x1024x1024"}) {
    Topology::SyntheticShape untouched;
    EXPECT_FALSE(Topology::ParseShapeSpec(bad, &untouched)) << bad;
  }
}

/// Saves/restores SJOIN_TOPOLOGY so these tests compose with a CI leg that
/// sets the knob globally.
class ScopedTopologyEnv {
 public:
  explicit ScopedTopologyEnv(const char* value) {
    const char* old = std::getenv("SJOIN_TOPOLOGY");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv("SJOIN_TOPOLOGY", value, 1);
    } else {
      ::unsetenv("SJOIN_TOPOLOGY");
    }
  }
  ~ScopedTopologyEnv() {
    if (had_) {
      ::setenv("SJOIN_TOPOLOGY", saved_.c_str(), 1);
    } else {
      ::unsetenv("SJOIN_TOPOLOGY");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(Topology, EnvOverrideForcesSyntheticShape) {
  ScopedTopologyEnv env("2x2x2");
  Topology topo = Topology::Detect();
  EXPECT_EQ(topo.cpu_count(), 8);
  EXPECT_EQ(topo.node_count(), 2);
  EXPECT_EQ(topo.max_smt(), 2);
}

TEST(Topology, EnvOverrideUnrecognizedFallsBackToDetection) {
  ScopedTopologyEnv env("garbage-shape");
  Topology topo = Topology::Detect();  // warns on stderr, then detects
  EXPECT_GE(topo.cpu_count(), 1);
  // The host cannot be guaranteed multi-node, but the parse must not have
  // produced a "garbage" shape of any kind — detection output matches an
  // override-free Detect.
  ScopedTopologyEnv clear(nullptr);
  Topology plain = Topology::Detect();
  EXPECT_EQ(topo.cpus(), plain.cpus());
}

TEST(Topology, DetectIsSubsetOfAffinity) {
  ScopedTopologyEnv clear(nullptr);
  Topology topo = Topology::Detect();
  ASSERT_GE(topo.cpu_count(), 1);
  EXPECT_LE(topo.cpu_count(), AvailableCpuCount());
}

// -- PlacementPlan ------------------------------------------------------------

Topology TwoNodeTopo() {
  Topology::SyntheticShape shape;
  shape.nodes_per_package = 2;
  shape.cores_per_node = 4;
  return Topology::Synthetic(shape);  // 8 cpus: node0 = 0-3, node1 = 4-7
}

TEST(PlacementPlan, CompactCoLocatesNeighboursBeforeRemoteNodes) {
  Topology topo = TwoNodeTopo();
  PlacementPlan plan =
      PlacementPlan::Build(topo, PlacementPolicy::kCompact, 6, 2);

  // No two planned threads share a CPU.
  std::set<int> cpus;
  for (int pos = 0; pos < plan.positions(); ++pos) {
    const int cpu = plan.CpuForPosition(pos);
    ASSERT_GE(cpu, 0);
    EXPECT_TRUE(cpus.insert(cpu).second) << "duplicate cpu " << cpu;
  }
  for (int h = 0; h < plan.helpers(); ++h) {
    const int cpu = plan.CpuForHelper(h);
    if (cpu >= 0) EXPECT_TRUE(cpus.insert(cpu).second);
  }

  // Node sequence along the pipeline is contiguous: a node is never
  // revisited once left (neighbours co-located before a remote node).
  std::vector<int> node_seq;
  for (int pos = 0; pos < plan.positions(); ++pos) {
    node_seq.push_back(plan.NodeForPosition(pos));
  }
  EXPECT_EQ(node_seq, (std::vector<int>{0, 0, 0, 0, 1, 1}));

  // Helpers take leftover cores near their pipeline end; never -1 while
  // CPUs remain.
  EXPECT_GE(plan.CpuForHelper(kFeederHelper), 0);
  EXPECT_GE(plan.CpuForHelper(kCollectorHelper), 0);
  // The collector-adjacent node (last position's) is node 1.
  EXPECT_EQ(plan.NodeForHelper(kCollectorHelper), 1);
}

TEST(PlacementPlan, HelperSpillReturnsUnpinned) {
  Topology topo = Topology::Synthetic(4);
  PlacementPlan plan =
      PlacementPlan::Build(topo, PlacementPolicy::kCompact, 4, 2);
  // All four CPUs go to pipeline positions; helpers must spill to -1 and
  // never onto a pipeline CPU.
  EXPECT_EQ(plan.CpuForHelper(kFeederHelper), -1);
  EXPECT_EQ(plan.CpuForHelper(kCollectorHelper), -1);
  EXPECT_EQ(plan.NodeForHelper(kCollectorHelper), -1);
}

TEST(PlacementPlan, PositionsBeyondSupplyAreUnpinned) {
  Topology topo = Topology::Synthetic(2);
  PlacementPlan plan =
      PlacementPlan::Build(topo, PlacementPolicy::kAuto, 5, 1);
  EXPECT_GE(plan.CpuForPosition(0), 0);
  EXPECT_GE(plan.CpuForPosition(1), 0);
  for (int pos = 2; pos < 5; ++pos) {
    EXPECT_EQ(plan.CpuForPosition(pos), -1);
    EXPECT_EQ(plan.NodeForPosition(pos), -1);
  }
  EXPECT_EQ(plan.CpuForHelper(0), -1);
}

TEST(PlacementPlan, ScatterRoundRobinsNodes) {
  Topology topo = TwoNodeTopo();
  PlacementPlan plan =
      PlacementPlan::Build(topo, PlacementPolicy::kScatter, 4, 0);
  EXPECT_EQ(plan.NodeForPosition(0), 0);
  EXPECT_EQ(plan.NodeForPosition(1), 1);
  EXPECT_EQ(plan.NodeForPosition(2), 0);
  EXPECT_EQ(plan.NodeForPosition(3), 1);
  std::set<int> cpus;
  for (int pos = 0; pos < 4; ++pos) {
    EXPECT_TRUE(cpus.insert(plan.CpuForPosition(pos)).second);
  }
}

TEST(PlacementPlan, NonePlacesNothing) {
  Topology topo = TwoNodeTopo();
  PlacementPlan plan = PlacementPlan::Build(topo, PlacementPolicy::kNone, 4, 2);
  for (int pos = 0; pos < 4; ++pos) {
    EXPECT_EQ(plan.CpuForPosition(pos), -1);
    EXPECT_EQ(plan.NodeForPosition(pos), -1);
  }
  EXPECT_EQ(plan.CpuForHelper(0), -1);
}

TEST(PlacementPlan, ParsePolicyNamesOffendingValue) {
  EXPECT_EQ(ParsePlacementPolicy("auto"), PlacementPolicy::kAuto);
  EXPECT_EQ(ParsePlacementPolicy("compact"), PlacementPolicy::kCompact);
  EXPECT_EQ(ParsePlacementPolicy("scatter"), PlacementPolicy::kScatter);
  EXPECT_EQ(ParsePlacementPolicy("none"), PlacementPolicy::kNone);
  try {
    ParsePlacementPolicy("fastest");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fastest"), std::string::npos)
        << "error must name the offending value: " << e.what();
  }
}

// -- Channel memory placement -------------------------------------------------

struct PodSlot {
  int a = 0;
  int b = 0;
};

TEST(ChannelPlacement, HookRunsAndRecordsHomeNode) {
  SpscQueue<PodSlot> queue(64, /*home_node=*/0);
  EXPECT_EQ(queue.home_node(), 0);
  queue.PrefaultByConsumer();
  EXPECT_NE(queue.placement(), ChannelPlacement::kUnplaced);
  // The ring must still behave: fill, drain, wrap.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(queue.TryPush(PodSlot{i, round}));
    }
    PodSlot out;
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(queue.TryPop(&out));
      EXPECT_EQ(out.a, i);
      EXPECT_EQ(out.b, round);
    }
  }
}

TEST(ChannelPlacement, NonexistentNodeFallsDownTheLadder) {
  // Node 1023 exists on no test host: mbind fails at construction, so the
  // consumer-side hook must take a fallback rung (deferred first-touch for
  // implicit-lifetime slots), never kBound.
  SpscQueue<PodSlot> queue(16, /*home_node=*/1023);
  queue.PrefaultByConsumer();
  EXPECT_NE(queue.placement(), ChannelPlacement::kUnplaced);
  EXPECT_NE(queue.placement(), ChannelPlacement::kBound);
  PodSlot out;
  ASSERT_TRUE(queue.TryPush(PodSlot{7, 9}));
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out.a, 7);
}

TEST(ChannelPlacement, UnplacedQueueStaysUnplacedUntilHook) {
  SpscQueue<PodSlot> queue(16);
  EXPECT_EQ(queue.home_node(), -1);
  EXPECT_EQ(queue.placement(), ChannelPlacement::kUnplaced);
  queue.PrefaultByConsumer();
  EXPECT_EQ(queue.placement(), ChannelPlacement::kPrefaulted);
}

TEST(Topology, DetectFindsAtLeastOneCpu) {
  Topology topo = Topology::Detect();
  EXPECT_GE(topo.cpu_count(), 1);
}

TEST(Topology, SyntheticEnumerates) {
  Topology topo = Topology::Synthetic(4);
  EXPECT_EQ(topo.cpu_count(), 4);
  EXPECT_EQ(topo.cpus().size(), 4u);
}

TEST(Topology, DistinctPlacementWithinMask) {
  Topology topo = Topology::Synthetic(4);
  EXPECT_EQ(topo.CpuForNode(0, 4), 0);
  EXPECT_EQ(topo.CpuForNode(1, 4), 1);
  EXPECT_EQ(topo.CpuForNode(2, 4), 2);
  EXPECT_EQ(topo.CpuForNode(3, 4), 3);
}

TEST(Topology, NegativeNodeIsInvalid) {
  Topology topo = Topology::Synthetic(2);
  EXPECT_EQ(topo.CpuForNode(-1, 4), -1);
}

// Regression: on an affinity mask smaller than total_nodes + 2 the old
// round-robin wrapped the helper threads (feeder and collector are
// registered after the pipeline nodes) onto the SAME cpus as pipeline
// nodes. Two hard-pinned threads on one cpu serialize the hot path — the
// scheduler cannot separate them. Oversubscribed threads must run unpinned
// (-1) instead of colliding with a pinned pipeline node.
TEST(Topology, SmallMaskDoesNotPinHelpersOntoPipelineNodes) {
  const int pipeline_nodes = 2;
  const int total = pipeline_nodes + 2;  // + feeder + collector
  Topology topo = Topology::Synthetic(pipeline_nodes);

  std::vector<int> node_cpus;
  for (int n = 0; n < pipeline_nodes; ++n) {
    node_cpus.push_back(topo.CpuForNode(n, total));
  }
  for (int helper = pipeline_nodes; helper < total; ++helper) {
    const int cpu = topo.CpuForNode(helper, total);
    for (int node_cpu : node_cpus) {
      EXPECT_TRUE(cpu == -1 || cpu != node_cpu)
          << "helper thread " << helper << " pinned onto pipeline cpu "
          << node_cpu;
    }
  }
  // Pipeline nodes keep one distinct cpu each.
  EXPECT_EQ(node_cpus[0], 0);
  EXPECT_EQ(node_cpus[1], 1);
}

TEST(Affinity, AvailableCpuCountPositive) {
  EXPECT_GE(AvailableCpuCount(), 1);
}

TEST(Affinity, PinToFirstCpuSucceedsOnLinux) {
#if defined(__linux__)
  Topology topo = Topology::Detect();
  EXPECT_TRUE(PinThisThread(topo.cpus().front()));
#else
  GTEST_SKIP();
#endif
}

TEST(Affinity, PinToInvalidCpuFails) { EXPECT_FALSE(PinThisThread(-1)); }

// -- Slab allocation and the huge-page ladder ---------------------------------

/// Saves/restores one env knob (same shape as ScopedTopologyEnv) so the
/// slab tests compose with CI legs that set the huge-page knobs globally.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(Slab, BackingNamesAreStable) {
  EXPECT_STREQ(ToString(SlabBacking::kNone), "none");
  EXPECT_STREQ(ToString(SlabBacking::kPages), "pages");
  EXPECT_STREQ(ToString(SlabBacking::kTransparentHuge), "thp");
  EXPECT_STREQ(ToString(SlabBacking::kHugeTlb), "hugetlb");
}

TEST(Slab, SmallAllocationUsesPlainPagesAndIsWritable) {
  ScopedEnv on("SJOIN_HUGE_PAGES", "1");
  ScopedEnv thresh("SJOIN_HUGE_PAGE_MIN_BYTES", nullptr);
  Slab slab = AllocateSlab(4096);
  ASSERT_NE(slab.addr, nullptr);
  EXPECT_EQ(slab.backing, SlabBacking::kPages);  // below the 2 MB threshold
  EXPECT_GE(slab.bytes, 4096u);
  auto* p = static_cast<unsigned char*>(slab.addr);
  for (std::size_t i = 0; i < 4096; ++i) p[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(p[4095], static_cast<unsigned char>(4095));
  FreeSlab(&slab);
  EXPECT_EQ(slab.addr, nullptr);
  EXPECT_EQ(slab.backing, SlabBacking::kNone);
}

TEST(Slab, ZeroBytesYieldsEmptySlab) {
  Slab slab = AllocateSlab(0);
  EXPECT_EQ(slab.addr, nullptr);
  EXPECT_EQ(slab.bytes, 0u);
  EXPECT_EQ(slab.backing, SlabBacking::kNone);
  FreeSlab(&slab);  // no-op, must be safe
}

TEST(Slab, KnobDisablesHugeRungsEvenForBigRequests) {
  ScopedEnv off("SJOIN_HUGE_PAGES", "0");
  Slab slab = AllocateSlab(4 * kHugePageSize);
  ASSERT_NE(slab.addr, nullptr);
  EXPECT_EQ(slab.backing, SlabBacking::kPages);
  FreeSlab(&slab);
}

// With the threshold lowered, a modest allocation climbs the ladder. Which
// rung it lands on depends on host policy (hugetlb pool may be empty, THP
// may be disabled), so the assertion is: a valid rung, usable memory, and
// honest reporting (never kNone for a live slab).
TEST(Slab, LoweredThresholdClimbsLadderGracefully) {
  ScopedEnv on("SJOIN_HUGE_PAGES", "1");
  ScopedEnv thresh("SJOIN_HUGE_PAGE_MIN_BYTES", "65536");
  EXPECT_EQ(HugePageThresholdBytes(), 65536u);
  Slab slab = AllocateSlab(256 * 1024);
  ASSERT_NE(slab.addr, nullptr);
  EXPECT_NE(slab.backing, SlabBacking::kNone);
  auto* p = static_cast<unsigned char*>(slab.addr);
  p[0] = 1;
  p[256 * 1024 - 1] = 2;
  EXPECT_EQ(p[0] + p[256 * 1024 - 1], 3);
  FreeSlab(&slab);
}

TEST(Slab, SlabArrayResetMoveAndIndexing) {
  SlabArray<int64_t> arr;
  EXPECT_TRUE(arr.empty());
  arr.Reset(1000);
  EXPECT_EQ(arr.count(), 1000u);
  ASSERT_NE(arr.data(), nullptr);
  for (std::size_t i = 0; i < 1000; ++i) arr[i] = static_cast<int64_t>(i * 3);
  EXPECT_EQ(arr[999], 2997);
  SlabArray<int64_t> moved = std::move(arr);
  EXPECT_TRUE(arr.empty());  // NOLINT(bugprone-use-after-move): pinned reset
  EXPECT_EQ(moved.count(), 1000u);
  EXPECT_EQ(moved[999], 2997);
  moved.Reset(0);
  EXPECT_TRUE(moved.empty());
}

TEST(Backoff, EscalatesAndResets) {
  Backoff b;
  EXPECT_EQ(b.attempts(), 0);
  for (int i = 0; i < 20; ++i) b.Pause();
  EXPECT_EQ(b.attempts(), 20);
  b.Reset();
  EXPECT_EQ(b.attempts(), 0);
}

class CountingSteppable : public Steppable {
 public:
  explicit CountingSteppable(int budget) : budget_(budget) {}
  bool Step() override {
    if (budget_ <= 0) return false;
    --budget_;
    ++steps_;
    return true;
  }
  int steps() const { return steps_; }

 private:
  int budget_;
  int steps_ = 0;
};

TEST(SequentialExecutor, RunsUntilQuiescent) {
  CountingSteppable a(5), b(3);
  SequentialExecutor exec;
  exec.Add(&a);
  exec.Add(&b);
  const std::size_t passes = exec.RunUntilQuiescent();
  EXPECT_EQ(a.steps(), 5);
  EXPECT_EQ(b.steps(), 3);
  EXPECT_EQ(passes, 5u);  // passes 0..4 progress; pass 5 is silent
}

TEST(SequentialExecutor, StepOnceReportsProgress) {
  CountingSteppable a(1);
  SequentialExecutor exec;
  exec.Add(&a);
  EXPECT_TRUE(exec.StepOnce());
  EXPECT_FALSE(exec.StepOnce());
}

TEST(SequentialExecutor, HonorsPassLimit) {
  class Endless : public Steppable {
   public:
    bool Step() override { return true; }
  } endless;
  SequentialExecutor exec;
  exec.Add(&endless);
  EXPECT_EQ(exec.RunUntilQuiescent(100), 100u);
}

class AtomicCounterSteppable : public Steppable {
 public:
  bool Step() override {
    count.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  std::atomic<uint64_t> count{0};
};

TEST(ThreadedExecutor, StartsAndStops) {
  AtomicCounterSteppable a, b;
  ThreadedExecutor exec(Topology::Detect());
  exec.Add(&a);
  exec.Add(&b);
  exec.Start();
  EXPECT_TRUE(exec.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  exec.Stop();
  EXPECT_FALSE(exec.running());
  EXPECT_GT(a.count.load(), 0u);
  EXPECT_GT(b.count.load(), 0u);
}

TEST(ThreadedExecutor, StopIsIdempotent) {
  AtomicCounterSteppable a;
  ThreadedExecutor exec;
  exec.Add(&a);
  exec.Start();
  exec.Stop();
  exec.Stop();  // no crash
  EXPECT_FALSE(exec.running());
}

TEST(ThreadedExecutor, OnThreadStartCompletesBeforeAnyStep) {
  // The start barrier orders every OnThreadStart (consumer-side channel
  // prefault) before any Step (production) — across ALL threads, not just
  // within each thread.
  struct Barriered : Steppable {
    std::atomic<int>* started = nullptr;
    std::atomic<int>* violations = nullptr;
    int expected = 0;
    void OnThreadStart() override {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      started->fetch_add(1, std::memory_order_acq_rel);
    }
    bool Step() override {
      if (started->load(std::memory_order_acquire) < expected) {
        violations->fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
  };
  std::atomic<int> started{0};
  std::atomic<int> violations{0};
  Barriered a, b, c;
  for (Barriered* s : {&a, &b, &c}) {
    s->started = &started;
    s->violations = &violations;
    s->expected = 3;
  }
  ThreadedExecutor exec(Topology::Synthetic(2));
  exec.Add(&a);
  exec.Add(&b);
  exec.AddHelper(&c);
  exec.Start();
  EXPECT_EQ(started.load(), 3);  // Start() returns only after the barrier
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  exec.Stop();
  EXPECT_EQ(violations.load(), 0);
}

TEST(ThreadedExecutor, IdleSteppableBacksOffWithoutSpinningHot) {
  // A steppable that never has work must not prevent Stop().
  class Idle : public Steppable {
   public:
    bool Step() override { return false; }
  } idle;
  ThreadedExecutor exec;
  exec.Add(&idle);
  exec.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  exec.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace sjoin
