// Tests for topology, affinity, backoff, and the two executors.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/affinity.hpp"
#include "runtime/backoff.hpp"
#include "runtime/executor.hpp"
#include "runtime/topology.hpp"

namespace sjoin {
namespace {

TEST(Topology, DetectFindsAtLeastOneCpu) {
  Topology topo = Topology::Detect();
  EXPECT_GE(topo.cpu_count(), 1);
}

TEST(Topology, SyntheticEnumerates) {
  Topology topo = Topology::Synthetic(4);
  EXPECT_EQ(topo.cpu_count(), 4);
  EXPECT_EQ(topo.cpus().size(), 4u);
}

TEST(Topology, DistinctPlacementWithinMask) {
  Topology topo = Topology::Synthetic(4);
  EXPECT_EQ(topo.CpuForNode(0, 4), 0);
  EXPECT_EQ(topo.CpuForNode(1, 4), 1);
  EXPECT_EQ(topo.CpuForNode(2, 4), 2);
  EXPECT_EQ(topo.CpuForNode(3, 4), 3);
}

TEST(Topology, NegativeNodeIsInvalid) {
  Topology topo = Topology::Synthetic(2);
  EXPECT_EQ(topo.CpuForNode(-1, 4), -1);
}

// Regression: on an affinity mask smaller than total_nodes + 2 the old
// round-robin wrapped the helper threads (feeder and collector are
// registered after the pipeline nodes) onto the SAME cpus as pipeline
// nodes. Two hard-pinned threads on one cpu serialize the hot path — the
// scheduler cannot separate them. Oversubscribed threads must run unpinned
// (-1) instead of colliding with a pinned pipeline node.
TEST(Topology, SmallMaskDoesNotPinHelpersOntoPipelineNodes) {
  const int pipeline_nodes = 2;
  const int total = pipeline_nodes + 2;  // + feeder + collector
  Topology topo = Topology::Synthetic(pipeline_nodes);

  std::vector<int> node_cpus;
  for (int n = 0; n < pipeline_nodes; ++n) {
    node_cpus.push_back(topo.CpuForNode(n, total));
  }
  for (int helper = pipeline_nodes; helper < total; ++helper) {
    const int cpu = topo.CpuForNode(helper, total);
    for (int node_cpu : node_cpus) {
      EXPECT_TRUE(cpu == -1 || cpu != node_cpu)
          << "helper thread " << helper << " pinned onto pipeline cpu "
          << node_cpu;
    }
  }
  // Pipeline nodes keep one distinct cpu each.
  EXPECT_EQ(node_cpus[0], 0);
  EXPECT_EQ(node_cpus[1], 1);
}

TEST(Affinity, AvailableCpuCountPositive) {
  EXPECT_GE(AvailableCpuCount(), 1);
}

TEST(Affinity, PinToFirstCpuSucceedsOnLinux) {
#if defined(__linux__)
  Topology topo = Topology::Detect();
  EXPECT_TRUE(PinThisThread(topo.cpus().front()));
#else
  GTEST_SKIP();
#endif
}

TEST(Affinity, PinToInvalidCpuFails) { EXPECT_FALSE(PinThisThread(-1)); }

TEST(Backoff, EscalatesAndResets) {
  Backoff b;
  EXPECT_EQ(b.attempts(), 0);
  for (int i = 0; i < 20; ++i) b.Pause();
  EXPECT_EQ(b.attempts(), 20);
  b.Reset();
  EXPECT_EQ(b.attempts(), 0);
}

class CountingSteppable : public Steppable {
 public:
  explicit CountingSteppable(int budget) : budget_(budget) {}
  bool Step() override {
    if (budget_ <= 0) return false;
    --budget_;
    ++steps_;
    return true;
  }
  int steps() const { return steps_; }

 private:
  int budget_;
  int steps_ = 0;
};

TEST(SequentialExecutor, RunsUntilQuiescent) {
  CountingSteppable a(5), b(3);
  SequentialExecutor exec;
  exec.Add(&a);
  exec.Add(&b);
  const std::size_t passes = exec.RunUntilQuiescent();
  EXPECT_EQ(a.steps(), 5);
  EXPECT_EQ(b.steps(), 3);
  EXPECT_EQ(passes, 5u);  // passes 0..4 progress; pass 5 is silent
}

TEST(SequentialExecutor, StepOnceReportsProgress) {
  CountingSteppable a(1);
  SequentialExecutor exec;
  exec.Add(&a);
  EXPECT_TRUE(exec.StepOnce());
  EXPECT_FALSE(exec.StepOnce());
}

TEST(SequentialExecutor, HonorsPassLimit) {
  class Endless : public Steppable {
   public:
    bool Step() override { return true; }
  } endless;
  SequentialExecutor exec;
  exec.Add(&endless);
  EXPECT_EQ(exec.RunUntilQuiescent(100), 100u);
}

class AtomicCounterSteppable : public Steppable {
 public:
  bool Step() override {
    count.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  std::atomic<uint64_t> count{0};
};

TEST(ThreadedExecutor, StartsAndStops) {
  AtomicCounterSteppable a, b;
  ThreadedExecutor exec(Topology::Detect());
  exec.Add(&a);
  exec.Add(&b);
  exec.Start();
  EXPECT_TRUE(exec.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  exec.Stop();
  EXPECT_FALSE(exec.running());
  EXPECT_GT(a.count.load(), 0u);
  EXPECT_GT(b.count.load(), 0u);
}

TEST(ThreadedExecutor, StopIsIdempotent) {
  AtomicCounterSteppable a;
  ThreadedExecutor exec;
  exec.Add(&a);
  exec.Start();
  exec.Stop();
  exec.Stop();  // no crash
  EXPECT_FALSE(exec.running());
}

TEST(ThreadedExecutor, IdleSteppableBacksOffWithoutSpinningHot) {
  // A steppable that never has work must not prevent Stop().
  class Idle : public Steppable {
   public:
    bool Step() override { return false; }
  } idle;
  ThreadedExecutor exec;
  exec.Add(&idle);
  exec.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  exec.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace sjoin
