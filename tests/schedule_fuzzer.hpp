// Adversarial schedule fuzzing. Correctness of the handshake-join protocols
// must hold for *any* interleaving of node executions — the paper's
// arguments rest on per-channel FIFO order only. The fuzzer executes a
// pipeline under seeded random schedules: every round the components
// (feeder, nodes, collector) run in a random permutation, and components
// are randomly "starved" for up to a bounded number of consecutive rounds.
// This reproduces the races the protocols guard against (in-flight
// crossings, expiry chases, expedition-end ordering) deterministically.
//
// Starvation stays bounded and the feeder injects at most one driver event
// per round, so a window of w events is always much larger than the
// pipeline transit time — the regime the algorithms (and the paper) assume.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "runtime/executor.hpp"
#include "stream/admission.hpp"
#include "stream/collector.hpp"
#include "stream/feeder.hpp"
#include "stream/handlers.hpp"
#include "stream/hwm.hpp"
#include "stream/script.hpp"
#include "stream/source.hpp"

#include "test_util.hpp"

namespace sjoin::test {

struct FuzzResult {
  std::vector<ResultMsg<TR, TS>> results;
  std::vector<Timestamp> punctuations;
  std::vector<LossBound> losses;  // delivered OnLoss bounds, in order
  bool quiesced = false;
  uint64_t rounds = 0;
};

struct FuzzOptions {
  uint64_t seed = 1;
  double skip_probability = 0.35;
  int max_consecutive_skips = 3;
  /// Overload control: wired into the feeder when set; delivered loss
  /// bounds are captured into FuzzResult::losses.
  AdmissionController* admission = nullptr;
  /// LLHJ completion gate for expiries (Feeder::Options::expiry_gate).
  const HighWaterMarks* expiry_gate = nullptr;
  /// Invoked after every round — invariant probes (HWM monotonicity, ...).
  std::function<void()> per_round;
};

/// Runs `pipeline` over `script` under a seeded adversarial schedule.
template <typename Pipeline>
FuzzResult RunFuzzedSchedule(Pipeline& pipeline,
                             const DriverScript<TR, TS>& script,
                             const FuzzOptions& fuzz) {
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options feeder_options;
  feeder_options.batch_size = 1;
  feeder_options.max_events_per_step = 1;
  feeder_options.admission = fuzz.admission;
  feeder_options.expiry_gate = fuzz.expiry_gate;
  Feeder<TR, TS> feeder(pipeline.ports(), &source, feeder_options);

  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);

  std::vector<Steppable*> components;
  components.push_back(&feeder);
  for (Steppable* node : pipeline.nodes()) components.push_back(node);
  components.push_back(collector.get());

  std::vector<int> skips(components.size(), 0);
  std::vector<std::size_t> order(components.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  Rng rng(fuzz.seed);
  FuzzResult out;
  constexpr uint64_t kMaxRounds = 1 << 22;
  for (uint64_t round = 0; round < kMaxRounds; ++round) {
    // Fisher-Yates shuffle of the execution order.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    bool progress = false;
    for (std::size_t idx : order) {
      if (skips[idx] < fuzz.max_consecutive_skips &&
          rng.Chance(fuzz.skip_probability)) {
        ++skips[idx];
        continue;
      }
      skips[idx] = 0;
      progress |= components[idx]->Step();
    }
    if (fuzz.per_round) fuzz.per_round();

    if (!progress) {
      // Confirm quiescence with a clean, skip-free pass.
      bool confirm = false;
      for (Steppable* c : components) confirm |= c->Step();
      if (!confirm) {
        out.quiesced = true;
        out.rounds = round;
        break;
      }
    }
  }

  EXPECT_TRUE(out.quiesced) << "schedule did not quiesce";
  EXPECT_TRUE(feeder.finished());
  out.results = handler.results();
  out.punctuations = handler.punctuations();
  out.losses = handler.losses();
  return out;
}

/// Back-compat wrapper: the original positional signature.
template <typename Pipeline>
FuzzResult RunFuzzedSchedule(Pipeline& pipeline,
                             const DriverScript<TR, TS>& script,
                             uint64_t seed, double skip_probability = 0.35,
                             int max_consecutive_skips = 3) {
  FuzzOptions fuzz;
  fuzz.seed = seed;
  fuzz.skip_probability = skip_probability;
  fuzz.max_consecutive_skips = max_consecutive_skips;
  return RunFuzzedSchedule(pipeline, script, fuzz);
}

}  // namespace sjoin::test
