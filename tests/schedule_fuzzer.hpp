// Adversarial schedule fuzzing. Correctness of the handshake-join protocols
// must hold for *any* interleaving of node executions — the paper's
// arguments rest on per-channel FIFO order only. The fuzzer executes a
// pipeline under seeded random schedules: every round the components
// (feeder, nodes, collector) run in a random permutation, and components
// are randomly "starved" for up to a bounded number of consecutive rounds.
// This reproduces the races the protocols guard against (in-flight
// crossings, expiry chases, expedition-end ordering) deterministically.
//
// Starvation stays bounded and the feeder injects at most one driver event
// per round, so a window of w events is always much larger than the
// pipeline transit time — the regime the algorithms (and the paper) assume.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "runtime/executor.hpp"
#include "stream/collector.hpp"
#include "stream/feeder.hpp"
#include "stream/handlers.hpp"
#include "stream/script.hpp"
#include "stream/source.hpp"

#include "test_util.hpp"

namespace sjoin::test {

struct FuzzResult {
  std::vector<ResultMsg<TR, TS>> results;
  bool quiesced = false;
  uint64_t rounds = 0;
};

/// Runs `pipeline` over `script` under a seeded adversarial schedule.
template <typename Pipeline>
FuzzResult RunFuzzedSchedule(Pipeline& pipeline,
                             const DriverScript<TR, TS>& script,
                             uint64_t seed, double skip_probability = 0.35,
                             int max_consecutive_skips = 3) {
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options feeder_options;
  feeder_options.batch_size = 1;
  feeder_options.max_events_per_step = 1;
  Feeder<TR, TS> feeder(pipeline.ports(), &source, feeder_options);

  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);

  std::vector<Steppable*> components;
  components.push_back(&feeder);
  for (Steppable* node : pipeline.nodes()) components.push_back(node);
  components.push_back(collector.get());

  std::vector<int> skips(components.size(), 0);
  std::vector<std::size_t> order(components.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  Rng rng(seed);
  FuzzResult out;
  constexpr uint64_t kMaxRounds = 1 << 22;
  for (uint64_t round = 0; round < kMaxRounds; ++round) {
    // Fisher-Yates shuffle of the execution order.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    bool progress = false;
    for (std::size_t idx : order) {
      if (skips[idx] < max_consecutive_skips &&
          rng.Chance(skip_probability)) {
        ++skips[idx];
        continue;
      }
      skips[idx] = 0;
      progress |= components[idx]->Step();
    }

    if (!progress) {
      // Confirm quiescence with a clean, skip-free pass.
      bool confirm = false;
      for (Steppable* c : components) confirm |= c->Step();
      if (!confirm) {
        out.quiesced = true;
        out.rounds = round;
        break;
      }
    }
  }

  EXPECT_TRUE(out.quiesced) << "schedule did not quiesce";
  EXPECT_TRUE(feeder.finished());
  out.results = handler.results();
  return out;
}

}  // namespace sjoin::test
