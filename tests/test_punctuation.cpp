// Tests for the punctuation machinery (paper Section 6): high-water marks,
// the collector's read-marks-then-vacuum protocol, and the punctuation
// invariant — no result emitted after <t_p> may carry a timestamp < t_p.
#include <gtest/gtest.h>

#include <vector>

#include "llhj/llhj_pipeline.hpp"
#include "stream/collector.hpp"
#include "stream/hwm.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyEq;
using test::MakeRandomTrace;
using test::TR;
using test::TraceConfig;
using test::TS;

TEST(HighWaterMarks, StartsAtMinimum) {
  HighWaterMarks hwm;
  EXPECT_EQ(hwm.Get(StreamSide::kR), kMinTimestamp);
  EXPECT_EQ(hwm.Get(StreamSide::kS), kMinTimestamp);
  EXPECT_EQ(hwm.SafeMin(), kMinTimestamp);
}

TEST(HighWaterMarks, SafeMinIsMinimumOfSides) {
  HighWaterMarks hwm;
  hwm.Publish(StreamSide::kR, 100, 0);
  EXPECT_EQ(hwm.SafeMin(), kMinTimestamp);  // S not seen yet
  hwm.Publish(StreamSide::kS, 40, 0);
  EXPECT_EQ(hwm.SafeMin(), 40);
  hwm.Publish(StreamSide::kS, 120, 1);
  EXPECT_EQ(hwm.SafeMin(), 100);
}

TEST(HighWaterMarks, CompletedSeqTracksFifoCompletion) {
  HighWaterMarks hwm;
  EXPECT_EQ(hwm.CompletedSeq(StreamSide::kR), -1);
  EXPECT_EQ(hwm.CompletedSeq(StreamSide::kS), -1);
  hwm.Publish(StreamSide::kR, 10, 0);
  hwm.Publish(StreamSide::kR, 20, 1);
  EXPECT_EQ(hwm.CompletedSeq(StreamSide::kR), 1);
  EXPECT_EQ(hwm.CompletedSeq(StreamSide::kS), -1);
  hwm.Publish(StreamSide::kS, 5, 7);
  EXPECT_EQ(hwm.CompletedSeq(StreamSide::kS), 7);
}

/// An output handler that checks the punctuation guarantee on the fly.
class PunctuationChecker : public OutputHandler<TR, TS> {
 public:
  void OnResult(const ResultMsg<TR, TS>& m) override {
    results.push_back(m);
    if (m.ts < last_punctuation) ++violations;
  }
  void OnPunctuation(Timestamp tp) override {
    if (tp <= last_punctuation && last_punctuation != kMinTimestamp) {
      ++non_monotonic;
    }
    last_punctuation = tp;
    ++punctuations;
  }

  std::vector<ResultMsg<TR, TS>> results;
  Timestamp last_punctuation = kMinTimestamp;
  int violations = 0;
  int non_monotonic = 0;
  int punctuations = 0;
};

TEST(Collector, EmitsPunctuationsWithInvariant) {
  TraceConfig config;
  config.events = 300;
  config.key_domain = 4;
  config.max_gap_us = 5;
  auto trace = MakeRandomTrace(17, config);
  auto script = BuildDriverScript(trace, WindowSpec::Time(80),
                                  WindowSpec::Time(80));

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;
  options.channel_capacity = 64;
  options.punctuate = true;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);

  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  PunctuationChecker checker;
  auto collector = pipeline.MakeCollector(&checker);

  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  EXPECT_GT(checker.punctuations, 0);
  EXPECT_EQ(checker.violations, 0)
      << "results with ts below an already-emitted punctuation";
  EXPECT_EQ(checker.non_monotonic, 0);
  EXPECT_FALSE(checker.results.empty());
}

TEST(Collector, NoPunctuationsWhenDisabled) {
  TraceConfig config;
  config.events = 120;
  auto trace = MakeRandomTrace(18, config);
  auto script = BuildDriverScript(trace, WindowSpec::Time(50),
                                  WindowSpec::Time(50));

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 3;
  options.channel_capacity = 64;
  options.punctuate = false;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);

  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  PunctuationChecker checker;
  auto collector = pipeline.MakeCollector(&checker);

  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  EXPECT_EQ(checker.punctuations, 0);
  EXPECT_EQ(collector->punctuations_emitted(), 0u);
}

TEST(Collector, PunctuationValueTracksSlowerStream) {
  // R advances far ahead of S; punctuations must follow min(marks) = S.
  Trace<TR, TS> trace;
  for (int i = 0; i < 10; ++i) {
    trace.push_back(ArriveR<TR, TS>(i * 100, TR{1, i}));
  }
  trace.push_back(ArriveS<TR, TS>(950, TS{1, 50}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(10'000),
                                  WindowSpec::Time(10'000), false);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 2;
  options.channel_capacity = 64;
  options.punctuate = true;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);

  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  PunctuationChecker checker;
  auto collector = pipeline.MakeCollector(&checker);

  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  // R's last completed timestamp is 900, S's is 950; the safe punctuation
  // is the minimum of the two marks.
  EXPECT_EQ(checker.last_punctuation, 900);
  EXPECT_EQ(collector->last_punctuation(), 900);
}

// -- QueryRouter punctuation broadcast ---------------------------------------

/// Counts punctuation deliveries (the dedupe regression target).
class PunctuationCounter : public OutputHandler<TR, TS> {
 public:
  void OnResult(const ResultMsg<TR, TS>&) override { ++results; }
  void OnPunctuation(Timestamp tp) override {
    ++punctuations;
    last = tp;
  }
  void OnQueryRetired(QueryId q) override { retired.push_back(q); }

  int results = 0;
  int punctuations = 0;
  Timestamp last = kMinTimestamp;
  std::vector<QueryId> retired;
};

// Regression: a handler registered for SEVERAL queries used to receive
// every punctuation once per registration. Punctuations are a property of
// the shared windows, so each distinct handler must see each punctuation
// exactly once per (epoch, punctuation seq).
TEST(QueryRouter, PunctuationDeliveredOncePerHandler) {
  QueryRouter<TR, TS> router;
  PunctuationCounter shared;
  PunctuationCounter solo;
  router.Register(&shared);  // q0
  router.Register(&shared);  // q1 — same handler again
  router.Register(&solo);    // q2
  router.BeginEpoch(0, {0, 1, 2});

  router.OnPunctuation(100);
  EXPECT_EQ(shared.punctuations, 1) << "duplicate broadcast to a handler "
                                       "registered for two queries";
  EXPECT_EQ(solo.punctuations, 1);

  router.OnPunctuation(200);
  EXPECT_EQ(shared.punctuations, 2);  // new seq => delivered again, once
  EXPECT_EQ(solo.punctuations, 2);
  EXPECT_EQ(shared.last, 200);
}

// A retired query's handler stops receiving punctuations (unless it still
// owns another live query).
TEST(QueryRouter, RetiredQueriesDropOutOfBroadcast) {
  QueryRouter<TR, TS> router;
  PunctuationCounter a;
  PunctuationCounter b;
  router.Register(&a);  // q0
  router.Register(&b);  // q1
  router.BeginEpoch(0, {0, 1});
  router.BeginEpoch(1, {0}, /*removed=*/{1});  // q1 removed at epoch 1

  router.OnPunctuation(10);
  EXPECT_EQ(b.punctuations, 1);  // still draining: broadcast continues

  router.OnEpochDrained(1);  // final results of q1 delivered
  ASSERT_EQ(b.retired.size(), 1u);
  EXPECT_EQ(b.retired[0], 1u);

  router.OnPunctuation(20);
  EXPECT_EQ(a.punctuations, 2);
  EXPECT_EQ(b.punctuations, 1) << "retired query still receives broadcasts";
}

// Per-epoch membership: a result tagged with an epoch its query was not a
// member of counts as misrouted and is dropped (pipeline-bug containment).
TEST(QueryRouter, EpochMembershipGatesRouting) {
  QueryRouter<TR, TS> router;
  PunctuationCounter a;
  router.Register(&a);  // q0
  router.BeginEpoch(0, {0});
  router.BeginEpoch(1, {}, /*removed=*/{0});

  ResultMsg<TR, TS> ok;
  ok.query = 0;
  ok.epoch = 0;
  router.OnResult(ok);
  EXPECT_EQ(a.results, 1);
  EXPECT_EQ(router.misrouted(), 0u);

  ResultMsg<TR, TS> stale;
  stale.query = 0;
  stale.epoch = 1;  // q0 is not a member of epoch 1
  router.OnResult(stale);
  EXPECT_EQ(a.results, 1);
  EXPECT_EQ(router.misrouted(), 1u);
}

TEST(Collector, TotalCollectedCounts) {
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(0, TR{1, 0}));
  trace.push_back(ArriveS<TR, TS>(1, TS{1, 1}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(10),
                                  WindowSpec::Time(10));

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 2;
  options.channel_capacity = 64;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);

  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);

  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  EXPECT_EQ(collector->total_collected(), 1u);
  EXPECT_EQ(handler.results().size(), 1u);
}

}  // namespace
}  // namespace sjoin
