// Post-quiescence protocol invariants. Beyond result-set equality, the
// pipelines must reach a *clean* internal state once input stops: no
// orphaned in-flight buffers, no lingering expedition flags, no tombstones
// when the expiry gate is active, resident counts exactly equal to the
// live windows, and high-water marks equal to the last completed tuples.
// Violations here would indicate leaks that only manifest as wrong results
// much later (or as unbounded memory growth in long-running deployments).
#include <gtest/gtest.h>

#include "baseline/kang_join.hpp"
#include "hsj/hsj_pipeline.hpp"
#include "llhj/llhj_pipeline.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyEq;
using test::MakeRandomTrace;
using test::TR;
using test::TraceConfig;
using test::TS;

struct LiveCounts {
  std::size_t r = 0;
  std::size_t s = 0;
  Timestamp last_r_ts = kMinTimestamp;
  Timestamp last_s_ts = kMinTimestamp;
  Seq last_r_seq = 0;
  Seq last_s_seq = 0;
  bool any_r = false;
  bool any_s = false;
};

/// Independently derives the expected end-of-script state.
LiveCounts ComputeLive(const DriverScript<TR, TS>& script) {
  LiveCounts out;
  for (const auto& e : script.events) {
    switch (e.op) {
      case DriverOp::kArriveR:
        ++out.r;
        out.last_r_ts = e.ts;
        out.last_r_seq = e.seq;
        out.any_r = true;
        break;
      case DriverOp::kArriveS:
        ++out.s;
        out.last_s_ts = e.ts;
        out.last_s_seq = e.seq;
        out.any_s = true;
        break;
      case DriverOp::kExpireR:
        --out.r;
        break;
      case DriverOp::kExpireS:
        --out.s;
        break;
      default:
        break;
    }
  }
  return out;
}

class LlhjInvariants : public ::testing::TestWithParam<int> {};

TEST_P(LlhjInvariants, CleanStateAfterQuiescence) {
  const int nodes = GetParam();
  TraceConfig config;
  config.events = 400;
  config.key_domain = 6;
  config.max_gap_us = 3;
  auto trace = MakeRandomTrace(7 + static_cast<uint64_t>(nodes), config);
  auto script = BuildDriverScript(trace, WindowSpec::Count(40),
                                  WindowSpec::Count(31));
  const LiveCounts live = ComputeLive(script);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = nodes;
  options.channel_capacity = 64;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);

  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 4;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);
  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();
  ASSERT_TRUE(feeder.finished());

  std::size_t resident_r = 0, resident_s = 0;
  for (int k = 0; k < nodes; ++k) {
    const auto& node = pipeline.node(k);
    // No tuple may remain "virtually in flight".
    EXPECT_EQ(node.inflight_s(), 0u) << "node " << k;
    // Every expedition must have completed and cleared its flag.
    EXPECT_EQ(node.r_store().expedited_count(), 0u) << "node " << k;
    // With the expiry gate, an expiry can never overtake its tuple, so the
    // tombstone backstop must never fire.
    EXPECT_EQ(node.counters().tombstoned, 0u) << "node " << k;
    EXPECT_EQ(node.counters().anomalies, 0u) << "node " << k;
    resident_r += node.r_store().size();
    resident_s += node.s_store().size();
  }

  // Stored copies must be exactly the unexpired window contents.
  EXPECT_EQ(resident_r, live.r);
  EXPECT_EQ(resident_s, live.s);

  // High-water marks must have reached the final arrivals of each side.
  if (live.any_r) {
    EXPECT_EQ(pipeline.hwm().Get(StreamSide::kR), live.last_r_ts);
    EXPECT_EQ(pipeline.hwm().CompletedSeq(StreamSide::kR),
              static_cast<int64_t>(live.last_r_seq));
  }
  if (live.any_s) {
    EXPECT_EQ(pipeline.hwm().Get(StreamSide::kS), live.last_s_ts);
    EXPECT_EQ(pipeline.hwm().CompletedSeq(StreamSide::kS),
              static_cast<int64_t>(live.last_s_seq));
  }

  // Nothing left anywhere in the channels.
  EXPECT_EQ(pipeline.ApproxBacklog(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Nodes, LlhjInvariants, ::testing::Values(1, 2, 4, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

class HsjInvariants : public ::testing::TestWithParam<int> {};

TEST_P(HsjInvariants, CleanStateAfterQuiescence) {
  const int nodes = GetParam();
  TraceConfig config;
  config.events = 400;
  config.key_domain = 6;
  auto trace = MakeRandomTrace(17 + static_cast<uint64_t>(nodes), config);
  // No flush: residency must still be exactly the live windows.
  auto script = BuildDriverScript(trace, WindowSpec::Count(40),
                                  WindowSpec::Count(31),
                                  /*flush_at_end=*/false);
  const LiveCounts live = ComputeLive(script);

  typename HsjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = nodes;  // self-balancing
  options.channel_capacity = 64;
  HsjPipeline<TR, TS, KeyEq> pipeline(options);

  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.max_events_per_step = 1;
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);
  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();
  ASSERT_TRUE(feeder.finished());

  std::size_t resident_r = 0, resident_s = 0;
  for (int k = 0; k < nodes; ++k) {
    const auto& node = pipeline.node(k);
    EXPECT_EQ(node.inflight_s(), 0u) << "node " << k;
    EXPECT_EQ(node.counters().anomalies, 0u) << "node " << k;
    resident_r += node.resident_r();
    resident_s += node.resident_s();
  }
  EXPECT_EQ(resident_r, live.r);
  EXPECT_EQ(resident_s, live.s);

  // Self-balancing: interior segments must be within one tuple of their
  // downstream neighbour (end nodes accumulate the old remainder).
  for (int k = 0; k + 1 < nodes; ++k) {
    EXPECT_LE(pipeline.node(k).resident_r(),
              pipeline.node(k + 1).resident_r() + 1)
        << "R segment balance violated at node " << k;
  }
  for (int k = nodes - 1; k > 0; --k) {
    EXPECT_LE(pipeline.node(k).resident_s(),
              pipeline.node(k - 1).resident_s() + 1)
        << "S segment balance violated at node " << k;
  }

  EXPECT_EQ(pipeline.ApproxBacklog(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Nodes, HsjInvariants, ::testing::Values(1, 2, 4, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Invariants, LlhjSurvivesAlternatingBurstTraffic) {
  // Failure-injection-flavoured workload: long one-sided bursts (R drought
  // then S drought) stress window fluctuation, the gate, and balancing.
  Trace<TR, TS> trace;
  Timestamp ts = 0;
  int32_t id = 0;
  Rng rng(1234);
  for (int burst = 0; burst < 20; ++burst) {
    const bool r_side = burst % 2 == 0;
    for (int i = 0; i < 25; ++i) {
      const int32_t key = static_cast<int32_t>(rng.UniformInt(1, 5));
      if (r_side) {
        trace.push_back(ArriveR<TR, TS>(ts, TR{key, id++}));
      } else {
        trace.push_back(ArriveS<TR, TS>(ts, TS{key, id++}));
      }
      ts += 2;
    }
  }
  auto script = BuildDriverScript(trace, WindowSpec::Time(120),
                                  WindowSpec::Time(120));
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;
  options.channel_capacity = 64;
  auto results = test::RunLlhjSequential<KeyEq>(script, options);
  EXPECT_TRUE(test::SameResultSet(oracle, results));
}

TEST(Invariants, HsjSurvivesAlternatingBurstTraffic) {
  Trace<TR, TS> trace;
  Timestamp ts = 0;
  int32_t id = 0;
  Rng rng(4321);
  for (int burst = 0; burst < 20; ++burst) {
    const bool r_side = burst % 2 == 0;
    for (int i = 0; i < 25; ++i) {
      const int32_t key = static_cast<int32_t>(rng.UniformInt(1, 5));
      if (r_side) {
        trace.push_back(ArriveR<TR, TS>(ts, TR{key, id++}));
      } else {
        trace.push_back(ArriveS<TR, TS>(ts, TS{key, id++}));
      }
      ts += 2;
    }
  }
  auto script = BuildDriverScript(trace, WindowSpec::Time(120),
                                  WindowSpec::Time(120));
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename HsjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;  // self-balancing must absorb the fluctuation
  options.channel_capacity = 64;
  auto results = test::RunHsjSequential<KeyEq>(script, options);
  EXPECT_TRUE(test::SameResultSet(oracle, results));
}

}  // namespace
}  // namespace sjoin
