// Unit and stress tests for the SPSC FIFO channel and the staged channel
// wrapper — the communication substrate of both pipelines.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/spsc_queue.hpp"
#include "runtime/staged_channel.hpp"

namespace sjoin {
namespace {

TEST(SpscQueue, CapacityRoundsToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  SpscQueue<int> q2(8);
  EXPECT_EQ(q2.capacity(), 8u);
  SpscQueue<int> q3(1);
  EXPECT_EQ(q3.capacity(), 2u);
}

TEST(SpscQueue, PushPopSingle) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(42));
  int v = 0;
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.TryPush(i));
  for (int i = 0; i < 10; ++i) {
    int v = -1;
    EXPECT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscQueue, FullRejectsPush) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));
  EXPECT_EQ(q.FreeApprox(), 0u);
}

TEST(SpscQueue, WrapsAround) {
  SpscQueue<int> q(4);
  int v;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(q.TryPush(round));
    EXPECT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, round);
  }
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(SpscQueue, FrontPeeksWithoutPopping) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.Front(), nullptr);
  q.TryPush(7);
  int* front = q.Front();
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(*front, 7);
  EXPECT_EQ(q.SizeApprox(), 1u);  // still there
  q.PopFront();
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(SpscQueue, FrontAllowsInPlaceMutation) {
  SpscQueue<int> q(4);
  q.TryPush(1);
  *q.Front() = 5;
  int v;
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 5);
}

TEST(SpscQueue, SizeApproxTracksContents) {
  SpscQueue<int> q(8);
  EXPECT_EQ(q.SizeApprox(), 0u);
  q.TryPush(1);
  q.TryPush(2);
  EXPECT_EQ(q.SizeApprox(), 2u);
  EXPECT_EQ(q.FreeApprox(), 6u);
}

TEST(SpscQueue, TwoThreadStressPreservesSequence) {
  constexpr uint64_t kCount = 2'000'000;
  SpscQueue<uint64_t> q(1024);
  std::thread producer([&q] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  uint64_t sum = 0;
  while (expected < kCount) {
    uint64_t v;
    if (q.TryPop(&v)) {
      ASSERT_EQ(v, expected);
      sum += v;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(SpscQueueBurst, PushBurstEnqueuesPrefixWhenNearlyFull) {
  SpscQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(0));
  const std::vector<int> items{1, 2, 3, 4, 5};
  EXPECT_EQ(q.PushBurst(items), 3u);  // only 3 slots free
  EXPECT_EQ(q.FreeApprox(), 0u);
  for (int want = 0; want <= 3; ++want) {
    int v = -1;
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, want);
  }
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(SpscQueueBurst, PushBurstWrapsAroundCorrectly) {
  SpscQueue<int> q(8);
  int v;
  // Advance the indices so a burst must wrap the ring edge.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.TryPush(i));
    ASSERT_TRUE(q.TryPop(&v));
  }
  std::vector<int> items(8);
  for (int i = 0; i < 8; ++i) items[static_cast<size_t>(i)] = 100 + i;
  EXPECT_EQ(q.PushBurst(items), 8u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, 100 + i);
  }
}

TEST(SpscQueueBurst, PeekBurstExposesContiguousRuns) {
  SpscQueue<int> q(8);
  int v;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.TryPush(i));
    ASSERT_TRUE(q.TryPop(&v));
  }
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.TryPush(i));
  int* first = nullptr;
  const std::size_t run1 = q.PeekBurst(&first);
  ASSERT_GT(run1, 0u);
  ASSERT_LE(run1, 8u);
  for (std::size_t i = 0; i < run1; ++i) EXPECT_EQ(first[i], static_cast<int>(i));
  q.ConsumeBurst(run1);
  if (run1 < 8) {  // wrapped: remainder surfaces as a second run
    const std::size_t run2 = q.PeekBurst(&first);
    EXPECT_EQ(run1 + run2, 8u);
    for (std::size_t i = 0; i < run2; ++i) {
      EXPECT_EQ(first[i], static_cast<int>(run1 + i));
    }
    q.ConsumeBurst(run2);
  }
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(SpscQueueBurst, ConsumeBurstPartialLeavesRest) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(i));
  int* first = nullptr;
  ASSERT_EQ(q.PeekBurst(&first), 5u);
  q.ConsumeBurst(2);
  EXPECT_EQ(q.SizeApprox(), 3u);
  int v;
  ASSERT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 2);
}

TEST(SpscQueueBurst, PopBurstDrainsAcrossWrap) {
  SpscQueue<int> q(8);
  int v;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.TryPush(i));
    ASSERT_TRUE(q.TryPop(&v));
  }
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(q.TryPush(i));
  int out[8] = {};
  EXPECT_EQ(q.PopBurst(out, 8), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(q.EmptyApprox());
}

// Two-thread stress mixing burst and single-message APIs on both sides:
// FIFO order and zero loss must hold under contention, including across
// ring-edge wraps (capacity deliberately small and not a divisor of the
// burst sizes).
TEST(SpscQueueBurst, TwoThreadBurstStressPreservesSequence) {
  constexpr uint64_t kCount = 1'000'000;
  SpscQueue<uint64_t> q(256);
  std::thread producer([&q] {
    uint64_t next = 0;
    uint64_t burst[37];
    int mode = 0;
    while (next < kCount) {
      if (mode++ % 3 == 0) {  // single-message path
        while (!q.TryPush(next)) std::this_thread::yield();
        ++next;
        continue;
      }
      std::size_t n = 0;
      while (n < 37 && next + n < kCount) {
        burst[n] = next + n;
        ++n;
      }
      std::size_t pushed = 0;
      while (pushed < n) {
        pushed += q.TryPushBurst(burst + pushed, n - pushed);
        if (pushed < n) std::this_thread::yield();
      }
      next += n;
    }
  });

  uint64_t expected = 0;
  int mode = 0;
  while (expected < kCount) {
    if (mode++ % 3 == 0) {
      uint64_t v;
      if (q.TryPop(&v)) {
        ASSERT_EQ(v, expected);
        ++expected;
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    uint64_t* first = nullptr;
    const std::size_t n = q.PeekBurst(&first);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(first[i], expected + i);
    q.ConsumeBurst(n);
    expected += n;
  }
  producer.join();
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(StagedChannel, NullQueueDiscards) {
  StagedChannel<int> chan(nullptr);
  EXPECT_FALSE(chan.connected());
  chan.Push(1);
  chan.Push(2);
  EXPECT_EQ(chan.staged(), 0u);
  EXPECT_TRUE(chan.Available(100));
  EXPECT_FALSE(chan.Drain());
}

TEST(StagedChannel, PushesDirectlyWhenSpace) {
  SpscQueue<int> q(4);
  StagedChannel<int> chan(&q);
  chan.Push(1);
  EXPECT_EQ(chan.staged(), 0u);
  EXPECT_EQ(q.SizeApprox(), 1u);
}

TEST(StagedChannel, StagesOnOverflowAndDrainsInOrder) {
  SpscQueue<int> q(2);
  StagedChannel<int> chan(&q);
  for (int i = 0; i < 6; ++i) chan.Push(i);
  EXPECT_EQ(chan.staged(), 4u);
  EXPECT_FALSE(chan.Available(1));

  std::vector<int> seen;
  int v;
  while (true) {
    while (q.TryPop(&v)) seen.push_back(v);
    if (!chan.Drain()) break;
  }
  while (q.TryPop(&v)) seen.push_back(v);
  ASSERT_EQ(seen.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(StagedChannel, AvailableRespectsSlack) {
  SpscQueue<int> q(8);
  StagedChannel<int> chan(&q);
  EXPECT_TRUE(chan.Available(8));
  chan.Push(1);
  EXPECT_TRUE(chan.Available(7));
  EXPECT_FALSE(chan.Available(8));
}

TEST(StagedChannel, PushBurstStagesOverflow) {
  SpscQueue<int> q(4);
  StagedChannel<int> chan(&q);
  std::vector<int> msgs{0, 1, 2, 3, 4, 5};
  chan.PushBurst(msgs);
  EXPECT_EQ(q.SizeApprox(), 4u);
  EXPECT_EQ(chan.staged(), 2u);

  std::vector<int> seen;
  int v;
  while (true) {
    while (q.TryPop(&v)) seen.push_back(v);
    if (!chan.Drain()) break;
  }
  while (q.TryPop(&v)) seen.push_back(v);
  ASSERT_EQ(seen.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(StagedChannel, PushBurstBehindStagedKeepsOrder) {
  SpscQueue<int> q(2);
  StagedChannel<int> chan(&q);
  chan.Push(0);
  chan.Push(1);
  chan.Push(2);  // staged
  std::vector<int> more{3, 4};
  chan.PushBurst(more);  // must stage behind 2, not jump the queue
  EXPECT_EQ(chan.staged(), 3u);
  std::vector<int> seen;
  int v;
  for (int round = 0; round < 8; ++round) {
    while (q.TryPop(&v)) seen.push_back(v);
    chan.Drain();
  }
  while (q.TryPop(&v)) seen.push_back(v);
  ASSERT_EQ(seen.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(StagedChannel, OrderPreservedAcrossStageBoundary) {
  SpscQueue<int> q(2);
  StagedChannel<int> chan(&q);
  chan.Push(0);
  chan.Push(1);
  chan.Push(2);  // staged
  int v;
  ASSERT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 0);
  // New pushes must go behind the staged message even though the queue now
  // has room.
  chan.Push(3);
  EXPECT_EQ(chan.staged(), 2u);
  std::vector<int> rest;
  for (int round = 0; round < 8; ++round) {
    chan.Drain();
    while (q.TryPop(&v)) rest.push_back(v);
  }
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 1);
  EXPECT_EQ(rest[1], 2);
  EXPECT_EQ(rest[2], 3);
}

}  // namespace
}  // namespace sjoin
