// Tests for the sharded multi-pipeline session (core/sharded_session.hpp)
// and the predicate-aware partitioner (stream/partitioner.hpp):
//  * config validation (shard counts/policies the predicate set cannot
//    support are rejected with self-diagnosing messages),
//  * partitioner properties: hash assigns every key to exactly one shard
//    (deterministically, with all shards populated), replicate-one-side
//    co-locates every candidate pair exactly once (fuzzed band widths),
//  * shard-vs-single-shard oracle equality on all four engines, threaded
//    and non-threaded, equi (hash) and band (replicate) predicates, count
//    and time windows — exact result multisets and per-query attribution,
//  * shard-count-1 degeneration to the plain JoinSession,
//  * live query churn across shards (epoch attribution, exactly-once
//    retirement),
//  * sharding-level loss accounting (forced sheds) matching the plain
//    session under the identical shed schedule,
//  * merged latency histograms and min-merged punctuations,
//  * internal/external driver-mode mixing rejected.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/join_session.hpp"
#include "core/sharded_session.hpp"
#include "stream/partitioner.hpp"

#include "test_util.hpp"

namespace sjoin {

// The test equi predicate joins on TR.key == TS.key: declaring the shard
// keys makes it hash-partitionable (the production EquiPredicate declares
// its own in stream/partitioner.hpp).
template <>
struct ShardKeyTraits<test::KeyEq, test::TR, test::TS> {
  static constexpr bool kEnabled = true;
  static uint64_t KeyR(const test::TR& r) {
    return static_cast<uint64_t>(static_cast<int64_t>(r.key));
  }
  static uint64_t KeyS(const test::TS& s) {
    return static_cast<uint64_t>(static_cast<int64_t>(s.key));
  }
};

namespace {

using test::KeyBand;
using test::KeyEq;
using test::MakeRandomTrace;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

JoinConfig BaseShard(Algorithm algorithm, WindowSpec wr, WindowSpec ws,
                     bool threaded, int parallelism = 3) {
  JoinConfig config;
  config.algorithm = algorithm;
  config.parallelism = parallelism;
  config.window_r = wr;
  config.window_s = ws;
  config.threaded = threaded;
  config.hsj_window_tuples_hint = 16;
  if (threaded) {
    // Deterministic multi-node shape so per-shard placement derivation
    // (Topology::OnNode round-robin) is exercised regardless of the host;
    // pinning to synthetic CPUs degrades gracefully (same as the CI
    // SJOIN_TOPOLOGY leg).
    Topology::SyntheticShape shape;
    shape.nodes_per_package = 2;
    shape.cores_per_node = 2;
    config.topology =
        std::make_shared<const Topology>(Topology::Synthetic(shape));
  }
  return config;
}

ShardedJoinConfig ShardedFor(Algorithm algorithm, WindowSpec wr,
                             WindowSpec ws, bool threaded, int shards,
                             PartitionPolicy partition) {
  ShardedJoinConfig config;
  config.shard = BaseShard(algorithm, wr, ws, threaded);
  config.shards = shards;
  config.partition = partition;
  return config;
}

template <typename Joinable>
void FeedPerTuple(Joinable& join, const Trace<TR, TS>& trace) {
  for (const auto& e : trace) {
    if (e.side == StreamSide::kR) {
      join.PushR(e.r, e.ts);
    } else {
      join.PushS(e.s, e.ts);
    }
  }
}

/// Single-shard oracle: a plain non-threaded Kang session.
template <typename Pred>
std::vector<ResultMsg<TR, TS>> OracleFor(const Trace<TR, TS>& trace,
                                         WindowSpec wr, WindowSpec ws,
                                         Pred pred) {
  CollectingHandler<TR, TS> handler;
  JoinSession<TR, TS, Pred> session(
      BaseShard(Algorithm::kKang, wr, ws, /*threaded=*/false));
  session.AddQuery(pred, &handler);
  FeedPerTuple(session, trace);
  session.FinishInput();
  return handler.results();
}

const Algorithm kAllEngines[] = {Algorithm::kKang, Algorithm::kCellJoin,
                                 Algorithm::kHandshake,
                                 Algorithm::kLowLatency};

// -- Validation --------------------------------------------------------------

TEST(ShardedValidation, RejectsBadShardCount) {
  ShardedJoinConfig config;
  config.shards = 0;
  EXPECT_THROW((ValidateShardedJoinConfig<TR, TS, KeyEq>(config)),
               std::invalid_argument);
  config.shards = -2;
  try {
    ValidateShardedJoinConfig<TR, TS, KeyEq>(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shards"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-2"), std::string::npos);
  }
}

TEST(ShardedValidation, RejectsPerShardOverloadControl) {
  // Admission must run at the sharding driver: it alone owns the global
  // sequence numbers the loss accounting is expressed in.
  ShardedJoinConfig config;
  config.shard.latency_budget_us = 750;
  config.shard.overload_policy = OverloadPolicy::kDropNewest;
  try {
    ValidateShardedJoinConfig<TR, TS, KeyEq>(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shard.latency_budget_us"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("750"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("drop_newest"), std::string::npos);
  }
}

TEST(ShardedValidation, RejectsSheddingPolicyWithoutBudget) {
  ShardedJoinConfig config;
  config.overload_policy = OverloadPolicy::kSample;
  config.latency_budget_us = 0;
  try {
    ValidateShardedJoinConfig<TR, TS, KeyEq>(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sample"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("latency_budget_us"),
              std::string::npos);
  }
}

TEST(ShardedValidation, RejectsHashPartitioningForBandPredicate) {
  // KeyBand declares no shard keys: hash-partitioning it would silently
  // lose matches, so the config is rejected up front.
  ShardedJoinConfig config;
  config.partition = PartitionPolicy::kHashKey;
  try {
    ValidateShardedJoinConfig<TR, TS, KeyBand>(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hash"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ShardKeyTraits"), std::string::npos);
  }
  // auto degrades to replicate_r for the same predicate.
  EXPECT_EQ((ResolvePartitionPolicy<KeyBand, TR, TS>(PartitionPolicy::kAuto)),
            PartitionPolicy::kReplicateR);
  EXPECT_EQ((ResolvePartitionPolicy<KeyEq, TR, TS>(PartitionPolicy::kAuto)),
            PartitionPolicy::kHashKey);
}

TEST(ShardedValidation, RejectsHandshakeBelowChaseEnvelope) {
  // A handshake shard whose thinned window drops below max(8, 2 *
  // parallelism) tuples would race its expiry chase against segment
  // rebalancing; the config is rejected with the arithmetic spelled out.
  ShardedJoinConfig config;
  config.shard.algorithm = Algorithm::kHandshake;
  config.shard.parallelism = 3;
  config.shard.window_r = WindowSpec::Count(12);
  config.shard.window_s = WindowSpec::Count(24);
  config.shards = 3;  // 12 / 3 = 4 per shard on R: below the floor of 8
  try {
    ValidateShardedJoinConfig<TR, TS, KeyEq>(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("side R"), std::string::npos) << what;
    EXPECT_NE(what.find("12 / 3 shards = 4"), std::string::npos) << what;
  }
  config.shards = 1;  // single shard is the plain session: no thinning
  EXPECT_NO_THROW((ValidateShardedJoinConfig<TR, TS, KeyEq>(config)));
  config.shards = 3;
  config.shard.window_r = WindowSpec::Count(24);  // 8 per shard: at floor
  EXPECT_NO_THROW((ValidateShardedJoinConfig<TR, TS, KeyEq>(config)));
  // Replicated sides are not thinned: under replicate_r a small R window
  // is fine, but the partitioned S side must clear the floor.
  config.shard.window_r = WindowSpec::Count(4);
  config.partition = PartitionPolicy::kReplicateR;
  EXPECT_NO_THROW((ValidateShardedJoinConfig<TR, TS, KeyBand>(config)));
  config.shard.window_s = WindowSpec::Count(12);  // 4 per shard on S
  EXPECT_THROW((ValidateShardedJoinConfig<TR, TS, KeyBand>(config)),
               std::invalid_argument);
}

TEST(ShardedValidation, ParsePartitionPolicyNamesOffendingValue) {
  EXPECT_EQ(ParsePartitionPolicy("auto"), PartitionPolicy::kAuto);
  EXPECT_EQ(ParsePartitionPolicy("hash"), PartitionPolicy::kHashKey);
  EXPECT_EQ(ParsePartitionPolicy("replicate_r"), PartitionPolicy::kReplicateR);
  EXPECT_EQ(ParsePartitionPolicy("replicate_s"), PartitionPolicy::kReplicateS);
  try {
    ParsePartitionPolicy("range");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("range"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("replicate_s"), std::string::npos);
  }
}

// -- Partitioner properties --------------------------------------------------

TEST(Partitioner, HashAssignsEveryKeyExactlyOneShard) {
  for (int shards : {1, 2, 3, 5}) {
    std::vector<int> population(static_cast<std::size_t>(shards), 0);
    for (uint64_t key = 0; key < 2000; ++key) {
      const int shard = ShardOfKey(key, shards);
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, shards);
      // Deterministic: the same key always lands on the same shard.
      EXPECT_EQ(shard, ShardOfKey(key, shards));
      ++population[static_cast<std::size_t>(shard)];
    }
    // The splitmix mix must spread sequential keys over all shards.
    for (int k = 0; k < shards; ++k) {
      EXPECT_GT(population[static_cast<std::size_t>(k)], 0)
          << "shard " << k << "/" << shards << " starved";
    }
  }
}

TEST(Partitioner, EquiKeyContractSendsMatchingPairsToOneShard) {
  // pred(r, s) => KeyR(r) == KeyS(s) => same shard: the hash-partitioning
  // correctness anchor, checked over the full key domain.
  using Traits = ShardKeyTraits<KeyEq, TR, TS>;
  for (int32_t key = -50; key < 50; ++key) {
    const TR r{key, 0};
    const TS s{key, 1};
    ASSERT_TRUE(KeyEq{}(r, s));
    for (int shards : {2, 3, 4}) {
      EXPECT_EQ(ShardOfKey(Traits::KeyR(r), shards),
                ShardOfKey(Traits::KeyS(s), shards));
    }
  }
}

// Replicate-one-side loses no candidate pair: fuzzed band widths, seeds and
// shard counts, each run compared against the single-shard Kang oracle.
TEST(Partitioner, ReplicateOneSideLosesNoCandidatePairFuzzed) {
  struct Case {
    uint64_t seed;
    int32_t width;
    int shards;
    PartitionPolicy policy;
  };
  const Case cases[] = {
      {11, 0, 2, PartitionPolicy::kReplicateR},
      {12, 1, 3, PartitionPolicy::kReplicateR},
      {13, 2, 4, PartitionPolicy::kReplicateS},
      {14, 3, 2, PartitionPolicy::kReplicateS},
      {15, 2, 3, PartitionPolicy::kAuto},  // resolves to replicate_r
      {16, 1, 5, PartitionPolicy::kReplicateR},
  };
  TraceConfig tc;
  tc.events = 300;
  tc.key_domain = 10;
  for (const Case& c : cases) {
    const auto trace = MakeRandomTrace(c.seed, tc);
    const WindowSpec wr = WindowSpec::Count(9);
    const WindowSpec ws = WindowSpec::Count(13);
    const KeyBand pred{c.width};
    const auto oracle = OracleFor(trace, wr, ws, pred);

    CollectingHandler<TR, TS> handler;
    ShardedJoinSession<TR, TS, KeyBand> sharded(
        ShardedFor(Algorithm::kLowLatency, wr, ws, /*threaded=*/false,
                   c.shards, c.policy));
    sharded.AddQuery(pred, &handler);
    FeedPerTuple(sharded, trace);
    sharded.FinishInput();

    EXPECT_TRUE(SameResultSet(oracle, handler.results()))
        << "seed=" << c.seed << " width=" << c.width
        << " shards=" << c.shards << " policy=" << ToString(c.policy);
    EXPECT_EQ(sharded.pipeline_anomalies(), 0u);
  }
}

// -- Shard-vs-oracle equality, all engines -----------------------------------

TEST(ShardedEquivalence, EquiHashMatchesOracleAllEngines) {
  TraceConfig tc;
  tc.events = 400;
  tc.key_domain = 8;
  const auto trace = MakeRandomTrace(21, tc);
  // Per-shard windows (24/2, 20/2) stay inside the handshake join's
  // chase-convergence envelope (>= max(8, 2 * parallelism)).
  const WindowSpec wr = WindowSpec::Count(24);
  const WindowSpec ws = WindowSpec::Count(20);
  const auto oracle = OracleFor(trace, wr, ws, KeyEq{});
  ASSERT_FALSE(oracle.empty());

  for (Algorithm algorithm : kAllEngines) {
    for (bool threaded : {false, true}) {
      CollectingHandler<TR, TS> q0, q1;
      ShardedJoinSession<TR, TS, KeyEq> sharded(ShardedFor(
          algorithm, wr, ws, threaded, /*shards=*/2, PartitionPolicy::kAuto));
      EXPECT_EQ(sharded.partition(), PartitionPolicy::kHashKey);
      sharded.AddQuery(KeyEq{}, &q0);
      sharded.AddQuery(KeyEq{}, &q1);  // per-query attribution under merge
      FeedPerTuple(sharded, trace);
      sharded.FinishInput();

      EXPECT_TRUE(SameResultSet(oracle, q0.results()))
          << ToString(algorithm) << " threaded=" << threaded;
      EXPECT_TRUE(SameResultSet(oracle, q1.results()))
          << ToString(algorithm) << " threaded=" << threaded;
      EXPECT_EQ(sharded.results_collected(0), oracle.size());
      EXPECT_EQ(sharded.results_collected(1), oracle.size());
      EXPECT_EQ(sharded.results_collected(), 2 * oracle.size());
      EXPECT_EQ(sharded.pipeline_anomalies(), 0u)
          << ToString(algorithm) << " threaded=" << threaded;
      // Every result was attributed to the query that produced it.
      for (const auto& m : q0.results()) EXPECT_EQ(m.query, 0u);
      for (const auto& m : q1.results()) EXPECT_EQ(m.query, 1u);
    }
  }
}

TEST(ShardedEquivalence, BandReplicateMatchesOracleAllEngines) {
  TraceConfig tc;
  tc.events = 350;
  tc.key_domain = 10;
  const auto trace = MakeRandomTrace(22, tc);
  // S is the partitioned side under replicate_r: 16/2 per shard clears the
  // handshake chase floor; replicated R may stay small.
  const WindowSpec wr = WindowSpec::Count(11);
  const WindowSpec ws = WindowSpec::Count(16);
  const KeyBand pred{2};
  const auto oracle = OracleFor(trace, wr, ws, pred);
  ASSERT_FALSE(oracle.empty());

  for (Algorithm algorithm : kAllEngines) {
    for (bool threaded : {false, true}) {
      CollectingHandler<TR, TS> handler;
      ShardedJoinSession<TR, TS, KeyBand> sharded(ShardedFor(
          algorithm, wr, ws, threaded, /*shards=*/2, PartitionPolicy::kAuto));
      EXPECT_EQ(sharded.partition(), PartitionPolicy::kReplicateR);
      sharded.AddQuery(pred, &handler);
      FeedPerTuple(sharded, trace);
      sharded.FinishInput();

      EXPECT_TRUE(SameResultSet(oracle, handler.results()))
          << ToString(algorithm) << " threaded=" << threaded;
      EXPECT_EQ(sharded.pipeline_anomalies(), 0u)
          << ToString(algorithm) << " threaded=" << threaded;
    }
  }
}

TEST(ShardedEquivalence, TimeWindowsMatchOracleAllEngines) {
  TraceConfig tc;
  tc.events = 300;
  tc.key_domain = 6;
  tc.max_gap_us = 3;
  const auto trace = MakeRandomTrace(23, tc);
  // Mean gap ~1.5us per event, so ~40/32 tuples live globally — about
  // 20/16 per shard, inside the handshake chase envelope (hint 16 / 2
  // shards = 8 clears validation).
  const WindowSpec wr = WindowSpec::Time(60);
  const WindowSpec ws = WindowSpec::Time(48);
  const auto oracle = OracleFor(trace, wr, ws, KeyEq{});
  ASSERT_FALSE(oracle.empty());

  for (Algorithm algorithm : kAllEngines) {
    for (bool threaded : {false, true}) {
      CollectingHandler<TR, TS> handler;
      ShardedJoinSession<TR, TS, KeyEq> sharded(ShardedFor(
          algorithm, wr, ws, threaded, /*shards=*/2, PartitionPolicy::kAuto));
      sharded.AddQuery(KeyEq{}, &handler);
      FeedPerTuple(sharded, trace);
      sharded.FinishInput();

      EXPECT_TRUE(SameResultSet(oracle, handler.results()))
          << ToString(algorithm) << " threaded=" << threaded;
      EXPECT_EQ(sharded.pipeline_anomalies(), 0u);
    }
  }
}

// -- Degeneration ------------------------------------------------------------

TEST(Sharded, SingleShardDegeneratesToPlainSession) {
  // shards=1 behind the sharded API must reproduce the plain session
  // exactly: same result sequence (per query, with epochs), same epochs
  // drained, same retirements — across all four engines (non-threaded for
  // a deterministic event-by-event comparison), including live churn.
  TraceConfig tc;
  tc.events = 260;
  tc.key_domain = 7;
  const auto trace = MakeRandomTrace(24, tc);
  const WindowSpec wr = WindowSpec::Count(10);
  const WindowSpec ws = WindowSpec::Count(10);

  for (Algorithm algorithm : kAllEngines) {
    CollectingHandler<TR, TS> plain_q0, plain_q1, shard_q0, shard_q1;

    JoinSession<TR, TS, KeyEq> plain(
        BaseShard(algorithm, wr, ws, /*threaded=*/false));
    ShardedJoinSession<TR, TS, KeyEq> sharded(
        ShardedFor(algorithm, wr, ws, /*threaded=*/false, /*shards=*/1,
                   PartitionPolicy::kAuto));

    const auto p0 = plain.AddQuery(KeyEq{}, &plain_q0);
    const auto s0 = sharded.AddQuery(KeyEq{}, &shard_q0);
    EXPECT_EQ(p0.id, s0.id);

    // Identical mid-stream churn on both: add a query at event 80, remove
    // the first at event 180.
    typename JoinSession<TR, TS, KeyEq>::QueryHandle p1{}, s1{};
    std::size_t i = 0;
    for (const auto& e : trace) {
      if (i == 80) {
        p1 = plain.AddQuery(KeyEq{}, &plain_q1);
        s1 = sharded.AddQuery(KeyEq{}, &shard_q1);
        EXPECT_EQ(p1.id, s1.id);
      }
      if (i == 180) {
        EXPECT_TRUE(plain.RemoveQuery(p0));
        EXPECT_TRUE(sharded.RemoveQuery(s0));
      }
      if (e.side == StreamSide::kR) {
        plain.PushR(e.r, e.ts);
        sharded.PushR(e.r, e.ts);
      } else {
        plain.PushS(e.s, e.ts);
        sharded.PushS(e.s, e.ts);
      }
      ++i;
    }
    plain.FinishInput();
    sharded.FinishInput();

    auto same_sequence = [&](const CollectingHandler<TR, TS>& a,
                             const CollectingHandler<TR, TS>& b) {
      ASSERT_EQ(a.results().size(), b.results().size());
      for (std::size_t j = 0; j < a.results().size(); ++j) {
        EXPECT_EQ(a.results()[j].r_seq, b.results()[j].r_seq);
        EXPECT_EQ(a.results()[j].s_seq, b.results()[j].s_seq);
        EXPECT_EQ(a.results()[j].query, b.results()[j].query);
        EXPECT_EQ(a.results()[j].epoch, b.results()[j].epoch);
      }
    };
    same_sequence(plain_q0, shard_q0);
    same_sequence(plain_q1, shard_q1);
    EXPECT_EQ(plain.current_epoch(), sharded.current_epoch());
    EXPECT_EQ(plain.drained_epoch(), sharded.drained_epoch());
    EXPECT_EQ(plain_q0.retired_queries(), shard_q0.retired_queries());
    EXPECT_EQ(sharded.pipeline_anomalies(), 0u) << ToString(algorithm);
  }
}

// -- Live churn across shards ------------------------------------------------

TEST(Sharded, ChurnAcrossShardsRetiresExactlyOnceWithEpochAttribution) {
  TraceConfig tc;
  tc.events = 320;
  tc.key_domain = 8;
  const auto trace = MakeRandomTrace(25, tc);
  const WindowSpec wr = WindowSpec::Count(12);
  const WindowSpec ws = WindowSpec::Count(12);
  const auto oracle = OracleFor(trace, wr, ws, KeyEq{});

  for (bool threaded : {false, true}) {
    CollectingHandler<TR, TS> removed_q, kept_q, added_q;
    ShardedJoinSession<TR, TS, KeyEq> sharded(
        ShardedFor(Algorithm::kLowLatency, wr, ws, threaded, /*shards=*/3,
                   PartitionPolicy::kAuto));
    const auto h_removed = sharded.AddQuery(KeyEq{}, &removed_q);
    sharded.AddQuery(KeyEq{}, &kept_q);

    std::size_t i = 0;
    Epoch removal_epoch = 0;
    for (const auto& e : trace) {
      if (i == 100) {
        sharded.AddQuery(KeyEq{}, &added_q);
      }
      if (i == 200) {
        EXPECT_TRUE(sharded.RemoveQuery(h_removed));
        removal_epoch = sharded.current_epoch();
        EXPECT_FALSE(sharded.RemoveQuery(h_removed));  // already removed
      }
      if (e.side == StreamSide::kR) {
        sharded.PushR(e.r, e.ts);
      } else {
        sharded.PushS(e.s, e.ts);
      }
      ++i;
    }
    sharded.FinishInput();

    // The kept query sees the full oracle; the removed query only results
    // attributed to epochs before its removal; the added query only results
    // attributed to epochs from its install on. All three partitions are
    // subsets of the oracle.
    EXPECT_TRUE(SameResultSet(oracle, kept_q.results()));
    const auto want = test::PairMultiset(oracle);
    for (const auto& m : removed_q.results()) {
      EXPECT_LT(m.epoch, removal_epoch);
      EXPECT_TRUE(want.count({m.r_seq, m.s_seq}));
    }
    for (const auto& m : added_q.results()) {
      EXPECT_GE(m.epoch, 1u);
      EXPECT_TRUE(want.count({m.r_seq, m.s_seq}));
    }
    // Exactly-once retirement through the merging collector, even though
    // every shard drains the removal epoch independently.
    ASSERT_EQ(removed_q.retired_queries().size(), 1u);
    EXPECT_EQ(removed_q.retired_queries()[0], h_removed.id);
    EXPECT_TRUE(kept_q.retired_queries().empty());
    EXPECT_GE(sharded.drained_epoch(), removal_epoch);
    EXPECT_EQ(sharded.pipeline_anomalies(), 0u) << "threaded=" << threaded;
  }
}

// -- Loss accounting ---------------------------------------------------------

TEST(Sharded, ForcedShedsAccountExactlyAndMatchPlainSession) {
  // The same deterministic shed schedule applied to a plain session and a
  // sharded one must produce the same result multiset, and the sharded
  // merge layer must report every shed tuple exactly once
  // (tuples_lost_reported == tuples_shed after drain).
  TraceConfig tc;
  tc.events = 300;
  tc.key_domain = 8;
  const auto trace = MakeRandomTrace(26, tc);
  const WindowSpec wr = WindowSpec::Count(10);
  const WindowSpec ws = WindowSpec::Count(10);
  auto shed = [](StreamSide side, Seq seq) {
    return side == StreamSide::kR ? seq % 7 == 3 : seq % 5 == 1;
  };

  for (bool threaded : {false, true}) {
    CollectingHandler<TR, TS> plain_h, shard_h;

    JoinSession<TR, TS, KeyEq> plain(
        BaseShard(Algorithm::kLowLatency, wr, ws, threaded));
    plain.admission().SetForceShed(shed);
    plain.AddQuery(KeyEq{}, &plain_h);
    FeedPerTuple(plain, trace);
    plain.FinishInput();

    ShardedJoinSession<TR, TS, KeyEq> sharded(
        ShardedFor(Algorithm::kLowLatency, wr, ws, threaded, /*shards=*/2,
                   PartitionPolicy::kAuto));
    sharded.admission().SetForceShed(shed);
    sharded.AddQuery(KeyEq{}, &shard_h);
    FeedPerTuple(sharded, trace);
    sharded.FinishInput();

    EXPECT_TRUE(SameResultSet(plain_h.results(), shard_h.results()))
        << "threaded=" << threaded;
    for (StreamSide side : {StreamSide::kR, StreamSide::kS}) {
      EXPECT_EQ(sharded.tuples_shed(side), plain.tuples_shed(side));
      EXPECT_EQ(sharded.tuples_lost_reported(side), sharded.tuples_shed(side))
          << "threaded=" << threaded;
    }
    EXPECT_GT(sharded.tuples_shed(StreamSide::kR), 0u);
    // The handler heard each gap exactly once (its per-side totals equal
    // the ground truth).
    EXPECT_EQ(shard_h.lost(StreamSide::kR),
              sharded.tuples_shed(StreamSide::kR));
    EXPECT_EQ(shard_h.lost(StreamSide::kS),
              sharded.tuples_shed(StreamSide::kS));
    EXPECT_EQ(sharded.pipeline_anomalies(), 0u);
  }
}

// -- Merging collector extras ------------------------------------------------

TEST(Sharded, MergesLatencyHistogramsAndPunctuations) {
  TraceConfig tc;
  tc.events = 280;
  tc.key_domain = 6;
  const auto trace = MakeRandomTrace(27, tc);
  const WindowSpec wr = WindowSpec::Count(10);
  const WindowSpec ws = WindowSpec::Count(10);

  ShardedJoinConfig config =
      ShardedFor(Algorithm::kLowLatency, wr, ws, /*threaded=*/false,
                 /*shards=*/3, PartitionPolicy::kAuto);
  config.shard.punctuate = true;
  CollectingHandler<TR, TS> handler;
  ShardedJoinSession<TR, TS, KeyEq> sharded(config);
  sharded.AddQuery(KeyEq{}, &handler);
  FeedPerTuple(sharded, trace);
  sharded.FinishInput();

  // Every delivered result contributed one sample to exactly one shard's
  // histogram; the merged histogram is their bucket-wise sum.
  const LatencyHistogram merged = sharded.merged_latency_histogram();
  EXPECT_EQ(merged.count(), sharded.results_collected());
  uint64_t per_shard = 0;
  for (int k = 0; k < sharded.shard_count(); ++k) {
    per_shard += sharded.shard_results(k);
  }
  EXPECT_EQ(per_shard, merged.count());

  // Merged punctuations (min over shard marks) are non-decreasing and
  // never run ahead of a mark some shard has not reached.
  ASSERT_FALSE(handler.punctuations().empty());
  for (std::size_t i = 1; i < handler.punctuations().size(); ++i) {
    EXPECT_GE(handler.punctuations()[i], handler.punctuations()[i - 1]);
  }
  EXPECT_EQ(sharded.pipeline_anomalies(), 0u);
}

// -- Driver-mode guard -------------------------------------------------------

TEST(Sharded, MixingInternalAndExternalDriversRejected) {
  CollectingHandler<TR, TS> handler;
  JoinSession<TR, TS, KeyEq> session(
      BaseShard(Algorithm::kKang, WindowSpec::Count(4), WindowSpec::Count(4),
                /*threaded=*/false));
  session.AddQuery(KeyEq{}, &handler);
  session.PushR(TR{1, 0}, 0);  // binds the internal driver
  try {
    session.PushRAt(TR{2, 1}, 1, 7);
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("PushRAt"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("internally"), std::string::npos);
  }

  JoinSession<TR, TS, KeyEq> external(
      BaseShard(Algorithm::kKang, WindowSpec::Count(4), WindowSpec::Count(4),
                /*threaded=*/false));
  external.AddQuery(KeyEq{}, &handler);
  external.PushRAt(TR{1, 0}, 0, 0);  // binds the external driver
  EXPECT_THROW(external.PushS(TS{1, 1}, 1), std::logic_error);
}

}  // namespace
}  // namespace sjoin
