// Property suite: both pipelines must produce exactly the oracle's result
// set under adversarial execution schedules — many seeds, pipeline shapes,
// and window types. These are the tests that would catch protocol races
// (missed in-flight crossings, double matches, expiry/relocation races,
// expedition-end misordering).
#include <gtest/gtest.h>

#include "baseline/kang_join.hpp"
#include "hsj/hsj_pipeline.hpp"
#include "llhj/llhj_pipeline.hpp"

#include "schedule_fuzzer.hpp"
#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyEq;
using test::MakeRandomTrace;
using test::RunFuzzedSchedule;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

struct FuzzParam {
  int nodes;
  uint64_t seed;
  bool count_windows;
};

std::string FuzzName(const ::testing::TestParamInfo<FuzzParam>& info) {
  return "n" + std::to_string(info.param.nodes) + "s" +
         std::to_string(info.param.seed) +
         (info.param.count_windows ? "cnt" : "time");
}

DriverScript<TR, TS> FuzzScript(const FuzzParam& param) {
  TraceConfig config;
  config.events = 220;
  config.key_domain = 5;
  config.max_gap_us = 3;
  auto trace = MakeRandomTrace(param.seed * 977 + 13, config);
  if (param.count_windows) {
    return BuildDriverScript(trace, WindowSpec::Count(25),
                             WindowSpec::Count(19));
  }
  return BuildDriverScript(trace, WindowSpec::Time(60), WindowSpec::Time(60));
}

std::vector<FuzzParam> MakeFuzzParams() {
  std::vector<FuzzParam> params;
  for (int nodes : {2, 3, 4, 5}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      params.push_back(FuzzParam{nodes, seed, false});
      params.push_back(FuzzParam{nodes, seed, true});
    }
  }
  return params;
}

class LlhjFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(LlhjFuzz, ExactUnderAdversarialSchedules) {
  const auto param = GetParam();
  auto script = FuzzScript(param);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = param.nodes;
  options.channel_capacity = 64;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);

  auto fuzzed = RunFuzzedSchedule(pipeline, script, param.seed * 31 + 7);
  EXPECT_TRUE(SameResultSet(oracle, fuzzed.results));
  EXPECT_EQ(pipeline.total_anomalies(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schedules, LlhjFuzz,
                         ::testing::ValuesIn(MakeFuzzParams()), FuzzName);

class HsjFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(HsjFuzz, ExactUnderAdversarialSchedules) {
  const auto param = GetParam();
  auto script = FuzzScript(param);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename HsjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = param.nodes;
  // Alternate between tiny static segments (tuples relocate constantly,
  // racing against expiries) and the default self-balancing mode.
  options.segment_capacity_r = param.count_windows ? 3 : 0;
  options.segment_capacity_s = options.segment_capacity_r;
  options.channel_capacity = 64;
  HsjPipeline<TR, TS, KeyEq> pipeline(options);

  auto fuzzed = RunFuzzedSchedule(pipeline, script, param.seed * 53 + 11);
  EXPECT_TRUE(SameResultSet(oracle, fuzzed.results));
  EXPECT_EQ(pipeline.total_anomalies(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schedules, HsjFuzz,
                         ::testing::ValuesIn(MakeFuzzParams()), FuzzName);

TEST(ScheduleFuzz, LlhjIndexedStoresUnderSchedules) {
  using RStore = HashStore<TR, test::TRKey, test::TSKey>;
  using SStore = HashStore<TS, test::TSKey, test::TRKey>;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FuzzParam param{4, seed, seed % 2 == 0};
    auto script = FuzzScript(param);
    auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

    typename LlhjPipeline<TR, TS, KeyEq, RStore, SStore>::Options options;
    options.nodes = 4;
    options.channel_capacity = 64;
    LlhjPipeline<TR, TS, KeyEq, RStore, SStore> pipeline(options);
    auto fuzzed = RunFuzzedSchedule(pipeline, script, seed * 71 + 3);
    EXPECT_TRUE(SameResultSet(oracle, fuzzed.results)) << "seed " << seed;
  }
}

TEST(ScheduleFuzz, HeavySkewStillExact) {
  // Very aggressive starvation (skip probability 0.6, up to 5 rounds).
  FuzzParam param{4, 9, false};
  auto script = FuzzScript(param);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;
  options.channel_capacity = 64;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);
  auto fuzzed = RunFuzzedSchedule(pipeline, script, 1234, 0.6, 5);
  EXPECT_TRUE(SameResultSet(oracle, fuzzed.results));
}

}  // namespace
}  // namespace sjoin
