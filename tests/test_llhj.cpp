// Tests for the low-latency handshake join: oracle equivalence across
// pipeline lengths, home policies, and stores; the Table 1 matching cases;
// tombstones; expedition flags; and indexed operation.
#include <gtest/gtest.h>

#include "baseline/kang_join.hpp"
#include "llhj/llhj_pipeline.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyBand;
using test::KeyEq;
using test::MakeRandomTrace;
using test::RunLlhjSequential;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TRKey;
using test::TS;
using test::TSKey;

template <typename Pred = KeyEq>
typename LlhjPipeline<TR, TS, Pred>::Options LlhjOptions(
    int nodes, HomePolicy policy = HomePolicy::kRoundRobin) {
  typename LlhjPipeline<TR, TS, Pred>::Options options;
  options.nodes = nodes;
  options.channel_capacity = 64;
  options.home_policy = policy;
  return options;
}

struct LlhjParam {
  int nodes;
  HomePolicy policy;
};

class LlhjOracle : public ::testing::TestWithParam<LlhjParam> {};

TEST_P(LlhjOracle, MatchesKangOnRandomTimeWindows) {
  const auto param = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    TraceConfig config;
    config.events = 240;
    config.key_domain = 5;
    auto trace = MakeRandomTrace(seed, config);
    auto script = BuildDriverScript(trace, WindowSpec::Time(60),
                                    WindowSpec::Time(60));
    auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
    auto llhj = RunLlhjSequential<KeyEq>(
        script, LlhjOptions(param.nodes, param.policy));
    EXPECT_TRUE(SameResultSet(oracle, llhj))
        << "nodes=" << param.nodes << " seed=" << seed;
  }
}

TEST_P(LlhjOracle, MatchesKangOnRandomCountWindows) {
  const auto param = GetParam();
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    TraceConfig config;
    config.events = 240;
    config.key_domain = 4;
    auto trace = MakeRandomTrace(seed, config);
    auto script = BuildDriverScript(trace, WindowSpec::Count(24),
                                    WindowSpec::Count(17));
    auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
    auto llhj = RunLlhjSequential<KeyEq>(
        script, LlhjOptions(param.nodes, param.policy));
    EXPECT_TRUE(SameResultSet(oracle, llhj))
        << "nodes=" << param.nodes << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PipelineShapes, LlhjOracle,
    ::testing::Values(LlhjParam{1, HomePolicy::kRoundRobin},
                      LlhjParam{2, HomePolicy::kRoundRobin},
                      LlhjParam{3, HomePolicy::kRoundRobin},
                      LlhjParam{4, HomePolicy::kRoundRobin},
                      LlhjParam{6, HomePolicy::kRoundRobin},
                      LlhjParam{4, HomePolicy::kBlock},
                      LlhjParam{4, HomePolicy::kHash},
                      LlhjParam{5, HomePolicy::kHash}),
    [](const ::testing::TestParamInfo<LlhjParam>& info) {
      const char* p = info.param.policy == HomePolicy::kRoundRobin ? "rr"
                      : info.param.policy == HomePolicy::kBlock    ? "blk"
                                                                   : "hash";
      return "n" + std::to_string(info.param.nodes) + p;
    });

TEST(Llhj, SingleNodeDegeneratesToKang) {
  TraceConfig config;
  config.events = 150;
  auto trace = MakeRandomTrace(3, config);
  auto script = BuildDriverScript(trace, WindowSpec::Time(40),
                                  WindowSpec::Time(40));
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
  auto llhj = RunLlhjSequential<KeyEq>(script, LlhjOptions(1));
  EXPECT_TRUE(SameResultSet(oracle, llhj));
}

TEST(Llhj, LateArrivalMatchesStoredCopy) {
  // Table 1 row "never met, r after s": s completes its expedition long
  // before r arrives; the match must come from s's stored copy at h_s.
  Trace<TR, TS> trace;
  trace.push_back(ArriveS<TR, TS>(0, TS{1, 0}));
  trace.push_back(ArriveR<TR, TS>(50, TR{1, 1}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(100),
                                  WindowSpec::Time(100));
  auto results = RunLlhjSequential<KeyEq>(script, LlhjOptions(4));
  ASSERT_EQ(results.size(), 1u);
}

TEST(Llhj, LateSMatchesClearedFlagCopy) {
  // Table 1 row "never met, s after r": r's expedition flag must be cleared
  // by the expedition-end message, or s would skip the copy at h_r.
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(0, TR{1, 0}));
  trace.push_back(ArriveS<TR, TS>(50, TS{1, 1}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(100),
                                  WindowSpec::Time(100));
  for (int nodes = 1; nodes <= 6; ++nodes) {
    auto results = RunLlhjSequential<KeyEq>(script, LlhjOptions(nodes));
    EXPECT_EQ(results.size(), 1u) << "nodes=" << nodes;
  }
}

TEST(Llhj, ExpeditionFlagsEventuallyClear) {
  Trace<TR, TS> trace;
  for (int i = 0; i < 32; ++i) {
    trace.push_back(ArriveR<TR, TS>(i, TR{i + 100, i}));  // no matches
  }
  auto script = BuildDriverScript(trace, WindowSpec::Time(10'000),
                                  WindowSpec::Time(10'000), false);
  LlhjPipeline<TR, TS, KeyEq> pipeline(LlhjOptions(4));
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);
  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  std::size_t stored = 0;
  for (int k = 0; k < 4; ++k) {
    stored += pipeline.node(k).r_store().size();
    EXPECT_EQ(pipeline.node(k).r_store().expedited_count(), 0u)
        << "node " << k << " still has expedited entries after quiescence";
  }
  EXPECT_EQ(stored, 32u);
  EXPECT_EQ(pipeline.total_anomalies(), 0u);
}

TEST(Llhj, RoundRobinDistributesHomeCopies) {
  Trace<TR, TS> trace;
  for (int i = 0; i < 40; ++i) {
    trace.push_back(ArriveR<TR, TS>(i, TR{i + 100, i}));
  }
  auto script = BuildDriverScript(trace, WindowSpec::Time(10'000),
                                  WindowSpec::Time(10'000), false);
  LlhjPipeline<TR, TS, KeyEq> pipeline(LlhjOptions(4));
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);
  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(pipeline.node(k).r_store().size(), 10u) << "node " << k;
  }
}

TEST(Llhj, ExpiryRemovesStoredCopies) {
  Trace<TR, TS> trace;
  for (int i = 0; i < 30; ++i) {
    if (i % 2 == 0) {
      trace.push_back(ArriveR<TR, TS>(i, TR{1, i}));
    } else {
      trace.push_back(ArriveS<TR, TS>(i, TS{1, i}));
    }
  }
  trace.push_back(ArriveR<TR, TS>(1000, TR{2, 99}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(5),
                                  WindowSpec::Time(5), false);
  LlhjPipeline<TR, TS, KeyEq> pipeline(LlhjOptions(3));
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);
  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  EXPECT_EQ(pipeline.resident_tuples(), 1u);
  EXPECT_EQ(pipeline.total_anomalies(), 0u);
}

TEST(Llhj, TombstoneBackstopWithoutExpiryGate) {
  // Robustness test for raw pipeline users that feed *without* the expiry
  // gate: with a tiny window the driver floods expiries that overtake their
  // still-travelling tuples. The tombstone mechanism must keep the stores
  // clean (no leaked copies => no duplicates, no missed legal pairs); a few
  // extra matches from in-flight crossings are inherent in this unguarded
  // mode (DESIGN.md, bounded-lag discussion), so extras are not asserted.
  Trace<TR, TS> trace;
  for (int i = 0; i < 60; ++i) {
    if (i % 2 == 0) {
      trace.push_back(ArriveR<TR, TS>(i, TR{1, i}));
    } else {
      trace.push_back(ArriveS<TR, TS>(i, TS{1, i}));
    }
  }
  auto script = BuildDriverScript(trace, WindowSpec::Time(1),
                                  WindowSpec::Time(1));
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  LlhjPipeline<TR, TS, KeyEq> pipeline(LlhjOptions(4));
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;  // deliberately NO expiry_gate
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);
  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  const auto want = test::PairMultiset(oracle);
  const auto got = test::PairMultiset(handler.results());
  for (const auto& [pair, n] : want) {
    auto it = got.find(pair);
    EXPECT_TRUE(it != got.end()) << "missing legal pair (r" << pair.first
                                 << ", s" << pair.second << ")";
  }
  for (const auto& [pair, n] : got) {
    EXPECT_LE(n, 1) << "duplicate pair (r" << pair.first << ", s"
                    << pair.second << ")";
  }
  EXPECT_EQ(pipeline.total_anomalies(), 0u);
  // Only the final two arrivals (ts 58, 59) are still inside the 1 us
  // window when the trace ends — no later arrival triggers their expiry.
  // Everything else must have been erased directly or via tombstone.
  EXPECT_EQ(pipeline.resident_tuples(), 2u);
}

TEST(Llhj, BandPredicate) {
  TraceConfig config;
  config.events = 220;
  config.key_domain = 12;
  auto trace = MakeRandomTrace(51, config);
  auto script = BuildDriverScript(trace, WindowSpec::Time(50),
                                  WindowSpec::Time(50));
  auto oracle = RunKangOracle<TR, TS, KeyBand>(script, KeyBand{2});
  auto llhj = RunLlhjSequential<KeyBand>(script, LlhjOptions<KeyBand>(4),
                                         KeyBand{2});
  EXPECT_TRUE(SameResultSet(oracle, llhj));
}

TEST(Llhj, IndexedStoresMatchOracle) {
  using RStore = HashStore<TR, TRKey, TSKey>;
  using SStore = HashStore<TS, TSKey, TRKey>;
  for (uint64_t seed = 61; seed <= 66; ++seed) {
    TraceConfig config;
    config.events = 240;
    config.key_domain = 6;
    auto trace = MakeRandomTrace(seed, config);
    auto script = BuildDriverScript(trace, WindowSpec::Count(20),
                                    WindowSpec::Count(20));
    auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

    typename LlhjPipeline<TR, TS, KeyEq, RStore, SStore>::Options options;
    options.nodes = 4;
    options.channel_capacity = 64;
    auto llhj = RunLlhjSequential<KeyEq, RStore, SStore>(script, options);
    EXPECT_TRUE(SameResultSet(oracle, llhj)) << "seed " << seed;
  }
}

TEST(Llhj, OrderedStoresMatchOracleOnBandJoin) {
  // Ordered (range) node-local indexes accelerating the band join — the
  // paper's future-work configuration. The index prunes on the key
  // dimension; results must equal the scan-based oracle exactly.
  struct TRLow {
    int64_t operator()(const TR& r) const { return r.key - 2; }
  };
  struct TRHigh {
    int64_t operator()(const TR& r) const { return r.key + 2; }
  };
  struct TSLow {
    int64_t operator()(const TS& s) const { return s.key - 2; }
  };
  struct TSHigh {
    int64_t operator()(const TS& s) const { return s.key + 2; }
  };
  using RStore = OrderedStore<TR, TRKey, TSLow, TSHigh>;
  using SStore = OrderedStore<TS, TSKey, TRLow, TRHigh>;

  for (uint64_t seed = 101; seed <= 105; ++seed) {
    TraceConfig config;
    config.events = 240;
    config.key_domain = 12;
    auto trace = MakeRandomTrace(seed, config);
    auto script = BuildDriverScript(trace, WindowSpec::Count(24),
                                    WindowSpec::Count(20));
    auto oracle = RunKangOracle<TR, TS, KeyBand>(script, KeyBand{2});

    typename LlhjPipeline<TR, TS, KeyBand, RStore, SStore>::Options options;
    options.nodes = 4;
    options.channel_capacity = 64;
    auto llhj = RunLlhjSequential<KeyBand, RStore, SStore>(script, options,
                                                           KeyBand{2});
    EXPECT_TRUE(SameResultSet(oracle, llhj)) << "seed " << seed;
  }
}

TEST(Llhj, BatchedFeedingStaysExact) {
  TraceConfig config;
  config.events = 260;
  config.key_domain = 5;
  auto trace = MakeRandomTrace(71, config);
  auto script = BuildDriverScript(trace, WindowSpec::Time(60),
                                  WindowSpec::Time(60));
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
  for (int batch : {1, 4, 64}) {
    auto llhj = RunLlhjSequential<KeyEq>(script, LlhjOptions(4), KeyEq{},
                                         batch);
    EXPECT_TRUE(SameResultSet(oracle, llhj)) << "batch " << batch;
  }
}

TEST(Llhj, SmallChannelsStillCorrect) {
  TraceConfig config;
  config.events = 200;
  config.key_domain = 4;
  auto trace = MakeRandomTrace(81, config);
  auto script = BuildDriverScript(trace, WindowSpec::Count(16),
                                  WindowSpec::Count(16));
  auto options = LlhjOptions(4);
  options.channel_capacity = 8;
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
  auto llhj = RunLlhjSequential<KeyEq>(script, options);
  EXPECT_TRUE(SameResultSet(oracle, llhj));
}

TEST(Llhj, EmptyScriptQuiesces) {
  DriverScript<TR, TS> script;
  auto results = RunLlhjSequential<KeyEq>(script, LlhjOptions(3));
  EXPECT_TRUE(results.empty());
}

TEST(Llhj, HighWaterMarksAdvanceToLastTimestamps) {
  Trace<TR, TS> trace;
  trace.push_back(ArriveR<TR, TS>(10, TR{1, 0}));
  trace.push_back(ArriveS<TR, TS>(20, TS{2, 1}));
  trace.push_back(ArriveR<TR, TS>(30, TR{3, 2}));
  auto script = BuildDriverScript(trace, WindowSpec::Time(1000),
                                  WindowSpec::Time(1000), false);
  LlhjPipeline<TR, TS, KeyEq> pipeline(LlhjOptions(3));
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);
  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();

  EXPECT_EQ(pipeline.hwm().Get(StreamSide::kR), 30);
  EXPECT_EQ(pipeline.hwm().Get(StreamSide::kS), 20);
  EXPECT_EQ(pipeline.hwm().SafeMin(), 20);
}

}  // namespace
}  // namespace sjoin
