// Tests for the driver-side feeder (batching, routing, backpressure) and
// the workload sources.
#include <gtest/gtest.h>

#include <vector>

#include "common/schema.hpp"
#include "stream/feeder.hpp"
#include "stream/generator.hpp"
#include "stream/source.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::TR;
using test::TS;

struct FeederHarness {
  explicit FeederHarness(std::size_t capacity = 256)
      : left(capacity), right(capacity) {}

  PipelinePorts<TR, TS> ports() { return {&left, &right}; }

  SpscQueue<FlowMsg<TR>> left;
  SpscQueue<FlowMsg<TS>> right;
};

DriverScript<TR, TS> SmallScript(int pairs, bool flush = false) {
  Trace<TR, TS> trace;
  for (int i = 0; i < pairs; ++i) {
    trace.push_back(ArriveR<TR, TS>(2 * i, TR{i, i}));
    trace.push_back(ArriveS<TR, TS>(2 * i + 1, TS{i, i}));
  }
  return BuildDriverScript(trace, WindowSpec::Time(1000),
                           WindowSpec::Time(1000), flush);
}

TEST(ScriptSource, ReplaysInOrder) {
  auto script = SmallScript(3);
  ScriptSource<TR, TS> source(&script);
  DriverEvent<TR, TS> e;
  std::size_t n = 0;
  while (source.Next(&e)) ++n;
  EXPECT_EQ(n, script.events.size());
  EXPECT_FALSE(source.Next(&e));  // stays exhausted
}

TEST(Feeder, RoutesArrivalsToCorrectEnds) {
  auto script = SmallScript(4);
  FeederHarness h;
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options options;
  options.batch_size = 1;
  Feeder<TR, TS> feeder(h.ports(), &source, options);
  while (!feeder.finished()) feeder.Step();

  EXPECT_EQ(h.left.SizeApprox(), 4u);   // 4 R arrivals
  EXPECT_EQ(h.right.SizeApprox(), 4u);  // 4 S arrivals
  EXPECT_EQ(feeder.arrivals_pushed(StreamSide::kR), 4u);
  EXPECT_EQ(feeder.arrivals_pushed(StreamSide::kS), 4u);

  FlowMsg<TR> msg;
  Seq expected = 0;
  while (h.left.TryPop(&msg)) {
    EXPECT_EQ(msg.kind, MsgKind::kArrival);
    EXPECT_EQ(msg.seq, expected++);
  }
}

TEST(Feeder, BatchingDelaysPushUntilBatchFull) {
  auto script = SmallScript(8);  // 8 events per side
  FeederHarness h;
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options options;
  options.batch_size = 64;          // bigger than the script
  options.max_events_per_step = 4;  // a few events per step
  Feeder<TR, TS> feeder(h.ports(), &source, options);

  feeder.Step();
  EXPECT_EQ(h.left.SizeApprox(), 0u) << "batch must not flush early";

  while (!feeder.finished()) feeder.Step();
  EXPECT_EQ(h.left.SizeApprox(), 8u) << "exhaustion flushes the remainder";
  EXPECT_EQ(h.right.SizeApprox(), 8u);
}

TEST(Feeder, BackpressureRetainsOverflow) {
  auto script = SmallScript(40);
  FeederHarness h(16);  // tiny channels
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options options;
  options.batch_size = 1;
  Feeder<TR, TS> feeder(h.ports(), &source, options);

  for (int i = 0; i < 100; ++i) feeder.Step();
  EXPECT_FALSE(feeder.finished());  // stuck behind full queues
  EXPECT_EQ(h.left.SizeApprox(), 16u);

  // Drain and let it finish.
  FlowMsg<TR> r;
  FlowMsg<TS> s;
  while (!feeder.finished()) {
    while (h.left.TryPop(&r)) {
    }
    while (h.right.TryPop(&s)) {
    }
    feeder.Step();
  }
  EXPECT_EQ(feeder.arrivals_pushed(StreamSide::kR), 40u);
}

TEST(Feeder, RequestStopFlushesPending) {
  auto script = SmallScript(100);
  FeederHarness h;
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options options;
  options.batch_size = 64;
  options.max_events_per_step = 3;
  Feeder<TR, TS> feeder(h.ports(), &source, options);
  feeder.Step();  // a few events into the pending batch
  feeder.RequestStop();
  for (int i = 0; i < 10 && !feeder.finished(); ++i) feeder.Step();
  EXPECT_TRUE(feeder.finished());
  EXPECT_GT(h.left.SizeApprox() + h.right.SizeApprox(), 0u);
}

TEST(Feeder, FlushMessagesRideTheFlows) {
  auto script = SmallScript(1, /*flush=*/true);
  FeederHarness h;
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options options;
  options.batch_size = 1;
  Feeder<TR, TS> feeder(h.ports(), &source, options);
  while (!feeder.finished()) feeder.Step();

  bool saw_flush_left = false;
  FlowMsg<TR> r;
  while (h.left.TryPop(&r)) saw_flush_left |= r.kind == MsgKind::kFlush;
  bool saw_flush_right = false;
  FlowMsg<TS> s;
  while (h.right.TryPop(&s)) saw_flush_right |= s.kind == MsgKind::kFlush;
  EXPECT_TRUE(saw_flush_left);
  EXPECT_TRUE(saw_flush_right);
}

TEST(GeneratedSource, AlternatesSidesAndSpacesTimestamps) {
  typename GeneratedSource<RTuple, STuple>::Options options;
  options.period_us = 10;
  options.max_arrivals = 6;
  options.wr = WindowSpec::Count(100);
  options.ws = WindowSpec::Count(100);
  GeneratedSource<RTuple, STuple> source(
      [](Rng& rng) { return MakeBandR(rng); },
      [](Rng& rng) { return MakeBandS(rng); }, options);

  std::vector<DriverEvent<RTuple, STuple>> events;
  DriverEvent<RTuple, STuple> e;
  while (source.Next(&e)) events.push_back(e);
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].op,
              i % 2 == 0 ? DriverOp::kArriveR : DriverOp::kArriveS);
    EXPECT_EQ(events[i].ts, static_cast<Timestamp>(i) * 10);
  }
}

TEST(GeneratedSource, EmitsCountExpiries) {
  typename GeneratedSource<RTuple, STuple>::Options options;
  options.period_us = 1;
  options.max_arrivals = 10;
  options.wr = WindowSpec::Count(2);
  options.ws = WindowSpec::Count(2);
  GeneratedSource<RTuple, STuple> source(
      [](Rng& rng) { return MakeBandR(rng); },
      [](Rng& rng) { return MakeBandS(rng); }, options);

  int arrivals = 0, expiries = 0;
  DriverEvent<RTuple, STuple> e;
  while (source.Next(&e)) {
    if (IsArrival(e.op)) ++arrivals;
    if (IsExpiry(e.op)) ++expiries;
  }
  EXPECT_EQ(arrivals, 10);
  EXPECT_EQ(expiries, 6);  // each side: 5 arrivals, window 2 -> 3 expiries
}

TEST(GeneratedSource, EmitsTimeExpiries) {
  typename GeneratedSource<RTuple, STuple>::Options options;
  options.period_us = 10;
  options.max_arrivals = 8;
  options.wr = WindowSpec::Time(15);
  options.ws = WindowSpec::Time(15);
  GeneratedSource<RTuple, STuple> source(
      [](Rng& rng) { return MakeBandR(rng); },
      [](Rng& rng) { return MakeBandS(rng); }, options);

  int expiries = 0;
  DriverEvent<RTuple, STuple> e;
  while (source.Next(&e)) expiries += IsExpiry(e.op) ? 1 : 0;
  EXPECT_GT(expiries, 0);
}

TEST(Generator, BandTraceHasPaperShape) {
  auto trace = MakeBandTrace(50, 3, /*seed=*/9);
  ASSERT_EQ(trace.size(), 100u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].side,
              i % 2 == 0 ? StreamSide::kR : StreamSide::kS);
    EXPECT_EQ(trace[i].ts, static_cast<Timestamp>(i) * 3);
    if (trace[i].side == StreamSide::kR) {
      EXPECT_GE(trace[i].r.x, 1);
      EXPECT_LE(trace[i].r.x, kPaperKeyDomain);
    }
  }
}

}  // namespace
}  // namespace sjoin
