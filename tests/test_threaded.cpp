// Integration tests with real threads: full pipelines (feeder, pinned node
// threads, collector) must produce exactly the oracle result set, under
// regular and tiny channel capacities, with punctuation invariants holding
// live.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "baseline/kang_join.hpp"
#include "runtime/placement.hpp"
#include "hsj/hsj_pipeline.hpp"
#include "llhj/llhj_pipeline.hpp"
#include "runtime/executor.hpp"
#include "stream/feeder.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyEq;
using test::MakeRandomTrace;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

/// Runs a pipeline threaded until the feeder finishes and the system
/// quiesces; results are delivered to `handler`.
template <typename Pipeline>
void RunThreaded(Pipeline& pipeline, const DriverScript<TR, TS>& script,
                 int batch, OutputHandler<TR, TS>* handler,
                 const HighWaterMarks* expiry_gate = nullptr) {
  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = batch;
  fo.expiry_gate = expiry_gate;
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);
  auto collector = pipeline.MakeCollector(handler);

  // A pipeline built with a placement plan gets its node threads placed by
  // the SAME plan, so threads and channel memory agree.
  auto exec_owner = pipeline.placement().empty()
                        ? std::make_unique<ThreadedExecutor>()
                        : std::make_unique<ThreadedExecutor>(
                              pipeline.placement());
  ThreadedExecutor& exec = *exec_owner;
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.AddHelper(&feeder);
  exec.AddHelper(collector.get());
  exec.Start();

  // Wait for the feeder, then for distributed quiescence.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!feeder.finished()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "feeder stuck";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  uint64_t last = 0;
  int stable = 0;
  while (stable < 10) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "no quiescence";
    const uint64_t processed = pipeline.TotalProcessed();
    const std::size_t backlog = pipeline.ApproxBacklog();
    if (processed == last && backlog == 0) {
      ++stable;
    } else {
      stable = 0;
      last = processed;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  exec.Stop();
  collector->VacuumOnce();  // final sweep after nodes stopped

  EXPECT_EQ(pipeline.total_anomalies(), 0u);
}

DriverScript<TR, TS> ThreadedScript(uint64_t seed, bool count_windows) {
  TraceConfig config;
  config.events = 2000;
  config.key_domain = 12;
  config.max_gap_us = 2;
  auto trace = MakeRandomTrace(seed, config);
  if (count_windows) {
    return BuildDriverScript(trace, WindowSpec::Count(220),
                             WindowSpec::Count(180));
  }
  return BuildDriverScript(trace, WindowSpec::Time(500),
                           WindowSpec::Time(500));
}

TEST(ThreadedLlhj, ExactOracleEquality) {
  for (uint64_t seed : {1u, 2u}) {
    auto script = ThreadedScript(seed, false);
    auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

    typename LlhjPipeline<TR, TS, KeyEq>::Options options;
    options.nodes = 4;
    LlhjPipeline<TR, TS, KeyEq> pipeline(options);
    CollectingHandler<TR, TS> handler;
    RunThreaded(pipeline, script, /*batch=*/8, &handler, &pipeline.hwm());
    EXPECT_TRUE(SameResultSet(oracle, handler.results())) << "seed " << seed;
  }
}

TEST(ThreadedLlhj, CountWindowsAndBatch64) {
  auto script = ThreadedScript(3, true);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 5;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);
  CollectingHandler<TR, TS> handler;
  RunThreaded(pipeline, script, /*batch=*/64, &handler, &pipeline.hwm());
  EXPECT_TRUE(SameResultSet(oracle, handler.results()));
}

TEST(ThreadedLlhj, TinyChannelsExerciseBackpressure) {
  auto script = ThreadedScript(4, true);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;
  options.channel_capacity = 16;
  options.result_capacity = 64;  // forces result staging too
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);
  CollectingHandler<TR, TS> handler;
  RunThreaded(pipeline, script, /*batch=*/8, &handler, &pipeline.hwm());
  EXPECT_TRUE(SameResultSet(oracle, handler.results()));
}

TEST(ThreadedHsj, ExactOracleEquality) {
  auto script = ThreadedScript(5, true);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename HsjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;  // self-balancing segments (default)
  // Bounded-lag regime: channels far smaller than the window so the driver
  // cannot run a window ahead of the pipeline (DESIGN.md).
  options.channel_capacity = 16;
  HsjPipeline<TR, TS, KeyEq> pipeline(options);
  CollectingHandler<TR, TS> handler;
  RunThreaded(pipeline, script, /*batch=*/8, &handler);
  EXPECT_TRUE(SameResultSet(oracle, handler.results()));
}

TEST(ThreadedHsj, TimeWindowsWithRelocationPressure) {
  auto script = ThreadedScript(6, false);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename HsjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 3;                // self-balancing segments (default)
  options.channel_capacity = 16;    // bounded-lag regime
  HsjPipeline<TR, TS, KeyEq> pipeline(options);
  CollectingHandler<TR, TS> handler;
  RunThreaded(pipeline, script, /*batch=*/16, &handler);
  EXPECT_TRUE(SameResultSet(oracle, handler.results()));
}

/// Punctuation invariant checked live under threads.
class LivePunctuationChecker : public OutputHandler<TR, TS> {
 public:
  void OnResult(const ResultMsg<TR, TS>& m) override {
    if (m.ts < last_tp_) violations_.fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnPunctuation(Timestamp tp) override { last_tp_ = tp; }

  uint64_t violations() const { return violations_.load(); }
  uint64_t count() const { return count_.load(); }

 private:
  Timestamp last_tp_ = kMinTimestamp;
  std::atomic<uint64_t> violations_{0};
  std::atomic<uint64_t> count_{0};
};

TEST(ThreadedLlhj, PunctuationInvariantHoldsLive) {
  auto script = ThreadedScript(7, false);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;
  options.punctuate = true;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);
  LivePunctuationChecker checker;
  RunThreaded(pipeline, script, /*batch=*/8, &checker, &pipeline.hwm());

  EXPECT_GT(checker.count(), 0u);
  EXPECT_EQ(checker.violations(), 0u);
}

// Channel rings of a planned pipeline are homed on their CONSUMER's NUMA
// node and the consumer-side placement hook runs on every ring before
// steady state — observed here through the pipeline's placement
// introspection on a synthetic two-node topology (so the test exercises the
// multi-node paths even on single-socket hosts), with the result set still
// exactly the oracle's.
TEST(ThreadedPlacement, ChannelsHomedOnConsumersUnderSyntheticTopology) {
  Topology::SyntheticShape shape;
  shape.nodes_per_package = 2;
  shape.cores_per_node = 2;
  Topology topo = Topology::Synthetic(shape);  // cpus 0-3 over nodes {0, 1}
  PlacementPlan plan =
      PlacementPlan::Build(topo, PlacementPolicy::kCompact, 4, kHelperCount);

  auto script = ThreadedScript(8, true);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;
  options.placement = plan;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);
  // Construction already recorded each ring's home = its consumer's node.
  for (int k = 0; k < options.nodes; ++k) {
    EXPECT_EQ(pipeline.channel_home(k), plan.NodeForPosition(k)) << "node " << k;
  }
  EXPECT_EQ(plan.NodeForPosition(0), 0);
  EXPECT_EQ(plan.NodeForPosition(3), 1);  // genuinely multi-node plan

  CollectingHandler<TR, TS> handler;
  RunThreaded(pipeline, script, /*batch=*/8, &handler, &pipeline.hwm());
  EXPECT_TRUE(SameResultSet(oracle, handler.results()));
  // The hook ran on every ring (which rung it reached depends on the host;
  // kUnplaced would mean placement was skipped entirely).
  for (int k = 0; k < options.nodes; ++k) {
    EXPECT_NE(pipeline.channel_placement(k), ChannelPlacement::kUnplaced)
        << "node " << k;
  }
}

// All four placement policies must produce the exact oracle result set —
// placement moves threads and memory, never results.
TEST(ThreadedPlacement, AllPoliciesProduceIdenticalResults) {
  auto script = ThreadedScript(9, true);
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
  Topology::SyntheticShape shape;
  shape.nodes_per_package = 2;
  shape.cores_per_node = 3;
  Topology topo = Topology::Synthetic(shape);

  for (PlacementPolicy policy :
       {PlacementPolicy::kAuto, PlacementPolicy::kCompact,
        PlacementPolicy::kScatter, PlacementPolicy::kNone}) {
    PlacementPlan plan =
        PlacementPlan::Build(topo, policy, 4, kHelperCount);
    typename LlhjPipeline<TR, TS, KeyEq>::Options options;
    options.nodes = 4;
    options.placement = plan;
    LlhjPipeline<TR, TS, KeyEq> pipeline(options);
    CollectingHandler<TR, TS> handler;
    RunThreaded(pipeline, script, /*batch=*/8, &handler, &pipeline.hwm());
    EXPECT_TRUE(SameResultSet(oracle, handler.results()))
        << "policy " << ToString(policy);
  }
}

}  // namespace
}  // namespace sjoin
