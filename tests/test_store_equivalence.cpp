// Equivalence tests: the cache-friendly window stores (ring-buffer
// VectorStore, flat-hash HashStore) must behave exactly like the seed
// implementations (std::deque scan store, unordered_map bucket store) on
// every operation sequence the LLHJ protocol can produce. The reference
// implementations below are verbatim ports of the seed stores; the drivers
// generate protocol-conformant op streams — insertions in sequence order,
// expiries oldest-first (with occasional out-of-order erases, the
// tombstone-chase shape), expedition-ends in insertion order, lookups of
// absent seqs — the same shapes the schedule fuzzer produces through whole
// pipelines in test_schedules.cpp. The lane-grouped HashStore additionally
// runs lock-step against the retained chain-walk baseline (ChainHashStore)
// under tombstone-heavy churn, with batched-probe multiset checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "llhj/group_table.hpp"
#include "llhj/store.hpp"
#include "stream/query_set.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::TR;
using test::TRKey;
using test::TS;
using test::TSKey;

// -- Reference implementations (the seed's stores, verbatim) -----------------

template <typename T>
class RefVectorStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    entries_.push_back(StoreEntry<T>{t, expedited});
  }

  bool EraseSeq(Seq seq) {
    if (!entries_.empty() && entries_.front().tuple.seq == seq) {
      entries_.pop_front();
      return true;
    }
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->tuple.seq == seq) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool ClearExpedited(Seq seq) {
    for (auto& entry : entries_) {
      if (entry.tuple.seq == seq) {
        entry.expedited = false;
        return true;
      }
    }
    return false;
  }

  template <typename Probe, typename F>
  void ForEach(const Probe& /*probe*/, F&& f) const {
    for (const auto& entry : entries_) f(entry);
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::deque<StoreEntry<T>> entries_;
};

template <typename T, typename OwnKey, typename ProbeKey>
class RefHashStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    const int64_t key = OwnKey{}(t.value);
    buckets_[key].push_back(StoreEntry<T>{t, expedited});
    seq_to_key_.emplace(t.seq, key);
    ++size_;
  }

  bool EraseSeq(Seq seq) {
    auto key_it = seq_to_key_.find(seq);
    if (key_it == seq_to_key_.end()) return false;
    auto bucket_it = buckets_.find(key_it->second);
    if (bucket_it != buckets_.end()) {
      auto& vec = bucket_it->second;
      for (auto it = vec.begin(); it != vec.end(); ++it) {
        if (it->tuple.seq == seq) {
          vec.erase(it);
          break;
        }
      }
      if (vec.empty()) buckets_.erase(bucket_it);
    }
    seq_to_key_.erase(key_it);
    --size_;
    return true;
  }

  bool ClearExpedited(Seq seq) {
    auto key_it = seq_to_key_.find(seq);
    if (key_it == seq_to_key_.end()) return false;
    auto bucket_it = buckets_.find(key_it->second);
    if (bucket_it == buckets_.end()) return false;
    for (auto& entry : bucket_it->second) {
      if (entry.tuple.seq == seq) {
        entry.expedited = false;
        return true;
      }
    }
    return false;
  }

  template <typename Probe, typename F>
  void ForEach(const Probe& probe, F&& f) const {
    auto it = buckets_.find(ProbeKey{}(probe));
    if (it == buckets_.end()) return;
    for (const auto& entry : it->second) f(entry);
  }

  std::size_t size() const { return size_; }

 private:
  std::unordered_map<int64_t, std::vector<StoreEntry<T>>> buckets_;
  std::unordered_map<Seq, int64_t> seq_to_key_;
  std::size_t size_ = 0;
};

// -- Drivers -----------------------------------------------------------------

struct Observed {
  Seq seq;
  int32_t key;
  bool expedited;
  bool operator==(const Observed&) const = default;
};

template <typename Store>
std::vector<Observed> Snapshot(const Store& store, int32_t probe_key) {
  TS probe;
  probe.key = probe_key;
  std::vector<Observed> out;
  store.ForEach(probe, [&](const StoreEntry<TR>& e) {
    out.push_back(Observed{e.tuple.seq, e.tuple.value.key, e.expedited});
  });
  return out;
}

Stamped<TR> MakeTuple(int32_t key, Seq seq) {
  Stamped<TR> t;
  t.value.key = key;
  t.value.id = static_cast<int32_t>(seq);
  t.seq = seq;
  t.ts = static_cast<Timestamp>(seq);
  return t;
}

// R-side shape: every insert expedited, expedition-ends clear in insertion
// order, expiries erase (mostly) oldest-first, plus absent-seq probes.
TEST(StoreEquivalence, RingStoreMatchesSeedVectorStoreOnRSideSequences) {
  for (uint64_t trial = 1; trial <= 8; ++trial) {
    Rng rng(trial * 1337);
    VectorStore<TR> ring;
    RefVectorStore<TR> ref;
    Seq next_seq = 0;
    std::deque<Seq> live;      // insertion order
    std::deque<Seq> to_clear;  // expedition-ends pending, insertion order
    for (int op = 0; op < 4000; ++op) {
      const double dice = rng.UniformDouble();
      if (live.empty() || dice < 0.45) {
        const int32_t key = static_cast<int32_t>(rng.UniformInt(1, 6));
        ring.Insert(MakeTuple(key, next_seq), /*expedited=*/true);
        ref.Insert(MakeTuple(key, next_seq), /*expedited=*/true);
        live.push_back(next_seq);
        to_clear.push_back(next_seq);
        ++next_seq;
      } else if (dice < 0.65 && !to_clear.empty()) {
        // Expedition-end for the oldest still-expedited seq. The tuple may
        // already have been erased (tombstone shape) — both stores must
        // then report a miss.
        const Seq seq = to_clear.front();
        to_clear.pop_front();
        ASSERT_EQ(ring.ClearExpedited(seq), ref.ClearExpedited(seq));
      } else if (dice < 0.95) {
        // Expiry: oldest-first (typical), occasionally out of order.
        const std::size_t pick =
            rng.Chance(0.85) ? 0
                             : static_cast<std::size_t>(rng.UniformInt(
                                   0, static_cast<int64_t>(live.size()) - 1));
        const Seq seq = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        ASSERT_EQ(ring.EraseSeq(seq), ref.EraseSeq(seq));
      } else {
        // Absent seq (already expired or never stored).
        ASSERT_EQ(ring.EraseSeq(next_seq + 100), ref.EraseSeq(next_seq + 100));
      }
      ASSERT_EQ(ring.size(), ref.size()) << "trial " << trial << " op " << op;
      if (op % 64 == 0) {
        ASSERT_EQ(Snapshot(ring, 0), Snapshot(ref, 0))
            << "trial " << trial << " op " << op;
      }
    }
    EXPECT_EQ(Snapshot(ring, 0), Snapshot(ref, 0));
  }
}

// S-side shape: inserts never expedited, pure FIFO expiry.
TEST(StoreEquivalence, RingStoreMatchesSeedVectorStoreOnSSideSequences) {
  Rng rng(4242);
  VectorStore<TR> ring;
  RefVectorStore<TR> ref;
  Seq next_seq = 0;
  std::deque<Seq> live;
  for (int op = 0; op < 6000; ++op) {
    if (live.empty() || rng.Chance(0.55)) {
      const int32_t key = static_cast<int32_t>(rng.UniformInt(1, 4));
      ring.Insert(MakeTuple(key, next_seq), false);
      ref.Insert(MakeTuple(key, next_seq), false);
      live.push_back(next_seq++);
    } else {
      const Seq seq = live.front();
      live.pop_front();
      ASSERT_EQ(ring.EraseSeq(seq), ref.EraseSeq(seq));
    }
    ASSERT_EQ(ring.size(), ref.size());
  }
  EXPECT_EQ(Snapshot(ring, 0), Snapshot(ref, 0));
}

TEST(StoreEquivalence, FlatHashStoreMatchesSeedHashStore) {
  using Flat = HashStore<TR, TRKey, TSKey>;
  using Ref = RefHashStore<TR, TRKey, TSKey>;
  for (uint64_t trial = 1; trial <= 8; ++trial) {
    Rng rng(trial * 7717);
    Flat flat;
    Ref ref;
    Seq next_seq = 0;
    std::deque<Seq> live;
    std::deque<Seq> to_clear;
    constexpr int32_t kKeyDomain = 5;  // small: long per-key chains
    for (int op = 0; op < 4000; ++op) {
      const double dice = rng.UniformDouble();
      if (live.empty() || dice < 0.45) {
        const int32_t key = static_cast<int32_t>(rng.UniformInt(1, kKeyDomain));
        flat.Insert(MakeTuple(key, next_seq), true);
        ref.Insert(MakeTuple(key, next_seq), true);
        live.push_back(next_seq);
        to_clear.push_back(next_seq);
        ++next_seq;
      } else if (dice < 0.65 && !to_clear.empty()) {
        const Seq seq = to_clear.front();
        to_clear.pop_front();
        ASSERT_EQ(flat.ClearExpedited(seq), ref.ClearExpedited(seq));
      } else if (dice < 0.95) {
        const std::size_t pick =
            rng.Chance(0.85) ? 0
                             : static_cast<std::size_t>(rng.UniformInt(
                                   0, static_cast<int64_t>(live.size()) - 1));
        const Seq seq = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        ASSERT_EQ(flat.EraseSeq(seq), ref.EraseSeq(seq));
      } else {
        ASSERT_EQ(flat.EraseSeq(next_seq + 100), ref.EraseSeq(next_seq + 100));
      }
      ASSERT_EQ(flat.size(), ref.size()) << "trial " << trial << " op " << op;
      if (op % 64 == 0) {
        for (int32_t key = 1; key <= kKeyDomain; ++key) {
          ASSERT_EQ(Snapshot(flat, key), Snapshot(ref, key))
              << "trial " << trial << " op " << op << " key " << key;
        }
      }
    }
    for (int32_t key = 1; key <= kKeyDomain; ++key) {
      EXPECT_EQ(Snapshot(flat, key), Snapshot(ref, key)) << "key " << key;
    }
  }
}

// -- Grouped store vs chain baseline under tombstone churn -------------------

// The lane-grouped HashStore against the retained chain-walk baseline
// (ChainHashStore), in lock-step across every operation the store concept
// exposes. The op mix is erase-heavy in bursts, so the grouped table
// accumulates tombstoned lanes, crosses its 7/8 occupancy trigger, and
// exercises both rehash shapes (same-size tombstone purge and doubling).
// Two key domains: small forces long duplicate runs spilling the inline
// candidate buffer; large forces displacement across many groups.
TEST(StoreEquivalence, GroupedHashStoreMatchesChainStoreUnderChurn) {
  using Crossing = std::tuple<std::size_t, QueryId, Seq>;
  for (const int32_t key_domain : {4, 4096}) {
    for (uint64_t trial = 1; trial <= 4; ++trial) {
      Rng rng(trial * 9001 + static_cast<uint64_t>(key_domain));
      HashStore<TR, TRKey, TSKey> grouped;
      ChainHashStore<TR, TRKey, TSKey> chain;
      Seq next_seq = 0;
      std::deque<Seq> live;
      std::deque<Seq> to_clear;
      // Phases alternate: grow-heavy then erase-heavy (tombstone churn).
      for (int op = 0; op < 5000; ++op) {
        const bool grow_phase = (op / 500) % 2 == 0;
        const double insert_p = grow_phase ? 0.7 : 0.25;
        const double dice = rng.UniformDouble();
        if (live.empty() || dice < insert_p) {
          const int32_t key =
              static_cast<int32_t>(rng.UniformInt(1, key_domain));
          grouped.Insert(MakeTuple(key, next_seq), true);
          chain.Insert(MakeTuple(key, next_seq), true);
          live.push_back(next_seq);
          to_clear.push_back(next_seq);
          ++next_seq;
        } else if (dice < insert_p + 0.15 && !to_clear.empty()) {
          const Seq seq = to_clear.front();
          to_clear.pop_front();
          ASSERT_EQ(grouped.ClearExpedited(seq), chain.ClearExpedited(seq));
        } else if (dice < 0.97) {
          const std::size_t pick =
              rng.Chance(0.85) ? 0
                               : static_cast<std::size_t>(rng.UniformInt(
                                     0, static_cast<int64_t>(live.size()) - 1));
          const Seq seq = live[pick];
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
          ASSERT_EQ(grouped.EraseSeq(seq), chain.EraseSeq(seq));
        } else {
          ASSERT_EQ(grouped.EraseSeq(next_seq + 7),
                    chain.EraseSeq(next_seq + 7));
        }
        ASSERT_EQ(grouped.size(), chain.size())
            << "domain " << key_domain << " trial " << trial << " op " << op;
        if (op % 128 == 0) {
          // Per-key insertion-order snapshots on a handful of keys...
          for (int32_t key = 1; key <= std::min(key_domain, 5); ++key) {
            ASSERT_EQ(Snapshot(grouped, key), Snapshot(chain, key))
                << "domain " << key_domain << " trial " << trial << " op "
                << op << " key " << key;
          }
          // ...and a batched probe sweep including absent keys.
          QuerySet<test::KeyEq> queries{test::KeyEq{}};
          std::vector<Stamped<TS>> probes;
          for (std::size_t j = 0; j < 12; ++j) {
            Stamped<TS> p;
            p.value.key =
                static_cast<int32_t>(rng.UniformInt(1, key_domain + 2));
            p.seq = j;
            probes.push_back(p);
          }
          std::multiset<Crossing> got, want;
          grouped.MatchBatch<false>(
              queries, probes.data(), probes.size(),
              [&](std::size_t j, QueryId q, const StoreEntry<TR>& e) {
                got.insert({j, q, e.tuple.seq});
              });
          chain.MatchBatch<false>(
              queries, probes.data(), probes.size(),
              [&](std::size_t j, QueryId q, const StoreEntry<TR>& e) {
                want.insert({j, q, e.tuple.seq});
              });
          ASSERT_EQ(got, want)
              << "domain " << key_domain << " trial " << trial << " op " << op;
        }
      }
    }
  }
}

// The int32 GroupTable instantiation end-to-end (the store uses int64):
// duplicate lanes, (key, ref) disambiguated erase, tombstone reuse,
// same-size purge rehash, and candidate termination across dead groups.
TEST(StoreEquivalence, GroupTableInt32InsertEraseProbe) {
  GroupTable<int32_t> table;
  EXPECT_EQ(table.size(), 0u);
  // Oracle keeps each key's live refs in INSERTION order: the table's
  // candidate walk must reproduce it exactly (the order invariant the
  // store's probe path leans on — no sort on emission), across erases,
  // tombstone accumulation, purges and growth rehashes.
  std::unordered_map<int32_t, std::vector<int32_t>> oracle;
  Rng rng(271828);
  int32_t next_ref = 0;
  std::vector<std::pair<int32_t, int32_t>> live;
  for (int op = 0; op < 3000; ++op) {
    if (live.empty() || rng.Chance(0.55)) {
      const int32_t key = static_cast<int32_t>(rng.UniformInt(-8, 8));
      table.Insert(key, next_ref);
      oracle[key].push_back(next_ref);
      live.emplace_back(key, next_ref);
      ++next_ref;
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      const auto [key, ref] = live[pick];
      EXPECT_TRUE(table.Erase(key, ref));
      EXPECT_FALSE(table.Erase(key, ref));  // already tombstoned
      auto& order = oracle[key];
      order.erase(std::find(order.begin(), order.end(), ref));
      live[pick] = live.back();
      live.pop_back();
    }
    if (op % 100 == 0) {
      for (int32_t key = -9; key <= 9; ++key) {
        std::vector<int32_t> got;
        table.ForEachCandidate(key,
                               [&](int32_t ref) { got.push_back(ref); });
        const auto it = oracle.find(key);
        ASSERT_EQ(got, it == oracle.end() ? std::vector<int32_t>{}
                                          : it->second)
            << "op " << op << " key " << key;
      }
      ASSERT_EQ(table.size(), live.size());
    }
  }
  EXPECT_GT(table.group_count(), 2u);  // grew past kMinGroups
}

// -- Regression: ClearExpedited must not scan past the expedited suffix -----

// Expedition-ends arrive in insertion order, so a window is always a
// non-expedited (already cleared) prefix followed by an expedited suffix.
// The seed implementation walked the whole prefix for every clear — O(window)
// per expedition-end. The ring store scans newest-to-oldest and stops at
// the first non-expedited entry. This pins the early-exit semantics:
// a seq in the cleared prefix reports a miss instead of being re-found.
TEST(VectorStoreRegression, ClearExpeditedBailsOutAtExpeditedSuffix) {
  VectorStore<TR> store;
  for (Seq s = 0; s < 100; ++s) store.Insert(MakeTuple(1, s), true);
  // Clear the first 60 in insertion order (the protocol's only order).
  for (Seq s = 0; s < 60; ++s) EXPECT_TRUE(store.ClearExpedited(s));
  EXPECT_EQ(store.expedited_count(), 40u);
  // Re-clearing a prefix seq cannot happen in the protocol (one
  // expedition-end per tuple); the early exit reports it as a miss.
  EXPECT_FALSE(store.ClearExpedited(30));
  // The suffix stays reachable, in order.
  for (Seq s = 60; s < 100; ++s) EXPECT_TRUE(store.ClearExpedited(s));
  EXPECT_EQ(store.expedited_count(), 0u);
  EXPECT_FALSE(store.ClearExpedited(999));
}

// Erasures must preserve the bail-out invariant: holes punched by expiries
// (front or middle) never reorder entries, so flags stay monotone.
TEST(VectorStoreRegression, ClearExpeditedCorrectAfterErasures) {
  VectorStore<TR> store;
  for (Seq s = 0; s < 32; ++s) store.Insert(MakeTuple(1, s), true);
  for (Seq s = 0; s < 16; ++s) EXPECT_TRUE(store.ClearExpedited(s));
  EXPECT_TRUE(store.EraseSeq(0));   // front
  EXPECT_TRUE(store.EraseSeq(20));  // middle of the expedited suffix
  EXPECT_TRUE(store.EraseSeq(8));   // middle of the cleared prefix
  for (Seq s = 16; s < 32; ++s) {
    if (s == 20) {
      EXPECT_FALSE(store.ClearExpedited(s));  // erased: miss, like the seed
    } else {
      EXPECT_TRUE(store.ClearExpedited(s)) << "seq " << s;
    }
  }
  EXPECT_EQ(store.expedited_count(), 0u);
}

}  // namespace
}  // namespace sjoin
