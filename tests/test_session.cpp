// Tests for the multi-query, batch-first JoinSession API:
//  * config validation (clear std::invalid_argument on nonsense configs),
//  * query-set rules (register before start, at least one query),
//  * multi-query equivalence: one session with Q predicates produces
//    exactly the union of Q independent StreamJoiners (per-query result
//    sets compared, threaded and non-threaded, all engines),
//  * batch PushR/PushS equivalence with the per-tuple loop,
//  * QueryId routing and punctuation broadcast.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/join_session.hpp"
#include "core/stream_joiner.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyBand;
using test::KeyEq;
using test::MakeRandomTrace;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

JoinConfig BaseConfig(Algorithm algorithm, WindowSpec wr, WindowSpec ws,
                      bool threaded, int parallelism = 3) {
  JoinConfig config;
  config.algorithm = algorithm;
  config.parallelism = parallelism;
  config.window_r = wr;
  config.window_s = ws;
  config.threaded = threaded;
  config.hsj_window_tuples_hint = 16;
  return config;
}

/// Pushes a trace event by event (per-tuple path).
template <typename Joinable>
void FeedPerTuple(Joinable& join, const Trace<TR, TS>& trace) {
  for (const auto& e : trace) {
    if (e.side == StreamSide::kR) {
      join.PushR(e.r, e.ts);
    } else {
      join.PushS(e.s, e.ts);
    }
  }
}

/// Pushes a trace as batch spans: maximal same-side runs (capped at
/// `max_batch`) are handed to the span overloads.
template <typename Joinable>
void FeedBatched(Joinable& join, const Trace<TR, TS>& trace,
                 std::size_t max_batch) {
  std::vector<TR> rs;
  std::vector<TS> ss;
  std::vector<Timestamp> tss;
  std::size_t i = 0;
  while (i < trace.size()) {
    const StreamSide side = trace[i].side;
    rs.clear();
    ss.clear();
    tss.clear();
    while (i < trace.size() && trace[i].side == side &&
           tss.size() < max_batch) {
      if (side == StreamSide::kR) {
        rs.push_back(trace[i].r);
      } else {
        ss.push_back(trace[i].s);
      }
      tss.push_back(trace[i].ts);
      ++i;
    }
    if (side == StreamSide::kR) {
      join.PushR(std::span<const TR>(rs), std::span<const Timestamp>(tss));
    } else {
      join.PushS(std::span<const TS>(ss), std::span<const Timestamp>(tss));
    }
  }
}

/// The per-query oracle: an independent single-query StreamJoiner (Kang)
/// over the same trace and windows.
std::vector<ResultMsg<TR, TS>> OracleFor(const Trace<TR, TS>& trace,
                                         WindowSpec wr, WindowSpec ws,
                                         KeyBand pred) {
  CollectingHandler<TR, TS> handler;
  StreamJoiner<TR, TS, KeyBand> joiner(
      BaseConfig(Algorithm::kKang, wr, ws, /*threaded=*/false), &handler,
      pred);
  FeedPerTuple(joiner, trace);
  joiner.FinishInput();
  return handler.results();
}

// -- Config validation -------------------------------------------------------

TEST(SessionValidation, RejectsNonPositiveParallelism) {
  JoinConfig config;
  config.parallelism = 0;
  EXPECT_THROW(ValidateJoinConfig(config), std::invalid_argument);
  config.parallelism = -3;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("parallelism"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(SessionValidation, RejectsZeroCapacities) {
  JoinConfig config;
  config.channel_capacity = 0;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("channel_capacity"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("got 0"), std::string::npos);
  }
  config.channel_capacity = 1024;
  config.result_capacity = 0;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("result_capacity"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("got 0"), std::string::npos);
  }
}

TEST(SessionValidation, RejectsNegativeHsjWindowTuplesHint) {
  // The hint is optional (0 = not given), but when given it must be a
  // usable window size — a negative value is a usage error for EVERY
  // algorithm, not just HSJ over time windows.
  JoinConfig config;
  config.hsj_window_tuples_hint = -5;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hsj_window_tuples_hint"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-5"), std::string::npos);
  }
  config.hsj_window_tuples_hint = 0;  // "not given" stays valid
  EXPECT_NO_THROW(ValidateJoinConfig(config));
  config.hsj_window_tuples_hint = 1;  // smallest usable hint
  EXPECT_NO_THROW(ValidateJoinConfig(config));
}

TEST(SessionValidation, RejectsTimeWindowHsjWithoutHint) {
  JoinConfig config;
  config.algorithm = Algorithm::kHandshake;
  config.window_r = WindowSpec::Time(1'000'000);
  config.window_s = WindowSpec::Count(128);
  config.hsj_window_tuples_hint = 0;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hsj_window_tuples_hint"),
              std::string::npos);
  }
  // The hint fixes it; count windows never need it.
  config.hsj_window_tuples_hint = 64;
  EXPECT_NO_THROW(ValidateJoinConfig(config));
  config.hsj_window_tuples_hint = 0;
  config.window_r = WindowSpec::Count(128);
  EXPECT_NO_THROW(ValidateJoinConfig(config));
  // LLHJ sizes nothing from the hint — time windows are fine without it.
  config.algorithm = Algorithm::kLowLatency;
  config.window_r = WindowSpec::Time(1'000'000);
  EXPECT_NO_THROW(ValidateJoinConfig(config));
}

TEST(SessionValidation, ConstructorValidates) {
  JoinConfig config;
  config.parallelism = 0;
  EXPECT_THROW((JoinSession<TR, TS, KeyEq>(config)), std::invalid_argument);
  CollectingHandler<TR, TS> handler;
  EXPECT_THROW((StreamJoiner<TR, TS, KeyEq>(config, &handler)),
               std::invalid_argument);
}

TEST(SessionValidation, QuerySetRules) {
  JoinConfig config;
  config.threaded = false;
  JoinSession<TR, TS, KeyEq> session(config);
  // No queries registered: pushing is a usage error.
  EXPECT_THROW(session.PushR(TR{1, 0}, 0), std::logic_error);
  session.AddQuery(KeyEq{}, nullptr);
  session.PushR(TR{1, 0}, 0);
  // The set is frozen once ingestion starts.
  EXPECT_THROW(session.AddQuery(KeyEq{}, nullptr), std::logic_error);
}

// -- Multi-query equivalence -------------------------------------------------

class SessionAlgorithms : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SessionAlgorithms, MultiQueryMatchesIndependentJoinersNonThreaded) {
  TraceConfig tc;
  tc.events = 300;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(171, tc);
  const WindowSpec wr = WindowSpec::Time(50);
  const WindowSpec ws = WindowSpec::Time(50);
  const std::vector<KeyBand> preds = {KeyBand{0}, KeyBand{1}, KeyBand{3}};

  JoinSession<TR, TS, KeyBand> session(
      BaseConfig(GetParam(), wr, ws, /*threaded=*/false));
  std::vector<CollectingHandler<TR, TS>> handlers(preds.size());
  for (std::size_t q = 0; q < preds.size(); ++q) {
    auto handle = session.AddQuery(preds[q], &handlers[q]);
    EXPECT_EQ(handle.id, q);
  }
  FeedPerTuple(session, trace);
  session.FinishInput();
  session.Poll();
  EXPECT_EQ(session.pipeline_anomalies(), 0u);

  for (std::size_t q = 0; q < preds.size(); ++q) {
    auto expected = OracleFor(trace, wr, ws, preds[q]);
    EXPECT_FALSE(expected.empty()) << "weak oracle for query " << q;
    EXPECT_TRUE(SameResultSet(expected, handlers[q].results()))
        << "query " << q << " (band " << preds[q].width << ")";
    EXPECT_EQ(session.results_collected(static_cast<QueryId>(q)),
              handlers[q].results().size());
    for (const auto& m : handlers[q].results()) {
      EXPECT_EQ(m.query, q);
    }
  }
}

TEST_P(SessionAlgorithms, MultiQueryMatchesIndependentJoinersThreaded) {
  TraceConfig tc;
  tc.events = 500;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(172, tc);
  // Count windows well above pipeline buffering (bounded-lag regime).
  const WindowSpec wr = WindowSpec::Count(120);
  const WindowSpec ws = WindowSpec::Count(120);
  const std::vector<KeyBand> preds = {KeyBand{0}, KeyBand{2}};

  JoinSession<TR, TS, KeyBand> session(
      BaseConfig(GetParam(), wr, ws, /*threaded=*/true));
  std::vector<CollectingHandler<TR, TS>> handlers(preds.size());
  for (std::size_t q = 0; q < preds.size(); ++q) {
    session.AddQuery(preds[q], &handlers[q]);
  }
  FeedPerTuple(session, trace);
  session.FinishInput();
  session.Stop();
  EXPECT_EQ(session.pipeline_anomalies(), 0u);

  for (std::size_t q = 0; q < preds.size(); ++q) {
    auto expected = OracleFor(trace, wr, ws, preds[q]);
    EXPECT_TRUE(SameResultSet(expected, handlers[q].results()))
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SessionAlgorithms,
    ::testing::Values(Algorithm::kKang, Algorithm::kCellJoin,
                      Algorithm::kHandshake, Algorithm::kLowLatency),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(ToString(info.param));
    });

// -- Batch push equivalence --------------------------------------------------

class BatchPush : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BatchPush, SpansMatchPerTupleLoopNonThreaded) {
  TraceConfig tc;
  tc.events = 400;
  tc.key_domain = 6;
  tc.r_fraction = 0.55;  // uneven sides => longer same-side runs
  auto trace = MakeRandomTrace(173, tc);
  const WindowSpec wr = WindowSpec::Time(60);
  const WindowSpec ws = WindowSpec::Time(60);

  CollectingHandler<TR, TS> per_tuple;
  {
    StreamJoiner<TR, TS, KeyEq> joiner(
        BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &per_tuple);
    FeedPerTuple(joiner, trace);
    joiner.FinishInput();
    EXPECT_EQ(joiner.pipeline_anomalies(), 0u);
  }

  for (std::size_t max_batch : {1u, 7u, 64u}) {
    CollectingHandler<TR, TS> batched;
    StreamJoiner<TR, TS, KeyEq> joiner(
        BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &batched);
    FeedBatched(joiner, trace, max_batch);
    joiner.FinishInput();
    EXPECT_EQ(joiner.pipeline_anomalies(), 0u);
    EXPECT_TRUE(SameResultSet(per_tuple.results(), batched.results()))
        << "max_batch " << max_batch;
  }
}

TEST_P(BatchPush, SpansMatchPerTupleLoopThreaded) {
  TraceConfig tc;
  tc.events = 600;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(174, tc);
  const WindowSpec wr = WindowSpec::Count(150);
  const WindowSpec ws = WindowSpec::Count(150);

  CollectingHandler<TR, TS> per_tuple;
  {
    StreamJoiner<TR, TS, KeyEq> joiner(
        BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &per_tuple);
    FeedPerTuple(joiner, trace);
    joiner.FinishInput();
  }

  CollectingHandler<TR, TS> batched;
  StreamJoiner<TR, TS, KeyEq> joiner(
      BaseConfig(GetParam(), wr, ws, /*threaded=*/true), &batched);
  FeedBatched(joiner, trace, 32);
  joiner.FinishInput();
  joiner.Stop();
  EXPECT_EQ(joiner.pipeline_anomalies(), 0u);
  EXPECT_TRUE(SameResultSet(per_tuple.results(), batched.results()));
}

INSTANTIATE_TEST_SUITE_P(
    PipelineAlgorithms, BatchPush,
    ::testing::Values(Algorithm::kHandshake, Algorithm::kLowLatency),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(ToString(info.param));
    });

TEST_P(BatchPush, TinyCountWindowsMatchPerTupleLoopNonThreaded) {
  // Regression: count windows below the entry-channel capacity floor (8)
  // force an expiry on nearly every arrival; the batch path must not let
  // the driver run a window ahead of the undrained pipeline (HSJ
  // bounded-lag exactness — the scalar path drains after every push).
  TraceConfig tc;
  tc.events = 500;
  tc.key_domain = 4;
  auto trace = MakeRandomTrace(176, tc);
  for (int64_t window : {2, 4, 6}) {
    const WindowSpec wr = WindowSpec::Count(window);
    const WindowSpec ws = WindowSpec::Count(window);
    CollectingHandler<TR, TS> per_tuple;
    {
      StreamJoiner<TR, TS, KeyEq> joiner(
          BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &per_tuple);
      FeedPerTuple(joiner, trace);
      joiner.FinishInput();
      ASSERT_EQ(joiner.pipeline_anomalies(), 0u) << "window " << window;
    }
    CollectingHandler<TR, TS> batched;
    StreamJoiner<TR, TS, KeyEq> joiner(
        BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &batched);
    FeedBatched(joiner, trace, 64);
    joiner.FinishInput();
    EXPECT_EQ(joiner.pipeline_anomalies(), 0u) << "window " << window;
    EXPECT_TRUE(SameResultSet(per_tuple.results(), batched.results()))
        << "window " << window;
  }
}

TEST(BatchPushApi, MismatchedSpansThrow) {
  JoinConfig config;
  config.threaded = false;
  JoinSession<TR, TS, KeyEq> session(config);
  session.AddQuery(KeyEq{}, nullptr);
  std::vector<TR> rs(3);
  std::vector<Timestamp> tss(2);
  EXPECT_THROW(session.PushR(std::span<const TR>(rs),
                             std::span<const Timestamp>(tss)),
               std::invalid_argument);
}

// -- Routing details ---------------------------------------------------------

TEST(SessionRouting, NullHandlerCountsOnly) {
  JoinConfig config;
  config.threaded = false;
  config.window_r = WindowSpec::Count(16);
  config.window_s = WindowSpec::Count(16);
  JoinSession<TR, TS, KeyEq> session(config);
  CollectingHandler<TR, TS> collected;
  auto q0 = session.AddQuery(KeyEq{}, nullptr);       // count only
  auto q1 = session.AddQuery(KeyEq{}, &collected);    // same predicate
  session.PushR(TR{7, 0}, 0);
  session.PushS(TS{7, 1}, 1);
  session.FinishInput();
  EXPECT_EQ(session.results_collected(q0.id), 1u);
  EXPECT_EQ(session.results_collected(q1.id), 1u);
  ASSERT_EQ(collected.results().size(), 1u);
  EXPECT_EQ(collected.results()[0].query, q1.id);
  EXPECT_EQ(session.results_collected(), 2u);
}

TEST(SessionRouting, PunctuationsBroadcastToAllQueries) {
  TraceConfig tc;
  tc.events = 200;
  tc.key_domain = 4;
  auto trace = MakeRandomTrace(175, tc);
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = 3;
  config.window_r = WindowSpec::Time(60);
  config.window_s = WindowSpec::Time(60);
  config.punctuate = true;
  config.threaded = false;
  JoinSession<TR, TS, KeyBand> session(config);
  CollectingHandler<TR, TS> h0;
  CollectingHandler<TR, TS> h1;
  session.AddQuery(KeyBand{0}, &h0);
  session.AddQuery(KeyBand{2}, &h1);
  for (const auto& e : trace) {
    if (e.side == StreamSide::kR) {
      session.PushR(e.r, e.ts);
    } else {
      session.PushS(e.s, e.ts);
    }
    session.Poll();
  }
  session.FinishInput();
  EXPECT_GT(h0.punctuations().size(), 0u);
  EXPECT_EQ(h0.punctuations(), h1.punctuations());
}

}  // namespace
}  // namespace sjoin
