// Tests for the multi-query, batch-first JoinSession API:
//  * config validation (clear std::invalid_argument on nonsense configs),
//  * query-set rules (register before start, at least one query),
//  * multi-query equivalence: one session with Q predicates produces
//    exactly the union of Q independent StreamJoiners (per-query result
//    sets compared, threaded and non-threaded, all engines),
//  * batch PushR/PushS equivalence with the per-tuple loop,
//  * QueryId routing and punctuation broadcast.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/join_session.hpp"
#include "core/stream_joiner.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyBand;
using test::KeyEq;
using test::MakeRandomTrace;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

JoinConfig BaseConfig(Algorithm algorithm, WindowSpec wr, WindowSpec ws,
                      bool threaded, int parallelism = 3) {
  JoinConfig config;
  config.algorithm = algorithm;
  config.parallelism = parallelism;
  config.window_r = wr;
  config.window_s = ws;
  config.threaded = threaded;
  config.hsj_window_tuples_hint = 16;
  return config;
}

/// Pushes a trace event by event (per-tuple path).
template <typename Joinable>
void FeedPerTuple(Joinable& join, const Trace<TR, TS>& trace) {
  for (const auto& e : trace) {
    if (e.side == StreamSide::kR) {
      join.PushR(e.r, e.ts);
    } else {
      join.PushS(e.s, e.ts);
    }
  }
}

/// Pushes a trace as batch spans: maximal same-side runs (capped at
/// `max_batch`) are handed to the span overloads.
template <typename Joinable>
void FeedBatched(Joinable& join, const Trace<TR, TS>& trace,
                 std::size_t max_batch) {
  std::vector<TR> rs;
  std::vector<TS> ss;
  std::vector<Timestamp> tss;
  std::size_t i = 0;
  while (i < trace.size()) {
    const StreamSide side = trace[i].side;
    rs.clear();
    ss.clear();
    tss.clear();
    while (i < trace.size() && trace[i].side == side &&
           tss.size() < max_batch) {
      if (side == StreamSide::kR) {
        rs.push_back(trace[i].r);
      } else {
        ss.push_back(trace[i].s);
      }
      tss.push_back(trace[i].ts);
      ++i;
    }
    if (side == StreamSide::kR) {
      join.PushR(std::span<const TR>(rs), std::span<const Timestamp>(tss));
    } else {
      join.PushS(std::span<const TS>(ss), std::span<const Timestamp>(tss));
    }
  }
}

/// The per-query oracle: an independent single-query StreamJoiner (Kang)
/// over the same trace and windows.
std::vector<ResultMsg<TR, TS>> OracleFor(const Trace<TR, TS>& trace,
                                         WindowSpec wr, WindowSpec ws,
                                         KeyBand pred) {
  CollectingHandler<TR, TS> handler;
  StreamJoiner<TR, TS, KeyBand> joiner(
      BaseConfig(Algorithm::kKang, wr, ws, /*threaded=*/false), &handler,
      pred);
  FeedPerTuple(joiner, trace);
  joiner.FinishInput();
  return handler.results();
}

// -- Config validation -------------------------------------------------------

TEST(SessionValidation, RejectsNonPositiveParallelism) {
  JoinConfig config;
  config.parallelism = 0;
  EXPECT_THROW(ValidateJoinConfig(config), std::invalid_argument);
  config.parallelism = -3;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("parallelism"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(SessionValidation, RejectsZeroCapacities) {
  JoinConfig config;
  config.channel_capacity = 0;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("channel_capacity"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("got 0"), std::string::npos);
  }
  config.channel_capacity = 1024;
  config.result_capacity = 0;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("result_capacity"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("got 0"), std::string::npos);
  }
}

TEST(SessionValidation, RejectsNegativeHsjWindowTuplesHint) {
  // The hint is optional (0 = not given), but when given it must be a
  // usable window size — a negative value is a usage error for EVERY
  // algorithm, not just HSJ over time windows.
  JoinConfig config;
  config.hsj_window_tuples_hint = -5;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hsj_window_tuples_hint"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-5"), std::string::npos);
  }
  config.hsj_window_tuples_hint = 0;  // "not given" stays valid
  EXPECT_NO_THROW(ValidateJoinConfig(config));
  config.hsj_window_tuples_hint = 1;  // smallest usable hint
  EXPECT_NO_THROW(ValidateJoinConfig(config));
}

TEST(SessionValidation, RejectsTimeWindowHsjWithoutHint) {
  JoinConfig config;
  config.algorithm = Algorithm::kHandshake;
  config.window_r = WindowSpec::Time(1'000'000);
  config.window_s = WindowSpec::Count(128);
  config.hsj_window_tuples_hint = 0;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hsj_window_tuples_hint"),
              std::string::npos);
  }
  // The hint fixes it; count windows never need it.
  config.hsj_window_tuples_hint = 64;
  EXPECT_NO_THROW(ValidateJoinConfig(config));
  config.hsj_window_tuples_hint = 0;
  config.window_r = WindowSpec::Count(128);
  EXPECT_NO_THROW(ValidateJoinConfig(config));
  // LLHJ sizes nothing from the hint — time windows are fine without it.
  config.algorithm = Algorithm::kLowLatency;
  config.window_r = WindowSpec::Time(1'000'000);
  EXPECT_NO_THROW(ValidateJoinConfig(config));
}

TEST(SessionValidation, RejectsNegativeLatencyBudget) {
  JoinConfig config;
  config.latency_budget_us = -250;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("latency_budget_us"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-250"), std::string::npos)
        << "error must name the offending value: " << e.what();
  }
  config.latency_budget_us = 0;  // "disabled" stays valid
  EXPECT_NO_THROW(ValidateJoinConfig(config));
}

TEST(SessionValidation, RejectsSheddingPolicyWithoutBudget) {
  // A policy with nothing to shed against would silently never shed —
  // reject the combination and name both knobs.
  JoinConfig config;
  config.overload_policy = OverloadPolicy::kDropNewest;
  config.latency_budget_us = 0;
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("drop_newest"), std::string::npos)
        << "error must name the offending policy: " << e.what();
    EXPECT_NE(std::string(e.what()).find("latency_budget_us"),
              std::string::npos);
  }
  // A budget makes every policy valid; so does dropping the policy.
  config.latency_budget_us = 1000;
  for (OverloadPolicy ok :
       {OverloadPolicy::kNone, OverloadPolicy::kDropNewest,
        OverloadPolicy::kDropOldest, OverloadPolicy::kSample}) {
    config.overload_policy = ok;
    EXPECT_NO_THROW(ValidateJoinConfig(config));
  }
  config.latency_budget_us = 0;
  config.overload_policy = OverloadPolicy::kNone;
  EXPECT_NO_THROW(ValidateJoinConfig(config));
}

TEST(SessionValidation, RejectsOutOfRangePlacement) {
  JoinConfig config;
  config.placement = static_cast<PlacementPolicy>(17);  // not a policy
  try {
    ValidateJoinConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("placement"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("17"), std::string::npos)
        << "error must name the offending value: " << e.what();
  }
  for (PlacementPolicy ok :
       {PlacementPolicy::kAuto, PlacementPolicy::kCompact,
        PlacementPolicy::kScatter, PlacementPolicy::kNone}) {
    config.placement = ok;
    EXPECT_NO_THROW(ValidateJoinConfig(config));
  }
}

// All four placement policies over an injected synthetic multi-node
// topology produce the exact per-query oracle result sets: placement moves
// threads and channel memory, never results. The injected topology also
// proves the session uses the configured hardware model instead of
// re-detecting (the config's topology reaches the pipeline's channel
// construction through the session's cached plan).
TEST(SessionPlacement, PoliciesProduceIdenticalResultsOnSyntheticTopology) {
  TraceConfig tc;
  tc.events = 400;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(191, tc);
  const WindowSpec wr = WindowSpec::Count(100);
  const WindowSpec ws = WindowSpec::Count(100);
  const std::vector<KeyBand> preds = {KeyBand{0}, KeyBand{2}};

  Topology::SyntheticShape shape;
  shape.nodes_per_package = 2;
  shape.cores_per_node = 3;
  auto topo = std::make_shared<const Topology>(Topology::Synthetic(shape));

  for (PlacementPolicy policy :
       {PlacementPolicy::kAuto, PlacementPolicy::kCompact,
        PlacementPolicy::kScatter, PlacementPolicy::kNone}) {
    JoinConfig config =
        BaseConfig(Algorithm::kLowLatency, wr, ws, /*threaded=*/true);
    config.placement = policy;
    config.topology = topo;
    JoinSession<TR, TS, KeyBand> session(config);
    std::vector<CollectingHandler<TR, TS>> handlers(preds.size());
    for (std::size_t q = 0; q < preds.size(); ++q) {
      session.AddQuery(preds[q], &handlers[q]);
    }
    FeedBatched(session, trace, 16);
    session.FinishInput();
    session.Stop();
    EXPECT_EQ(session.pipeline_anomalies(), 0u)
        << "policy " << ToString(policy);

    for (std::size_t q = 0; q < preds.size(); ++q) {
      auto expected = OracleFor(trace, wr, ws, preds[q]);
      EXPECT_TRUE(SameResultSet(expected, handlers[q].results()))
          << "policy " << ToString(policy) << " query " << q;
    }
  }
}

TEST(SessionValidation, ConstructorValidates) {
  JoinConfig config;
  config.parallelism = 0;
  EXPECT_THROW((JoinSession<TR, TS, KeyEq>(config)), std::invalid_argument);
  CollectingHandler<TR, TS> handler;
  EXPECT_THROW((StreamJoiner<TR, TS, KeyEq>(config, &handler)),
               std::invalid_argument);
}

TEST(SessionValidation, QuerySetRules) {
  JoinConfig config;
  config.threaded = false;
  config.window_r = WindowSpec::Count(16);
  config.window_s = WindowSpec::Count(16);
  JoinSession<TR, TS, KeyEq> session(config);
  // No queries registered: pushing is a usage error, and the message names
  // the session state it observed (ValidateJoinConfig convention).
  try {
    session.PushR(TR{1, 0}, 0);
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0 live queries"), std::string::npos) << what;
    EXPECT_NE(what.find("not started"), std::string::npos) << what;
    EXPECT_NE(what.find("0 registered"), std::string::npos) << what;
  }
  auto q0 = session.AddQuery(KeyEq{}, nullptr);
  session.PushR(TR{1, 0}, 0);
  // Live lifecycle: AddQuery after ingestion stages a new epoch instead of
  // throwing (the PR 2 freeze rule is gone).
  EXPECT_EQ(session.current_epoch(), 0u);
  auto q1 = session.AddQuery(KeyEq{}, nullptr);
  EXPECT_EQ(session.current_epoch(), 1u);
  session.PushS(TS{1, 1}, 1);
  session.FinishInput();
  // Both queries see the (r, s) pair: its later input arrived in epoch 1,
  // where both are members.
  EXPECT_EQ(session.results_collected(q0.id), 1u);
  EXPECT_EQ(session.results_collected(q1.id), 1u);
  // Removing an unknown/already-removed handle reports failure.
  EXPECT_TRUE(session.RemoveQuery(q1));
  EXPECT_FALSE(session.RemoveQuery(q1));
  EXPECT_FALSE(session.RemoveQuery({99}));
}

// -- Multi-query equivalence -------------------------------------------------

class SessionAlgorithms : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SessionAlgorithms, MultiQueryMatchesIndependentJoinersNonThreaded) {
  TraceConfig tc;
  tc.events = 300;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(171, tc);
  const WindowSpec wr = WindowSpec::Time(50);
  const WindowSpec ws = WindowSpec::Time(50);
  const std::vector<KeyBand> preds = {KeyBand{0}, KeyBand{1}, KeyBand{3}};

  JoinSession<TR, TS, KeyBand> session(
      BaseConfig(GetParam(), wr, ws, /*threaded=*/false));
  std::vector<CollectingHandler<TR, TS>> handlers(preds.size());
  for (std::size_t q = 0; q < preds.size(); ++q) {
    auto handle = session.AddQuery(preds[q], &handlers[q]);
    EXPECT_EQ(handle.id, q);
  }
  FeedPerTuple(session, trace);
  session.FinishInput();
  session.Poll();
  EXPECT_EQ(session.pipeline_anomalies(), 0u);

  for (std::size_t q = 0; q < preds.size(); ++q) {
    auto expected = OracleFor(trace, wr, ws, preds[q]);
    EXPECT_FALSE(expected.empty()) << "weak oracle for query " << q;
    EXPECT_TRUE(SameResultSet(expected, handlers[q].results()))
        << "query " << q << " (band " << preds[q].width << ")";
    EXPECT_EQ(session.results_collected(static_cast<QueryId>(q)),
              handlers[q].results().size());
    for (const auto& m : handlers[q].results()) {
      EXPECT_EQ(m.query, q);
    }
  }
}

TEST_P(SessionAlgorithms, MultiQueryMatchesIndependentJoinersThreaded) {
  TraceConfig tc;
  tc.events = 500;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(172, tc);
  // Count windows well above pipeline buffering (bounded-lag regime).
  const WindowSpec wr = WindowSpec::Count(120);
  const WindowSpec ws = WindowSpec::Count(120);
  const std::vector<KeyBand> preds = {KeyBand{0}, KeyBand{2}};

  JoinSession<TR, TS, KeyBand> session(
      BaseConfig(GetParam(), wr, ws, /*threaded=*/true));
  std::vector<CollectingHandler<TR, TS>> handlers(preds.size());
  for (std::size_t q = 0; q < preds.size(); ++q) {
    session.AddQuery(preds[q], &handlers[q]);
  }
  FeedPerTuple(session, trace);
  session.FinishInput();
  session.Stop();
  EXPECT_EQ(session.pipeline_anomalies(), 0u);

  for (std::size_t q = 0; q < preds.size(); ++q) {
    auto expected = OracleFor(trace, wr, ws, preds[q]);
    EXPECT_TRUE(SameResultSet(expected, handlers[q].results()))
        << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SessionAlgorithms,
    ::testing::Values(Algorithm::kKang, Algorithm::kCellJoin,
                      Algorithm::kHandshake, Algorithm::kLowLatency),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(ToString(info.param));
    });

// -- Batch push equivalence --------------------------------------------------

class BatchPush : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BatchPush, SpansMatchPerTupleLoopNonThreaded) {
  TraceConfig tc;
  tc.events = 400;
  tc.key_domain = 6;
  tc.r_fraction = 0.55;  // uneven sides => longer same-side runs
  auto trace = MakeRandomTrace(173, tc);
  const WindowSpec wr = WindowSpec::Time(60);
  const WindowSpec ws = WindowSpec::Time(60);

  CollectingHandler<TR, TS> per_tuple;
  {
    StreamJoiner<TR, TS, KeyEq> joiner(
        BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &per_tuple);
    FeedPerTuple(joiner, trace);
    joiner.FinishInput();
    EXPECT_EQ(joiner.pipeline_anomalies(), 0u);
  }

  for (std::size_t max_batch : {1u, 7u, 64u}) {
    CollectingHandler<TR, TS> batched;
    StreamJoiner<TR, TS, KeyEq> joiner(
        BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &batched);
    FeedBatched(joiner, trace, max_batch);
    joiner.FinishInput();
    EXPECT_EQ(joiner.pipeline_anomalies(), 0u);
    EXPECT_TRUE(SameResultSet(per_tuple.results(), batched.results()))
        << "max_batch " << max_batch;
  }
}

TEST_P(BatchPush, SpansMatchPerTupleLoopThreaded) {
  TraceConfig tc;
  tc.events = 600;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(174, tc);
  const WindowSpec wr = WindowSpec::Count(150);
  const WindowSpec ws = WindowSpec::Count(150);

  CollectingHandler<TR, TS> per_tuple;
  {
    StreamJoiner<TR, TS, KeyEq> joiner(
        BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &per_tuple);
    FeedPerTuple(joiner, trace);
    joiner.FinishInput();
  }

  CollectingHandler<TR, TS> batched;
  StreamJoiner<TR, TS, KeyEq> joiner(
      BaseConfig(GetParam(), wr, ws, /*threaded=*/true), &batched);
  FeedBatched(joiner, trace, 32);
  joiner.FinishInput();
  joiner.Stop();
  EXPECT_EQ(joiner.pipeline_anomalies(), 0u);
  EXPECT_TRUE(SameResultSet(per_tuple.results(), batched.results()));
}

INSTANTIATE_TEST_SUITE_P(
    PipelineAlgorithms, BatchPush,
    ::testing::Values(Algorithm::kHandshake, Algorithm::kLowLatency),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(ToString(info.param));
    });

TEST_P(BatchPush, TinyCountWindowsMatchPerTupleLoopNonThreaded) {
  // Regression: count windows below the entry-channel capacity floor (8)
  // force an expiry on nearly every arrival; the batch path must not let
  // the driver run a window ahead of the undrained pipeline (HSJ
  // bounded-lag exactness — the scalar path drains after every push).
  TraceConfig tc;
  tc.events = 500;
  tc.key_domain = 4;
  auto trace = MakeRandomTrace(176, tc);
  for (int64_t window : {2, 4, 6}) {
    const WindowSpec wr = WindowSpec::Count(window);
    const WindowSpec ws = WindowSpec::Count(window);
    CollectingHandler<TR, TS> per_tuple;
    {
      StreamJoiner<TR, TS, KeyEq> joiner(
          BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &per_tuple);
      FeedPerTuple(joiner, trace);
      joiner.FinishInput();
      ASSERT_EQ(joiner.pipeline_anomalies(), 0u) << "window " << window;
    }
    CollectingHandler<TR, TS> batched;
    StreamJoiner<TR, TS, KeyEq> joiner(
        BaseConfig(GetParam(), wr, ws, /*threaded=*/false), &batched);
    FeedBatched(joiner, trace, 64);
    joiner.FinishInput();
    EXPECT_EQ(joiner.pipeline_anomalies(), 0u) << "window " << window;
    EXPECT_TRUE(SameResultSet(per_tuple.results(), batched.results()))
        << "window " << window;
  }
}

TEST(BatchPushApi, MismatchedSpansThrow) {
  JoinConfig config;
  config.threaded = false;
  JoinSession<TR, TS, KeyEq> session(config);
  session.AddQuery(KeyEq{}, nullptr);
  std::vector<TR> rs(3);
  std::vector<Timestamp> tss(2);
  EXPECT_THROW(session.PushR(std::span<const TR>(rs),
                             std::span<const Timestamp>(tss)),
               std::invalid_argument);
}

// -- Routing details ---------------------------------------------------------

TEST(SessionRouting, NullHandlerCountsOnly) {
  JoinConfig config;
  config.threaded = false;
  config.window_r = WindowSpec::Count(16);
  config.window_s = WindowSpec::Count(16);
  JoinSession<TR, TS, KeyEq> session(config);
  CollectingHandler<TR, TS> collected;
  auto q0 = session.AddQuery(KeyEq{}, nullptr);       // count only
  auto q1 = session.AddQuery(KeyEq{}, &collected);    // same predicate
  session.PushR(TR{7, 0}, 0);
  session.PushS(TS{7, 1}, 1);
  session.FinishInput();
  EXPECT_EQ(session.results_collected(q0.id), 1u);
  EXPECT_EQ(session.results_collected(q1.id), 1u);
  ASSERT_EQ(collected.results().size(), 1u);
  EXPECT_EQ(collected.results()[0].query, q1.id);
  EXPECT_EQ(session.results_collected(), 2u);
}

// -- Live query lifecycle (epoch-tagged query sets) --------------------------
//
// Oracle model: a churn scenario is a list of (position, action) mutations
// over a trace; each mutation installs one epoch, so the epoch active at
// trace position i is the number of mutations at positions <= i. A result
// is attributed to the epoch of its LATER input (that is when the pair is
// evaluated), so the expected result set of query q is: all pairs matching
// q's predicate whose later input lies in an epoch where q was live. The
// oracle replays the full trace through a scalar Kang joiner per query,
// stamping each result with the replay epoch, then filters by q's live
// interval — a frozen-set replay per epoch, exactly the acceptance model.

struct ChurnAction {
  std::size_t pos;        ///< applied before trace[pos]
  int add_width = -1;     ///< >= 0: AddQuery(KeyBand{add_width})
  int remove_query = -1;  ///< >= 0: RemoveQuery(global id)
};

struct ChurnScenario {
  std::vector<KeyBand> initial;      ///< epoch-0 queries
  std::vector<ChurnAction> actions;  ///< sorted by pos; one epoch each
};

/// Live interval [first_epoch, last_epoch] of query `q` under `scenario`
/// (global ids: initial queries first, then adds in action order).
std::pair<Epoch, Epoch> LiveInterval(const ChurnScenario& scenario,
                                     QueryId q) {
  Epoch first = 0;
  Epoch last = static_cast<Epoch>(scenario.actions.size());
  QueryId next_added = static_cast<QueryId>(scenario.initial.size());
  for (std::size_t a = 0; a < scenario.actions.size(); ++a) {
    const Epoch installed = static_cast<Epoch>(a + 1);
    if (scenario.actions[a].add_width >= 0) {
      if (next_added == q) first = installed;
      ++next_added;
    }
    if (scenario.actions[a].remove_query == static_cast<int>(q)) {
      last = installed - 1;  // member up to and including the prior epoch
    }
  }
  return {first, last};
}

KeyBand PredOf(const ChurnScenario& scenario, QueryId q) {
  if (q < scenario.initial.size()) return scenario.initial[q];
  QueryId next = static_cast<QueryId>(scenario.initial.size());
  for (const ChurnAction& a : scenario.actions) {
    if (a.add_width < 0) continue;
    if (next == q) return KeyBand{a.add_width};
    ++next;
  }
  ADD_FAILURE() << "unknown query " << q;
  return KeyBand{0};
}

std::size_t TotalQueries(const ChurnScenario& scenario) {
  std::size_t n = scenario.initial.size();
  for (const ChurnAction& a : scenario.actions) n += a.add_width >= 0 ? 1 : 0;
  return n;
}

/// Epoch-stamping collector for the oracle replay: every result gets the
/// epoch active at the position of the event that emitted it.
class EpochStampingHandler : public OutputHandler<TR, TS> {
 public:
  explicit EpochStampingHandler(const Epoch* current) : current_(current) {}
  void OnResult(const ResultMsg<TR, TS>& m) override {
    ResultMsg<TR, TS> stamped = m;
    stamped.epoch = *current_;
    results_.push_back(stamped);
  }
  const std::vector<ResultMsg<TR, TS>>& results() const { return results_; }

 private:
  const Epoch* current_;
  std::vector<ResultMsg<TR, TS>> results_;
};

/// Expected results of query `q`: frozen-set Kang replay of the whole
/// trace with q's predicate, epoch-stamped, filtered to q's live interval.
std::vector<ResultMsg<TR, TS>> EpochOracleFor(const ChurnScenario& scenario,
                                              const Trace<TR, TS>& trace,
                                              WindowSpec wr, WindowSpec ws,
                                              QueryId q) {
  Epoch current = 0;
  EpochStampingHandler handler(&current);
  StreamJoiner<TR, TS, KeyBand> joiner(
      BaseConfig(Algorithm::kKang, wr, ws, /*threaded=*/false), &handler,
      PredOf(scenario, q));
  std::size_t next_action = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    while (next_action < scenario.actions.size() &&
           scenario.actions[next_action].pos == i) {
      ++current;
      ++next_action;
    }
    if (trace[i].side == StreamSide::kR) {
      joiner.PushR(trace[i].r, trace[i].ts);
    } else {
      joiner.PushS(trace[i].s, trace[i].ts);
    }
  }
  joiner.FinishInput();
  const auto [first, last] = LiveInterval(scenario, q);
  std::vector<ResultMsg<TR, TS>> expected;
  for (const auto& m : handler.results()) {
    if (m.epoch >= first && m.epoch <= last) expected.push_back(m);
  }
  return expected;
}

/// Multiset equality over (r_seq, s_seq, epoch) — attribution included.
::testing::AssertionResult SameEpochResultSet(
    const std::vector<ResultMsg<TR, TS>>& expected,
    const std::vector<ResultMsg<TR, TS>>& actual) {
  std::map<std::tuple<Seq, Seq, Epoch>, int> want, got;
  for (const auto& m : expected) want[{m.r_seq, m.s_seq, m.epoch}]++;
  for (const auto& m : actual) got[{m.r_seq, m.s_seq, m.epoch}]++;
  if (want == got) return ::testing::AssertionSuccess();
  std::ostringstream oss;
  for (const auto& [k, n] : want) {
    auto it = got.find(k);
    if (it == got.end() || it->second != n) {
      oss << "want (r" << std::get<0>(k) << ", s" << std::get<1>(k)
          << ", e" << std::get<2>(k) << ") x" << n << " got "
          << (it == got.end() ? 0 : it->second) << "\n";
    }
  }
  for (const auto& [k, n] : got) {
    if (want.find(k) == want.end()) {
      oss << "extra (r" << std::get<0>(k) << ", s" << std::get<1>(k)
          << ", e" << std::get<2>(k) << ") x" << n << "\n";
    }
  }
  oss << "expected " << expected.size() << " results, got " << actual.size();
  return ::testing::AssertionFailure() << oss.str();
}

struct ChurnRun {
  std::vector<std::vector<ResultMsg<TR, TS>>> per_query;
  std::vector<QueryId> retired;
  uint64_t anomalies = 0;
  Epoch final_epoch = 0;
  Epoch drained_epoch = 0;
};

/// Runs a churn scenario on a live session (any engine, threaded or not).
ChurnRun RunChurnScenario(const ChurnScenario& scenario,
                          const Trace<TR, TS>& trace, WindowSpec wr,
                          WindowSpec ws, Algorithm algorithm, bool threaded,
                          int parallelism = 3) {
  JoinSession<TR, TS, KeyBand> session(
      BaseConfig(algorithm, wr, ws, threaded, parallelism));
  const std::size_t total = TotalQueries(scenario);
  std::vector<std::unique_ptr<CollectingHandler<TR, TS>>> handlers;
  std::vector<JoinSession<TR, TS, KeyBand>::QueryHandle> handles;
  for (std::size_t q = 0; q < scenario.initial.size(); ++q) {
    handlers.push_back(std::make_unique<CollectingHandler<TR, TS>>());
    handles.push_back(
        session.AddQuery(scenario.initial[q], handlers.back().get()));
  }
  std::size_t next_action = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    while (next_action < scenario.actions.size() &&
           scenario.actions[next_action].pos == i) {
      const ChurnAction& action = scenario.actions[next_action];
      if (action.add_width >= 0) {
        handlers.push_back(std::make_unique<CollectingHandler<TR, TS>>());
        handles.push_back(session.AddQuery(KeyBand{action.add_width},
                                           handlers.back().get()));
      }
      if (action.remove_query >= 0) {
        EXPECT_TRUE(session.RemoveQuery(
            handles[static_cast<std::size_t>(action.remove_query)]));
      }
      ++next_action;
    }
    if (trace[i].side == StreamSide::kR) {
      session.PushR(trace[i].r, trace[i].ts);
    } else {
      session.PushS(trace[i].s, trace[i].ts);
    }
  }
  session.FinishInput();
  session.Poll();
  session.Stop();

  ChurnRun run;
  run.anomalies = session.pipeline_anomalies();
  run.final_epoch = session.current_epoch();
  run.drained_epoch = session.drained_epoch();
  EXPECT_EQ(handlers.size(), total);
  for (std::size_t q = 0; q < total; ++q) {
    run.per_query.push_back(handlers[q]->results());
    for (QueryId r : handlers[q]->retired_queries()) run.retired.push_back(r);
  }
  return run;
}

void CheckChurnAgainstOracle(const ChurnScenario& scenario,
                             const Trace<TR, TS>& trace, WindowSpec wr,
                             WindowSpec ws, const ChurnRun& run) {
  EXPECT_EQ(run.anomalies, 0u);
  EXPECT_EQ(run.final_epoch, scenario.actions.size());
  for (QueryId q = 0; q < run.per_query.size(); ++q) {
    auto expected = EpochOracleFor(scenario, trace, wr, ws, q);
    EXPECT_TRUE(SameEpochResultSet(expected, run.per_query[q]))
        << "query " << q;
    for (const auto& m : run.per_query[q]) {
      EXPECT_EQ(m.query, q) << "misrouted result";
    }
  }
}

class SessionChurn : public ::testing::TestWithParam<Algorithm> {};

// (a) Results straddling an epoch install are attributed to the correct
// set — deterministic non-threaded run, exact (r_seq, s_seq, epoch)
// multiset against the per-epoch frozen-set oracle.
TEST_P(SessionChurn, StraddlingResultsAttributedToCorrectEpochNonThreaded) {
  TraceConfig tc;
  tc.events = 400;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(181, tc);
  const WindowSpec wr = WindowSpec::Time(50);
  const WindowSpec ws = WindowSpec::Time(50);
  ChurnScenario scenario;
  scenario.initial = {KeyBand{0}, KeyBand{2}};
  scenario.actions = {
      {100, /*add_width=*/1, /*remove_query=*/-1},  // epoch 1: add q2
      {200, /*add_width=*/-1, /*remove_query=*/1},  // epoch 2: remove q1
      {300, /*add_width=*/3, /*remove_query=*/-1},  // epoch 3: add q3
  };
  const ChurnRun run = RunChurnScenario(scenario, trace, wr, ws, GetParam(),
                                        /*threaded=*/false);
  CheckChurnAgainstOracle(scenario, trace, wr, ws, run);
  // The removed query received its final punctuation and nothing after it.
  EXPECT_NE(std::find(run.retired.begin(), run.retired.end(), QueryId{1}),
            run.retired.end())
      << "removed query was never retired";
}

// (b) Add/remove under the THREADED executor matches the scalar
// single-epoch oracle replay, on all four engines.
TEST_P(SessionChurn, ChurnUnderThreadedExecutorMatchesOracle) {
  TraceConfig tc;
  tc.events = 600;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(182, tc);
  // Count windows well above pipeline buffering (bounded-lag regime).
  const WindowSpec wr = WindowSpec::Count(120);
  const WindowSpec ws = WindowSpec::Count(120);
  ChurnScenario scenario;
  scenario.initial = {KeyBand{0}, KeyBand{2}};
  scenario.actions = {
      {150, 1, -1},   // epoch 1: add q2
      {300, -1, 0},   // epoch 2: remove q0
      {450, 4, -1},   // epoch 3: add q3
  };
  const ChurnRun run = RunChurnScenario(scenario, trace, wr, ws, GetParam(),
                                        /*threaded=*/true);
  CheckChurnAgainstOracle(scenario, trace, wr, ws, run);
  EXPECT_NE(std::find(run.retired.begin(), run.retired.end(), QueryId{0}),
            run.retired.end())
      << "removed query was never retired";
  EXPECT_GE(run.drained_epoch, 2u)
      << "epoch with the removal never reported drained";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SessionChurn,
    ::testing::Values(Algorithm::kKang, Algorithm::kCellJoin,
                      Algorithm::kHandshake, Algorithm::kLowLatency),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return std::string(ToString(info.param));
    });

// (c) Forced-scalar and the host's best SIMD level agree across an epoch
// switch: the fused-scan path is re-pointed at each epoch's predicate
// lanes without re-freezing, and both dispatch levels emit the identical
// (r_seq, s_seq, epoch) multiset.
TEST(SessionChurn, ScalarAndSimdAgreeAcrossEpochSwitch) {
  TraceConfig tc;
  tc.events = 500;
  tc.key_domain = 8;
  auto trace = MakeRandomTrace(183, tc);
  const WindowSpec wr = WindowSpec::Time(60);
  const WindowSpec ws = WindowSpec::Time(60);
  ChurnScenario scenario;
  scenario.initial = {KeyBand{1}};
  scenario.actions = {
      {120, 2, -1},   // epoch 1: add
      {320, -1, 0},   // epoch 2: remove the original query
  };
  for (Algorithm algorithm :
       {Algorithm::kHandshake, Algorithm::kLowLatency}) {
    const SimdLevel best = OverrideSimdLevel(DetectedSimdLevel());
    const ChurnRun simd = RunChurnScenario(scenario, trace, wr, ws, algorithm,
                                           /*threaded=*/false);
    OverrideSimdLevel(SimdLevel::kScalar);
    const ChurnRun scalar = RunChurnScenario(scenario, trace, wr, ws,
                                             algorithm, /*threaded=*/false);
    ClearSimdLevelOverride();
    ASSERT_EQ(simd.per_query.size(), scalar.per_query.size());
    for (std::size_t q = 0; q < simd.per_query.size(); ++q) {
      EXPECT_TRUE(SameEpochResultSet(scalar.per_query[q], simd.per_query[q]))
          << ToString(algorithm) << " level " << static_cast<int>(best)
          << " vs scalar, query " << q;
    }
    CheckChurnAgainstOracle(scenario, trace, wr, ws, scalar);
  }
}

TEST(SessionRouting, PunctuationsBroadcastToAllQueries) {
  TraceConfig tc;
  tc.events = 200;
  tc.key_domain = 4;
  auto trace = MakeRandomTrace(175, tc);
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = 3;
  config.window_r = WindowSpec::Time(60);
  config.window_s = WindowSpec::Time(60);
  config.punctuate = true;
  config.threaded = false;
  JoinSession<TR, TS, KeyBand> session(config);
  CollectingHandler<TR, TS> h0;
  CollectingHandler<TR, TS> h1;
  session.AddQuery(KeyBand{0}, &h0);
  session.AddQuery(KeyBand{2}, &h1);
  for (const auto& e : trace) {
    if (e.side == StreamSide::kR) {
      session.PushR(e.r, e.ts);
    } else {
      session.PushS(e.s, e.ts);
    }
    session.Poll();
  }
  session.FinishInput();
  EXPECT_GT(h0.punctuations().size(), 0u);
  EXPECT_EQ(h0.punctuations(), h1.punctuations());
}

}  // namespace
}  // namespace sjoin
