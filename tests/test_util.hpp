// Shared test machinery: tiny tuple schemas, predicates, random trace
// generation, pipeline run helpers (sequential, deterministic), and
// multiset comparison of result sets against the Kang oracle with
// duplicate/miss diagnostics.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/kang_join.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "hsj/hsj_pipeline.hpp"
#include "llhj/llhj_pipeline.hpp"
#include "runtime/executor.hpp"
#include "stream/collector.hpp"
#include "stream/feeder.hpp"
#include "stream/handlers.hpp"
#include "stream/script.hpp"
#include "stream/source.hpp"
#include "stream/trace.hpp"
#include "stream/window.hpp"

namespace sjoin::test {

/// Minimal R-side tuple: a join key plus an identity payload.
struct TR {
  int32_t key = 0;
  int32_t id = 0;
};

/// Minimal S-side tuple.
struct TS {
  int32_t key = 0;
  int32_t id = 0;
};

/// Equi predicate on key.
struct KeyEq {
  bool operator()(const TR& r, const TS& s) const { return r.key == s.key; }
};

/// Band predicate |r.key - s.key| <= width.
struct KeyBand {
  int32_t width = 1;
  bool operator()(const TR& r, const TS& s) const {
    return r.key >= s.key - width && r.key <= s.key + width;
  }
};

struct TRKey {
  int64_t operator()(const TR& r) const { return r.key; }
};
struct TSKey {
  int64_t operator()(const TS& s) const { return s.key; }
};

}  // namespace sjoin::test

// SIMD probe mappings (common/simd.hpp) for the test schema: the pipeline
// tests thereby run the packed-compare scan path end to end — and the CI
// forced-scalar leg (SJOIN_FORCE_SCALAR=1) re-runs the very same tests on
// the scalar fallback, pinning bit-identical results across dispatch
// levels. Int key only: no float lane.
namespace sjoin {

template <>
struct SimdEntryLanes<test::TR> {
  static constexpr bool kEnabled = true;
  static constexpr bool kHasF32 = false;
  static int32_t K0(const test::TR& r) { return r.key; }
};

template <>
struct SimdEntryLanes<test::TS> {
  static constexpr bool kEnabled = true;
  static constexpr bool kHasF32 = false;
  static int32_t K0(const test::TS& s) { return s.key; }
};

template <>
struct SimdProbeTraits<test::KeyBand, test::TR, test::TS> {
  static constexpr bool kEnabled = true;
  static constexpr SimdPredShape kShape = SimdPredShape::kBandEntry;
  static constexpr bool kUseF32 = false;
  static int32_t Band0(const test::KeyBand& p) { return p.width; }
  static int32_t P0(const test::TR& r) { return r.key; }
};

template <>
struct SimdProbeTraits<test::KeyBand, test::TS, test::TR> {
  static constexpr bool kEnabled = true;
  static constexpr SimdPredShape kShape = SimdPredShape::kBandProbe;
  static constexpr bool kUseF32 = false;
  static int32_t Lo0(const test::KeyBand& p, const test::TS& s) {
    return s.key - p.width;
  }
  static int32_t Hi0(const test::KeyBand& p, const test::TS& s) {
    return s.key + p.width;
  }
};

template <>
struct SimdProbeTraits<test::KeyEq, test::TR, test::TS> {
  static constexpr bool kEnabled = true;
  static constexpr SimdPredShape kShape = SimdPredShape::kEqui;
  static int32_t Key(const test::KeyEq&, const test::TR& r) { return r.key; }
};

template <>
struct SimdProbeTraits<test::KeyEq, test::TS, test::TR> {
  static constexpr bool kEnabled = true;
  static constexpr SimdPredShape kShape = SimdPredShape::kEqui;
  static int32_t Key(const test::KeyEq&, const test::TS& s) { return s.key; }
};

}  // namespace sjoin

namespace sjoin::test {

/// Random trace: alternating-ish arrivals with configurable key domain and
/// timestamp gaps (gap 0 produces runs of equal timestamps — the tie cases).
struct TraceConfig {
  std::size_t events = 200;
  int32_t key_domain = 8;      ///< small domain => many matches
  int64_t max_gap_us = 3;      ///< timestamp gap drawn from [0, max_gap_us]
  double r_fraction = 0.5;     ///< probability an event is an R arrival
};

inline Trace<TR, TS> MakeRandomTrace(uint64_t seed, const TraceConfig& config) {
  Rng rng(seed);
  Trace<TR, TS> trace;
  trace.reserve(config.events);
  Timestamp ts = 0;
  int32_t next_id = 0;
  for (std::size_t i = 0; i < config.events; ++i) {
    ts += rng.UniformInt(0, config.max_gap_us);
    const int32_t key =
        static_cast<int32_t>(rng.UniformInt(1, config.key_domain));
    if (rng.UniformDouble() < config.r_fraction) {
      trace.push_back(ArriveR<TR, TS>(ts, TR{key, next_id++}));
    } else {
      trace.push_back(ArriveS<TR, TS>(ts, TS{key, next_id++}));
    }
  }
  return trace;
}

/// A result identified by the (r_seq, s_seq) pair.
using PairKey = std::pair<Seq, Seq>;

template <typename R, typename S>
std::map<PairKey, int> PairMultiset(const std::vector<ResultMsg<R, S>>& rs) {
  std::map<PairKey, int> out;
  for (const auto& m : rs) out[{m.r_seq, m.s_seq}]++;
  return out;
}

/// Multiset equality with readable diagnostics (misses, duplicates, extras).
template <typename R, typename S>
::testing::AssertionResult SameResultSet(
    const std::vector<ResultMsg<R, S>>& expected,
    const std::vector<ResultMsg<R, S>>& actual) {
  const auto want = PairMultiset(expected);
  const auto got = PairMultiset(actual);
  std::ostringstream oss;
  bool ok = true;
  for (const auto& [pair, n] : want) {
    auto it = got.find(pair);
    const int have = it == got.end() ? 0 : it->second;
    if (have == 0) {
      oss << "MISSING (r" << pair.first << ", s" << pair.second << ")\n";
      ok = false;
    } else if (have != n) {
      oss << "COUNT (r" << pair.first << ", s" << pair.second << "): want "
          << n << " got " << have << "\n";
      ok = false;
    }
  }
  for (const auto& [pair, n] : got) {
    if (n > 1) {
      oss << "DUPLICATE x" << n << " (r" << pair.first << ", s" << pair.second
          << ")\n";
      ok = false;
    }
    if (want.find(pair) == want.end()) {
      oss << "EXTRA (r" << pair.first << ", s" << pair.second << ")\n";
      ok = false;
    }
  }
  if (ok) return ::testing::AssertionSuccess();
  oss << "expected " << expected.size() << " results, got " << actual.size();
  return ::testing::AssertionFailure() << oss.str();
}

/// Runs a script through an LLHJ pipeline on the sequential executor until
/// quiescent. Returns collected results; asserts zero protocol anomalies.
template <typename Pred, typename RStore = VectorStore<TR>,
          typename SStore = VectorStore<TS>>
std::vector<ResultMsg<TR, TS>> RunLlhjSequential(
    const DriverScript<TR, TS>& script,
    typename LlhjPipeline<TR, TS, Pred, RStore, SStore>::Options options,
    Pred pred = Pred{}, int feeder_batch = 1) {
  using Pipeline = LlhjPipeline<TR, TS, Pred, RStore, SStore>;
  Pipeline pipeline(options, pred);

  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options feeder_options;
  feeder_options.batch_size = feeder_batch;
  feeder_options.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, feeder_options);

  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);

  SequentialExecutor executor;
  executor.Add(&feeder);
  for (Steppable* node : pipeline.nodes()) executor.Add(node);
  executor.Add(collector.get());

  const std::size_t passes = executor.RunUntilQuiescent();
  EXPECT_LT(passes, std::size_t{1} << 22) << "pipeline did not quiesce";
  EXPECT_TRUE(feeder.finished());
  EXPECT_EQ(pipeline.total_anomalies(), 0u);
  return handler.results();
}

/// Same for the original handshake join.
template <typename Pred>
std::vector<ResultMsg<TR, TS>> RunHsjSequential(
    const DriverScript<TR, TS>& script,
    typename HsjPipeline<TR, TS, Pred>::Options options, Pred pred = Pred{},
    int feeder_batch = 1) {
  HsjPipeline<TR, TS, Pred> pipeline(options, pred);

  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options feeder_options;
  feeder_options.batch_size = feeder_batch;
  // HSJ has no completion notion to gate expiries on; instead the driver
  // must not run ahead of the pipeline (bounded-lag regime, DESIGN.md).
  // One event per executor pass keeps the lag at O(1) events.
  feeder_options.max_events_per_step = 1;
  Feeder<TR, TS> feeder(pipeline.ports(), &source, feeder_options);

  CollectingHandler<TR, TS> handler;
  auto collector = pipeline.MakeCollector(&handler);

  SequentialExecutor executor;
  executor.Add(&feeder);
  for (Steppable* node : pipeline.nodes()) executor.Add(node);
  executor.Add(collector.get());

  const std::size_t passes = executor.RunUntilQuiescent();
  EXPECT_LT(passes, std::size_t{1} << 22) << "pipeline did not quiesce";
  EXPECT_TRUE(feeder.finished());
  EXPECT_EQ(pipeline.total_anomalies(), 0u);
  return handler.results();
}

}  // namespace sjoin::test
