// Tests for the punctuation-driven sorting operator (paper Sections 6.2 and
// 7.5): ordered output, completeness, buffer accounting, and end-to-end
// operation behind a punctuated LLHJ pipeline.
#include <gtest/gtest.h>

#include <vector>

#include "llhj/llhj_pipeline.hpp"
#include "stream/sorter.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyEq;
using test::MakeRandomTrace;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

ResultMsg<TR, TS> R(Timestamp ts, Seq r_seq, Seq s_seq) {
  ResultMsg<TR, TS> m;
  m.ts = ts;
  m.r_seq = r_seq;
  m.s_seq = s_seq;
  return m;
}

TEST(Sorter, ReleasesOnlyBelowPunctuation) {
  CollectingHandler<TR, TS> out;
  PunctuationSorter<TR, TS> sorter(&out);
  sorter.OnResult(R(5, 0, 0));
  sorter.OnResult(R(3, 1, 0));
  sorter.OnResult(R(8, 2, 0));
  EXPECT_TRUE(out.results().empty());

  sorter.OnPunctuation(6);
  ASSERT_EQ(out.results().size(), 2u);
  EXPECT_EQ(out.results()[0].ts, 3);
  EXPECT_EQ(out.results()[1].ts, 5);
  EXPECT_EQ(sorter.buffered(), 1u);  // ts 8 stays
}

TEST(Sorter, EqualTimestampStaysUntilStrictlyGreaterPunctuation) {
  CollectingHandler<TR, TS> out;
  PunctuationSorter<TR, TS> sorter(&out);
  sorter.OnResult(R(5, 0, 0));
  sorter.OnPunctuation(5);
  EXPECT_TRUE(out.results().empty());  // ts == tp may still get company
  sorter.OnPunctuation(6);
  EXPECT_EQ(out.results().size(), 1u);
}

TEST(Sorter, TieBreaksBySequence) {
  CollectingHandler<TR, TS> out;
  PunctuationSorter<TR, TS> sorter(&out);
  sorter.OnResult(R(5, 2, 1));
  sorter.OnResult(R(5, 1, 9));
  sorter.OnResult(R(5, 1, 2));
  sorter.OnPunctuation(10);
  ASSERT_EQ(out.results().size(), 3u);
  EXPECT_EQ(out.results()[0].r_seq, 1u);
  EXPECT_EQ(out.results()[0].s_seq, 2u);
  EXPECT_EQ(out.results()[1].s_seq, 9u);
  EXPECT_EQ(out.results()[2].r_seq, 2u);
}

TEST(Sorter, FlushReleasesEverythingSorted) {
  CollectingHandler<TR, TS> out;
  PunctuationSorter<TR, TS> sorter(&out);
  sorter.OnResult(R(9, 0, 0));
  sorter.OnResult(R(2, 1, 0));
  sorter.Flush();
  ASSERT_EQ(out.results().size(), 2u);
  EXPECT_EQ(out.results()[0].ts, 2);
  EXPECT_EQ(out.results()[1].ts, 9);
  EXPECT_EQ(sorter.buffered(), 0u);
}

TEST(Sorter, MaxBufferedTracksHighWater) {
  CollectingHandler<TR, TS> out;
  PunctuationSorter<TR, TS> sorter(&out);
  for (int i = 0; i < 10; ++i) sorter.OnResult(R(i, static_cast<Seq>(i), 0));
  EXPECT_EQ(sorter.max_buffered(), 10u);
  sorter.OnPunctuation(100);
  EXPECT_EQ(sorter.max_buffered(), 10u);  // high-water survives release
  EXPECT_EQ(sorter.buffered(), 0u);
}

TEST(Sorter, ForwardsPunctuationsDownstream) {
  CollectingHandler<TR, TS> out;
  PunctuationSorter<TR, TS> sorter(&out);
  sorter.OnPunctuation(4);
  sorter.OnPunctuation(9);
  EXPECT_EQ(out.punctuations(), (std::vector<Timestamp>{4, 9}));
}

TEST(Sorter, EndToEndProducesOrderedCompleteOutput) {
  TraceConfig config;
  config.events = 320;
  config.key_domain = 4;
  config.max_gap_us = 4;
  auto trace = MakeRandomTrace(23, config);
  auto script = BuildDriverScript(trace, WindowSpec::Time(70),
                                  WindowSpec::Time(70));
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);

  typename LlhjPipeline<TR, TS, KeyEq>::Options options;
  options.nodes = 4;
  options.channel_capacity = 64;
  options.punctuate = true;
  LlhjPipeline<TR, TS, KeyEq> pipeline(options);

  ScriptSource<TR, TS> source(&script);
  typename Feeder<TR, TS>::Options fo;
  fo.batch_size = 1;
  fo.expiry_gate = &pipeline.hwm();
  Feeder<TR, TS> feeder(pipeline.ports(), &source, fo);

  CollectingHandler<TR, TS> ordered;
  PunctuationSorter<TR, TS> sorter(&ordered);
  auto collector = pipeline.MakeCollector(&sorter);

  SequentialExecutor exec;
  exec.Add(&feeder);
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.Add(collector.get());
  exec.RunUntilQuiescent();
  sorter.Flush();

  // Complete (same multiset as the oracle) ...
  EXPECT_TRUE(SameResultSet(oracle, ordered.results()));
  // ... and physically ordered by result timestamp.
  for (std::size_t i = 1; i < ordered.results().size(); ++i) {
    EXPECT_LE(ordered.results()[i - 1].ts, ordered.results()[i].ts)
        << "output out of order at index " << i;
  }
  // With punctuations the buffer stays far below the total result count
  // (Figure 21's point).
  EXPECT_GT(ordered.results().size(), 0u);
  EXPECT_LT(sorter.max_buffered(), ordered.results().size())
      << "punctuations should bound the sort buffer";
}

}  // namespace
}  // namespace sjoin
