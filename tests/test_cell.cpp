// Tests for CellJoin: output equivalence with the Kang oracle across worker
// counts, plus behaviour of the parallel-scan machinery.
#include <gtest/gtest.h>

#include "baseline/cell_join.hpp"
#include "baseline/kang_join.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyEq;
using test::MakeRandomTrace;
using test::SameResultSet;
using test::TR;
using test::TraceConfig;
using test::TS;

std::vector<ResultMsg<TR, TS>> RunCell(const DriverScript<TR, TS>& script,
                                       int workers,
                                       std::size_t min_parallel = 0) {
  VectorSink<TR, TS> sink;
  typename CellJoin<TR, TS, KeyEq>::Options options;
  options.workers = workers;
  options.min_parallel_scan = min_parallel;
  CellJoin<TR, TS, KeyEq> join(&sink, KeyEq{}, options);
  join.RunScript(script);
  return sink.results();
}

class CellJoinWorkers : public ::testing::TestWithParam<int> {};

TEST_P(CellJoinWorkers, MatchesOracleOnRandomTraces) {
  const int workers = GetParam();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    TraceConfig config;
    config.events = 300;
    config.key_domain = 5;
    auto trace = MakeRandomTrace(seed, config);
    auto script = BuildDriverScript(trace, WindowSpec::Time(30),
                                    WindowSpec::Time(30));
    auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
    auto cell = RunCell(script, workers, /*min_parallel=*/0);
    EXPECT_TRUE(SameResultSet(oracle, cell))
        << "workers=" << workers << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerSweep, CellJoinWorkers,
                         ::testing::Values(0, 1, 2, 3));

TEST(CellJoin, CountWindowsMatchOracle) {
  TraceConfig config;
  config.events = 250;
  config.key_domain = 4;
  auto trace = MakeRandomTrace(77, config);
  auto script = BuildDriverScript(trace, WindowSpec::Count(20),
                                  WindowSpec::Count(13));
  auto oracle = RunKangOracle<TR, TS, KeyEq>(script);
  auto cell = RunCell(script, 2, 0);
  EXPECT_TRUE(SameResultSet(oracle, cell));
}

TEST(CellJoin, InlineThresholdSkipsParallelPath) {
  TraceConfig config;
  config.events = 100;
  auto trace = MakeRandomTrace(5, config);
  auto script = BuildDriverScript(trace, WindowSpec::Count(16),
                                  WindowSpec::Count(16));
  VectorSink<TR, TS> sink;
  typename CellJoin<TR, TS, KeyEq>::Options options;
  options.workers = 2;
  options.min_parallel_scan = 1'000'000;  // never parallelize
  CellJoin<TR, TS, KeyEq> join(&sink, KeyEq{}, options);
  join.RunScript(script);
  EXPECT_EQ(join.parallel_scans(), 0u);
  EXPECT_TRUE(SameResultSet(RunKangOracle<TR, TS, KeyEq>(script),
                            sink.results()));
}

TEST(CellJoin, ParallelPathActuallyRuns) {
  TraceConfig config;
  config.events = 400;
  config.key_domain = 4;
  auto trace = MakeRandomTrace(6, config);
  auto script = BuildDriverScript(trace, WindowSpec::Count(64),
                                  WindowSpec::Count(64));
  VectorSink<TR, TS> sink;
  typename CellJoin<TR, TS, KeyEq>::Options options;
  options.workers = 2;
  options.min_parallel_scan = 8;
  CellJoin<TR, TS, KeyEq> join(&sink, KeyEq{}, options);
  join.RunScript(script);
  EXPECT_GT(join.parallel_scans(), 0u);
  EXPECT_TRUE(SameResultSet(RunKangOracle<TR, TS, KeyEq>(script),
                            sink.results()));
}

TEST(CellJoin, DestructionWithIdleWorkersIsClean) {
  VectorSink<TR, TS> sink;
  typename CellJoin<TR, TS, KeyEq>::Options options;
  options.workers = 3;
  {
    CellJoin<TR, TS, KeyEq> join(&sink, KeyEq{}, options);
    // No events at all; workers must shut down cleanly.
  }
  SUCCEED();
}

TEST(CellJoin, RepeatedConstructionStress) {
  for (int i = 0; i < 10; ++i) {
    VectorSink<TR, TS> sink;
    typename CellJoin<TR, TS, KeyEq>::Options options;
    options.workers = 2;
    options.min_parallel_scan = 4;
    CellJoin<TR, TS, KeyEq> join(&sink, KeyEq{}, options);
    DriverEvent<TR, TS> e;
    e.op = DriverOp::kArriveR;
    e.seq = 0;
    e.ts = 0;
    e.r = TR{1, 1};
    join.OnEvent(e);
  }
  SUCCEED();
}

}  // namespace
}  // namespace sjoin
