// Tests for the external driver: trace -> script translation, expiry rules
// for time and count windows, sequence assignment, and flush emission.
#include <gtest/gtest.h>

#include <vector>

#include "stream/script.hpp"
#include "stream/window.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::TR;
using test::TS;

Trace<TR, TS> T(std::initializer_list<std::pair<char, Timestamp>> events) {
  Trace<TR, TS> trace;
  int32_t id = 0;
  for (const auto& [side, ts] : events) {
    if (side == 'r') {
      trace.push_back(ArriveR<TR, TS>(ts, TR{1, id++}));
    } else {
      trace.push_back(ArriveS<TR, TS>(ts, TS{1, id++}));
    }
  }
  return trace;
}

std::vector<DriverOp> Ops(const DriverScript<TR, TS>& script) {
  std::vector<DriverOp> ops;
  for (const auto& e : script.events) ops.push_back(e.op);
  return ops;
}

TEST(Script, AssignsDenseSequencesPerSide) {
  auto script = BuildDriverScript(T({{'r', 0}, {'s', 1}, {'r', 2}, {'s', 3}}),
                                  WindowSpec::Time(100), WindowSpec::Time(100),
                                  /*flush_at_end=*/false);
  ASSERT_EQ(script.events.size(), 4u);
  EXPECT_EQ(script.r_count, 2u);
  EXPECT_EQ(script.s_count, 2u);
  EXPECT_EQ(script.events[0].seq, 0u);
  EXPECT_EQ(script.events[1].seq, 0u);
  EXPECT_EQ(script.events[2].seq, 1u);
  EXPECT_EQ(script.events[3].seq, 1u);
}

TEST(Script, TimeWindowExpiryIsStrict) {
  // W = 10: tuple at ts 0 survives an arrival at ts 10 (10 - 0 == W, still
  // matches) but expires before an arrival at ts 11.
  auto script =
      BuildDriverScript(T({{'r', 0}, {'s', 10}, {'s', 11}}),
                        WindowSpec::Time(10), WindowSpec::Time(10), false);
  EXPECT_EQ(Ops(script),
            (std::vector<DriverOp>{DriverOp::kArriveR, DriverOp::kArriveS,
                                   DriverOp::kExpireR, DriverOp::kArriveS}));
}

TEST(Script, TimeWindowPerSideSizes) {
  // WR = 5, WS = 50: R expires quickly, S lingers.
  auto script =
      BuildDriverScript(T({{'r', 0}, {'s', 0}, {'r', 20}}),
                        WindowSpec::Time(5), WindowSpec::Time(50), false);
  EXPECT_EQ(Ops(script),
            (std::vector<DriverOp>{DriverOp::kArriveR, DriverOp::kArriveS,
                                   DriverOp::kExpireR, DriverOp::kArriveR}));
}

TEST(Script, TimeExpiriesOrderedOldestFirstAcrossSides) {
  auto script = BuildDriverScript(
      T({{'r', 0}, {'s', 1}, {'r', 100}}), WindowSpec::Time(10),
      WindowSpec::Time(10), false);
  ASSERT_EQ(script.events.size(), 5u);
  EXPECT_EQ(script.events[2].op, DriverOp::kExpireR);  // ts 0 first
  EXPECT_EQ(script.events[3].op, DriverOp::kExpireS);  // ts 1 second
}

TEST(Script, CountWindowExpiresOldestAfterOverflow) {
  auto script = BuildDriverScript(T({{'r', 0}, {'r', 1}, {'r', 2}}),
                                  WindowSpec::Count(2), WindowSpec::Count(2),
                                  false);
  EXPECT_EQ(Ops(script),
            (std::vector<DriverOp>{DriverOp::kArriveR, DriverOp::kArriveR,
                                   DriverOp::kArriveR, DriverOp::kExpireR}));
  EXPECT_EQ(script.events[3].seq, 0u);  // the oldest R
}

TEST(Script, CountWindowsIndependentPerSide) {
  auto script = BuildDriverScript(
      T({{'r', 0}, {'s', 1}, {'r', 2}, {'s', 3}}), WindowSpec::Count(1),
      WindowSpec::Count(5), false);
  EXPECT_EQ(Ops(script),
            (std::vector<DriverOp>{DriverOp::kArriveR, DriverOp::kArriveS,
                                   DriverOp::kArriveR, DriverOp::kExpireR,
                                   DriverOp::kArriveS}));
}

TEST(Script, MixedTimeAndCountWindows) {
  auto script = BuildDriverScript(
      T({{'r', 0}, {'r', 1}, {'s', 2}, {'s', 30}}), WindowSpec::Count(1),
      WindowSpec::Time(10), false);
  // R: count window 1 -> seq 0 expires right after seq 1 arrives.
  // S: time window 10 -> s@2 expires before s@30.
  EXPECT_EQ(Ops(script),
            (std::vector<DriverOp>{DriverOp::kArriveR, DriverOp::kArriveR,
                                   DriverOp::kExpireR, DriverOp::kArriveS,
                                   DriverOp::kExpireS, DriverOp::kArriveS}));
}

TEST(Script, FlushAppendedAtEnd) {
  auto script = BuildDriverScript(T({{'r', 0}}), WindowSpec::Time(10),
                                  WindowSpec::Time(10), true);
  ASSERT_GE(script.events.size(), 3u);
  EXPECT_EQ(script.events[script.events.size() - 2].op, DriverOp::kFlushR);
  EXPECT_EQ(script.events.back().op, DriverOp::kFlushS);
}

TEST(Script, EmptyTrace) {
  auto script = BuildDriverScript(Trace<TR, TS>{}, WindowSpec::Time(10),
                                  WindowSpec::Time(10), false);
  EXPECT_TRUE(script.events.empty());
  EXPECT_EQ(script.r_count, 0u);
  EXPECT_EQ(script.s_count, 0u);
}

TEST(Script, ExpiryCarriesOriginalTimestamp) {
  auto script = BuildDriverScript(T({{'r', 5}, {'s', 100}}),
                                  WindowSpec::Time(10), WindowSpec::Time(10),
                                  false);
  ASSERT_EQ(script.events.size(), 3u);
  EXPECT_EQ(script.events[1].op, DriverOp::kExpireR);
  EXPECT_EQ(script.events[1].ts, 5);
}

TEST(Script, ZeroTimeWindowExpiresOnNextTick) {
  auto script =
      BuildDriverScript(T({{'r', 0}, {'s', 0}, {'s', 1}}),
                        WindowSpec::Time(0), WindowSpec::Time(0), false);
  // r@0 and s@0 still join (0 - 0 <= 0); both expire before ts 1.
  EXPECT_EQ(Ops(script),
            (std::vector<DriverOp>{DriverOp::kArriveR, DriverOp::kArriveS,
                                   DriverOp::kExpireR, DriverOp::kExpireS,
                                   DriverOp::kArriveS}));
}

TEST(ExpiryTracker, LiveCountsTrackArrivalsAndExpiries) {
  ExpiryTracker tracker(WindowSpec::Count(2), WindowSpec::Count(2));
  Seq expired_seq;
  Timestamp expired_ts;
  EXPECT_FALSE(tracker.OnArrival(StreamSide::kR, 0, 0, &expired_seq,
                                 &expired_ts));
  EXPECT_FALSE(tracker.OnArrival(StreamSide::kR, 1, 1, &expired_seq,
                                 &expired_ts));
  EXPECT_EQ(tracker.live_count(StreamSide::kR), 2u);
  EXPECT_TRUE(tracker.OnArrival(StreamSide::kR, 2, 2, &expired_seq,
                                &expired_ts));
  EXPECT_EQ(expired_seq, 0u);
  EXPECT_EQ(tracker.live_count(StreamSide::kR), 2u);
}

}  // namespace
}  // namespace sjoin
