// Tests for the concurrency-contract verification layer (DESIGN.md
// Section 14).
//
// Tier 3 (checked-contracts build mode, cmake -DSJOIN_CONTRACTS=ON) is
// exercised with gtest death tests matching the "sjoin contract violation"
// stderr prefix: wrong-thread SPSC access, regressing high-water marks,
// non-monotone external driver seqs, and a second thread claiming the
// session driver role. Positive cases pin down the deliberate escape
// hatches (role rebinding across executor generations).
//
// The always-on invariants — driver-mode exclusivity and sequential epoch
// begin, which throw std::logic_error regardless of build mode — are
// covered unconditionally, so this suite is meaningful in both builds.
// When SJOIN_CONTRACTS is OFF the contract classes must be inert: the
// no-op test feeds them violating sequences and expects nothing.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "core/join_session.hpp"
#include "runtime/spsc_queue.hpp"
#include "stream/handlers.hpp"
#include "stream/hwm.hpp"
#include "stream/query_set.hpp"
#include "stream/window.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::KeyEq;
using test::TR;
using test::TS;

JoinConfig TinyConfig() {
  JoinConfig config;
  config.algorithm = Algorithm::kKang;
  config.parallelism = 1;
  config.window_r = WindowSpec::Count(4);
  config.window_s = WindowSpec::Count(4);
  config.threaded = false;
  return config;
}

// -- Always-on invariants (both build modes) ---------------------------------

TEST(ContractsAlwaysOn, DriverModeMixingRejected) {
  CollectingHandler<TR, TS> handler;
  JoinSession<TR, TS, KeyEq> session(TinyConfig());
  session.AddQuery(KeyEq{}, &handler);
  session.PushR(TR{1, 0}, 0);  // binds the internal driver
  EXPECT_THROW(session.PushRAt(TR{2, 1}, 1, 0), std::logic_error);
  EXPECT_THROW(session.PushExpiry(StreamSide::kR, 0, 1), std::logic_error);

  JoinSession<TR, TS, KeyEq> external(TinyConfig());
  external.AddQuery(KeyEq{}, &handler);
  external.PushRAt(TR{1, 0}, 0, 0);  // binds the external driver
  EXPECT_THROW(external.PushS(TS{1, 1}, 1), std::logic_error);
}

TEST(ContractsAlwaysOn, RouterEpochsMustBeginSequentially) {
  QueryRouter<TR, TS> router;
  const QueryId q = router.Register(nullptr);
  router.BeginEpoch(0, {q});
  router.BeginEpoch(1, {q});
  EXPECT_THROW(router.BeginEpoch(3, {q}), std::logic_error);  // skips 2
  EXPECT_THROW(router.BeginEpoch(1, {q}), std::logic_error);  // regresses
}

TEST(ContractsAlwaysOn, EpochRegistryInstallsSequentially) {
  QueryEpochRegistry<KeyEq> registry;
  EXPECT_EQ(registry.Install(QuerySet<KeyEq>(KeyEq{})), 0u);
  EXPECT_EQ(registry.Install(QuerySet<KeyEq>(KeyEq{})), 1u);
  EXPECT_EQ(registry.epoch_count(), 2u);
}

#if SJOIN_CONTRACTS_ENABLED

// -- Tier 3 death tests (SJOIN_CONTRACTS=ON builds only) ---------------------

class ContractsDeath : public ::testing::Test {
 protected:
  void SetUp() override {
    // Death-test bodies below spawn threads; the fork-based "fast" style
    // is unsafe with live threads in the parent.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(ContractsDeath, WrongThreadSpscPushDies) {
  EXPECT_DEATH(
      {
        SpscQueue<int> queue(8);
        ASSERT_TRUE(queue.TryPush(1));  // binds the producer role here
        std::thread intruder([&queue] { queue.TryPush(2); });
        intruder.join();
      },
      "sjoin contract violation: SpscQueue");
}

TEST_F(ContractsDeath, WrongThreadSpscPopDies) {
  EXPECT_DEATH(
      {
        SpscQueue<int> queue(8);
        ASSERT_TRUE(queue.TryPush(1));
        ASSERT_NE(queue.Front(), nullptr);  // binds the consumer role here
        std::thread intruder([&queue] {
          if (queue.Front() != nullptr) queue.PopFront();
        });
        intruder.join();
      },
      "sjoin contract violation: SpscQueue");
}

TEST_F(ContractsDeath, SpscRolesRebindAcrossGenerations) {
  // The documented escape hatch: after ThreadedExecutor::Stop() joins the
  // workers it advances the contract generation, and the main thread may
  // legitimately drain rings a worker produced into. Simulated here with
  // an explicit AdvanceGeneration between the two owners.
  SpscQueue<int> queue(8);
  std::thread producer([&queue] { ASSERT_TRUE(queue.TryPush(7)); });
  producer.join();
  contracts::AdvanceGeneration();
  ASSERT_NE(queue.Front(), nullptr);
  EXPECT_EQ(*queue.Front(), 7);
  queue.PopFront();  // same-thread consumer use: no violation
}

TEST_F(ContractsDeath, HwmTimestampRegressionDies) {
  EXPECT_DEATH(
      {
        HighWaterMarks marks;
        marks.Publish(StreamSide::kR, /*ts=*/10, /*seq=*/0);
        marks.Publish(StreamSide::kR, /*ts=*/5, /*seq=*/1);  // mark regresses
      },
      "sjoin contract violation: HighWaterMarks: R mark");
}

TEST_F(ContractsDeath, HwmRepeatedCompletedSeqDies) {
  EXPECT_DEATH(
      {
        HighWaterMarks marks;
        marks.Publish(StreamSide::kS, /*ts=*/10, /*seq=*/4);
        marks.Publish(StreamSide::kS, /*ts=*/11, /*seq=*/4);  // seq is strict
      },
      "sjoin contract violation: HighWaterMarks: S completed seq");
}

TEST_F(ContractsDeath, HwmSidesAreIndependent) {
  HighWaterMarks marks;
  marks.Publish(StreamSide::kR, 10, 3);
  marks.Publish(StreamSide::kS, 2, 0);  // lower than R's mark: fine
  marks.Publish(StreamSide::kR, 10, 4);  // equal ts is fine (non-strict)
  EXPECT_EQ(marks.Get(StreamSide::kR), 10);
}

// Session-driving bodies live in named helpers: a template-argument comma
// at statement scope would otherwise split the EXPECT_DEATH macro args.
void DriveExternalArrivalRegression() {
  CollectingHandler<TR, TS> handler;
  JoinSession<TR, TS, KeyEq> session(TinyConfig());
  session.AddQuery(KeyEq{}, &handler);
  session.PushRAt(TR{1, 0}, 0, /*seq=*/5);
  session.PushRAt(TR{2, 1}, 1, /*seq=*/5);  // repeats: strict order
}

void DriveExternalExpiryRegression() {
  CollectingHandler<TR, TS> handler;
  JoinSession<TR, TS, KeyEq> session(TinyConfig());
  session.AddQuery(KeyEq{}, &handler);
  session.PushRAt(TR{1, 0}, 0, 0);
  session.PushRAt(TR{1, 1}, 1, 1);
  session.PushExpiry(StreamSide::kR, /*seq=*/1, /*ts=*/2);
  session.PushExpiry(StreamSide::kR, /*seq=*/0, /*ts=*/3);  // regresses
}

void DriveFromTwoThreads() {
  CollectingHandler<TR, TS> handler;
  JoinSession<TR, TS, KeyEq> session(TinyConfig());
  session.AddQuery(KeyEq{}, &handler);
  session.PushR(TR{1, 0}, 0);  // pins the driver role to this thread
  std::thread intruder([&session] { session.PushR(TR{2, 1}, 1); });
  intruder.join();
}

TEST_F(ContractsDeath, ExternalArrivalSeqRegressionDies) {
  EXPECT_DEATH(DriveExternalArrivalRegression(),
               "sjoin contract violation: JoinSession: external R arrival seq");
}

TEST_F(ContractsDeath, ExternalExpirySeqRegressionDies) {
  EXPECT_DEATH(DriveExternalExpiryRegression(),
               "sjoin contract violation: JoinSession: external expiry seq");
}

TEST_F(ContractsDeath, SecondThreadDriverDies) {
  EXPECT_DEATH(DriveFromTwoThreads(),
               "sjoin contract violation: JoinSession: role 'driver'");
}

TEST_F(ContractsDeath, MonotonePrimitiveReportsValues) {
  EXPECT_DEATH(
      {
        contracts::Monotone order;
        order.AssertAdvance(3, "Fixture", "seq", /*strict=*/true);
        order.AssertAdvance(3, "Fixture", "seq", /*strict=*/true);
      },
      "sjoin contract violation: Fixture: seq \\(prev=3 next=3\\)");
}

#else  // !SJOIN_CONTRACTS_ENABLED

// -- Contracts compiled out: the primitives must be inert --------------------

TEST(ContractsDisabled, PrimitivesAreNoOps) {
  contracts::ThreadRole role;
  role.AssertHeld("SpscQueue", "producer");
  std::thread other([&role] { role.AssertHeld("SpscQueue", "producer"); });
  other.join();  // a second thread is NOT a violation when compiled out

  contracts::Monotone order;
  order.AssertAdvance(5, "HighWaterMarks", "R mark");
  order.AssertAdvance(1, "HighWaterMarks", "R mark");  // regression ignored
  EXPECT_FALSE(order.has_value());

  // The role/monotone members occupy no storage in the containing classes.
  EXPECT_TRUE(std::is_empty_v<contracts::ThreadRole>);
  EXPECT_TRUE(std::is_empty_v<contracts::Monotone>);
}

#endif  // SJOIN_CONTRACTS_ENABLED

}  // namespace
}  // namespace sjoin
