// Tests for the statistics substrate (Welford moments, time-bucketed
// series) used by the latency experiments.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stream/stats.hpp"

namespace sjoin {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat s;
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    a.Add(x);
    all.Add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = i * 0.37;
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(TimeSeriesStat, BucketsByInterval) {
  TimeSeriesStat series(1000);  // 1 us buckets
  series.Anchor(0);
  series.Add(0, 1.0);
  series.Add(999, 3.0);
  series.Add(1000, 5.0);
  series.Add(2500, 7.0);
  ASSERT_EQ(series.buckets().size(), 3u);
  EXPECT_EQ(series.buckets()[0].count(), 2u);
  EXPECT_DOUBLE_EQ(series.buckets()[0].mean(), 2.0);
  EXPECT_EQ(series.buckets()[1].count(), 1u);
  EXPECT_EQ(series.buckets()[2].count(), 1u);
}

TEST(TimeSeriesStat, AutoAnchorsOnFirstAdd) {
  TimeSeriesStat series(1000);
  series.Add(5000, 1.0);
  series.Add(5999, 2.0);
  ASSERT_EQ(series.buckets().size(), 1u);
  EXPECT_EQ(series.buckets()[0].count(), 2u);
}

TEST(TimeSeriesStat, ValuesBeforeAnchorClampToBucketZero) {
  TimeSeriesStat series(1000);
  series.Anchor(10'000);
  series.Add(9'500, 1.0);  // slightly before anchor
  ASSERT_EQ(series.buckets().size(), 1u);
  EXPECT_EQ(series.buckets()[0].count(), 1u);
}

}  // namespace
}  // namespace sjoin
