// Tests for the statistics substrate (Welford moments, time-bucketed
// series) used by the latency experiments.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stream/stats.hpp"

namespace sjoin {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat s;
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    a.Add(x);
    all.Add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = i * 0.37;
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStat b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(TimeSeriesStat, BucketsByInterval) {
  TimeSeriesStat series(1000);  // 1 us buckets
  series.Anchor(0);
  series.Add(0, 1.0);
  series.Add(999, 3.0);
  series.Add(1000, 5.0);
  series.Add(2500, 7.0);
  ASSERT_EQ(series.buckets().size(), 3u);
  EXPECT_EQ(series.buckets()[0].count(), 2u);
  EXPECT_DOUBLE_EQ(series.buckets()[0].mean(), 2.0);
  EXPECT_EQ(series.buckets()[1].count(), 1u);
  EXPECT_EQ(series.buckets()[2].count(), 1u);
}

TEST(TimeSeriesStat, AutoAnchorsOnFirstAdd) {
  TimeSeriesStat series(1000);
  series.Add(5000, 1.0);
  series.Add(5999, 2.0);
  ASSERT_EQ(series.buckets().size(), 1u);
  EXPECT_EQ(series.buckets()[0].count(), 2u);
}

TEST(TimeSeriesStat, ValuesBeforeAnchorClampToBucketZero) {
  TimeSeriesStat series(1000);
  series.Anchor(10'000);
  series.Add(9'500, 1.0);  // slightly before anchor
  ASSERT_EQ(series.buckets().size(), 1u);
  EXPECT_EQ(series.buckets()[0].count(), 1u);
}

TEST(LatencyHistogram, EmptyQuantilesAreZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.QuantileNs(0.5), 0);
  EXPECT_EQ(hist.QuantileNs(0.999), 0);
}

TEST(LatencyHistogram, QuantilesWithinBucketResolution) {
  // Log-bucketed (32 sub-buckets per octave): any quantile must come back
  // within the bucket's relative error (< ~3.2%) of the exact value.
  LatencyHistogram hist;
  for (int64_t v = 1; v <= 100'000; ++v) hist.Add(v);
  EXPECT_EQ(hist.count(), 100'000u);
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    const double exact = q * 100'000.0;
    const double got = static_cast<double>(hist.QuantileNs(q));
    EXPECT_NEAR(got, exact, exact * 0.04) << "q=" << q;
  }
  // Min/max stay inside the recorded range.
  EXPECT_GE(hist.QuantileNs(0.0), 1);
  EXPECT_LE(hist.QuantileNs(1.0), 110'000);
}

TEST(LatencyHistogram, MergeEqualsSequential) {
  LatencyHistogram a, b, both;
  for (int64_t v = 1; v <= 3'000; ++v) {
    (v % 2 == 0 ? a : b).Add(v * 17);
    both.Add(v * 17);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  for (double q : {0.25, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.QuantileNs(q), both.QuantileNs(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, MultiWayMergeEqualsConcatenation) {
  // The sharded merging collector folds one histogram per shard into a
  // session-wide one; a k-way merge must be exactly the concatenated
  // single histogram, bucket for bucket, at every quantile.
  constexpr int kShards = 5;
  LatencyHistogram shard[kShards];
  LatencyHistogram all;
  uint64_t total = 0;
  for (int64_t v = 1; v <= 4'000; ++v) {
    const int64_t sample = v * v % 900'001 + 1;  // spread over many octaves
    shard[v % kShards].Add(sample);
    all.Add(sample);
    ++total;
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& h : shard) merged.Merge(h);
  EXPECT_EQ(merged.count(), total);
  EXPECT_EQ(merged.count(), all.count());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.QuantileNs(q), all.QuantileNs(q)) << "q=" << q;
  }
  // Merge order must not matter (bucket addition commutes).
  LatencyHistogram reversed;
  for (int k = kShards - 1; k >= 0; --k) reversed.Merge(shard[k]);
  for (double q : {0.5, 0.99}) {
    EXPECT_EQ(reversed.QuantileNs(q), all.QuantileNs(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentityBothDirections) {
  LatencyHistogram filled, empty;
  for (int64_t v = 1; v <= 500; ++v) filled.Add(v * 31);
  const uint64_t count = filled.count();
  const int64_t p50 = filled.QuantileNs(0.5);
  const int64_t p999 = filled.QuantileNs(0.999);

  filled.Merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(filled.count(), count);
  EXPECT_EQ(filled.QuantileNs(0.5), p50);
  EXPECT_EQ(filled.QuantileNs(0.999), p999);

  LatencyHistogram target;  // merging INTO an empty one copies it
  target.Merge(filled);
  EXPECT_EQ(target.count(), count);
  EXPECT_EQ(target.QuantileNs(0.5), p50);
  EXPECT_EQ(target.QuantileNs(0.999), p999);
  EXPECT_EQ(empty.count(), 0u);  // source untouched
}

TEST(LatencyHistogram, HandlesZeroAndNegativeAsFloor) {
  LatencyHistogram hist;
  hist.Add(0);
  hist.Add(-123);  // clock skew: clamp, don't crash
  hist.Add(5);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_GE(hist.QuantileNs(1.0), 5);
}

}  // namespace
}  // namespace sjoin
