// Tests for the LLHJ node-local window stores (scan and hash-index) and the
// home-node assignment policies.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "llhj/home_policy.hpp"
#include "llhj/store.hpp"

#include "test_util.hpp"

namespace sjoin {
namespace {

using test::TR;
using test::TRKey;
using test::TS;
using test::TSKey;

template <typename T>
Stamped<T> Make(int32_t key, Seq seq) {
  Stamped<T> t;
  t.value.key = key;
  t.value.id = static_cast<int32_t>(seq);
  t.seq = seq;
  t.ts = static_cast<Timestamp>(seq);
  return t;
}

template <typename Store>
std::vector<Seq> Collect(const Store& store, int32_t probe_key) {
  TS probe;
  probe.key = probe_key;
  std::vector<Seq> seqs;
  store.ForEach(probe, [&](const StoreEntry<TR>& e) {
    seqs.push_back(e.tuple.seq);
  });
  return seqs;
}

TEST(VectorStore, InsertAndScanAll) {
  VectorStore<TR> store;
  store.Insert(Make<TR>(1, 0), false);
  store.Insert(Make<TR>(2, 1), true);
  EXPECT_EQ(store.size(), 2u);
  auto seqs = Collect(store, 99);  // probe ignored: visits everything
  EXPECT_EQ(seqs.size(), 2u);
}

TEST(VectorStore, EraseFrontFastPath) {
  VectorStore<TR> store;
  store.Insert(Make<TR>(1, 0), false);
  store.Insert(Make<TR>(2, 1), false);
  EXPECT_TRUE(store.EraseSeq(0));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.EraseSeq(0));
}

TEST(VectorStore, EraseMiddle) {
  VectorStore<TR> store;
  for (Seq i = 0; i < 5; ++i) store.Insert(Make<TR>(1, i), false);
  EXPECT_TRUE(store.EraseSeq(2));
  EXPECT_EQ(store.size(), 4u);
  auto seqs = Collect(store, 1);
  EXPECT_EQ(std::set<Seq>(seqs.begin(), seqs.end()),
            (std::set<Seq>{0, 1, 3, 4}));
}

TEST(VectorStore, ExpeditionFlagLifecycle) {
  VectorStore<TR> store;
  store.Insert(Make<TR>(1, 7), true);
  EXPECT_EQ(store.expedited_count(), 1u);
  EXPECT_TRUE(store.ClearExpedited(7));
  EXPECT_EQ(store.expedited_count(), 0u);
  EXPECT_FALSE(store.ClearExpedited(8));  // unknown seq
}

TEST(VectorStore, ClearExpeditedOnErasedTupleIsNoop) {
  VectorStore<TR> store;
  store.Insert(Make<TR>(1, 7), true);
  EXPECT_TRUE(store.EraseSeq(7));
  EXPECT_FALSE(store.ClearExpedited(7));
}

using TRHash = HashStore<TR, TRKey, TSKey>;

TEST(HashStore, ProbeVisitsOnlyMatchingBucket) {
  TRHash store;
  store.Insert(Make<TR>(1, 0), false);
  store.Insert(Make<TR>(2, 1), false);
  store.Insert(Make<TR>(1, 2), false);
  EXPECT_EQ(store.size(), 3u);
  auto seqs = Collect(store, 1);
  EXPECT_EQ(std::set<Seq>(seqs.begin(), seqs.end()), (std::set<Seq>{0, 2}));
  EXPECT_TRUE(Collect(store, 3).empty());
}

TEST(HashStore, EraseSeqUpdatesBuckets) {
  TRHash store;
  store.Insert(Make<TR>(1, 0), false);
  store.Insert(Make<TR>(1, 1), false);
  EXPECT_TRUE(store.EraseSeq(0));
  EXPECT_EQ(store.size(), 1u);
  auto seqs = Collect(store, 1);
  EXPECT_EQ(seqs, std::vector<Seq>{1});
  EXPECT_FALSE(store.EraseSeq(0));
  EXPECT_TRUE(store.EraseSeq(1));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(Collect(store, 1).empty());
}

TEST(HashStore, ClearExpedited) {
  TRHash store;
  store.Insert(Make<TR>(5, 3), true);
  TS probe;
  probe.key = 5;
  int expedited = 0;
  store.ForEach(probe, [&](const StoreEntry<TR>& e) {
    expedited += e.expedited ? 1 : 0;
  });
  EXPECT_EQ(expedited, 1);
  EXPECT_TRUE(store.ClearExpedited(3));
  expedited = 0;
  store.ForEach(probe, [&](const StoreEntry<TR>& e) {
    expedited += e.expedited ? 1 : 0;
  });
  EXPECT_EQ(expedited, 0);
  EXPECT_FALSE(store.ClearExpedited(99));
}

// Range-probe bounds for the test schema: |r.key - s.key| <= 1.
struct TRBandLow {
  int64_t operator()(const TR& r) const { return r.key - 1; }
};
struct TRBandHigh {
  int64_t operator()(const TR& r) const { return r.key + 1; }
};
struct TSBandLow {
  int64_t operator()(const TS& s) const { return s.key - 1; }
};
struct TSBandHigh {
  int64_t operator()(const TS& s) const { return s.key + 1; }
};

using TROrdered = OrderedStore<TR, TRKey, TSBandLow, TSBandHigh>;

std::vector<Seq> CollectOrdered(const TROrdered& store, int32_t probe_key) {
  TS probe;
  probe.key = probe_key;
  std::vector<Seq> seqs;
  store.ForEach(probe, [&](const StoreEntry<TR>& e) {
    seqs.push_back(e.tuple.seq);
  });
  return seqs;
}

// -- Epoch-walk ordering contract --------------------------------------------

// ForEachEpochAfter visits exactly the live entries inserted under an epoch
// later than `e`, NEWEST-FIRST (strictly descending Seq), on every store
// type. The grouped HashStore's precursor walked its seq-index in hash
// order here; the nodes tolerate any order (each entry is evaluated in
// isolation), but the contract is pinned so stores stay interchangeable —
// see llhj_node.hpp / hsj_node.hpp epoch re-sweep call sites.
template <typename T>
Stamped<T> MakeEpoch(int32_t key, Seq seq, Epoch epoch) {
  Stamped<T> t = Make<T>(key, seq);
  t.epoch = epoch;
  return t;
}

template <typename Store>
void CheckEpochWalkNewestFirst() {
  Store store;
  // Epochs are monotone in flow order (the runtime's invariant): seqs
  // 0..29 under epoch 1, 30..59 under epoch 2, 60..89 under epoch 3.
  for (Seq s = 0; s < 90; ++s) {
    store.Insert(MakeEpoch<TR>(static_cast<int32_t>(s % 7), s, 1 + s / 30),
                 false);
  }
  // Churn: expire a prefix plus scattered newer entries.
  for (Seq s = 0; s < 10; ++s) ASSERT_TRUE(store.EraseSeq(s));
  for (Seq s : {Seq{35}, Seq{61}, Seq{88}}) ASSERT_TRUE(store.EraseSeq(s));
  EXPECT_EQ(store.max_epoch(), 3u);

  for (Epoch e = 0; e <= 3; ++e) {
    std::vector<Seq> visited;
    store.ForEachEpochAfter(e, [&](const StoreEntry<TR>& entry) {
      visited.push_back(entry.tuple.seq);
    });
    std::vector<Seq> expect;  // live entries with epoch > e, newest first
    for (Seq s = 90; s > 0; --s) {
      const Seq seq = s - 1;
      if (seq < 10 || seq == 35 || seq == 61 || seq == 88) continue;
      if (1 + seq / 30 > e) expect.push_back(seq);
    }
    EXPECT_EQ(visited, expect) << "epoch " << e;
  }
}

TEST(EpochWalk, VectorStoreVisitsNewestFirst) {
  CheckEpochWalkNewestFirst<VectorStore<TR>>();
}

TEST(EpochWalk, GroupedHashStoreVisitsNewestFirst) {
  CheckEpochWalkNewestFirst<HashStore<TR, TRKey, TSKey>>();
}

TEST(EpochWalk, ChainHashStoreVisitsNewestFirst) {
  CheckEpochWalkNewestFirst<ChainHashStore<TR, TRKey, TSKey>>();
}

TEST(OrderedStore, RangeProbeVisitsOnlyBand) {
  TROrdered store;
  store.Insert(Make<TR>(1, 0), false);
  store.Insert(Make<TR>(3, 1), false);
  store.Insert(Make<TR>(5, 2), false);
  store.Insert(Make<TR>(4, 3), false);
  // Probe key 4 with band 1 -> keys 3..5.
  auto seqs = CollectOrdered(store, 4);
  EXPECT_EQ(std::set<Seq>(seqs.begin(), seqs.end()),
            (std::set<Seq>{1, 2, 3}));
}

TEST(OrderedStore, DuplicateKeysAllVisited) {
  TROrdered store;
  store.Insert(Make<TR>(7, 0), false);
  store.Insert(Make<TR>(7, 1), false);
  store.Insert(Make<TR>(7, 2), false);
  EXPECT_EQ(CollectOrdered(store, 7).size(), 3u);
}

TEST(OrderedStore, EraseSeqFromDuplicateBucket) {
  TROrdered store;
  store.Insert(Make<TR>(7, 0), false);
  store.Insert(Make<TR>(7, 1), false);
  EXPECT_TRUE(store.EraseSeq(0));
  EXPECT_EQ(store.size(), 1u);
  auto seqs = CollectOrdered(store, 7);
  EXPECT_EQ(seqs, std::vector<Seq>{1});
  EXPECT_FALSE(store.EraseSeq(0));
}

TEST(OrderedStore, ExpeditionFlag) {
  TROrdered store;
  store.Insert(Make<TR>(2, 5), true);
  TS probe;
  probe.key = 2;
  int expedited = 0;
  store.ForEach(probe, [&](const StoreEntry<TR>& e) {
    expedited += e.expedited ? 1 : 0;
  });
  EXPECT_EQ(expedited, 1);
  EXPECT_TRUE(store.ClearExpedited(5));
  EXPECT_FALSE(store.ClearExpedited(99));
  expedited = 0;
  store.ForEach(probe, [&](const StoreEntry<TR>& e) {
    expedited += e.expedited ? 1 : 0;
  });
  EXPECT_EQ(expedited, 0);
}

TEST(OrderedStore, EmptyRangeProbe) {
  TROrdered store;
  store.Insert(Make<TR>(100, 0), false);
  EXPECT_TRUE(CollectOrdered(store, 50).empty());
}

TEST(HomeAssigner, RoundRobinCyclesAllNodes) {
  HomeAssigner h(HomePolicy::kRoundRobin, 4);
  for (Seq seq = 0; seq < 16; ++seq) {
    EXPECT_EQ(h.Of(seq), static_cast<NodeId>(seq % 4));
  }
}

TEST(HomeAssigner, BlockAssignsContiguousRuns) {
  HomeAssigner h(HomePolicy::kBlock, 3, 4);
  EXPECT_EQ(h.Of(0), h.Of(3));   // same block of 4
  EXPECT_NE(h.Of(3), h.Of(4));   // next block, next node
  EXPECT_EQ(h.Of(4), h.Of(7));
  EXPECT_EQ(h.Of(0), h.Of(12));  // wraps after 3 blocks
}

TEST(HomeAssigner, HashIsDeterministicAndInRange) {
  HomeAssigner h(HomePolicy::kHash, 5);
  std::set<NodeId> seen;
  for (Seq seq = 0; seq < 200; ++seq) {
    const NodeId a = h.Of(seq);
    EXPECT_EQ(a, h.Of(seq));
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
    seen.insert(a);
  }
  EXPECT_EQ(seen.size(), 5u);  // all nodes used
}

TEST(HomeAssigner, SingleNodeAlwaysZero) {
  for (HomePolicy p :
       {HomePolicy::kRoundRobin, HomePolicy::kBlock, HomePolicy::kHash}) {
    HomeAssigner h(p, 1);
    for (Seq seq = 0; seq < 20; ++seq) EXPECT_EQ(h.Of(seq), 0);
  }
}

}  // namespace
}  // namespace sjoin
