// Figure 18 — average result latency vs. number of processing cores,
// original handshake join vs. LLHJ, on a time-based window (paper: 15 min,
// log-scale y axis spanning 4 orders of magnitude).
//
// Scaled default: 6 s windows at 2000 tuples/s/stream. Expected shape: HSJ
// average latency sits at window scale (seconds) regardless of core count;
// LLHJ sits at batching scale (milliseconds) — orders of magnitude below.
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double window_s = flags.Double("window", 6.0);
  const double rate = flags.Double("rate", 2000.0);
  const double duration = flags.Double("duration", 15.0);
  const int batch = static_cast<int>(flags.Int("batch", 64));
  std::vector<int> node_counts;
  {
    const std::string list = flags.Str("nodes", "2,4,8");
    std::size_t pos = 0;
    while (pos < list.size()) {
      node_counts.push_back(std::atoi(list.c_str() + pos));
      const auto comma = list.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  JsonEmitter json(flags, "fig18_latency_vs_cores");
  PrintHeader("fig18_latency_vs_cores — avg latency, HSJ vs LLHJ",
              "Figure 18 (15 min window in the paper, scaled here)");
  std::printf("scaling: paper window 15 min -> %.0f s; rate %.0f "
              "tuples/s/stream; run %.0f s per cell\n",
              window_s, rate, duration);
  std::printf("\n%6s  %22s  %22s  %12s\n", "nodes", "handshake avg (ms)",
              "llhj avg (ms)", "ratio");

  for (int nodes : node_counts) {
    Workload workload;
    workload.wr = WindowSpec::Time(static_cast<int64_t>(window_s * 1e6));
    workload.ws = workload.wr;
    workload.rate_per_stream = rate;
    workload.paced = true;

    const int64_t window_tuples = WindowTuples(workload.wr, rate);
    RunStats hsj =
        RunHsjBench(nodes, workload, window_tuples, batch, duration);
    RunStats llhj = RunLlhjBench(nodes, workload, batch, duration);

    const double ratio = llhj.latency_ms.mean() > 0
                             ? hsj.latency_ms.mean() / llhj.latency_ms.mean()
                             : 0.0;
    std::printf("%6d  %22.2f  %22.3f  %11.0fx\n", nodes,
                hsj.latency_ms.mean(), llhj.latency_ms.mean(), ratio);
    json.Emit(JsonRow()
                  .Int("nodes", nodes)
                  .Num("window_s", window_s)
                  .Num("rate_per_stream", rate)
                  .Int("batch", batch)
                  .Num("hsj_latency_avg_ms", hsj.latency_ms.mean())
                  .Num("llhj_latency_avg_ms", llhj.latency_ms.mean())
                  .Num("hsj_over_llhj", ratio));
  }
  std::printf("\nexpected shape: handshake join sits at window scale "
              "(~%.0f ms avg, insensitive to cores); llhj sits at batch "
              "scale (~batch/arrival-rate ms). Paper reports ~4 orders of "
              "magnitude at 15 min windows; the gap here shrinks with the "
              "window scaling factor.\n",
              window_s * 1e3 / 4);
  return 0;
}
