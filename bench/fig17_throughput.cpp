// Figure 17 — maximum sustained throughput per stream vs. number of
// processing cores, for the original handshake join, LLHJ, and LLHJ with
// punctuation generation.
//
// The paper sweeps 4..40 real cores on a Magny Cours; this host has few
// cores, so the sweep covers pipeline lengths (nodes) with oversubscribed
// threads — the expected *shape* still holds: LLHJ throughput is on par
// with (or slightly above) HSJ, and punctuations cost only a marginal
// amount. Feeding is max-rate against backpressure (no drops), as in the
// paper's "maximum throughput the system could sustain".
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int64_t window = flags.Int("window_tuples", 20'000);
  const double duration = flags.Double("duration", 4.0);
  const int batch = static_cast<int>(flags.Int("batch", 64));
  std::vector<int> node_counts;
  {
    const std::string list = flags.Str("nodes", "1,2,4,8");
    std::size_t pos = 0;
    while (pos < list.size()) {
      node_counts.push_back(std::atoi(list.c_str() + pos));
      const auto comma = list.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  JsonEmitter json(flags, "fig17_throughput");
  PrintHeader("fig17_throughput — throughput/stream vs processing cores",
              "Figure 17");
  std::printf("scaling: paper window 15 min @ ~3-4k tuples/s (~3M tuples) -> "
              "count window of %lld tuples; host has %d cpus (nodes beyond "
              "that oversubscribe)\n",
              static_cast<long long>(window), AvailableCpuCount());
  std::printf("\n%6s  %18s  %18s  %18s\n", "nodes", "handshake (t/s)",
              "llhj (t/s)", "llhj+punct (t/s)");

  for (int nodes : node_counts) {
    Workload workload;
    workload.wr = WindowSpec::Count(window);
    workload.ws = WindowSpec::Count(window);
    workload.paced = false;

    RunStats hsj = RunHsjBench(nodes, workload, window, batch, duration);
    RunStats llhj = RunLlhjBench(nodes, workload, batch, duration);
    RunStats punct =
        RunLlhjBench(nodes, workload, batch, duration, /*punctuate=*/true);

    std::printf("%6d  %18.0f  %18.0f  %18.0f\n", nodes,
                hsj.throughput_per_stream(), llhj.throughput_per_stream(),
                punct.throughput_per_stream());
    json.Emit(JsonRow()
                  .Int("nodes", nodes)
                  .Int("window_tuples", window)
                  .Int("batch", batch)
                  .Num("duration_s", duration)
                  .Num("hsj_tput", hsj.throughput_per_stream())
                  .Num("llhj_tput", llhj.throughput_per_stream())
                  .Num("llhj_punct_tput", punct.throughput_per_stream())
                  .Num("llhj_latency_avg_ms", llhj.latency_ms.mean())
                  .Num("llhj_latency_max_ms", llhj.latency_ms.max())
                  .Int("anomalies", static_cast<int64_t>(
                                        hsj.anomalies + llhj.anomalies +
                                        punct.anomalies)));
    if (hsj.anomalies + llhj.anomalies + punct.anomalies > 0) {
      std::printf("  WARNING: anomalies hsj=%llu llhj=%llu punct=%llu\n",
                  static_cast<unsigned long long>(hsj.anomalies),
                  static_cast<unsigned long long>(llhj.anomalies),
                  static_cast<unsigned long long>(punct.anomalies));
    }
  }
  std::printf("\nexpected shape: llhj ~= handshake (home-node assignment "
              "balances load slightly better); punctuations marginally "
              "below plain llhj.\n");
  return 0;
}
