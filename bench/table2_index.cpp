// Table 2 — throughput with node-local index acceleration (paper Section
// 7.6). The join predicate is changed to the equi-join variant so
// hash-based processing applies; three configurations are compared:
//
//       handshake join            (scan)      paper:   5,125 tuples/s
//       low-latency handshake     (scan)      paper:   5,117 tuples/s
//       low-latency + hash index              paper: 225,234 tuples/s
//
// Expected shape: the two scan variants are nearly identical; the indexed
// variant is more than an order of magnitude faster (the paper's 44x is on
// 40 real cores; the multiple here depends on window size and host).
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

template <typename Pipeline>
RunStats RunEqui(Pipeline& pipeline, const Workload& workload, int batch,
                 double duration) {
  return RunPipelineBench(pipeline, workload, batch, duration);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.Int("nodes", 4));
  // Scan cost is O(window), probe cost O(1): a larger window moves the
  // speedup toward the paper's 44x (their 15-min window held ~3M tuples).
  const int64_t window = flags.Int("window_tuples", 50'000);
  const double duration = flags.Double("duration", 5.0);
  const int batch = static_cast<int>(flags.Int("batch", 64));
  // Key domain sized so the equi-join hit rate matches the paper's band
  // join (~1:250,000): P(x == a) = 1/domain.
  const int64_t domain = flags.Int("key_domain", 250'000);

  PrintHeader("table2_index — equi-join throughput with node-local indexes",
              "Table 2 (40-core configuration in the paper)");
  std::printf("nodes %d, count window %lld tuples, key domain %lld "
              "(hit rate 1:%lld)\n\n",
              nodes, static_cast<long long>(window),
              static_cast<long long>(domain),
              static_cast<long long>(domain));

  Workload workload;
  workload.wr = WindowSpec::Count(window);
  workload.ws = WindowSpec::Count(window);
  workload.key_domain = domain;
  workload.paced = false;

  JsonEmitter json(flags, "table2_index");
  std::printf("%-42s %18s\n", "algorithm", "throughput (t/s)");

  double hsj_tput, llhj_tput, idx_tput;
  {
    typename HsjPipeline<RTuple, STuple, EquiPredicate>::Options options;
    options.nodes = nodes;
    options.segment_capacity_r =
        HsjPipeline<RTuple, STuple, EquiPredicate>::SegmentCapacityFor(
            window, nodes);
    options.segment_capacity_s = options.segment_capacity_r;
    HsjPipeline<RTuple, STuple, EquiPredicate> pipeline(options);
    RunStats stats = RunEqui(pipeline, workload, batch, duration);
    hsj_tput = stats.throughput_per_stream();
    std::printf("%-42s %18.0f\n", "handshake join (scan)", hsj_tput);
  }
  {
    typename LlhjPipeline<RTuple, STuple, EquiPredicate>::Options options;
    options.nodes = nodes;
    LlhjPipeline<RTuple, STuple, EquiPredicate> pipeline(options);
    RunStats stats = RunEqui(pipeline, workload, batch, duration);
    llhj_tput = stats.throughput_per_stream();
    std::printf("%-42s %18.0f\n", "low-latency handshake join (scan)",
                llhj_tput);
  }
  {
    using Indexed =
        IndexedLlhjPipeline<RTuple, STuple, EquiPredicate, RKey, SKey>;
    typename Indexed::Options options;
    options.nodes = nodes;
    Indexed pipeline(options);
    RunStats stats = RunEqui(pipeline, workload, batch, duration);
    idx_tput = stats.throughput_per_stream();
    std::printf("%-42s %18.0f\n", "low-latency handshake join with index",
                idx_tput);
  }

  std::printf("\nspeedup index vs scan-llhj: %.1fx (paper: %.1fx on 40 "
              "cores; the multiple grows with the window since scan cost "
              "is O(window))\n",
              llhj_tput > 0 ? idx_tput / llhj_tput : 0.0, 225234.0 / 5117.0);
  json.Emit(JsonRow()
                .Str("workload", "equi")
                .Int("nodes", nodes)
                .Int("window_tuples", window)
                .Int("key_domain", domain)
                .Num("hsj_scan_tput", hsj_tput)
                .Num("llhj_scan_tput", llhj_tput)
                .Num("llhj_index_tput", idx_tput)
                .Num("index_speedup",
                     llhj_tput > 0 ? idx_tput / llhj_tput : 0.0));

  // Beyond the paper (its stated future work, Sections 7.6/9): an *ordered*
  // node-local index accelerating the original BAND join via range probes
  // on x, with the predicate filtering the y dimension.
  std::printf("\n-- future-work extension: range index on the band join --\n");
  Workload band = workload;
  band.key_domain = kPaperKeyDomain;  // the paper's band workload

  double band_scan, band_idx;
  {
    typename LlhjPipeline<RTuple, STuple, BandPredicate>::Options options;
    options.nodes = nodes;
    LlhjPipeline<RTuple, STuple, BandPredicate> pipeline(options);
    RunStats stats = RunPipelineBench(pipeline, band, batch, duration);
    band_scan = stats.throughput_per_stream();
    std::printf("%-42s %18.0f\n", "llhj band join (scan)", band_scan);
  }
  {
    using RStore = OrderedStore<RTuple, RKey, SBandLowForR, SBandHighForR>;
    using SStore = OrderedStore<STuple, SKey, RBandLowForS, RBandHighForS>;
    typename LlhjPipeline<RTuple, STuple, BandPredicate, RStore,
                          SStore>::Options options;
    options.nodes = nodes;
    LlhjPipeline<RTuple, STuple, BandPredicate, RStore, SStore> pipeline(
        options);
    RunStats stats = RunPipelineBench(pipeline, band, batch, duration);
    band_idx = stats.throughput_per_stream();
    std::printf("%-42s %18.0f\n", "llhj band join (range index)", band_idx);
  }
  std::printf("speedup range-index vs scan on band join: %.1fx\n",
              band_scan > 0 ? band_idx / band_scan : 0.0);
  json.Emit(JsonRow()
                .Str("workload", "band")
                .Int("nodes", nodes)
                .Int("window_tuples", window)
                .Num("llhj_scan_tput", band_scan)
                .Num("llhj_range_index_tput", band_idx)
                .Num("index_speedup",
                     band_scan > 0 ? band_idx / band_scan : 0.0));
  return 0;
}
