// Ablation: sharded multi-pipeline scale-out (DESIGN.md Section 13). The
// same equi workload runs through a ShardedJoinSession at 1, 2 and 4
// shards, hash-partitioned on the join key. Partitioning shrinks every
// shard's live window by the shard count, so the per-arrival scan work
// drops even before thread-level parallelism enters: the default config
// is scan-bound and non-threaded so the algorithmic speedup is visible on
// any host, including single-CPU CI runners. On a multi-socket machine add
// --threaded=1 --nodes=2 to stack pipeline parallelism (one shard per NUMA
// node) on top. Reported per shard count: wall time, throughput, merged
// latency percentiles (LatencyHistogram::Merge across the shard
// histograms) and the speedup over the 1-shard run.
//
// Correctness guard (the sharded-equivalence contract, in-bench): the
// result multiset must not depend on the shard count. Each run folds its
// results into an order-independent hash of (r_seq, s_seq); any divergence
// across shard counts — or a nonzero anomaly counter — exits 1.
#include <algorithm>
#include <cstdio>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "core/sharded_session.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

struct Config {
  int64_t tuples = 30'000;   ///< per stream
  int64_t window = 32'768;   ///< count window per stream (scan-bound)
  int nodes = 1;             ///< pipeline parallelism per shard
  int batch = 256;
  int64_t key_domain = 8192; ///< equi key domain (window/domain hits/probe)
  bool threaded = false;
  bool assert_equal = true;
  uint64_t seed = 42;
};

/// Order-independent digest of the result multiset: commutative sum of a
/// mixed (r_seq, s_seq) fingerprint, so shard interleaving cannot matter.
struct HashingHandler : OutputHandler<RTuple, STuple> {
  uint64_t hash = 0;
  uint64_t results = 0;
  void OnResult(const ResultMsg<RTuple, STuple>& m) override {
    hash += MixShardKey(m.r_seq * 0x9e3779b97f4a7c15ULL + MixShardKey(m.s_seq));
    ++results;
  }
};

struct Streams {
  std::vector<RTuple> rs;
  std::vector<STuple> ss;
  std::vector<Timestamp> ts_r;
  std::vector<Timestamp> ts_s;
};

Streams MakeStreams(const Config& c) {
  Streams out;
  Rng rng(c.seed);
  Timestamp ts = 0;
  for (int64_t i = 0; i < c.tuples; ++i) {
    RTuple r{};
    r.x = static_cast<int32_t>(rng.UniformInt(1, c.key_domain));
    out.rs.push_back(r);
    out.ts_r.push_back(ts++);
    STuple s{};
    s.a = static_cast<int32_t>(rng.UniformInt(1, c.key_domain));
    out.ss.push_back(s);
    out.ts_s.push_back(ts++);
  }
  return out;
}

struct ShardRunStats {
  double wall_s = 0.0;
  uint64_t results = 0;
  uint64_t hash = 0;
  uint64_t anomalies = 0;
  uint64_t shard_results_min = 0;
  uint64_t shard_results_max = 0;
  LatencyHistogram latency;
};

ShardRunStats Run(const Config& c, const Streams& in, int shards) {
  ShardedJoinConfig config;
  config.shard.algorithm = Algorithm::kLowLatency;
  config.shard.parallelism = c.nodes;
  config.shard.window_r = WindowSpec::Count(c.window);
  config.shard.window_s = WindowSpec::Count(c.window);
  config.shard.threaded = c.threaded;
  config.shards = shards;
  config.partition = PartitionPolicy::kHashKey;  // EquiPredicate shard keys

  ShardedJoinSession<RTuple, STuple, EquiPredicate> session(config);
  HashingHandler handler;
  session.AddQuery(EquiPredicate{}, &handler);

  const std::size_t chunk = static_cast<std::size_t>(c.batch);
  const int64_t start = NowNs();
  for (std::size_t i = 0; i < in.rs.size(); i += chunk) {
    const std::size_t n = std::min(chunk, in.rs.size() - i);
    session.PushR(std::span<const RTuple>(in.rs.data() + i, n),
                  std::span<const Timestamp>(in.ts_r.data() + i, n));
    session.PushS(std::span<const STuple>(in.ss.data() + i, n),
                  std::span<const Timestamp>(in.ts_s.data() + i, n));
    session.Poll();
  }
  session.FinishInput();
  const int64_t end = NowNs();

  ShardRunStats stats;
  stats.wall_s = NsToSec(end - start);
  stats.results = handler.results;
  stats.hash = handler.hash;
  stats.anomalies = session.pipeline_anomalies();
  stats.latency = session.merged_latency_histogram();
  stats.shard_results_min = session.shard_results(0);
  stats.shard_results_max = session.shard_results(0);
  for (int k = 1; k < session.shard_count(); ++k) {
    stats.shard_results_min =
        std::min(stats.shard_results_min, session.shard_results(k));
    stats.shard_results_max =
        std::max(stats.shard_results_max, session.shard_results(k));
  }
  session.Stop();
  return stats;
}

void EmitRow(JsonEmitter* json, const Config& c, int shards,
             const ShardRunStats& stats, double speedup) {
  const double rate =
      stats.wall_s <= 0 ? 0.0 : static_cast<double>(c.tuples) / stats.wall_s;
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(stats.hash));
  JsonRow row;
  row.Int("shards", shards)
      .Int("tuples_per_stream", c.tuples)
      .Int("window", c.window)
      .Int("nodes_per_shard", c.nodes)
      .Int("key_domain", c.key_domain)
      .Int("threaded", c.threaded ? 1 : 0)
      .Num("wall_s", stats.wall_s)
      .Num("tuples_per_sec", rate)
      .Num("latency_p50_ms", stats.latency.QuantileMs(0.50))
      .Num("latency_p95_ms", stats.latency.QuantileMs(0.95))
      .Num("latency_p99_ms", stats.latency.QuantileMs(0.99))
      .Num("latency_p999_ms", stats.latency.QuantileMs(0.999))
      .Int("results", static_cast<int64_t>(stats.results))
      .Str("result_hash", hash_hex)
      .Int("shard_results_min", static_cast<int64_t>(stats.shard_results_min))
      .Int("shard_results_max", static_cast<int64_t>(stats.shard_results_max))
      .Int("anomalies", static_cast<int64_t>(stats.anomalies))
      .Num("speedup_vs_1shard", speedup);
  json->Emit(row);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Config c;
  c.tuples = flags.Int("tuples", c.tuples);
  c.window = flags.Int("window", c.window);
  c.nodes = static_cast<int>(flags.Int("nodes", c.nodes));
  c.batch = static_cast<int>(flags.Int("batch", c.batch));
  c.key_domain = flags.Int("domain", c.key_domain);
  c.threaded = flags.Bool("threaded", c.threaded);
  c.assert_equal = flags.Bool("assert", c.assert_equal);
  c.seed = static_cast<uint64_t>(flags.Int("seed", 42));

  PrintHeader("ablation_sharding — multi-pipeline scale-out vs single shard",
              "ROADMAP: sharded multi-socket scale-out (DESIGN.md S.13)");
  std::printf("equi workload, count windows %lld/%lld, domain %lld, "
              "%d nodes/shard, batch %d, %s\n\n",
              static_cast<long long>(c.window),
              static_cast<long long>(c.window),
              static_cast<long long>(c.key_domain), c.nodes, c.batch,
              c.threaded ? "threaded" : "non-threaded");

  JsonEmitter json(flags, "ablation_sharding");
  const Streams in = MakeStreams(c);

  // Warm caches/allocator so the first measured run isn't penalised.
  Config warm = c;
  warm.tuples = std::min<int64_t>(c.tuples, 8'000);
  Streams warm_in = in;
  warm_in.rs.resize(static_cast<std::size_t>(warm.tuples));
  warm_in.ss.resize(static_cast<std::size_t>(warm.tuples));
  warm_in.ts_r.resize(static_cast<std::size_t>(warm.tuples));
  warm_in.ts_s.resize(static_cast<std::size_t>(warm.tuples));
  (void)Run(warm, warm_in, 1);

  const int shard_counts[] = {1, 2, 4};
  std::vector<ShardRunStats> runs;
  for (int shards : shard_counts) runs.push_back(Run(c, in, shards));

  std::printf("  %-7s  %10s  %14s  %9s  %9s  %10s  %8s\n", "shards",
              "wall(s)", "tuples/s", "p50(ms)", "p99(ms)", "results",
              "speedup");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ShardRunStats& s = runs[i];
    const double speedup =
        s.wall_s > 0 && i > 0 ? runs[0].wall_s / s.wall_s : 1.0;
    EmitRow(&json, c, shard_counts[i], s, speedup);
    std::printf("  %-7d  %10.3f  %14.0f  %9.3f  %9.3f  %10llu  %7.2fx\n",
                shard_counts[i], s.wall_s,
                static_cast<double>(c.tuples) / s.wall_s,
                s.latency.QuantileMs(0.50), s.latency.QuantileMs(0.99),
                static_cast<unsigned long long>(s.results), speedup);
  }

  // Equivalence guard: same results whatever the shard count.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].anomalies != 0) {
      std::printf("ERROR: %llu pipeline anomalies at %d shards\n",
                  static_cast<unsigned long long>(runs[i].anomalies),
                  shard_counts[i]);
      return 1;
    }
    if (c.assert_equal && (runs[i].hash != runs[0].hash ||
                           runs[i].results != runs[0].results)) {
      std::printf("ERROR: result set diverged at %d shards "
                  "(hash %016llx vs %016llx, %llu vs %llu results)\n",
                  shard_counts[i],
                  static_cast<unsigned long long>(runs[i].hash),
                  static_cast<unsigned long long>(runs[0].hash),
                  static_cast<unsigned long long>(runs[i].results),
                  static_cast<unsigned long long>(runs[0].results));
      return 1;
    }
  }
  std::printf("\nresult multiset identical across 1/2/4 shards "
              "(hash %016llx, %llu results)\n",
              static_cast<unsigned long long>(runs[0].hash),
              static_cast<unsigned long long>(runs[0].results));
  return 0;
}
