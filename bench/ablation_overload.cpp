// Overload-control ablation (DESIGN.md Section 12): throughput, tail
// latency, and shed-rate curves for every OverloadPolicy at 1x / 2x / 10x
// offered load on the paced LLHJ pipeline.
//
// The workload uses TIME windows, so the offered-load multiplier scales
// both the arrival rate and the live window: probe work per second grows
// quadratically with the multiplier, which guarantees the 10x cell
// saturates the pipeline on any host where the 1x cell is comfortable.
//
// Expected shape:
//   * 1x (sub-saturation): zero sheds and zero anomalies under EVERY
//     policy — admission control must be inert when the budget is met;
//   * 10x with `none`: bounded queues backpressure the paced feeder and
//     result latency grows without bound (p99 far past the budget);
//   * 10x with `drop_newest` / `sample`: the controller sheds at ingest
//     and p99 stays near the configured budget;
//   * every cell: in-band loss accounting is exact (sheds == losses
//     reported via kLossPunctuation, per side).
//
// --assert=1 turns the sub-saturation and accounting expectations into
// hard failures (exit 1); --assert_tail=1 additionally enforces the 10x
// tail separation (needs the full duration to saturate — the CI leg).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

struct Cell {
  std::string policy;
  double load = 1.0;
  RunStats stats;
};

int g_failures = 0;

void Check(bool ok, const char* what, const Cell& cell) {
  if (ok) return;
  ++g_failures;
  std::printf("ASSERT FAILED [%s @ %.0fx]: %s\n", cell.policy.c_str(),
              cell.load, what);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double window_s = flags.Double("window", 8.0);
  const double base_rate = flags.Double("base_rate", 2000.0);
  const int nodes = static_cast<int>(flags.Int("nodes", 2));
  const int batch = static_cast<int>(flags.Int("batch", 64));
  const double duration = flags.Double("duration", 6.0);
  const double budget_ms = flags.Double("budget_ms", 100.0);
  const uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));
  const bool do_assert = flags.Bool("assert", false);
  const bool assert_tail = flags.Bool("assert_tail", false);
  // p99 "within budget" allows slack for control lag: admission is a
  // feedback loop with no egress deadline, so admitted tuples can overshoot
  // by the loop's settling time (the latency EWMA trails reality by one
  // end-to-end delay, and the per-message service cost keeps growing as the
  // time windows fill). `sample` additionally keeps 1-in-N over-budget
  // tuples BY DESIGN, so it oscillates around the budget rather than under
  // it. The assertion's point is containment — p99 pinned to the budget's
  // scale — versus the baseline's unbounded growth (>20x budget here).
  const double slack = flags.Double("p99_slack", 2.0);

  PrintHeader("ablation_overload — latency-budget shedding vs backpressure",
              "DESIGN.md Section 12 (overload control)");
  std::printf("windows %.0f s (time), base rate %.0f/s/stream, %d nodes, "
              "batch %d, budget %.0f ms, %.1f s per cell\n",
              window_s, base_rate, nodes, batch, budget_ms, duration);

  const std::vector<std::string> policies = {"none", "drop_newest",
                                             "drop_oldest", "sample"};
  const std::vector<double> loads = {1.0, 2.0, 10.0};

  JsonEmitter json(flags, "ablation_overload");
  std::vector<Cell> cells;
  std::printf("\n  %-12s %5s  %10s  %9s  %9s  %9s  %7s  %7s\n", "policy",
              "load", "tput/s", "p50(ms)", "p99(ms)", "max(ms)", "shed",
              "lost");
  for (const auto& policy_name : policies) {
    for (double load : loads) {
      Workload workload;
      workload.wr = WindowSpec::Time(static_cast<int64_t>(window_s * 1e6));
      workload.ws = WindowSpec::Time(static_cast<int64_t>(window_s * 1e6));
      workload.rate_per_stream = base_rate * load;
      workload.paced = true;
      workload.seed = seed;

      AdmissionController::Options adm;
      adm.budget_ns = static_cast<int64_t>(budget_ms * 1e6);
      adm.policy = ParseOverloadPolicy(policy_name);
      AdmissionController admission(adm);

      Cell cell;
      cell.policy = policy_name;
      cell.load = load;
      cell.stats = RunLlhjBench(nodes, workload, batch, duration,
                                /*punctuate=*/true, /*sort_output=*/false,
                                &admission);
      const RunStats& s = cell.stats;
      std::printf("  %-12s %4.0fx  %10.0f  %9.3f  %9.3f  %9.3f  %7llu  "
                  "%7llu\n",
                  policy_name.c_str(), load, s.throughput_per_stream(),
                  s.latency_hist.QuantileMs(0.50),
                  s.latency_hist.QuantileMs(0.99), s.latency_ms.max(),
                  static_cast<unsigned long long>(s.shed_r + s.shed_s),
                  static_cast<unsigned long long>(s.lost_reported_r +
                                                  s.lost_reported_s));

      JsonRow row;
      row.Str("policy", policy_name)
          .Num("load_multiplier", load)
          .Num("rate_per_stream", workload.rate_per_stream)
          .Num("window_s", window_s)
          .Int("nodes", nodes)
          .Int("batch", batch)
          .Num("budget_ms", budget_ms);
      json.Emit(OverloadFields(StatsFields(row, s), s));
      cells.push_back(std::move(cell));
    }
  }

  if (do_assert) {
    for (const Cell& cell : cells) {
      const RunStats& s = cell.stats;
      // Exact in-band loss accounting, every cell: sheds at ingest ==
      // losses reported through kLossPunctuation, per side.
      Check(s.shed_r == s.lost_reported_r, "shed_r != lost_reported_r", cell);
      Check(s.shed_s == s.lost_reported_s, "shed_s != lost_reported_s", cell);
      Check(s.anomalies == 0, "pipeline anomalies", cell);
      Check(s.results > 0, "no results collected", cell);
      // Sub-saturation: admission control must be inert under every policy.
      if (cell.load <= 1.0) {
        Check(s.shed_r + s.shed_s == 0, "sheds at sub-saturation load", cell);
      }
    }
  }
  if (assert_tail) {
    for (const Cell& cell : cells) {
      if (cell.load < 10.0) continue;
      const double p99 = cell.stats.latency_hist.QuantileMs(0.99);
      if (cell.policy == "none") {
        Check(p99 > budget_ms,
              "baseline backpressure p99 did not exceed the budget "
              "(10x load failed to saturate this host?)",
              cell);
      } else if (cell.policy == "drop_newest" || cell.policy == "sample") {
        Check(p99 <= budget_ms * slack, "shedding p99 exceeds budget*slack",
              cell);
        Check(cell.stats.shed_r + cell.stats.shed_s > 0,
              "no sheds at 10x overload", cell);
      }
    }
  }
  if (g_failures > 0) {
    std::printf("\n%d assertion(s) failed\n", g_failures);
    return 1;
  }
  if (do_assert || assert_tail) std::printf("\nall assertions passed\n");
  return 0;
}
