// Figure 21 — maximum buffer occupancy (in tuples) of the downstream
// sorting operator when it consumes the *punctuated* LLHJ result stream,
// with increasing core counts.
//
// Expected shape (paper): tens of thousands of tuples at most — versus the
// ~30 million tuples a sorter would need to buffer without punctuations
// (Section 6.2's back-of-envelope for the paper's configuration). We also
// print that no-punctuation estimate for the scaled configuration.
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double window_s = flags.Double("window", 4.0);
  const double rate = flags.Double("rate", 3000.0);
  const double duration = flags.Double("duration", 8.0);
  const int batch = static_cast<int>(flags.Int("batch", 64));
  std::vector<int> node_counts;
  {
    const std::string list = flags.Str("nodes", "1,2,4,8");
    std::size_t pos = 0;
    while (pos < list.size()) {
      node_counts.push_back(std::atoi(list.c_str() + pos));
      const auto comma = list.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  JsonEmitter json(flags, "fig21_sorter_buffer");
  PrintHeader("fig21_sorter_buffer — max sort buffer with punctuations",
              "Figure 21");
  std::printf("windows %.0f s, rate %.0f tuples/s/stream, batch %d\n",
              window_s, rate, batch);

  std::printf("\n%6s  %16s  %14s  %14s\n", "nodes", "max |buffer|",
              "results", "punctuations");
  double output_rate = 0;
  for (int nodes : node_counts) {
    Workload workload;
    workload.wr = WindowSpec::Time(static_cast<int64_t>(window_s * 1e6));
    workload.ws = workload.wr;
    workload.rate_per_stream = rate;
    workload.paced = true;

    RunStats stats = RunLlhjBench(nodes, workload, batch, duration,
                                  /*punctuate=*/true, /*sort_output=*/true);
    std::printf("%6d  %16zu  %14llu  %14llu\n", nodes,
                stats.max_sorter_buffer,
                static_cast<unsigned long long>(stats.results),
                static_cast<unsigned long long>(stats.punctuations));
    json.Emit(JsonRow()
                  .Int("nodes", nodes)
                  .Num("window_s", window_s)
                  .Num("rate_per_stream", rate)
                  .Int("batch", batch)
                  .Int("max_sorter_buffer",
                       static_cast<int64_t>(stats.max_sorter_buffer))
                  .Int("results", static_cast<int64_t>(stats.results))
                  .Int("punctuations",
                       static_cast<int64_t>(stats.punctuations)));
    output_rate = stats.results / stats.wall_seconds;
  }

  // Without punctuations a sorter must buffer ~latency-bound x output rate;
  // for HSJ that is the window-scale bound of Section 3.1.
  const double hsj_delay_s = HsjMaxLatencyBound(window_s, window_s);
  std::printf("\nwithout punctuations (HSJ + sort, Section 6.2 estimate): "
              "~%.0f tuples buffered (%.1f s delay x %.0f results/s)\n",
              hsj_delay_s * output_rate, hsj_delay_s, output_rate);
  return 0;
}
