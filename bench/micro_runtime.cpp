// Microbenchmarks of the runtime substrate (google-benchmark): FIFO channel
// operations (the paper cites sub-microsecond core-to-core hops [4]),
// window scans, hash-index probes, and store maintenance.
#include <benchmark/benchmark.h>

#include <thread>

#include "common/rng.hpp"
#include "common/schema.hpp"
#include "llhj/store.hpp"
#include "runtime/spsc_queue.hpp"
#include "stream/generator.hpp"
#include "stream/message.hpp"

namespace sjoin {
namespace {

void BM_SpscPushPop(benchmark::State& state) {
  SpscQueue<FlowMsg<RTuple>> queue(1024);
  FlowMsg<RTuple> msg;
  FlowMsg<RTuple> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.TryPush(msg));
    benchmark::DoNotOptimize(queue.TryPop(&out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPushPop);

void BM_SpscCrossThreadHop(benchmark::State& state) {
  // Round-trip ping/pong across two threads approximates 2x the one-hop
  // channel latency cited from Baumann et al. [4].
  SpscQueue<uint64_t> ping(64);
  SpscQueue<uint64_t> pong(64);
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    uint64_t v;
    while (!stop.load(std::memory_order_acquire)) {
      if (ping.TryPop(&v)) {
        while (!pong.TryPush(v)) {
        }
      }
    }
  });
  uint64_t v = 0;
  for (auto _ : state) {
    while (!ping.TryPush(v)) {
    }
    uint64_t r;
    while (!pong.TryPop(&r)) {
    }
    benchmark::DoNotOptimize(r);
  }
  stop.store(true, std::memory_order_release);
  echo.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscCrossThreadHop);

void BM_WindowScanBand(benchmark::State& state) {
  const int64_t window = state.range(0);
  Rng rng(1);
  VectorStore<STuple> store;
  for (int64_t i = 0; i < window; ++i) {
    Stamped<STuple> s{MakeBandS(rng), static_cast<Seq>(i), 0, 0};
    store.Insert(s, false);
  }
  BandPredicate pred;
  RTuple r = MakeBandR(rng);
  uint64_t matches = 0;
  for (auto _ : state) {
    store.ForEach(r, [&](const StoreEntry<STuple>& e) {
      matches += pred(r, e.tuple.value) ? 1 : 0;
    });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_WindowScanBand)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_HashProbeEqui(benchmark::State& state) {
  const int64_t window = state.range(0);
  Rng rng(1);
  HashStore<STuple, SKey, RKey> store;
  for (int64_t i = 0; i < window; ++i) {
    Stamped<STuple> s{MakeBandS(rng), static_cast<Seq>(i), 0, 0};
    store.Insert(s, false);
  }
  EquiPredicate pred;
  RTuple r = MakeBandR(rng);
  uint64_t matches = 0;
  for (auto _ : state) {
    store.ForEach(r, [&](const StoreEntry<STuple>& e) {
      matches += pred(r, e.tuple.value) ? 1 : 0;
    });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashProbeEqui)->Arg(16384)->Arg(131072);

void BM_StoreInsertEraseCycle(benchmark::State& state) {
  Rng rng(1);
  VectorStore<STuple> store;
  Seq seq = 0;
  for (int i = 0; i < 1024; ++i) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, false);
  }
  Seq oldest = 0;
  for (auto _ : state) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, false);
    benchmark::DoNotOptimize(store.EraseSeq(oldest++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreInsertEraseCycle);

void BM_HashStoreInsertEraseCycle(benchmark::State& state) {
  Rng rng(1);
  HashStore<STuple, SKey, RKey> store;
  Seq seq = 0;
  for (int i = 0; i < 1024; ++i) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, false);
  }
  Seq oldest = 0;
  for (auto _ : state) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, false);
    benchmark::DoNotOptimize(store.EraseSeq(oldest++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashStoreInsertEraseCycle);

}  // namespace
}  // namespace sjoin
