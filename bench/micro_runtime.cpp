// Microbenchmarks of the runtime substrate (google-benchmark): FIFO channel
// operations (the paper cites sub-microsecond core-to-core hops [4]),
// window scans, hash-index probes, and store maintenance.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/schema.hpp"
#include "common/seq_ring.hpp"
#include "llhj/store.hpp"
#include "runtime/spsc_queue.hpp"
#include "stream/generator.hpp"
#include "stream/message.hpp"

namespace sjoin {
namespace {

void BM_SpscPushPop(benchmark::State& state) {
  SpscQueue<FlowMsg<RTuple>> queue(1024);
  FlowMsg<RTuple> msg;
  FlowMsg<RTuple> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.TryPush(msg));
    benchmark::DoNotOptimize(queue.TryPop(&out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscPushPop);

void BM_SpscCrossThreadHop(benchmark::State& state) {
  // Round-trip ping/pong across two threads approximates 2x the one-hop
  // channel latency cited from Baumann et al. [4].
  SpscQueue<uint64_t> ping(64);
  SpscQueue<uint64_t> pong(64);
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    uint64_t v;
    while (!stop.load(std::memory_order_acquire)) {
      if (ping.TryPop(&v)) {
        while (!pong.TryPush(v)) {
        }
      }
    }
  });
  uint64_t v = 0;
  for (auto _ : state) {
    while (!ping.TryPush(v)) {
    }
    uint64_t r;
    while (!pong.TryPop(&r)) {
    }
    benchmark::DoNotOptimize(r);
  }
  stop.store(true, std::memory_order_release);
  echo.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscCrossThreadHop);

// -- SPSC transfer: single-message vs burst mode. ----------------------------
//
// The pair below is the referee for the burst-transport change: the same
// number of messages moved through the channel one at a time (TryPush +
// Front/PopFront — an acquire/release pair per element, the seed's node hot
// path) versus in bursts (TryPushBurst + PeekBurst/ConsumeBurst — one index
// update per run). Same-thread so the comparison measures the queue-op cost
// itself and is meaningful on single-core CI hosts too. Compare
// items_per_second: burst mode must stay >= 2x single mode.

void BM_SpscTransferSingle(benchmark::State& state) {
  constexpr std::size_t kBatch = 64;
  SpscQueue<FlowMsg<RTuple>> queue(1024);
  FlowMsg<RTuple> msg;
  uint64_t acc = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) queue.TryPush(msg);
    for (std::size_t i = 0; i < kBatch; ++i) {
      acc += queue.Front()->seq;
      queue.PopFront();
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SpscTransferSingle);

void BM_SpscTransferBurst(benchmark::State& state) {
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  SpscQueue<FlowMsg<RTuple>> queue(1024);
  std::vector<FlowMsg<RTuple>> batch(burst);
  uint64_t acc = 0;
  for (auto _ : state) {
    queue.TryPushBurst(batch.data(), burst);
    FlowMsg<RTuple>* first = nullptr;
    std::size_t n;
    while ((n = queue.PeekBurst(&first)) != 0) {
      for (std::size_t i = 0; i < n; ++i) acc += first[i].seq;
      queue.ConsumeBurst(n);
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(burst));
}
BENCHMARK(BM_SpscTransferBurst)->Arg(16)->Arg(64)->Arg(256);

// Cross-thread variants of the same pair. On a multicore host these show
// the cache-line ping-pong amortization too; on a single-core host both
// are timeslice-bound and converge.

void BM_SpscCrossThreadTransferSingle(benchmark::State& state) {
  SpscQueue<FlowMsg<RTuple>> queue(1024);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    FlowMsg<RTuple> msg;
    while (!stop.load(std::memory_order_relaxed)) {
      queue.TryPush(msg);
    }
  });
  FlowMsg<RTuple> out;
  uint64_t items = 0;
  for (auto _ : state) {
    while (!queue.TryPop(&out)) {
    }
    ++items;
  }
  stop.store(true, std::memory_order_relaxed);
  producer.join();
  state.SetItemsProcessed(static_cast<int64_t>(items));
}
BENCHMARK(BM_SpscCrossThreadTransferSingle);

void BM_SpscCrossThreadTransferBurst(benchmark::State& state) {
  const std::size_t burst = static_cast<std::size_t>(state.range(0));
  SpscQueue<FlowMsg<RTuple>> queue(1024);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    std::vector<FlowMsg<RTuple>> batch(burst);
    while (!stop.load(std::memory_order_relaxed)) {
      std::size_t pushed = 0;
      while (pushed < burst && !stop.load(std::memory_order_relaxed)) {
        pushed += queue.TryPushBurst(batch.data() + pushed, burst - pushed);
      }
    }
  });
  uint64_t items = 0;
  for (auto _ : state) {
    FlowMsg<RTuple>* first = nullptr;
    std::size_t n;
    while ((n = queue.PeekBurst(&first)) == 0) {
    }
    benchmark::DoNotOptimize(first);
    queue.ConsumeBurst(n);
    items += n;
  }
  stop.store(true, std::memory_order_relaxed);
  producer.join();
  state.SetItemsProcessed(static_cast<int64_t>(items));
}
BENCHMARK(BM_SpscCrossThreadTransferBurst)->Arg(64);

void BM_WindowScanBand(benchmark::State& state) {
  const int64_t window = state.range(0);
  Rng rng(1);
  VectorStore<STuple> store;
  for (int64_t i = 0; i < window; ++i) {
    Stamped<STuple> s{MakeBandS(rng), static_cast<Seq>(i), 0, 0};
    store.Insert(s, false);
  }
  BandPredicate pred;
  RTuple r = MakeBandR(rng);
  uint64_t matches = 0;
  for (auto _ : state) {
    store.ForEach(r, [&](const StoreEntry<STuple>& e) {
      matches += pred(r, e.tuple.value) ? 1 : 0;
    });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_WindowScanBand)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_HashProbeEqui(benchmark::State& state) {
  const int64_t window = state.range(0);
  Rng rng(1);
  HashStore<STuple, SKey, RKey> store;
  for (int64_t i = 0; i < window; ++i) {
    Stamped<STuple> s{MakeBandS(rng), static_cast<Seq>(i), 0, 0};
    store.Insert(s, false);
  }
  EquiPredicate pred;
  RTuple r = MakeBandR(rng);
  uint64_t matches = 0;
  for (auto _ : state) {
    store.ForEach(r, [&](const StoreEntry<STuple>& e) {
      matches += pred(r, e.tuple.value) ? 1 : 0;
    });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashProbeEqui)->Arg(16384)->Arg(131072);

void BM_StoreInsertEraseCycle(benchmark::State& state) {
  Rng rng(1);
  VectorStore<STuple> store;
  Seq seq = 0;
  for (int i = 0; i < 1024; ++i) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, false);
  }
  Seq oldest = 0;
  for (auto _ : state) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, false);
    benchmark::DoNotOptimize(store.EraseSeq(oldest++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreInsertEraseCycle);

void BM_HashStoreInsertEraseCycle(benchmark::State& state) {
  Rng rng(1);
  HashStore<STuple, SKey, RKey> store;
  Seq seq = 0;
  for (int i = 0; i < 1024; ++i) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, false);
  }
  Seq oldest = 0;
  for (auto _ : state) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, false);
    benchmark::DoNotOptimize(store.EraseSeq(oldest++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashStoreInsertEraseCycle);

// Steady-state LLHJ home-node maintenance: each cycle is one arrival
// (insert expedited), one expedition-end (clear, `lag` entries behind the
// newest — the pipeline-transit lag), and one window expiry (erase oldest).
// The seed ClearExpedited walked the whole cleared prefix (O(window)); the
// ring store walks only the expedited suffix (O(lag)), so this bench should
// be window-size-insensitive.
void BM_VectorStoreExpeditionCycle(benchmark::State& state) {
  const int64_t window = state.range(0);
  constexpr Seq kLag = 16;
  Rng rng(1);
  VectorStore<STuple> store;
  Seq seq = 0;
  for (int64_t i = 0; i < window; ++i) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, true);
  }
  Seq clear_seq = 0;
  while (clear_seq + kLag < seq) store.ClearExpedited(clear_seq++);
  Seq oldest = 0;
  for (auto _ : state) {
    store.Insert(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0}, true);
    benchmark::DoNotOptimize(store.ClearExpedited(clear_seq++));
    benchmark::DoNotOptimize(store.EraseSeq(oldest++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VectorStoreExpeditionCycle)->Arg(1024)->Arg(16384)->Arg(131072);

// IWS maintenance: append a forwarded tuple, erase an acked one `lag`
// entries behind (FIFO acknowledgements). The seed used a deque with a
// linear erase scan; SeqRing resolves the seq through a flat index.
void BM_SeqRingAckCycle(benchmark::State& state) {
  const int64_t lag = state.range(0);
  SeqRing<Stamped<STuple>> iws;
  Rng rng(1);
  Seq seq = 0;
  for (int64_t i = 0; i < lag; ++i) {
    iws.PushBack(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0});
  }
  Seq acked = 0;
  for (auto _ : state) {
    iws.PushBack(Stamped<STuple>{MakeBandS(rng), seq++, 0, 0});
    benchmark::DoNotOptimize(iws.Erase(acked++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqRingAckCycle)->Arg(16)->Arg(256)->Arg(4096);

// Point ops of the flat seq-keyed table vs the std::unordered containers it
// replaced (tombstones, seq indexes).
void BM_FlatSetTombstoneCycle(benchmark::State& state) {
  FlatSet<Seq> set;
  Seq seq = 0;
  for (int i = 0; i < 1024; ++i) set.Insert(seq++);
  Seq oldest = 0;
  for (auto _ : state) {
    set.Insert(seq++);
    benchmark::DoNotOptimize(set.Erase(oldest++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatSetTombstoneCycle);

}  // namespace
}  // namespace sjoin
