// Figure 19 — latency distribution of *low-latency* handshake join over
// wall-clock time for the two window configurations of Figure 5, with the
// default batch size of 64.
//
// Expected shape (paper): average latency below ~10 ms and maxima around
// 30 ms, insensitive to the window configuration — three orders of
// magnitude below Figure 5 — dominated by the driver's batching delay
// (batch 64 at rate 2λ fills every 64/(2 λ) seconds).
// Additionally benchmarks the session Push API on the same workload: the
// batch-first PushR/PushS(span) overloads against the per-tuple loop
// (config "push_tuple" vs "push_batch"), at maximum rate against
// backpressure. The redesign's bar: batch ingestion must be no slower.
#include <cstdio>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "core/join_session.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

void RunConfig(const char* label, double wr_s, double ws_s, double rate,
               int nodes, int batch, double duration_s, uint64_t seed,
               JsonEmitter* json) {
  Workload workload;
  workload.wr = WindowSpec::Time(static_cast<int64_t>(wr_s * 1e6));
  workload.ws = WindowSpec::Time(static_cast<int64_t>(ws_s * 1e6));
  workload.rate_per_stream = rate;
  workload.paced = true;
  workload.seed = seed;

  const double batch_interval_ms = batch / (2.0 * rate) * 1e3;
  std::printf("\n-- Fig 19(%s): |W_R| = %.0f s, |W_S| = %.0f s, batch %d "
              "(fills every ~%.1f ms) --\n",
              label, wr_s, ws_s, batch, batch_interval_ms);

  RunStats stats = RunLlhjBench(nodes, workload, batch, duration_s);
  PrintLatencySeries(stats);
  std::printf("overall: avg %.3f ms, max %.3f ms, stddev %.3f ms, "
              "%llu results\n",
              stats.latency_ms.mean(), stats.latency_ms.max(),
              stats.latency_ms.stddev(),
              static_cast<unsigned long long>(stats.results));
  std::printf("tail:    p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, "
              "p99.9 %.3f ms\n",
              stats.latency_hist.QuantileMs(0.50),
              stats.latency_hist.QuantileMs(0.95),
              stats.latency_hist.QuantileMs(0.99),
              stats.latency_hist.QuantileMs(0.999));
  JsonRow row;
  row.Str("config", label)
      .Num("wr_s", wr_s)
      .Num("ws_s", ws_s)
      .Num("rate_per_stream", rate)
      .Int("nodes", nodes)
      .Int("batch", batch);
  json->Emit(StatsFields(row, stats));
}

/// Drives the fig19 workload (band join, time windows) through the
/// JoinSession Push API at max rate; `batched` selects span vs per-tuple
/// ingestion. Event time advances at the paced rate, so the live window
/// matches the paced experiment; wall time measures ingestion throughput.
void RunPushApi(bool batched, double window_s, double rate, int nodes,
                int batch, int64_t tuples, uint64_t seed, JsonEmitter* json) {
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = nodes;
  config.window_r = WindowSpec::Time(static_cast<int64_t>(window_s * 1e6));
  config.window_s = WindowSpec::Time(static_cast<int64_t>(window_s * 1e6));
  config.threaded = true;

  CountingHandler<RTuple, STuple> counter;
  LatencyRecorder<RTuple, STuple> latency(&counter);
  JoinSession<RTuple, STuple, BandPredicate> session(config);
  session.AddQuery(BandPredicate{}, &latency);

  // Pre-generate the streams so generation cost stays out of the loop.
  Rng rng(seed);
  std::vector<RTuple> rs;
  std::vector<STuple> ss;
  std::vector<Timestamp> ts_r;
  std::vector<Timestamp> ts_s;
  const int64_t period = static_cast<int64_t>(1e6 / (2.0 * rate) + 0.5);
  Timestamp ts = 0;
  for (int64_t i = 0; i < tuples; ++i) {
    rs.push_back(MakeBandR(rng));
    ts_r.push_back(ts);
    ts += period;
    ss.push_back(MakeBandS(rng));
    ts_s.push_back(ts);
    ts += period;
  }

  // Both modes feed the identical stream — alternating chunks of R and S —
  // so their result sets are comparable; only the ingestion API differs.
  const std::size_t chunk = static_cast<std::size_t>(batch);
  const int64_t start = NowNs();
  for (std::size_t i = 0; i < rs.size(); i += chunk) {
    const std::size_t n = std::min(chunk, rs.size() - i);
    if (batched) {
      session.PushR(std::span<const RTuple>(rs.data() + i, n),
                    std::span<const Timestamp>(ts_r.data() + i, n));
      session.PushS(std::span<const STuple>(ss.data() + i, n),
                    std::span<const Timestamp>(ts_s.data() + i, n));
    } else {
      for (std::size_t k = 0; k < n; ++k) session.PushR(rs[i + k], ts_r[i + k]);
      for (std::size_t k = 0; k < n; ++k) session.PushS(ss[i + k], ts_s[i + k]);
    }
    session.Poll();
  }
  session.FinishInput();
  const int64_t end = NowNs();
  session.Stop();

  const double wall_s = NsToSec(end - start);
  const double tput = static_cast<double>(tuples) / wall_s;
  std::printf("push_%s: %lld tuples/stream in %.3f s -> %.0f tuples/s/stream"
              " (%llu results, drain latency avg %.3f ms)\n",
              batched ? "batch" : "tuple", static_cast<long long>(tuples),
              wall_s, tput,
              static_cast<unsigned long long>(session.results_collected()),
              latency.overall().mean());
  JsonRow row;
  row.Str("config", batched ? "push_batch" : "push_tuple")
      .Num("window_s", window_s)
      .Int("nodes", nodes)
      .Int("batch", batch)
      .Int("tuples_per_stream", tuples)
      .Num("wall_s", wall_s)
      .Num("tput_per_stream", tput)
      .Num("latency_avg_ms", latency.overall().mean())
      .Num("latency_max_ms", latency.overall().max())
      .Num("latency_p50_ms", latency.histogram().QuantileMs(0.50))
      .Num("latency_p95_ms", latency.histogram().QuantileMs(0.95))
      .Num("latency_p99_ms", latency.histogram().QuantileMs(0.99))
      .Num("latency_p999_ms", latency.histogram().QuantileMs(0.999))
      .Int("results", static_cast<int64_t>(session.results_collected()))
      .Int("anomalies", static_cast<int64_t>(session.pipeline_anomalies()));
  json->Emit(row);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double window_s = flags.Double("window", 8.0);
  const double rate = flags.Double("rate", 3000.0);
  const int nodes = static_cast<int>(flags.Int("nodes", 4));
  const int batch = static_cast<int>(flags.Int("batch", 64));
  const double duration = flags.Double("duration", 20.0);
  const uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));

  PrintHeader("fig19_llhj_latency — LLHJ latency over time, batch 64",
              "Figure 19 (a), (b)");
  std::printf("scaling: paper windows 200 s/100 s -> %.0f s/%.0f s "
              "(latency should be window-insensitive either way)\n",
              window_s, window_s / 2);

  JsonEmitter json(flags, "fig19_llhj_latency");
  RunConfig("a", window_s, window_s, rate, nodes, batch, duration, seed,
            &json);
  RunConfig("b", window_s / 2, window_s, rate, nodes, batch, duration, seed,
            &json);

  // Session Push API on the same workload: batch-first spans vs the
  // per-tuple loop, max rate (batch ingestion must be no slower).
  // --push_batch is the span/chunk size, independent of the feeder batch.
  const int64_t push_tuples = flags.Int("push_tuples", 20'000);
  const int push_batch = static_cast<int>(flags.Int("push_batch", 64));
  std::printf("\n-- Push API (max rate, window %.0f s, chunk %d) --\n",
              window_s, push_batch);
  RunPushApi(/*batched=*/false, window_s, rate, nodes, push_batch,
             push_tuples, seed, &json);
  RunPushApi(/*batched=*/true, window_s, rate, nodes, push_batch,
             push_tuples, seed, &json);
  return 0;
}
