// Figure 19 — latency distribution of *low-latency* handshake join over
// wall-clock time for the two window configurations of Figure 5, with the
// default batch size of 64.
//
// Expected shape (paper): average latency below ~10 ms and maxima around
// 30 ms, insensitive to the window configuration — three orders of
// magnitude below Figure 5 — dominated by the driver's batching delay
// (batch 64 at rate 2λ fills every 64/(2 λ) seconds).
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

void RunConfig(const char* label, double wr_s, double ws_s, double rate,
               int nodes, int batch, double duration_s, uint64_t seed,
               JsonEmitter* json) {
  Workload workload;
  workload.wr = WindowSpec::Time(static_cast<int64_t>(wr_s * 1e6));
  workload.ws = WindowSpec::Time(static_cast<int64_t>(ws_s * 1e6));
  workload.rate_per_stream = rate;
  workload.paced = true;
  workload.seed = seed;

  const double batch_interval_ms = batch / (2.0 * rate) * 1e3;
  std::printf("\n-- Fig 19(%s): |W_R| = %.0f s, |W_S| = %.0f s, batch %d "
              "(fills every ~%.1f ms) --\n",
              label, wr_s, ws_s, batch, batch_interval_ms);

  RunStats stats = RunLlhjBench(nodes, workload, batch, duration_s);
  PrintLatencySeries(stats);
  std::printf("overall: avg %.3f ms, max %.3f ms, stddev %.3f ms, "
              "%llu results\n",
              stats.latency_ms.mean(), stats.latency_ms.max(),
              stats.latency_ms.stddev(),
              static_cast<unsigned long long>(stats.results));
  JsonRow row;
  row.Str("config", label)
      .Num("wr_s", wr_s)
      .Num("ws_s", ws_s)
      .Num("rate_per_stream", rate)
      .Int("nodes", nodes)
      .Int("batch", batch);
  json->Emit(StatsFields(row, stats));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double window_s = flags.Double("window", 8.0);
  const double rate = flags.Double("rate", 3000.0);
  const int nodes = static_cast<int>(flags.Int("nodes", 4));
  const int batch = static_cast<int>(flags.Int("batch", 64));
  const double duration = flags.Double("duration", 20.0);
  const uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));

  PrintHeader("fig19_llhj_latency — LLHJ latency over time, batch 64",
              "Figure 19 (a), (b)");
  std::printf("scaling: paper windows 200 s/100 s -> %.0f s/%.0f s "
              "(latency should be window-insensitive either way)\n",
              window_s, window_s / 2);

  JsonEmitter json(flags, "fig19_llhj_latency");
  RunConfig("a", window_s, window_s, rate, nodes, batch, duration, seed,
            &json);
  RunConfig("b", window_s / 2, window_s, rate, nodes, batch, duration, seed,
            &json);
  return 0;
}
