// Ablation: multi-query sharing. Q concurrent band queries over the paper's
// band-join workload, run two ways:
//
//   independent — Q classic StreamJoiners, each owning its own pipeline,
//     windows and transport, each ingesting the full stream through the
//     per-tuple Push API (the pre-session deployment: one operator per
//     query);
//   shared — ONE JoinSession with Q registered queries: windows, transport
//     and driver are paid once, every window crossing evaluates all Q
//     predicates in a single store traversal, and ingestion uses the
//     batch-first span API (shared_tuple additionally isolates the sharing
//     effect from the batching effect).
//
// Aggregate throughput counts each query as a consumer of the full stream:
// aggregate = Q * (tuples per stream / wall seconds). The predicate work
// (Q predicates x window entries) is identical in all modes by necessity —
// what sharing removes is the Q-fold transport, window maintenance and
// store traversal.
//
// Defaults are sized for the single-core CI box (non-threaded, count
// windows); --threaded=1 runs the pipelines on their own threads instead.
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "core/join_session.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

struct Config {
  int64_t tuples = 20'000;  ///< per stream
  int64_t window = 512;     ///< count window per stream
  int nodes = 2;
  int batch = 64;
  int64_t key_domain = kPaperKeyDomain;
  bool threaded = false;
  uint64_t seed = 42;
};

JoinConfig SessionConfig(const Config& c) {
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = c.nodes;
  config.window_r = WindowSpec::Count(c.window);
  config.window_s = WindowSpec::Count(c.window);
  config.threaded = c.threaded;
  return config;
}

/// The Q predicates: the paper's band predicate, one per query. Distinct
/// widths keep the per-query result sets distinguishable without changing
/// the per-evaluation cost.
std::vector<BandPredicate> MakeQueries(int q) {
  std::vector<BandPredicate> preds;
  for (int i = 0; i < q; ++i) {
    preds.push_back(BandPredicate{10 + i, 10.0f + static_cast<float>(i)});
  }
  return preds;
}

struct Streams {
  std::vector<RTuple> rs;
  std::vector<STuple> ss;
  std::vector<Timestamp> ts_r;
  std::vector<Timestamp> ts_s;
};

Streams MakeStreams(const Config& c) {
  Streams out;
  Rng rng(c.seed);
  Timestamp ts = 0;
  for (int64_t i = 0; i < c.tuples; ++i) {
    out.rs.push_back(MakeBandR(rng, c.key_domain));
    out.ts_r.push_back(ts++);
    out.ss.push_back(MakeBandS(rng, c.key_domain));
    out.ts_s.push_back(ts++);
  }
  return out;
}

struct ModeStats {
  double wall_s = 0.0;
  std::vector<uint64_t> per_query;
  uint64_t anomalies = 0;
};

// All modes feed the SAME logical stream: alternating chunks of `batch`
// R tuples then `batch` S tuples (stream order is push order, so the
// interleaving is part of the stream definition — feeding chunk-ordered
// spans to one mode and tuple-interleaved order to another would compare
// different streams and legitimately differ at window boundaries). The
// modes differ only in API: spans vs a per-tuple loop over the chunks.

/// Q independent per-tuple StreamJoiners, fed round-robin per chunk so the
/// Q windows advance together (as Q separate operator deployments would).
ModeStats RunIndependent(const Config& c, int q, const Streams& in) {
  const auto preds = MakeQueries(q);
  std::vector<std::unique_ptr<CountingHandler<RTuple, STuple>>> handlers;
  std::vector<std::unique_ptr<StreamJoiner<RTuple, STuple, BandPredicate>>>
      joiners;
  for (int i = 0; i < q; ++i) {
    handlers.push_back(std::make_unique<CountingHandler<RTuple, STuple>>());
    joiners.push_back(
        std::make_unique<StreamJoiner<RTuple, STuple, BandPredicate>>(
            SessionConfig(c), handlers.back().get(), preds[i]));
  }
  const std::size_t chunk = static_cast<std::size_t>(c.batch);
  const int64_t start = NowNs();
  for (std::size_t i = 0; i < in.rs.size(); i += chunk) {
    const std::size_t n = std::min(chunk, in.rs.size() - i);
    for (auto& j : joiners) {
      for (std::size_t k = 0; k < n; ++k) j->PushR(in.rs[i + k], in.ts_r[i + k]);
      for (std::size_t k = 0; k < n; ++k) j->PushS(in.ss[i + k], in.ts_s[i + k]);
      j->Poll();
    }
  }
  for (auto& j : joiners) j->FinishInput();
  const int64_t end = NowNs();
  ModeStats stats;
  stats.wall_s = NsToSec(end - start);
  for (int i = 0; i < q; ++i) {
    stats.per_query.push_back(handlers[i]->count());
    stats.anomalies += joiners[i]->pipeline_anomalies();
  }
  return stats;
}

/// One shared session with Q queries; `batched` selects span vs per-tuple
/// ingestion.
ModeStats RunShared(const Config& c, int q, const Streams& in, bool batched) {
  const auto preds = MakeQueries(q);
  JoinSession<RTuple, STuple, BandPredicate> session(SessionConfig(c));
  std::vector<std::unique_ptr<CountingHandler<RTuple, STuple>>> handlers;
  for (int i = 0; i < q; ++i) {
    handlers.push_back(std::make_unique<CountingHandler<RTuple, STuple>>());
    session.AddQuery(preds[i], handlers.back().get());
  }
  const std::size_t chunk = static_cast<std::size_t>(c.batch);
  const int64_t start = NowNs();
  for (std::size_t i = 0; i < in.rs.size(); i += chunk) {
    const std::size_t n = std::min(chunk, in.rs.size() - i);
    if (batched) {
      session.PushR(std::span<const RTuple>(in.rs.data() + i, n),
                    std::span<const Timestamp>(in.ts_r.data() + i, n));
      session.PushS(std::span<const STuple>(in.ss.data() + i, n),
                    std::span<const Timestamp>(in.ts_s.data() + i, n));
    } else {
      for (std::size_t k = 0; k < n; ++k) {
        session.PushR(in.rs[i + k], in.ts_r[i + k]);
      }
      for (std::size_t k = 0; k < n; ++k) {
        session.PushS(in.ss[i + k], in.ts_s[i + k]);
      }
    }
    session.Poll();
  }
  session.FinishInput();
  const int64_t end = NowNs();
  ModeStats stats;
  stats.wall_s = NsToSec(end - start);
  for (int i = 0; i < q; ++i) {
    stats.per_query.push_back(
        session.results_collected(static_cast<QueryId>(i)));
  }
  stats.anomalies = session.pipeline_anomalies();
  return stats;
}

void EmitRow(JsonEmitter* json, const Config& c, const char* mode, int q,
             const ModeStats& stats, double speedup_vs_independent) {
  const double rate =
      stats.wall_s <= 0 ? 0.0 : static_cast<double>(c.tuples) / stats.wall_s;
  uint64_t results = 0;
  for (uint64_t n : stats.per_query) results += n;
  JsonRow row;
  row.Str("mode", mode)
      .Int("q", q)
      .Int("tuples_per_stream", c.tuples)
      .Int("window", c.window)
      .Int("nodes", c.nodes)
      .Int("batch", c.batch)
      .Int("threaded", c.threaded ? 1 : 0)
      .Num("wall_s", stats.wall_s)
      .Num("tuples_per_sec", rate)
      .Num("aggregate_tput", rate * q)
      .Int("results", static_cast<int64_t>(results))
      .Int("anomalies", static_cast<int64_t>(stats.anomalies));
  if (speedup_vs_independent > 0) {
    row.Num("speedup_vs_independent", speedup_vs_independent);
  }
  json->Emit(row);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Config c;
  c.tuples = flags.Int("tuples", c.tuples);
  c.window = flags.Int("window", c.window);
  c.nodes = static_cast<int>(flags.Int("nodes", c.nodes));
  c.batch = static_cast<int>(flags.Int("batch", c.batch));
  c.key_domain = flags.Int("domain", c.key_domain);
  c.threaded = flags.Bool("threaded", c.threaded);
  c.seed = static_cast<uint64_t>(flags.Int("seed", 42));

  PrintHeader("ablation_multi_query — shared session vs Q independent "
              "pipelines",
              "ROADMAP: multi-query sharing (paper Section 7 cost model)");
  std::printf("band workload, count windows %lld/%lld, %d nodes, batch %d, "
              "%s\n\n",
              static_cast<long long>(c.window),
              static_cast<long long>(c.window), c.nodes, c.batch,
              c.threaded ? "threaded" : "non-threaded");

  JsonEmitter json(flags, "ablation_multi_query");
  const Streams in = MakeStreams(c);

  std::printf("  %2s  %-12s  %10s  %14s  %14s  %8s\n", "Q", "mode",
              "wall(s)", "tuples/s", "aggregate/s", "speedup");
  for (int q : {1, 2, 4, 8}) {
    const ModeStats indep = RunIndependent(c, q, in);
    const ModeStats shared_tuple = RunShared(c, q, in, /*batched=*/false);
    const ModeStats shared_batch = RunShared(c, q, in, /*batched=*/true);

    // Correctness guard: every mode must produce identical per-query counts.
    for (int i = 0; i < q; ++i) {
      if (indep.per_query[static_cast<std::size_t>(i)] !=
              shared_batch.per_query[static_cast<std::size_t>(i)] ||
          indep.per_query[static_cast<std::size_t>(i)] !=
              shared_tuple.per_query[static_cast<std::size_t>(i)]) {
        std::printf("ERROR: result mismatch at Q=%d query %d "
                    "(independent %llu, shared_tuple %llu, shared_batch "
                    "%llu)\n",
                    q, i,
                    static_cast<unsigned long long>(
                        indep.per_query[static_cast<std::size_t>(i)]),
                    static_cast<unsigned long long>(
                        shared_tuple.per_query[static_cast<std::size_t>(i)]),
                    static_cast<unsigned long long>(
                        shared_batch.per_query[static_cast<std::size_t>(i)]));
        return 1;
      }
    }

    EmitRow(&json, c, "independent", q, indep, 0.0);
    EmitRow(&json, c, "shared_tuple", q, shared_tuple,
            indep.wall_s / shared_tuple.wall_s);
    EmitRow(&json, c, "shared_batch", q, shared_batch,
            indep.wall_s / shared_batch.wall_s);

    const double rate = static_cast<double>(c.tuples);
    std::printf("  %2d  %-12s  %10.3f  %14.0f  %14.0f  %8s\n", q,
                "independent", indep.wall_s, rate / indep.wall_s,
                q * rate / indep.wall_s, "1.00x");
    std::printf("  %2d  %-12s  %10.3f  %14.0f  %14.0f  %7.2fx\n", q,
                "shared_tuple", shared_tuple.wall_s, rate / shared_tuple.wall_s,
                q * rate / shared_tuple.wall_s,
                indep.wall_s / shared_tuple.wall_s);
    std::printf("  %2d  %-12s  %10.3f  %14.0f  %14.0f  %7.2fx\n", q,
                "shared_batch", shared_batch.wall_s,
                rate / shared_batch.wall_s, q * rate / shared_batch.wall_s,
                indep.wall_s / shared_batch.wall_s);
  }
  return 0;
}
