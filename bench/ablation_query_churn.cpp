// Ablation: live query churn (epoch-tagged query lifecycle, DESIGN.md
// Section 10). A long-running JoinSession serves Q resident band queries
// while extra queries are added and removed mid-run — the paper's
// long-running-deployment scenario where the operator stays up as the
// workload evolves. Two modes over the SAME stream:
//
//   frozen — the PR 2 behaviour: Q queries registered before the first
//     Push, membership never changes (the baseline the epoch machinery
//     must not slow down);
//   churn  — same Q resident queries, plus an extra query added and later
//     removed every `interval` chunks. Each mutation installs an epoch via
//     the in-band kEpochChange punctuation; after each install the bench
//     polls until session.drained_epoch() catches up and records the
//     install latency (punctuation round trip through both flows plus the
//     marker vacuum).
//
// Reported: steady-state throughput of both modes (churn/frozen ratio is
// the price of the lifecycle machinery), installs performed, and the
// avg/max install latency. Correctness guard: the resident queries live
// through every epoch, so their per-query result counts must be identical
// in both modes — enforced in-bench, exit 1 on mismatch.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "core/join_session.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

struct Config {
  int64_t tuples = 20'000;  ///< per stream
  int64_t window = 512;     ///< count window per stream
  int nodes = 2;
  int batch = 64;
  int resident = 4;         ///< queries that live for the whole run
  int interval = 32;        ///< chunks between lifecycle mutations
  int64_t key_domain = kPaperKeyDomain;
  bool threaded = false;
  uint64_t seed = 42;
};

JoinConfig SessionConfig(const Config& c) {
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = c.nodes;
  config.window_r = WindowSpec::Count(c.window);
  config.window_s = WindowSpec::Count(c.window);
  config.threaded = c.threaded;
  return config;
}

std::vector<BandPredicate> ResidentQueries(int q) {
  std::vector<BandPredicate> preds;
  for (int i = 0; i < q; ++i) {
    preds.push_back(BandPredicate{10 + i, 10.0f + static_cast<float>(i)});
  }
  return preds;
}

struct Streams {
  std::vector<RTuple> rs;
  std::vector<STuple> ss;
  std::vector<Timestamp> ts_r;
  std::vector<Timestamp> ts_s;
};

Streams MakeStreams(const Config& c) {
  Streams out;
  Rng rng(c.seed);
  Timestamp ts = 0;
  for (int64_t i = 0; i < c.tuples; ++i) {
    out.rs.push_back(MakeBandR(rng, c.key_domain));
    out.ts_r.push_back(ts++);
    out.ss.push_back(MakeBandS(rng, c.key_domain));
    out.ts_s.push_back(ts++);
  }
  return out;
}

struct ChurnModeStats {
  double wall_s = 0.0;
  std::vector<uint64_t> resident_counts;
  uint64_t anomalies = 0;
  int installs = 0;
  int retired = 0;
  double avg_install_ms = 0.0;
  double max_install_ms = 0.0;
};

/// Polls the session until `epoch` reports drained; returns the wait in ms.
double AwaitDrained(JoinSession<RTuple, STuple, BandPredicate>* session,
                    Epoch epoch) {
  const int64_t t0 = NowNs();
  while (session->drained_epoch() < epoch) session->Poll();
  return NsToMs(NowNs() - t0);
}

ChurnModeStats Run(const Config& c, const Streams& in, bool churn) {
  const auto residents = ResidentQueries(c.resident);
  JoinSession<RTuple, STuple, BandPredicate> session(SessionConfig(c));
  std::vector<std::unique_ptr<CountingHandler<RTuple, STuple>>> handlers;
  for (int i = 0; i < c.resident; ++i) {
    handlers.push_back(std::make_unique<CountingHandler<RTuple, STuple>>());
    session.AddQuery(residents[i], handlers.back().get());
  }

  ChurnModeStats stats;
  CountingHandler<RTuple, STuple> churn_handler;  // extra queries, shared
  JoinSession<RTuple, STuple, BandPredicate>::QueryHandle extra{};
  bool extra_live = false;
  double install_ms_total = 0.0;

  const std::size_t chunk = static_cast<std::size_t>(c.batch);
  const int64_t start = NowNs();
  std::size_t chunk_index = 0;
  for (std::size_t i = 0; i < in.rs.size(); i += chunk, ++chunk_index) {
    if (churn && c.interval > 0 &&
        chunk_index % static_cast<std::size_t>(c.interval) == 0 &&
        i > 0) {
      // Alternate add/remove of one extra query: every install is a new
      // epoch flowing through the pipeline as an in-band punctuation.
      if (extra_live) {
        session.RemoveQuery(extra);
        ++stats.retired;
      } else {
        extra = session.AddQuery(
            BandPredicate{40 + static_cast<int>(chunk_index % 8),
                          40.0f},
            &churn_handler);
      }
      extra_live = !extra_live;
      ++stats.installs;
      const double wait_ms = AwaitDrained(&session, session.current_epoch());
      install_ms_total += wait_ms;
      stats.max_install_ms = std::max(stats.max_install_ms, wait_ms);
    }
    const std::size_t n = std::min(chunk, in.rs.size() - i);
    session.PushR(std::span<const RTuple>(in.rs.data() + i, n),
                  std::span<const Timestamp>(in.ts_r.data() + i, n));
    session.PushS(std::span<const STuple>(in.ss.data() + i, n),
                  std::span<const Timestamp>(in.ts_s.data() + i, n));
    session.Poll();
  }
  session.FinishInput();
  const int64_t end = NowNs();
  session.Stop();

  stats.wall_s = NsToSec(end - start);
  for (int i = 0; i < c.resident; ++i) {
    stats.resident_counts.push_back(handlers[i]->count());
  }
  stats.anomalies = session.pipeline_anomalies();
  if (stats.installs > 0) {
    stats.avg_install_ms = install_ms_total / stats.installs;
  }
  return stats;
}

void EmitRow(JsonEmitter* json, const Config& c, const char* mode,
             const ChurnModeStats& stats, double tput_vs_frozen) {
  const double rate =
      stats.wall_s <= 0 ? 0.0 : static_cast<double>(c.tuples) / stats.wall_s;
  uint64_t results = 0;
  for (uint64_t n : stats.resident_counts) results += n;
  JsonRow row;
  row.Str("mode", mode)
      .Int("resident_queries", c.resident)
      .Int("tuples_per_stream", c.tuples)
      .Int("window", c.window)
      .Int("nodes", c.nodes)
      .Int("batch", c.batch)
      .Int("interval_chunks", c.interval)
      .Int("threaded", c.threaded ? 1 : 0)
      .Num("wall_s", stats.wall_s)
      .Num("tuples_per_sec", rate)
      .Int("installs", stats.installs)
      .Int("queries_retired", stats.retired)
      .Num("avg_install_ms", stats.avg_install_ms)
      .Num("max_install_ms", stats.max_install_ms)
      .Int("resident_results", static_cast<int64_t>(results))
      .Int("anomalies", static_cast<int64_t>(stats.anomalies));
  if (tput_vs_frozen > 0) row.Num("tput_vs_frozen", tput_vs_frozen);
  json->Emit(row);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Config c;
  c.tuples = flags.Int("tuples", c.tuples);
  c.window = flags.Int("window", c.window);
  c.nodes = static_cast<int>(flags.Int("nodes", c.nodes));
  c.batch = static_cast<int>(flags.Int("batch", c.batch));
  c.resident = static_cast<int>(flags.Int("resident", c.resident));
  c.interval = static_cast<int>(flags.Int("interval", c.interval));
  c.key_domain = flags.Int("domain", c.key_domain);
  c.threaded = flags.Bool("threaded", c.threaded);
  c.seed = static_cast<uint64_t>(flags.Int("seed", 42));

  PrintHeader("ablation_query_churn — live add/remove vs frozen query set",
              "ROADMAP: session-level query lifecycle (epoch punctuations)");
  std::printf("band workload, count windows %lld/%lld, %d nodes, batch %d, "
              "%d resident queries, churn every %d chunks, %s\n\n",
              static_cast<long long>(c.window),
              static_cast<long long>(c.window), c.nodes, c.batch, c.resident,
              c.interval, c.threaded ? "threaded" : "non-threaded");

  JsonEmitter json(flags, "ablation_query_churn");
  const Streams in = MakeStreams(c);

  const ChurnModeStats frozen = Run(c, in, /*churn=*/false);
  const ChurnModeStats churn = Run(c, in, /*churn=*/true);

  // Correctness guard: resident queries live through every epoch, so their
  // counts must not depend on the churn around them.
  for (int i = 0; i < c.resident; ++i) {
    if (frozen.resident_counts[static_cast<std::size_t>(i)] !=
        churn.resident_counts[static_cast<std::size_t>(i)]) {
      std::printf("ERROR: resident query %d count diverged under churn "
                  "(frozen %llu, churn %llu)\n",
                  i,
                  static_cast<unsigned long long>(
                      frozen.resident_counts[static_cast<std::size_t>(i)]),
                  static_cast<unsigned long long>(
                      churn.resident_counts[static_cast<std::size_t>(i)]));
      return 1;
    }
  }
  if (frozen.anomalies != 0 || churn.anomalies != 0) {
    std::printf("ERROR: pipeline anomalies (frozen %llu, churn %llu)\n",
                static_cast<unsigned long long>(frozen.anomalies),
                static_cast<unsigned long long>(churn.anomalies));
    return 1;
  }

  const double ratio = frozen.wall_s > 0 ? frozen.wall_s / churn.wall_s : 0.0;
  EmitRow(&json, c, "frozen", frozen, 0.0);
  EmitRow(&json, c, "churn", churn, ratio);

  std::printf("  %-8s  %10s  %14s  %9s  %13s  %13s\n", "mode", "wall(s)",
              "tuples/s", "installs", "avg inst(ms)", "max inst(ms)");
  std::printf("  %-8s  %10.3f  %14.0f  %9d  %13s  %13s\n", "frozen",
              frozen.wall_s, static_cast<double>(c.tuples) / frozen.wall_s, 0,
              "-", "-");
  std::printf("  %-8s  %10.3f  %14.0f  %9d  %13.3f  %13.3f\n", "churn",
              churn.wall_s, static_cast<double>(c.tuples) / churn.wall_s,
              churn.installs, churn.avg_install_ms, churn.max_install_ms);
  std::printf("\nchurn throughput = %.2fx frozen; %d queries retired with "
              "final punctuations\n",
              ratio, churn.retired);
  return 0;
}
