// Ablation — driver batch size vs LLHJ latency (DESIGN.md Section 5).
// Section 7.3 of the paper identifies batching as the dominant latency
// source of LLHJ; this sweep makes the dependence explicit: average
// latency should track ~ batch / (2 * rate), down to the pipeline floor.
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double window_s = flags.Double("window", 4.0);
  const double rate = flags.Double("rate", 3000.0);
  const int nodes = static_cast<int>(flags.Int("nodes", 4));
  const double duration = flags.Double("duration", 8.0);

  PrintHeader("ablation_batch — LLHJ latency vs driver batch size",
              "Section 7.3 / 7.3.1 (batching as the latency floor)");
  std::printf("windows %.0f s, rate %.0f tuples/s/stream, %d nodes\n\n",
              window_s, rate, nodes);
  std::printf("%8s  %18s  %14s  %14s  %14s\n", "batch", "batch fill (ms)",
              "avg (ms)", "max (ms)", "results");

  JsonEmitter json(flags, "ablation_batch");
  for (int batch : {4, 16, 64, 256}) {
    Workload workload;
    workload.wr = WindowSpec::Time(static_cast<int64_t>(window_s * 1e6));
    workload.ws = workload.wr;
    workload.rate_per_stream = rate;
    workload.paced = true;

    RunStats stats = RunLlhjBench(nodes, workload, batch, duration);
    std::printf("%8d  %18.2f  %14.3f  %14.3f  %14llu\n", batch,
                batch / (2.0 * rate) * 1e3, stats.latency_ms.mean(),
                stats.latency_ms.max(),
                static_cast<unsigned long long>(stats.results));
    JsonRow row;
    row.Int("batch", batch)
        .Num("window_s", window_s)
        .Num("rate_per_stream", rate)
        .Int("nodes", nodes)
        .Num("batch_fill_ms", batch / (2.0 * rate) * 1e3);
    json.Emit(StatsFields(row, stats));
  }
  std::printf("\nexpected: avg latency roughly proportional to batch size "
              "(half the fill interval plus pipeline costs).\n");
  return 0;
}
