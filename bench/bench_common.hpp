// Shared benchmark harness: flag parsing, the paper's band-join workload,
// and a threaded pipeline runner that measures throughput and latency the
// way the paper does (Section 7.1):
//
//  * streams R and S with symmetric rates, join attributes uniform in
//    1..10000 (band join, ~1:250,000 hit rate);
//  * a driver that batches tuples (64 by default) before pushing them into
//    the pipeline — batching delay is part of measured latency;
//  * throughput experiments feed at maximum rate against backpressure
//    ("max sustained throughput without dropping data");
//  * latency experiments pace arrivals against the wall clock and report
//    per-second average/maximum latency (Figures 5, 19, 20).
//
// All binaries accept --key=value flags; every experiment prints its scaled
// configuration so EXPERIMENTS.md can record paper-vs-measured faithfully.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/schema.hpp"
#include "core/stream_joiner.hpp"
#include "hsj/hsj_pipeline.hpp"
#include "llhj/llhj_pipeline.hpp"
#include "runtime/executor.hpp"
#include "stream/admission.hpp"
#include "stream/collector.hpp"
#include "stream/feeder.hpp"
#include "stream/generator.hpp"
#include "stream/handlers.hpp"
#include "stream/latency_model.hpp"
#include "stream/sorter.hpp"
#include "stream/source.hpp"

namespace sjoin::bench {

/// --key=value command-line flags with typed accessors.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_.emplace_back(arg, "1");
      } else {
        kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      }
    }
  }

  int64_t Int(const std::string& name, int64_t def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : std::strtoll(v->c_str(), nullptr, 10);
  }

  double Double(const std::string& name, double def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : std::strtod(v->c_str(), nullptr);
  }

  std::string Str(const std::string& name, const std::string& def) const {
    const std::string* v = Find(name);
    return v == nullptr ? def : *v;
  }

  bool Bool(const std::string& name, bool def) const {
    const std::string* v = Find(name);
    if (v == nullptr) return def;
    return *v != "0" && *v != "false";
  }

 private:
  const std::string* Find(const std::string& name) const {
    for (const auto& [k, v] : kv_) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Workload configuration shared by the figure benches.
struct Workload {
  WindowSpec wr = WindowSpec::Count(20'000);
  WindowSpec ws = WindowSpec::Count(20'000);
  double rate_per_stream = 3000.0;  ///< tuples/sec/stream when paced
  int64_t key_domain = kPaperKeyDomain;
  uint64_t seed = 42;
  bool paced = false;

  int64_t period_us() const {
    // Gap between *consecutive* arrivals (R and S alternate).
    const double per_second = 2.0 * rate_per_stream;
    return per_second <= 0 ? 1
                           : static_cast<int64_t>(1e6 / per_second + 0.5);
  }
};

inline std::unique_ptr<GeneratedSource<RTuple, STuple>> MakeBandSource(
    const Workload& workload) {
  typename GeneratedSource<RTuple, STuple>::Options options;
  options.wr = workload.wr;
  options.ws = workload.ws;
  options.period_us = workload.period_us();
  options.seed = workload.seed;
  const int64_t domain = workload.key_domain;
  return std::make_unique<GeneratedSource<RTuple, STuple>>(
      [domain](Rng& rng) { return MakeBandR(rng, domain); },
      [domain](Rng& rng) { return MakeBandS(rng, domain); }, options);
}

/// Outcome of one timed pipeline run.
struct RunStats {
  double wall_seconds = 0.0;
  uint64_t arrivals_r = 0;
  uint64_t arrivals_s = 0;
  uint64_t results = 0;
  uint64_t punctuations = 0;
  RunningStat latency_ms;          ///< per-result latency
  TimeSeriesStat latency_series;   ///< 1-second buckets
  LatencyHistogram latency_hist;   ///< tail percentiles (p50/p95/p99/p99.9)
  std::size_t max_sorter_buffer = 0;
  uint64_t anomalies = 0;
  // Overload control (DESIGN.md Section 12): ground-truth sheds at ingest
  // vs. losses reported in-band — equal on a drained run (the
  // exact-accounting invariant).
  uint64_t shed_r = 0;
  uint64_t shed_s = 0;
  uint64_t lost_reported_r = 0;
  uint64_t lost_reported_s = 0;
  uint64_t loss_bounds = 0;

  RunStats() : latency_series(1'000'000'000) {}

  double throughput_per_stream() const {
    const double total = static_cast<double>(arrivals_r + arrivals_s) / 2.0;
    return wall_seconds <= 0 ? 0.0 : total / wall_seconds;
  }
};

/// The default hardware placement of the figure benches: pipeline nodes
/// over neighbouring cores of the detected topology, helpers on leftover
/// cores, channel rings homed on their consumer's NUMA node. On
/// single-socket hosts this degrades to the historical flat sibling-order
/// pinning.
inline PlacementPlan AutoPlacement(int nodes) {
  return PlacementPlan::Build(Topology::Detect(), PlacementPolicy::kAuto,
                              nodes, kHelperCount);
}

/// Runs `pipeline` threaded against a band workload for `duration_s`.
/// The collector runs on the calling thread. When `sort_output` is true a
/// PunctuationSorter is placed behind the collector (requires punctuate).
/// A pipeline built with a placement plan gets its node threads placed by
/// the SAME plan (feeder as the feeder-helper); an unplaced pipeline keeps
/// the flat auto layout.
template <typename Pipeline>
RunStats RunPipelineBench(Pipeline& pipeline, const Workload& workload,
                          int batch_size, double duration_s,
                          bool sort_output = false,
                          AdmissionController* admission = nullptr) {
  auto source = MakeBandSource(workload);
  typename Feeder<RTuple, STuple>::Options feeder_options;
  feeder_options.batch_size = batch_size;
  feeder_options.paced = workload.paced;
  feeder_options.admission = admission;
  if (admission != nullptr) {
    // Whole-pipeline occupancy for the admission projection: without it
    // the controller only notices saturation once backpressure has
    // cascaded back through every internal ring.
    feeder_options.backlog_probe = [&pipeline] {
      return pipeline.ApproxChannelBacklog();
    };
  }
  Feeder<RTuple, STuple> feeder(pipeline.ports(), source.get(),
                                feeder_options);

  CountingHandler<RTuple, STuple> counter;
  PunctuationSorter<RTuple, STuple> sorter(&counter);
  OutputHandler<RTuple, STuple>* tail = &counter;
  if (sort_output) tail = &sorter;
  LatencyRecorder<RTuple, STuple> latency(tail);
  // Close the admission control loop: every observed result latency feeds
  // the controller's EWMA (the projection it sheds against).
  if (admission != nullptr) {
    latency.ObserveInto(admission);
  }
  auto collector = pipeline.MakeCollector(&latency);

  auto executor =
      pipeline.placement().empty()
          ? std::make_unique<ThreadedExecutor>()
          : std::make_unique<ThreadedExecutor>(pipeline.placement());
  ThreadedExecutor& exec = *executor;
  for (auto* node : pipeline.nodes()) exec.Add(node);
  exec.AddHelper(&feeder);
  // The calling thread vacuums the result rings: adopt them before the
  // node threads start producing.
  collector->PrefaultQueues();

  const int64_t start = NowNs();
  latency.Anchor(start);
  exec.Start();

  const int64_t deadline =
      start + static_cast<int64_t>(duration_s * 1e9);
  while (NowNs() < deadline) {
    if (collector->VacuumOnce() == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  feeder.RequestStop();
  // Drain to quiescence before stopping the nodes: the feeder first
  // flushes its outbox (including any pending loss punctuations), then the
  // nodes chew through the channel backlog. At heavy overload that backlog
  // is thousands of expensive probes, so a fixed grace period would cut
  // the run with messages — and their loss accounting — still in flight.
  // Quiet = feeder done, channels empty, and a vacuum that found nothing;
  // require a stretch of consecutive quiet rounds so staged sink residues
  // (drained by the next node step) are not mistaken for quiescence.
  const int64_t settle_deadline = NowNs() + 5'000'000'000;
  int quiet = 0;
  while (NowNs() < settle_deadline && quiet < 50) {
    const bool vacuumed = collector->VacuumOnce() > 0;
    if (!vacuumed && feeder.finished() &&
        pipeline.ApproxChannelBacklog() == 0) {
      ++quiet;
    } else {
      quiet = 0;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const int64_t end = NowNs();
  exec.Stop();
  collector->VacuumOnce();

  RunStats stats;
  stats.wall_seconds = NsToSec(end - start);
  stats.arrivals_r = feeder.arrivals_pushed(StreamSide::kR);
  stats.arrivals_s = feeder.arrivals_pushed(StreamSide::kS);
  stats.results = collector->total_collected();
  stats.punctuations = collector->punctuations_emitted();
  stats.latency_ms = latency.overall();
  stats.latency_series = latency.series();
  stats.latency_hist = latency.histogram();
  stats.max_sorter_buffer = sorter.max_buffered();
  stats.anomalies = pipeline.total_anomalies();
  if (admission != nullptr) {
    stats.shed_r = admission->shed_count(StreamSide::kR);
    stats.shed_s = admission->shed_count(StreamSide::kS);
  }
  stats.lost_reported_r = collector->lost(StreamSide::kR);
  stats.lost_reported_s = collector->lost(StreamSide::kS);
  stats.loss_bounds = collector->loss_bounds();
  return stats;
}

/// Convenience: builds and runs an HSJ pipeline on the band workload.
/// Segments self-balance; `window_tuples` bounds the entry channels so the
/// driver cannot run a window ahead of the pipeline (bounded-lag regime).
inline RunStats RunHsjBench(int nodes, const Workload& workload,
                            int64_t window_tuples, int batch,
                            double duration_s) {
  typename HsjPipeline<RTuple, STuple, BandPredicate>::Options options;
  options.nodes = nodes;
  options.channel_capacity = static_cast<std::size_t>(
      std::max<int64_t>(64, std::min<int64_t>(1024, window_tuples / 4)));
  options.placement = AutoPlacement(nodes);
  HsjPipeline<RTuple, STuple, BandPredicate> pipeline(options);
  return RunPipelineBench(pipeline, workload, batch, duration_s);
}

/// Convenience: builds and runs an LLHJ pipeline on the band workload.
/// `admission` (optional) wires latency-budget overload control into the
/// feeder — shed/loss accounting then lands in the returned RunStats.
inline RunStats RunLlhjBench(int nodes, const Workload& workload, int batch,
                             double duration_s, bool punctuate = false,
                             bool sort_output = false,
                             AdmissionController* admission = nullptr) {
  typename LlhjPipeline<RTuple, STuple, BandPredicate>::Options options;
  options.nodes = nodes;
  options.punctuate = punctuate || sort_output;
  options.placement = AutoPlacement(nodes);
  LlhjPipeline<RTuple, STuple, BandPredicate> pipeline(options);
  return RunPipelineBench(pipeline, workload, batch, duration_s, sort_output,
                          admission);
}

/// One flat JSON object, assembled field by field. Values are numbers or
/// strings; keys are emitted in insertion order.
class JsonRow {
 public:
  JsonRow& Num(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return Raw(key, buf);
  }
  JsonRow& Int(const char* key, int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return Raw(key, buf);
  }
  JsonRow& Str(const char* key, const std::string& v) {
    std::string escaped;
    escaped.reserve(v.size() + 2);
    escaped += '"';
    for (char c : v) {
      switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        case '\t': escaped += "\\t"; break;
        default: escaped += c;
      }
    }
    escaped += '"';
    return Raw(key, escaped);
  }

  std::string Render() const { return "{" + body_ + "}"; }

 private:
  JsonRow& Raw(const char* key, const std::string& value) {
    if (!body_.empty()) body_ += ",";
    body_ += std::string("\"") + key + "\":" + value;
    return *this;
  }
  std::string body_;
};

/// Machine-readable results channel shared by every bench binary: each
/// measured configuration is emitted as one JSON line, prefixed "JSON " on
/// stdout (greppable next to the human tables) and appended verbatim to
/// --json_out=PATH when given — the format of the repo's BENCH_*.json
/// trajectory files. --host_tag=NAME and --stamp=WHEN (set by
/// bench/run_trajectory.sh) tag every row, so rows appended across PRs and
/// machines stay distinguishable.
class JsonEmitter {
 public:
  JsonEmitter(const Flags& flags, const std::string& bench)
      : bench_(bench),
        path_(flags.Str("json_out", "")),
        host_(flags.Str("host_tag", "")),
        stamp_(flags.Str("stamp", "")) {}

  void Emit(const JsonRow& row) {
    JsonRow head_row;  // JsonRow::Str escapes quotes/backslashes in the tags
    head_row.Str("bench", bench_);
    if (!host_.empty()) head_row.Str("host", host_);
    if (!stamp_.empty()) head_row.Str("stamp", stamp_);
    const std::string head = head_row.Render();  // "{...}"
    const std::string body = row.Render();
    const std::string line =
        body == "{}" ? head
                     : head.substr(0, head.size() - 1) + "," + body.substr(1);
    std::printf("JSON %s\n", line.c_str());
    if (!path_.empty()) {
      std::FILE* f = std::fopen(path_.c_str(), "a");
      if (f != nullptr) {
        std::fprintf(f, "%s\n", line.c_str());
        std::fclose(f);
      }
    }
  }

 private:
  std::string bench_;
  std::string path_;
  std::string host_;
  std::string stamp_;
};

/// Standard latency/throughput fields of a RunStats, for JSON rows.
inline JsonRow& StatsFields(JsonRow& row, const RunStats& stats) {
  row.Num("wall_s", stats.wall_seconds)
      .Num("tput_per_stream", stats.throughput_per_stream())
      .Num("latency_avg_ms", stats.latency_ms.mean())
      .Num("latency_max_ms", stats.latency_ms.max())
      .Num("latency_stddev_ms", stats.latency_ms.stddev())
      .Num("latency_p50_ms", stats.latency_hist.QuantileMs(0.50))
      .Num("latency_p95_ms", stats.latency_hist.QuantileMs(0.95))
      .Num("latency_p99_ms", stats.latency_hist.QuantileMs(0.99))
      .Num("latency_p999_ms", stats.latency_hist.QuantileMs(0.999))
      .Int("results", static_cast<int64_t>(stats.results))
      .Int("punctuations", static_cast<int64_t>(stats.punctuations))
      .Int("anomalies", static_cast<int64_t>(stats.anomalies));
  return row;
}

/// Overload-control fields of a RunStats (sheds vs in-band loss reports).
inline JsonRow& OverloadFields(JsonRow& row, const RunStats& stats) {
  row.Int("shed_r", static_cast<int64_t>(stats.shed_r))
      .Int("shed_s", static_cast<int64_t>(stats.shed_s))
      .Int("lost_reported_r", static_cast<int64_t>(stats.lost_reported_r))
      .Int("lost_reported_s", static_cast<int64_t>(stats.lost_reported_s))
      .Int("loss_bounds", static_cast<int64_t>(stats.loss_bounds));
  return row;
}

/// Derives the expected live-window size in tuples for a time window.
inline int64_t WindowTuples(const WindowSpec& spec, double rate_per_stream) {
  if (spec.is_count()) return spec.size;
  return static_cast<int64_t>(static_cast<double>(spec.size) / 1e6 *
                              rate_per_stream);
}

/// Prints the per-second latency series in the Figure 5/19/20 format.
inline void PrintLatencySeries(const RunStats& stats) {
  std::printf("  %6s  %12s  %12s  %12s  %10s\n", "sec", "avg(ms)", "max(ms)",
              "stddev(ms)", "results");
  const auto& buckets = stats.latency_series.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto& b = buckets[i];
    if (b.count() == 0) continue;
    std::printf("  %6zu  %12.3f  %12.3f  %12.3f  %10llu\n", i, b.mean(),
                b.max(), b.stddev(),
                static_cast<unsigned long long>(b.count()));
  }
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace sjoin::bench
