// Ablation — FIFO channel capacity (DESIGN.md Section 5). Channel capacity
// trades memory for burst absorption; throughput should be largely flat
// once channels cover a driver batch, degrading only when capacity
// approaches the arrival-slack floor.
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.Int("nodes", 4));
  const int64_t window = flags.Int("window_tuples", 20'000);
  const double duration = flags.Double("duration", 3.0);
  const int batch = static_cast<int>(flags.Int("batch", 64));

  PrintHeader("ablation_queue_capacity — LLHJ channel capacity sweep",
              "runtime design choice (Section 4.2.1 channels)");
  std::printf("%d nodes, count window %lld tuples, batch %d\n\n", nodes,
              static_cast<long long>(window), batch);
  std::printf("%10s  %16s  %14s\n", "capacity", "tput (t/s)", "results");

  JsonEmitter json(flags, "ablation_queue_capacity");
  for (std::size_t capacity : {16u, 64u, 256u, 1024u, 4096u}) {
    Workload workload;
    workload.wr = WindowSpec::Count(window);
    workload.ws = WindowSpec::Count(window);
    workload.paced = false;

    typename LlhjPipeline<RTuple, STuple, BandPredicate>::Options options;
    options.nodes = nodes;
    options.channel_capacity = capacity;
    LlhjPipeline<RTuple, STuple, BandPredicate> pipeline(options);
    RunStats stats = RunPipelineBench(pipeline, workload, batch, duration);

    std::printf("%10zu  %16.0f  %14llu\n", capacity,
                stats.throughput_per_stream(),
                static_cast<unsigned long long>(stats.results));
    json.Emit(JsonRow()
                  .Int("channel_capacity", static_cast<int64_t>(capacity))
                  .Int("nodes", nodes)
                  .Int("window_tuples", window)
                  .Int("batch", batch)
                  .Num("tput_per_stream", stats.throughput_per_stream())
                  .Int("results", static_cast<int64_t>(stats.results)));
  }
  std::printf("\nexpected: flat beyond ~batch size; small capacities cost "
              "throughput through backpressure stalls.\n");
  return 0;
}
