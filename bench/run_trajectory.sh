#!/usr/bin/env bash
# Bench trajectory automation (ROADMAP): re-runs the tracked benchmarks and
# appends host-tagged JSON rows to the repo's BENCH_*.json files, so
# performance regressions stay visible across PRs.
#
#   bench/run_trajectory.sh [--smoke] [build_dir]
#
# Tracked:
#   micro_runtime        -> BENCH_MICRO_RUNTIME.json   (google-benchmark
#                           snapshot; regenerated in place when the binary
#                           exists — the gbench JSON format is one document,
#                           not appendable rows)
#   fig17_throughput     -> BENCH_FIG17_THROUGHPUT.json      (appended)
#   fig19_llhj_latency   -> BENCH_FIG19_LLHJ_LATENCY.json    (appended)
#   ablation_multi_query -> BENCH_ABLATION_MULTI_QUERY.json  (appended)
#   ablation_simd_probe  -> BENCH_ABLATION_SIMD_PROBE.json   (appended)
#   ablation_query_churn -> BENCH_ABLATION_QUERY_CHURN.json  (appended)
#   ablation_placement   -> BENCH_ABLATION_PLACEMENT.json    (appended)
#   ablation_overload    -> BENCH_ABLATION_OVERLOAD.json     (appended)
#   ablation_sharding    -> BENCH_ABLATION_SHARDING.json     (appended)
#
# --smoke: CI mode. Runs every tracked bench at short duration, writes the
# JSON rows to a throwaway directory (override with SMOKE_OUT=dir, e.g. so
# CI can upload the rows as a failure artifact) instead of the repo
# trajectory files, and FAILS if any bench that was built emits no JSON row
# or if a row drifts from the trajectory schema (valid JSON, bench/host/
# stamp tags, and the latency_p50/p95/p99/p999_ms quantiles on the
# latency-tracking benches) — so the BENCH_* automation cannot silently
# rot. The repo files are never touched.
#
# Row tags: every appended row carries "host" and "stamp" fields (see
# JsonEmitter in bench/bench_common.hpp). Override the sizing knobs through
# the environment, e.g. DURATION=20 NODES=4 bench/run_trajectory.sh.
set -euo pipefail

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
# Host tag carries core, socket, and NUMA-node counts so trajectory rows
# from single-socket and multi-socket hosts stay distinguishable (placement
# results only mean something relative to the hardware model).
SOCKETS="$(lscpu 2>/dev/null | awk '/^Socket\(s\):/{print $2}')"
NUMA_NODES="$(ls -d /sys/devices/system/node/node[0-9]* 2>/dev/null | wc -l)"
[[ "$NUMA_NODES" -ge 1 ]] || NUMA_NODES=1
HOST_TAG="${HOST_TAG:-$(hostname)-$(nproc)c-${SOCKETS:-1}s${NUMA_NODES}n}"
STAMP="${STAMP:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

# Sizing knobs (defaults match the committed trajectory rows; scale up on
# bigger hosts).
DURATION="${DURATION:-6}"
NODES="${NODES:-2}"
RATE="${RATE:-3000}"
PUSH_TUPLES="${PUSH_TUPLES:-20000}"
MQ_TUPLES="${MQ_TUPLES:-20000}"
FIG17_NODES="${FIG17_NODES:-1,2,4}"  # fig17 sweeps a node-count list
FIG17_DURATION="${FIG17_DURATION:-2}"
FIG19_BATCH="${FIG19_BATCH:-1}"      # matches the existing trajectory rows
SIMD_WINDOW="${SIMD_WINDOW:-16384}"
SIMD_DURATION="${SIMD_DURATION:-0.4}"
CHURN_TUPLES="${CHURN_TUPLES:-20000}"
CHURN_INTERVAL="${CHURN_INTERVAL:-32}"
PLACEMENT_TUPLES="${PLACEMENT_TUPLES:-20000}"
PLACEMENT_LAT_TUPLES="${PLACEMENT_LAT_TUPLES:-6000}"
PLACEMENT_RATE="${PLACEMENT_RATE:-3000}"
OVERLOAD_DURATION="${OVERLOAD_DURATION:-4}"
OVERLOAD_WINDOW="${OVERLOAD_WINDOW:-8}"
OVERLOAD_RATE="${OVERLOAD_RATE:-2000}"
OVERLOAD_BUDGET_MS="${OVERLOAD_BUDGET_MS:-100}"
SHARD_TUPLES="${SHARD_TUPLES:-30000}"
SHARD_WINDOW="${SHARD_WINDOW:-32768}"
SHARD_DOMAIN="${SHARD_DOMAIN:-8192}"

OUT="$ROOT"
if [[ "$SMOKE" == "1" ]]; then
  OUT="${SMOKE_OUT:-$(mktemp -d)}"
  mkdir -p "$OUT"
  DURATION=1
  FIG17_DURATION=0.5
  FIG17_NODES=1
  PUSH_TUPLES=4000
  MQ_TUPLES=3000
  SIMD_WINDOW=2048
  SIMD_DURATION=0.05
  CHURN_TUPLES=3000
  CHURN_INTERVAL=8
  PLACEMENT_TUPLES=3000
  PLACEMENT_LAT_TUPLES=600
  PLACEMENT_RATE=20000
  OVERLOAD_DURATION=0.5
  OVERLOAD_WINDOW=2
  SHARD_TUPLES=4000
  SHARD_WINDOW=4096
  SHARD_DOMAIN=1024
  echo "smoke mode: rows -> $OUT (repo BENCH_*.json untouched)"
fi

TAGS=(--host_tag="$HOST_TAG" --stamp="$STAMP")
FAILED=0

run() {
  local bin="$1"
  shift
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "SKIP $bin (not built in $BUILD)"
    return 0
  fi
  echo "== $bin $*"
  "$BUILD/$bin" "$@"
}

# In smoke mode every bench that ran must have produced at least one row.
check_rows() {
  local bin="$1" file="$2"
  [[ "$SMOKE" == "1" ]] || return 0
  [[ -x "$BUILD/$bin" ]] || return 0
  if [[ ! -s "$file" ]]; then
    echo "FAIL: $bin emitted no JSON row ($file empty or missing)"
    FAILED=1
  fi
}

# google-benchmark microbenches: one JSON document per run, regenerated.
if [[ -x "$BUILD/micro_runtime" ]]; then
  echo "== micro_runtime"
  GBENCH_ARGS=()
  # Plain-seconds form: accepted by both pre-1.7 and current gbench.
  [[ "$SMOKE" == "1" ]] && GBENCH_ARGS+=(--benchmark_min_time=0.05)
  "$BUILD/micro_runtime" --benchmark_out="$OUT/BENCH_MICRO_RUNTIME.json" \
    --benchmark_out_format=json "${GBENCH_ARGS[@]}"
  check_rows micro_runtime "$OUT/BENCH_MICRO_RUNTIME.json"
else
  echo "SKIP micro_runtime (google-benchmark not available at configure time)"
fi

run fig17_throughput --duration="$FIG17_DURATION" --nodes="$FIG17_NODES" \
  --json_out="$OUT/BENCH_FIG17_THROUGHPUT.json" "${TAGS[@]}"
check_rows fig17_throughput "$OUT/BENCH_FIG17_THROUGHPUT.json"

run fig19_llhj_latency --duration="$DURATION" --nodes="$NODES" \
  --rate="$RATE" --batch="$FIG19_BATCH" --push_tuples="$PUSH_TUPLES" \
  --json_out="$OUT/BENCH_FIG19_LLHJ_LATENCY.json" "${TAGS[@]}"
check_rows fig19_llhj_latency "$OUT/BENCH_FIG19_LLHJ_LATENCY.json"

run ablation_multi_query --tuples="$MQ_TUPLES" --nodes="$NODES" \
  --json_out="$OUT/BENCH_ABLATION_MULTI_QUERY.json" "${TAGS[@]}"
check_rows ablation_multi_query "$OUT/BENCH_ABLATION_MULTI_QUERY.json"

run ablation_simd_probe --window="$SIMD_WINDOW" --duration="$SIMD_DURATION" \
  --json_out="$OUT/BENCH_ABLATION_SIMD_PROBE.json" "${TAGS[@]}"
check_rows ablation_simd_probe "$OUT/BENCH_ABLATION_SIMD_PROBE.json"

run ablation_query_churn --tuples="$CHURN_TUPLES" --nodes="$NODES" \
  --interval="$CHURN_INTERVAL" \
  --json_out="$OUT/BENCH_ABLATION_QUERY_CHURN.json" "${TAGS[@]}"
check_rows ablation_query_churn "$OUT/BENCH_ABLATION_QUERY_CHURN.json"

run ablation_placement --tuples="$PLACEMENT_TUPLES" \
  --lat_tuples="$PLACEMENT_LAT_TUPLES" --rate="$PLACEMENT_RATE" \
  --nodes="$NODES" \
  --json_out="$OUT/BENCH_ABLATION_PLACEMENT.json" "${TAGS[@]}"
check_rows ablation_placement "$OUT/BENCH_ABLATION_PLACEMENT.json"

# --assert=1: the load-independent invariants (exact loss accounting, zero
# sheds at sub-saturation load) hold at any duration, so they gate the
# smoke run too. The saturation-dependent 10x tail assertions need the full
# duration and run in the dedicated CI leg (--assert_tail).
run ablation_overload --duration="$OVERLOAD_DURATION" \
  --window="$OVERLOAD_WINDOW" --base_rate="$OVERLOAD_RATE" \
  --budget_ms="$OVERLOAD_BUDGET_MS" --assert=1 \
  --json_out="$OUT/BENCH_ABLATION_OVERLOAD.json" "${TAGS[@]}"
check_rows ablation_overload "$OUT/BENCH_ABLATION_OVERLOAD.json"

# --assert=1: the shard-count-independence of the result multiset (hash
# equality across 1/2/4 shards) is load-independent and gates the smoke
# run too; the bench exits nonzero on any divergence or pipeline anomaly.
run ablation_sharding --tuples="$SHARD_TUPLES" --window="$SHARD_WINDOW" \
  --domain="$SHARD_DOMAIN" --assert=1 \
  --json_out="$OUT/BENCH_ABLATION_SHARDING.json" "${TAGS[@]}"
check_rows ablation_sharding "$OUT/BENCH_ABLATION_SHARDING.json"

# Schema drift gate (smoke only): every appended row must be valid JSON
# carrying the bench/host/stamp tags, and the latency-tracking benches must
# keep their full quantile set — downstream trajectory tooling reads these
# fields by name. micro_runtime is exempt (google-benchmark owns its
# format, one JSON document rather than appendable rows).
if [[ "$SMOKE" == "1" ]] && command -v python3 >/dev/null 2>&1; then
  if ! python3 - "$OUT" <<'PYEOF'
import json, pathlib, sys

out = pathlib.Path(sys.argv[1])
QUANTILES = ("latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
             "latency_p999_ms")
NEEDS_QUANTILES = {"fig19_llhj_latency", "ablation_overload",
                   "ablation_sharding"}
failed = False

def fail(msg):
    global failed
    failed = True
    print(f"SCHEMA DRIFT: {msg}")

for path in sorted(out.glob("BENCH_*.json")):
    if path.name == "BENCH_MICRO_RUNTIME.json":
        continue
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError as e:
            fail(f"{path.name}:{lineno} not valid JSON ({e})")
            continue
        for tag in ("bench", "host", "stamp"):
            if tag not in row:
                fail(f"{path.name}:{lineno} missing '{tag}' tag")
        if row.get("bench") in NEEDS_QUANTILES:
            for q in QUANTILES:
                if not isinstance(row.get(q), (int, float)):
                    fail(f"{path.name}:{lineno} bench '{row.get('bench')}' "
                         f"missing numeric '{q}'")
if failed:
    sys.exit(1)
print("trajectory schema check passed")
PYEOF
  then
    echo "FAIL: trajectory rows drifted from the BENCH_* schema"
    FAILED=1
  fi
fi

if [[ "$FAILED" == "1" ]]; then
  echo "trajectory smoke FAILED: missing rows or schema drift"
  exit 1
fi
echo "trajectory updated: host=$HOST_TAG stamp=$STAMP out=$OUT"
