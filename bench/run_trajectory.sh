#!/usr/bin/env bash
# Bench trajectory automation (ROADMAP): re-runs the tracked benchmarks and
# appends host-tagged JSON rows to the repo's BENCH_*.json files, so
# performance regressions stay visible across PRs.
#
#   bench/run_trajectory.sh [build_dir]
#
# Tracked:
#   micro_runtime        -> BENCH_MICRO_RUNTIME.json   (google-benchmark
#                           snapshot; regenerated in place when the binary
#                           exists — the gbench JSON format is one document,
#                           not appendable rows)
#   fig17_throughput     -> BENCH_FIG17_THROUGHPUT.json      (appended)
#   fig19_llhj_latency   -> BENCH_FIG19_LLHJ_LATENCY.json    (appended)
#   ablation_multi_query -> BENCH_ABLATION_MULTI_QUERY.json  (appended)
#
# Row tags: every appended row carries "host" and "stamp" fields (see
# JsonEmitter in bench/bench_common.hpp). Override the sizing knobs through
# the environment, e.g. DURATION=20 NODES=4 bench/run_trajectory.sh.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
HOST_TAG="${HOST_TAG:-$(hostname)-$(nproc)c}"
STAMP="${STAMP:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}"

# Sizing knobs (defaults match the committed trajectory rows; scale up on
# bigger hosts).
DURATION="${DURATION:-6}"
NODES="${NODES:-2}"
RATE="${RATE:-3000}"
PUSH_TUPLES="${PUSH_TUPLES:-20000}"
MQ_TUPLES="${MQ_TUPLES:-20000}"

TAGS=(--host_tag="$HOST_TAG" --stamp="$STAMP")

run() {
  local bin="$1"
  shift
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "SKIP $bin (not built in $BUILD)"
    return 0
  fi
  echo "== $bin $*"
  "$BUILD/$bin" "$@"
}

# google-benchmark microbenches: one JSON document per run, regenerated.
if [[ -x "$BUILD/micro_runtime" ]]; then
  echo "== micro_runtime"
  "$BUILD/micro_runtime" --benchmark_out="$ROOT/BENCH_MICRO_RUNTIME.json" \
    --benchmark_out_format=json
else
  echo "SKIP micro_runtime (google-benchmark not available at configure time)"
fi

FIG17_NODES="${FIG17_NODES:-1,2,4}"  # fig17 sweeps a node-count list
FIG17_DURATION="${FIG17_DURATION:-2}"
run fig17_throughput --duration="$FIG17_DURATION" --nodes="$FIG17_NODES" \
  --json_out="$ROOT/BENCH_FIG17_THROUGHPUT.json" "${TAGS[@]}"

FIG19_BATCH="${FIG19_BATCH:-1}"  # matches the existing trajectory rows
run fig19_llhj_latency --duration="$DURATION" --nodes="$NODES" \
  --rate="$RATE" --batch="$FIG19_BATCH" --push_tuples="$PUSH_TUPLES" \
  --json_out="$ROOT/BENCH_FIG19_LLHJ_LATENCY.json" "${TAGS[@]}"

run ablation_multi_query --tuples="$MQ_TUPLES" --nodes="$NODES" \
  --json_out="$ROOT/BENCH_ABLATION_MULTI_QUERY.json" "${TAGS[@]}"

echo "trajectory updated: host=$HOST_TAG stamp=$STAMP"
