// Ablation: SIMD probe kernels vs the forced-scalar fallback on the
// window-scan hot path (ROADMAP: SIMD band-join probe + SIMD multi-query
// probe; DESIGN.md Section 9).
//
// The measured loop is exactly the pipeline nodes' store sweep: one
// VectorStore window of W entries probed by k arrivals x Q registered
// queries through MatchBatch — the same call LlhjNode::ScanBatchAgainstS /
// HsjNode::ScanBatchAgainstS issue per crossing. Three probe shapes cover
// every kernel family:
//
//   band_entry — R probes the S window; band bounds computed per ENTRY
//                (band_entry_i32 + band_entry_f32 kernels);
//   band_probe — S probes the R window; band bounds hoisted per PROBE
//                (range_i32 + range_f32 kernels);
//   equi       — key equality sweep (eq_i32 kernel);
//   equi_hash  — the lane-grouped HashStore's batched probe (group-equality
//                kernels, DESIGN.md Section 15) vs the retained chain-walk
//                baseline, on churned windows; rows carry speedup_vs_chain
//                and --require_hash_speedup gates it (acceptance: >= 2x at
//                AVX2).
//
// Every supported dispatch level (scalar -> sse2 -> avx2) runs the same
// sweep; the per-level result multisets are asserted identical in-bench
// (bit-identical kernels are the correctness contract, not a best effort).
// Throughput is reported as predicate evaluations per second
// (W x k x Q x sweeps / wall), with speedup_vs_scalar per level.
// --require_speedup=N exits nonzero if the best SIMD level fails to reach
// N x scalar (acceptance runs; CI smoke leaves it off — shared runners).
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "common/simd.hpp"
#include "llhj/store.hpp"
#include "stream/query_set.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

struct Config {
  int64_t window = 16384;   ///< resident entries per sweep
  int64_t probes = 8;       ///< k: arrival-run length (msgs_per_step shape)
  int64_t queries = 4;      ///< Q: registered predicates
  double duration = 0.4;    ///< seconds per (shape, level) measurement
  int64_t key_domain = kPaperKeyDomain;
  uint64_t seed = 42;
  double require_speedup = 0.0;
  double require_hash_speedup = 0.0;
};

/// A 64-bit order-insensitive fingerprint of the emitted (probe, query,
/// seq) triples plus the total count — levels must agree on both.
struct ResultSig {
  uint64_t hash = 0;
  uint64_t count = 0;
  bool operator==(const ResultSig&) const = default;
};

uint64_t MixTriple(std::size_t j, QueryId q, Seq seq) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  h ^= (static_cast<uint64_t>(j) + 1) * 0xff51afd7ed558ccdull;
  h ^= (static_cast<uint64_t>(q) + 1) * 0xc4ceb9fe1a85ec53ull;
  h ^= (seq + 1) * 0x2545f4914f6cdd1dull;
  h *= 0xbf58476d1ce4e5b9ull;
  return h ^ (h >> 31);
}

/// One (store, probes, queries) scan shape, measured at one dispatch level.
struct LevelStats {
  SimdLevel level = SimdLevel::kScalar;
  double wall_s = 0.0;
  uint64_t sweeps = 0;
  ResultSig sig;
  double evals_per_sec = 0.0;
};

template <bool kProbeIsLeft, typename Store, typename Pred, typename ProbeT>
LevelStats MeasureLevel(SimdLevel level, const Store& store,
                        const QuerySet<Pred>& queries,
                        const std::vector<Stamped<ProbeT>>& probes,
                        const Config& c) {
  OverrideSimdLevel(level);
  LevelStats stats;
  stats.level = level;
  // Fingerprint sweep (outside the timed loop).
  store.template MatchBatch<kProbeIsLeft>(
      queries, probes.data(), probes.size(),
      [&](std::size_t j, QueryId q, const auto& entry) {
        stats.sig.hash ^= MixTriple(j, q, entry.tuple.seq);
        ++stats.sig.count;
      });
  // Timed sweeps. The per-sweep match count is folded into a sink so the
  // emission path (set-bit walk + callback) stays in the measurement.
  uint64_t sink = 0;
  const int64_t start = NowNs();
  const int64_t deadline = start + static_cast<int64_t>(c.duration * 1e9);
  while (NowNs() < deadline) {
    store.template MatchBatch<kProbeIsLeft>(
        queries, probes.data(), probes.size(),
        [&](std::size_t j, QueryId q, const auto& entry) {
          sink += j + q + static_cast<uint64_t>(entry.tuple.seq & 1);
        });
    ++stats.sweeps;
  }
  const int64_t end = NowNs();
  ClearSimdLevelOverride();
  if (sink == 0xdeadbeef) std::printf("(unreachable)\n");  // keep `sink` live
  stats.wall_s = NsToSec(end - start);
  const double evals = static_cast<double>(store.size()) *
                       static_cast<double>(probes.size()) *
                       static_cast<double>(queries.size()) *
                       static_cast<double>(stats.sweeps);
  stats.evals_per_sec = stats.wall_s <= 0 ? 0.0 : evals / stats.wall_s;
  return stats;
}

/// Runs one scan shape at every level; returns the best SIMD speedup and
/// emits one JSON row per level. Exits the process on a result mismatch.
template <bool kProbeIsLeft, typename Store, typename Pred, typename ProbeT>
double RunShape(const char* shape, const Store& store,
                const QuerySet<Pred>& queries,
                const std::vector<Stamped<ProbeT>>& probes, const Config& c,
                JsonEmitter* json) {
  std::vector<LevelStats> rows;
  for (SimdLevel level : SupportedSimdLevels()) {
    rows.push_back(
        MeasureLevel<kProbeIsLeft>(level, store, queries, probes, c));
  }
  const LevelStats& scalar = rows.front();
  double best_speedup = 1.0;
  std::printf("  %-10s  %-7s  %12s  %10s  %14s  %8s\n", "shape", "level",
              "sweeps", "matches", "evals/s", "speedup");
  for (const LevelStats& row : rows) {
    if (!(row.sig == scalar.sig)) {
      std::printf("ERROR: %s result set differs between scalar and %s "
                  "(count %llu vs %llu, hash %016llx vs %016llx)\n",
                  shape, ToString(row.level),
                  static_cast<unsigned long long>(scalar.sig.count),
                  static_cast<unsigned long long>(row.sig.count),
                  static_cast<unsigned long long>(scalar.sig.hash),
                  static_cast<unsigned long long>(row.sig.hash));
      std::exit(1);
    }
    const double speedup =
        row.evals_per_sec <= 0 || scalar.evals_per_sec <= 0
            ? 0.0
            : row.evals_per_sec / scalar.evals_per_sec;
    if (row.level != SimdLevel::kScalar && speedup > best_speedup) {
      best_speedup = speedup;
    }
    std::printf("  %-10s  %-7s  %12llu  %10llu  %14.3e  %7.2fx\n", shape,
                ToString(row.level),
                static_cast<unsigned long long>(row.sweeps),
                static_cast<unsigned long long>(row.sig.count),
                row.evals_per_sec, speedup);
    JsonRow out;
    out.Str("shape", shape)
        .Str("level", ToString(row.level))
        .Str("detected", ToString(DetectedSimdLevel()))
        .Int("window", static_cast<int64_t>(store.size()))
        .Int("probes", static_cast<int64_t>(probes.size()))
        .Int("queries", static_cast<int64_t>(queries.size()))
        .Int("sweeps", static_cast<int64_t>(row.sweeps))
        .Num("wall_s", row.wall_s)
        .Num("evals_per_sec", row.evals_per_sec)
        .Int("matches_per_sweep", static_cast<int64_t>(row.sig.count))
        .Num("speedup_vs_scalar", speedup)
        .Int("results_equal", 1);
    json->Emit(out);
  }
  std::printf("\n");
  return best_speedup;
}

/// Equi hash-probe ablation: the lane-grouped HashStore's batched probe
/// (gather keys -> prefetch home groups -> 8-lane group-equality scans ->
/// Seq-sorted emission) against the retained chain-walk baseline
/// (ChainHashStore: one dependent pointer chase per duplicate). Both stores
/// are built with identical CHURNED contents — insert W, then expire/insert
/// 3W more in FIFO order so chain slots recycle through the free list, the
/// steady-state window shape — and identical probe runs. The chain walk is
/// scalar by construction (no kernels on its path). Each grouped dispatch
/// level is measured PAIRED against the chain — alternating short chain /
/// grouped slices, taking the median per-pair ratio — because on a shared
/// host steal bursts last whole seconds and would otherwise land on one
/// side of the division; adjacent slices are perturbed alike, so the pair
/// ratio holds. Result multisets asserted identical to the chain's.
/// Returns the best grouped speedup over the chain walk.
/// Hash-shape measurement: unlike the scan shapes (fixed probes — the
/// window IS the working set), hash probes touch only their candidates, so
/// a fixed probe batch would leave every candidate slot L1-warm after one
/// sweep and the measurement would reward nothing but instruction count.
/// Pipeline probes arrive once each; to reproduce that cache behavior the
/// timed loop rotates through a pool of probe batches large enough that a
/// batch's candidates have been evicted by the time it comes around again.

/// One full-pool pass at `level`, accumulating the order-insensitive
/// result signature (the cross-store identity check).
template <typename Store>
ResultSig FingerprintHash(SimdLevel level, const Store& store,
                          const QuerySet<EquiPredicate>& queries,
                          const std::vector<Stamped<RTuple>>& pool,
                          std::size_t batch) {
  OverrideSimdLevel(level);
  ResultSig sig;
  for (std::size_t base = 0; base < pool.size(); base += batch) {
    store.template MatchBatch<true>(
        queries, pool.data() + base, std::min(batch, pool.size() - base),
        [&](std::size_t j, QueryId q, const auto& entry) {
          sig.hash ^= MixTriple(base + j, q, entry.tuple.seq);
          ++sig.count;
        });
  }
  ClearSimdLevelOverride();
  return sig;
}

struct SliceStats {
  uint64_t sweeps = 0;
  double wall_s = 0.0;
  double Rate() const {
    return wall_s <= 0 ? 0.0 : static_cast<double>(sweeps) / wall_s;
  }
};

/// One timed slice over the rotating probe pool. `cursor` persists across
/// slices so consecutive slices keep advancing through the pool instead of
/// re-touching the batches the previous slice just warmed.
template <typename Store>
SliceStats TimedHashSlice(const Store& store,
                          const QuerySet<EquiPredicate>& queries,
                          const std::vector<Stamped<RTuple>>& pool,
                          std::size_t batch, int64_t slice_ns,
                          std::size_t* cursor) {
  SliceStats s;
  uint64_t sink = 0;
  const int64_t start = NowNs();
  const int64_t deadline = start + slice_ns;
  while (NowNs() < deadline) {
    store.template MatchBatch<true>(
        queries, pool.data() + *cursor, batch,
        [&](std::size_t j, QueryId q, const auto& entry) {
          sink += j + q + static_cast<uint64_t>(entry.tuple.seq & 1);
        });
    *cursor += batch;
    if (*cursor + batch > pool.size()) *cursor = 0;
    ++s.sweeps;
  }
  if (sink == 0xdeadbeef) std::printf("(unreachable)\n");  // keep `sink` live
  s.wall_s = NsToSec(NowNs() - start);
  return s;
}

double RunEquiHash(const Config& c, JsonEmitter* json) {
  Rng rng(c.seed + 1);
  HashStore<STuple, SKey, RKey> grouped;
  ChainHashStore<STuple, SKey, RKey> chain;
  // 4x the scan window (an index probe does per-candidate work, not
  // per-entry, so the store must be big enough that candidates are not
  // cache-resident), ~16 duplicates per key: long enough runs that the
  // probe path (not the hash) dominates, matching the paper's equi skew.
  const int64_t window = 4 * c.window;
  const int64_t domain = std::max<int64_t>(1, window / 16);
  Seq next_seq = 0;
  Seq expire = 0;
  const auto push = [&] {
    const Stamped<STuple> t{MakeBandS(rng, domain), next_seq, 0, 0};
    grouped.Insert(t, false);
    chain.Insert(t, false);
    ++next_seq;
  };
  for (int64_t i = 0; i < window; ++i) push();
  for (int64_t i = 0; i < 2 * window; ++i) {
    grouped.EraseSeq(expire);
    chain.EraseSeq(expire);
    ++expire;
    push();
  }
  // Probe at the store's designed chunk width (HashStore::MatchBatch
  // pipelines candidate collection across 32-probe chunks): 4 arrival runs
  // of c.probes handed to one batched call, the shape the sharded driver
  // produces under load.
  const std::size_t batch = static_cast<std::size_t>(4 * c.probes);
  std::vector<Stamped<RTuple>> pool;
  for (std::size_t j = 0; j < 512 * batch; ++j) {
    pool.push_back(Stamped<RTuple>{MakeBandR(rng, domain),
                                   static_cast<Seq>(j), 0, 0});
  }
  QuerySet<EquiPredicate> queries{EquiPredicate{}};

  const ResultSig base_sig =
      FingerprintHash(SimdLevel::kScalar, chain, queries, pool, batch);
  const int64_t slice_ns = static_cast<int64_t>(c.duration * 1e9 / 3.0);
  constexpr int kRounds = 5;
  const auto evals_per_sec = [&](const SliceStats& s, std::size_t sz) {
    return static_cast<double>(sz) * static_cast<double>(batch) *
           static_cast<double>(queries.size()) * s.Rate();
  };

  // Each level: kRounds adjacent chain/grouped slice pairs; the median
  // pair ratio is the level's speedup over the chain walk. The best chain
  // slice seen anywhere becomes the reported baseline row.
  std::size_t chain_cursor = 0;
  SliceStats chain_best;
  double grouped_scalar = 0.0;
  double best = 0.0;
  struct LevelRow {
    SimdLevel level;
    SliceStats slice;
    double vs_chain = 0.0;
  };
  std::vector<LevelRow> rows;
  for (SimdLevel level : SupportedSimdLevels()) {
    const ResultSig sig =
        FingerprintHash(level, grouped, queries, pool, batch);
    if (!(sig == base_sig)) {
      std::printf("ERROR: equi_hash result set differs between the chain "
                  "baseline and grouped/%s (count %llu vs %llu, hash "
                  "%016llx vs %016llx)\n",
                  ToString(level),
                  static_cast<unsigned long long>(base_sig.count),
                  static_cast<unsigned long long>(sig.count),
                  static_cast<unsigned long long>(base_sig.hash),
                  static_cast<unsigned long long>(sig.hash));
      std::exit(1);
    }
    std::size_t cursor = 0;
    LevelRow row;
    row.level = level;
    std::array<double, kRounds> ratios{};
    for (int r = 0; r < kRounds; ++r) {
      const SliceStats cs =
          TimedHashSlice(chain, queries, pool, batch, slice_ns,
                         &chain_cursor);
      if (cs.Rate() > chain_best.Rate()) chain_best = cs;
      OverrideSimdLevel(level);
      const SliceStats gs =
          TimedHashSlice(grouped, queries, pool, batch, slice_ns, &cursor);
      ClearSimdLevelOverride();
      if (gs.Rate() > row.slice.Rate()) row.slice = gs;
      ratios[static_cast<std::size_t>(r)] =
          cs.Rate() <= 0 ? 0.0 : gs.Rate() / cs.Rate();
    }
    std::sort(ratios.begin(), ratios.end());
    row.vs_chain = ratios[kRounds / 2];
    if (level == SimdLevel::kScalar) {
      grouped_scalar = evals_per_sec(row.slice, grouped.size());
    }
    if (row.vs_chain > best) best = row.vs_chain;
    rows.push_back(row);
  }

  std::printf("  %-10s  %-7s  %12s  %10s  %14s  %8s\n", "shape", "level",
              "sweeps", "matches", "evals/s", "vs_chain");
  std::printf("  %-10s  %-7s  %12llu  %10llu  %14.3e  %7.2fx\n", "equi_hash",
              "chain", static_cast<unsigned long long>(chain_best.sweeps),
              static_cast<unsigned long long>(base_sig.count),
              evals_per_sec(chain_best, chain.size()), 1.0);
  JsonRow base_row;
  base_row.Str("shape", "equi_hash")
      .Str("level", "chain")
      .Str("detected", ToString(DetectedSimdLevel()))
      .Int("window", static_cast<int64_t>(chain.size()))
      .Int("probes", static_cast<int64_t>(batch))
      .Int("queries", static_cast<int64_t>(queries.size()))
      .Int("sweeps", static_cast<int64_t>(chain_best.sweeps))
      .Num("wall_s", chain_best.wall_s)
      .Num("evals_per_sec", evals_per_sec(chain_best, chain.size()))
      .Int("matches_per_sweep", static_cast<int64_t>(base_sig.count))
      .Num("speedup_vs_chain", 1.0)
      .Int("results_equal", 1);
  json->Emit(base_row);

  for (const LevelRow& row : rows) {
    const double eps = evals_per_sec(row.slice, grouped.size());
    const double vs_scalar = grouped_scalar <= 0 ? 0.0 : eps / grouped_scalar;
    std::printf("  %-10s  %-7s  %12llu  %10llu  %14.3e  %7.2fx\n",
                "equi_hash", ToString(row.level),
                static_cast<unsigned long long>(row.slice.sweeps),
                static_cast<unsigned long long>(base_sig.count), eps,
                row.vs_chain);
    JsonRow out;
    out.Str("shape", "equi_hash")
        .Str("level", ToString(row.level))
        .Str("detected", ToString(DetectedSimdLevel()))
        .Int("window", static_cast<int64_t>(grouped.size()))
        .Int("probes", static_cast<int64_t>(batch))
        .Int("queries", static_cast<int64_t>(queries.size()))
        .Int("sweeps", static_cast<int64_t>(row.slice.sweeps))
        .Num("wall_s", row.slice.wall_s)
        .Num("evals_per_sec", eps)
        .Int("matches_per_sweep", static_cast<int64_t>(base_sig.count))
        .Num("speedup_vs_scalar", vs_scalar)
        .Num("speedup_vs_chain", row.vs_chain)
        .Str("slab_backing", ToString(grouped.slab_backing()))
        .Int("results_equal", 1);
    json->Emit(out);
  }
  std::printf("\n");
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Config c;
  c.window = flags.Int("window", c.window);
  c.probes = flags.Int("probes", c.probes);
  c.queries = flags.Int("queries", c.queries);
  c.duration = flags.Double("duration", c.duration);
  c.key_domain = flags.Int("domain", c.key_domain);
  c.seed = static_cast<uint64_t>(flags.Int("seed", 42));
  c.require_speedup = flags.Double("require_speedup", 0.0);
  c.require_hash_speedup = flags.Double("require_hash_speedup", 0.0);

  PrintHeader("ablation_simd_probe — packed scan-probe kernels vs "
              "forced-scalar",
              "ROADMAP: SIMD band-join + multi-query probe (DESIGN.md S9)");
  std::printf("window %lld, %lld probes x %lld queries, %.2fs per level, "
              "detected %s\n\n",
              static_cast<long long>(c.window),
              static_cast<long long>(c.probes),
              static_cast<long long>(c.queries), c.duration,
              ToString(DetectedSimdLevel()));

  JsonEmitter json(flags, "ablation_simd_probe");
  Rng rng(c.seed);

  // Windows and probe runs drawn from the paper's band workload.
  VectorStore<STuple> ws;
  VectorStore<RTuple> wr;
  for (int64_t i = 0; i < c.window; ++i) {
    ws.Insert(Stamped<STuple>{MakeBandS(rng, c.key_domain),
                              static_cast<Seq>(i), 0, 0},
              false);
    wr.Insert(Stamped<RTuple>{MakeBandR(rng, c.key_domain),
                              static_cast<Seq>(i), 0, 0},
              false);
  }
  std::vector<Stamped<RTuple>> probe_r;
  std::vector<Stamped<STuple>> probe_s;
  for (int64_t j = 0; j < c.probes; ++j) {
    probe_r.push_back(Stamped<RTuple>{MakeBandR(rng, c.key_domain),
                                      static_cast<Seq>(j), 0, 0});
    probe_s.push_back(Stamped<STuple>{MakeBandS(rng, c.key_domain),
                                      static_cast<Seq>(j), 0, 0});
  }

  // Q band queries with distinct widths (the multi-query sharing shape);
  // wide enough that matches exist at every window size.
  std::vector<BandPredicate> bands;
  for (int64_t q = 0; q < c.queries; ++q) {
    const int32_t w = static_cast<int32_t>(10 + 40 * q);
    bands.push_back(BandPredicate{w, static_cast<float>(w)});
  }
  QuerySet<BandPredicate> band_queries(bands);
  QuerySet<EquiPredicate> equi_queries{EquiPredicate{}};

  double best = 1.0;
  best = std::max(best, RunShape<true>("band_entry", ws, band_queries,
                                       probe_r, c, &json));
  best = std::max(best, RunShape<false>("band_probe", wr, band_queries,
                                        probe_s, c, &json));
  best = std::max(best, RunShape<true>("equi", ws, equi_queries, probe_r, c,
                                       &json));
  const double hash_best = RunEquiHash(c, &json);

  if (c.require_speedup > 0 && DetectedSimdLevel() > SimdLevel::kScalar &&
      best < c.require_speedup) {
    std::printf("ERROR: best SIMD speedup %.2fx below required %.2fx\n", best,
                c.require_speedup);
    return 1;
  }
  if (c.require_hash_speedup > 0 &&
      DetectedSimdLevel() >= SimdLevel::kAvx2 &&
      hash_best < c.require_hash_speedup) {
    std::printf("ERROR: grouped equi-probe speedup %.2fx over the chain walk "
                "below required %.2fx\n",
                hash_best, c.require_hash_speedup);
    return 1;
  }
  std::printf("best SIMD speedup vs forced-scalar: %.2fx\n", best);
  std::printf("grouped equi-probe speedup vs chain walk: %.2fx\n", hash_best);
  return 0;
}
