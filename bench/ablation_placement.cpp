// Ablation: hardware placement policies (DESIGN.md Section 11). The paper's
// LLHJ deployment owes its short channel hops to laying the pipeline over
// the Magny Cours HyperTransport ring; this bench measures what our
// PlacementPlan buys on the host it runs on by driving the SAME streams
// through a threaded LLHJ JoinSession under each policy:
//
//   auto    — compact placement: neighbouring pipeline nodes on
//             neighbouring cores, channel rings homed on their consumer's
//             NUMA node (the deployment default);
//   compact — auto's current concrete plan, named explicitly;
//   scatter — positions round-robined across NUMA nodes (deliberately
//             locality-hostile baseline);
//   none    — no pinning, no memory binding (scheduler's choice).
//
// Two phases per policy over identical input:
//   fig17-style throughput — max-rate batch ingestion, tuples/sec;
//   fig19-style latency    — paced per-tuple ingestion, avg/max result
//                            latency from the later input's arrival.
//
// Correctness guard: placement moves threads and memory, never results —
// per-policy result counts AND an order-independent result-set hash must be
// identical across all four policies in both phases; exit 1 on mismatch.
// On single-socket hosts the policies converge (auto == today's flat
// sibling-order pinning); rows still record socket/node counts via the host
// tag so the trajectory shows which hosts exercised real NUMA spreads.
#include <algorithm>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/join_session.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

struct Config {
  int64_t tuples = 20'000;      ///< per stream, throughput phase
  int64_t lat_tuples = 6'000;   ///< per stream, paced latency phase
  int64_t window = 512;         ///< count window per stream
  int nodes = 2;
  int batch = 64;
  double rate = 3000.0;         ///< tuples/sec/stream, latency phase
  int64_t key_domain = kPaperKeyDomain;
  uint64_t seed = 42;
};

JoinConfig SessionConfig(const Config& c, PlacementPolicy policy) {
  JoinConfig config;
  config.algorithm = Algorithm::kLowLatency;
  config.parallelism = c.nodes;
  config.window_r = WindowSpec::Count(c.window);
  config.window_s = WindowSpec::Count(c.window);
  config.threaded = true;
  config.placement = policy;
  return config;
}

struct Streams {
  std::vector<RTuple> rs;
  std::vector<STuple> ss;
  std::vector<Timestamp> ts_r;
  std::vector<Timestamp> ts_s;
};

Streams MakeStreams(const Config& c, int64_t tuples) {
  Streams out;
  Rng rng(c.seed);
  Timestamp ts = 0;
  for (int64_t i = 0; i < tuples; ++i) {
    out.rs.push_back(MakeBandR(rng, c.key_domain));
    out.ts_r.push_back(ts++);
    out.ss.push_back(MakeBandS(rng, c.key_domain));
    out.ts_s.push_back(ts++);
  }
  return out;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Counts results, accumulates an order-independent set hash, and records
/// delivery latency against the later input's arrival.
class PlacementHandler : public OutputHandler<RTuple, STuple> {
 public:
  void OnResult(const ResultMsg<RTuple, STuple>& m) override {
    ++count_;
    hash_ += Mix64(Mix64(static_cast<uint64_t>(m.r_seq)) ^
                   (static_cast<uint64_t>(m.s_seq) << 1) ^
                   (static_cast<uint64_t>(m.query) << 2));
    if (m.ready_wall_ns > 0) {
      latency_ms_.Add(NsToMs(NowNs() - m.ready_wall_ns));
    }
  }

  uint64_t count() const { return count_; }
  uint64_t hash() const { return hash_; }
  const RunningStat& latency_ms() const { return latency_ms_; }

 private:
  uint64_t count_ = 0;
  uint64_t hash_ = 0;  // commutative sum of per-result mixes
  RunningStat latency_ms_;
};

struct PhaseStats {
  double wall_s = 0.0;
  uint64_t results = 0;
  uint64_t hash = 0;
  double latency_avg_ms = 0.0;
  double latency_max_ms = 0.0;
  uint64_t anomalies = 0;
};

/// fig17-style: max-rate batch ingestion of the whole stream.
PhaseStats RunThroughput(const Config& c, const Streams& in,
                         PlacementPolicy policy) {
  JoinSession<RTuple, STuple, BandPredicate> session(SessionConfig(c, policy));
  PlacementHandler handler;
  session.AddQuery(BandPredicate{10, 10.0f}, &handler);

  const std::size_t chunk = static_cast<std::size_t>(c.batch);
  const int64_t start = NowNs();
  for (std::size_t i = 0; i < in.rs.size(); i += chunk) {
    const std::size_t n = std::min(chunk, in.rs.size() - i);
    session.PushR(std::span<const RTuple>(in.rs.data() + i, n),
                  std::span<const Timestamp>(in.ts_r.data() + i, n));
    session.PushS(std::span<const STuple>(in.ss.data() + i, n),
                  std::span<const Timestamp>(in.ts_s.data() + i, n));
    session.Poll();
  }
  session.FinishInput();
  const int64_t end = NowNs();
  session.Stop();

  PhaseStats stats;
  stats.wall_s = NsToSec(end - start);
  stats.results = handler.count();
  stats.hash = handler.hash();
  stats.anomalies = session.pipeline_anomalies();
  return stats;
}

/// fig19-style: paced per-tuple ingestion at c.rate tuples/sec/stream.
PhaseStats RunLatency(const Config& c, const Streams& in,
                      PlacementPolicy policy) {
  JoinSession<RTuple, STuple, BandPredicate> session(SessionConfig(c, policy));
  PlacementHandler handler;
  session.AddQuery(BandPredicate{10, 10.0f}, &handler);

  const int64_t period_ns =
      c.rate <= 0 ? 0 : static_cast<int64_t>(1e9 / (2.0 * c.rate) + 0.5);
  const int64_t start = NowNs();
  int64_t next = start;
  for (std::size_t i = 0; i < in.rs.size(); ++i) {
    while (NowNs() < next) session.Poll();  // pace against the wall clock
    session.PushR(in.rs[i], in.ts_r[i]);
    next += period_ns;
    while (NowNs() < next) session.Poll();
    session.PushS(in.ss[i], in.ts_s[i]);
    next += period_ns;
    session.Poll();
  }
  session.FinishInput();
  const int64_t end = NowNs();
  session.Stop();

  PhaseStats stats;
  stats.wall_s = NsToSec(end - start);
  stats.results = handler.count();
  stats.hash = handler.hash();
  stats.latency_avg_ms = handler.latency_ms().mean();
  stats.latency_max_ms = handler.latency_ms().max();
  stats.anomalies = session.pipeline_anomalies();
  return stats;
}

void EmitRow(JsonEmitter* json, const Config& c, const char* phase,
             PlacementPolicy policy, const PhaseStats& stats,
             int64_t tuples) {
  const double rate =
      stats.wall_s <= 0 ? 0.0 : static_cast<double>(tuples) / stats.wall_s;
  JsonRow row;
  row.Str("phase", phase)
      .Str("placement", ToString(policy))
      .Int("tuples_per_stream", tuples)
      .Int("window", c.window)
      .Int("nodes", c.nodes)
      .Int("batch", c.batch)
      .Num("wall_s", stats.wall_s)
      .Num("tuples_per_sec", rate)
      .Int("results", static_cast<int64_t>(stats.results))
      .Num("latency_avg_ms", stats.latency_avg_ms)
      .Num("latency_max_ms", stats.latency_max_ms)
      .Int("anomalies", static_cast<int64_t>(stats.anomalies));
  json->Emit(row);
}

constexpr PlacementPolicy kPolicies[] = {
    PlacementPolicy::kAuto, PlacementPolicy::kCompact,
    PlacementPolicy::kScatter, PlacementPolicy::kNone};

/// Verifies count+hash identity across policies (and zero anomalies under
/// every policy, the baseline included); returns false on mismatch.
bool CheckIdentical(const char* phase, const std::vector<PhaseStats>& stats) {
  bool ok = true;
  if (!stats.empty() && stats[0].anomalies != 0) {
    std::printf("ERROR: %s anomalies under placement=%s\n", phase,
                ToString(kPolicies[0]));
    ok = false;
  }
  for (std::size_t i = 1; i < stats.size(); ++i) {
    if (stats[i].results != stats[0].results ||
        stats[i].hash != stats[0].hash) {
      std::printf("ERROR: %s result set diverged under placement=%s "
                  "(%llu results hash %llx vs %llu hash %llx under %s)\n",
                  phase, ToString(kPolicies[i]),
                  static_cast<unsigned long long>(stats[i].results),
                  static_cast<unsigned long long>(stats[i].hash),
                  static_cast<unsigned long long>(stats[0].results),
                  static_cast<unsigned long long>(stats[0].hash),
                  ToString(kPolicies[0]));
      ok = false;
    }
    if (stats[i].anomalies != 0) {
      std::printf("ERROR: %s anomalies under placement=%s\n", phase,
                  ToString(kPolicies[i]));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Config c;
  c.tuples = flags.Int("tuples", c.tuples);
  c.lat_tuples = flags.Int("lat_tuples", std::min<int64_t>(c.tuples, 6'000));
  c.window = flags.Int("window", c.window);
  c.nodes = static_cast<int>(flags.Int("nodes", c.nodes));
  c.batch = static_cast<int>(flags.Int("batch", c.batch));
  c.rate = flags.Double("rate", c.rate);
  c.key_domain = flags.Int("domain", c.key_domain);
  c.seed = static_cast<uint64_t>(flags.Int("seed", 42));

  const Topology topo = Topology::Detect();
  PrintHeader("ablation_placement — auto vs compact vs scatter vs none",
              "ROADMAP: NUMA-aware channel placement (paper Section 7 "
              "deployment layout)");
  std::printf("band workload, count windows %lld/%lld, %d nodes, batch %d; "
              "host model: %d cpus, %d packages, %d nodes, smt %d\n\n",
              static_cast<long long>(c.window),
              static_cast<long long>(c.window), c.nodes, c.batch,
              topo.cpu_count(), topo.package_count(), topo.node_count(),
              topo.max_smt());

  JsonEmitter json(flags, "ablation_placement");

  const Streams tput_in = MakeStreams(c, c.tuples);
  const Streams lat_in = MakeStreams(c, c.lat_tuples);

  std::vector<PhaseStats> tput, lat;
  for (PlacementPolicy policy : kPolicies) {
    tput.push_back(RunThroughput(c, tput_in, policy));
    lat.push_back(RunLatency(c, lat_in, policy));
  }

  bool ok = CheckIdentical("throughput", tput);
  ok = CheckIdentical("latency", lat) && ok;

  std::printf("  %-8s  %12s  %12s  %10s  %12s  %12s\n", "policy", "tput(t/s)",
              "results", "lat tput", "lat avg(ms)", "lat max(ms)");
  for (std::size_t i = 0; i < std::size(kPolicies); ++i) {
    EmitRow(&json, c, "throughput", kPolicies[i], tput[i], c.tuples);
    EmitRow(&json, c, "latency", kPolicies[i], lat[i], c.lat_tuples);
    std::printf("  %-8s  %12.0f  %12llu  %10.0f  %12.3f  %12.3f\n",
                ToString(kPolicies[i]),
                static_cast<double>(c.tuples) / tput[i].wall_s,
                static_cast<unsigned long long>(tput[i].results),
                static_cast<double>(c.lat_tuples) / lat[i].wall_s,
                lat[i].latency_avg_ms, lat[i].latency_max_ms);
  }
  if (!ok) return 1;
  std::printf("\nresult sets identical across all %zu policies (both "
              "phases)\n",
              std::size(kPolicies));
  return 0;
}
