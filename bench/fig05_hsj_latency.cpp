// Figure 5 — latency distribution of the *original* handshake join over
// wall-clock time, for (a) |W_R| = |W_S| and (b) |W_R| = |W_S|/2, compared
// against the analytic bound |W_R||W_S| / (|W_R| + |W_S|) of Section 3.1.
//
// The paper used 200 s / 100 s windows and a 500 s run on 40 cores; the
// scaled default here is 8 s / 4 s windows over a 20 s run (the model is
// linear in the window, so shape and bound scale with it). Expectations:
// latency climbs while the windows fill, then plateaus near the bound —
// tens of thousands of times higher than LLHJ's (Figure 19).
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

void RunConfig(const char* label, double wr_s, double ws_s, double rate,
               int nodes, int batch, double duration_s, uint64_t seed,
               JsonEmitter* json) {
  Workload workload;
  workload.wr = WindowSpec::Time(static_cast<int64_t>(wr_s * 1e6));
  workload.ws = WindowSpec::Time(static_cast<int64_t>(ws_s * 1e6));
  workload.rate_per_stream = rate;
  workload.paced = true;
  workload.seed = seed;

  const int64_t window_tuples =
      WindowTuples(workload.wr, rate) > WindowTuples(workload.ws, rate)
          ? WindowTuples(workload.wr, rate)
          : WindowTuples(workload.ws, rate);

  const double bound_s = HsjMaxLatencyBound(wr_s, ws_s);
  std::printf("\n-- Fig 5(%s): |W_R| = %.0f s, |W_S| = %.0f s, rate %.0f "
              "tuples/s/stream, %d nodes --\n",
              label, wr_s, ws_s, rate, nodes);
  std::printf("model (Sec 3.1): max latency < |W_R||W_S|/(|W_R|+|W_S|) = "
              "%.2f s = %.0f ms\n",
              bound_s, bound_s * 1e3);

  RunStats stats = RunHsjBench(nodes, workload, window_tuples, batch,
                               duration_s);
  PrintLatencySeries(stats);
  std::printf("overall: avg %.1f ms, max %.1f ms, stddev %.1f ms, "
              "%llu results, %llu anomalies\n",
              stats.latency_ms.mean(), stats.latency_ms.max(),
              stats.latency_ms.stddev(),
              static_cast<unsigned long long>(stats.results),
              static_cast<unsigned long long>(stats.anomalies));
  std::printf("measured max / model bound = %.2f (expect <= ~1, approaching "
              "1 once windows are full)\n",
              stats.latency_ms.max() / (bound_s * 1e3));
  JsonRow row;
  row.Str("config", label)
      .Num("wr_s", wr_s)
      .Num("ws_s", ws_s)
      .Num("rate_per_stream", rate)
      .Int("nodes", nodes)
      .Int("batch", batch)
      .Num("model_bound_ms", bound_s * 1e3);
  json->Emit(StatsFields(row, stats));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double window_s = flags.Double("window", 8.0);
  const double rate = flags.Double("rate", 3000.0);
  const int nodes = static_cast<int>(flags.Int("nodes", 4));
  const int batch = static_cast<int>(flags.Int("batch", 64));
  const double duration = flags.Double("duration", 20.0);
  const uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));

  PrintHeader("fig05_hsj_latency — handshake join latency over time",
              "Figure 5 (a), (b); latency model of Section 3.1");
  std::printf("scaling: paper windows 200 s/100 s -> %.0f s/%.0f s; paper "
              "run 500 s -> %.0f s\n",
              window_s, window_s / 2, duration);

  JsonEmitter json(flags, "fig05_hsj_latency");
  RunConfig("a", window_s, window_s, rate, nodes, batch, duration, seed,
            &json);
  RunConfig("b", window_s / 2, window_s, rate, nodes, batch, duration, seed,
            &json);
  return 0;
}
