// Figure 20 — LLHJ latency distribution with the driver batch size reduced
// to 4 tuples (the minimum the paper's vectorized processing supports).
//
// Expected shape (paper Section 7.3.1): a batch is issued every ~1.2 ms at
// the paper's rate; average latency ~1 ms and maxima of 3-4 ms with
// occasional scheduling spikes — batching remains the dominant latency
// source, not the pipeline.
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double window_s = flags.Double("window", 8.0);
  const double rate = flags.Double("rate", 3000.0);
  const int nodes = static_cast<int>(flags.Int("nodes", 4));
  const int batch = static_cast<int>(flags.Int("batch", 4));
  const double duration = flags.Double("duration", 20.0);

  PrintHeader("fig20_llhj_batch4 — LLHJ latency with reduced batching",
              "Figure 20 (batch size 4)");
  const double batch_interval_ms = batch / (2.0 * rate) * 1e3;
  std::printf("batch %d at %.0f tuples/s/stream -> a batch every ~%.2f ms; "
              "avg latency should sit near that interval\n",
              batch, rate, batch_interval_ms);

  Workload workload;
  workload.wr = WindowSpec::Time(static_cast<int64_t>(window_s * 1e6));
  workload.ws = workload.wr;
  workload.rate_per_stream = rate;
  workload.paced = true;

  RunStats stats = RunLlhjBench(nodes, workload, batch, duration);
  PrintLatencySeries(stats);
  std::printf("overall: avg %.3f ms, max %.3f ms, stddev %.3f ms, "
              "%llu results\n",
              stats.latency_ms.mean(), stats.latency_ms.max(),
              stats.latency_ms.stddev(),
              static_cast<unsigned long long>(stats.results));
  JsonEmitter json(flags, "fig20_llhj_batch4");
  JsonRow row;
  row.Num("window_s", window_s)
      .Num("rate_per_stream", rate)
      .Int("nodes", nodes)
      .Int("batch", batch);
  json.Emit(StatsFields(row, stats));
  return 0;
}
