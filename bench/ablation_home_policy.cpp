// Ablation — home-node assignment policy (DESIGN.md Section 5). The paper
// uses round-robin "to ensure even load balancing" (Section 4.3) and notes
// it beats the original self-balancing code. This sweep compares
// round-robin, block, and hash assignment: throughput plus the imbalance of
// stored tuples across node-local windows.
#include <cstdio>

#include "bench_common.hpp"

using namespace sjoin;
using namespace sjoin::bench;

namespace {

struct PolicyResult {
  double throughput = 0;
  std::size_t min_store = 0;
  std::size_t max_store = 0;
};

PolicyResult RunPolicy(HomePolicy policy, int nodes, int64_t window,
                       int batch, double duration) {
  Workload workload;
  workload.wr = WindowSpec::Count(window);
  workload.ws = WindowSpec::Count(window);
  workload.paced = false;

  typename LlhjPipeline<RTuple, STuple, BandPredicate>::Options options;
  options.nodes = nodes;
  options.home_policy = policy;
  LlhjPipeline<RTuple, STuple, BandPredicate> pipeline(options);
  RunStats stats = RunPipelineBench(pipeline, workload, batch, duration);

  PolicyResult out;
  out.throughput = stats.throughput_per_stream();
  out.min_store = static_cast<std::size_t>(-1);
  for (int k = 0; k < nodes; ++k) {
    const std::size_t size =
        pipeline.node(k).r_store().size() + pipeline.node(k).s_store().size();
    out.min_store = std::min(out.min_store, size);
    out.max_store = std::max(out.max_store, size);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int nodes = static_cast<int>(flags.Int("nodes", 4));
  const int64_t window = flags.Int("window_tuples", 20'000);
  const double duration = flags.Double("duration", 4.0);
  const int batch = static_cast<int>(flags.Int("batch", 64));

  PrintHeader("ablation_home_policy — LLHJ home-node assignment policies",
              "Section 4.3 (round-robin default)");
  std::printf("%d nodes, count window %lld tuples\n\n", nodes,
              static_cast<long long>(window));
  std::printf("%-12s  %16s  %14s  %14s\n", "policy", "tput (t/s)",
              "min store", "max store");

  const struct {
    HomePolicy policy;
    const char* name;
  } policies[] = {{HomePolicy::kRoundRobin, "round-robin"},
                  {HomePolicy::kBlock, "block"},
                  {HomePolicy::kHash, "hash"}};
  JsonEmitter json(flags, "ablation_home_policy");
  for (const auto& p : policies) {
    PolicyResult r = RunPolicy(p.policy, nodes, window, batch, duration);
    std::printf("%-12s  %16.0f  %14zu  %14zu\n", p.name, r.throughput,
                r.min_store, r.max_store);
    json.Emit(JsonRow()
                  .Str("policy", p.name)
                  .Int("nodes", nodes)
                  .Int("window_tuples", window)
                  .Int("batch", batch)
                  .Num("tput_per_stream", r.throughput)
                  .Int("min_store", static_cast<int64_t>(r.min_store))
                  .Int("max_store", static_cast<int64_t>(r.max_store)));
  }
  std::printf("\nexpected: round-robin keeps stores near-perfectly "
              "balanced; block is balanced at window scale; hash is "
              "balanced in expectation. Throughput differences are small "
              "because scan work is proportional to store sizes.\n");
  return 0;
}
