#!/usr/bin/env bash
# Lint entry point — runs identically locally and in CI (DESIGN.md
# Section 14).
#
#   tools/lint/run_lint.sh [build-dir]       lint the tree (default: build/)
#   tools/lint/run_lint.sh --check-fixtures  prove every checker fires: each
#                                            negative fixture under
#                                            tools/lint/fixtures/ must make
#                                            sjoin_lint exit non-zero
#
# Two passes over compile_commands.json (exported by CMake unconditionally):
#   1. clang-tidy with the repo .clang-tidy config — skipped with a warning
#      when clang-tidy is not installed (diagnostics are informational; the
#      gating rules live in pass 2, which has no external dependency).
#   2. tools/lint/sjoin_lint.py — the repo-specific rules (exhaustive
#      MsgKind switches, hot-path container bans, env-knob discipline, raw
#      new/delete, raw std::mutex). Findings fail the run.
set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
LINT="$ROOT/tools/lint/sjoin_lint.py"
FIXTURES="$ROOT/tools/lint/fixtures"

if [ "${1:-}" = "--check-fixtures" ]; then
  status=0
  found_any=0
  for fixture in "$FIXTURES"/*; do
    [ -f "$fixture" ] || continue
    found_any=1
    if python3 "$LINT" "$fixture" > /dev/null 2>&1; then
      echo "run_lint.sh: FIXTURE DID NOT FIRE: $fixture" >&2
      status=1
    else
      echo "run_lint.sh: fixture fires as expected: $(basename "$fixture")"
    fi
  done
  if [ "$found_any" = 0 ]; then
    echo "run_lint.sh: no fixtures found under $FIXTURES" >&2
    status=1
  fi
  exit "$status"
fi

BUILD_DIR="${1:-$ROOT/build}"
CDB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$CDB" ]; then
  echo "run_lint.sh: $CDB not found — configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S $ROOT" >&2
  exit 2
fi

status=0

if command -v clang-tidy > /dev/null 2>&1; then
  # Translation units only; headers are covered via HeaderFilterRegex.
  mapfile -t tus < <(python3 - "$CDB" <<'EOF'
import json, os, sys
for e in json.load(open(sys.argv[1])):
    p = os.path.realpath(os.path.join(e.get("directory", ""), e["file"]))
    print(p)
EOF
)
  if ! clang-tidy --quiet -p "$BUILD_DIR" "${tus[@]}"; then
    echo "run_lint.sh: clang-tidy reported errors" >&2
    status=1
  fi
else
  echo "run_lint.sh: clang-tidy not installed; skipping .clang-tidy pass" >&2
fi

python3 "$LINT" "$BUILD_DIR" || status=1

exit "$status"
