#!/usr/bin/env python3
"""Repo-specific lint pass over compile_commands.json (DESIGN.md Section 14).

Enforces concurrency-contract and hot-path invariants that clang-tidy has no
checks for:

  switch-default       every `switch` over MsgKind must be exhaustive — a
                       `default:` would silently swallow a newly added
                       punctuation kind instead of failing -Wswitch.
  hot-path-container   no std::deque / std::map / std::unordered_map in the
                       hot-path dirs (src/llhj, src/hsj, src/runtime,
                       src/stream): node-chunked or pointer-chased layouts
                       defeat the prefetcher; use VecDeque / flat_hash /
                       sorted vectors.
  env-knob             no bare std::getenv outside src/common/env.hpp — env
                       knobs are read through the parse-and-warn helpers so
                       a misspelled value never silently selects the wrong
                       code path.
  raw-new-delete       no raw new/delete expressions outside
                       src/runtime/mempolicy.cpp — page-granular
                       allocations must flow through AllocatePages/
                       FreePages where the NUMA policy calls can see them.
                       (Placement-new is allowed: it starts object
                       lifetimes in already-owned storage.)
  raw-mutex            no std::mutex / std::lock_guard outside
                       src/common/thread_annotations.hpp — locks must be
                       the AnnotatedMutex/MutexLock wrappers so clang's
                       -Wthread-safety analysis can see them.

Scope: files under src/ reachable from compile_commands.json (headers
discovered transitively through #include "..." of in-repo paths). Pure
Python on purpose — the container running CI legs locally has no libclang;
comments and string literals are stripped before matching so prose cannot
trip a rule.

Fixtures (tools/lint/fixtures/) carry a `// LINT_AS: <path>` directive that
makes a file lint as if it lived at <path>; run_lint.sh uses this to prove
every rule fires.

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import json
import os
import re
import sys

HOT_PATH_DIRS = ("src/llhj", "src/hsj", "src/runtime", "src/stream")

BANNED_CONTAINERS = re.compile(r"\bstd\s*::\s*(deque|map|unordered_map)\s*<")
GETENV = re.compile(r"(\bstd\s*::\s*getenv\b)|(?<![\w:])getenv\s*\(")
# `new` not followed by `(` — placement-new `new (addr) T` is allowed; the
# explicit ::operator new/delete forms are caught separately.
RAW_NEW = re.compile(r"(?<![\w_])new\s+[A-Za-z_:]")
OPERATOR_NEW = re.compile(r"::\s*operator\s+(new|delete)\b")
# delete-expressions: `delete p` / `delete[] p`; `= delete;` and
# `= deleteize...` never match because they are followed by `;` or `,`.
RAW_DELETE = re.compile(r"(?<![\w_])delete\s*(\[\s*\])?\s*[A-Za-z_:(*]")
RAW_MUTEX = re.compile(r"\bstd\s*::\s*(mutex|lock_guard|unique_lock|"
                       r"scoped_lock|shared_mutex|recursive_mutex)\b")
SWITCH_KIND = re.compile(r"\bswitch\s*\(")
DEFAULT_LABEL = re.compile(r"(?<![\w_])default\s*:")
LINT_AS = re.compile(r"//\s*LINT_AS:\s*(\S+)")
INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string and char literals, preserving newlines so
    reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                break
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c == '"' or c == "'":
            quote = c
            # Raw strings: R"delim( ... )delim"
            if quote == '"' and i > 0 and text[i - 1] == "R":
                m = re.match(r'R"([^(\s]*)\(', text[i - 1:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    j = text.find(closer, i)
                    j = n if j == -1 else j + len(closer)
                    out.append("".join(ch if ch == "\n" else " "
                                       for ch in text[i:j]))
                    i = j
                    continue
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    j += 1
                    break
                j += 1
            out.append(quote + " " * max(0, j - i - 2) +
                       (quote if j <= n and j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def find_switch_defaults(code: str):
    """Yields positions of `default:` labels inside switch statements whose
    controlling expression mentions `kind` (the MsgKind dispatch switches).
    Brace matching on comment/string-stripped code."""
    for m in SWITCH_KIND.finditer(code):
        # Controlling expression: up to the matching ')'.
        depth = 0
        i = m.end() - 1
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        cond = code[m.end():i]
        if "kind" not in cond and "MsgKind" not in cond:
            continue
        # Switch body: first '{' after the ')', to its matching '}'.
        j = code.find("{", i)
        if j == -1:
            continue
        depth = 0
        k = j
        while k < len(code):
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        body = code[j:k]
        dm = DEFAULT_LABEL.search(body)
        if dm:
            yield j + dm.start()


class Linter:
    def __init__(self, repo_root: str):
        self.repo_root = os.path.realpath(repo_root)
        self.findings = []

    def relpath(self, path: str) -> str:
        return os.path.relpath(os.path.realpath(path), self.repo_root)

    def report(self, rule: str, rel: str, line: int, msg: str):
        self.findings.append((rel, line, rule, msg))

    def lint_file(self, path: str, pretend_rel: str | None = None):
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                raw = f.read()
        except OSError as e:
            print(f"sjoin_lint: cannot read {path}: {e}", file=sys.stderr)
            return
        rel = pretend_rel or self.relpath(path)
        m = LINT_AS.search(raw)
        if m and pretend_rel is None:
            rel = m.group(1)
        code = strip_comments_and_strings(raw)

        in_src = rel.startswith("src/")
        hot = any(rel.startswith(d + "/") or rel == d for d in HOT_PATH_DIRS)

        # switch-default: applies everywhere in src/ (and fixtures).
        for pos in find_switch_defaults(code):
            self.report(
                "switch-default", rel, line_of(code, pos),
                "switch over MsgKind has a `default:` label; enumerate every "
                "kind so -Wswitch flags newly added punctuation kinds")

        if hot:
            for m2 in BANNED_CONTAINERS.finditer(code):
                self.report(
                    "hot-path-container", rel, line_of(code, m2.start()),
                    f"std::{m2.group(1)} in a hot-path dir; use "
                    "sjoin::VecDeque, flat_hash, or a sorted vector")

        if in_src and rel != "src/common/env.hpp":
            for m2 in GETENV.finditer(code):
                self.report(
                    "env-knob", rel, line_of(code, m2.start()),
                    "bare getenv; read knobs through the sjoin::env "
                    "parse-and-warn helpers (src/common/env.hpp)")

        if in_src and rel != "src/runtime/mempolicy.cpp":
            for m2 in OPERATOR_NEW.finditer(code):
                self.report(
                    "raw-new-delete", rel, line_of(code, m2.start()),
                    f"raw ::operator {m2.group(1)}; use "
                    "AllocatePages/FreePages (src/runtime/mempolicy.hpp)")
            for m2 in RAW_NEW.finditer(code):
                self.report(
                    "raw-new-delete", rel, line_of(code, m2.start()),
                    "raw new-expression; engine state is owned via "
                    "std::unique_ptr/containers, page memory via "
                    "AllocatePages")
            for m2 in RAW_DELETE.finditer(code):
                self.report(
                    "raw-new-delete", rel, line_of(code, m2.start()),
                    "raw delete-expression; see raw new-expression rule")

        if in_src and rel != "src/common/thread_annotations.hpp":
            for m2 in RAW_MUTEX.finditer(code):
                self.report(
                    "raw-mutex", rel, line_of(code, m2.start()),
                    f"std::{m2.group(1)}; use sjoin::AnnotatedMutex / "
                    "sjoin::MutexLock (src/common/thread_annotations.hpp) "
                    "so -Wthread-safety sees the lock")


def gather_sources(compile_commands_path: str, repo_root: str):
    """Translation units from compile_commands.json plus all in-repo
    headers they transitively include."""
    with open(compile_commands_path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    repo_root = os.path.realpath(repo_root)
    seen: set[str] = set()
    queue: list[str] = []

    def add(path: str):
        real = os.path.realpath(path)
        if real in seen or not real.startswith(repo_root + os.sep):
            return
        if not os.path.isfile(real):
            return
        seen.add(real)
        queue.append(real)

    for entry in entries:
        add(os.path.join(entry.get("directory", ""), entry["file"]))

    src_root = os.path.join(repo_root, "src")
    while queue:
        path = queue.pop()
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        for m in INCLUDE.finditer(text):
            inc = m.group(1)
            # Project includes are rooted at src/ (see CMakeLists) or
            # relative to the including file (tests/bench helpers).
            add(os.path.join(src_root, inc))
            add(os.path.join(os.path.dirname(path), inc))
    return sorted(seen)


def main(argv: list[str]) -> int:
    if len(argv) >= 2 and argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0
    repo_root = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))

    linter = Linter(repo_root)
    files: list[str] = []
    explicit = [a for a in argv[1:] if not a.endswith("compile_commands.json")
                and not os.path.isdir(a)]
    if explicit:
        files = explicit
    else:
        cc = None
        for a in argv[1:]:
            cand = a if a.endswith("compile_commands.json") else os.path.join(
                a, "compile_commands.json")
            if os.path.isfile(cand):
                cc = cand
                break
        if cc is None:
            default = os.path.join(repo_root, "build", "compile_commands.json")
            if os.path.isfile(default):
                cc = default
        if cc is None:
            print("sjoin_lint: no compile_commands.json found; pass a build "
                  "dir (cmake exports it automatically) or explicit files",
                  file=sys.stderr)
            return 2
        files = gather_sources(cc, repo_root)

    for path in files:
        linter.lint_file(path)

    for rel, line, rule, msg in sorted(linter.findings):
        print(f"{rel}:{line}: [{rule}] {msg}")
    if linter.findings:
        print(f"sjoin_lint: {len(linter.findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"sjoin_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
