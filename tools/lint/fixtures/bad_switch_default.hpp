// Negative lint fixture: a `default:` label in a switch over MsgKind must
// trip the switch-default rule — it would silently swallow newly added
// punctuation kinds instead of failing -Wswitch.
// LINT_AS: src/llhj/bad_switch_default.hpp
#pragma once

namespace sjoin_fixture {

enum class MsgKind { kArrival, kAck };

struct Msg {
  MsgKind kind;
};

inline int Handle(const Msg& msg) {
  switch (msg.kind) {
    case MsgKind::kArrival:
      return 1;
    default:  // BAD: swallows future kinds
      return 0;
  }
}

}  // namespace sjoin_fixture
