// Negative lint fixture: a raw std::mutex / std::lock_guard outside
// src/common/thread_annotations.hpp must trip the raw-mutex rule — locks
// go through AnnotatedMutex/MutexLock so clang's -Wthread-safety analysis
// can see them.
// LINT_AS: src/stream/bad_mutex.hpp
#pragma once

#include <mutex>

namespace sjoin_fixture {

class SharedCounter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);  // BAD: analysis-blind guard
    ++count_;
  }

 private:
  std::mutex mu_;  // BAD: raw mutex, invisible to -Wthread-safety
  long count_ = 0;
};

}  // namespace sjoin_fixture
