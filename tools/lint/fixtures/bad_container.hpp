// Negative lint fixture: std::deque (and std::map/std::unordered_map) in a
// hot-path dir must trip the hot-path-container rule.
// LINT_AS: src/stream/bad_container.hpp
#pragma once

#include <deque>

namespace sjoin_fixture {

struct PendingQueue {
  std::deque<int> pending;  // BAD: node-chunked layout on the hot path
};

}  // namespace sjoin_fixture
