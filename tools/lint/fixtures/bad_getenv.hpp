// Negative lint fixture: a bare std::getenv outside src/common/env.hpp
// must trip the env-knob rule — knobs are read through the parse-and-warn
// helpers so a misspelled value never silently selects the wrong path.
// LINT_AS: src/runtime/bad_getenv.hpp
#pragma once

#include <cstdlib>

namespace sjoin_fixture {

inline bool FastModeRequested() {
  return std::getenv("SJOIN_FAST_MODE") != nullptr;  // BAD: bare getenv
}

}  // namespace sjoin_fixture
