// Negative lint fixture: raw new/delete expressions outside
// src/runtime/mempolicy.cpp must trip the raw-new-delete rule — page
// memory flows through AllocatePages/FreePages, object ownership through
// std::unique_ptr. (Placement-new is allowed and not present here.)
// LINT_AS: src/core/bad_new.hpp
#pragma once

namespace sjoin_fixture {

struct Buffer {
  int* data = nullptr;

  void Grow(unsigned n) {
    delete[] data;    // BAD: raw delete-expression
    data = new int[n];  // BAD: raw new-expression
  }
};

}  // namespace sjoin_fixture
