// One processing node of the low-latency handshake join — the paper's
// primary contribution (Section 4, Figures 12-14). Instead of queueing
// tuples along the distributed windows (the source of handshake join's
// O(window) latency), every tuple is *expedited*: forwarded to the next
// neighbour immediately on arrival, stored exactly once at its pre-assigned
// home node, and discarded when it falls off the far end.
//
// Matching follows Table 1 exactly:
//
//   state of (r, s) at crossing      evaluated where
//   -----------------------------    ------------------------------------
//   fresh/fresh                      while travelling (r scans IWS)
//   fresh r / stored s               at h_s (r scans the S store there)
//   stored r / fresh s               while travelling (r scans IWS)
//   stored/stored                    at h_s; s skips r's copy at h_r
//                                    because r's expedition flag is set
//   never met, r after s             at h_s (r scans the stored copy)
//   never met, s after r             at h_r (flag already cleared)
//
// Mechanisms:
//  * IWS  — fresh S tuples are held in the receiver's in-flight buffer
//    until the left neighbour acknowledges them (Section 4.2.2); R arrivals
//    scan it, which implements every "while travelling" row.
//  * Expedition flags + expedition-end messages (Section 4.2.3) — r's home
//    copy stays "expedited" until the end-of-pipeline marker for r returns;
//    S arrivals match only non-expedited entries. The marker is injected
//    into the S flow *at the moment r leaves the rightmost node* (processed
//    synchronously there), which pins it to exactly the right position in
//    the S-flow total order — see DESIGN.md, correctness refinement 1.
//  * Expiry tombstones — homes are a pure function of the sequence number,
//    so an expiry that overtakes its still-travelling tuple leaves a
//    tombstone at the home node and the arrival is then not stored
//    (refinement 2).
//  * High-water marks — the end nodes publish the timestamp of every tuple
//    completing its expedition, feeding punctuation generation (Section 6).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/flat_hash.hpp"
#include "common/seq_ring.hpp"
#include "common/types.hpp"
#include "llhj/home_policy.hpp"
#include "llhj/store.hpp"
#include "runtime/executor.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/staged_channel.hpp"
#include "stream/hwm.hpp"
#include "stream/message.hpp"
#include "stream/sink.hpp"

namespace sjoin {

/// Outbound slack required before consuming an arrival (forward + ack or
/// expedition-end + headroom).
inline constexpr std::size_t kLlhjArrivalSlack = 4;

template <typename R, typename S, typename Pred, typename Sink,
          typename RStore = VectorStore<R>, typename SStore = VectorStore<S>>
class LlhjNode : public Steppable {
 public:
  struct Config {
    NodeId id = 0;
    int nodes = 1;
    HomeAssigner home_r;
    HomeAssigner home_s;
    int msgs_per_step = 8;
  };

  struct Counters {
    uint64_t r_processed = 0;
    uint64_t s_processed = 0;
    uint64_t tombstoned = 0;
    uint64_t anomalies = 0;  ///< must stay 0; checked by tests
  };

  LlhjNode(const Config& config, Pred pred, Sink* sink,
           SpscQueue<FlowMsg<R>>* left_in, SpscQueue<FlowMsg<R>>* right_out,
           SpscQueue<FlowMsg<S>>* right_in, SpscQueue<FlowMsg<S>>* left_out,
           HighWaterMarks* hwm = nullptr)
      : config_(config),
        pred_(pred),
        sink_(sink),
        left_in_(left_in),
        right_in_(right_in),
        right_out_(right_out),
        left_out_(left_out),
        hwm_(hwm) {}

  bool Step() override {
    bool progress = right_out_.Drain() | left_out_.Drain();
    if constexpr (requires(Sink* s) { s->Drain(); }) {
      progress |= sink_->Drain();
    }
    // Each side consumes up to msgs_per_step messages per step as a burst:
    // the messages are processed in place off PeekBurst spans and retired
    // with a single ConsumeBurst index update, instead of one
    // acquire/release pair per message. Per-channel FIFO order and the
    // arrival backpressure gate are untouched — a blocked arrival ends the
    // burst with everything before it consumed and everything from it on
    // still queued.
    const std::size_t consumed = ProcessLeftBurst() + ProcessRightBurst();
    if (consumed > 0) {
      progress = true;
      processed_.fetch_add(consumed, std::memory_order_relaxed);
    }
    progress |= right_out_.Drain() | left_out_.Drain();
    return progress;
  }

  /// Messages consumed so far; safe to read from other threads (used for
  /// distributed quiescence detection).
  uint64_t processed_count() const {
    return processed_.load(std::memory_order_relaxed);
  }

  const Counters& counters() const { return counters_; }
  const RStore& r_store() const { return wr_; }
  const SStore& s_store() const { return ws_; }
  std::size_t inflight_s() const { return iws_.size(); }

 private:
  bool IsLeftmost() const { return config_.id == 0; }
  bool IsRightmost() const { return config_.id == config_.nodes - 1; }

  /// Consumes up to msgs_per_step left-input messages as bursts. Returns
  /// the number consumed; stops early at a backpressure-blocked arrival.
  std::size_t ProcessLeftBurst() {
    return DrainBurstBudget(left_in_,
                            static_cast<std::size_t>(config_.msgs_per_step),
                            [this](FlowMsg<R>* msg) { return HandleLeft(msg); });
  }

  /// Consumes up to msgs_per_step right-input messages as bursts.
  std::size_t ProcessRightBurst() {
    return DrainBurstBudget(
        right_in_, static_cast<std::size_t>(config_.msgs_per_step),
        [this](FlowMsg<S>* msg) { return HandleRight(msg); });
  }

  // -- Left input (Figure 13): R arrivals, acks of S, expiries of S. ---------

  /// Processes one left-input message in place (the slot is released by the
  /// caller's ConsumeBurst). Returns false iff the message is an arrival
  /// deferred by backpressure — it then must stay at the channel front.
  bool HandleLeft(FlowMsg<R>* msg) {
    switch (msg->kind) {
      case MsgKind::kArrival: {
        // Backpressure gates only the *forward* direction; control outputs
        // (expedition-ends) stage locally. Gating both directions would
        // close a wait-for cycle between neighbours (deadlock at small
        // channel capacities); this way every wait chain ends at the
        // rightmost node, which consumes unconditionally.
        if (!IsRightmost() && !right_out_.Available(kLlhjArrivalSlack)) {
          return false;
        }
        // Fig 13 line 5-6: the leftmost node assigns the home node.
        if (IsLeftmost()) msg->home = config_.home_r.Of(msg->seq);
        const NodeId home = msg->home;
        Stamped<R> r{msg->payload, msg->seq, msg->ts, msg->arrival_wall_ns};

        // Fig 13 line 7: expedite first to minimize latency.
        if (!IsRightmost()) right_out_.Push(*msg);

        // Fig 13 line 8: match against stored copies and in-flight S.
        ScanAgainstS(r);

        // Fig 13 lines 9-10: store at the home node, flagged expedited.
        if (home == config_.id) {
          if (!ConsumeTombstone(&tombstones_r_, r.seq)) {
            wr_.Insert(r, /*expedited=*/true);
          }
        }

        // Fig 13 lines 11-12, refined: the expedition ends *now*; inject the
        // marker at this exact position of the S-flow (or apply it locally).
        if (IsRightmost()) {
          if (hwm_ != nullptr) hwm_->Publish(StreamSide::kR, r.ts, r.seq);
          if (home == config_.id) {
            wr_.ClearExpedited(r.seq);
          } else {
            FlowMsg<S> end;
            end.kind = MsgKind::kExpeditionEnd;
            end.seq = r.seq;
            end.home = home;
            left_out_.Push(end);
          }
        }
        ++counters_.r_processed;
        return true;
      }
      case MsgKind::kAck: {  // Fig 13 lines 13-14
        EraseIws(msg->seq);
        return true;
      }
      case MsgKind::kExpiry: {  // of an S tuple, travelling toward h_s
        Seq seq = msg->seq;
        NodeId home = msg->home;
        if (IsLeftmost()) home = config_.home_s.Of(seq);
        if (home == config_.id) {
          if (!ws_.EraseSeq(seq)) {
            tombstones_s_.Insert(seq);
            ++counters_.tombstoned;
          }
        } else {
          FlowMsg<R> fwd = *msg;
          fwd.home = home;
          fwd.hops = static_cast<uint16_t>(msg->hops + 1);
          right_out_.Push(fwd);
        }
        return true;
      }
      case MsgKind::kFlush: {
        // LLHJ matching is entirely arrival-driven; nothing is pending.
        return true;
      }
      default:
        ++counters_.anomalies;
        return true;
    }
  }

  // -- Right input (Figure 14): S arrivals, expedition-ends, expiries of R. --

  /// Processes one right-input message in place; see HandleLeft.
  bool HandleRight(FlowMsg<S>* msg) {
    switch (msg->kind) {
      case MsgKind::kArrival: {
        // Only the forward direction is gated; the acknowledgement stages
        // if its channel is momentarily full (see the left-side comment).
        if (!IsLeftmost() && !left_out_.Available(kLlhjArrivalSlack)) {
          return false;
        }
        // Fig 14 lines 5-6: the rightmost node assigns the home node.
        if (IsRightmost()) msg->home = config_.home_s.Of(msg->seq);
        const NodeId home = msg->home;
        Stamped<S> s{msg->payload, msg->seq, msg->ts, msg->arrival_wall_ns};

        // Fig 14 line 7: expedite first.
        if (!IsLeftmost()) left_out_.Push(*msg);

        // Fig 14 line 8: avoid stored/stored double matches — only
        // non-expedited R entries participate.
        ScanAgainstR(s);

        // Fig 14 lines 9-10: fresh tuples stay virtually present until the
        // receiver acknowledges them (avoids stored/fresh misses). The
        // leftmost node has no receiver, so nothing to track there.
        if (config_.id > home && !IsLeftmost()) iws_.PushBack(s);

        // Fig 14 lines 11-12: store at the home node.
        if (home == config_.id) {
          if (!ConsumeTombstone(&tombstones_s_, s.seq)) {
            ws_.Insert(s, /*expedited=*/false);
          }
        }

        // Fig 14 line 13: acknowledge to the right-hand sender (the
        // rightmost node received s from the driver — nothing to ack).
        if (!IsRightmost()) {
          FlowMsg<R> ack;
          ack.kind = MsgKind::kAck;
          ack.ref_side = StreamSide::kS;
          ack.seq = s.seq;
          right_out_.Push(ack);
        }

        if (IsLeftmost() && hwm_ != nullptr) {
          hwm_->Publish(StreamSide::kS, s.ts, s.seq);
        }
        ++counters_.s_processed;
        return true;
      }
      case MsgKind::kExpeditionEnd: {  // Fig 14 lines 14-19
        if (msg->home == config_.id) {
          wr_.ClearExpedited(msg->seq);  // no-op if expired/tombstoned
        } else {
          left_out_.Push(*msg);
        }
        return true;
      }
      case MsgKind::kExpiry: {  // of an R tuple, travelling toward h_r
        Seq seq = msg->seq;
        NodeId home = msg->home;
        if (IsRightmost()) home = config_.home_r.Of(seq);
        if (home == config_.id) {
          if (!wr_.EraseSeq(seq)) {
            tombstones_r_.Insert(seq);
            ++counters_.tombstoned;
          }
        } else {
          FlowMsg<S> fwd = *msg;
          fwd.home = home;
          fwd.hops = static_cast<uint16_t>(msg->hops + 1);
          left_out_.Push(fwd);
        }
        return true;
      }
      case MsgKind::kFlush: {
        return true;
      }
      default:
        ++counters_.anomalies;
        return true;
    }
  }

  // -- Matching ----------------------------------------------------------------

  void ScanAgainstS(const Stamped<R>& r) {
    // Stored copies: each S tuple rests on exactly one node, so across the
    // whole pipeline this evaluates each stored pair once (at h_s).
    ws_.ForEach(r.value, [&](const StoreEntry<S>& entry) {
      if (pred_(r.value, entry.tuple.value)) {
        sink_->Emit(MakeResult(r, entry.tuple, config_.id));
      }
    });
    // In-flight fresh S tuples: the "while travelling" evaluations.
    iws_.ForEach([&](const Stamped<S>& s) {
      if (pred_(r.value, s.value)) {
        sink_->Emit(MakeResult(r, s, config_.id));
      }
    });
  }

  void ScanAgainstR(const Stamped<S>& s) {
    wr_.ForEach(s.value, [&](const StoreEntry<R>& entry) {
      if (!entry.expedited && pred_(entry.tuple.value, s.value)) {
        sink_->Emit(MakeResult(entry.tuple, s, config_.id));
      }
    });
  }

  // -- Helpers -----------------------------------------------------------------

  static bool ConsumeTombstone(FlatSet<Seq>* tombs, Seq seq) {
    return tombs->Erase(seq);
  }

  bool EraseIws(Seq seq) { return iws_.Erase(seq); }

  Config config_;
  Pred pred_;
  Sink* sink_;

  SpscQueue<FlowMsg<R>>* left_in_;
  SpscQueue<FlowMsg<S>>* right_in_;
  StagedChannel<FlowMsg<R>> right_out_;  // disconnected on rightmost node
  StagedChannel<FlowMsg<S>> left_out_;   // disconnected on leftmost node

  HighWaterMarks* hwm_;

  RStore wr_;               // node-local R window (with expedition flags)
  SStore ws_;               // node-local S window
  SeqRing<Stamped<S>> iws_;  // fresh S received, not yet acked from left

  FlatSet<Seq> tombstones_r_;
  FlatSet<Seq> tombstones_s_;

  Counters counters_;
  std::atomic<uint64_t> processed_{0};
};

}  // namespace sjoin
