// One processing node of the low-latency handshake join — the paper's
// primary contribution (Section 4, Figures 12-14). Instead of queueing
// tuples along the distributed windows (the source of handshake join's
// O(window) latency), every tuple is *expedited*: forwarded to the next
// neighbour immediately on arrival, stored exactly once at its pre-assigned
// home node, and discarded when it falls off the far end.
//
// Matching follows Table 1 exactly:
//
//   state of (r, s) at crossing      evaluated where
//   -----------------------------    ------------------------------------
//   fresh/fresh                      while travelling (r scans IWS)
//   fresh r / stored s               at h_s (r scans the S store there)
//   stored r / fresh s               while travelling (r scans IWS)
//   stored/stored                    at h_s; s skips r's copy at h_r
//                                    because r's expedition flag is set
//   never met, r after s             at h_s (r scans the stored copy)
//   never met, s after r             at h_r (flag already cleared)
//
// Mechanisms:
//  * IWS  — fresh S tuples are held in the receiver's in-flight buffer
//    until the left neighbour acknowledges them (Section 4.2.2); R arrivals
//    scan it, which implements every "while travelling" row.
//  * Expedition flags + expedition-end messages (Section 4.2.3) — r's home
//    copy stays "expedited" until the end-of-pipeline marker for r returns;
//    S arrivals match only non-expedited entries. The marker is injected
//    into the S flow *at the moment r leaves the rightmost node* (processed
//    synchronously there), which pins it to exactly the right position in
//    the S-flow total order — see DESIGN.md, correctness refinement 1.
//  * Expiry tombstones — homes are a pure function of the sequence number,
//    so an expiry that overtakes its still-travelling tuple leaves a
//    tombstone at the home node and the arrival is then not stored
//    (refinement 2).
//  * High-water marks — the end nodes publish the timestamp of every tuple
//    completing its expedition, feeding punctuation generation (Section 6).
//  * Multi-query sharing — the node evaluates a whole QuerySet per window
//    crossing (one store traversal, N predicates, results tagged with the
//    matching QueryId), amortizing transport and window maintenance across
//    concurrent queries.
//  * Batch-aware matching — runs of consecutive arrivals are forwarded as
//    one channel burst and probed against the local store in a single pass
//    (entry-major for scan stores: each entry is loaded once and tested
//    against every probe of the run).
//  * Epoch-tagged query sets (DESIGN.md Section 10) — live AddQuery/
//    RemoveQuery installs a new epoch; the kEpochChange punctuation cascades
//    through both flows and every tuple carries its push epoch. A crossing
//    is evaluated under the snapshot of max(probe epoch, entry epoch) — the
//    epoch the later input was pushed under — which is deterministic under
//    any thread interleaving. Because LLHJ probes are always fresh arrivals
//    in driver-flow order, a node that has processed the punctuation of
//    epoch E on both flows can never emit a result of an earlier epoch
//    again; it publishes an epoch marker into its result queue at exactly
//    that point (retired-epoch draining).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include <span>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/seq_ring.hpp"
#include "common/types.hpp"
#include "llhj/home_policy.hpp"
#include "llhj/store.hpp"
#include "runtime/executor.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/staged_channel.hpp"
#include "stream/hwm.hpp"
#include "stream/message.hpp"
#include "stream/query_set.hpp"
#include "stream/sink.hpp"

namespace sjoin {

/// Outbound slack required before consuming an arrival (forward + ack or
/// expedition-end + headroom).
inline constexpr std::size_t kLlhjArrivalSlack = 4;

template <typename R, typename S, typename Pred, typename Sink,
          typename RStore = VectorStore<R>, typename SStore = VectorStore<S>>
class LlhjNode : public Steppable {
 public:
  struct Config {
    NodeId id = 0;
    int nodes = 1;
    HomeAssigner home_r;
    HomeAssigner home_s;
    int msgs_per_step = 8;
  };

  struct Counters {
    uint64_t r_processed = 0;
    uint64_t s_processed = 0;
    uint64_t tombstoned = 0;
    uint64_t anomalies = 0;  ///< must stay 0; checked by tests
  };

  /// `registry` holds one frozen QuerySet per epoch (epoch 0 = the set the
  /// pipeline started with). Within an epoch the hot path reads an
  /// immutable snapshot with no synchronization; the registry mutex is
  /// touched only when an epoch punctuation switches the active snapshot.
  LlhjNode(const Config& config, const QueryEpochRegistry<Pred>* registry,
           Sink* sink,
           SpscQueue<FlowMsg<R>>* left_in, SpscQueue<FlowMsg<R>>* right_out,
           SpscQueue<FlowMsg<S>>* right_in, SpscQueue<FlowMsg<S>>* left_out,
           HighWaterMarks* hwm = nullptr)
      : config_(config),
        snaps_(registry),
        sink_(sink),
        left_in_(left_in),
        right_in_(right_in),
        right_out_(right_out),
        left_out_(left_out),
        hwm_(hwm) {}

  /// Placement hook (runs on this node's pinned thread, before any
  /// production anywhere — see ThreadedExecutor's start barrier): pull the
  /// input rings onto this node's NUMA node and first-touch the owner-local
  /// staging buffers here instead of on the pipeline-building thread.
  void OnThreadStart() override {
    left_in_->PrefaultByConsumer();
    right_in_->PrefaultByConsumer();
    right_out_.Prewarm(kStagePrewarm);
    left_out_.Prewarm(kStagePrewarm);
    if constexpr (requires(Sink* s) { s->Prewarm(kStagePrewarm); }) {
      sink_->Prewarm(kStagePrewarm);
    }
  }

  bool Step() override {
    bool progress = right_out_.Drain() | left_out_.Drain();
    if constexpr (requires(Sink* s) { s->Drain(); }) {
      progress |= sink_->Drain();
    }
    // Each side consumes up to msgs_per_step messages per step as a burst:
    // the messages are processed in place off PeekBurst spans and retired
    // with a single ConsumeBurst index update, instead of one
    // acquire/release pair per message. Per-channel FIFO order and the
    // arrival backpressure gate are untouched — a blocked arrival ends the
    // burst with everything before it consumed and everything from it on
    // still queued.
    const std::size_t consumed = ProcessLeftBurst() + ProcessRightBurst();
    if (consumed > 0) {
      progress = true;
      processed_.fetch_add(consumed, std::memory_order_relaxed);
    }
    progress |= right_out_.Drain() | left_out_.Drain();
    return progress;
  }

  /// Messages consumed so far; safe to read from other threads (used for
  /// distributed quiescence detection).
  uint64_t processed_count() const {
    return processed_.load(std::memory_order_relaxed);
  }

  const Counters& counters() const { return counters_; }
  const RStore& r_store() const { return wr_; }
  const SStore& s_store() const { return ws_; }
  std::size_t inflight_s() const { return iws_.size(); }

 private:
  bool IsLeftmost() const { return config_.id == 0; }
  bool IsRightmost() const { return config_.id == config_.nodes - 1; }

  /// Consumes up to msgs_per_step left-input messages as bursts. Runs of
  /// consecutive arrivals are probed against the store in a single pass
  /// (batch-aware matching); control messages are handled one by one.
  /// Stops early at a backpressure-capped arrival run.
  std::size_t ProcessLeftBurst() {
    return DrainBurstBudgetBatched(
        left_in_, static_cast<std::size_t>(config_.msgs_per_step),
        IsArrival<R>,
        [this](FlowMsg<R>* msgs, std::size_t run) {
          return HandleLeftArrivals(msgs, run);
        },
        [this](FlowMsg<R>* msg) { return HandleLeft(msg); });
  }

  /// Consumes up to msgs_per_step right-input messages as bursts.
  std::size_t ProcessRightBurst() {
    return DrainBurstBudgetBatched(
        right_in_, static_cast<std::size_t>(config_.msgs_per_step),
        IsArrival<S>,
        [this](FlowMsg<S>* msgs, std::size_t run) {
          return HandleRightArrivals(msgs, run);
        },
        [this](FlowMsg<S>* msg) { return HandleRight(msg); });
  }

  // -- Left input (Figure 13): R arrivals, acks of S, expiries of S. ---------

  /// Consumes a run of left-input R arrivals as one batch: burst-forward,
  /// one store traversal for all k probes (and all registered queries),
  /// then per-tuple home bookkeeping in flow order. Returns the number
  /// consumed; less than `run` (possibly 0) when outbound backpressure caps
  /// the batch — the rest stays at the channel front.
  //
  // Backpressure gates only the *forward* direction; control outputs
  // (expedition-ends) stage locally. Gating both directions would close a
  // wait-for cycle between neighbours (deadlock at small channel
  // capacities); this way every wait chain ends at the rightmost node,
  // which consumes unconditionally.
  std::size_t HandleLeftArrivals(FlowMsg<R>* msgs, std::size_t run) {
    std::size_t k = run;
    if (!IsRightmost()) {
      k = std::min(run, right_out_.ArrivalBudget(kLlhjArrivalSlack));
      if (k == 0) return 0;
    }
    // Fig 13 lines 5-6: the leftmost node assigns the home nodes.
    if (IsLeftmost()) {
      for (std::size_t j = 0; j < k; ++j) {
        msgs[j].home = config_.home_r.Of(msgs[j].seq);
      }
    }
    // Fig 13 line 7: expedite the whole run first to minimize latency.
    if (!IsRightmost()) {
      right_out_.PushBurst(std::span<const FlowMsg<R>>(msgs, k));
    }
    // Fig 13 line 8: match against stored copies and in-flight S — one
    // traversal for the whole batch.
    probe_r_.clear();
    for (std::size_t j = 0; j < k; ++j) {
      probe_r_.push_back(Stamped<R>{msgs[j].payload, msgs[j].seq, msgs[j].ts,
                                    msgs[j].arrival_wall_ns, msgs[j].epoch});
    }
    ScanBatchAgainstS(probe_r_.data(), k);
    // Fig 13 lines 9-12 per tuple, in flow order: store at the home node
    // (flagged expedited), then end the expedition at the rightmost node —
    // the marker is injected at exactly this position of the S flow.
    for (std::size_t j = 0; j < k; ++j) {
      const NodeId home = msgs[j].home;
      const Stamped<R>& r = probe_r_[j];
      if (home == config_.id) {
        if (!ConsumeTombstone(&tombstones_r_, r.seq)) {
          wr_.Insert(r, /*expedited=*/true);
        }
      }
      if (IsRightmost()) {
        if (home == config_.id) {
          wr_.ClearExpedited(r.seq);
        } else {
          FlowMsg<S> end;
          end.kind = MsgKind::kExpeditionEnd;
          end.seq = r.seq;
          end.home = home;
          left_out_.Push(end);
        }
      }
    }
    if (IsRightmost() && hwm_ != nullptr) {
      // Expeditions complete in FIFO order; publishing the last tuple of
      // the batch covers every earlier one.
      hwm_->Publish(StreamSide::kR, probe_r_[k - 1].ts, probe_r_[k - 1].seq);
    }
    counters_.r_processed += k;
    return k;
  }

  /// Processes one left-input *control* message in place (arrivals go
  /// through HandleLeftArrivals). Returns false iff deferred.
  bool HandleLeft(FlowMsg<R>* msg) {
    switch (msg->kind) {
      case MsgKind::kAck: {  // Fig 13 lines 13-14
        EraseIws(msg->seq);
        return true;
      }
      case MsgKind::kExpiry: {  // of an S tuple, travelling toward h_s
        Seq seq = msg->seq;
        NodeId home = msg->home;
        if (IsLeftmost()) home = config_.home_s.Of(seq);
        if (home == config_.id) {
          if (!ws_.EraseSeq(seq)) {
            tombstones_s_.Insert(seq);
            ++counters_.tombstoned;
          }
        } else {
          FlowMsg<R> fwd = *msg;
          fwd.home = home;
          fwd.hops = static_cast<uint16_t>(msg->hops + 1);
          right_out_.Push(fwd);
        }
        return true;
      }
      case MsgKind::kFlush: {
        // LLHJ matching is entirely arrival-driven; nothing is pending.
        return true;
      }
      case MsgKind::kEpochChange: {
        // Every pre-boundary R probe precedes this punctuation in the left
        // flow, so it can cascade immediately (contrast HsjNode, which must
        // hold it back for relocations).
        OnEpochPunctuation(/*left_flow=*/true, msg->epoch);
        if (!IsRightmost()) right_out_.Push(*msg);
        return true;
      }
      case MsgKind::kLossPunctuation: {
        // Shed-at-ingest loss bound (DESIGN.md Section 12): the shed tuples
        // never entered the pipeline, so nothing here references them —
        // republish the bound into the result queue at this in-band
        // position (exactly once: no cascade) and move on.
        sink_->Emit(MakeLossMark<R, S>(msg->ref_side, msg->seq,
                                       LossPunctCount(*msg), config_.id));
        return true;
      }
      // No default: the switch is deliberately exhaustive so adding a
      // MsgKind fails -Wswitch (enforced by tools/lint/sjoin_lint.py) —
      // kinds a control handler must never see are anomalies, not silently
      // swallowed.
      case MsgKind::kArrival:
      case MsgKind::kExpeditionEnd:
        ++counters_.anomalies;
        return true;
    }
    ++counters_.anomalies;  // out-of-range kind (corrupted message)
    return true;
  }

  // -- Right input (Figure 14): S arrivals, expedition-ends, expiries of R. --

  /// Consumes a run of right-input S arrivals as one batch; mirrors
  /// HandleLeftArrivals. Only the forward direction is gated; the
  /// acknowledgements stage if their channel is momentarily full.
  std::size_t HandleRightArrivals(FlowMsg<S>* msgs, std::size_t run) {
    std::size_t k = run;
    if (!IsLeftmost()) {
      k = std::min(run, left_out_.ArrivalBudget(kLlhjArrivalSlack));
      if (k == 0) return 0;
    }
    // Fig 14 lines 5-6: the rightmost node assigns the home nodes.
    if (IsRightmost()) {
      for (std::size_t j = 0; j < k; ++j) {
        msgs[j].home = config_.home_s.Of(msgs[j].seq);
      }
    }
    // Fig 14 line 7: expedite first.
    if (!IsLeftmost()) {
      left_out_.PushBurst(std::span<const FlowMsg<S>>(msgs, k));
    }
    // Fig 14 line 8: one traversal of the R store for the whole batch;
    // only non-expedited entries participate (stored/stored dedup).
    probe_s_.clear();
    for (std::size_t j = 0; j < k; ++j) {
      probe_s_.push_back(Stamped<S>{msgs[j].payload, msgs[j].seq, msgs[j].ts,
                                    msgs[j].arrival_wall_ns, msgs[j].epoch});
    }
    ScanBatchAgainstR(probe_s_.data(), k);
    ack_buf_.clear();
    for (std::size_t j = 0; j < k; ++j) {
      const NodeId home = msgs[j].home;
      const Stamped<S>& s = probe_s_[j];
      // Fig 14 lines 9-10: fresh tuples stay virtually present until the
      // receiver acknowledges them (avoids stored/fresh misses). The
      // leftmost node has no receiver, so nothing to track there.
      if (config_.id > home && !IsLeftmost()) iws_.PushBack(s);

      // Fig 14 lines 11-12: store at the home node.
      if (home == config_.id) {
        if (!ConsumeTombstone(&tombstones_s_, s.seq)) {
          ws_.Insert(s, /*expedited=*/false);
        }
      }

      // Fig 14 line 13: acknowledge to the right-hand sender (the
      // rightmost node received s from the driver — nothing to ack).
      if (!IsRightmost()) {
        FlowMsg<R> ack;
        ack.kind = MsgKind::kAck;
        ack.ref_side = StreamSide::kS;
        ack.seq = s.seq;
        ack_buf_.push_back(ack);
      }
    }
    if (!ack_buf_.empty()) {
      right_out_.PushBurst(std::span<const FlowMsg<R>>(ack_buf_));
    }
    if (IsLeftmost() && hwm_ != nullptr) {
      hwm_->Publish(StreamSide::kS, probe_s_[k - 1].ts, probe_s_[k - 1].seq);
    }
    counters_.s_processed += k;
    return k;
  }

  /// Processes one right-input *control* message in place; see HandleLeft.
  bool HandleRight(FlowMsg<S>* msg) {
    switch (msg->kind) {
      case MsgKind::kExpeditionEnd: {  // Fig 14 lines 14-19
        if (msg->home == config_.id) {
          wr_.ClearExpedited(msg->seq);  // no-op if expired/tombstoned
        } else {
          left_out_.Push(*msg);
        }
        return true;
      }
      case MsgKind::kExpiry: {  // of an R tuple, travelling toward h_r
        Seq seq = msg->seq;
        NodeId home = msg->home;
        if (IsRightmost()) home = config_.home_r.Of(seq);
        if (home == config_.id) {
          if (!wr_.EraseSeq(seq)) {
            tombstones_r_.Insert(seq);
            ++counters_.tombstoned;
          }
        } else {
          FlowMsg<S> fwd = *msg;
          fwd.home = home;
          fwd.hops = static_cast<uint16_t>(msg->hops + 1);
          left_out_.Push(fwd);
        }
        return true;
      }
      case MsgKind::kFlush: {
        return true;
      }
      case MsgKind::kEpochChange: {
        OnEpochPunctuation(/*left_flow=*/false, msg->epoch);
        if (!IsLeftmost()) left_out_.Push(*msg);
        return true;
      }
      case MsgKind::kLossPunctuation: {
        // See HandleLeft: republish the bound, exactly once, no cascade.
        sink_->Emit(MakeLossMark<R, S>(msg->ref_side, msg->seq,
                                       LossPunctCount(*msg), config_.id));
        return true;
      }
      // No default (see HandleLeft): exhaustive so -Wswitch flags new kinds.
      case MsgKind::kArrival:
      case MsgKind::kAck:
        ++counters_.anomalies;
        return true;
    }
    ++counters_.anomalies;  // out-of-range kind (corrupted message)
    return true;
  }

  // -- Matching ----------------------------------------------------------------
  //
  // Every crossing pair is evaluated under the query-set snapshot of
  // max(probe epoch, entry epoch) — the epoch the later-pushed input
  // belongs to. The common case (no epoch change in flight) degenerates to
  // one epoch compare per batch plus one per emitted match.

  using Snapshot = QueryEpochSnapshot<Pred>;

  /// Snapshot for epoch `e`; a null return means an epoch that was never
  /// installed reached the node — a protocol bug counted as an anomaly.
  const Snapshot* SnapshotFor(Epoch e) {
    const Snapshot* snap = snaps_.Get(e);
    if (snap == nullptr) ++counters_.anomalies;
    return snap;
  }

  /// Emits one result tagged with the session-wide query id that matched
  /// (the result's epoch is max of the pair's push epochs, via MakeResult).
  void EmitResult(const Stamped<R>& r, const Stamped<S>& s, QueryId q) {
    ResultMsg<R, S> m = MakeResult(r, s, config_.id);
    m.query = q;
    sink_->Emit(m);
  }

  /// Evaluates the pair's epoch snapshot on the crossing pair, emitting one
  /// tagged result per matching query.
  void EmitMatches(const Stamped<R>& r, const Stamped<S>& s) {
    const Snapshot* snap = SnapshotFor(r.epoch > s.epoch ? r.epoch : s.epoch);
    if (snap == nullptr) return;
    snap->set.Match(r.value, s.value, [&](QueryId lane) {
      EmitResult(r, s, snap->GlobalId(lane));
    });
  }

  void ScanBatchAgainstS(const Stamped<R>* rs, std::size_t k) {
    // Probes of one run share their flow position but may straddle an
    // epoch boundary only in theory for LLHJ (the punctuation breaks runs);
    // the grouping loop costs one compare per batch and keeps the store
    // sweep single-epoch either way.
    ForEachEpochGroup(rs, k, [&](const Stamped<R>* g, std::size_t n) {
      ScanGroupAgainstS(g, n);
    });
  }

  void ScanGroupAgainstS(const Stamped<R>* rs, std::size_t k) {
    const Epoch pe = rs[0].epoch;
    const Snapshot* snap = SnapshotFor(pe);
    // Stored copies: each S tuple rests on exactly one node, so across the
    // whole pipeline each (pair, query) combination is evaluated once (at
    // h_s) — one store traversal covers all k probes and all queries, and
    // on scan stores with a SIMD mapping the sweep runs on the packed
    // compare kernels (store.hpp MatchBatch). Entries pushed under a LATER
    // epoch than the probe are skipped here (the per-match epoch check) and
    // re-swept below under their own snapshot.
    if (snap != nullptr) {
      ws_.template MatchBatch<true>(
          snap->set, rs, k,
          [&](std::size_t j, QueryId lane, const StoreEntry<S>& entry) {
            if (entry.tuple.epoch > pe) return;
            EmitResult(rs[j], entry.tuple, snap->GlobalId(lane));
          });
    }
    // Rare (only while an install is in flight): entries stored under a
    // later epoch than a probe that lingered in the channels. Scalar sweep
    // under the entry's snapshot; the store's max_epoch early-out makes
    // this free in steady state. Every store visits newest-first
    // (descending Seq — pinned by test_stores.cpp); emission here is
    // order-independent regardless, as each entry is evaluated against all
    // k probes in isolation and result ordering is restored downstream.
    ws_.ForEachEpochAfter(pe, [&](const StoreEntry<S>& entry) {
      const Snapshot* es = SnapshotFor(entry.tuple.epoch);
      if (es == nullptr) return;
      for (std::size_t j = 0; j < k; ++j) {
        es->set.Match(rs[j].value, entry.tuple.value, [&](QueryId lane) {
          EmitResult(rs[j], entry.tuple, es->GlobalId(lane));
        });
      }
    });
    // In-flight fresh S tuples: the "while travelling" evaluations (the
    // IWS is a handful of entries — scalar evaluation, per-pair epoch).
    iws_.ForEach([&](const Stamped<S>& s) {
      for (std::size_t j = 0; j < k; ++j) EmitMatches(rs[j], s);
    });
  }

  void ScanBatchAgainstR(const Stamped<S>* ss, std::size_t k) {
    ForEachEpochGroup(ss, k, [&](const Stamped<S>* g, std::size_t n) {
      ScanGroupAgainstR(g, n);
    });
  }

  void ScanGroupAgainstR(const Stamped<S>* ss, std::size_t k) {
    const Epoch pe = ss[0].epoch;
    const Snapshot* snap = SnapshotFor(pe);
    // Expedited entries are skipped at emission: matches are rare, so the
    // flag (and epoch) check costs per match, not per evaluation.
    if (snap != nullptr) {
      wr_.template MatchBatch<false>(
          snap->set, ss, k,
          [&](std::size_t j, QueryId lane, const StoreEntry<R>& entry) {
            if (entry.expedited || entry.tuple.epoch > pe) return;
            EmitResult(entry.tuple, ss[j], snap->GlobalId(lane));
          });
    }
    // Newest-first per the store epoch-walk contract; order-independent
    // here (see the ws_ sweep above).
    wr_.ForEachEpochAfter(pe, [&](const StoreEntry<R>& entry) {
      if (entry.expedited) return;
      const Snapshot* es = SnapshotFor(entry.tuple.epoch);
      if (es == nullptr) return;
      for (std::size_t j = 0; j < k; ++j) {
        es->set.Match(entry.tuple.value, ss[j].value, [&](QueryId lane) {
          EmitResult(entry.tuple, ss[j], es->GlobalId(lane));
        });
      }
    });
  }

  /// Splits a probe run into maximal same-epoch groups (epochs are
  /// monotone in flow order; outside an install this is one group and one
  /// compare).
  template <typename T, typename F>
  static void ForEachEpochGroup(const Stamped<T>* probes, std::size_t k,
                                F&& f) {
    std::size_t i = 0;
    while (i < k) {
      std::size_t run = 1;
      while (i + run < k && probes[i + run].epoch == probes[i].epoch) ++run;
      f(probes + i, run);
      i += run;
    }
  }

  // -- Epoch punctuations ------------------------------------------------------

  /// Records that the punctuation of `epoch` passed this node on one flow.
  /// Once BOTH flows have seen epoch E, every future probe here carries an
  /// epoch >= E (probes are flow-ordered), so no result of an epoch < E can
  /// be emitted again: publish the epoch marker into the result queue —
  /// the in-band signal the collector aggregates for retired-epoch
  /// draining.
  void OnEpochPunctuation(bool left_flow, Epoch epoch) {
    Epoch& side = left_flow ? left_epoch_ : right_epoch_;
    if (epoch > side) side = epoch;
    const Epoch both = std::min(left_epoch_, right_epoch_);
    while (marker_epoch_ < both) {
      ++marker_epoch_;
      ResultMsg<R, S> mark;
      mark.query = kEpochMarkQuery;
      mark.epoch = marker_epoch_;
      mark.origin = config_.id;
      sink_->Emit(mark);
    }
    // Snapshots below `both` can still be needed for max(probe, entry)
    // lookups only via probes >= both, so pruning the cache is safe (the
    // registry keeps every epoch; this only trims the MRU list).
    snaps_.PruneBelow(both);
  }

  // -- Helpers -----------------------------------------------------------------

  static bool ConsumeTombstone(FlatSet<Seq>* tombs, Seq seq) {
    return tombs->Erase(seq);
  }

  bool EraseIws(Seq seq) { return iws_.Erase(seq); }

  Config config_;
  EpochSnapshotCache<Pred> snaps_;
  Sink* sink_;

  SpscQueue<FlowMsg<R>>* left_in_;
  SpscQueue<FlowMsg<S>>* right_in_;
  StagedChannel<FlowMsg<R>> right_out_;  // disconnected on rightmost node
  StagedChannel<FlowMsg<S>> left_out_;   // disconnected on leftmost node

  // Epoch punctuation bookkeeping: highest epoch seen per input flow and
  // the highest marker already published (see OnEpochPunctuation).
  Epoch left_epoch_ = 0;
  Epoch right_epoch_ = 0;
  Epoch marker_epoch_ = 0;

  HighWaterMarks* hwm_;

  RStore wr_;               // node-local R window (with expedition flags)
  SStore ws_;               // node-local S window
  SeqRing<Stamped<S>> iws_;  // fresh S received, not yet acked from left

  FlatSet<Seq> tombstones_r_;
  FlatSet<Seq> tombstones_s_;

  // Scratch buffers of the batch arrival paths (reused across steps).
  std::vector<Stamped<R>> probe_r_;
  std::vector<Stamped<S>> probe_s_;
  std::vector<FlowMsg<R>> ack_buf_;

  Counters counters_;
  std::atomic<uint64_t> processed_{0};
};

}  // namespace sjoin
