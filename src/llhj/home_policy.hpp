// Home-node assignment for low-latency handshake join. Every tuple is
// assigned a home node when it enters the pipeline (paper Section 4.1,
// step 1); the default is round-robin "to ensure even load balancing"
// (Section 4.3). The policy must be a pure function of the sequence number:
// expiry messages are tagged with the home independently of the arrival, so
// both must agree (DESIGN.md, correctness refinement 2).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace sjoin {

enum class HomePolicy : uint8_t {
  kRoundRobin,  ///< seq % nodes (paper default)
  kBlock,       ///< contiguous blocks of `block` tuples per node
  kHash,        ///< pseudo-random node per tuple
};

/// Deterministic seq -> home-node map.
class HomeAssigner {
 public:
  HomeAssigner() = default;
  HomeAssigner(HomePolicy policy, int nodes, int block = 64)
      : policy_(policy), nodes_(nodes), block_(block < 1 ? 1 : block) {}

  NodeId Of(Seq seq) const {
    const uint64_t n = static_cast<uint64_t>(nodes_);
    switch (policy_) {
      case HomePolicy::kRoundRobin:
        return static_cast<NodeId>(seq % n);
      case HomePolicy::kBlock:
        return static_cast<NodeId>((seq / static_cast<uint64_t>(block_)) % n);
      case HomePolicy::kHash: {
        uint64_t state = seq + 0x1234abcdULL;
        return static_cast<NodeId>(SplitMix64(state) % n);
      }
    }
    return 0;
  }

  int nodes() const { return nodes_; }
  HomePolicy policy() const { return policy_; }

 private:
  HomePolicy policy_ = HomePolicy::kRoundRobin;
  int nodes_ = 1;
  int block_ = 64;
};

}  // namespace sjoin
