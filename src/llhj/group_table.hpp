// Lane-grouped key table for the equi-join hash store (DESIGN.md
// Section 15) — the F14/Swiss-table treatment applied to HashStore's probe
// path. Instead of per-key intrusive chains (one pointer chase per stored
// duplicate), keys live in contiguous GROUPS of 8 lanes:
//
//   keys[8g .. 8g+7]   the join keys resident in group g (SoA lane array)
//   refs[8g .. 8g+7]   the slot-slab index each lane's entry lives at
//   full[g]            occupancy byte: bit b set iff lane 8g+b is live
//   tomb[g]            tombstone byte: bit b set iff lane 8g+b was erased
//
// A probe hashes to its home group and compares 8 keys per step with one
// packed grouped-equality kernel (common/simd.hpp, runtime-dispatched):
// the compare mask ANDed with full[g] yields the candidate lanes, and the
// walk advances to the next group only while the current one has no truly
// EMPTY lane (full|tomb == 0xff). Duplicate keys are simply multiple live
// lanes — there is no chain structure to maintain, so erase is a bitmask
// flip (full bit off, tomb bit on) and displacement never moves entries.
//
// ORDER INVARIANT: candidates are visited in PER-KEY INSERTION ORDER, by
// construction. Inserts take the first truly EMPTY lane along the probe
// sequence — tombstoned lanes are never reused — and erases only turn
// full lanes into tombstones. Empty lanes therefore only ever disappear
// between rehashes, so each successive insert of a key lands at a strictly
// later scan position (group in probe order, then lane index) than the
// key's previous one, and the probe walk — which visits lanes in exactly
// that scan order — yields the key's live lanes oldest-first. The owning
// store leans on this: no sort, no Seq gather, no entry-slab touch before
// emission. Tombstone reuse would save a little space but would scramble
// this order and put a per-probe sort back on the hot path — measured at
// ~30% of the whole probe in bench/ablation_simd_probe.cpp equi_hash.
//
// Termination stays the classic rule: no key is ever placed beyond the
// first group that contains an empty lane, so the probe walk stops there.
// Rehashes trigger at 3/4 occupancy counting tombstones — a step tighter
// than FlatMap's 7/8, because tombstoned lanes here are pure probe-path
// drag (scanned and masked on every walk through their cluster, and never
// reclaimed in place); the earlier purge trades a slightly higher
// amortized insert cost for measurably shorter duplicate clusters. A
// rehash drops all tombstones; one that is mostly reclaiming tombstones
// keeps the group count, one that is genuinely out of room doubles it. To carry the order invariant across, the rehash
// walks the old groups circularly starting just past an open group (one
// with an empty lane): no cluster spans an open group, so every key's
// lanes are revisited — and thus reinserted — in its own scan order.
//
// All lane arrays are carved from ONE slab (runtime/mempolicy.hpp
// AllocateSlab), so a table above the huge-page threshold is backed by 2 MB
// pages when the host offers them — rung (c) of the raw-speed ladder.
//
// The table stores (key, ref) lanes only; entry payloads and visit
// semantics beyond the per-key order are the owning store's business
// (llhj/store.hpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>

#include "common/flat_hash.hpp"
#include "common/simd.hpp"
#include "runtime/mempolicy.hpp"

namespace sjoin {

/// Selects the grouped-equality kernel matching the key width. The store
/// instantiates int64 (join keys); tests instantiate int32 as well so both
/// kernel widths stay exercised end-to-end.
template <typename K>
struct GroupEqKernel;

template <>
struct GroupEqKernel<int64_t> {
  static void Sweep(const SimdKernels& kernels, const int64_t* keys,
                    const uint8_t* full, std::size_t n, int64_t key,
                    uint64_t* mask) {
    kernels.eq_groups_i64(keys, full, n, key, mask);
  }
};

template <>
struct GroupEqKernel<int32_t> {
  static void Sweep(const SimdKernels& kernels, const int32_t* keys,
                    const uint8_t* full, std::size_t n, int32_t key,
                    uint64_t* mask) {
    kernels.eq_groups_i32(keys, full, n, key, mask);
  }
};

template <typename K>
class GroupTable {
 public:
  GroupTable() = default;
  GroupTable(GroupTable&& other) noexcept { MoveFrom(other); }
  GroupTable& operator=(GroupTable&& other) noexcept {
    if (this != &other) {
      FreeSlab(&slab_);
      MoveFrom(other);
    }
    return *this;
  }
  GroupTable(const GroupTable&) = delete;
  GroupTable& operator=(const GroupTable&) = delete;
  ~GroupTable() { FreeSlab(&slab_); }

  std::size_t size() const { return size_; }

  /// Adds one (key, ref) lane. Duplicate keys are fine (each gets its own
  /// lane); `ref` disambiguates them on Erase. Successive inserts of the
  /// same key are visited by ForEachCandidate in this insertion order (see
  /// the header invariant).
  void Insert(K key, int32_t ref) {
    if (groups_ == 0 ||
        (size_ + tombs_ + 1) * 4 >= groups_ * kGroupLanes * 3) {
      Rehash(NextGroups());
    }
    InsertNoGrow(key, ref);
    ++size_;
  }

  /// Tombstones the lane holding exactly (key, ref). Returns false when no
  /// such lane exists.
  bool Erase(K key, int32_t ref) {
    if (groups_ == 0) return false;
    std::size_t g = HomeGroup(key);
    while (true) {
      unsigned live = full_[g];
      while (live != 0) {
        const unsigned lane = static_cast<unsigned>(__builtin_ctz(live));
        live &= live - 1;
        const std::size_t idx = g * kGroupLanes + lane;
        if (keys_[idx] == key && refs_[idx] == ref) {
          const uint8_t bit = static_cast<uint8_t>(1u << lane);
          full_[g] = static_cast<uint8_t>(full_[g] & ~bit);
          tomb_[g] = static_cast<uint8_t>(tomb_[g] | bit);
          ++tombs_;
          --size_;
          return true;
        }
      }
      if (GroupHasEmptyLane(g)) return false;
      g = (g + 1) & gmask_;
    }
  }

  /// Calls f(ref) for every live lane whose key equals `key`, in the key's
  /// INSERTION order (the header invariant). The walk sweeps a contiguous
  /// RUN of groups per kernel call — from the probe's position through the
  /// first group with an empty lane, capped at 8 groups (one mask word)
  /// and at the physical table edge — so a duplicate-heavy cluster costs
  /// one packed compare per 64 lanes instead of one indirect call per
  /// group, and the wider rungs (AVX-512: two groups per compare) actually
  /// see multi-group spans. The run-end scan reads only ctrl bytes already
  /// in cache.
  template <typename F>
  void ForEachCandidate(K key, F&& f) const {
    if (groups_ == 0) return;
    const SimdKernels& kernels = ActiveKernels();
    std::size_t g = HomeGroup(key);
    while (true) {
      bool open = GroupHasEmptyLane(g);
      std::size_t run = 1;
      while (!open && run < 8 && g + run < groups_) {
        open = GroupHasEmptyLane(g + run);
        ++run;
      }
      uint64_t word = 0;
      GroupEqKernel<K>::Sweep(kernels, keys_ + g * kGroupLanes, full_ + g,
                              run * kGroupLanes, key, &word);
      while (word != 0) {
        const unsigned lane = static_cast<unsigned>(__builtin_ctzll(word));
        word &= word - 1;
        f(refs_[g * kGroupLanes + lane]);
      }
      if (open) return;
      g += run;
      if (g >= groups_) g = 0;  // the probe ring wraps at the table edge
    }
  }

  /// Pulls a probe key's home cluster toward L1 ahead of ForEachCandidate
  /// — the batching lever in HashStore::MatchBatch (hash all probe keys
  /// first, prefetch every home cluster, then scan). Fetches the ctrl
  /// byte, two key lines (duplicate clusters typically span 2-3 groups)
  /// and the refs line, so the group scan doesn't serialize on cold lines
  /// mid-walk.
  void PrefetchKey(K key) const {
    if (groups_ == 0) return;
    const std::size_t lane0 = HomeGroup(key) * kGroupLanes;
    __builtin_prefetch(full_ + (lane0 / kGroupLanes));
    __builtin_prefetch(keys_ + lane0);
    __builtin_prefetch(keys_ + lane0 + kGroupLanes);
    __builtin_prefetch(refs_ + lane0);
  }

  // -- introspection (tests, bench, DESIGN.md Section 15 accounting) ---------

  std::size_t group_count() const { return groups_; }
  std::size_t tombstone_lanes() const { return tombs_; }
  SlabBacking backing() const { return slab_.backing; }

 private:
  static constexpr std::size_t kMinGroups = 2;  // 16 lanes

  void MoveFrom(GroupTable& other) {
    slab_ = other.slab_;
    keys_ = other.keys_;
    refs_ = other.refs_;
    full_ = other.full_;
    tomb_ = other.tomb_;
    groups_ = other.groups_;
    gmask_ = other.gmask_;
    size_ = other.size_;
    tombs_ = other.tombs_;
    other.slab_ = Slab{};
    other.keys_ = nullptr;
    other.refs_ = nullptr;
    other.full_ = nullptr;
    other.tomb_ = nullptr;
    other.groups_ = other.gmask_ = other.size_ = other.tombs_ = 0;
  }

  /// True when group g has at least one never-used lane — the probe-walk
  /// terminator (tombstoned lanes do NOT terminate; see header).
  bool GroupHasEmptyLane(std::size_t g) const {
    return (static_cast<unsigned>(full_[g]) | tomb_[g]) != 0xffu;
  }

  std::size_t HomeGroup(K key) const {
    return Mix64Hash{}(static_cast<uint64_t>(static_cast<int64_t>(key))) &
           gmask_;
  }

  std::size_t NextGroups() const {
    if (groups_ == 0) return kMinGroups;
    // Double only when the LIVE entries need the room; a table whose
    // occupancy is mostly tombstones rehashes at the same size (pure
    // tombstone purge), mirroring FlatMap.
    return (size_ + 1) * 2 > groups_ * kGroupLanes ? groups_ * 2 : groups_;
  }

  /// Places (key, ref) at the first truly EMPTY lane along the probe
  /// sequence. Tombstoned lanes are deliberately skipped — reusing them
  /// would break the per-key insertion-order invariant (see header).
  void InsertNoGrow(K key, int32_t ref) {
    std::size_t g = HomeGroup(key);
    while (!GroupHasEmptyLane(g)) g = (g + 1) & gmask_;
    const unsigned lane = static_cast<unsigned>(__builtin_ctz(
        ~(static_cast<unsigned>(full_[g]) | tomb_[g]) & 0xffu));
    const uint8_t bit = static_cast<uint8_t>(1u << lane);
    const std::size_t idx = g * kGroupLanes + lane;
    keys_[idx] = key;
    refs_[idx] = ref;
    full_[g] = static_cast<uint8_t>(full_[g] | bit);
  }

  /// Rebuilds into `new_groups` groups, dropping every tombstone. The old
  /// groups are walked circularly starting just past an open group so each
  /// key's lanes are reinserted in its own scan order — no cluster spans
  /// an open group, so the circular cut never lands inside one (see the
  /// header invariant). The 3/4 load bound guarantees an open group
  /// exists.
  void Rehash(std::size_t new_groups) {
    Slab old_slab = slab_;
    slab_ = Slab{};
    const K* old_keys = keys_;
    const int32_t* old_refs = refs_;
    const uint8_t* old_full = full_;
    const uint8_t* old_tomb = tomb_;
    const std::size_t old_groups = groups_;

    std::size_t start = 0;
    for (std::size_t g = 0; g < old_groups; ++g) {
      if ((static_cast<unsigned>(old_full[g]) | old_tomb[g]) != 0xffu) {
        start = g + 1;
        break;
      }
    }

    AllocateArrays(new_groups);
    tombs_ = 0;
    for (std::size_t k = 0; k < old_groups; ++k) {
      const std::size_t g =
          start + k < old_groups ? start + k : start + k - old_groups;
      unsigned live = old_full[g];
      while (live != 0) {
        const unsigned lane = static_cast<unsigned>(__builtin_ctz(live));
        live &= live - 1;
        const std::size_t idx = g * kGroupLanes + lane;
        InsertNoGrow(old_keys[idx], old_refs[idx]);
      }
    }
    FreeSlab(&old_slab);
  }

  /// Carves keys / refs / full / tomb from one slab: keys first (the slab
  /// base is page-aligned, so every 8-lane key group sits aligned within a
  /// cache line), then refs, then the two ctrl byte arrays. The whole slab
  /// is zeroed so dead-lane key bytes read deterministically (the kernels
  /// may load them; the full-mask AND discards the compare result).
  void AllocateArrays(std::size_t new_groups) {
    groups_ = new_groups;
    gmask_ = new_groups - 1;
    const std::size_t lanes = new_groups * kGroupLanes;
    const std::size_t keys_bytes = lanes * sizeof(K);
    const std::size_t refs_bytes = lanes * sizeof(int32_t);
    const std::size_t total = keys_bytes + refs_bytes + 2 * new_groups;
    slab_ = AllocateSlab(total);
    auto* base = static_cast<unsigned char*>(slab_.addr);
    std::memset(base, 0, total);
    keys_ = reinterpret_cast<K*>(base);
    refs_ = reinterpret_cast<int32_t*>(base + keys_bytes);
    full_ = reinterpret_cast<uint8_t*>(base + keys_bytes + refs_bytes);
    tomb_ = full_ + new_groups;
  }

  Slab slab_;
  K* keys_ = nullptr;
  int32_t* refs_ = nullptr;
  uint8_t* full_ = nullptr;
  uint8_t* tomb_ = nullptr;
  std::size_t groups_ = 0;
  std::size_t gmask_ = 0;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

}  // namespace sjoin
