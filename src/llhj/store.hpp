// Node-local window stores for low-latency handshake join. In LLHJ every
// tuple rests on exactly one node (its home node), which is what makes
// local index structures possible (paper Sections 4.1 and 7.6):
//
//  * VectorStore — order-preserving scan store for arbitrary predicates
//    (the band join of the benchmark). Backed by a contiguous ring buffer:
//    inserts append at the tail, window expiries pop the head without any
//    element movement (expiries arrive oldest-first per home node), and
//    the probe scan walks at most two contiguous segments.
//  * HashStore   — hash index keyed on the join attribute for equi-joins
//    (the Table 2 "with index" configuration). Entries live in a slot slab
//    with intrusive per-key chains; two flat open-addressing tables map
//    join-key -> chain and seq -> slot, so expiry and expedition-end
//    handling are O(1) with no per-node allocation.
//
// R-side stores additionally carry the *expedition flag* of Section 4.2.3:
// entries stay "expedited" until the tuple's expedition-end message returns
// to the home node; S arrivals match only non-expedited entries to avoid
// stored/stored double matches. Because insertions and expedition-ends both
// happen in sequence order, the flags are monotone over insertion order —
// cleared entries form a prefix and still-expedited entries a suffix.
// VectorStore::ClearExpedited exploits this: it scans newest-to-oldest and
// stops at the first non-expedited entry instead of walking the whole
// window. All stores implement the same concept:
//
//   void Insert(const Stamped<T>&, bool expedited);
//   bool EraseSeq(Seq);                 // window expiry
//   bool ClearExpedited(Seq);           // expedition-end
//   template <P, F> void ForEach(const P& probe, F&& f) const;
//   std::size_t size() const;
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace sjoin {

/// An entry of a node-local window.
template <typename T>
struct StoreEntry {
  Stamped<T> tuple;
  bool expedited = false;
};

/// Scan store: supports any predicate; ForEach visits every entry.
/// Contiguous ring buffer, oldest entry at the head.
template <typename T>
class VectorStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    if (entries_.empty() || size_ == entries_.size()) Grow();
    entries_[(head_ + size_) & mask_] = StoreEntry<T>{t, expedited};
    ++size_;
  }

  bool EraseSeq(Seq seq) {
    if (size_ == 0) return false;
    // Expiries arrive oldest-first per home node, so the head is the
    // overwhelmingly typical target: a pure index bump, no element moves.
    if (At(0).tuple.seq == seq) {
      head_ = (head_ + 1) & mask_;
      --size_;
      return true;
    }
    for (std::size_t i = 1; i < size_; ++i) {
      if (At(i).tuple.seq != seq) continue;
      // Out-of-order erase (rare): close the gap by shifting the shorter
      // side of the ring.
      if (i < size_ - i) {
        for (std::size_t j = i; j > 0; --j) At(j) = At(j - 1);
        head_ = (head_ + 1) & mask_;
      } else {
        for (std::size_t j = i; j + 1 < size_; ++j) At(j) = At(j + 1);
      }
      --size_;
      return true;
    }
    return false;
  }

  bool ClearExpedited(Seq seq) {
    // Expedition-ends arrive in insertion order, so flags are monotone:
    // non-expedited prefix, expedited suffix. The target is the oldest
    // expedited entry — scan newest-to-oldest and bail out as soon as the
    // suffix ends instead of walking the non-expedited bulk of the window.
    for (std::size_t i = size_; i > 0; --i) {
      StoreEntry<T>& entry = At(i - 1);
      if (!entry.expedited) return false;
      if (entry.tuple.seq == seq) {
        entry.expedited = false;
        return true;
      }
    }
    return false;
  }

  /// Visits every entry (probe is ignored — scan store).
  template <typename Probe, typename F>
  void ForEach(const Probe& /*probe*/, F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) f(At(i));
  }

  /// Batch probe: evaluates `n` probes against the store in ONE traversal.
  /// Entry-major order — each entry is loaded once and tested against every
  /// probe while it is register/cache resident, so a burst of k arrivals
  /// costs one window walk instead of k. probe_at(j) yields probe j (scan
  /// store: only used by the callback); f(j, entry) is called for every
  /// (probe, entry) combination.
  template <typename ProbeAt, typename F>
  void ForEachBatch(std::size_t n, ProbeAt&& probe_at, F&& f) const {
    (void)probe_at;  // scan store: the callback already knows its probes
    for (std::size_t i = 0; i < size_; ++i) {
      const StoreEntry<T>& entry = At(i);
      for (std::size_t j = 0; j < n; ++j) f(j, entry);
    }
  }

  std::size_t size() const { return size_; }

  std::size_t expedited_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < size_; ++i) n += At(i).expedited ? 1 : 0;
    return n;
  }

 private:
  StoreEntry<T>& At(std::size_t i) { return entries_[(head_ + i) & mask_]; }
  const StoreEntry<T>& At(std::size_t i) const {
    return entries_[(head_ + i) & mask_];
  }

  void Grow() {
    const std::size_t new_cap = entries_.empty() ? 16 : entries_.size() * 2;
    std::vector<StoreEntry<T>> next(new_cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = At(i);
    entries_ = std::move(next);
    mask_ = new_cap - 1;
    head_ = 0;
  }

  std::vector<StoreEntry<T>> entries_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Hash index store for equi-joins. OwnKey extracts the key from this
/// store's tuple type; ProbeKey extracts it from the probing (opposite
/// stream) tuple type. ForEach visits only the matching chain, in
/// insertion order. Erase/clear are O(1) via the seq -> slot table.
template <typename T, typename OwnKey, typename ProbeKey>
class HashStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    const int64_t key = OwnKey{}(t.value);
    const int32_t slot = AllocSlot();
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.entry = StoreEntry<T>{t, expedited};
    s.key = key;
    s.next = kNil;
    bool created = false;
    Chain& chain = chains_.GetOrInsert(key, &created);
    if (created) {
      chain.head = chain.tail = slot;
      s.prev = kNil;
    } else {
      slots_[static_cast<std::size_t>(chain.tail)].next = slot;
      s.prev = chain.tail;
      chain.tail = slot;
    }
    seq_index_.Insert(t.seq, slot);
    ++size_;
  }

  bool EraseSeq(Seq seq) {
    const int32_t* found = seq_index_.Find(seq);
    if (found == nullptr) return false;
    const int32_t slot = *found;
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    Chain* chain = chains_.Find(s.key);
    if (s.prev != kNil) {
      slots_[static_cast<std::size_t>(s.prev)].next = s.next;
    } else {
      chain->head = s.next;
    }
    if (s.next != kNil) {
      slots_[static_cast<std::size_t>(s.next)].prev = s.prev;
    } else {
      chain->tail = s.prev;
    }
    if (chain->head == kNil) chains_.Erase(s.key);
    seq_index_.Erase(seq);
    free_.push_back(slot);
    --size_;
    return true;
  }

  bool ClearExpedited(Seq seq) {
    const int32_t* found = seq_index_.Find(seq);
    if (found == nullptr) return false;
    slots_[static_cast<std::size_t>(*found)].entry.expedited = false;
    return true;
  }

  template <typename Probe, typename F>
  void ForEach(const Probe& probe, F&& f) const {
    const Chain* chain = chains_.Find(ProbeKey{}(probe));
    if (chain == nullptr) return;
    for (int32_t slot = chain->head; slot != kNil;
         slot = slots_[static_cast<std::size_t>(slot)].next) {
      f(slots_[static_cast<std::size_t>(slot)].entry);
    }
  }

  /// Batch probe. A hash index visits a per-probe chain, so the traversal
  /// is probe-major (there is no shared walk to amortize); the batch form
  /// still saves the per-message dispatch around it.
  template <typename ProbeAt, typename F>
  void ForEachBatch(std::size_t n, ProbeAt&& probe_at, F&& f) const {
    for (std::size_t j = 0; j < n; ++j) {
      ForEach(probe_at(j),
              [&](const StoreEntry<T>& entry) { f(j, entry); });
    }
  }

  std::size_t size() const { return size_; }

 private:
  static constexpr int32_t kNil = -1;

  struct Slot {
    StoreEntry<T> entry;
    int64_t key = 0;     ///< join key, for chain maintenance on erase
    int32_t prev = kNil;  ///< previous slot in this key's chain
    int32_t next = kNil;  ///< next slot in this key's chain
  };

  struct Chain {
    int32_t head = kNil;
    int32_t tail = kNil;
  };

  int32_t AllocSlot() {
    if (!free_.empty()) {
      const int32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    return static_cast<int32_t>(slots_.size() - 1);
  }

  std::vector<Slot> slots_;
  std::vector<int32_t> free_;
  FlatMap<int64_t, Chain> chains_;
  FlatMap<Seq, int32_t> seq_index_;
  std::size_t size_ = 0;
};

/// Ordered (tree) index store for band/range predicates — the "different
/// kinds of indices" the paper names as future work (Sections 7.6 and 9).
/// Entries are kept sorted on OwnKey; a probe visits only the key range
/// [ProbeLow(probe), ProbeHigh(probe)], so a band join degrades from a full
/// window scan to a range lookup (the predicate still filters remaining
/// dimensions).
template <typename T, typename OwnKey, typename ProbeLow, typename ProbeHigh>
class OrderedStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    const int64_t key = OwnKey{}(t.value);
    tree_.emplace(key, StoreEntry<T>{t, expedited});
    seq_to_key_.Insert(t.seq, key);
  }

  bool EraseSeq(Seq seq) {
    const int64_t* key = seq_to_key_.Find(seq);
    if (key == nullptr) return false;
    auto [lo, hi] = tree_.equal_range(*key);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.tuple.seq == seq) {
        tree_.erase(it);
        break;
      }
    }
    seq_to_key_.Erase(seq);
    return true;
  }

  bool ClearExpedited(Seq seq) {
    const int64_t* key = seq_to_key_.Find(seq);
    if (key == nullptr) return false;
    auto [lo, hi] = tree_.equal_range(*key);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.tuple.seq == seq) {
        it->second.expedited = false;
        return true;
      }
    }
    return false;
  }

  template <typename Probe, typename F>
  void ForEach(const Probe& probe, F&& f) const {
    auto it = tree_.lower_bound(ProbeLow{}(probe));
    const auto end = tree_.upper_bound(ProbeHigh{}(probe));
    for (; it != end; ++it) f(it->second);
  }

  /// Batch probe (probe-major: each probe has its own key range).
  template <typename ProbeAt, typename F>
  void ForEachBatch(std::size_t n, ProbeAt&& probe_at, F&& f) const {
    for (std::size_t j = 0; j < n; ++j) {
      ForEach(probe_at(j),
              [&](const StoreEntry<T>& entry) { f(j, entry); });
    }
  }

  std::size_t size() const { return tree_.size(); }

 private:
  std::multimap<int64_t, StoreEntry<T>> tree_;
  FlatMap<Seq, int64_t> seq_to_key_;
};

}  // namespace sjoin
