// Node-local window stores for low-latency handshake join. In LLHJ every
// tuple rests on exactly one node (its home node), which is what makes
// local index structures possible (paper Sections 4.1 and 7.6):
//
//  * VectorStore — order-preserving scan store for arbitrary predicates
//    (the band join of the benchmark). Backed by a contiguous ring buffer:
//    inserts append at the tail, window expiries pop the head without any
//    element movement (expiries arrive oldest-first per home node), and
//    the probe scan walks at most two contiguous segments.
//  * HashStore   — hash index keyed on the join attribute for equi-joins
//    (the Table 2 "with index" configuration). Entries live in a slot slab
//    indexed by a lane-grouped key table (llhj/group_table.hpp): 8 keys +
//    8 slot refs per group, probed 8-wide with the packed grouped-equality
//    kernels, Swiss-table/F14 style. A flat seq -> slot table keeps expiry
//    and expedition-end handling O(1) with no per-node allocation.
//  * ChainHashStore — the pre-grouping implementation (intrusive per-key
//    chains, one pointer chase per duplicate). Kept verbatim as the
//    equivalence oracle and the chain-walk baseline the ablation bench
//    measures the grouped probe path against; not used by any pipeline.
//
// R-side stores additionally carry the *expedition flag* of Section 4.2.3:
// entries stay "expedited" until the tuple's expedition-end message returns
// to the home node; S arrivals match only non-expedited entries to avoid
// stored/stored double matches. Because insertions and expedition-ends both
// happen in sequence order, the flags are monotone over insertion order —
// cleared entries form a prefix and still-expedited entries a suffix.
// VectorStore::ClearExpedited exploits this: it scans newest-to-oldest and
// stops at the first non-expedited entry instead of walking the whole
// window. All stores implement the same concept:
//
//   void Insert(const Stamped<T>&, bool expedited);
//   bool EraseSeq(Seq);                 // window expiry
//   bool ClearExpedited(Seq);           // expedition-end
//   template <P, F> void ForEach(const P& probe, F&& f) const;
//   template <bool L, Pred, P, F> void MatchBatch(queries, probes, k, f);
//                                       // batch probe x query evaluation
//   std::size_t size() const;
//
// SIMD probe path (DESIGN.md Section 9): VectorStore keeps the hot
// predicate columns — the int32 band/equi key, the optional float band key,
// and the sequence number — in structure-of-arrays lanes that mirror the
// entry ring (same head/mask indexing, moved in tandem on every insert,
// erase and grow). MatchBatch sweeps those lanes with the packed-compare
// kernels of common/simd.hpp: one loaded block of entries is tested against
// k probes x N query predicates, the vector compares produce match bitmasks,
// and result emission walks the set bits. Types without a SimdEntryLanes
// mapping skip lane maintenance (except the always-present Seq lane) and
// scan through the generic scalar path — results are identical either way.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <type_traits>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"
#include "llhj/group_table.hpp"
#include "runtime/mempolicy.hpp"
#include "stream/query_set.hpp"

namespace sjoin {

/// An entry of a node-local window.
template <typename T>
struct StoreEntry {
  Stamped<T> tuple;
  bool expedited = false;
};

/// Scan store: supports any predicate; ForEach visits every entry.
/// Contiguous ring buffer, oldest entry at the head, with the hot predicate
/// columns mirrored in SoA lanes for the SIMD probe path (see header).
template <typename T>
class VectorStore {
  using Lanes = SimdEntryLanes<T>;
  static constexpr bool kHasLanes = Lanes::kEnabled;

 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    if (entries_.empty() || size_ == entries_.size()) Grow();
    const std::size_t pos = (head_ + size_) & mask_;
    entries_[pos] = StoreEntry<T>{t, expedited};
    lane_seq_[pos] = t.seq;
    if constexpr (kHasLanes) {
      lane_k0_[pos] = Lanes::K0(t.value);
      if constexpr (Lanes::kHasF32) lane_k1_[pos] = Lanes::K1(t.value);
    }
    if (t.epoch > max_epoch_) max_epoch_ = t.epoch;
    ++size_;
  }

  bool EraseSeq(Seq seq) { return TakeSeq(seq, nullptr); }

  /// EraseSeq that also hands out the erased tuple (the HSJ expiry chase
  /// needs the victim to keep it travelling as a dying arrival). `out` may
  /// be null.
  bool TakeSeq(Seq seq, Stamped<T>* out) {
    if (size_ == 0) return false;
    // Expiries arrive oldest-first per home node, so the head is the
    // overwhelmingly typical target: a pure index bump, no element moves.
    if (At(0).tuple.seq == seq) {
      if (out != nullptr) *out = At(0).tuple;
      head_ = (head_ + 1) & mask_;
      --size_;
      return true;
    }
    // Out-of-order erase (rare): locate via a packed sweep of the Seq lane,
    // then close the gap by shifting the shorter side of the ring.
    const std::size_t i = FindSeq(seq);
    if (i == kNpos) return false;
    if (out != nullptr) *out = At(i).tuple;
    EraseAt(i);
    return true;
  }

  bool ClearExpedited(Seq seq) {
    // Expedition-ends arrive in insertion order, so flags are monotone:
    // non-expedited prefix, expedited suffix. The target is the oldest
    // expedited entry — scan newest-to-oldest and bail out as soon as the
    // suffix ends instead of walking the non-expedited bulk of the window.
    for (std::size_t i = size_; i > 0; --i) {
      StoreEntry<T>& entry = At(i - 1);
      if (!entry.expedited) return false;
      if (entry.tuple.seq == seq) {
        entry.expedited = false;
        return true;
      }
    }
    return false;
  }

  /// Visits every entry (probe is ignored — scan store).
  template <typename Probe, typename F>
  void ForEach(const Probe& /*probe*/, F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) f(At(i));
  }

  /// Batch probe fused with query evaluation — the SIMD scan hot path.
  /// Tests every entry against k probes x N registered queries and calls
  /// f(j, q, entry) for each matching (probe j, query q, entry) combination.
  /// When the (Pred, ProbeT, T) direction has a SIMD mapping, the window is
  /// swept in L1-resident blocks of key lanes: each block is loaded once,
  /// the packed-compare kernels produce one match bitmask per (probe,
  /// query), and emission walks the set bits. Otherwise this is the generic
  /// entry-major scalar scan. Both paths produce identical result sets
  /// (same arithmetic; see common/simd.hpp). kProbeIsLeft gives the
  /// predicate argument order: true => pred(probe, entry).
  template <bool kProbeIsLeft, typename Pred, typename ProbeT, typename F>
  void MatchBatch(const QuerySet<Pred>& queries, const Stamped<ProbeT>* probes,
                  std::size_t k, F&& f) const {
    // Self-joins (ProbeT == T) stay on the generic path: the SIMD traits
    // are keyed on (Pred, Probe, Entry) types only, so with equal types
    // both probe directions would resolve to ONE specialization and an
    // asymmetric predicate would be evaluated with its arguments swapped
    // in one of them. kProbeIsLeft orientation is always honored below.
    if constexpr (QuerySet<Pred>::template SimdCapable<ProbeT, T>() &&
                  !std::is_same_v<ProbeT, T>) {
      if (size_ == 0) return;
      SimdMatchScratch scratch;
      const std::size_t first = std::min(size_, entries_.size() - head_);
      SweepLanes(queries, probes, k, head_, 0, first, &scratch, f);
      SweepLanes(queries, probes, k, 0, first, size_ - first, &scratch, f);
    } else {
      for (std::size_t i = 0; i < size_; ++i) {
        const StoreEntry<T>& entry = At(i);
        for (std::size_t j = 0; j < k; ++j) {
          queries.template MatchOriented<kProbeIsLeft>(
              probes[j].value, entry.tuple.value,
              [&](QueryId q) { f(j, q, entry); });
        }
      }
    }
  }

  std::size_t size() const { return size_; }

  /// Highest query epoch ever inserted (monotone; erases do not lower it).
  /// `max_epoch() <= e` lets callers skip ForEachEpochAfter entirely — the
  /// steady-state fast path when no epoch change is in flight.
  Epoch max_epoch() const { return max_epoch_; }

  /// Visits every entry whose tuple was pushed under an epoch later than
  /// `e`. Entries are inserted in flow order and epochs are monotone in
  /// flow order, so these form a suffix of the ring: the walk starts at the
  /// newest entry and stops at the first old-epoch one — O(newer entries),
  /// not O(window).
  template <typename F>
  void ForEachEpochAfter(Epoch e, F&& f) const {
    if (max_epoch_ <= e) return;
    for (std::size_t i = size_; i > 0; --i) {
      const StoreEntry<T>& entry = At(i - 1);
      if (entry.tuple.epoch <= e) break;
      f(entry);
    }
  }

  std::size_t expedited_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < size_; ++i) n += At(i).expedited ? 1 : 0;
    return n;
  }

  /// Which mempolicy rung backs the SoA key lanes (pages below the
  /// huge-page threshold, THP/hugetlb above it; kNone before first Grow).
  SlabBacking lane_backing() const { return lane_seq_.backing(); }

  // -- FIFO access (HSJ window segments ride on the same ring) ---------------

  const StoreEntry<T>& Front() const { return At(0); }
  const StoreEntry<T>& Back() const { return At(size_ - 1); }
  Seq FrontSeq() const { return lane_seq_[head_]; }
  Seq BackSeq() const { return lane_seq_[(head_ + size_ - 1) & mask_]; }

  void PopFront() {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  StoreEntry<T>& At(std::size_t i) { return entries_[(head_ + i) & mask_]; }
  const StoreEntry<T>& At(std::size_t i) const {
    return entries_[(head_ + i) & mask_];
  }

  /// One contiguous lane segment (physical offset `phys`, logical offset
  /// `base`, `len` entries), swept in kSimdBlock chunks: a chunk of both key
  /// lanes stays L1-resident while all k probes and all N queries test it.
  template <typename Pred, typename ProbeT, typename F>
  void SweepLanes(const QuerySet<Pred>& queries, const Stamped<ProbeT>* probes,
                  std::size_t k, std::size_t phys, std::size_t base,
                  std::size_t len, SimdMatchScratch* scratch, F&& f) const {
    for (std::size_t off = 0; off < len; off += kSimdBlock) {
      const std::size_t n = std::min(kSimdBlock, len - off);
      SimdLaneBlock lanes;
      lanes.k0 = lane_k0_.data() + phys + off;
      if constexpr (Lanes::kHasF32) lanes.k1 = lane_k1_.data() + phys + off;
      const std::size_t queries_n = queries.size();
      for (std::size_t q = 0; q < queries_n; ++q) {
        for (std::size_t j = 0; j < k; ++j) {
          queries.template Matches<T>(static_cast<QueryId>(q),
                                      probes[j].value, lanes, n, scratch);
          ForEachSetBit(scratch->mask, n, [&](std::size_t i) {
            f(j, static_cast<QueryId>(q), At(base + off + i));
          });
        }
      }
    }
  }

  /// Logical index of the entry carrying `seq` (packed sweep of the Seq
  /// lane), or kNpos.
  std::size_t FindSeq(Seq seq) const {
    if (size_ == 0) return kNpos;
    const std::size_t first = std::min(size_, entries_.size() - head_);
    const std::size_t i = FindSeqInSegment(head_, 0, first, seq);
    if (i != kNpos) return i;
    return FindSeqInSegment(0, first, size_ - first, seq);
  }

  std::size_t FindSeqInSegment(std::size_t phys, std::size_t base,
                               std::size_t len, Seq seq) const {
    const SimdKernels& kernels = ActiveKernels();
    uint64_t mask[kSimdBlockWords];
    for (std::size_t off = 0; off < len; off += kSimdBlock) {
      const std::size_t n = std::min(kSimdBlock, len - off);
      kernels.eq_u64(lane_seq_.data() + phys + off, n, seq, mask);
      for (std::size_t w = 0; w < SimdMaskWords(n); ++w) {
        if (mask[w] != 0) {
          return base + off + w * 64 +
                 static_cast<std::size_t>(__builtin_ctzll(mask[w]));
        }
      }
    }
    return kNpos;
  }

  /// Closes the gap at logical index i by shifting the shorter side of the
  /// ring; entry and lane slots move in tandem.
  void EraseAt(std::size_t i) {
    if (i == 0) {
      head_ = (head_ + 1) & mask_;
      --size_;
      return;
    }
    if (i < size_ - i) {
      for (std::size_t j = i; j > 0; --j) CopySlot(j, j - 1);
      head_ = (head_ + 1) & mask_;
    } else {
      for (std::size_t j = i; j + 1 < size_; ++j) CopySlot(j, j + 1);
    }
    --size_;
  }

  /// Copies logical slot src into logical slot dst across the entry ring
  /// and every lane.
  void CopySlot(std::size_t dst, std::size_t src) {
    const std::size_t d = (head_ + dst) & mask_;
    const std::size_t s = (head_ + src) & mask_;
    entries_[d] = entries_[s];
    lane_seq_[d] = lane_seq_[s];
    if constexpr (kHasLanes) {
      lane_k0_[d] = lane_k0_[s];
      if constexpr (Lanes::kHasF32) lane_k1_[d] = lane_k1_[s];
    }
  }

  void Grow() {
    const std::size_t new_cap = entries_.empty() ? 16 : entries_.size() * 2;
    std::vector<StoreEntry<T>> next(new_cap);
    SlabArray<Seq> next_seq(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      const std::size_t from = (head_ + i) & mask_;
      next[i] = entries_[from];
      next_seq[i] = lane_seq_[from];
    }
    entries_ = std::move(next);
    lane_seq_ = std::move(next_seq);
    if constexpr (kHasLanes) {
      SlabArray<int32_t> next_k0(new_cap);
      SlabArray<float> next_k1;
      if constexpr (Lanes::kHasF32) next_k1.Reset(new_cap);
      for (std::size_t i = 0; i < size_; ++i) {
        const std::size_t from = (head_ + i) & mask_;
        next_k0[i] = lane_k0_[from];
        if constexpr (Lanes::kHasF32) next_k1[i] = lane_k1_[from];
      }
      lane_k0_ = std::move(next_k0);
      if constexpr (Lanes::kHasF32) lane_k1_ = std::move(next_k1);
    }
    mask_ = new_cap - 1;
    head_ = 0;
  }

  std::vector<StoreEntry<T>> entries_;
  // SoA key lanes mirroring the ring (same indexing as entries_): the Seq
  // lane always (packed expiry search), the predicate key lanes only for
  // types with a SimdEntryLanes mapping. Slab-backed (mempolicy ladder) so
  // big windows sit on huge pages — fewer TLB misses on the block sweeps.
  SlabArray<Seq> lane_seq_;
  SlabArray<int32_t> lane_k0_;
  SlabArray<float> lane_k1_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  Epoch max_epoch_ = 0;
};

/// Hash index store for equi-joins, built on the lane-grouped key table
/// (llhj/group_table.hpp). OwnKey extracts the key from this store's tuple
/// type; ProbeKey extracts it from the probing (opposite stream) tuple
/// type. ForEach visits only entries with the matching key, in insertion
/// order — the table's order invariant (inserts never reuse tombstoned
/// lanes, so a key's lanes sit at strictly increasing scan positions)
/// makes the candidate walk yield insertion order by construction: no
/// sort, no Seq gather, no entry-slab touch before emission (DESIGN.md
/// Section 15). Erase/clear are O(1) via the seq -> slot table plus a
/// tombstone flip in the key table.
template <typename T, typename OwnKey, typename ProbeKey>
class HashStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    const int64_t key = OwnKey{}(t.value);
    const int32_t slot = AllocSlot();
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.entry = StoreEntry<T>{t, expedited};
    s.key = key;
    table_.Insert(key, slot);
    seq_index_.Insert(t.seq, slot);
    if (t.epoch > max_epoch_) max_epoch_ = t.epoch;
    ++size_;
  }

  bool EraseSeq(Seq seq) {
    const int32_t* found = seq_index_.Find(seq);
    if (found == nullptr) return false;
    const int32_t slot = *found;
    table_.Erase(slots_[static_cast<std::size_t>(slot)].key, slot);
    seq_index_.Erase(seq);
    free_.push_back(slot);
    --size_;
    return true;
  }

  bool ClearExpedited(Seq seq) {
    const int32_t* found = seq_index_.Find(seq);
    if (found == nullptr) return false;
    slots_[static_cast<std::size_t>(*found)].entry.expedited = false;
    return true;
  }

  template <typename Probe, typename F>
  void ForEach(const Probe& probe, F&& f) const {
    ProbeInsertionOrder(ProbeKey{}(probe), f);
  }

  /// Batch probe fused with query evaluation (same shape as
  /// VectorStore::MatchBatch so the pipeline nodes are store-agnostic).
  /// Genuinely batched, per chunk of 32 probes:
  ///   1. hash every probe key and prefetch its home cluster (ctrl, key
  ///      and ref lines — the table walk's only cold loads);
  ///   2. group-scan 8+ candidate keys per packed compare, collecting refs
  ///      for the whole chunk — already in per-key insertion order (the
  ///      table's order invariant); the scattered entry slab is untouched
  ///      so far;
  ///   3. emit probe by probe, prefetching the NEXT probe's slots while
  ///      the current one's entries run through QuerySet::MatchOriented —
  ///      each entry line is touched exactly once, with a probe's worth of
  ///      prefetch lead (the chain walk's dependent next-pointer chase
  ///      can overlap none of this — the measured gap in
  ///      bench/ablation_simd_probe.cpp equi_hash).
  /// Identical result sets at every SIMD level (the kernels share the
  /// scalar's arithmetic). Not reentrant: callbacks must not probe this
  /// store (single owning node thread; see the concurrency contract).
  template <bool kProbeIsLeft, typename Pred, typename ProbeT, typename F>
  void MatchBatch(const QuerySet<Pred>& queries, const Stamped<ProbeT>* probes,
                  std::size_t k, F&& f) const {
    std::array<int64_t, kProbeChunk> keys;
    std::array<uint32_t, kProbeChunk + 1> bounds;
    for (std::size_t base = 0; base < k; base += kProbeChunk) {
      const std::size_t m = std::min(kProbeChunk, k - base);
      for (std::size_t j = 0; j < m; ++j) {
        keys[j] = ProbeKey{}(probes[base + j].value);
        table_.PrefetchKey(keys[j]);
      }
      refs_buf_.clear();
      for (std::size_t j = 0; j < m; ++j) {
        bounds[j] = static_cast<uint32_t>(refs_buf_.size());
        table_.ForEachCandidate(
            keys[j], [&](int32_t ref) { refs_buf_.push_back(ref); });
      }
      bounds[m] = static_cast<uint32_t>(refs_buf_.size());
      PrefetchSlots(bounds[0], bounds[1]);
      for (std::size_t j = 0; j < m; ++j) {
        if (j + 1 < m) PrefetchSlots(bounds[j + 1], bounds[j + 2]);
        for (uint32_t i = bounds[j]; i < bounds[j + 1]; ++i) {
          const StoreEntry<T>& entry =
              slots_[static_cast<std::size_t>(refs_buf_[i])].entry;
          queries.template MatchOriented<kProbeIsLeft>(
              probes[base + j].value, entry.tuple.value,
              [&](QueryId q) { f(base + j, q, entry); });
        }
      }
    }
  }

  std::size_t size() const { return size_; }

  Epoch max_epoch() const { return max_epoch_; }

  /// Visits every live entry pushed under an epoch later than `e`,
  /// newest-first (strictly descending Seq) — the same order as
  /// VectorStore's epoch walk, pinned by test_stores.cpp so every store is
  /// interchangeable under the epoch re-sweep in the nodes. The
  /// `max_epoch() <= e` early-out makes this free except during an epoch
  /// transition (then it is O(live entries) for the handful of probes that
  /// predate the boundary).
  template <typename F>
  void ForEachEpochAfter(Epoch e, F&& f) const {
    if (max_epoch_ <= e) return;
    std::vector<int32_t> newer;
    seq_index_.ForEach([&](const Seq&, const int32_t& slot) {
      if (slots_[static_cast<std::size_t>(slot)].entry.tuple.epoch > e) {
        newer.push_back(slot);
      }
    });
    std::sort(newer.begin(), newer.end(), [&](int32_t a, int32_t b) {
      return slots_[static_cast<std::size_t>(a)].entry.tuple.seq >
             slots_[static_cast<std::size_t>(b)].entry.tuple.seq;
    });
    for (const int32_t slot : newer) {
      f(slots_[static_cast<std::size_t>(slot)].entry);
    }
  }

  // -- introspection (tests, bench) ------------------------------------------

  std::size_t group_count() const { return table_.group_count(); }
  std::size_t tombstone_lanes() const { return table_.tombstone_lanes(); }
  SlabBacking slab_backing() const { return table_.backing(); }

 private:
  /// Probe batch chunk: bounds the gather buffer while still giving the
  /// prefetches of a full pipeline step (msgs_per_step-sized batches) time
  /// to land before their group is scanned.
  static constexpr std::size_t kProbeChunk = 32;

  struct Slot {
    StoreEntry<T> entry;
    int64_t key = 0;  ///< join key, for the table-side erase
  };

  /// Issues prefetches for the slot lines of refs_buf_[from, to).
  void PrefetchSlots(uint32_t from, uint32_t to) const {
    for (uint32_t i = from; i < to; ++i) {
      __builtin_prefetch(&slots_[static_cast<std::size_t>(refs_buf_[i])]);
    }
  }

  /// Visits every entry whose key equals `key`, in insertion order — the
  /// table's candidate walk already yields it (the single-probe path:
  /// ForEach; MatchBatch pipelines candidate collection and slot prefetch
  /// across its whole chunk instead).
  template <typename F>
  void ProbeInsertionOrder(int64_t key, F&& f) const {
    table_.ForEachCandidate(key, [&](int32_t ref) {
      f(slots_[static_cast<std::size_t>(ref)].entry);
    });
  }

  int32_t AllocSlot() {
    if (!free_.empty()) {
      const int32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    return static_cast<int32_t>(slots_.size() - 1);
  }

  std::vector<Slot> slots_;
  std::vector<int32_t> free_;
  GroupTable<int64_t> table_;
  FlatMap<Seq, int32_t> seq_index_;
  std::size_t size_ = 0;
  Epoch max_epoch_ = 0;
  /// Scratch reused across probes (no per-probe allocation): the candidate
  /// refs collected per chunk, already in per-probe insertion order.
  /// Stores are owned by a single node thread (external synchronization —
  /// see the concurrency contract in DESIGN.md), so const probes may reuse
  /// it; probes are not reentrant.
  mutable std::vector<int32_t> refs_buf_;
};

/// The pre-grouping hash store: slot slab with intrusive per-key chains,
/// one pointer chase per duplicate, probe-major scalar MatchBatch. Kept as
/// (a) the equivalence oracle the grouped store is fuzzed against in
/// tests/test_store_equivalence.cpp and (b) the chain-walk baseline
/// bench/ablation_simd_probe.cpp measures the grouped probe path over. No
/// pipeline instantiates it.
template <typename T, typename OwnKey, typename ProbeKey>
class ChainHashStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    const int64_t key = OwnKey{}(t.value);
    const int32_t slot = AllocSlot();
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.entry = StoreEntry<T>{t, expedited};
    s.key = key;
    s.next = kNil;
    bool created = false;
    Chain& chain = chains_.GetOrInsert(key, &created);
    if (created) {
      chain.head = chain.tail = slot;
      s.prev = kNil;
    } else {
      slots_[static_cast<std::size_t>(chain.tail)].next = slot;
      s.prev = chain.tail;
      chain.tail = slot;
    }
    seq_index_.Insert(t.seq, slot);
    if (t.epoch > max_epoch_) max_epoch_ = t.epoch;
    ++size_;
  }

  bool EraseSeq(Seq seq) {
    const int32_t* found = seq_index_.Find(seq);
    if (found == nullptr) return false;
    const int32_t slot = *found;
    const Slot& s = slots_[static_cast<std::size_t>(slot)];
    Chain* chain = chains_.Find(s.key);
    if (s.prev != kNil) {
      slots_[static_cast<std::size_t>(s.prev)].next = s.next;
    } else {
      chain->head = s.next;
    }
    if (s.next != kNil) {
      slots_[static_cast<std::size_t>(s.next)].prev = s.prev;
    } else {
      chain->tail = s.prev;
    }
    if (chain->head == kNil) chains_.Erase(s.key);
    seq_index_.Erase(seq);
    free_.push_back(slot);
    --size_;
    return true;
  }

  bool ClearExpedited(Seq seq) {
    const int32_t* found = seq_index_.Find(seq);
    if (found == nullptr) return false;
    slots_[static_cast<std::size_t>(*found)].entry.expedited = false;
    return true;
  }

  template <typename Probe, typename F>
  void ForEach(const Probe& probe, F&& f) const {
    const Chain* chain = chains_.Find(ProbeKey{}(probe));
    if (chain == nullptr) return;
    for (int32_t slot = chain->head; slot != kNil;
         slot = slots_[static_cast<std::size_t>(slot)].next) {
      f(slots_[static_cast<std::size_t>(slot)].entry);
    }
  }

  /// Probe-major scalar: one chain walk per probe, one pointer chase per
  /// stored duplicate — the behavior the grouped MatchBatch is benched
  /// against.
  template <bool kProbeIsLeft, typename Pred, typename ProbeT, typename F>
  void MatchBatch(const QuerySet<Pred>& queries, const Stamped<ProbeT>* probes,
                  std::size_t k, F&& f) const {
    for (std::size_t j = 0; j < k; ++j) {
      ForEach(probes[j].value, [&](const StoreEntry<T>& entry) {
        queries.template MatchOriented<kProbeIsLeft>(
            probes[j].value, entry.tuple.value,
            [&](QueryId q) { f(j, q, entry); });
      });
    }
  }

  std::size_t size() const { return size_; }

  Epoch max_epoch() const { return max_epoch_; }

  /// Newest-first, matching HashStore/VectorStore (the ordering contract
  /// test sweeps every store type).
  template <typename F>
  void ForEachEpochAfter(Epoch e, F&& f) const {
    if (max_epoch_ <= e) return;
    std::vector<int32_t> newer;
    seq_index_.ForEach([&](const Seq&, const int32_t& slot) {
      if (slots_[static_cast<std::size_t>(slot)].entry.tuple.epoch > e) {
        newer.push_back(slot);
      }
    });
    std::sort(newer.begin(), newer.end(), [&](int32_t a, int32_t b) {
      return slots_[static_cast<std::size_t>(a)].entry.tuple.seq >
             slots_[static_cast<std::size_t>(b)].entry.tuple.seq;
    });
    for (const int32_t slot : newer) {
      f(slots_[static_cast<std::size_t>(slot)].entry);
    }
  }

 private:
  static constexpr int32_t kNil = -1;

  struct Slot {
    StoreEntry<T> entry;
    int64_t key = 0;      ///< join key, for chain maintenance on erase
    int32_t prev = kNil;  ///< previous slot in this key's chain
    int32_t next = kNil;  ///< next slot in this key's chain
  };

  struct Chain {
    int32_t head = kNil;
    int32_t tail = kNil;
  };

  int32_t AllocSlot() {
    if (!free_.empty()) {
      const int32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    return static_cast<int32_t>(slots_.size() - 1);
  }

  std::vector<Slot> slots_;
  std::vector<int32_t> free_;
  FlatMap<int64_t, Chain> chains_;
  FlatMap<Seq, int32_t> seq_index_;
  std::size_t size_ = 0;
  Epoch max_epoch_ = 0;
};

/// Ordered (tree) index store for band/range predicates — the "different
/// kinds of indices" the paper names as future work (Sections 7.6 and 9).
/// Entries are kept sorted on OwnKey; a probe visits only the key range
/// [ProbeLow(probe), ProbeHigh(probe)], so a band join degrades from a full
/// window scan to a range lookup (the predicate still filters remaining
/// dimensions).
template <typename T, typename OwnKey, typename ProbeLow, typename ProbeHigh>
class OrderedStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    const int64_t key = OwnKey{}(t.value);
    tree_.emplace(key, StoreEntry<T>{t, expedited});
    seq_to_key_.Insert(t.seq, key);
    if (t.epoch > max_epoch_) max_epoch_ = t.epoch;
  }

  bool EraseSeq(Seq seq) {
    const int64_t* key = seq_to_key_.Find(seq);
    if (key == nullptr) return false;
    auto [lo, hi] = tree_.equal_range(*key);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.tuple.seq == seq) {
        tree_.erase(it);
        break;
      }
    }
    seq_to_key_.Erase(seq);
    return true;
  }

  bool ClearExpedited(Seq seq) {
    const int64_t* key = seq_to_key_.Find(seq);
    if (key == nullptr) return false;
    auto [lo, hi] = tree_.equal_range(*key);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.tuple.seq == seq) {
        it->second.expedited = false;
        return true;
      }
    }
    return false;
  }

  template <typename Probe, typename F>
  void ForEach(const Probe& probe, F&& f) const {
    auto it = tree_.lower_bound(ProbeLow{}(probe));
    const auto end = tree_.upper_bound(ProbeHigh{}(probe));
    for (; it != end; ++it) f(it->second);
  }

  /// Batch probe fused with query evaluation (probe-major: each probe
  /// narrows to its own key range; the range already did the heavy lift).
  template <bool kProbeIsLeft, typename Pred, typename ProbeT, typename F>
  void MatchBatch(const QuerySet<Pred>& queries, const Stamped<ProbeT>* probes,
                  std::size_t k, F&& f) const {
    for (std::size_t j = 0; j < k; ++j) {
      ForEach(probes[j].value, [&](const StoreEntry<T>& entry) {
        queries.template MatchOriented<kProbeIsLeft>(
            probes[j].value, entry.tuple.value,
            [&](QueryId q) { f(j, q, entry); });
      });
    }
  }

  std::size_t size() const { return tree_.size(); }

  Epoch max_epoch() const { return max_epoch_; }

  /// Visits every entry pushed under an epoch later than `e` (key-ordered
  /// trees have no epoch ordering; the early-out keeps this free outside
  /// epoch transitions).
  template <typename F>
  void ForEachEpochAfter(Epoch e, F&& f) const {
    if (max_epoch_ <= e) return;
    for (const auto& [key, entry] : tree_) {
      if (entry.tuple.epoch > e) f(entry);
    }
  }

 private:
  std::multimap<int64_t, StoreEntry<T>> tree_;
  FlatMap<Seq, int64_t> seq_to_key_;
  Epoch max_epoch_ = 0;
};

}  // namespace sjoin
