// Node-local window stores for low-latency handshake join. In LLHJ every
// tuple rests on exactly one node (its home node), which is what makes
// local index structures possible (paper Sections 4.1 and 7.6):
//
//  * VectorStore — order-preserving scan store for arbitrary predicates
//    (the band join of the benchmark).
//  * HashStore   — hash index keyed on the join attribute for equi-joins
//    (the Table 2 "with index" configuration).
//
// R-side stores additionally carry the *expedition flag* of Section 4.2.3:
// entries stay "expedited" until the tuple's expedition-end message returns
// to the home node; S arrivals match only non-expedited entries to avoid
// stored/stored double matches. Both stores implement the same concept:
//
//   void Insert(const Stamped<T>&, bool expedited);
//   bool EraseSeq(Seq);                 // window expiry
//   bool ClearExpedited(Seq);           // expedition-end
//   template <P, F> void ForEach(const P& probe, F&& f) const;
//   std::size_t size() const;
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace sjoin {

/// An entry of a node-local window.
template <typename T>
struct StoreEntry {
  Stamped<T> tuple;
  bool expedited = false;
};

/// Scan store: supports any predicate; ForEach visits every entry.
template <typename T>
class VectorStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    entries_.push_back(StoreEntry<T>{t, expedited});
  }

  bool EraseSeq(Seq seq) {
    // Expiries arrive oldest-first per home node, so front is typical.
    if (!entries_.empty() && entries_.front().tuple.seq == seq) {
      entries_.pop_front();
      return true;
    }
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->tuple.seq == seq) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool ClearExpedited(Seq seq) {
    // Expedition-ends arrive in insertion order; the oldest expedited entry
    // is the typical target, so search from the front.
    for (auto& entry : entries_) {
      if (entry.tuple.seq == seq) {
        entry.expedited = false;
        return true;
      }
    }
    return false;
  }

  /// Visits every entry (probe is ignored — scan store).
  template <typename Probe, typename F>
  void ForEach(const Probe& /*probe*/, F&& f) const {
    for (const auto& entry : entries_) f(entry);
  }

  std::size_t size() const { return entries_.size(); }

  std::size_t expedited_count() const {
    std::size_t n = 0;
    for (const auto& entry : entries_) n += entry.expedited ? 1 : 0;
    return n;
  }

 private:
  std::deque<StoreEntry<T>> entries_;
};

/// Hash index store for equi-joins. OwnKey extracts the key from this
/// store's tuple type; ProbeKey extracts it from the probing (opposite
/// stream) tuple type. ForEach visits only the matching bucket.
template <typename T, typename OwnKey, typename ProbeKey>
class HashStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    const int64_t key = OwnKey{}(t.value);
    buckets_[key].push_back(StoreEntry<T>{t, expedited});
    seq_to_key_.emplace(t.seq, key);
    ++size_;
  }

  bool EraseSeq(Seq seq) {
    auto key_it = seq_to_key_.find(seq);
    if (key_it == seq_to_key_.end()) return false;
    auto bucket_it = buckets_.find(key_it->second);
    if (bucket_it != buckets_.end()) {
      auto& vec = bucket_it->second;
      for (auto it = vec.begin(); it != vec.end(); ++it) {
        if (it->tuple.seq == seq) {
          vec.erase(it);
          break;
        }
      }
      if (vec.empty()) buckets_.erase(bucket_it);
    }
    seq_to_key_.erase(key_it);
    --size_;
    return true;
  }

  bool ClearExpedited(Seq seq) {
    auto key_it = seq_to_key_.find(seq);
    if (key_it == seq_to_key_.end()) return false;
    auto bucket_it = buckets_.find(key_it->second);
    if (bucket_it == buckets_.end()) return false;
    for (auto& entry : bucket_it->second) {
      if (entry.tuple.seq == seq) {
        entry.expedited = false;
        return true;
      }
    }
    return false;
  }

  template <typename Probe, typename F>
  void ForEach(const Probe& probe, F&& f) const {
    auto it = buckets_.find(ProbeKey{}(probe));
    if (it == buckets_.end()) return;
    for (const auto& entry : it->second) f(entry);
  }

  std::size_t size() const { return size_; }

 private:
  std::unordered_map<int64_t, std::vector<StoreEntry<T>>> buckets_;
  std::unordered_map<Seq, int64_t> seq_to_key_;
  std::size_t size_ = 0;
};

/// Ordered (tree) index store for band/range predicates — the "different
/// kinds of indices" the paper names as future work (Sections 7.6 and 9).
/// Entries are kept sorted on OwnKey; a probe visits only the key range
/// [ProbeLow(probe), ProbeHigh(probe)], so a band join degrades from a full
/// window scan to a range lookup (the predicate still filters remaining
/// dimensions).
template <typename T, typename OwnKey, typename ProbeLow, typename ProbeHigh>
class OrderedStore {
 public:
  void Insert(const Stamped<T>& t, bool expedited) {
    const int64_t key = OwnKey{}(t.value);
    tree_.emplace(key, StoreEntry<T>{t, expedited});
    seq_to_key_.emplace(t.seq, key);
  }

  bool EraseSeq(Seq seq) {
    auto key_it = seq_to_key_.find(seq);
    if (key_it == seq_to_key_.end()) return false;
    auto [lo, hi] = tree_.equal_range(key_it->second);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.tuple.seq == seq) {
        tree_.erase(it);
        break;
      }
    }
    seq_to_key_.erase(key_it);
    return true;
  }

  bool ClearExpedited(Seq seq) {
    auto key_it = seq_to_key_.find(seq);
    if (key_it == seq_to_key_.end()) return false;
    auto [lo, hi] = tree_.equal_range(key_it->second);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.tuple.seq == seq) {
        it->second.expedited = false;
        return true;
      }
    }
    return false;
  }

  template <typename Probe, typename F>
  void ForEach(const Probe& probe, F&& f) const {
    auto it = tree_.lower_bound(ProbeLow{}(probe));
    const auto end = tree_.upper_bound(ProbeHigh{}(probe));
    for (; it != end; ++it) f(it->second);
  }

  std::size_t size() const { return tree_.size(); }

 private:
  std::multimap<int64_t, StoreEntry<T>> tree_;
  std::unordered_map<Seq, int64_t> seq_to_key_;
};

}  // namespace sjoin
