// Assembly of a complete low-latency handshake join pipeline: n nodes wired
// with neighbour FIFO channels, one result queue per node, shared
// high-water marks, and a collector factory. The pipeline is
// executor-agnostic — register `nodes()` (plus feeder and collector) with a
// SequentialExecutor for deterministic runs or a ThreadedExecutor for
// deployment.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "llhj/home_policy.hpp"
#include "llhj/llhj_node.hpp"
#include "llhj/store.hpp"
#include "runtime/executor.hpp"
#include "runtime/placement.hpp"
#include "runtime/spsc_queue.hpp"
#include "stream/collector.hpp"
#include "stream/hwm.hpp"
#include "stream/message.hpp"
#include "stream/ports.hpp"
#include "stream/query_set.hpp"
#include "stream/sink.hpp"

namespace sjoin {

template <typename R, typename S, typename Pred,
          typename RStore = VectorStore<R>, typename SStore = VectorStore<S>>
class LlhjPipeline {
 public:
  using Sink = StagedQueueSink<R, S>;
  using Node = LlhjNode<R, S, Pred, Sink, RStore, SStore>;

  struct Options {
    int nodes = 4;
    std::size_t channel_capacity = 1024;
    std::size_t result_capacity = 1 << 16;
    HomePolicy home_policy = HomePolicy::kRoundRobin;
    int home_block = 64;
    bool punctuate = false;
    int msgs_per_step = 8;
    /// Hardware placement: channel rings are homed on their CONSUMER's
    /// NUMA node (node k's input rings on k's node, result rings on the
    /// collector's). An empty plan (default) binds nothing. Register the
    /// node threads with the SAME plan (ThreadedExecutor) so threads and
    /// memory agree.
    PlacementPlan placement;
  };

  explicit LlhjPipeline(const Options& options, Pred pred = Pred{})
      : LlhjPipeline(options, QuerySet<Pred>(pred)) {}

  /// Multi-query pipeline: every window crossing evaluates all predicates
  /// of `queries` in one store traversal; results carry the QueryId.
  /// `queries` becomes epoch 0 of the pipeline's epoch registry;
  /// `query_ids` maps its dense indices to session-wide QueryIds (empty =
  /// identity). Live sessions install later epochs through `registry()`.
  LlhjPipeline(const Options& options, const QuerySet<Pred>& queries,
               std::vector<QueryId> query_ids = {})
      : options_(options),
        registry_(queries, std::move(query_ids)),
        epoch0_(registry_.Get(0)) {
    const int n = options_.nodes;
    if (n < 1) throw std::invalid_argument("pipeline needs >= 1 node");
    if (epoch0_->set.empty()) {
      throw std::invalid_argument("pipeline needs >= 1 registered query");
    }

    l2r_.reserve(static_cast<std::size_t>(n));
    r2l_.reserve(static_cast<std::size_t>(n));
    const int collector_home =
        options_.placement.NodeForHelper(kCollectorHelper);
    for (int k = 0; k < n; ++k) {
      // Both input rings of node k are consumed by node k's thread; the
      // result ring by the collector.
      const int home = options_.placement.NodeForPosition(k);
      l2r_.push_back(std::make_unique<SpscQueue<FlowMsg<R>>>(
          options_.channel_capacity, home));
      r2l_.push_back(std::make_unique<SpscQueue<FlowMsg<S>>>(
          options_.channel_capacity, home));
      result_queues_.push_back(std::make_unique<SpscQueue<ResultMsg<R, S>>>(
          options_.result_capacity, collector_home));
      sinks_.push_back(std::make_unique<Sink>(result_queues_.back().get()));
    }

    const HomeAssigner home_r(options_.home_policy, n, options_.home_block);
    const HomeAssigner home_s(options_.home_policy, n, options_.home_block);
    for (int k = 0; k < n; ++k) {
      typename Node::Config config;
      config.id = k;
      config.nodes = n;
      config.home_r = home_r;
      config.home_s = home_s;
      config.msgs_per_step = options_.msgs_per_step;
      nodes_.push_back(std::make_unique<Node>(
          config, &registry_, sinks_[static_cast<std::size_t>(k)].get(),
          /*left_in=*/l2r_[static_cast<std::size_t>(k)].get(),
          /*right_out=*/k + 1 < n ? l2r_[static_cast<std::size_t>(k) + 1].get()
                                  : nullptr,
          /*right_in=*/r2l_[static_cast<std::size_t>(k)].get(),
          /*left_out=*/k > 0 ? r2l_[static_cast<std::size_t>(k) - 1].get()
                             : nullptr,
          &hwm_));
    }
  }

  /// Driver-facing input queues.
  PipelinePorts<R, S> ports() {
    return PipelinePorts<R, S>{l2r_.front().get(), r2l_.back().get()};
  }

  /// Pipeline nodes in left-to-right order (register with an executor).
  std::vector<Steppable*> nodes() {
    std::vector<Steppable*> out;
    out.reserve(nodes_.size());
    for (auto& node : nodes_) out.push_back(node.get());
    return out;
  }

  /// Builds the collector for this pipeline (caller owns it). Punctuation
  /// generation follows Options::punctuate.
  std::unique_ptr<Collector<R, S>> MakeCollector(OutputHandler<R, S>* handler) {
    std::vector<SpscQueue<ResultMsg<R, S>>*> queues;
    queues.reserve(result_queues_.size());
    for (auto& q : result_queues_) queues.push_back(q.get());
    return std::make_unique<Collector<R, S>>(std::move(queues), handler,
                                             &hwm_, options_.punctuate);
  }

  const HighWaterMarks& hwm() const { return hwm_; }
  const Options& options() const { return options_; }
  /// The plan channel memory was homed with (empty = unplaced).
  const PlacementPlan& placement() const { return options_.placement; }
  /// Placement introspection for tests: the NUMA home assigned to node k's
  /// input rings / the reported placement of its left input ring.
  int channel_home(int k) const {
    return l2r_[static_cast<std::size_t>(k)]->home_node();
  }
  ChannelPlacement channel_placement(int k) const {
    return l2r_[static_cast<std::size_t>(k)]->placement();
  }
  /// The epoch-0 set (what the pipeline started with).
  const QuerySet<Pred>& queries() const { return epoch0_->set; }
  /// Epoch registry shared with every node; a live session installs new
  /// epochs here before pushing the matching kEpochChange punctuation.
  QueryEpochRegistry<Pred>* registry() { return &registry_; }
  const Node& node(int k) const { return *nodes_[static_cast<std::size_t>(k)]; }

  /// Sum of anomaly counters across nodes — tests require 0.
  uint64_t total_anomalies() const {
    uint64_t n = 0;
    for (const auto& node : nodes_) n += node->counters().anomalies;
    return n;
  }

  /// Approximate number of messages sitting in channels and result queues
  /// (atomically readable from any thread; used for quiescence detection).
  std::size_t ApproxBacklog() const {
    std::size_t n = ApproxChannelBacklog();
    for (const auto& q : result_queues_) n += q->SizeApprox();
    return n;
  }

  /// Channel-only backlog — excludes result queues, whose occupancy depends
  /// on how often the application polls the collector.
  std::size_t ApproxChannelBacklog() const {
    std::size_t n = 0;
    for (const auto& q : l2r_) n += q->SizeApprox();
    for (const auto& q : r2l_) n += q->SizeApprox();
    return n;
  }

  /// Total messages consumed by all nodes (thread-safe, monotonic).
  uint64_t TotalProcessed() const {
    uint64_t n = 0;
    for (const auto& node : nodes_) n += node->processed_count();
    return n;
  }

  /// Total tuples resident in node-local windows (diagnostics).
  std::size_t resident_tuples() const {
    std::size_t n = 0;
    for (const auto& node : nodes_) {
      n += node->r_store().size() + node->s_store().size();
    }
    return n;
  }

 private:
  Options options_;
  QueryEpochRegistry<Pred> registry_;
  std::shared_ptr<const QueryEpochSnapshot<Pred>> epoch0_;
  std::vector<std::unique_ptr<SpscQueue<FlowMsg<R>>>> l2r_;
  std::vector<std::unique_ptr<SpscQueue<FlowMsg<S>>>> r2l_;
  std::vector<std::unique_ptr<SpscQueue<ResultMsg<R, S>>>> result_queues_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<std::unique_ptr<Node>> nodes_;
  HighWaterMarks hwm_;
};

/// LLHJ with hash-index node stores for equi-joins (paper Section 7.6).
/// RKeyFn/SKeyFn extract the join key from R/S tuples; the predicate is
/// still evaluated on every bucket candidate.
template <typename R, typename S, typename Pred, typename RKeyFn,
          typename SKeyFn>
using IndexedLlhjPipeline =
    LlhjPipeline<R, S, Pred, HashStore<R, RKeyFn, SKeyFn>,
                 HashStore<S, SKeyFn, RKeyFn>>;

}  // namespace sjoin
