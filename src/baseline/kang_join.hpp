// Kang's three-step procedure (paper Section 2.1, Kang et al. [10]): the
// sequential sliding-window join. For every arriving tuple the opposite
// window is scanned, expired tuples are removed, and the tuple is inserted
// into its own window. Latency-optimal but single-threaded.
//
// Besides being the historical baseline, this implementation is the *test
// oracle*: all engines consume the same driver script, and KangJoin's
// output set defines correctness (DESIGN.md Section 3).
#pragma once

#include <cassert>
#include <deque>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "stream/message.hpp"
#include "stream/script.hpp"
#include "stream/sink.hpp"

namespace sjoin {

template <typename R, typename S, typename Pred,
          typename Sink = VectorSink<R, S>>
class KangJoin {
 public:
  explicit KangJoin(Sink* sink, Pred pred = Pred{})
      : sink_(sink), pred_(pred) {}

  /// Applies one driver event (arrival or expiry; flushes are no-ops —
  /// Kang's matching is purely arrival-driven).
  void OnEvent(const DriverEvent<R, S>& event) {
    switch (event.op) {
      case DriverOp::kArriveR: {
        Stamped<R> r{event.r, event.seq, event.ts, NowNs()};
        for (const auto& s : ws_) {                      // step 1: scan
          if (pred_(r.value, s.value)) {
            sink_->Emit(MakeResult(r, s, kNoNode));
          }
        }
        wr_.push_back(r);                                // step 3: insert
        break;
      }
      case DriverOp::kArriveS: {
        Stamped<S> s{event.s, event.seq, event.ts, NowNs()};
        for (const auto& r : wr_) {
          if (pred_(r.value, s.value)) {
            sink_->Emit(MakeResult(r, s, kNoNode));
          }
        }
        ws_.push_back(s);
        break;
      }
      case DriverOp::kExpireR:                           // step 2: invalidate
        Erase(wr_, event.seq);
        break;
      case DriverOp::kExpireS:
        Erase(ws_, event.seq);
        break;
      case DriverOp::kFlushR:
      case DriverOp::kFlushS:
        break;
    }
  }

  void RunScript(const DriverScript<R, S>& script) {
    for (const auto& event : script.events) OnEvent(event);
  }

  std::size_t window_size(StreamSide side) const {
    return side == StreamSide::kR ? wr_.size() : ws_.size();
  }

 private:
  template <typename T>
  static void Erase(std::deque<Stamped<T>>& window, Seq seq) {
    // The driver expires oldest-first, so the front is the common case.
    if (!window.empty() && window.front().seq == seq) {
      window.pop_front();
      return;
    }
    for (auto it = window.begin(); it != window.end(); ++it) {
      if (it->seq == seq) {
        window.erase(it);
        return;
      }
    }
    assert(false && "expiry for unknown tuple");
  }

  Sink* sink_;
  Pred pred_;
  std::deque<Stamped<R>> wr_;
  std::deque<Stamped<S>> ws_;
};

/// Convenience oracle: runs a script through KangJoin, returns all results.
template <typename R, typename S, typename Pred>
std::vector<ResultMsg<R, S>> RunKangOracle(const DriverScript<R, S>& script,
                                           Pred pred = Pred{}) {
  VectorSink<R, S> sink;
  KangJoin<R, S, Pred> join(&sink, pred);
  join.RunScript(script);
  return sink.results();
}

}  // namespace sjoin
