// CellJoin (paper Section 2.2.1, Gedik et al. [9]): Kang's three-step
// procedure with the window scan parallelized over a pool of worker
// threads. On every arrival the opposite window is (re-)partitioned into
// equal chunks; the caller thread scans one chunk itself while workers scan
// the rest, then all partial results are merged.
//
// This keeps Kang's latency characteristics but — exactly as the paper
// observes — relies on centrally shared windows and per-arrival
// repartitioning, whose coordination cost grows with the worker count. The
// fig17 benchmark shows that cost; the equivalence tests show the output
// set is identical to Kang's.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "runtime/affinity.hpp"
#include "runtime/backoff.hpp"
#include "runtime/cacheline.hpp"
#include "stream/message.hpp"
#include "stream/script.hpp"
#include "stream/sink.hpp"

namespace sjoin {

template <typename R, typename S, typename Pred,
          typename Sink = VectorSink<R, S>>
class CellJoin {
 public:
  struct Options {
    int workers = 0;  ///< scan threads in addition to the caller thread
    /// Scans shorter than this run inline; repartitioning a near-empty
    /// window costs more than it saves.
    std::size_t min_parallel_scan = 256;
  };

  CellJoin(Sink* sink, Pred pred = Pred{}, Options options = Options{})
      : sink_(sink), pred_(pred), options_(options) {
    workers_.reserve(static_cast<std::size_t>(options_.workers));
    worker_state_ =
        std::vector<WorkerState>(static_cast<std::size_t>(options_.workers));
    for (int w = 0; w < options_.workers; ++w) {
      workers_.emplace_back([this, w] { WorkerMain(w); });
    }
  }

  ~CellJoin() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : workers_) {
      if (t.joinable()) t.join();
    }
  }

  CellJoin(const CellJoin&) = delete;
  CellJoin& operator=(const CellJoin&) = delete;

  void OnEvent(const DriverEvent<R, S>& event) {
    switch (event.op) {
      case DriverOp::kArriveR: {
        Stamped<R> r{event.r, event.seq, event.ts, NowNs()};
        ScanOpposite(r, ws_);
        wr_.push_back(r);
        break;
      }
      case DriverOp::kArriveS: {
        Stamped<S> s{event.s, event.seq, event.ts, NowNs()};
        ScanOpposite(s, wr_);
        ws_.push_back(s);
        break;
      }
      case DriverOp::kExpireR:
        Erase(wr_, event.seq);
        break;
      case DriverOp::kExpireS:
        Erase(ws_, event.seq);
        break;
      case DriverOp::kFlushR:
      case DriverOp::kFlushS:
        break;
    }
  }

  void RunScript(const DriverScript<R, S>& script) {
    for (const auto& event : script.events) OnEvent(event);
  }

  uint64_t parallel_scans() const { return parallel_scans_; }

 private:
  // Windows are stored in vectors with a logical head so worker threads can
  // slice them by index; the head compacts lazily.
  template <typename T>
  struct Window {
    std::vector<Stamped<T>> data;
    std::size_t head = 0;

    std::size_t size() const { return data.size() - head; }
    const Stamped<T>* begin_ptr() const { return data.data() + head; }
    void push_back(const Stamped<T>& t) { data.push_back(t); }

    void Compact() {
      if (head > 4096 && head * 2 > data.size()) {
        data.erase(data.begin(),
                   data.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  template <typename T>
  void Erase(Window<T>& window, Seq seq) {
    if (window.size() > 0 && window.data[window.head].seq == seq) {
      ++window.head;
      window.Compact();
      return;
    }
    for (std::size_t i = window.head; i < window.data.size(); ++i) {
      if (window.data[i].seq == seq) {
        window.data.erase(window.data.begin() +
                          static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    assert(false && "expiry for unknown tuple");
  }

  /// The parallel window scan: partition, fan out, scan own chunk, barrier,
  /// merge.
  template <typename Probe, typename Opp>
  void ScanOpposite(const Stamped<Probe>& probe, const Window<Opp>& window) {
    const std::size_t n = window.size();
    if (options_.workers == 0 || n < options_.min_parallel_scan) {
      ScanRange(probe, window.begin_ptr(), 0, n, sink_);
      return;
    }

    ++parallel_scans_;
    const int parts = options_.workers + 1;
    const std::size_t chunk =
        (n + static_cast<std::size_t>(parts) - 1) /
        static_cast<std::size_t>(parts);

    // Publish the task to all workers.
    task_.probe_is_r = ProbeIsR<Probe>();
    if constexpr (std::is_same_v<Probe, R>) {
      task_.probe_r = probe;
    } else {
      task_.probe_s = probe;
    }
    task_.opp_base = static_cast<const void*>(window.begin_ptr());
    task_.total = n;
    task_.chunk = chunk;
    const uint64_t epoch =
        epoch_.load(std::memory_order_relaxed) + 1;
    epoch_.store(epoch, std::memory_order_release);

    // Scan the caller's own chunk (the last partition).
    const std::size_t own_begin =
        chunk * static_cast<std::size_t>(options_.workers);
    if (own_begin < n) {
      ScanRange(probe, window.begin_ptr(), own_begin, n, sink_);
    }

    // Barrier: wait for all workers, then merge their matches in worker
    // order for determinism.
    for (int w = 0; w < options_.workers; ++w) {
      Backoff backoff;
      while (worker_state_[static_cast<std::size_t>(w)].done->load(
                 std::memory_order_acquire) != epoch) {
        backoff.Pause();
      }
    }
    for (int w = 0; w < options_.workers; ++w) {
      auto& local = worker_state_[static_cast<std::size_t>(w)].matches;
      for (const auto& m : local) sink_->Emit(m);
      local.clear();
    }
  }

  template <typename Probe>
  static constexpr bool ProbeIsR() {
    return std::is_same_v<Probe, R>;
  }

  /// Scans window[begin, end) against `probe`, emitting to `out`.
  template <typename Probe, typename Opp, typename Out>
  void ScanRange(const Stamped<Probe>& probe, const Stamped<Opp>* base,
                 std::size_t begin, std::size_t end, Out* out) {
    for (std::size_t i = begin; i < end; ++i) {
      const Stamped<Opp>& opp = base[i];
      if constexpr (std::is_same_v<Probe, R>) {
        if (pred_(probe.value, opp.value)) {
          out->Emit(MakeResult(probe, opp, kNoNode));
        }
      } else {
        if (pred_(opp.value, probe.value)) {
          out->Emit(MakeResult(opp, probe, kNoNode));
        }
      }
    }
  }

  struct Task {
    bool probe_is_r = true;
    Stamped<R> probe_r{};
    Stamped<S> probe_s{};
    const void* opp_base = nullptr;
    std::size_t total = 0;
    std::size_t chunk = 0;
  };

  struct WorkerState {
    CachePadded<std::atomic<uint64_t>> done{};
    std::vector<ResultMsg<R, S>> matches;
  };

  // Worker-local sink adapter.
  struct LocalSink {
    std::vector<ResultMsg<R, S>>* out;
    void Emit(const ResultMsg<R, S>& m) { out->push_back(m); }
  };

  void WorkerMain(int w) {
    auto& state = worker_state_[static_cast<std::size_t>(w)];
    uint64_t completed = 0;
    Backoff backoff;
    while (!stop_.load(std::memory_order_acquire)) {
      const uint64_t epoch = epoch_.load(std::memory_order_acquire);
      if (epoch == completed) {
        backoff.Pause();
        continue;
      }
      backoff.Reset();
      const std::size_t begin =
          task_.chunk * static_cast<std::size_t>(w);
      const std::size_t end =
          std::min(task_.total, begin + task_.chunk);
      LocalSink local{&state.matches};
      if (begin < end) {
        if (task_.probe_is_r) {
          ScanRange(task_.probe_r,
                    static_cast<const Stamped<S>*>(task_.opp_base), begin,
                    end, &local);
        } else {
          ScanRange(task_.probe_s,
                    static_cast<const Stamped<R>*>(task_.opp_base), begin,
                    end, &local);
        }
      }
      completed = epoch;
      state.done->store(epoch, std::memory_order_release);
    }
  }

  Sink* sink_;
  Pred pred_;
  Options options_;

  Window<R> wr_;
  Window<S> ws_;

  Task task_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  std::vector<WorkerState> worker_state_;
  std::vector<std::thread> workers_;
  uint64_t parallel_scans_ = 0;
};

}  // namespace sjoin
