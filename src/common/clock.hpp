// Wall-clock access used only for latency measurement and pacing — never for
// join semantics (those use driver-assigned event time).
#pragma once

#include <chrono>
#include <cstdint>

namespace sjoin {

/// Monotonic wall clock in nanoseconds.
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double NsToMs(int64_t ns) { return static_cast<double>(ns) / 1e6; }
inline double NsToSec(int64_t ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace sjoin
