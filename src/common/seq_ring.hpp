// FIFO buffer of in-flight tuples with O(1) erase-by-sequence-number.
//
// Both join engines keep an "in-flight window" (IWS): tuples forwarded to a
// neighbour that stay virtually present until acknowledged (paper Section
// 4.2.2). The access pattern is append at the tail, erase by seq (in
// near-FIFO order, because acknowledgements return in forwarding order),
// and a full scan on every opposite-stream arrival. A deque with linear
// erase makes the ack path O(n); this ring keeps the elements contiguous
// for the scan and maintains a seq -> slot index so an ack is one hash
// lookup plus a flag store.
//
// Erased slots in the middle (out-of-order acks, expiry purges) are marked
// dead and skipped by ForEach; the dead prefix/suffix is trimmed eagerly,
// so transient holes cannot accumulate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace sjoin {

/// T must expose a `.seq` member (the engines store Stamped<Tuple>).
template <typename T>
class SeqRing {
 public:
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Appends; seq values must be unique among live entries.
  void PushBack(const T& item) {
    if (slots_.empty() || tail_pos_ - head_pos_ == slots_.size()) Grow();
    Slot& slot = slots_[static_cast<std::size_t>(tail_pos_) & mask_];
    slot.item = item;
    slot.live = true;
    index_.Insert(item.seq, tail_pos_);
    ++tail_pos_;
    ++live_;
  }

  /// Removes the entry with sequence number `seq`; true when present.
  bool Erase(Seq seq) {
    uint64_t* pos = index_.Find(seq);
    if (pos == nullptr) return false;
    slots_[static_cast<std::size_t>(*pos) & mask_].live = false;
    index_.Erase(seq);
    --live_;
    while (head_pos_ < tail_pos_ &&
           !slots_[static_cast<std::size_t>(head_pos_) & mask_].live) {
      ++head_pos_;
    }
    while (tail_pos_ > head_pos_ &&
           !slots_[static_cast<std::size_t>(tail_pos_ - 1) & mask_].live) {
      --tail_pos_;
    }
    return true;
  }

  /// Visits live entries in insertion order.
  template <typename F>
  void ForEach(F&& f) const {
    for (uint64_t pos = head_pos_; pos < tail_pos_; ++pos) {
      const Slot& slot = slots_[static_cast<std::size_t>(pos) & mask_];
      if (slot.live) f(slot.item);
    }
  }

 private:
  struct Slot {
    T item{};
    bool live = false;
  };

  /// Doubles capacity, compacting live entries to the front (absolute
  /// positions restart, so the index is rebuilt). Rare and amortized.
  void Grow() {
    const std::size_t new_cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> next(new_cap);
    uint64_t n = 0;
    for (uint64_t pos = head_pos_; pos < tail_pos_; ++pos) {
      const Slot& slot = slots_[static_cast<std::size_t>(pos) & mask_];
      if (slot.live) next[static_cast<std::size_t>(n++)] = slot;
    }
    slots_ = std::move(next);
    mask_ = new_cap - 1;
    head_pos_ = 0;
    tail_pos_ = n;
    index_.Clear();
    for (uint64_t pos = 0; pos < n; ++pos) {
      index_.Insert(slots_[static_cast<std::size_t>(pos)].item.seq, pos);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  uint64_t head_pos_ = 0;  ///< absolute position of the oldest occupied slot
  uint64_t tail_pos_ = 0;  ///< absolute position one past the newest
  std::size_t live_ = 0;
  FlatMap<Seq, uint64_t> index_;
};

}  // namespace sjoin
