// Core value types shared by every module: logical time, sequence numbers,
// stream sides, and the Stamped<T> envelope that carries a user tuple through
// the system together with its identity and timing metadata.
#pragma once

#include <cstdint>
#include <limits>

namespace sjoin {

/// Logical (event-time) timestamp in microseconds. The external driver
/// assigns timestamps; all engines treat them as opaque monotonic values.
using Timestamp = int64_t;

/// Per-stream sequence number, assigned densely from 0 by the driver.
/// Sequence numbers identify tuples in expiry/acknowledgement/expedition-end
/// messages and in join results.
using Seq = uint64_t;

/// Index of a processing node within a join pipeline (0 = leftmost).
using NodeId = int32_t;

/// Identifier of a registered query within a JoinSession. A session can
/// evaluate several predicates per window crossing; every result carries the
/// id of the query that produced it so the collector can route it to that
/// query's sink. Assigned densely from 0 in registration order. Ids are
/// never reused: a removed query's id stays retired forever.
using QueryId = uint32_t;

/// Version number of a session's query set. Live AddQuery/RemoveQuery on a
/// running session installs a new epoch at a driver-order boundary (an
/// in-band punctuation flowing through the pipeline channels); every tuple
/// carries the epoch it was pushed under and every result the epoch whose
/// set produced it (the later input tuple's epoch). Epoch 0 is the set the
/// session started with; epochs increase by one per install.
using Epoch = uint32_t;

inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();
inline constexpr NodeId kNoNode = -1;

/// The two input streams of a binary stream join. R flows left-to-right
/// through a pipeline, S right-to-left (paper Figure 3/6).
enum class StreamSide : uint8_t { kR = 0, kS = 1 };

constexpr StreamSide Opposite(StreamSide side) {
  return side == StreamSide::kR ? StreamSide::kS : StreamSide::kR;
}

constexpr const char* ToString(StreamSide side) {
  return side == StreamSide::kR ? "R" : "S";
}

/// A user tuple plus the metadata every engine needs: its sequence number,
/// event-time timestamp, the wall-clock instant it entered the system
/// (used for latency accounting, never for join semantics), and the query
/// epoch it was pushed under (result attribution across live query
/// add/remove; single-epoch drivers leave it 0).
template <typename T>
struct Stamped {
  T value{};
  Seq seq = 0;
  Timestamp ts = 0;
  int64_t arrival_wall_ns = 0;
  Epoch epoch = 0;
};

}  // namespace sjoin
