// Fixed-capacity inline string. The benchmark schema of the paper carries a
// char[20] payload in every R tuple; tuples must stay trivially copyable so
// they can travel through lock-free FIFO channels, which rules out
// std::string.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace sjoin {

/// Trivially copyable string with at most N characters (not necessarily
/// NUL-terminated at capacity, like the paper's char[20] field).
template <std::size_t N>
class FixedString {
 public:
  FixedString() { std::memset(data_, 0, N); }

  explicit FixedString(std::string_view s) {
    std::memset(data_, 0, N);
    Assign(s);
  }

  void Assign(std::string_view s) {
    std::size_t n = std::min(s.size(), N);
    std::memcpy(data_, s.data(), n);
    if (n < N) std::memset(data_ + n, 0, N - n);
  }

  /// Length up to the first NUL (or N if none).
  std::size_t size() const {
    const void* nul = std::memchr(data_, 0, N);
    return nul == nullptr ? N
                          : static_cast<std::size_t>(
                                static_cast<const char*>(nul) - data_);
  }

  static constexpr std::size_t capacity() { return N; }

  std::string_view view() const { return std::string_view(data_, size()); }
  std::string str() const { return std::string(view()); }

  const char* data() const { return data_; }

  friend bool operator==(const FixedString& a, const FixedString& b) {
    return std::memcmp(a.data_, b.data_, N) == 0;
  }
  friend bool operator!=(const FixedString& a, const FixedString& b) {
    return !(a == b);
  }

 private:
  char data_[N];
};

}  // namespace sjoin
