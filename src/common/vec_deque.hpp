// Contiguous FIFO for hot-path queues of POD-ish records. std::deque is
// banned in the hot-path dirs (tools/lint/sjoin_lint.py): its node-chunked
// layout defeats the prefetcher and every libstdc++ chunk is a separate
// allocation. VecDeque keeps elements in one std::vector with a consumed
// head cursor (the same pattern as Feeder's Outbox) and compacts the
// consumed prefix only when it dominates the buffer, so steady-state
// push_back/pop_front is amortized O(1) with zero per-element allocation.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace sjoin {

template <typename T>
class VecDeque {
 public:
  bool empty() const { return head_ == buf_.size(); }
  std::size_t size() const { return buf_.size() - head_; }

  T& front() {
    assert(!empty());
    return buf_[head_];
  }
  const T& front() const {
    assert(!empty());
    return buf_[head_];
  }
  T& back() {
    assert(!empty());
    return buf_.back();
  }
  const T& back() const {
    assert(!empty());
    return buf_.back();
  }

  void push_back(const T& v) { buf_.push_back(v); }
  void push_back(T&& v) { buf_.push_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    return buf_.emplace_back(std::forward<Args>(args)...);
  }

  void pop_front() {
    assert(!empty());
    ++head_;
    MaybeCompact();
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

  // Live range iteration (front to back).
  T* begin() { return buf_.data() + head_; }
  T* end() { return buf_.data() + buf_.size(); }
  const T* begin() const { return buf_.data() + head_; }
  const T* end() const { return buf_.data() + buf_.size(); }

 private:
  void MaybeCompact() {
    // Reclaim only when the consumed prefix is both large and the majority
    // of the buffer — keeps the amortized cost of the memmove at O(1).
    if (head_ >= kCompactMin && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  static constexpr std::size_t kCompactMin = 64;

  std::vector<T> buf_;
  std::size_t head_ = 0;
};

}  // namespace sjoin
