// Centralized environment-knob access (DESIGN.md Section 14). Every
// SJOIN_* runtime knob is read through these parse-and-warn helpers: a
// misspelled value must never silently select the wrong code path (a CI
// leg that believes it forced scalar kernels or a synthetic topology has
// to actually run them), so anything unrecognized warns on stderr and
// falls back to the default. The lint pass (tools/lint/sjoin_lint.py)
// rejects bare std::getenv anywhere in src/ outside this header, which
// keeps ad-hoc knob reads from reappearing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sjoin {
namespace env {

/// Raw knob value, nullptr when unset. The only sanctioned std::getenv
/// call site in src/; callers with bespoke grammars (topology shapes,
/// SIMD level names) parse this and warn through WarnUnrecognized below.
inline const char* Raw(const char* name) { return std::getenv(name); }

/// True when the knob is set to a non-empty value.
inline bool Present(const char* name) {
  const char* v = Raw(name);
  return v != nullptr && v[0] != '\0';
}

/// Shared warn format so every knob misparse reads the same in CI logs.
inline void WarnUnrecognized(const char* name, const char* value,
                             const char* expected,
                             const char* fallback_desc) {
  std::fprintf(stderr, "sjoin: unrecognized %s=\"%s\" (%s); %s\n", name,
               value, expected, fallback_desc);
}

/// Boolean knob: "1"/"true" -> true, "0"/"false" -> false, unset/empty ->
/// `def`, anything else warns and returns `def`.
inline bool Flag(const char* name, bool def = false) {
  const char* v = Raw(name);
  if (v == nullptr || v[0] == '\0') return def;
  if (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0) return true;
  if (std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0) return false;
  WarnUnrecognized(name, v, "use 1 or 0", def ? "keeping on" : "ignoring");
  return def;
}

/// Integer knob: decimal parse, full-string match required. Unset/empty ->
/// `def`; garbage or trailing characters warn and return `def`.
inline long Int(const char* name, long def) {
  const char* v = Raw(name);
  if (v == nullptr || v[0] == '\0') return def;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    WarnUnrecognized(name, v, "want a decimal integer", "using default");
    return def;
  }
  return parsed;
}

/// String knob: unset -> `def` (may be empty).
inline std::string Str(const char* name, const std::string& def = {}) {
  const char* v = Raw(name);
  return (v == nullptr || v[0] == '\0') ? def : std::string(v);
}

}  // namespace env
}  // namespace sjoin
