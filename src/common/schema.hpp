// The benchmark schemas and join predicates used throughout the paper's
// evaluation (Section 7.1), reproduced verbatim:
//
//   R = < x : int, y : float, z : char[20] >
//   S = < a : int, b : float, c : double, d : bool >
//
// joined by the two-dimensional band predicate
//
//   r.x BETWEEN s.a - 10 AND s.a + 10  AND  r.y BETWEEN s.b - 10 AND s.b + 10
//
// with join attributes uniform in 1..10000 (hit rate ~1 : 250,000). The
// equi-join variant (paper Section 7.6 / Table 2) replaces the band with
// r.x = s.a so node-local hash indexes become applicable.
#pragma once

#include <cstdint>

#include "common/fixed_string.hpp"
#include "common/simd.hpp"

namespace sjoin {

/// Paper benchmark stream R: 〈x:int, y:float, z:char[20]〉.
struct RTuple {
  int32_t x = 0;
  float y = 0.0f;
  FixedString<20> z;
};

/// Paper benchmark stream S: 〈a:int, b:float, c:double, d:bool〉.
struct STuple {
  int32_t a = 0;
  float b = 0.0f;
  double c = 0.0;
  bool d = false;
};

/// The paper's two-dimensional band join predicate.
struct BandPredicate {
  int32_t x_band = 10;
  float y_band = 10.0f;

  bool operator()(const RTuple& r, const STuple& s) const {
    return r.x >= s.a - x_band && r.x <= s.a + x_band &&
           r.y >= s.b - y_band && r.y <= s.b + y_band;
  }
};

/// Equi-join variant of the benchmark predicate (Table 2).
struct EquiPredicate {
  bool operator()(const RTuple& r, const STuple& s) const {
    return r.x == s.a;
  }
};

/// Key extractors for hash-index acceleration of the equi-join.
struct RKey {
  int64_t operator()(const RTuple& r) const { return r.x; }
};
struct SKey {
  int64_t operator()(const STuple& s) const { return s.a; }
};

/// Range-probe bounds for ordered-index acceleration of the *band* join
/// (paper future work, Sections 7.6/9): an R tuple probes the S store for
/// keys in [x-10, x+10] and vice versa; the band predicate still filters
/// the y/b dimension.
struct RBandLowForS {
  int64_t operator()(const RTuple& r) const { return r.x - 10; }
};
struct RBandHighForS {
  int64_t operator()(const RTuple& r) const { return r.x + 10; }
};
struct SBandLowForR {
  int64_t operator()(const STuple& s) const { return s.a - 10; }
};
struct SBandHighForR {
  int64_t operator()(const STuple& s) const { return s.a + 10; }
};

static_assert(sizeof(RTuple) == 28 || sizeof(RTuple) == 32,
              "RTuple should stay a small POD");

// ---------------------------------------------------------------------------
// SIMD probe mappings (common/simd.hpp) for the benchmark schema: the hot
// predicate columns each tuple contributes to the store's SoA lanes, and
// how the band/equi predicates decompose into packed-compare sweeps per
// probe direction. The decompositions perform exactly the scalar
// predicates' arithmetic on the side where the scalar code computes it, so
// kernel-driven result sets are bit-identical to the scalar path.
// ---------------------------------------------------------------------------

template <>
struct SimdEntryLanes<RTuple> {
  static constexpr bool kEnabled = true;
  static constexpr bool kHasF32 = true;
  static int32_t K0(const RTuple& r) { return r.x; }
  static float K1(const RTuple& r) { return r.y; }
};

template <>
struct SimdEntryLanes<STuple> {
  static constexpr bool kEnabled = true;
  static constexpr bool kHasF32 = true;
  static int32_t K0(const STuple& s) { return s.a; }
  static float K1(const STuple& s) { return s.b; }
};

/// R probes the S window: the band bounds (s.a +- x_band, s.b +- y_band)
/// are computed from the ENTRY, exactly like the scalar predicate.
template <>
struct SimdProbeTraits<BandPredicate, RTuple, STuple> {
  static constexpr bool kEnabled = true;
  static constexpr SimdPredShape kShape = SimdPredShape::kBandEntry;
  static constexpr bool kUseF32 = true;
  static int32_t Band0(const BandPredicate& p) { return p.x_band; }
  static float Band1(const BandPredicate& p) { return p.y_band; }
  static int32_t P0(const RTuple& r) { return r.x; }
  static float P1(const RTuple& r) { return r.y; }
};

/// S probes the R window: the same terms now have the band arithmetic on
/// the PROBE side — hoisted to scalars once per (probe, query).
template <>
struct SimdProbeTraits<BandPredicate, STuple, RTuple> {
  static constexpr bool kEnabled = true;
  static constexpr SimdPredShape kShape = SimdPredShape::kBandProbe;
  static constexpr bool kUseF32 = true;
  static int32_t Lo0(const BandPredicate& p, const STuple& s) {
    return s.a - p.x_band;
  }
  static int32_t Hi0(const BandPredicate& p, const STuple& s) {
    return s.a + p.x_band;
  }
  static float Lo1(const BandPredicate& p, const STuple& s) {
    return s.b - p.y_band;
  }
  static float Hi1(const BandPredicate& p, const STuple& s) {
    return s.b + p.y_band;
  }
};

template <>
struct SimdProbeTraits<EquiPredicate, RTuple, STuple> {
  static constexpr bool kEnabled = true;
  static constexpr SimdPredShape kShape = SimdPredShape::kEqui;
  static int32_t Key(const EquiPredicate&, const RTuple& r) { return r.x; }
};

template <>
struct SimdProbeTraits<EquiPredicate, STuple, RTuple> {
  static constexpr bool kEnabled = true;
  static constexpr SimdPredShape kShape = SimdPredShape::kEqui;
  static int32_t Key(const EquiPredicate&, const STuple& s) { return s.a; }
};

}  // namespace sjoin
