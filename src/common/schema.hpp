// The benchmark schemas and join predicates used throughout the paper's
// evaluation (Section 7.1), reproduced verbatim:
//
//   R = < x : int, y : float, z : char[20] >
//   S = < a : int, b : float, c : double, d : bool >
//
// joined by the two-dimensional band predicate
//
//   r.x BETWEEN s.a - 10 AND s.a + 10  AND  r.y BETWEEN s.b - 10 AND s.b + 10
//
// with join attributes uniform in 1..10000 (hit rate ~1 : 250,000). The
// equi-join variant (paper Section 7.6 / Table 2) replaces the band with
// r.x = s.a so node-local hash indexes become applicable.
#pragma once

#include <cstdint>

#include "common/fixed_string.hpp"

namespace sjoin {

/// Paper benchmark stream R: 〈x:int, y:float, z:char[20]〉.
struct RTuple {
  int32_t x = 0;
  float y = 0.0f;
  FixedString<20> z;
};

/// Paper benchmark stream S: 〈a:int, b:float, c:double, d:bool〉.
struct STuple {
  int32_t a = 0;
  float b = 0.0f;
  double c = 0.0;
  bool d = false;
};

/// The paper's two-dimensional band join predicate.
struct BandPredicate {
  int32_t x_band = 10;
  float y_band = 10.0f;

  bool operator()(const RTuple& r, const STuple& s) const {
    return r.x >= s.a - x_band && r.x <= s.a + x_band &&
           r.y >= s.b - y_band && r.y <= s.b + y_band;
  }
};

/// Equi-join variant of the benchmark predicate (Table 2).
struct EquiPredicate {
  bool operator()(const RTuple& r, const STuple& s) const {
    return r.x == s.a;
  }
};

/// Key extractors for hash-index acceleration of the equi-join.
struct RKey {
  int64_t operator()(const RTuple& r) const { return r.x; }
};
struct SKey {
  int64_t operator()(const STuple& s) const { return s.a; }
};

/// Range-probe bounds for ordered-index acceleration of the *band* join
/// (paper future work, Sections 7.6/9): an R tuple probes the S store for
/// keys in [x-10, x+10] and vice versa; the band predicate still filters
/// the y/b dimension.
struct RBandLowForS {
  int64_t operator()(const RTuple& r) const { return r.x - 10; }
};
struct RBandHighForS {
  int64_t operator()(const RTuple& r) const { return r.x + 10; }
};
struct SBandLowForR {
  int64_t operator()(const STuple& s) const { return s.a - 10; }
};
struct SBandHighForR {
  int64_t operator()(const STuple& s) const { return s.a + 10; }
};

static_assert(sizeof(RTuple) == 28 || sizeof(RTuple) == 32,
              "RTuple should stay a small POD");

}  // namespace sjoin
