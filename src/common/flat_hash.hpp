// Flat open-addressing hash table (linear probing, power-of-two capacity,
// tombstone deletion). The hot paths of both join engines are dominated by
// point lookups keyed on sequence numbers — window expiry, expedition-end
// delivery, acknowledgement matching, expiry tombstones — and
// std::unordered_map/set pay a pointer chase plus an allocation per node
// for each of them. This table keeps control bytes, keys, and values in
// three contiguous arrays, so a lookup is one hash, one cache line of
// control bytes, and (almost always) one key compare.
//
// Constraints, chosen for the engine's needs rather than generality:
//  * K and V must be copy-assignable; erased values are not destroyed until
//    the table rehashes or dies (all engine uses store PODs).
//  * Keys are unique; Insert refuses duplicates instead of overwriting.
//  * No iterator stability across mutations; ForEach is snapshot-style.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sjoin {

/// Default hasher: a full-avalanche 64-bit mix (splitmix64 finalizer).
/// Sequence numbers are dense integers — identity hashing would cluster
/// linear probes, so every bit of the key must affect the slot index.
struct Mix64Hash {
  std::size_t operator()(uint64_t x) const {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
  std::size_t operator()(int64_t x) const {
    return operator()(static_cast<uint64_t>(x));
  }
};

template <typename K, typename V, typename Hash = Mix64Hash>
class FlatMap {
  enum Ctrl : uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };

 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return ctrl_.size(); }

  void Clear() {
    ctrl_.assign(ctrl_.size(), kEmpty);
    size_ = 0;
    tombs_ = 0;
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  V* Find(const K& key) {
    const std::size_t slot = FindSlot(key);
    return slot == kNoSlot ? nullptr : &vals_[slot];
  }
  const V* Find(const K& key) const {
    const std::size_t slot = FindSlot(key);
    return slot == kNoSlot ? nullptr : &vals_[slot];
  }

  bool Contains(const K& key) const { return FindSlot(key) != kNoSlot; }

  /// Inserts key -> value. Returns false (and leaves the table unchanged)
  /// when the key is already present.
  bool Insert(const K& key, const V& value) {
    bool inserted = false;
    V& slot_value = GetOrInsert(key, &inserted);
    if (inserted) slot_value = value;
    return inserted;
  }

  /// Value for `key`, default-constructing it if absent. `inserted`
  /// (optional) reports whether a new entry was created.
  V& GetOrInsert(const K& key, bool* inserted = nullptr) {
    ReserveForOneMore();
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t idx = Hash{}(key)&mask;
    std::size_t first_tomb = kNoSlot;
    while (true) {
      if (ctrl_[idx] == kEmpty) {
        std::size_t target = first_tomb != kNoSlot ? first_tomb : idx;
        if (first_tomb != kNoSlot) --tombs_;
        ctrl_[target] = kFull;
        keys_[target] = key;
        vals_[target] = V{};
        ++size_;
        if (inserted != nullptr) *inserted = true;
        return vals_[target];
      }
      if (ctrl_[idx] == kFull && keys_[idx] == key) {
        if (inserted != nullptr) *inserted = false;
        return vals_[idx];
      }
      if (ctrl_[idx] == kTomb && first_tomb == kNoSlot) first_tomb = idx;
      idx = (idx + 1) & mask;
    }
  }

  /// Removes `key`; returns true when it was present.
  bool Erase(const K& key) {
    const std::size_t slot = FindSlot(key);
    if (slot == kNoSlot) return false;
    ctrl_[slot] = kTomb;
    --size_;
    ++tombs_;
    return true;
  }

  /// Visits every (key, value) pair; f(const K&, V&). Do not mutate the
  /// table from inside f.
  template <typename F>
  void ForEach(F&& f) {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) f(keys_[i], vals_[i]);
    }
  }
  template <typename F>
  void ForEach(F&& f) const {
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] == kFull) f(keys_[i], vals_[i]);
    }
  }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t FindSlot(const K& key) const {
    if (ctrl_.empty()) return kNoSlot;
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t idx = Hash{}(key)&mask;
    while (true) {
      if (ctrl_[idx] == kEmpty) return kNoSlot;
      if (ctrl_[idx] == kFull && keys_[idx] == key) return idx;
      idx = (idx + 1) & mask;
    }
  }

  /// Keeps occupancy (entries + tombstones) under 7/8 so probes terminate
  /// quickly; rehashing drops tombstones and doubles when genuinely full.
  void ReserveForOneMore() {
    if (ctrl_.empty()) {
      Rehash(kMinCapacity);
      return;
    }
    if ((size_ + tombs_ + 1) * 8 >= ctrl_.size() * 7) {
      const std::size_t want =
          (size_ + 1) * 2 > ctrl_.size() ? ctrl_.size() * 2 : ctrl_.size();
      Rehash(want);
    }
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<K> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    ctrl_.assign(new_capacity, kEmpty);
    keys_.resize(new_capacity);
    vals_.resize(new_capacity);
    size_ = 0;
    tombs_ = 0;
    const std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      std::size_t idx = Hash{}(old_keys[i]) & mask;
      while (ctrl_[idx] == kFull) idx = (idx + 1) & mask;
      ctrl_[idx] = kFull;
      keys_[idx] = old_keys[i];
      vals_[idx] = old_vals[i];
      ++size_;
    }
  }

  std::vector<uint8_t> ctrl_;
  std::vector<K> keys_;
  std::vector<V> vals_;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

/// Flat open-addressing set (used for the expiry tombstones of LLHJ).
template <typename K, typename Hash = Mix64Hash>
class FlatSet {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.Clear(); }
  bool Contains(const K& key) const { return map_.Contains(key); }
  bool Insert(const K& key) { return map_.Insert(key, Unit{}); }
  bool Erase(const K& key) { return map_.Erase(key); }

 private:
  struct Unit {};
  FlatMap<K, Unit, Hash> map_;
};

}  // namespace sjoin
