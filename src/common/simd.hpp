// SIMD probe kernels for the window-scan hot path, with runtime dispatch.
//
// After PR 1 made VectorStore a contiguous ring and PR 2 made scans
// entry-major over k probes x N queries, the inner loop of a window crossing
// is pure data-parallel compare work: test a block of entry key lanes
// against a band/equi predicate and emit the matches. This header supplies
// that layer:
//
//  * Mask kernels — packed-compare primitives (int32 range, float32
//    range, int32 entry-side band, float32 entry-side band, int32/uint64
//    equality, and int32/int64 grouped equality for the lane-grouped hash
//    store) that each sweep one contiguous key lane and produce a match
//    BITMASK (bit i set iff lane i satisfies the predicate term). A full
//    predicate is evaluated as one or two kernel sweeps whose masks are
//    ANDed; result emission walks the set bits. Every kernel performs
//    *exactly* the arithmetic of the scalar predicate (same int32
//    wraparound, same IEEE single-precision rounding, ordered float
//    compares), so the vectorized result sets are bit-identical to the
//    scalar path — asserted by tests/test_simd_kernels.cpp and in-bench by
//    bench/ablation_simd_probe.cpp.
//
//  * Masked-tail contract — kernels write ceil(n/64) words of mask for n
//    lanes: the vector body covers the full 4/8-lane blocks, a scalar
//    epilogue covers the tail, and every bit at position >= n is ZERO.
//    Callers may therefore iterate whole mask words without re-checking n.
//
//  * Runtime dispatch — the ladder AVX-512 -> AVX2 -> SSE2 -> scalar is
//    selected ONCE at startup from cpuid (non-x86 builds compile the scalar
//    table only). `SJOIN_FORCE_SCALAR=1` forces the scalar table (CI proves
//    the fallback on every PR); `SJOIN_SIMD_LEVEL=scalar|sse2|avx2|avx512`
//    clamps to any lower rung. Tests and benches switch levels in-process
//    via OverrideSimdLevel (always clamped to what the host supports).
//
//  * Trait hooks — SimdEntryLanes<T> declares how a stored tuple type maps
//    onto the hot key lanes (k0: int32 band/equi key, k1: optional float
//    band key); SimdProbeTraits<Pred, Probe, Entry> declares how a
//    predicate decomposes into kernel sweeps for a given probe direction.
//    Both default to disabled, which keeps arbitrary user predicates on the
//    generic scalar scan. The paper's benchmark schema specializes them in
//    common/schema.hpp; the test schema in tests/test_util.hpp.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define SJOIN_SIMD_X86 1
#include <immintrin.h>
#else
#define SJOIN_SIMD_X86 0
#endif

namespace sjoin {

// ---------------------------------------------------------------------------
// Dispatch levels
// ---------------------------------------------------------------------------

enum class SimdLevel : uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

constexpr const char* ToString(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

/// Highest level this host can execute (queried once, cached). The AVX-512
/// rung requires both F (512-bit int compare-to-mask) and BW (byte/word
/// masks) — the baseline every AVX-512 server part ships.
inline SimdLevel DetectedSimdLevel() {
#if SJOIN_SIMD_X86
  static const SimdLevel detected = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw")) {
      return SimdLevel::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
    return SimdLevel::kScalar;
  }();
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

namespace simd_internal {

/// Startup level: detection clamped by the environment knobs. Read once.
/// Misspelled knob values must not silently select the wrong path: a CI leg
/// that *believes* it forced a rung has to actually run it, so anything
/// unrecognized warns on stderr and keeps the detected level.
inline SimdLevel EnvSimdLevel() {
  SimdLevel level = DetectedSimdLevel();
  if (env::Flag("SJOIN_FORCE_SCALAR")) return SimdLevel::kScalar;
  const char* named = env::Raw("SJOIN_SIMD_LEVEL");
  if (named != nullptr && named[0] != '\0') {
    const std::string want(named);
    if (want == "scalar") {
      level = SimdLevel::kScalar;
    } else if (want == "sse2") {
      level = std::min(level, SimdLevel::kSse2);  // never above detection
    } else if (want == "avx2") {
      level = std::min(level, SimdLevel::kAvx2);
    } else if (want == "avx512") {
      level = std::min(level, SimdLevel::kAvx512);
    } else {
      const std::string keep = std::string("keeping ") + ToString(level);
      env::WarnUnrecognized("SJOIN_SIMD_LEVEL", named,
                            "use scalar|sse2|avx2|avx512", keep.c_str());
    }
  }
  return level;
}

/// In-process override used by tests/benches; -1 = none.
inline std::atomic<int>& OverrideSlot() {
  static std::atomic<int> slot{-1};
  return slot;
}

}  // namespace simd_internal

/// The level the dispatched kernel table follows. Selected once at startup
/// (cpuid clamped by SJOIN_FORCE_SCALAR / SJOIN_SIMD_LEVEL), unless a test
/// or bench installed an override.
inline SimdLevel ActiveSimdLevel() {
  const int over = simd_internal::OverrideSlot().load(std::memory_order_relaxed);
  if (over >= 0) return static_cast<SimdLevel>(over);
  static const SimdLevel startup = simd_internal::EnvSimdLevel();
  return startup;
}

/// Installs an in-process dispatch override (clamped to the detected
/// ceiling — asking for AVX2 on an SSE2-only host yields SSE2). Returns the
/// level actually installed. Test/bench hook; production code never calls
/// this.
inline SimdLevel OverrideSimdLevel(SimdLevel level) {
  if (level > DetectedSimdLevel()) level = DetectedSimdLevel();
  simd_internal::OverrideSlot().store(static_cast<int>(level),
                                      std::memory_order_relaxed);
  return level;
}

/// Removes the override; ActiveSimdLevel reverts to the startup selection.
inline void ClearSimdLevelOverride() {
  simd_internal::OverrideSlot().store(-1, std::memory_order_relaxed);
}

/// The levels this host can execute, lowest first (always includes
/// kScalar). Tests and benches sweep this to prove every rung.
inline std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (DetectedSimdLevel() >= SimdLevel::kSse2) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (DetectedSimdLevel() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  if (DetectedSimdLevel() >= SimdLevel::kAvx512) {
    levels.push_back(SimdLevel::kAvx512);
  }
  return levels;
}

// ---------------------------------------------------------------------------
// Mask helpers
// ---------------------------------------------------------------------------

/// Mask words covering n lanes.
constexpr std::size_t SimdMaskWords(std::size_t n) { return (n + 63) / 64; }

inline void ZeroMask(uint64_t* mask, std::size_t n) {
  std::memset(mask, 0, SimdMaskWords(n) * sizeof(uint64_t));
}

inline void AndMask(uint64_t* dst, const uint64_t* src, std::size_t n) {
  for (std::size_t w = 0; w < SimdMaskWords(n); ++w) dst[w] &= src[w];
}

/// Calls f(i) for every set bit i of a mask covering n lanes (bits >= n are
/// zero by the kernel contract, so whole words are consumed).
template <typename F>
inline void ForEachSetBit(const uint64_t* mask, std::size_t n, F&& f) {
  for (std::size_t w = 0; w < SimdMaskWords(n); ++w) {
    uint64_t word = mask[w];
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
      f(w * 64 + bit);
      word &= word - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Kernels — scalar reference implementations
//
// These are the semantic definition of every kernel: the SSE2/AVX2 variants
// must produce bit-identical masks (tests/test_simd_kernels.cpp pins this).
// They are also the dispatched implementation at SimdLevel::kScalar.
// ---------------------------------------------------------------------------

namespace simd_kernels {

/// bit i <=> lo <= v[i] <= hi  (probe-side bounds, precomputed scalars).
inline void RangeMaskI32Scalar(const int32_t* v, std::size_t n, int32_t lo,
                               int32_t hi, uint64_t* mask) {
  ZeroMask(mask, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] >= lo && v[i] <= hi) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

/// bit i <=> lo <= v[i] <= hi, IEEE ordered compares (NaN never matches).
inline void RangeMaskF32Scalar(const float* v, std::size_t n, float lo,
                               float hi, uint64_t* mask) {
  ZeroMask(mask, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] >= lo && v[i] <= hi) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

/// v[i] - band with two's-complement wraparound: scalar bodies and tail
/// epilogues must match the vector _mm*_sub/add_epi32 semantics exactly
/// (and signed int32 overflow would be UB).
inline int32_t WrapSub(int32_t a, int32_t b) {
  return static_cast<int32_t>(static_cast<uint32_t>(a) -
                              static_cast<uint32_t>(b));
}
inline int32_t WrapAdd(int32_t a, int32_t b) {
  return static_cast<int32_t>(static_cast<uint32_t>(a) +
                              static_cast<uint32_t>(b));
}

/// bit i <=> v[i]-band <= probe <= v[i]+band  (entry-side bounds: the band
/// arithmetic runs per entry, exactly like the scalar band predicate).
inline void BandEntryMaskI32Scalar(const int32_t* v, std::size_t n,
                                   int32_t band, int32_t probe,
                                   uint64_t* mask) {
  ZeroMask(mask, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (probe >= WrapSub(v[i], band) && probe <= WrapAdd(v[i], band)) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

inline void BandEntryMaskF32Scalar(const float* v, std::size_t n, float band,
                                   float probe, uint64_t* mask) {
  ZeroMask(mask, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (probe >= v[i] - band && probe <= v[i] + band) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

/// bit i <=> v[i] == key  (equi-join sweep).
inline void EqMaskI32Scalar(const int32_t* v, std::size_t n, int32_t key,
                            uint64_t* mask) {
  ZeroMask(mask, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] == key) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

/// bit i <=> v[i] == key  (sequence-number sweep of the Seq lane).
inline void EqMaskU64Scalar(const uint64_t* v, std::size_t n, uint64_t key,
                            uint64_t* mask) {
  ZeroMask(mask, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] == key) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

// -- Grouped equality (lane-grouped hash store probe) ------------------------
//
// The grouped hash store (llhj/group_table.hpp) keeps keys in groups of 8
// contiguous lanes with one occupancy byte per group: bit b of full[g] is
// set iff lane 8*g+b holds a live key (empty and tombstoned lanes are
// clear). These kernels sweep such a lane array and set mask bit i iff
// keys[i] == key AND lane i is live — one packed compare plus one byte AND
// per group. Same masked-tail contract as every other kernel: bits >= n are
// zero and dead-lane key bytes never influence the result (they may hold
// stale values).

inline constexpr std::size_t kGroupLanes = 8;

/// bit i <=> keys[i] == key && full[i/8] has bit i%8 set  (int64 keys).
inline void EqGroupsI64Scalar(const int64_t* keys, const uint8_t* full,
                              std::size_t n, int64_t key, uint64_t* mask) {
  ZeroMask(mask, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keys[i] == key && ((full[i >> 3] >> (i & 7)) & 1u) != 0) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

/// bit i <=> keys[i] == key && full[i/8] has bit i%8 set  (int32 keys).
inline void EqGroupsI32Scalar(const int32_t* keys, const uint8_t* full,
                              std::size_t n, int32_t key, uint64_t* mask) {
  ZeroMask(mask, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keys[i] == key && ((full[i >> 3] >> (i & 7)) & 1u) != 0) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

#if SJOIN_SIMD_X86

// -- SSE2 (4-wide) -----------------------------------------------------------
//
// The target attribute lets these bodies use intrinsics without compiling
// the whole translation unit for the extension; the dispatcher only hands
// out a table after cpuid confirmed support.

__attribute__((target("sse2"))) inline void RangeMaskI32Sse2(
    const int32_t* v, std::size_t n, int32_t lo, int32_t hi, uint64_t* mask) {
  ZeroMask(mask, n);
  const __m128i vlo = _mm_set1_epi32(lo);
  const __m128i vhi = _mm_set1_epi32(hi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    const __m128i bad =
        _mm_or_si128(_mm_cmpgt_epi32(vlo, x), _mm_cmpgt_epi32(x, vhi));
    const uint32_t bits =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(bad))) ^ 0xfu;
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] <= hi) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("sse2"))) inline void RangeMaskF32Sse2(
    const float* v, std::size_t n, float lo, float hi, uint64_t* mask) {
  ZeroMask(mask, n);
  const __m128 vlo = _mm_set1_ps(lo);
  const __m128 vhi = _mm_set1_ps(hi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 x = _mm_loadu_ps(v + i);
    const __m128 ok = _mm_and_ps(_mm_cmpge_ps(x, vlo), _mm_cmple_ps(x, vhi));
    const uint32_t bits = static_cast<uint32_t>(_mm_movemask_ps(ok));
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] <= hi) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("sse2"))) inline void BandEntryMaskI32Sse2(
    const int32_t* v, std::size_t n, int32_t band, int32_t probe,
    uint64_t* mask) {
  ZeroMask(mask, n);
  const __m128i vband = _mm_set1_epi32(band);
  const __m128i vprobe = _mm_set1_epi32(probe);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    const __m128i lo = _mm_sub_epi32(x, vband);
    const __m128i hi = _mm_add_epi32(x, vband);
    const __m128i bad =
        _mm_or_si128(_mm_cmpgt_epi32(lo, vprobe), _mm_cmpgt_epi32(vprobe, hi));
    const uint32_t bits =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(bad))) ^ 0xfu;
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (probe >= WrapSub(v[i], band) && probe <= WrapAdd(v[i], band)) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("sse2"))) inline void BandEntryMaskF32Sse2(
    const float* v, std::size_t n, float band, float probe, uint64_t* mask) {
  ZeroMask(mask, n);
  const __m128 vband = _mm_set1_ps(band);
  const __m128 vprobe = _mm_set1_ps(probe);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 x = _mm_loadu_ps(v + i);
    const __m128 lo = _mm_sub_ps(x, vband);
    const __m128 hi = _mm_add_ps(x, vband);
    const __m128 ok =
        _mm_and_ps(_mm_cmpge_ps(vprobe, lo), _mm_cmple_ps(vprobe, hi));
    const uint32_t bits = static_cast<uint32_t>(_mm_movemask_ps(ok));
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (probe >= v[i] - band && probe <= v[i] + band) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("sse2"))) inline void EqMaskI32Sse2(const int32_t* v,
                                                          std::size_t n,
                                                          int32_t key,
                                                          uint64_t* mask) {
  ZeroMask(mask, n);
  const __m128i vkey = _mm_set1_epi32(key);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    const __m128i eq = _mm_cmpeq_epi32(x, vkey);
    const uint32_t bits =
        static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] == key) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("sse2"))) inline void EqMaskU64Sse2(const uint64_t* v,
                                                          std::size_t n,
                                                          uint64_t key,
                                                          uint64_t* mask) {
  ZeroMask(mask, n);
  const __m128i vkey =
      _mm_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    // SSE2 has no 64-bit compare: compare the 32-bit halves and AND each
    // half with its sibling so a 64-bit lane is all-ones iff both match.
    const __m128i eq32 = _mm_cmpeq_epi32(x, vkey);
    const __m128i eq64 = _mm_and_si128(
        eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    const uint32_t bits =
        static_cast<uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(eq64)));
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] == key) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("sse2"))) inline void EqGroupsI64Sse2(
    const int64_t* keys, const uint8_t* full, std::size_t n, int64_t key,
    uint64_t* mask) {
  ZeroMask(mask, n);
  const __m128i vkey = _mm_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  // Whole groups: i stays 8-aligned, so the 8 result bits never straddle a
  // mask word. Four 2-lane compares per group (64-bit eq via the 32-bit
  // half-compare trick, as in EqMaskU64Sse2).
  for (; i + kGroupLanes <= n; i += kGroupLanes) {
    uint32_t bits = 0;
    for (std::size_t q = 0; q < 4; ++q) {
      const __m128i x = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(keys + i + 2 * q));
      const __m128i eq32 = _mm_cmpeq_epi32(x, vkey);
      const __m128i eq64 = _mm_and_si128(
          eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
      bits |= static_cast<uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(eq64)))
              << (2 * q);
    }
    bits &= full[i >> 3];
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (keys[i] == key && ((full[i >> 3] >> (i & 7)) & 1u) != 0) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("sse2"))) inline void EqGroupsI32Sse2(
    const int32_t* keys, const uint8_t* full, std::size_t n, int32_t key,
    uint64_t* mask) {
  ZeroMask(mask, n);
  const __m128i vkey = _mm_set1_epi32(key);
  std::size_t i = 0;
  for (; i + kGroupLanes <= n; i += kGroupLanes) {
    const __m128i lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(keys + i));
    const __m128i hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(keys + i + 4));
    uint32_t bits =
        static_cast<uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lo, vkey)))) |
        (static_cast<uint32_t>(_mm_movemask_ps(
             _mm_castsi128_ps(_mm_cmpeq_epi32(hi, vkey))))
         << 4);
    bits &= full[i >> 3];
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (keys[i] == key && ((full[i >> 3] >> (i & 7)) & 1u) != 0) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

// -- AVX2 (8-wide) -----------------------------------------------------------

__attribute__((target("avx2"))) inline void RangeMaskI32Avx2(
    const int32_t* v, std::size_t n, int32_t lo, int32_t hi, uint64_t* mask) {
  ZeroMask(mask, n);
  const __m256i vlo = _mm256_set1_epi32(lo);
  const __m256i vhi = _mm256_set1_epi32(hi);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi32(vlo, x),
                                        _mm256_cmpgt_epi32(x, vhi));
    const uint32_t bits =
        static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(bad))) ^
        0xffu;
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] <= hi) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("avx2"))) inline void RangeMaskF32Avx2(
    const float* v, std::size_t n, float lo, float hi, uint64_t* mask) {
  ZeroMask(mask, n);
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vhi = _mm256_set1_ps(hi);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(v + i);
    const __m256 ok = _mm256_and_ps(_mm256_cmp_ps(x, vlo, _CMP_GE_OQ),
                                    _mm256_cmp_ps(x, vhi, _CMP_LE_OQ));
    const uint32_t bits = static_cast<uint32_t>(_mm256_movemask_ps(ok));
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] <= hi) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("avx2"))) inline void BandEntryMaskI32Avx2(
    const int32_t* v, std::size_t n, int32_t band, int32_t probe,
    uint64_t* mask) {
  ZeroMask(mask, n);
  const __m256i vband = _mm256_set1_epi32(band);
  const __m256i vprobe = _mm256_set1_epi32(probe);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i lo = _mm256_sub_epi32(x, vband);
    const __m256i hi = _mm256_add_epi32(x, vband);
    const __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi32(lo, vprobe),
                                        _mm256_cmpgt_epi32(vprobe, hi));
    const uint32_t bits =
        static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(bad))) ^
        0xffu;
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (probe >= WrapSub(v[i], band) && probe <= WrapAdd(v[i], band)) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("avx2"))) inline void BandEntryMaskF32Avx2(
    const float* v, std::size_t n, float band, float probe, uint64_t* mask) {
  ZeroMask(mask, n);
  const __m256 vband = _mm256_set1_ps(band);
  const __m256 vprobe = _mm256_set1_ps(probe);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(v + i);
    const __m256 lo = _mm256_sub_ps(x, vband);
    const __m256 hi = _mm256_add_ps(x, vband);
    const __m256 ok = _mm256_and_ps(_mm256_cmp_ps(vprobe, lo, _CMP_GE_OQ),
                                    _mm256_cmp_ps(vprobe, hi, _CMP_LE_OQ));
    const uint32_t bits = static_cast<uint32_t>(_mm256_movemask_ps(ok));
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (probe >= v[i] - band && probe <= v[i] + band) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("avx2"))) inline void EqMaskI32Avx2(const int32_t* v,
                                                          std::size_t n,
                                                          int32_t key,
                                                          uint64_t* mask) {
  ZeroMask(mask, n);
  const __m256i vkey = _mm256_set1_epi32(key);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i eq = _mm256_cmpeq_epi32(x, vkey);
    const uint32_t bits =
        static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] == key) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("avx2"))) inline void EqMaskU64Avx2(const uint64_t* v,
                                                          std::size_t n,
                                                          uint64_t key,
                                                          uint64_t* mask) {
  ZeroMask(mask, n);
  const __m256i vkey =
      _mm256_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i eq = _mm256_cmpeq_epi64(x, vkey);
    const uint32_t bits =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] == key) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("avx2"))) inline void EqGroupsI64Avx2(
    const int64_t* keys, const uint8_t* full, std::size_t n, int64_t key,
    uint64_t* mask) {
  ZeroMask(mask, n);
  const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  for (; i + kGroupLanes <= n; i += kGroupLanes) {
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i + 4));
    uint32_t bits =
        static_cast<uint32_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(lo, vkey)))) |
        (static_cast<uint32_t>(_mm256_movemask_pd(
             _mm256_castsi256_pd(_mm256_cmpeq_epi64(hi, vkey))))
         << 4);
    bits &= full[i >> 3];
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (keys[i] == key && ((full[i >> 3] >> (i & 7)) & 1u) != 0) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("avx2"))) inline void EqGroupsI32Avx2(
    const int32_t* keys, const uint8_t* full, std::size_t n, int32_t key,
    uint64_t* mask) {
  ZeroMask(mask, n);
  const __m256i vkey = _mm256_set1_epi32(key);
  std::size_t i = 0;
  for (; i + kGroupLanes <= n; i += kGroupLanes) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    uint32_t bits = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(x, vkey))));
    bits &= full[i >> 3];
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (keys[i] == key && ((full[i >> 3] >> (i & 7)) & 1u) != 0) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

// -- AVX-512 (16-wide i32 / 8-wide i64, native mask registers) ---------------
//
// The compare-to-mask forms return the match bitmask directly (__mmask16 /
// __mmask8) — no movemask round trip. Float range/band and the u64 Seq
// sweep stay on their AVX2 bodies (same table entry): those lanes are
// latency-bound in practice and 512-bit floats gain nothing measurable, so
// the rung adds only the integer sweeps the ablation actually exercises.

__attribute__((target("avx512f"))) inline void RangeMaskI32Avx512(
    const int32_t* v, std::size_t n, int32_t lo, int32_t hi, uint64_t* mask) {
  ZeroMask(mask, n);
  const __m512i vlo = _mm512_set1_epi32(lo);
  const __m512i vhi = _mm512_set1_epi32(hi);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i x = _mm512_loadu_si512(v + i);
    const __mmask16 ge = _mm512_cmp_epi32_mask(x, vlo, _MM_CMPINT_NLT);
    const __mmask16 le = _mm512_cmp_epi32_mask(x, vhi, _MM_CMPINT_LE);
    const uint32_t bits = static_cast<uint32_t>(ge & le);
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] >= lo && v[i] <= hi) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("avx512f"))) inline void BandEntryMaskI32Avx512(
    const int32_t* v, std::size_t n, int32_t band, int32_t probe,
    uint64_t* mask) {
  ZeroMask(mask, n);
  const __m512i vband = _mm512_set1_epi32(band);
  const __m512i vprobe = _mm512_set1_epi32(probe);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i x = _mm512_loadu_si512(v + i);
    const __m512i lo = _mm512_sub_epi32(x, vband);
    const __m512i hi = _mm512_add_epi32(x, vband);
    const __mmask16 ge = _mm512_cmp_epi32_mask(vprobe, lo, _MM_CMPINT_NLT);
    const __mmask16 le = _mm512_cmp_epi32_mask(vprobe, hi, _MM_CMPINT_LE);
    const uint32_t bits = static_cast<uint32_t>(ge & le);
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (probe >= WrapSub(v[i], band) && probe <= WrapAdd(v[i], band)) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("avx512f"))) inline void EqMaskI32Avx512(
    const int32_t* v, std::size_t n, int32_t key, uint64_t* mask) {
  ZeroMask(mask, n);
  const __m512i vkey = _mm512_set1_epi32(key);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i x = _mm512_loadu_si512(v + i);
    const uint32_t bits =
        static_cast<uint32_t>(_mm512_cmpeq_epi32_mask(x, vkey));
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (v[i] == key) mask[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

__attribute__((target("avx512f"))) inline void EqGroupsI64Avx512(
    const int64_t* keys, const uint8_t* full, std::size_t n, int64_t key,
    uint64_t* mask) {
  ZeroMask(mask, n);
  const __m512i vkey = _mm512_set1_epi64(static_cast<long long>(key));
  std::size_t i = 0;
  // One whole 8-lane group per compare: the __mmask8 IS the group mask.
  for (; i + kGroupLanes <= n; i += kGroupLanes) {
    const __m512i x = _mm512_loadu_si512(keys + i);
    uint32_t bits = static_cast<uint32_t>(_mm512_cmpeq_epi64_mask(x, vkey));
    bits &= full[i >> 3];
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  for (; i < n; ++i) {
    if (keys[i] == key && ((full[i >> 3] >> (i & 7)) & 1u) != 0) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

__attribute__((target("avx512f"))) inline void EqGroupsI32Avx512(
    const int32_t* keys, const uint8_t* full, std::size_t n, int32_t key,
    uint64_t* mask) {
  ZeroMask(mask, n);
  const __m512i vkey = _mm512_set1_epi32(key);
  std::size_t i = 0;
  // Two adjacent 8-lane groups per 512-bit compare; their occupancy bytes
  // concatenate little-endian to match the 16 compare bits.
  for (; i + 2 * kGroupLanes <= n; i += 2 * kGroupLanes) {
    const __m512i x = _mm512_loadu_si512(keys + i);
    uint32_t bits = static_cast<uint32_t>(_mm512_cmpeq_epi32_mask(x, vkey));
    bits &= static_cast<uint32_t>(full[i >> 3]) |
            (static_cast<uint32_t>(full[(i >> 3) + 1]) << 8);
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
  if (i + kGroupLanes <= n) {
    // One trailing whole group via the 256-bit form (AVX-512F implies AVX2).
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    uint32_t bits = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(x, _mm256_set1_epi32(key)))));
    bits &= full[i >> 3];
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
    i += kGroupLanes;
  }
  for (; i < n; ++i) {
    if (keys[i] == key && ((full[i >> 3] >> (i & 7)) & 1u) != 0) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

#endif  // SJOIN_SIMD_X86

}  // namespace simd_kernels

/// Lanes per occupancy group of the grouped hash store (one occupancy byte
/// covers one group; see the grouped-equality kernels above).
using simd_kernels::kGroupLanes;

// ---------------------------------------------------------------------------
// Dispatch table
// ---------------------------------------------------------------------------

/// One kernel table per dispatch level; all entries obey the masked-tail
/// contract (bits >= n zero) and compute exactly the scalar arithmetic.
struct SimdKernels {
  const char* name;
  void (*range_i32)(const int32_t* v, std::size_t n, int32_t lo, int32_t hi,
                    uint64_t* mask);
  void (*range_f32)(const float* v, std::size_t n, float lo, float hi,
                    uint64_t* mask);
  void (*band_entry_i32)(const int32_t* v, std::size_t n, int32_t band,
                         int32_t probe, uint64_t* mask);
  void (*band_entry_f32)(const float* v, std::size_t n, float band,
                         float probe, uint64_t* mask);
  void (*eq_i32)(const int32_t* v, std::size_t n, int32_t key,
                 uint64_t* mask);
  void (*eq_u64)(const uint64_t* v, std::size_t n, uint64_t key,
                 uint64_t* mask);
  void (*eq_groups_i64)(const int64_t* keys, const uint8_t* full,
                        std::size_t n, int64_t key, uint64_t* mask);
  void (*eq_groups_i32)(const int32_t* keys, const uint8_t* full,
                        std::size_t n, int32_t key, uint64_t* mask);
};

/// Kernel table for an explicit level (tests sweep all of them). Levels the
/// build does not provide (non-x86) fall back to the scalar table.
inline const SimdKernels& KernelsFor(SimdLevel level) {
  static const SimdKernels scalar = {
      "scalar",
      &simd_kernels::RangeMaskI32Scalar,
      &simd_kernels::RangeMaskF32Scalar,
      &simd_kernels::BandEntryMaskI32Scalar,
      &simd_kernels::BandEntryMaskF32Scalar,
      &simd_kernels::EqMaskI32Scalar,
      &simd_kernels::EqMaskU64Scalar,
      &simd_kernels::EqGroupsI64Scalar,
      &simd_kernels::EqGroupsI32Scalar,
  };
#if SJOIN_SIMD_X86
  static const SimdKernels sse2 = {
      "sse2",
      &simd_kernels::RangeMaskI32Sse2,
      &simd_kernels::RangeMaskF32Sse2,
      &simd_kernels::BandEntryMaskI32Sse2,
      &simd_kernels::BandEntryMaskF32Sse2,
      &simd_kernels::EqMaskI32Sse2,
      &simd_kernels::EqMaskU64Sse2,
      &simd_kernels::EqGroupsI64Sse2,
      &simd_kernels::EqGroupsI32Sse2,
  };
  static const SimdKernels avx2 = {
      "avx2",
      &simd_kernels::RangeMaskI32Avx2,
      &simd_kernels::RangeMaskF32Avx2,
      &simd_kernels::BandEntryMaskI32Avx2,
      &simd_kernels::BandEntryMaskF32Avx2,
      &simd_kernels::EqMaskI32Avx2,
      &simd_kernels::EqMaskU64Avx2,
      &simd_kernels::EqGroupsI64Avx2,
      &simd_kernels::EqGroupsI32Avx2,
  };
  // The float range/band sweeps and the u64 Seq sweep reuse their AVX2
  // bodies (see the AVX-512 section note); the integer sweeps and the
  // grouped-equality kernels get native 512-bit mask forms.
  static const SimdKernels avx512 = {
      "avx512",
      &simd_kernels::RangeMaskI32Avx512,
      &simd_kernels::RangeMaskF32Avx2,
      &simd_kernels::BandEntryMaskI32Avx512,
      &simd_kernels::BandEntryMaskF32Avx2,
      &simd_kernels::EqMaskI32Avx512,
      &simd_kernels::EqMaskU64Avx2,
      &simd_kernels::EqGroupsI64Avx512,
      &simd_kernels::EqGroupsI32Avx512,
  };
  switch (level) {
    case SimdLevel::kScalar:
      return scalar;
    case SimdLevel::kSse2:
      return sse2;
    case SimdLevel::kAvx2:
      return avx2;
    case SimdLevel::kAvx512:
      return avx512;
  }
#else
  (void)level;
#endif
  return scalar;
}

/// The dispatched table for the active level.
inline const SimdKernels& ActiveKernels() {
  return KernelsFor(ActiveSimdLevel());
}

// ---------------------------------------------------------------------------
// Block geometry + trait hooks
// ---------------------------------------------------------------------------

/// Entries are probed in blocks of this many lanes: small enough that one
/// block of both key lanes (256 * 8 bytes = 2 KB) stays L1-resident across
/// the k probes x N queries sweeping it, large enough to amortize kernel
/// call overhead and mask iteration.
inline constexpr std::size_t kSimdBlock = 256;
inline constexpr std::size_t kSimdBlockWords = kSimdBlock / 64;

/// One contiguous block of entry key lanes (k1 may be null when the entry
/// type has no float lane).
struct SimdLaneBlock {
  const int32_t* k0 = nullptr;
  const float* k1 = nullptr;
};

/// Per-call scratch for block evaluation: the result mask and a second
/// buffer for the float term of two-sweep predicates.
struct SimdMatchScratch {
  uint64_t mask[kSimdBlockWords];
  uint64_t tmp[kSimdBlockWords];
};

/// Declares how a stored tuple type maps onto the hot key lanes kept in
/// structure-of-arrays form next to the entry ring:
///
///   static constexpr bool kEnabled = true;
///   static constexpr bool kHasF32  = ...;         // is there a float lane?
///   static int32_t K0(const T&);                  // band/equi int key
///   static float   K1(const T&);                  // float band key (if any)
///
/// Disabled by default: types without a specialization skip lane
/// maintenance entirely and scan through the generic scalar path.
template <typename T>
struct SimdEntryLanes {
  static constexpr bool kEnabled = false;
};

/// How a predicate decomposes into kernel sweeps for one probe direction.
/// Keyed on (Pred, Probe tuple, Entry tuple) — both directions of a join
/// get their own specialization because the band arithmetic must stay on
/// the side where the scalar predicate computes it (bit-identical results):
///
///   kShape = kEqui:      eq_i32(entry.k0, Key(pred, probe))
///   kShape = kBandEntry: band_entry_i32(entry.k0, Band0(pred), P0(probe))
///                        [AND band_entry_f32(entry.k1, Band1, P1)]
///                        — bounds arithmetic on the ENTRY side
///   kShape = kBandProbe: range_i32(entry.k0, Lo0(pred,probe), Hi0(...))
///                        [AND range_f32(entry.k1, Lo1, Hi1)]
///                        — bounds arithmetic on the PROBE side, hoisted to
///                        scalars once per (probe, query)
///
/// kUseF32 adds the float sweep; it requires SimdEntryLanes<Entry>::kHasF32.
template <typename Pred, typename Probe, typename Entry>
struct SimdProbeTraits {
  static constexpr bool kEnabled = false;
};

enum class SimdPredShape : uint8_t { kEqui, kBandEntry, kBandProbe };

}  // namespace sjoin
