// Clang thread-safety annotations (DESIGN.md Section 14, tier 1 of the
// concurrency-contract verification layer). The macros wrap clang's
// -Wthread-safety attribute set; under any other compiler they expand to
// nothing, so annotated code builds everywhere while clang builds turn a
// lock-discipline violation (touching a GUARDED_BY member without holding
// its mutex, releasing a lock twice, ...) into a compile error.
//
// The analysis only sees lock/unlock calls that carry ACQUIRE/RELEASE
// attributes, which std::mutex and std::lock_guard do not (libstdc++ ships
// them unannotated). Every mutex in src/ therefore uses the AnnotatedMutex
// wrapper below together with the MutexLock scoped guard; the lint pass
// (tools/lint/sjoin_lint.py) rejects raw std::mutex outside this header so
// the migration cannot silently regress.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SJOIN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SJOIN_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (lockable resource).
#define SJOIN_CAPABILITY(x) SJOIN_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SJOIN_SCOPED_CAPABILITY SJOIN_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define SJOIN_GUARDED_BY(x) SJOIN_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define SJOIN_PT_GUARDED_BY(x) SJOIN_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define SJOIN_REQUIRES(...) \
  SJOIN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function requires shared (reader) access to the capability.
#define SJOIN_REQUIRES_SHARED(...) \
  SJOIN_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define SJOIN_ACQUIRE(...) \
  SJOIN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define SJOIN_RELEASE(...) \
  SJOIN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define SJOIN_TRY_ACQUIRE(...) \
  SJOIN_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant guard).
#define SJOIN_EXCLUDES(...) \
  SJOIN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SJOIN_RETURN_CAPABILITY(x) \
  SJOIN_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed statically.
/// Each use must carry a comment naming the contract that covers it.
#define SJOIN_NO_THREAD_SAFETY_ANALYSIS \
  SJOIN_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace sjoin {

/// std::mutex with the capability attributes the clang analysis needs.
/// Always lock through MutexLock (below) — a bare lock()/unlock() pair is
/// legal but loses the scoped-release guarantee.
class SJOIN_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() SJOIN_ACQUIRE() { mu_.lock(); }
  void unlock() SJOIN_RELEASE() { mu_.unlock(); }
  bool try_lock() SJOIN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over an AnnotatedMutex — the std::lock_guard replacement the
/// analysis can see through.
class SJOIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex* mu) SJOIN_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~MutexLock() SJOIN_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex* mu_;
};

}  // namespace sjoin
