// Deterministic, seedable random number generation (SplitMix64 seeding a
// xoshiro256**). All workload generation and schedule fuzzing flows through
// this so every experiment and property test is reproducible from a seed.
#pragma once

#include <cstdint>

namespace sjoin {

/// SplitMix64 — used to expand a single seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace sjoin
