// Checked-contracts build mode (DESIGN.md Section 14, tier 3 of the
// concurrency-contract verification layer). The lock-free tier of the
// engine — SPSC rings, staged channels, the feeder/driver seq protocol,
// high-water marks, epoch installation — is correct only under ownership
// and ordering rules no static analysis can see (single producer thread,
// single consumer thread, per-side monotone seqs, monotone marks). This
// header compiles those rules into dynamic assertions when the build sets
// SJOIN_CONTRACTS=1 (cmake -DSJOIN_CONTRACTS=ON); otherwise every class
// below is an empty no-op struct and every member is declared
// [[no_unique_address]], so Release binaries carry zero bytes and zero
// instructions of contract state.
//
// A violation prints the structure, role, and offending thread/value to
// stderr and aborts — gtest death tests (tests/test_contracts.cpp) match
// on the "sjoin contract violation" prefix.
//
// Thread-role rebinding: benches and sessions legitimately hand a queue
// end to a different thread across executor generations (the main thread
// drains result rings after ThreadedExecutor::Stop() has joined the
// workers). ThreadedExecutor::Start/Stop advance a global contract
// generation; a role may rebind to a new thread only when the generation
// has moved since it was last asserted.
#pragma once

#if defined(SJOIN_CONTRACTS) && SJOIN_CONTRACTS
#define SJOIN_CONTRACTS_ENABLED 1
#else
#define SJOIN_CONTRACTS_ENABLED 0
#endif

#if SJOIN_CONTRACTS_ENABLED

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

namespace sjoin {
namespace contracts {

inline std::atomic<std::uint64_t>& GenerationCounter() {
  static std::atomic<std::uint64_t> gen{1};
  return gen;
}

/// Current contract generation. Thread roles bound in an older generation
/// may rebind; roles bound in the current one are pinned.
inline std::uint64_t Generation() {
  return GenerationCounter().load(std::memory_order_acquire);
}

/// Called by ThreadedExecutor::Start/Stop (and tests) at points where
/// thread ownership is allowed to change hands.
inline void AdvanceGeneration() {
  GenerationCounter().fetch_add(1, std::memory_order_acq_rel);
}

/// Stable nonzero id for the calling thread.
inline std::uint64_t SelfId() {
  const std::uint64_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h | 1ull;  // never 0 — 0 means "unbound" below
}

[[noreturn]] inline void Fail(const char* structure, const char* detail) {
  std::fprintf(stderr, "sjoin contract violation: %s: %s\n", structure,
               detail);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void FailValue(const char* structure, const char* detail,
                                   long long prev, long long next) {
  std::fprintf(stderr,
               "sjoin contract violation: %s: %s (prev=%lld next=%lld)\n",
               structure, detail, prev, next);
  std::fflush(stderr);
  std::abort();
}

/// Pins a role (producer / consumer / driver) to the first thread that
/// exercises it within a contract generation. Only ever touched by threads
/// claiming the role, so relaxed atomics suffice for the contract's own
/// state; a torn rebind race is itself the violation being detected.
class ThreadRole {
 public:
  ThreadRole() = default;
  // Copying/moving a structure (pipeline wiring, container growth) yields a
  // fresh unbound role: the copy's owner is whichever thread uses it first.
  ThreadRole(const ThreadRole&) noexcept : ThreadRole() {}
  ThreadRole& operator=(const ThreadRole&) noexcept { return *this; }

  void AssertHeld(const char* structure, const char* role) {
    const std::uint64_t gen = Generation();
    const std::uint64_t self = SelfId();
    const std::uint64_t bound_gen = gen_.load(std::memory_order_relaxed);
    const std::uint64_t owner = owner_.load(std::memory_order_relaxed);
    if (owner == 0 || bound_gen != gen) {
      owner_.store(self, std::memory_order_relaxed);
      gen_.store(gen, std::memory_order_relaxed);
      return;
    }
    if (owner != self) {
      std::fprintf(stderr,
                   "sjoin contract violation: %s: role '%s' exercised by a "
                   "second thread within one executor generation\n",
                   structure, role);
      std::fflush(stderr);
      std::abort();
    }
  }

  /// Explicit unbind, for structures that are reset/reused in place.
  void Release() { owner_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> owner_{0};
  std::atomic<std::uint64_t> gen_{0};
};

/// Asserts a sequence never regresses (strictly increasing when
/// `strict`, non-decreasing otherwise). Single-writer by the same
/// ownership rules the ThreadRole contracts pin down, so plain members.
class Monotone {
 public:
  void AssertAdvance(long long next, const char* structure,
                     const char* what, bool strict = false) {
    if (has_ && (strict ? next <= last_ : next < last_)) {
      FailValue(structure, what, last_, next);
    }
    has_ = true;
    last_ = next;
  }

  bool has_value() const { return has_; }
  long long last() const { return last_; }
  void Reset() { has_ = false; }

 private:
  long long last_ = 0;
  bool has_ = false;
};

}  // namespace contracts
}  // namespace sjoin

#else  // !SJOIN_CONTRACTS_ENABLED

namespace sjoin {
namespace contracts {

inline void AdvanceGeneration() {}

struct ThreadRole {
  void AssertHeld(const char*, const char*) {}
  void Release() {}
};

struct Monotone {
  void AssertAdvance(long long, const char*, const char*, bool = false) {}
  bool has_value() const { return false; }
  long long last() const { return 0; }
  void Reset() {}
};

}  // namespace contracts
}  // namespace sjoin

#endif  // SJOIN_CONTRACTS_ENABLED
