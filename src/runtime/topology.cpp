#include "runtime/topology.hpp"

#include "common/env.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace sjoin {

namespace {

/// Reads a whole small file; returns false when it cannot be opened.
bool ReadFileString(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Reads a file holding one integer (the sysfs topology id format).
bool ReadFileInt(const std::string& path, int* out) {
  std::string text;
  if (!ReadFileString(path, &text)) return false;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  *out = static_cast<int>(v);
  return true;
}

/// Parses a kernel cpulist ("0-3,8,10-11") into CPU ids. Malformed chunks
/// are skipped; returns the ids parsed so far.
std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  const char* p = text.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long first = std::strtol(p, &end, 10);
    if (end == p) break;
    long last = first;
    p = end;
    if (*p == '-') {
      ++p;
      last = std::strtol(p, &end, 10);
      if (end == p) break;
      p = end;
    }
    for (long cpu = first; cpu <= last && cpu >= 0; ++cpu) {
      cpus.push_back(static_cast<int>(cpu));
    }
    if (*p == ',') ++p;
  }
  return cpus;
}

/// Placement order: first SMT sibling of every core first (smt-major), then
/// packages, NUMA nodes and cores keep hardware-adjacent entries adjacent.
/// Ties broken by CPU id for determinism.
bool PlacementLess(const TopoCpu& a, const TopoCpu& b) {
  if (a.smt != b.smt) return a.smt < b.smt;
  if (a.package != b.package) return a.package < b.package;
  if (a.node != b.node) return a.node < b.node;
  if (a.core != b.core) return a.core < b.core;
  return a.cpu < b.cpu;
}

/// Shared sysfs walk. `root` is the sysfs mount (or a test fixture);
/// `filter` restricts to those CPU ids when non-null (the affinity mask).
std::vector<TopoCpu> CpusFromSysfs(const std::string& root,
                                   const std::vector<int>* filter) {
  const std::string cpu_dir = root + "/devices/system/cpu";
  std::string list_text;
  if (!ReadFileString(cpu_dir + "/online", &list_text) &&
      !ReadFileString(cpu_dir + "/possible", &list_text)) {
    return {};
  }
  std::vector<int> online = ParseCpuList(list_text);
  if (filter != nullptr) {
    std::vector<int> kept;
    for (int cpu : online) {
      if (std::find(filter->begin(), filter->end(), cpu) != filter->end()) {
        kept.push_back(cpu);
      }
    }
    online = std::move(kept);
  }
  if (online.empty()) return {};

  // NUMA membership from the node cpulists.
  std::vector<std::pair<int, std::vector<int>>> nodes;
  for (int node = 0; node < 4096; ++node) {
    std::string cpulist;
    if (!ReadFileString(root + "/devices/system/node/node" +
                            std::to_string(node) + "/cpulist",
                        &cpulist)) {
      // Node ids are not guaranteed dense, but a long run of absent ids
      // means we are past the last one.
      if (node > 64 && nodes.empty()) break;
      if (!nodes.empty() && node > nodes.back().first + 64) break;
      continue;
    }
    nodes.emplace_back(node, ParseCpuList(cpulist));
  }

  std::vector<TopoCpu> cpus;
  cpus.reserve(online.size());
  for (int cpu : online) {
    TopoCpu info;
    info.cpu = cpu;
    const std::string topo =
        cpu_dir + "/cpu" + std::to_string(cpu) + "/topology";
    if (!ReadFileInt(topo + "/physical_package_id", &info.package)) {
      info.package = 0;
    }
    if (!ReadFileInt(topo + "/core_id", &info.core)) info.core = cpu;
    info.node = 0;
    for (const auto& [node, members] : nodes) {
      if (std::find(members.begin(), members.end(), cpu) != members.end()) {
        info.node = node;
        break;
      }
    }
    cpus.push_back(info);
  }

  // SMT sibling index: position among the CPUs sharing (package, core),
  // in CPU-id order. Derived instead of parsed so fixture dirs only need
  // package/core ids.
  std::sort(cpus.begin(), cpus.end(), [](const TopoCpu& a, const TopoCpu& b) {
    if (a.package != b.package) return a.package < b.package;
    if (a.core != b.core) return a.core < b.core;
    return a.cpu < b.cpu;
  });
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    cpus[i].smt = (i > 0 && cpus[i].package == cpus[i - 1].package &&
                   cpus[i].core == cpus[i - 1].core)
                      ? cpus[i - 1].smt + 1
                      : 0;
  }
  return cpus;
}

std::vector<TopoCpu> FlatCpus(const std::vector<int>& ids) {
  std::vector<TopoCpu> cpus;
  cpus.reserve(ids.size());
  for (int id : ids) {
    TopoCpu info;
    info.cpu = id;
    info.core = id;
    cpus.push_back(info);
  }
  return cpus;
}

/// This process's affinity mask with a dynamically sized cpu_set_t: the
/// fixed CPU_SETSIZE (1024) silently truncates on larger hosts, so the mask
/// is grown until the kernel accepts it.
std::vector<int> AffinityCpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  // Start from the highest possible CPU when sysfs is readable; grow on
  // EINVAL regardless (the kernel's internal mask can be larger still).
  int max_cpus = CPU_SETSIZE;
  std::string possible;
  if (ReadFileString("/sys/devices/system/cpu/possible", &possible)) {
    const std::vector<int> ids = ParseCpuList(possible);
    if (!ids.empty()) {
      max_cpus = std::max(max_cpus,
                          *std::max_element(ids.begin(), ids.end()) + 1);
    }
  }
  for (int attempt = 0; attempt < 8; ++attempt, max_cpus *= 2) {
    cpu_set_t* set = CPU_ALLOC(static_cast<std::size_t>(max_cpus));
    if (set == nullptr) break;
    const std::size_t size = CPU_ALLOC_SIZE(static_cast<std::size_t>(max_cpus));
    CPU_ZERO_S(size, set);
    if (sched_getaffinity(0, size, set) == 0) {
      for (int cpu = 0; cpu < max_cpus; ++cpu) {
        if (CPU_ISSET_S(static_cast<std::size_t>(cpu), size, set)) {
          cpus.push_back(cpu);
        }
      }
      CPU_FREE(set);
      break;
    }
    CPU_FREE(set);
  }
#endif
  return cpus;
}

}  // namespace

Topology::Topology(std::vector<TopoCpu> cpus) : cpus_(std::move(cpus)) {
  std::sort(cpus_.begin(), cpus_.end(), PlacementLess);
  cpu_ids_.reserve(cpus_.size());
  std::vector<int> nodes, packages;
  for (const TopoCpu& c : cpus_) {
    cpu_ids_.push_back(c.cpu);
    nodes.push_back(c.node);
    packages.push_back(c.package);
    max_smt_ = std::max(max_smt_, c.smt + 1);
  }
  std::sort(nodes.begin(), nodes.end());
  node_count_ = static_cast<int>(
      std::unique(nodes.begin(), nodes.end()) - nodes.begin());
  std::sort(packages.begin(), packages.end());
  package_count_ = static_cast<int>(
      std::unique(packages.begin(), packages.end()) - packages.begin());
}

bool Topology::ParseShapeSpec(const std::string& spec, SyntheticShape* shape) {
  std::vector<int> parts;
  const char* p = spec.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v <= 0 || v > 1 << 20) return false;
    parts.push_back(static_cast<int>(v));
    p = end;
    if (*p == '\0') break;
    if (*p != 'x' && *p != 'X') return false;
    ++p;
    if (*p == '\0') return false;  // trailing separator
  }
  // Bound the total CPU count, not just each dimension: an accepted spec
  // must be materializable, or the caller's warn-and-fall-back contract
  // turns into an OOM at Synthetic().
  long long total = 1;
  for (int part : parts) {
    total *= part;
    if (total > 1 << 20) return false;
  }
  SyntheticShape out;
  switch (parts.size()) {
    case 1:  // flat CPU count
      out.cores_per_node = parts[0];
      break;
    case 2:  // nodes x cores
      out.nodes_per_package = parts[0];
      out.cores_per_node = parts[1];
      break;
    case 3:  // nodes x cores x smt
      out.nodes_per_package = parts[0];
      out.cores_per_node = parts[1];
      out.smt_per_core = parts[2];
      break;
    case 4:  // packages x nodes x cores x smt
      out.packages = parts[0];
      out.nodes_per_package = parts[1];
      out.cores_per_node = parts[2];
      out.smt_per_core = parts[3];
      break;
    default:
      return false;
  }
  *shape = out;
  return true;
}

Topology Topology::Detect() {
  // Env override first (synthetic shapes for CI legs on single-socket
  // runners). Unrecognized values warn and fall through to real detection —
  // a leg that believes it forced a shape must not silently run flat.
  const char* spec = env::Raw("SJOIN_TOPOLOGY");
  if (spec != nullptr && spec[0] != '\0') {
    const std::string v(spec);
    SyntheticShape shape;
    if (v != "detect" && ParseShapeSpec(v, &shape)) return Synthetic(shape);
    if (v != "detect") {
      env::WarnUnrecognized("SJOIN_TOPOLOGY", spec,
                            "want e.g. \"16\", \"2x8\", \"2x8x2\", "
                            "\"2x2x4x2\", or \"detect\"",
                            "using detected topology");
    }
  }

  const std::vector<int> affinity = AffinityCpus();
#if defined(__linux__)
  if (!affinity.empty()) {
    std::vector<TopoCpu> cpus = CpusFromSysfs("/sys", &affinity);
    if (!cpus.empty()) return Topology(std::move(cpus));
    return Topology(FlatCpus(affinity));  // sysfs unreadable: flat model
  }
#endif
  unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) hc = 1;
  std::vector<int> ids;
  for (unsigned cpu = 0; cpu < hc; ++cpu) ids.push_back(static_cast<int>(cpu));
  return Topology(FlatCpus(ids));
}

Topology Topology::FromSysfs(const std::string& sysfs_root) {
  return Topology(CpusFromSysfs(sysfs_root, nullptr));
}

Topology Topology::Synthetic(int n) {
  std::vector<int> ids;
  for (int cpu = 0; cpu < n; ++cpu) ids.push_back(cpu);
  return Topology(FlatCpus(ids));
}

Topology Topology::Synthetic(const SyntheticShape& shape) {
  std::vector<TopoCpu> cpus;
  int cpu = 0;
  for (int p = 0; p < shape.packages; ++p) {
    for (int d = 0; d < shape.nodes_per_package; ++d) {
      for (int c = 0; c < shape.cores_per_node; ++c) {
        for (int t = 0; t < shape.smt_per_core; ++t) {
          TopoCpu info;
          info.cpu = cpu++;
          info.package = p;
          info.node = p * shape.nodes_per_package + d;
          info.core = d * shape.cores_per_node + c;  // unique within package
          info.smt = t;
          cpus.push_back(info);
        }
      }
    }
  }
  return Topology(std::move(cpus));
}

int Topology::NodeOfCpu(int cpu) const {
  for (const TopoCpu& c : cpus_) {
    if (c.cpu == cpu) return c.node;
  }
  return -1;
}

int Topology::PackageOfCpu(int cpu) const {
  for (const TopoCpu& c : cpus_) {
    if (c.cpu == cpu) return c.package;
  }
  return -1;
}

int Topology::CoreOfCpu(int cpu) const {
  for (const TopoCpu& c : cpus_) {
    if (c.cpu == cpu) return c.core;
  }
  return -1;
}

int Topology::SmtOfCpu(int cpu) const {
  for (const TopoCpu& c : cpus_) {
    if (c.cpu == cpu) return c.smt;
  }
  return -1;
}

std::vector<int> Topology::CpusOnNode(int node) const {
  std::vector<int> out;
  for (const TopoCpu& c : cpus_) {
    if (c.node == node) out.push_back(c.cpu);
  }
  return out;
}

Topology Topology::OnNode(int node) const {
  std::vector<TopoCpu> subset;
  for (const TopoCpu& c : cpus_) {
    if (c.node == node) subset.push_back(c);
  }
  return Topology(std::move(subset));
}

int Topology::CpuForNode(int node, int total_nodes) const {
  if (cpus_.empty() || node < 0) return -1;
  (void)total_nodes;
  // No wrap-around: with a mask smaller than the thread count a round-robin
  // would pin helper threads (feeder, collector — registered after the
  // pipeline nodes) onto the SAME cpus as pipeline nodes. Two threads
  // hard-pinned to one cpu cannot be separated by the scheduler, so the
  // helper would serialize the hot path. Threads beyond the set run
  // unpinned (-1) instead.
  if (static_cast<std::size_t>(node) >= cpus_.size()) return -1;
  return cpus_[static_cast<std::size_t>(node)].cpu;
}

}  // namespace sjoin
