#include "runtime/topology.hpp"

#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace sjoin {

Topology Topology::Detect() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(static_cast<unsigned>(cpu), &set)) cpus.push_back(cpu);
    }
  }
#endif
  if (cpus.empty()) {
    unsigned hc = std::thread::hardware_concurrency();
    if (hc == 0) hc = 1;
    for (unsigned cpu = 0; cpu < hc; ++cpu) cpus.push_back(static_cast<int>(cpu));
  }
  return Topology(std::move(cpus));
}

Topology Topology::Synthetic(int n) {
  std::vector<int> cpus;
  for (int cpu = 0; cpu < n; ++cpu) cpus.push_back(cpu);
  return Topology(std::move(cpus));
}

int Topology::CpuForNode(int node, int total_nodes) const {
  if (cpus_.empty() || node < 0) return -1;
  (void)total_nodes;
  // No wrap-around: with a mask smaller than the thread count the old
  // round-robin pinned helper threads (feeder, collector — registered after
  // the pipeline nodes) onto the SAME cpus as pipeline nodes. Two threads
  // hard-pinned to one cpu cannot be separated by the scheduler, so the
  // helper serialized the hot path. Threads beyond the mask now run
  // unpinned (-1): the scheduler can still time-share, but it is free to
  // place them wherever there is slack instead of on a pipeline core.
  if (static_cast<std::size_t>(node) >= cpus_.size()) return -1;
  return cpus_[static_cast<std::size_t>(node)];
}

}  // namespace sjoin
