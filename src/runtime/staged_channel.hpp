// Outbound channel wrapper with a local overflow stage. Pipeline nodes must
// never block while holding an unconsumed input message, or neighbouring
// nodes can deadlock waiting on each other's queues. The discipline used by
// both join pipelines is:
//
//  * tuple *arrivals* are consumed only when the outbound channel has a few
//    free slots (Available) — this provides end-to-end backpressure;
//  * *control* messages (acks, expiries, expedition-ends, flushes) are
//    always consumed, and their outputs go through Push, which stages
//    locally if the channel is momentarily full.
//
// Control traffic per consumed arrival is bounded, so the stage stays tiny;
// the two pipeline end nodes consume unconditionally, which makes every
// wait-for chain terminate (DESIGN.md). A null queue represents a pipeline
// end: pushes are discarded (the tuple "falls off" the pipeline).
#pragma once

#include <cstddef>
#include <deque>

#include "runtime/spsc_queue.hpp"

namespace sjoin {

template <typename M>
class StagedChannel {
 public:
  explicit StagedChannel(SpscQueue<M>* queue = nullptr) : queue_(queue) {}

  bool connected() const { return queue_ != nullptr; }

  /// True when an arrival may be consumed: nothing staged and at least
  /// `slack` free slots for its downstream messages.
  bool Available(std::size_t slack) const {
    if (queue_ == nullptr) return true;
    return stage_.empty() && queue_->FreeApprox() >= slack;
  }

  /// Enqueues, staging locally when the channel is full. Order-preserving.
  void Push(const M& msg) {
    if (queue_ == nullptr) return;  // pipeline end: discard
    if (stage_.empty() && queue_->TryPush(msg)) return;
    stage_.push_back(msg);
  }

  /// Moves staged messages into the channel. Returns true on progress.
  bool Drain() {
    if (queue_ == nullptr || stage_.empty()) return false;
    bool progress = false;
    while (!stage_.empty() && queue_->TryPush(stage_.front())) {
      stage_.pop_front();
      progress = true;
    }
    return progress;
  }

  std::size_t staged() const { return stage_.size(); }

 private:
  SpscQueue<M>* queue_;
  std::deque<M> stage_;
};

}  // namespace sjoin
