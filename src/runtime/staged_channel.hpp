// Outbound channel wrapper with a local overflow stage. Pipeline nodes must
// never block while holding an unconsumed input message, or neighbouring
// nodes can deadlock waiting on each other's queues. The discipline used by
// both join pipelines is:
//
//  * tuple *arrivals* are consumed only when the outbound channel has a few
//    free slots (Available) — this provides end-to-end backpressure;
//  * *control* messages (acks, expiries, expedition-ends, flushes) are
//    always consumed, and their outputs go through Push, which stages
//    locally if the channel is momentarily full.
//
// Control traffic per consumed arrival is bounded, so the stage stays tiny;
// the two pipeline end nodes consume unconditionally, which makes every
// wait-for chain terminate (DESIGN.md). A null queue represents a pipeline
// end: pushes are discarded (the tuple "falls off" the pipeline).
//
// The stage is a contiguous vector consumed from a head cursor (not a
// deque): Drain hands the whole backlog to SpscQueue::TryPushBurst in one
// call, so clearing an n-message stage costs one atomic update instead of n.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "runtime/spsc_queue.hpp"

namespace sjoin {

/// Default Prewarm size for node staging buffers — matches the partial-drain
/// compaction threshold, so a prewarmed stage never reallocates below it.
inline constexpr std::size_t kStagePrewarm = 256;

template <typename M>
class StagedChannel {
 public:
  explicit StagedChannel(SpscQueue<M>* queue = nullptr) : queue_(queue) {}

  bool connected() const { return queue_ != nullptr; }

  /// True when an arrival may be consumed: nothing staged and at least
  /// `slack` free slots for its downstream messages.
  bool Available(std::size_t slack) const {
    if (queue_ == nullptr) return true;
    return staged() == 0 && queue_->FreeApprox() >= slack;
  }

  /// How many arrivals may be consumed back to back before the channel
  /// risks blocking: each arrival forwards at most one message downstream,
  /// so a run of k arrivals needs `slack` free slots for the first plus one
  /// more per additional arrival. 0 while anything is staged (same deferral
  /// rule as Available); unbounded on a disconnected pipeline end.
  std::size_t ArrivalBudget(std::size_t slack) const {
    if (queue_ == nullptr) return std::numeric_limits<std::size_t>::max();
    if (staged() != 0) return 0;
    const std::size_t free = queue_->FreeApprox();
    return free >= slack ? free - slack + 1 : 0;
  }

  /// Enqueues, staging locally when the channel is full. Order-preserving.
  void Push(const M& msg) {
    if (queue_ == nullptr) return;  // pipeline end: discard
    owner_role_.AssertHeld("StagedChannel", "owner");
    if (staged() == 0 && queue_->TryPush(msg)) return;
    stage_.push_back(msg);
  }

  /// Enqueues a burst, staging whatever does not fit. Order-preserving.
  void PushBurst(std::span<const M> msgs) {
    if (queue_ == nullptr || msgs.empty()) return;
    owner_role_.AssertHeld("StagedChannel", "owner");
    std::size_t pushed = 0;
    if (staged() == 0) pushed = queue_->PushBurst(msgs);
    stage_.insert(stage_.end(), msgs.begin() + static_cast<std::ptrdiff_t>(pushed),
                  msgs.end());
  }

  /// Moves staged messages into the channel in one burst. Returns true on
  /// progress.
  bool Drain() {
    if (queue_ == nullptr || staged() == 0) return false;
    owner_role_.AssertHeld("StagedChannel", "owner");
    const std::size_t pushed =
        queue_->TryPushBurst(stage_.data() + head_, stage_.size() - head_);
    head_ += pushed;
    if (head_ == stage_.size()) {
      stage_.clear();
      head_ = 0;
    } else if (head_ >= 256) {
      // Partial drains under sustained backpressure must not let the sent
      // prefix accumulate; the live backlog itself is bounded by the
      // control-per-arrival discipline.
      stage_.erase(stage_.begin(), stage_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return pushed > 0;
  }

  std::size_t staged() const { return stage_.size() - head_; }

  /// Placement hook. The stage is owner-local scratch (only the node that
  /// pushes through this channel ever touches it); reserving it from the
  /// owning thread — ThreadedExecutor calls the owner's OnThreadStart after
  /// pinning — first-touches the backing store on that thread's NUMA node
  /// instead of wherever the pipeline happened to be constructed, and
  /// removes the first few growth reallocations from the hot path.
  void Prewarm(std::size_t slots) {
    if (stage_.capacity() < slots) stage_.reserve(slots);
  }

 private:
  SpscQueue<M>* queue_;
  std::vector<M> stage_;
  std::size_t head_ = 0;  ///< first unsent element of stage_
  // Checked-contracts state (DESIGN.md Section 14): the stage is
  // owner-local scratch, so every mutating call must come from the one
  // thread owning this node within an executor generation.
  [[no_unique_address]] contracts::ThreadRole owner_role_;
};

}  // namespace sjoin
