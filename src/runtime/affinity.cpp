#include "runtime/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace sjoin {

bool PinThisThread(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

int AvailableCpuCount() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
#endif
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace sjoin
