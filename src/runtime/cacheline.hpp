// Cache-line isolation helpers. Handshake-join pipelines communicate only
// through neighbour FIFO channels; keeping producer/consumer indices on
// separate cache lines is what makes those channels cheap (paper Section
// 4.2.1, Baumann et al. [4]).
#pragma once

#include <cstddef>
#include <new>

namespace sjoin {

// A fixed 64 bytes rather than std::hardware_destructive_interference_size:
// the latter varies with -mtune (GCC warns that it is ABI-unstable), and 64
// is the destructive interference size on every mainstream x86-64 and ARM64
// part this library targets.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so it occupies (at least) its own cache line.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace sjoin
