// Execution of pipeline nodes. Every node implements Steppable: one Step()
// processes a bounded number of pending messages and reports whether any
// progress was made. Two executors share that interface:
//
//  * SequentialExecutor — single-threaded, deterministic. Used by the test
//    oracle comparisons and the schedule fuzzer: correctness of the
//    handshake-join protocols must not depend on thread timing, so tests
//    drive nodes in explicit (including adversarial) orders.
//  * ThreadedExecutor — one thread per node, pinned via Topology, with
//    progressive backoff when idle. This is the deployment configuration
//    and what all benchmarks use.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/backoff.hpp"
#include "runtime/topology.hpp"

namespace sjoin {

/// A unit of cooperative execution (pipeline node, collector, ...).
class Steppable {
 public:
  virtual ~Steppable() = default;

  /// Processes a bounded amount of pending work. Returns true iff any
  /// message was consumed or produced (used for quiescence detection).
  virtual bool Step() = 0;
};

/// Deterministic single-threaded executor.
class SequentialExecutor {
 public:
  void Add(Steppable* s) { steppables_.push_back(s); }

  std::size_t size() const { return steppables_.size(); }
  Steppable* at(std::size_t i) const { return steppables_[i]; }

  /// One pass over all steppables in registration order. Returns true iff
  /// any made progress.
  bool StepOnce();

  /// Runs until a full pass makes no progress. Returns the number of passes
  /// executed; aborts (returns max_passes) if the limit is hit, which tests
  /// treat as a livelock failure.
  std::size_t RunUntilQuiescent(std::size_t max_passes = 1 << 22);

 private:
  std::vector<Steppable*> steppables_;
};

/// One pinned thread per steppable.
class ThreadedExecutor {
 public:
  explicit ThreadedExecutor(Topology topology = Topology::Detect())
      : topology_(std::move(topology)) {}
  ~ThreadedExecutor();

  ThreadedExecutor(const ThreadedExecutor&) = delete;
  ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;

  /// Registers a steppable. cpu_hint -1 lets the executor choose
  /// round-robin; pinning is best-effort.
  void Add(Steppable* s, int cpu_hint = -1);

  void Start();

  /// Signals all threads to finish their current Step and joins them.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Entry {
    Steppable* steppable;
    int cpu_hint;
  };

  void ThreadMain(const Entry& entry);

  Topology topology_;
  std::vector<Entry> entries_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace sjoin
