// Execution of pipeline nodes. Every node implements Steppable: one Step()
// processes a bounded number of pending messages and reports whether any
// progress was made. Two executors share that interface:
//
//  * SequentialExecutor — single-threaded, deterministic. Used by the test
//    oracle comparisons and the schedule fuzzer: correctness of the
//    handshake-join protocols must not depend on thread timing, so tests
//    drive nodes in explicit (including adversarial) orders.
//  * ThreadedExecutor — one thread per steppable, placed via a
//    PlacementPlan (pipeline positions on neighbouring cores, helpers on
//    leftover cores — see runtime/placement.hpp), with progressive backoff
//    when idle. This is the deployment configuration and what all
//    benchmarks use.
//
// Thread-start protocol (ThreadedExecutor): every thread pins itself, runs
// its steppable's OnThreadStart() hook, and then waits on a start barrier
// until ALL threads have done so; Start() returns only after the barrier
// clears. Consumer-side placement hooks (SpscQueue::PrefaultByConsumer)
// therefore always run before any producer pushes — no data race, no page
// first-touched by the wrong thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/backoff.hpp"
#include "runtime/placement.hpp"
#include "runtime/topology.hpp"

namespace sjoin {

/// A unit of cooperative execution (pipeline node, collector, ...).
class Steppable {
 public:
  virtual ~Steppable() = default;

  /// Processes a bounded amount of pending work. Returns true iff any
  /// message was consumed or produced (used for quiescence detection).
  virtual bool Step() = 0;

  /// Placement hook, called exactly once on the thread that will run
  /// Step() — after pinning, before any Step() anywhere (ThreadedExecutor's
  /// start barrier). Nodes prefault their consumer-side channel memory
  /// here. Default: nothing.
  virtual void OnThreadStart() {}
};

/// Deterministic single-threaded executor.
class SequentialExecutor {
 public:
  void Add(Steppable* s) { steppables_.push_back(s); }

  std::size_t size() const { return steppables_.size(); }
  Steppable* at(std::size_t i) const { return steppables_[i]; }

  /// One pass over all steppables in registration order. Returns true iff
  /// any made progress.
  bool StepOnce();

  /// Runs until a full pass makes no progress. Returns the number of passes
  /// executed; aborts (returns max_passes) if the limit is hit, which tests
  /// treat as a livelock failure.
  std::size_t RunUntilQuiescent(std::size_t max_passes = 1 << 22);

 private:
  std::vector<Steppable*> steppables_;
};

/// One placed thread per steppable.
class ThreadedExecutor {
 public:
  /// Places registered steppables by building a plan over `topology` with
  /// `policy` at Start() time: plain Add() order gives the pipeline
  /// positions, AddHelper() order the helper ordinals.
  explicit ThreadedExecutor(Topology topology = Topology::Detect(),
                            PlacementPolicy policy = PlacementPolicy::kAuto)
      : topology_(std::move(topology)), policy_(policy) {}

  /// Uses a prebuilt plan (the JoinSession path: the same plan also chose
  /// the channel memory homes, so threads and memory agree).
  explicit ThreadedExecutor(PlacementPlan plan)
      : plan_(std::move(plan)), have_plan_(true) {}

  ~ThreadedExecutor();

  ThreadedExecutor(const ThreadedExecutor&) = delete;
  ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;

  /// Registers a pipeline steppable: it takes the next pipeline position of
  /// the plan. An explicit cpu_hint >= 0 overrides the plan; pinning is
  /// always best-effort.
  void Add(Steppable* s, int cpu_hint = -1);

  /// Registers a helper (feeder, collector, ...): it takes the next helper
  /// ordinal of the plan — leftover cores near the pipeline ends, unpinned
  /// when none remain (never a pipeline core).
  void AddHelper(Steppable* s, int cpu_hint = -1);

  /// Launches all threads and returns once every one of them has pinned
  /// itself and finished OnThreadStart() (the start barrier) — after
  /// Start() returns, callers may push into consumer-prefaulted channels.
  void Start();

  /// Signals all threads to finish their current Step and joins them.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The plan threads were placed with (valid after Start()).
  const PlacementPlan& plan() const { return plan_; }

 private:
  struct Entry {
    Steppable* steppable;
    int cpu_hint;
    bool helper;
    int ordinal;  ///< pipeline position or helper index
  };

  void ThreadMain(const Entry& entry, std::size_t thread_count);

  Topology topology_{Topology::Synthetic(0)};
  PlacementPolicy policy_ = PlacementPolicy::kAuto;
  PlacementPlan plan_;
  bool have_plan_ = false;
  int positions_ = 0;
  int helpers_ = 0;
  std::vector<Entry> entries_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> ready_{0};  ///< start-barrier arrival count
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace sjoin
