// Bounded single-producer/single-consumer FIFO ring. This is the
// communication channel of both handshake-join variants: every pipeline
// node talks exclusively to its immediate neighbours through two of these
// (paper Section 4.2.1), mirroring the asynchronous message channels of
// Baumann et al. [4]. Producer and consumer indices live on separate cache
// lines and each side caches the opposing index to avoid ping-ponging.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

#include "runtime/cacheline.hpp"

namespace sjoin {

/// Wait-free bounded SPSC FIFO. T must be copyable (engines use PODs).
///
/// Exactly one thread may call the producer API (TryPush) and one thread the
/// consumer API (Front/PopFront/TryPop) at a time. Size/free estimates are
/// exact when called from the respective side.
template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer: returns false when full.
  bool TryPush(const T& item) {
    const std::size_t tail = tail_->load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_->load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = item;
    tail_->store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer: free slots (exact from producer side).
  std::size_t FreeApprox() const {
    const std::size_t tail = tail_->load(std::memory_order_relaxed);
    const std::size_t head = head_->load(std::memory_order_acquire);
    return capacity() - (tail - head);
  }

  /// Consumer: pointer to front element or nullptr when empty. The pointer
  /// stays valid until PopFront().
  T* Front() {
    const std::size_t head = head_->load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_->load(std::memory_order_acquire);
      if (head == cached_tail_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  /// Consumer: drops the front element. Requires a prior non-null Front().
  void PopFront() {
    const std::size_t head = head_->load(std::memory_order_relaxed);
    assert(head != tail_->load(std::memory_order_acquire) && "pop on empty");
    head_->store(head + 1, std::memory_order_release);
  }

  /// Consumer: pop into *out; returns false when empty.
  bool TryPop(T* out) {
    T* front = Front();
    if (front == nullptr) return false;
    *out = *front;
    PopFront();
    return true;
  }

  /// Either side: approximate number of queued elements.
  std::size_t SizeApprox() const {
    const std::size_t tail = tail_->load(std::memory_order_acquire);
    const std::size_t head = head_->load(std::memory_order_acquire);
    return tail - head;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  // Producer side.
  CachePadded<std::atomic<std::size_t>> tail_{};
  std::size_t cached_head_ = 0;  // producer's cache of head_

  // Consumer side.
  CachePadded<std::atomic<std::size_t>> head_{};
  std::size_t cached_tail_ = 0;  // consumer's cache of tail_
};

}  // namespace sjoin
