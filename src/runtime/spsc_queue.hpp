// Bounded single-producer/single-consumer FIFO ring. This is the
// communication channel of both handshake-join variants: every pipeline
// node talks exclusively to its immediate neighbours through two of these
// (paper Section 4.2.1), mirroring the asynchronous message channels of
// Baumann et al. [4]. Producer and consumer indices live on separate cache
// lines and each side caches the opposing index to avoid ping-ponging.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "runtime/cacheline.hpp"

namespace sjoin {

/// Wait-free bounded SPSC FIFO. T must be copyable (engines use PODs).
///
/// Exactly one thread may call the producer API (TryPush/PushBurst) and one
/// thread the consumer API (Front/PopFront/TryPop/PeekBurst/ConsumeBurst) at
/// a time. Size/free estimates are exact when called from the respective
/// side.
///
/// The burst APIs amortize one atomic index update (and hence one
/// producer/consumer cache-line transfer) over up to N elements, which is
/// what makes high-rate message passing between pipeline nodes cheap: the
/// per-element cost degenerates to a copy into an already-resident slot.
template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer: returns false when full.
  bool TryPush(const T& item) {
    const std::size_t tail = tail_->load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_->load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = item;
    tail_->store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer: pushes up to `items.size()` elements, preserving order, with
  /// a single release store. Returns the number actually enqueued (0 when
  /// full — never a partial failure: the prefix that fits is enqueued).
  std::size_t PushBurst(std::span<const T> items) {
    return TryPushBurst(items.data(), items.size());
  }

  /// Producer: raw-pointer variant of PushBurst.
  std::size_t TryPushBurst(const T* items, std::size_t n) {
    if (n == 0) return 0;
    const std::size_t tail = tail_->load(std::memory_order_relaxed);
    std::size_t free = capacity() - (tail - cached_head_);
    if (free < n) {
      cached_head_ = head_->load(std::memory_order_acquire);
      free = capacity() - (tail - cached_head_);
      if (free == 0) return 0;
    }
    if (n > free) n = free;
    const std::size_t idx = tail & mask_;
    const std::size_t first = std::min(n, capacity() - idx);
    std::copy_n(items, first, slots_.begin() + static_cast<std::ptrdiff_t>(idx));
    std::copy_n(items + first, n - first, slots_.begin());
    tail_->store(tail + n, std::memory_order_release);
    return n;
  }

  /// Producer: free slots (exact from producer side).
  std::size_t FreeApprox() const {
    const std::size_t tail = tail_->load(std::memory_order_relaxed);
    const std::size_t head = head_->load(std::memory_order_acquire);
    return capacity() - (tail - head);
  }

  /// Consumer: pointer to front element or nullptr when empty. The pointer
  /// stays valid until PopFront().
  T* Front() {
    const std::size_t head = head_->load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_->load(std::memory_order_acquire);
      if (head == cached_tail_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  /// Consumer: drops the front element. Requires a prior non-null Front().
  void PopFront() {
    const std::size_t head = head_->load(std::memory_order_relaxed);
    assert(head != tail_->load(std::memory_order_acquire) && "pop on empty");
    head_->store(head + 1, std::memory_order_release);
  }

  /// Consumer: exposes the longest *contiguous* run of queued elements
  /// starting at the front without consuming them. Returns the run length
  /// and sets *first to its start; the pointers stay valid until
  /// ConsumeBurst/PopFront. A wrapped queue surfaces the remainder on the
  /// next call after the first run is consumed.
  std::size_t PeekBurst(T** first) {
    const std::size_t head = head_->load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_->load(std::memory_order_acquire);
      if (head == cached_tail_) return 0;
    }
    const std::size_t idx = head & mask_;
    const std::size_t queued = cached_tail_ - head;
    *first = &slots_[idx];
    return std::min(queued, capacity() - idx);
  }

  /// Consumer: drops the front `n` elements with a single release store.
  /// `n` must not exceed the run returned by a prior PeekBurst.
  void ConsumeBurst(std::size_t n) {
    if (n == 0) return;
    const std::size_t head = head_->load(std::memory_order_relaxed);
    assert(n <= tail_->load(std::memory_order_acquire) - head &&
           "consume past tail");
    head_->store(head + n, std::memory_order_release);
  }

  /// Consumer: pops up to `max` elements into `out`, preserving order, with
  /// one release store per contiguous run (at most two for a wrapped
  /// queue). Returns the number popped.
  std::size_t PopBurst(T* out, std::size_t max) {
    std::size_t total = 0;
    while (total < max) {
      T* first = nullptr;
      std::size_t n = PeekBurst(&first);
      if (n == 0) break;
      n = std::min(n, max - total);
      std::copy_n(first, n, out + total);
      ConsumeBurst(n);
      total += n;
    }
    return total;
  }

  /// Consumer: pop into *out; returns false when empty.
  bool TryPop(T* out) {
    T* front = Front();
    if (front == nullptr) return false;
    *out = *front;
    PopFront();
    return true;
  }

  /// Either side: approximate number of queued elements.
  std::size_t SizeApprox() const {
    const std::size_t tail = tail_->load(std::memory_order_acquire);
    const std::size_t head = head_->load(std::memory_order_acquire);
    return tail - head;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  // Producer side.
  CachePadded<std::atomic<std::size_t>> tail_{};
  std::size_t cached_head_ = 0;  // producer's cache of head_

  // Consumer side.
  CachePadded<std::atomic<std::size_t>> head_{};
  std::size_t cached_tail_ = 0;  // consumer's cache of tail_
};

/// Consumer-side burst driver shared by the pipeline nodes: feeds up to
/// `budget` front messages of `queue` through `handler` (one T* at a time,
/// processed in place), retiring each contiguous run with a single
/// ConsumeBurst. `handler` returns false to stop *without* consuming that
/// message — it (and everything behind it) stays at the channel front,
/// which is how the arrival backpressure gate defers work. Returns the
/// number of messages consumed.
template <typename T, typename Handler>
std::size_t DrainBurstBudget(SpscQueue<T>* queue, std::size_t budget,
                             Handler&& handler) {
  std::size_t done = 0;
  while (budget > 0) {
    T* msgs = nullptr;
    std::size_t n = queue->PeekBurst(&msgs);
    if (n == 0) break;
    n = std::min(n, budget);
    std::size_t i = 0;
    while (i < n && handler(&msgs[i])) ++i;
    queue->ConsumeBurst(i);
    done += i;
    budget -= i;
    if (i < n) break;  // handler deferred msgs[i]: leave it queued
  }
  return done;
}

/// Batch-aware variant of DrainBurstBudget: maximal runs of messages for
/// which `is_batchable` holds are handed as a whole to
/// `batch_handler(T* run, std::size_t len)`, which processes a prefix in
/// place and returns its length (less than `len` defers the rest — they
/// stay at the channel front, preserving FIFO order). Every other message
/// goes through `handler` with the DrainBurstBudget contract. This is what
/// lets pipeline nodes probe an arrival burst against their window store in
/// one pass instead of once per message.
template <typename T, typename IsBatchable, typename BatchHandler,
          typename Handler>
std::size_t DrainBurstBudgetBatched(SpscQueue<T>* queue, std::size_t budget,
                                    IsBatchable&& is_batchable,
                                    BatchHandler&& batch_handler,
                                    Handler&& handler) {
  std::size_t done = 0;
  while (budget > 0) {
    T* msgs = nullptr;
    std::size_t n = queue->PeekBurst(&msgs);
    if (n == 0) break;
    n = std::min(n, budget);
    std::size_t i = 0;
    bool deferred = false;
    while (i < n) {
      if (is_batchable(msgs[i])) {
        std::size_t run = 1;
        while (i + run < n && is_batchable(msgs[i + run])) ++run;
        const std::size_t did = batch_handler(&msgs[i], run);
        i += did;
        if (did < run) {
          deferred = true;
          break;
        }
      } else if (handler(&msgs[i])) {
        ++i;
      } else {
        deferred = true;
        break;
      }
    }
    queue->ConsumeBurst(i);
    done += i;
    budget -= i;
    if (deferred || i < n) break;
  }
  return done;
}

}  // namespace sjoin
