// Bounded single-producer/single-consumer FIFO ring. This is the
// communication channel of both handshake-join variants: every pipeline
// node talks exclusively to its immediate neighbours through two of these
// (paper Section 4.2.1), mirroring the asynchronous message channels of
// Baumann et al. [4]. Producer and consumer indices live on separate cache
// lines and each side caches the opposing index to avoid ping-ponging.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "common/contracts.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/mempolicy.hpp"

namespace sjoin {

/// Where a channel ring's slot pages ended up relative to the consumer's
/// NUMA node (diagnostics; tests assert the placement hook ran).
enum class ChannelPlacement : uint8_t {
  kUnplaced = 0,     ///< no home node requested / hook not run yet
  kBound = 1,        ///< mbind policy installed before first touch
  kFirstTouched = 2, ///< slot construction deferred to the consumer thread
  kMigrated = 3,     ///< pages migrated to the home node (move_pages)
  kPrefaulted = 4,   ///< portable fallback: consumer warming pass only
};

constexpr const char* ToString(ChannelPlacement p) {
  switch (p) {
    case ChannelPlacement::kUnplaced:
      return "unplaced";
    case ChannelPlacement::kBound:
      return "bound";
    case ChannelPlacement::kFirstTouched:
      return "first-touched";
    case ChannelPlacement::kMigrated:
      return "migrated";
    case ChannelPlacement::kPrefaulted:
      return "prefaulted";
  }
  return "?";
}

/// Wait-free bounded SPSC FIFO. T must be copyable (engines use PODs).
///
/// Exactly one thread may call the producer API (TryPush/PushBurst) and one
/// thread the consumer API (Front/PopFront/TryPop/PeekBurst/ConsumeBurst) at
/// a time. Size/free estimates are exact when called from the respective
/// side.
///
/// The burst APIs amortize one atomic index update (and hence one
/// producer/consumer cache-line transfer) over up to N elements, which is
/// what makes high-rate message passing between pipeline nodes cheap: the
/// per-element cost degenerates to a copy into an already-resident slot.
///
/// NUMA placement: the consumer reads every slot the producer writes, and
/// on a loaded link each slot is read soon after it is written — so the
/// ring's memory home should be the CONSUMER's node (remote write / local
/// read, the cheaper direction on ccNUMA interconnects, and the discipline
/// the paper applies via libnuma). Pass the consumer's node as `home_node`
/// and have the consumer thread call PrefaultByConsumer() before the
/// producer starts (ThreadedExecutor's start barrier guarantees the
/// ordering for pipeline threads). The placement ladder:
///   1. mbind the slot pages before first touch (works no matter which
///      thread constructs the slots);
///   2. defer slot construction to the consumer thread entirely (true
///      first-touch; only for trivially copyable+destructible T);
///   3. move_pages migration from the consumer thread;
///   4. portable fallback: a consumer-side warming pass.
template <typename T>
class SpscQueue {
  // Slot construction may be deferred to the consumer thread only for
  // implicit-lifetime types (aggregates with trivial destruction): for
  // those, ::operator new already started the slots' lifetimes, so even a
  // producer that runs before the deferred construction writes into valid
  // objects — the SPSC protocol guarantees nothing reads a slot that was
  // not first produced.
  static constexpr bool kDeferrableInit =
      std::is_aggregate_v<T> && std::is_trivially_copyable_v<T> &&
      std::is_trivially_destructible_v<T>;

 public:
  /// Capacity is rounded up to a power of two (minimum 2). `home_node` >= 0
  /// requests the slot pages on that NUMA node (see the placement ladder
  /// above); -1 keeps the historical behaviour (pages land wherever the
  /// constructing thread runs).
  explicit SpscQueue(std::size_t capacity, int home_node = -1)
      : home_node_(home_node) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    bytes_ = RoundUpToPage(cap * sizeof(T));
    slots_ = static_cast<T*>(AllocatePages(bytes_));
    if (home_node_ >= 0 && BindMemoryToNode(slots_, bytes_, home_node_)) {
      placement_.store(ChannelPlacement::kBound, std::memory_order_relaxed);
    }
    if (home_node_ >= 0 && !bound() && kDeferrableInit) {
      // Rung 2: leave the pages untouched; PrefaultByConsumer constructs
      // the slots on the consumer thread (true first-touch). Safe only
      // because every planned-placement queue is drained through an
      // executor whose start barrier runs the hook before any producer.
      deferred_init_ = true;
    } else {
      ConstructSlots();
    }
  }

  ~SpscQueue() {
    if constexpr (!kDeferrableInit) {
      for (std::size_t i = 0; i <= mask_; ++i) slots_[i].~T();
    }
    FreePages(slots_, bytes_);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// The NUMA node this ring's consumer lives on (-1 = unplaced).
  int home_node() const { return home_node_; }

  /// How the slot pages were placed (diagnostics; any value other than
  /// kUnplaced means the placement hook completed).
  ChannelPlacement placement() const {
    return placement_.load(std::memory_order_acquire);
  }

  /// Consumer-side placement hook. MUST be called from the consumer thread
  /// BEFORE the producer's first push (pipeline threads get this ordering
  /// from ThreadedExecutor's start barrier; other owners call it right
  /// after construction). Idempotent.
  void PrefaultByConsumer() {
    if (deferred_init_) {
      deferred_init_ = false;
      // Construct only while nothing was produced yet (the executor start
      // barrier guarantees this for pipeline threads); a producer that
      // somehow got ahead already first-touched the slots it wrote.
      if (tail_->load(std::memory_order_acquire) == 0) {
        ConstructSlots();  // true first-touch on the consumer thread
        placement_.store(ChannelPlacement::kFirstTouched,
                         std::memory_order_release);
        return;
      }
    }
    // The planned home is a prediction; the actual consumer is whoever
    // calls this. When they disagree — an unpinned polling thread, a plan
    // over a synthetic topology whose node ids do not match the hardware —
    // re-home the ring to where the reads will really happen. This is what
    // keeps a session's result rings with its (unpinned) polling thread
    // instead of stuck on the plan's collector node.
    if (home_node_ >= 0) {
      const int here = CurrentNumaNode();
      if (here >= 0 && here != home_node_ &&
          MoveMemoryToNode(slots_, bytes_, here)) {
        home_node_ = here;
        placement_.store(ChannelPlacement::kMigrated,
                         std::memory_order_release);
        return;
      }
    }
    if (bound()) return;  // pages already fault onto the home node
    if (home_node_ >= 0 && MoveMemoryToNode(slots_, bytes_, home_node_)) {
      placement_.store(ChannelPlacement::kMigrated, std::memory_order_release);
      return;
    }
    // Portable fallback: walk the pages so they are resident and warm in
    // this thread's caches/TLB before steady state.
    const volatile unsigned char* base =
        reinterpret_cast<const volatile unsigned char*>(slots_);
    unsigned char sink = 0;
    for (std::size_t off = 0; off < bytes_; off += kMemPageSize) {
      sink ^= base[off];
    }
    (void)sink;
    placement_.store(ChannelPlacement::kPrefaulted, std::memory_order_release);
  }

  /// Producer: returns false when full.
  bool TryPush(const T& item) {
    producer_role_.AssertHeld("SpscQueue", "producer");
    const std::size_t tail = tail_->load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_->load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = item;
    tail_->store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer: pushes up to `items.size()` elements, preserving order, with
  /// a single release store. Returns the number actually enqueued (0 when
  /// full — never a partial failure: the prefix that fits is enqueued).
  std::size_t PushBurst(std::span<const T> items) {
    return TryPushBurst(items.data(), items.size());
  }

  /// Producer: raw-pointer variant of PushBurst.
  std::size_t TryPushBurst(const T* items, std::size_t n) {
    if (n == 0) return 0;
    producer_role_.AssertHeld("SpscQueue", "producer");
    const std::size_t tail = tail_->load(std::memory_order_relaxed);
    std::size_t free = capacity() - (tail - cached_head_);
    if (free < n) {
      cached_head_ = head_->load(std::memory_order_acquire);
      free = capacity() - (tail - cached_head_);
      if (free == 0) return 0;
    }
    if (n > free) n = free;
    const std::size_t idx = tail & mask_;
    const std::size_t first = std::min(n, capacity() - idx);
    std::copy_n(items, first, slots_ + idx);
    std::copy_n(items + first, n - first, slots_);
    tail_->store(tail + n, std::memory_order_release);
    return n;
  }

  /// Producer: free slots (exact from producer side).
  std::size_t FreeApprox() const {
    const std::size_t tail = tail_->load(std::memory_order_relaxed);
    const std::size_t head = head_->load(std::memory_order_acquire);
    return capacity() - (tail - head);
  }

  /// Consumer: pointer to front element or nullptr when empty. The pointer
  /// stays valid until PopFront().
  T* Front() {
    consumer_role_.AssertHeld("SpscQueue", "consumer");
    const std::size_t head = head_->load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_->load(std::memory_order_acquire);
      if (head == cached_tail_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  /// Consumer: drops the front element. Requires a prior non-null Front().
  void PopFront() {
    consumer_role_.AssertHeld("SpscQueue", "consumer");
    const std::size_t head = head_->load(std::memory_order_relaxed);
    assert(head != tail_->load(std::memory_order_acquire) && "pop on empty");
    head_->store(head + 1, std::memory_order_release);
  }

  /// Consumer: exposes the longest *contiguous* run of queued elements
  /// starting at the front without consuming them. Returns the run length
  /// and sets *first to its start; the pointers stay valid until
  /// ConsumeBurst/PopFront. A wrapped queue surfaces the remainder on the
  /// next call after the first run is consumed.
  std::size_t PeekBurst(T** first) {
    consumer_role_.AssertHeld("SpscQueue", "consumer");
    const std::size_t head = head_->load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_->load(std::memory_order_acquire);
      if (head == cached_tail_) return 0;
    }
    const std::size_t idx = head & mask_;
    const std::size_t queued = cached_tail_ - head;
    *first = &slots_[idx];
    return std::min(queued, capacity() - idx);
  }

  /// Consumer: drops the front `n` elements with a single release store.
  /// `n` must not exceed the run returned by a prior PeekBurst.
  void ConsumeBurst(std::size_t n) {
    if (n == 0) return;
    consumer_role_.AssertHeld("SpscQueue", "consumer");
    const std::size_t head = head_->load(std::memory_order_relaxed);
    assert(n <= tail_->load(std::memory_order_acquire) - head &&
           "consume past tail");
    head_->store(head + n, std::memory_order_release);
  }

  /// Consumer: pops up to `max` elements into `out`, preserving order, with
  /// one release store per contiguous run (at most two for a wrapped
  /// queue). Returns the number popped.
  std::size_t PopBurst(T* out, std::size_t max) {
    std::size_t total = 0;
    while (total < max) {
      T* first = nullptr;
      std::size_t n = PeekBurst(&first);
      if (n == 0) break;
      n = std::min(n, max - total);
      std::copy_n(first, n, out + total);
      ConsumeBurst(n);
      total += n;
    }
    return total;
  }

  /// Consumer: pop into *out; returns false when empty.
  bool TryPop(T* out) {
    T* front = Front();
    if (front == nullptr) return false;
    *out = *front;
    PopFront();
    return true;
  }

  /// Either side: approximate number of queued elements.
  std::size_t SizeApprox() const {
    const std::size_t tail = tail_->load(std::memory_order_acquire);
    const std::size_t head = head_->load(std::memory_order_acquire);
    return tail - head;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  bool bound() const {
    return placement_.load(std::memory_order_relaxed) ==
           ChannelPlacement::kBound;
  }

  void ConstructSlots() {
    for (std::size_t i = 0; i <= mask_; ++i) new (slots_ + i) T();
  }

  T* slots_ = nullptr;        // page-aligned, bytes_ long (see placement)
  std::size_t bytes_ = 0;
  std::size_t mask_ = 0;
  int home_node_ = -1;
  bool deferred_init_ = false;
  // Written before the start barrier / read by diagnostics on any thread.
  std::atomic<ChannelPlacement> placement_{ChannelPlacement::kUnplaced};

  // Producer side.
  CachePadded<std::atomic<std::size_t>> tail_{};
  std::size_t cached_head_ = 0;  // producer's cache of head_

  // Consumer side.
  CachePadded<std::atomic<std::size_t>> head_{};
  std::size_t cached_tail_ = 0;  // consumer's cache of tail_

  // Checked-contracts state (DESIGN.md Section 14): each end of the ring is
  // pinned to the first thread that uses it within an executor generation.
  // Empty no-op structs — zero bytes, zero code — unless SJOIN_CONTRACTS=ON.
  [[no_unique_address]] contracts::ThreadRole producer_role_;
  [[no_unique_address]] contracts::ThreadRole consumer_role_;
};

/// Consumer-side burst driver shared by the pipeline nodes: feeds up to
/// `budget` front messages of `queue` through `handler` (one T* at a time,
/// processed in place), retiring each contiguous run with a single
/// ConsumeBurst. `handler` returns false to stop *without* consuming that
/// message — it (and everything behind it) stays at the channel front,
/// which is how the arrival backpressure gate defers work. Returns the
/// number of messages consumed.
template <typename T, typename Handler>
std::size_t DrainBurstBudget(SpscQueue<T>* queue, std::size_t budget,
                             Handler&& handler) {
  std::size_t done = 0;
  while (budget > 0) {
    T* msgs = nullptr;
    std::size_t n = queue->PeekBurst(&msgs);
    if (n == 0) break;
    n = std::min(n, budget);
    std::size_t i = 0;
    while (i < n && handler(&msgs[i])) ++i;
    queue->ConsumeBurst(i);
    done += i;
    budget -= i;
    if (i < n) break;  // handler deferred msgs[i]: leave it queued
  }
  return done;
}

/// Batch-aware variant of DrainBurstBudget: maximal runs of messages for
/// which `is_batchable` holds are handed as a whole to
/// `batch_handler(T* run, std::size_t len)`, which processes a prefix in
/// place and returns its length (less than `len` defers the rest — they
/// stay at the channel front, preserving FIFO order). Every other message
/// goes through `handler` with the DrainBurstBudget contract. This is what
/// lets pipeline nodes probe an arrival burst against their window store in
/// one pass instead of once per message.
template <typename T, typename IsBatchable, typename BatchHandler,
          typename Handler>
std::size_t DrainBurstBudgetBatched(SpscQueue<T>* queue, std::size_t budget,
                                    IsBatchable&& is_batchable,
                                    BatchHandler&& batch_handler,
                                    Handler&& handler) {
  std::size_t done = 0;
  while (budget > 0) {
    T* msgs = nullptr;
    std::size_t n = queue->PeekBurst(&msgs);
    if (n == 0) break;
    n = std::min(n, budget);
    std::size_t i = 0;
    bool deferred = false;
    while (i < n) {
      if (is_batchable(msgs[i])) {
        std::size_t run = 1;
        while (i + run < n && is_batchable(msgs[i + run])) ++run;
        const std::size_t did = batch_handler(&msgs[i], run);
        i += did;
        if (did < run) {
          deferred = true;
          break;
        }
      } else if (handler(&msgs[i])) {
        ++i;
      } else {
        deferred = true;
        break;
      }
    }
    queue->ConsumeBurst(i);
    done += i;
    budget -= i;
    if (deferred || i < n) break;
  }
  return done;
}

}  // namespace sjoin
