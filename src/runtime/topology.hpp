// Minimal machine-topology model. The paper lays its pipeline out over the
// HyperTransport ring of an 8-region Magny Cours so that every channel is a
// short point-to-point link. We reproduce the *placement policy* — pipeline
// position i goes to the i-th core in a fixed enumeration, so neighbouring
// nodes land on nearby cores — over whatever CPUs the host exposes.
#pragma once

#include <vector>

namespace sjoin {

/// Snapshot of the CPUs this process may run on.
class Topology {
 public:
  /// Detects the CPUs in the current affinity mask (Linux) or falls back to
  /// hardware_concurrency.
  static Topology Detect();

  /// A topology with exactly `n` fake CPUs (for tests).
  static Topology Synthetic(int n);

  int cpu_count() const { return static_cast<int>(cpus_.size()); }

  /// CPU for pipeline node `node` of a pipeline with `total_nodes` nodes
  /// (helper threads such as feeder and collector are registered after the
  /// nodes and share the same enumeration). The first cpu_count() threads
  /// get one distinct CPU each in enumeration order (neighbour adjacency);
  /// any thread beyond the affinity mask returns -1 (leave unpinned).
  /// Wrapping instead would hard-pin a helper onto a pipeline node's CPU
  /// and serialize the hot path — the scheduler cannot separate two pinned
  /// threads, but it can place an unpinned one wherever there is slack.
  int CpuForNode(int node, int total_nodes) const;

  const std::vector<int>& cpus() const { return cpus_; }

 private:
  explicit Topology(std::vector<int> cpus) : cpus_(std::move(cpus)) {}

  std::vector<int> cpus_;
};

}  // namespace sjoin
