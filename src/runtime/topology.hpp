// Machine-topology model. The paper lays its pipeline over the
// HyperTransport ring of an 8-region Magny Cours so that every channel is a
// short point-to-point link. To reproduce that placement discipline on
// arbitrary hosts the model is three-level: packages (sockets) contain NUMA
// nodes contain cores contain SMT siblings. PlacementPlan (see
// runtime/placement.hpp) lays pipeline positions and helper threads over
// this model; the raw Topology only answers "what does the hardware look
// like".
//
// Detection contract (Topology::Detect):
//  * The CPU set is the intersection of this process's affinity mask
//    (sched_getaffinity with a dynamically sized mask — NOT truncated at
//    CPU_SETSIZE, hosts beyond 1024 logical CPUs are fully enumerated) and
//    the kernel's online CPU list, so offline-CPU holes are respected.
//  * Per-CPU package/core ids come from
//    /sys/devices/system/cpu/cpu*/topology, NUMA membership from
//    /sys/devices/system/node/node*/cpulist. A CPU whose sysfs entries are
//    missing degrades to package 0 / its own core / node 0 (flat model).
//  * The SJOIN_TOPOLOGY environment knob overrides detection with a
//    synthetic shape — "16" (flat), "2x8" (nodes x cores), "2x8x2"
//    (nodes x cores x smt), "2x2x4x2" (packages x nodes x cores x smt).
//    Unrecognized values warn on stderr and fall back to real detection
//    (same discipline as the SJOIN_SIMD_LEVEL knob): a CI leg that believes
//    it forced a multi-node shape must actually run one.
//  * On non-Linux hosts (or when sysfs is unreadable) detection falls back
//    to hardware_concurrency as a flat single-node topology.
//
// Enumeration order: cpus() lists the CPUs in *placement order* — first
// SMT sibling of every core first, cores of the same NUMA node adjacent,
// nodes of the same package adjacent, then the second SMT siblings in the
// same core order, and so on. Neighbouring indices are therefore
// neighbouring hardware, which is exactly what pipeline placement wants.
// On flat topologies this is ascending CPU id — the pre-topology behaviour.
#pragma once

#include <string>
#include <vector>

namespace sjoin {

/// One logical CPU with its position in the three-level hardware model.
struct TopoCpu {
  int cpu = 0;      ///< logical CPU id (what PinThisThread takes)
  int package = 0;  ///< physical package (socket) id
  int node = 0;     ///< NUMA node id (mbind/move_pages target)
  int core = 0;     ///< core id, unique within its package
  int smt = 0;      ///< sibling index on its core (0 = first sibling)
};

/// Snapshot of the CPUs this process may run on, with their hardware
/// coordinates.
class Topology {
 public:
  /// Multi-level synthetic shape for tests and the SJOIN_TOPOLOGY override.
  struct SyntheticShape {
    int packages = 1;
    int nodes_per_package = 1;
    int cores_per_node = 1;
    int smt_per_core = 1;
  };

  /// Detects the host topology (see the detection contract above).
  static Topology Detect();

  /// Parses a sysfs tree rooted at `sysfs_root` (normally "/sys"; tests
  /// point it at a fixture directory). No affinity filtering, no env
  /// override — exactly what the tree describes. CPUs come from
  /// <root>/devices/system/cpu/online (falling back to `possible`).
  static Topology FromSysfs(const std::string& sysfs_root);

  /// A flat topology with exactly `n` fake CPUs on one node (for tests).
  static Topology Synthetic(int n);

  /// A synthetic multi-package/node/SMT topology. CPU ids are assigned
  /// sequentially in (package, node, core, smt) nesting order, so SMT
  /// siblings get adjacent ids — like many real hosts.
  static Topology Synthetic(const SyntheticShape& shape);

  /// Parses a SJOIN_TOPOLOGY-style shape spec ("16", "2x8", "2x8x2",
  /// "2x2x4x2"). Returns false (leaving *shape untouched) when the spec is
  /// not a well-formed positive shape.
  static bool ParseShapeSpec(const std::string& spec, SyntheticShape* shape);

  int cpu_count() const { return static_cast<int>(cpus_.size()); }

  /// Logical CPU ids in placement order (see header comment).
  const std::vector<int>& cpus() const { return cpu_ids_; }

  /// Full per-CPU records, same order as cpus().
  const std::vector<TopoCpu>& entries() const { return cpus_; }

  /// Distinct NUMA nodes / packages covered by this topology.
  int node_count() const { return node_count_; }
  int package_count() const { return package_count_; }
  /// Maximum SMT siblings per core observed (1 = no SMT).
  int max_smt() const { return max_smt_; }

  /// Hardware coordinates of a logical CPU; -1 when the CPU is not part of
  /// this topology.
  int NodeOfCpu(int cpu) const;
  int PackageOfCpu(int cpu) const;
  int CoreOfCpu(int cpu) const;
  int SmtOfCpu(int cpu) const;

  /// CPUs of one NUMA node, in placement order.
  std::vector<int> CpusOnNode(int node) const;

  /// The sub-topology covering only the CPUs of one NUMA node (possibly
  /// empty when the node is not part of this topology). Sharded sessions
  /// build per-shard placement plans from these subsets so every shard's
  /// pipeline, channels and helper threads stay on its own node.
  Topology OnNode(int node) const;

  /// CPU for pipeline node `node` of a pipeline with `total_nodes` nodes
  /// (helper threads such as feeder and collector are registered after the
  /// nodes and share the same enumeration). The first cpu_count() threads
  /// get one distinct CPU each in placement order (neighbour adjacency);
  /// any thread beyond the set returns -1 (leave unpinned). Wrapping
  /// instead would hard-pin a helper onto a pipeline node's CPU and
  /// serialize the hot path. PlacementPlan supersedes this for new code;
  /// it is kept as the flat-order fallback.
  int CpuForNode(int node, int total_nodes) const;

 private:
  explicit Topology(std::vector<TopoCpu> cpus);

  std::vector<TopoCpu> cpus_;   // placement order
  std::vector<int> cpu_ids_;    // cpus_[i].cpu, cached for cpus()
  int node_count_ = 0;
  int package_count_ = 0;
  int max_smt_ = 1;
};

}  // namespace sjoin
