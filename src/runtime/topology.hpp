// Minimal machine-topology model. The paper lays its pipeline out over the
// HyperTransport ring of an 8-region Magny Cours so that every channel is a
// short point-to-point link. We reproduce the *placement policy* — pipeline
// position i goes to the i-th core in a fixed enumeration, so neighbouring
// nodes land on nearby cores — over whatever CPUs the host exposes.
#pragma once

#include <vector>

namespace sjoin {

/// Snapshot of the CPUs this process may run on.
class Topology {
 public:
  /// Detects the CPUs in the current affinity mask (Linux) or falls back to
  /// hardware_concurrency.
  static Topology Detect();

  /// A topology with exactly `n` fake CPUs (for tests).
  static Topology Synthetic(int n);

  int cpu_count() const { return static_cast<int>(cpus_.size()); }

  /// CPU for pipeline node `node` of a pipeline with `total_nodes` nodes.
  /// Nodes are distributed round-robin, preserving neighbour adjacency as
  /// far as the core count allows.
  int CpuForNode(int node, int total_nodes) const;

  const std::vector<int>& cpus() const { return cpus_; }

 private:
  explicit Topology(std::vector<int> cpus) : cpus_(std::move(cpus)) {}

  std::vector<int> cpus_;
};

}  // namespace sjoin
