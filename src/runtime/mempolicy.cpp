#include "runtime/mempolicy.hpp"

#include <new>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdint>
#include <vector>
#endif

namespace sjoin {

void* AllocatePages(std::size_t bytes) {
  return ::operator new(bytes, std::align_val_t{kMemPageSize});
}

void FreePages(void* addr, std::size_t bytes) {
  (void)bytes;
  ::operator delete(addr, std::align_val_t{kMemPageSize});
}

#if defined(__linux__) && defined(SYS_mbind)

namespace {

// From <linux/mempolicy.h> (stable kernel ABI); redeclared locally so the
// build does not depend on kernel uapi headers being installed.
constexpr int kMpolPreferred = 1;
constexpr int kMpolMfMove = 1 << 1;  // MPOL_MF_MOVE

constexpr unsigned kMaxNodes = 1024;
constexpr unsigned kBitsPerWord = 8 * sizeof(unsigned long);

}  // namespace

bool BindMemoryToNode(void* addr, std::size_t len, int node) {
  if (addr == nullptr || len == 0 || node < 0 ||
      static_cast<unsigned>(node) >= kMaxNodes) {
    return false;
  }
  unsigned long mask[kMaxNodes / kBitsPerWord] = {};
  mask[static_cast<unsigned>(node) / kBitsPerWord] |=
      1UL << (static_cast<unsigned>(node) % kBitsPerWord);
  // maxnode counts bits and must exceed the highest set bit.
  const long rc = ::syscall(SYS_mbind, addr, len, kMpolPreferred, mask,
                            static_cast<unsigned long>(kMaxNodes + 1), 0u);
  return rc == 0;
}

bool MoveMemoryToNode(void* addr, std::size_t len, int node) {
#if defined(SYS_move_pages)
  if (addr == nullptr || len == 0 || node < 0) return false;
  const std::size_t pages = RoundUpToPage(len) / kMemPageSize;
  std::vector<void*> page_addrs(pages);
  std::vector<int> nodes(pages, node);
  std::vector<int> status(pages, -1);
  auto* base = static_cast<unsigned char*>(addr);
  for (std::size_t i = 0; i < pages; ++i) {
    page_addrs[i] = base + i * kMemPageSize;
  }
  const long rc =
      ::syscall(SYS_move_pages, 0 /* self */, static_cast<unsigned long>(pages),
                page_addrs.data(), nodes.data(), status.data(), kMpolMfMove);
  if (rc != 0) return false;
  // Per-page status: the target node on success, -errno otherwise. A page
  // that was never touched reports -ENOENT and is left for first-touch.
  for (std::size_t i = 0; i < pages; ++i) {
    if (status[i] == node) return true;
  }
  return false;
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

int CurrentNumaNode() {
#if defined(SYS_getcpu)
  unsigned cpu = 0;
  unsigned node = 0;
  if (::syscall(SYS_getcpu, &cpu, &node, nullptr) != 0) return -1;
  return static_cast<int>(node);
#else
  return -1;
#endif
}

bool MemPolicySupported() { return true; }

#else  // non-Linux or syscall numbers unavailable

bool BindMemoryToNode(void* addr, std::size_t len, int node) {
  (void)addr;
  (void)len;
  (void)node;
  return false;
}

bool MoveMemoryToNode(void* addr, std::size_t len, int node) {
  (void)addr;
  (void)len;
  (void)node;
  return false;
}

int CurrentNumaNode() { return -1; }

bool MemPolicySupported() { return false; }

#endif

}  // namespace sjoin
