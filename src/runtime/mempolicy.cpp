#include "runtime/mempolicy.hpp"

#include <new>

#include "common/env.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdint>
#include <vector>
#endif

namespace sjoin {

void* AllocatePages(std::size_t bytes) {
  return ::operator new(bytes, std::align_val_t{kMemPageSize});
}

void FreePages(void* addr, std::size_t bytes) {
  (void)bytes;
  ::operator delete(addr, std::align_val_t{kMemPageSize});
}

bool HugePagesEnabled() { return env::Flag("SJOIN_HUGE_PAGES", true); }

std::size_t HugePageThresholdBytes() {
  const long v = env::Int("SJOIN_HUGE_PAGE_MIN_BYTES",
                          static_cast<long>(kHugePageSize));
  return v < 0 ? 0 : static_cast<std::size_t>(v);
}

namespace {

constexpr std::size_t RoundUpToHugePage(std::size_t bytes) {
  const std::size_t pages = (bytes + kHugePageSize - 1) / kHugePageSize;
  return (pages == 0 ? 1 : pages) * kHugePageSize;
}

}  // namespace

Slab AllocateSlab(std::size_t bytes) {
  Slab slab;
  if (bytes == 0) return slab;
#if defined(__linux__)
  if (HugePagesEnabled() && bytes >= HugePageThresholdBytes()) {
    const std::size_t huge_bytes = RoundUpToHugePage(bytes);
    // Rung 1: reserved huge pages. Fails cleanly (ENOMEM) when the host
    // has no hugetlb pool configured.
    void* p = ::mmap(nullptr, huge_bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p != MAP_FAILED) {
      slab.addr = p;
      slab.bytes = huge_bytes;
      slab.backing = SlabBacking::kHugeTlb;
      return slab;
    }
    // Rung 2: transparent huge pages. Only counts as this rung when the
    // kernel actually accepted the advice (THP can be compiled out or set
    // to "never"); otherwise the mapping is returned and we fall through.
    p = ::mmap(nullptr, huge_bytes, PROT_READ | PROT_WRITE,
               MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      if (::madvise(p, huge_bytes, MADV_HUGEPAGE) == 0) {
        slab.addr = p;
        slab.bytes = huge_bytes;
        slab.backing = SlabBacking::kTransparentHuge;
        return slab;
      }
      ::munmap(p, huge_bytes);
    }
  }
#endif
  const std::size_t page_bytes = RoundUpToPage(bytes);
  slab.addr = AllocatePages(page_bytes);
  slab.bytes = page_bytes;
  slab.backing = SlabBacking::kPages;
  return slab;
}

void FreeSlab(Slab* slab) {
  if (slab == nullptr) return;
  switch (slab->backing) {
    case SlabBacking::kNone:
      break;
    case SlabBacking::kPages:
      FreePages(slab->addr, slab->bytes);
      break;
    case SlabBacking::kTransparentHuge:
    case SlabBacking::kHugeTlb:
#if defined(__linux__)
      ::munmap(slab->addr, slab->bytes);
#endif
      break;
  }
  *slab = Slab{};
}

#if defined(__linux__) && defined(SYS_mbind)

namespace {

// From <linux/mempolicy.h> (stable kernel ABI); redeclared locally so the
// build does not depend on kernel uapi headers being installed.
constexpr int kMpolPreferred = 1;
constexpr int kMpolMfMove = 1 << 1;  // MPOL_MF_MOVE

constexpr unsigned kMaxNodes = 1024;
constexpr unsigned kBitsPerWord = 8 * sizeof(unsigned long);

}  // namespace

bool BindMemoryToNode(void* addr, std::size_t len, int node) {
  if (addr == nullptr || len == 0 || node < 0 ||
      static_cast<unsigned>(node) >= kMaxNodes) {
    return false;
  }
  unsigned long mask[kMaxNodes / kBitsPerWord] = {};
  mask[static_cast<unsigned>(node) / kBitsPerWord] |=
      1UL << (static_cast<unsigned>(node) % kBitsPerWord);
  // maxnode counts bits and must exceed the highest set bit.
  const long rc = ::syscall(SYS_mbind, addr, len, kMpolPreferred, mask,
                            static_cast<unsigned long>(kMaxNodes + 1), 0u);
  return rc == 0;
}

bool MoveMemoryToNode(void* addr, std::size_t len, int node) {
#if defined(SYS_move_pages)
  if (addr == nullptr || len == 0 || node < 0) return false;
  const std::size_t pages = RoundUpToPage(len) / kMemPageSize;
  std::vector<void*> page_addrs(pages);
  std::vector<int> nodes(pages, node);
  std::vector<int> status(pages, -1);
  auto* base = static_cast<unsigned char*>(addr);
  for (std::size_t i = 0; i < pages; ++i) {
    page_addrs[i] = base + i * kMemPageSize;
  }
  const long rc =
      ::syscall(SYS_move_pages, 0 /* self */, static_cast<unsigned long>(pages),
                page_addrs.data(), nodes.data(), status.data(), kMpolMfMove);
  if (rc != 0) return false;
  // Per-page status: the target node on success, -errno otherwise. A page
  // that was never touched reports -ENOENT and is left for first-touch.
  for (std::size_t i = 0; i < pages; ++i) {
    if (status[i] == node) return true;
  }
  return false;
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

int CurrentNumaNode() {
#if defined(SYS_getcpu)
  unsigned cpu = 0;
  unsigned node = 0;
  if (::syscall(SYS_getcpu, &cpu, &node, nullptr) != 0) return -1;
  return static_cast<int>(node);
#else
  return -1;
#endif
}

bool MemPolicySupported() { return true; }

#else  // non-Linux or syscall numbers unavailable

bool BindMemoryToNode(void* addr, std::size_t len, int node) {
  (void)addr;
  (void)len;
  (void)node;
  return false;
}

bool MoveMemoryToNode(void* addr, std::size_t len, int node) {
  (void)addr;
  (void)len;
  (void)node;
  return false;
}

int CurrentNumaNode() { return -1; }

bool MemPolicySupported() { return false; }

#endif

}  // namespace sjoin
