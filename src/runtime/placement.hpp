// Pluggable placement plans: how pipeline positions, helper threads, and
// channel memory are laid over a Topology. This is the paper's Magny Cours
// layout generalized — neighbouring pipeline nodes land on neighbouring
// cores of the same NUMA node so every SPSC channel is a short
// point-to-point link, helper threads take leftover cores near the pipeline
// ends, and each channel ring's memory home is its *consumer's* node.
//
// Policies:
//   kAuto     — kCompact today; the indirection point for future
//               workload-aware plans. On single-socket hosts this degrades
//               to the historical flat sibling-order pinning.
//   kCompact  — fill cores in placement order (one pipeline position per
//               physical core first, same-node cores adjacent, SMT siblings
//               only after every core has one position).
//   kScatter  — round-robin positions across NUMA nodes (deliberately
//               locality-hostile; the ablation baseline).
//   kNone     — pin nothing, bind nothing (the scheduler decides).
//
// Invariants (asserted by tests/test_runtime.cpp):
//   * no two planned threads share a CPU;
//   * under kCompact, the NUMA node sequence along pipeline positions is
//     contiguous — neighbours are co-located before a remote node is used;
//   * helpers spill to -1 (unpinned) when no leftover CPU remains, never
//     onto a pipeline CPU.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/topology.hpp"

namespace sjoin {

enum class PlacementPolicy : uint8_t {
  kAuto = 0,
  kCompact = 1,
  kScatter = 2,
  kNone = 3,
};

constexpr const char* ToString(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kAuto:
      return "auto";
    case PlacementPolicy::kCompact:
      return "compact";
    case PlacementPolicy::kScatter:
      return "scatter";
    case PlacementPolicy::kNone:
      return "none";
  }
  return "?";
}

/// Parses a policy name; throws std::invalid_argument naming the offending
/// value (the JoinConfig validation discipline).
PlacementPolicy ParsePlacementPolicy(const std::string& name);

/// Well-known helper ordinals. Pipelines and executors agree on these so a
/// plan built by the session places the same threads the executor runs.
inline constexpr int kFeederHelper = 0;     ///< ingestion (left + right ports)
inline constexpr int kCollectorHelper = 1;  ///< result vacuum
inline constexpr int kHelperCount = 2;

/// An immutable mapping of pipeline positions and helpers to CPUs and NUMA
/// memory homes. A default-constructed plan is "unplaced": every lookup
/// returns -1 (no pinning, no memory binding) — the non-threaded and
/// policy-none configuration.
class PlacementPlan {
 public:
  PlacementPlan() = default;

  /// Lays `pipeline_positions` positions plus `helpers` helper threads over
  /// `topology` under `policy`. Positions beyond the CPU supply are
  /// unpinned (-1); helpers prefer leftover CPUs on the node adjacent to
  /// their traffic (feeder -> the first position's node, collector -> the
  /// last position's node) and spill to any leftover CPU, then to -1.
  static PlacementPlan Build(const Topology& topology, PlacementPolicy policy,
                             int pipeline_positions, int helpers = kHelperCount);

  PlacementPolicy policy() const { return policy_; }
  bool empty() const { return position_cpus_.empty() && helper_cpus_.empty(); }

  int positions() const { return static_cast<int>(position_cpus_.size()); }
  int helpers() const { return static_cast<int>(helper_cpus_.size()); }

  /// CPU for pipeline position `pos`; -1 = leave unpinned.
  int CpuForPosition(int pos) const {
    return pos >= 0 && pos < positions()
               ? position_cpus_[static_cast<std::size_t>(pos)]
               : -1;
  }

  /// NUMA memory home for state consumed at position `pos` (its input
  /// channel rings, window stores); -1 = no binding.
  int NodeForPosition(int pos) const {
    return pos >= 0 && pos < positions()
               ? position_nodes_[static_cast<std::size_t>(pos)]
               : -1;
  }

  int CpuForHelper(int helper) const {
    return helper >= 0 && helper < helpers()
               ? helper_cpus_[static_cast<std::size_t>(helper)]
               : -1;
  }

  int NodeForHelper(int helper) const {
    return helper >= 0 && helper < helpers()
               ? helper_nodes_[static_cast<std::size_t>(helper)]
               : -1;
  }

 private:
  PlacementPolicy policy_ = PlacementPolicy::kNone;
  std::vector<int> position_cpus_;
  std::vector<int> position_nodes_;
  std::vector<int> helper_cpus_;
  std::vector<int> helper_nodes_;
};

}  // namespace sjoin
