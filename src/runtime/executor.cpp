#include "runtime/executor.hpp"

#include "common/contracts.hpp"
#include "runtime/affinity.hpp"

namespace sjoin {

bool SequentialExecutor::StepOnce() {
  bool progress = false;
  for (Steppable* s : steppables_) progress |= s->Step();
  return progress;
}

std::size_t SequentialExecutor::RunUntilQuiescent(std::size_t max_passes) {
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    if (!StepOnce()) return pass;
  }
  return max_passes;
}

ThreadedExecutor::~ThreadedExecutor() { Stop(); }

void ThreadedExecutor::Add(Steppable* s, int cpu_hint) {
  entries_.push_back(Entry{s, cpu_hint, /*helper=*/false, positions_++});
}

void ThreadedExecutor::AddHelper(Steppable* s, int cpu_hint) {
  entries_.push_back(Entry{s, cpu_hint, /*helper=*/true, helpers_++});
}

void ThreadedExecutor::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  // Thread ownership changes hands here (checked-contracts builds):
  // whatever thread drove the steppables before — a main thread warming
  // channels, a previous generation's workers — gives way to the threads
  // spawned below, so SPSC/channel roles may rebind once.
  contracts::AdvanceGeneration();
  stop_.store(false, std::memory_order_release);
  ready_.store(0, std::memory_order_release);
  if (!have_plan_) {
    plan_ = PlacementPlan::Build(topology_, policy_, positions_, helpers_);
    have_plan_ = true;
  }
  const std::size_t count = entries_.size();
  threads_.reserve(count);
  for (auto& entry : entries_) {
    Entry resolved = entry;
    if (resolved.cpu_hint < 0) {
      resolved.cpu_hint = resolved.helper
                              ? plan_.CpuForHelper(resolved.ordinal)
                              : plan_.CpuForPosition(resolved.ordinal);
    }
    threads_.emplace_back([this, resolved, count] {
      ThreadMain(resolved, count);
    });
  }
  // Start barrier, caller side: once this clears, every thread has pinned
  // itself and run OnThreadStart (consumer-side channel prefault), so the
  // caller may start producing.
  Backoff backoff;
  while (ready_.load(std::memory_order_acquire) < count) backoff.Pause();
}

void ThreadedExecutor::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  running_.store(false, std::memory_order_release);
  // All workers are joined: the caller (e.g. a bench draining leftover
  // result rings on the main thread) becomes a legitimate new owner.
  contracts::AdvanceGeneration();
}

void ThreadedExecutor::ThreadMain(const Entry& entry,
                                  std::size_t thread_count) {
  PinThisThread(entry.cpu_hint);
  entry.steppable->OnThreadStart();
  ready_.fetch_add(1, std::memory_order_acq_rel);
  // Start barrier, thread side: no Step (production!) before every
  // OnThreadStart (consumer-side prefault) has completed.
  Backoff barrier_wait;
  while (ready_.load(std::memory_order_acquire) < thread_count &&
         !stop_.load(std::memory_order_acquire)) {
    barrier_wait.Pause();
  }
  Backoff backoff;
  while (!stop_.load(std::memory_order_acquire)) {
    if (entry.steppable->Step()) {
      backoff.Reset();
    } else {
      backoff.Pause();
    }
  }
}

}  // namespace sjoin
