#include "runtime/executor.hpp"

#include "runtime/affinity.hpp"

namespace sjoin {

bool SequentialExecutor::StepOnce() {
  bool progress = false;
  for (Steppable* s : steppables_) progress |= s->Step();
  return progress;
}

std::size_t SequentialExecutor::RunUntilQuiescent(std::size_t max_passes) {
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    if (!StepOnce()) return pass;
  }
  return max_passes;
}

ThreadedExecutor::~ThreadedExecutor() { Stop(); }

void ThreadedExecutor::Add(Steppable* s, int cpu_hint) {
  entries_.push_back(Entry{s, cpu_hint});
}

void ThreadedExecutor::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  threads_.reserve(entries_.size());
  int index = 0;
  for (auto& entry : entries_) {
    Entry resolved = entry;
    if (resolved.cpu_hint < 0) {
      resolved.cpu_hint =
          topology_.CpuForNode(index, static_cast<int>(entries_.size()));
    }
    ++index;
    threads_.emplace_back([this, resolved] { ThreadMain(resolved); });
  }
}

void ThreadedExecutor::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  running_.store(false, std::memory_order_release);
}

void ThreadedExecutor::ThreadMain(const Entry& entry) {
  PinThisThread(entry.cpu_hint);
  Backoff backoff;
  while (!stop_.load(std::memory_order_acquire)) {
    if (entry.steppable->Step()) {
      backoff.Reset();
    } else {
      backoff.Pause();
    }
  }
}

}  // namespace sjoin
