// Progressive backoff for busy-wait loops. The evaluation machine in the
// paper had 48 cores, one per pipeline stage; this reproduction typically
// oversubscribes a small machine, so spin loops must yield quickly instead
// of burning the timeslice of the thread they are waiting for.
#pragma once

#include <chrono>
#include <thread>

namespace sjoin {

#if defined(__x86_64__) || defined(__i386__)
inline void CpuRelax() { __builtin_ia32_pause(); }
#else
inline void CpuRelax() {}
#endif

/// Escalating wait: pause -> yield -> short sleep. Reset() after progress.
class Backoff {
 public:
  void Pause() {
    if (attempt_ < kSpinLimit) {
      CpuRelax();
    } else if (attempt_ < kYieldLimit) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ++attempt_;
  }

  void Reset() { attempt_ = 0; }

  int attempts() const { return attempt_; }

 private:
  static constexpr int kSpinLimit = 16;
  static constexpr int kYieldLimit = 64;
  int attempt_ = 0;
};

}  // namespace sjoin
