#include "runtime/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace sjoin {

PlacementPolicy ParsePlacementPolicy(const std::string& name) {
  if (name == "auto") return PlacementPolicy::kAuto;
  if (name == "compact") return PlacementPolicy::kCompact;
  if (name == "scatter") return PlacementPolicy::kScatter;
  if (name == "none") return PlacementPolicy::kNone;
  throw std::invalid_argument(
      "placement policy must be auto|compact|scatter|none, got \"" + name +
      "\"");
}

PlacementPlan PlacementPlan::Build(const Topology& topology,
                                   PlacementPolicy policy,
                                   int pipeline_positions, int helpers) {
  if (pipeline_positions < 0) pipeline_positions = 0;
  if (helpers < 0) helpers = 0;

  PlacementPlan plan;
  plan.policy_ = policy;
  plan.position_cpus_.assign(static_cast<std::size_t>(pipeline_positions), -1);
  plan.position_nodes_.assign(static_cast<std::size_t>(pipeline_positions), -1);
  plan.helper_cpus_.assign(static_cast<std::size_t>(helpers), -1);
  plan.helper_nodes_.assign(static_cast<std::size_t>(helpers), -1);
  if (policy == PlacementPolicy::kNone) return plan;

  const std::vector<TopoCpu>& all = topology.entries();
  if (all.empty()) return plan;
  std::vector<char> used(all.size(), 0);

  auto take = [&](std::size_t i) {
    used[i] = 1;
    return std::pair<int, int>{all[i].cpu, all[i].node};
  };

  if (policy == PlacementPolicy::kScatter) {
    // Deliberately locality-hostile: position i goes to node (i % nodes),
    // so every neighbouring channel crosses a node boundary when it can.
    std::vector<int> nodes;
    for (const TopoCpu& c : all) nodes.push_back(c.node);
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    for (int pos = 0; pos < pipeline_positions; ++pos) {
      const int want = nodes[static_cast<std::size_t>(pos) % nodes.size()];
      // Next unused CPU on the wanted node, else next unused anywhere
      // (placement order keeps both deterministic).
      std::size_t pick = all.size();
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (used[i]) continue;
        if (all[i].node == want) {
          pick = i;
          break;
        }
        if (pick == all.size()) pick = i;
      }
      if (pick == all.size()) break;  // supply exhausted: rest unpinned
      const auto [cpu, node] = take(pick);
      plan.position_cpus_[static_cast<std::size_t>(pos)] = cpu;
      plan.position_nodes_[static_cast<std::size_t>(pos)] = node;
    }
  } else {
    // kAuto / kCompact: placement order IS the plan — one position per
    // entry, neighbours land on neighbouring hardware.
    for (int pos = 0;
         pos < pipeline_positions && static_cast<std::size_t>(pos) < all.size();
         ++pos) {
      const auto [cpu, node] = take(static_cast<std::size_t>(pos));
      plan.position_cpus_[static_cast<std::size_t>(pos)] = cpu;
      plan.position_nodes_[static_cast<std::size_t>(pos)] = node;
    }
  }

  // Helpers: leftover CPUs only, preferring the node adjacent to the
  // helper's traffic. The feeder talks to both pipeline ends but enters at
  // position 0's channel; the collector vacuums every node's result queue —
  // anchor it at the far end so the two helpers spread out.
  for (int h = 0; h < helpers; ++h) {
    int prefer = -1;
    if (h == kFeederHelper && pipeline_positions > 0) {
      prefer = plan.position_nodes_.front();
    } else if (h == kCollectorHelper && pipeline_positions > 0) {
      prefer = plan.position_nodes_.back();
    }
    std::size_t pick = all.size();
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (used[i]) continue;
      if (prefer >= 0 && all[i].node == prefer) {
        pick = i;
        break;
      }
      if (pick == all.size()) pick = i;
    }
    if (pick == all.size()) continue;  // no leftover: helper stays unpinned
    const auto [cpu, node] = take(pick);
    plan.helper_cpus_[static_cast<std::size_t>(h)] = cpu;
    plan.helper_nodes_[static_cast<std::size_t>(h)] = node;
  }
  return plan;
}

}  // namespace sjoin
