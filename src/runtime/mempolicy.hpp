// NUMA memory-policy primitives, libnuma-free. The paper's prototype relies
// on libnuma to place every channel ring next to its consumer core; we issue
// the two underlying syscalls (mbind, move_pages) directly so the build has
// no new dependency and degrades cleanly where they are unavailable:
//
//   BindMemoryToNode  — install an MPOL_PREFERRED policy on a page range
//     BEFORE it is first touched: pages then fault onto the target node no
//     matter which thread constructs the slots. The strongest rung.
//   MoveMemoryToNode  — migrate already-committed pages to the target node
//     (consumer-side repair when the policy rung was unavailable). Operates
//     on this process's own pages only, which needs no capability.
//
// Both return false (and change nothing) on non-Linux hosts, when the
// syscall is compiled out, or when the target node does not exist — callers
// fall back to the portable consumer-side first-touch/warming pass (see
// SpscQueue::PrefaultByConsumer).
//
// Huge-page slab ladder (rung (c) of the raw-speed ladder): AllocateSlab
// serves the large flat allocations — grouped hash-table lane slabs,
// VectorStore SoA key lanes — and walks MAP_HUGETLB -> THP madvise ->
// AllocatePages, reporting which rung actually backed the memory so tests
// and placement introspection can see it. Knobs (parse-and-warn via
// common/env.hpp, re-read per allocation so tests can vary them):
//
//   SJOIN_HUGE_PAGES=0           — disable the huge rungs entirely
//   SJOIN_HUGE_PAGE_MIN_BYTES=N  — huge rungs only at/above N bytes
//                                  (default: one 2 MB huge page)
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace sjoin {

/// Page granularity assumed for channel allocations (allocations are rounded
/// up so policies always cover whole pages).
inline constexpr std::size_t kMemPageSize = 4096;

/// Rounds `bytes` up to a whole number of pages (minimum one page).
inline constexpr std::size_t RoundUpToPage(std::size_t bytes) {
  const std::size_t pages = (bytes + kMemPageSize - 1) / kMemPageSize;
  return (pages == 0 ? 1 : pages) * kMemPageSize;
}

/// Page-aligned raw allocation for channel rings and window slabs; `bytes`
/// must already be page-rounded (RoundUpToPage). Slot lifetimes are started
/// by the caller (placement-new); the returned storage is uninitialized.
/// These two are the only raw ::operator new/delete call sites in src/ —
/// the lint pass (tools/lint/sjoin_lint.py) rejects raw new/delete
/// expressions everywhere outside mempolicy.cpp, so every page-granular
/// allocation flows through here where the NUMA policy calls can see it.
void* AllocatePages(std::size_t bytes);

/// Releases an AllocatePages allocation. `bytes` must match the request.
void FreePages(void* addr, std::size_t bytes);

/// Installs a preferred-node policy on [addr, addr+len). `addr` must be
/// page-aligned and `len` a multiple of the page size. Returns true iff the
/// kernel accepted the policy (pages subsequently faulted in this range land
/// on `node` while it has free memory).
bool BindMemoryToNode(void* addr, std::size_t len, int node);

/// Migrates the committed pages of [addr, addr+len) to `node`. Returns true
/// iff the call executed and at least one page now resides on `node`.
/// Untouched pages are left for first-touch.
bool MoveMemoryToNode(void* addr, std::size_t len, int node);

/// NUMA node the calling thread is currently running on (getcpu), or -1
/// when unknown. Consumers use this to detect that they ended up somewhere
/// other than their planned home (e.g. an unpinned polling thread) and
/// re-home their rings to where the reads actually happen.
int CurrentNumaNode();

/// True when this build can attempt NUMA placement at all (Linux with the
/// mbind syscall compiled in). Purely informational; the Bind/Move calls
/// are always safe to attempt.
bool MemPolicySupported();

// ---------------------------------------------------------------------------
// Huge-page slabs
// ---------------------------------------------------------------------------

/// x86-64 small huge page; the granularity the huge rungs round up to.
inline constexpr std::size_t kHugePageSize = 2u * 1024 * 1024;

/// Which rung of the allocation ladder actually backed a slab.
enum class SlabBacking : uint8_t {
  kNone = 0,             ///< empty slab (no allocation)
  kPages = 1,            ///< AllocatePages (4 KB pages, aligned operator new)
  kTransparentHuge = 2,  ///< anonymous mmap + MADV_HUGEPAGE accepted
  kHugeTlb = 3,          ///< reserved huge pages via MAP_HUGETLB
};

constexpr const char* ToString(SlabBacking backing) {
  switch (backing) {
    case SlabBacking::kNone:
      return "none";
    case SlabBacking::kPages:
      return "pages";
    case SlabBacking::kTransparentHuge:
      return "thp";
    case SlabBacking::kHugeTlb:
      return "hugetlb";
  }
  return "?";
}

/// One flat allocation plus the bookkeeping FreeSlab needs. `bytes` is the
/// rounded size actually mapped (>= the request). Storage is UNINITIALIZED
/// regardless of rung (mmap zero-fills, operator new does not — callers
/// must not rely on zeros).
struct Slab {
  void* addr = nullptr;
  std::size_t bytes = 0;
  SlabBacking backing = SlabBacking::kNone;
};

/// Allocates `bytes` (rounded up to the backing granularity) down the
/// ladder MAP_HUGETLB -> THP madvise -> AllocatePages. The huge rungs are
/// attempted only on Linux, when SJOIN_HUGE_PAGES is not disabled and the
/// request meets SJOIN_HUGE_PAGE_MIN_BYTES; every failure falls through
/// gracefully (no reserved huge pages and no THP support still yield a
/// working slab on the pages rung). bytes == 0 returns an empty slab.
Slab AllocateSlab(std::size_t bytes);

/// Releases an AllocateSlab allocation via whichever rung backed it and
/// resets *slab to empty. Safe on an empty slab.
void FreeSlab(Slab* slab);

/// Current knob values (re-read from the environment on every call).
bool HugePagesEnabled();
std::size_t HugePageThresholdBytes();

/// A flat array of trivially-copyable elements on a slab — the backing for
/// the grouped hash-table lanes and the VectorStore SoA key lanes. Move-only
/// RAII over AllocateSlab/FreeSlab; elements are NOT constructed or zeroed
/// (the element types in use are implicit-lifetime scalars whose live
/// ranges the owning store tracks itself).
template <typename T>
class SlabArray {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "SlabArray elements must be trivial (no lifetimes to run)");

 public:
  SlabArray() = default;
  explicit SlabArray(std::size_t count) { Reset(count); }
  SlabArray(SlabArray&& other) noexcept
      : slab_(other.slab_), count_(other.count_) {
    other.slab_ = Slab{};
    other.count_ = 0;
  }
  SlabArray& operator=(SlabArray&& other) noexcept {
    if (this != &other) {
      FreeSlab(&slab_);
      slab_ = other.slab_;
      count_ = other.count_;
      other.slab_ = Slab{};
      other.count_ = 0;
    }
    return *this;
  }
  SlabArray(const SlabArray&) = delete;
  SlabArray& operator=(const SlabArray&) = delete;
  ~SlabArray() { FreeSlab(&slab_); }

  /// Frees the current storage and allocates room for `count` elements
  /// (uninitialized). count == 0 leaves the array empty.
  void Reset(std::size_t count) {
    FreeSlab(&slab_);
    count_ = count;
    if (count != 0) slab_ = AllocateSlab(count * sizeof(T));
  }

  T* data() { return static_cast<T*>(slab_.addr); }
  const T* data() const { return static_cast<const T*>(slab_.addr); }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  SlabBacking backing() const { return slab_.backing; }

 private:
  Slab slab_;
  std::size_t count_ = 0;
};

}  // namespace sjoin
