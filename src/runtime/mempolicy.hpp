// NUMA memory-policy primitives, libnuma-free. The paper's prototype relies
// on libnuma to place every channel ring next to its consumer core; we issue
// the two underlying syscalls (mbind, move_pages) directly so the build has
// no new dependency and degrades cleanly where they are unavailable:
//
//   BindMemoryToNode  — install an MPOL_PREFERRED policy on a page range
//     BEFORE it is first touched: pages then fault onto the target node no
//     matter which thread constructs the slots. The strongest rung.
//   MoveMemoryToNode  — migrate already-committed pages to the target node
//     (consumer-side repair when the policy rung was unavailable). Operates
//     on this process's own pages only, which needs no capability.
//
// Both return false (and change nothing) on non-Linux hosts, when the
// syscall is compiled out, or when the target node does not exist — callers
// fall back to the portable consumer-side first-touch/warming pass (see
// SpscQueue::PrefaultByConsumer).
#pragma once

#include <cstddef>

namespace sjoin {

/// Page granularity assumed for channel allocations (allocations are rounded
/// up so policies always cover whole pages).
inline constexpr std::size_t kMemPageSize = 4096;

/// Rounds `bytes` up to a whole number of pages (minimum one page).
inline constexpr std::size_t RoundUpToPage(std::size_t bytes) {
  const std::size_t pages = (bytes + kMemPageSize - 1) / kMemPageSize;
  return (pages == 0 ? 1 : pages) * kMemPageSize;
}

/// Page-aligned raw allocation for channel rings and window slabs; `bytes`
/// must already be page-rounded (RoundUpToPage). Slot lifetimes are started
/// by the caller (placement-new); the returned storage is uninitialized.
/// These two are the only raw ::operator new/delete call sites in src/ —
/// the lint pass (tools/lint/sjoin_lint.py) rejects raw new/delete
/// expressions everywhere outside mempolicy.cpp, so every page-granular
/// allocation flows through here where the NUMA policy calls can see it.
void* AllocatePages(std::size_t bytes);

/// Releases an AllocatePages allocation. `bytes` must match the request.
void FreePages(void* addr, std::size_t bytes);

/// Installs a preferred-node policy on [addr, addr+len). `addr` must be
/// page-aligned and `len` a multiple of the page size. Returns true iff the
/// kernel accepted the policy (pages subsequently faulted in this range land
/// on `node` while it has free memory).
bool BindMemoryToNode(void* addr, std::size_t len, int node);

/// Migrates the committed pages of [addr, addr+len) to `node`. Returns true
/// iff the call executed and at least one page now resides on `node`.
/// Untouched pages are left for first-touch.
bool MoveMemoryToNode(void* addr, std::size_t len, int node);

/// NUMA node the calling thread is currently running on (getcpu), or -1
/// when unknown. Consumers use this to detect that they ended up somewhere
/// other than their planned home (e.g. an unpinned polling thread) and
/// re-home their rings to where the reads actually happen.
int CurrentNumaNode();

/// True when this build can attempt NUMA placement at all (Linux with the
/// mbind syscall compiled in). Purely informational; the Bind/Move calls
/// are always safe to attempt.
bool MemPolicySupported();

}  // namespace sjoin
