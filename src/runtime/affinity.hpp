// Thread-to-core pinning. Stands in for the libnuma-based placement of the
// paper's prototype (see DESIGN.md, substitutions): pipeline nodes are pinned
// round-robin over the cores the process may use, which preserves the
// neighbour-to-neighbour layout structurally at any core count.
#pragma once

namespace sjoin {

/// Pins the calling thread to the given logical CPU. Returns false (and
/// leaves affinity unchanged) when pinning is unsupported or fails; callers
/// treat pinning as a best-effort optimization.
bool PinThisThread(int cpu);

/// Number of logical CPUs available to this process (>= 1).
int AvailableCpuCount();

}  // namespace sjoin
