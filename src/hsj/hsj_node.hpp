// One processing node of the *original* handshake join (Teubner & Mueller,
// SIGMOD 2011 — paper [20], summarized in Section 2.3). Each node owns a
// segment of both windows; R tuples enter on the left and relocate rightward
// when the local segment exceeds its share, S tuples mirror that leftward.
// A tuple scans the local opposite segment on every arrival (fresh or
// relocated); since both streams move monotonically in opposite directions,
// every window-compatible pair crosses — and is evaluated — exactly once.
// Latency is the price: a tuple reaches distant segments only as new input
// pushes it along, so pairs wait O(window) before meeting (Section 3).
//
// Protocol details implemented here:
//  * One-sided acknowledgements (Section 4.2.2): a forwarded S tuple stays
//    in the sender's in-flight buffer IWS until the receiver acknowledges
//    it; R arrivals scan IWS in addition to WS, which catches pairs that
//    cross "in flight" between two neighbours.
//  * Expiry messages enter at the stream's old end and hunt the resident
//    copy. If the copy is relocating concurrently, the expiry *chases* it:
//    window segments hold contiguous sequence ranges, so comparing the
//    target seq against the local range tells which direction the tuple
//    went; FIFO channel order guarantees the chase terminates (DESIGN.md,
//    correctness refinement 2). An expiry passing a node also purges any
//    matching in-flight IWS entry so arrivals behind the expiry cannot
//    match the expired tuple.
//  * Flush messages (end-of-stream support for finite traces): force all
//    resident tuples to relocate to the pipeline end so pairs still
//    separated inside the pipeline meet. Flushes cascade in FIFO order.
//  * Backpressure discipline: arrivals are consumed only when the outbound
//    channels have slack; control messages are always consumed and their
//    outputs stage locally (see runtime/staged_channel.hpp).
//  * Epoch-tagged query sets (DESIGN.md Section 10): crossings are
//    evaluated under the snapshot of max(probe epoch, entry epoch). Unlike
//    LLHJ, old-epoch tuples keep arriving as *relocations* long after the
//    kEpochChange punctuation was pushed, so a node must HOLD the
//    punctuation until its own segment has no pre-boundary tuple left
//    (relocations leave oldest-first, so the punctuation then trails every
//    old tuple on the channel — FIFO guarantees the downstream node sees no
//    old probe after it). A node's own epoch marker is emitted when the
//    punctuation has ARRIVED on both flows: at that point the upstream
//    neighbours have promised no further old probes, so no result of an
//    earlier epoch can be produced here again. Retired-epoch drain latency
//    is therefore O(window) for HSJ — the same latency its results have.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/seq_ring.hpp"
#include "common/types.hpp"
#include "llhj/store.hpp"
#include "runtime/cacheline.hpp"
#include "runtime/executor.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/staged_channel.hpp"
#include "stream/message.hpp"
#include "stream/query_set.hpp"
#include "stream/sink.hpp"

namespace sjoin {

/// Free slots required on an outbound channel before an arrival is consumed
/// (forward + acknowledgement + headroom for a chasing expiry).
inline constexpr std::size_t kArrivalSlack = 4;

template <typename R, typename S, typename Pred, typename Sink>
class HsjNode : public Steppable {
 public:
  struct Config {
    NodeId id = 0;
    int nodes = 1;
    /// Relocation policy. 0 (default) = *self-balancing*, the original
    /// algorithm's behaviour: a node forwards its oldest tuple whenever its
    /// segment exceeds the next neighbour's by more than one, so segments
    /// track the live window dynamically and tuple position stays
    /// proportional to age (a tuple reaches the far end just as it
    /// expires, which is what guarantees every pair crosses in time).
    /// A positive value switches to a static per-segment capacity; it must
    /// then be <= live-window/nodes or latent pairs expire unmet.
    /// The end node of each stream never relocates.
    int64_t segment_capacity_r = 0;
    int64_t segment_capacity_s = 0;
    int msgs_per_step = 8;
    /// Hop budget for chasing expiries before declaring an anomaly.
    int max_expiry_hops = 0;  // 0 = derive from pipeline length
  };

  struct Counters {
    uint64_t relocated_r = 0;
    uint64_t relocated_s = 0;
    uint64_t expiry_bounces = 0;
    uint64_t anomalies = 0;  ///< must stay 0; checked by tests
  };

  /// `registry` holds one frozen QuerySet per epoch (epoch 0 = the set the
  /// pipeline started with); snapshots are cached node-locally and the
  /// registry mutex is touched only on epoch switches.
  HsjNode(const Config& config, const QueryEpochRegistry<Pred>* registry,
          Sink* sink,
          SpscQueue<FlowMsg<R>>* left_in, SpscQueue<FlowMsg<R>>* right_out,
          SpscQueue<FlowMsg<S>>* right_in, SpscQueue<FlowMsg<S>>* left_out)
      : config_(config),
        snaps_(registry),
        sink_(sink),
        left_in_(left_in),
        right_in_(right_in),
        right_out_(right_out),
        left_out_(left_out) {
    if (config_.max_expiry_hops == 0) {
      config_.max_expiry_hops = 16 * config_.nodes + 64;
    }
  }

  /// Placement hook (runs on this node's pinned thread, before any
  /// production anywhere — see ThreadedExecutor's start barrier): pull the
  /// input rings onto this node's NUMA node and first-touch the owner-local
  /// staging buffers here instead of on the pipeline-building thread.
  void OnThreadStart() override {
    left_in_->PrefaultByConsumer();
    right_in_->PrefaultByConsumer();
    right_out_.Prewarm(kStagePrewarm);
    left_out_.Prewarm(kStagePrewarm);
    if constexpr (requires(Sink* s) { s->Prewarm(kStagePrewarm); }) {
      sink_->Prewarm(kStagePrewarm);
    }
  }

  bool Step() override {
    bool progress = right_out_.Drain() | left_out_.Drain();
    if constexpr (requires(Sink* s) { s->Drain(); }) {
      progress |= sink_->Drain();
    }
    // Input messages are consumed as bursts: processed in place off
    // PeekBurst spans and retired with one ConsumeBurst index update per
    // run instead of an acquire/release pair per message. Per-channel FIFO
    // order and the arrival backpressure gate are unchanged.
    const std::size_t consumed = ProcessLeftBurst() + ProcessRightBurst();
    if (consumed > 0) {
      progress = true;
      processed_.fetch_add(consumed, std::memory_order_relaxed);
    }
    // Retry relocations deferred by a momentarily full channel, and any
    // rebalancing triggered by neighbour size changes.
    progress |= RelocateROverflow();
    progress |= RelocateSOverflow();
    PublishSizes();
    // Epoch punctuations held back for pre-boundary residents may now be
    // releasable (residents relocated or expired above).
    progress |= ReleaseEpochPuncts();
    progress |= right_out_.Drain() | left_out_.Drain();
    return progress;
  }

  /// Messages consumed so far; safe to read from other threads (used for
  /// distributed quiescence detection).
  uint64_t processed_count() const {
    return processed_.load(std::memory_order_relaxed);
  }

  const Counters& counters() const { return counters_; }
  std::size_t resident_r() const { return wr_.size(); }
  std::size_t resident_s() const { return ws_.size(); }
  std::size_t inflight_s() const { return iws_.size(); }

  /// Introspection for tests/diagnostics (single-threaded access only).
  /// The segments ride on the same ring store as the LLHJ windows (SoA key
  /// lanes included), so HSJ scans share the SIMD probe path.
  const VectorStore<R>& window_r() const { return wr_; }
  const VectorStore<S>& window_s() const { return ws_; }

  /// Published segment sizes for neighbour self-balancing (thread-safe).
  const std::atomic<std::size_t>& published_r_size() const {
    return r_size_pub_->value;
  }
  const std::atomic<std::size_t>& published_s_size() const {
    return s_size_pub_->value;
  }

  /// Wires the neighbour segment sizes the balancing rule compares against
  /// (right neighbour's R segment, left neighbour's S segment). Called by
  /// the pipeline after all nodes are constructed.
  void SetNeighborSizes(const std::atomic<std::size_t>* right_r,
                        const std::atomic<std::size_t>* left_s) {
    neighbor_r_size_ = right_r;
    neighbor_s_size_ = left_s;
  }

 private:
  bool IsLeftmost() const { return config_.id == 0; }
  bool IsRightmost() const { return config_.id == config_.nodes - 1; }

  /// Consumes up to msgs_per_step left-input messages as bursts. Runs of
  /// consecutive arrivals (fresh, relocated or dying) are probed against
  /// the local segment in a single pass; control messages go one by one.
  std::size_t ProcessLeftBurst() {
    return DrainBurstBudgetBatched(
        left_in_, static_cast<std::size_t>(config_.msgs_per_step),
        IsArrival<R>,
        [this](FlowMsg<R>* msgs, std::size_t run) {
          return HandleLeftArrivals(msgs, run);
        },
        [this](FlowMsg<R>* msg) { return HandleLeft(msg); });
  }

  /// Consumes up to msgs_per_step right-input messages as bursts.
  std::size_t ProcessRightBurst() {
    return DrainBurstBudgetBatched(
        right_in_, static_cast<std::size_t>(config_.msgs_per_step),
        IsArrival<S>,
        [this](FlowMsg<S>* msgs, std::size_t run) {
          return HandleRightArrivals(msgs, run);
        },
        [this](FlowMsg<S>* msg) { return HandleRight(msg); });
  }

  // -- Left input: R arrivals/relocations, acks of S, expiries, R flushes. --

  /// Consumes a run of left-input R arrivals as one batch: one scan of the
  /// local S segment (and in-flight buffer) for all k probes, then the
  /// per-tuple rest/forward bookkeeping in flow order. Returns the number
  /// consumed; fewer than `run` when backpressure caps the batch.
  std::size_t HandleLeftArrivals(FlowMsg<R>* msgs, std::size_t run) {
    std::size_t k = run;
    if (!IsRightmost()) {
      k = std::min(run, right_out_.ArrivalBudget(kArrivalSlack));
      if (k == 0) return 0;  // backpressure: retry once downstream drains
    }
    probe_r_.clear();
    for (std::size_t j = 0; j < k; ++j) {
      probe_r_.push_back(Stamped<R>{msgs[j].payload, msgs[j].seq, msgs[j].ts,
                                    msgs[j].arrival_wall_ns, msgs[j].epoch});
    }
    ScanBatchAgainstS(probe_r_.data(), k);
    for (std::size_t j = 0; j < k; ++j) {
      if ((msgs[j].flags & kMsgDying) != 0) {
        // Expired mid-traversal: keep travelling (scanning) but never
        // rest again; discarded at the rightmost node.
        if (!IsRightmost()) {
          FlowMsg<R> fwd = MakeArrival(probe_r_[j]);
          fwd.flags |= kMsgRelocated | kMsgDying;
          right_out_.Push(fwd);
        }
      } else {
        wr_.Insert(probe_r_[j], /*expedited=*/false);
      }
    }
    RelocateROverflow();
    return k;
  }

  /// Processes one left-input *control* message in place (arrivals go
  /// through HandleLeftArrivals). Returns false iff deferred.
  bool HandleLeft(FlowMsg<R>* msg) {
    switch (msg->kind) {
      case MsgKind::kAck: {
        EraseIws(msg->seq);
        return true;
      }
      case MsgKind::kExpiry: {
        HandleExpiry(msg->ref_side, msg->seq, msg->ts, msg->hops);
        return true;
      }
      case MsgKind::kFlush: {
        FlushR();
        return true;
      }
      case MsgKind::kEpochChange: {
        // Arrival on the left flow: upstream promises no more pre-boundary
        // R probes. Cascade is deferred until our own R segment holds no
        // pre-boundary tuple (see ReleaseEpochPuncts).
        OnEpochPunctuation(/*left_flow=*/true, msg->epoch);
        if (!IsRightmost()) pending_epoch_r_.push_back(msg->epoch);
        ReleaseEpochPuncts();
        return true;
      }
      case MsgKind::kLossPunctuation: {
        // Shed-at-ingest loss bound (DESIGN.md Section 12): the shed
        // tuples never entered the pipeline — no segment holds them and no
        // expiry will chase them — so unlike kEpochChange there is nothing
        // to hold the punctuation for. Republish the bound into the result
        // queue (exactly once: no cascade).
        sink_->Emit(MakeLossMark<R, S>(msg->ref_side, msg->seq,
                                       LossPunctCount(*msg), config_.id));
        return true;
      }
      // No default: the switch is deliberately exhaustive so adding a
      // MsgKind fails -Wswitch (enforced by tools/lint/sjoin_lint.py) —
      // kinds a control handler must never see are anomalies, not silently
      // swallowed.
      case MsgKind::kArrival:
      case MsgKind::kExpeditionEnd:
        ++counters_.anomalies;
        return true;
    }
    ++counters_.anomalies;  // out-of-range kind (corrupted message)
    return true;
  }

  // -- Right input: S arrivals/relocations, expiries, S flushes. ------------

  /// Consumes a run of right-input S arrivals as one batch; mirrors
  /// HandleLeftArrivals. Only the forward (relocation) direction is gated;
  /// acknowledgements stage when their channel is momentarily full. Gating
  /// both directions would close a neighbour wait-for cycle (deadlock at
  /// small channel capacities).
  std::size_t HandleRightArrivals(FlowMsg<S>* msgs, std::size_t run) {
    std::size_t k = run;
    if (!IsLeftmost()) {
      k = std::min(run, left_out_.ArrivalBudget(kArrivalSlack));
      if (k == 0) return 0;
    }
    probe_s_.clear();
    for (std::size_t j = 0; j < k; ++j) {
      probe_s_.push_back(Stamped<S>{msgs[j].payload, msgs[j].seq, msgs[j].ts,
                                    msgs[j].arrival_wall_ns, msgs[j].epoch});
    }
    ScanBatchAgainstR(probe_s_.data(), k);
    ack_buf_.clear();
    bool rested = false;
    for (std::size_t j = 0; j < k; ++j) {
      const Stamped<S>& s = probe_s_[j];
      if ((msgs[j].flags & kMsgDying) != 0) {
        if (!IsLeftmost()) {
          FlowMsg<S> fwd = MakeArrival(s);
          fwd.flags |= kMsgRelocated | kMsgDying;
          left_out_.Push(fwd);
          // Ack protocol still applies: the dying tuple stays virtually
          // present until the receiver confirms, so in-flight crossings
          // with R arrivals are detected.
          iws_.PushBack(s);
        }
      } else {
        ws_.Insert(s, /*expedited=*/false);
        rested = true;
      }
      if (!IsRightmost()) {
        FlowMsg<R> ack;
        ack.kind = MsgKind::kAck;
        ack.ref_side = StreamSide::kS;
        ack.seq = s.seq;
        ack_buf_.push_back(ack);
      }
    }
    if (!ack_buf_.empty()) {
      right_out_.PushBurst(std::span<const FlowMsg<R>>(ack_buf_));
    }
    if (rested) RelocateSOverflow();
    return k;
  }

  /// Processes one right-input *control* message in place; see HandleLeft.
  bool HandleRight(FlowMsg<S>* msg) {
    switch (msg->kind) {
      case MsgKind::kExpiry: {
        HandleExpiry(msg->ref_side, msg->seq, msg->ts, msg->hops);
        return true;
      }
      case MsgKind::kFlush: {
        FlushS();
        return true;
      }
      case MsgKind::kEpochChange: {
        OnEpochPunctuation(/*left_flow=*/false, msg->epoch);
        if (!IsLeftmost()) pending_epoch_s_.push_back(msg->epoch);
        ReleaseEpochPuncts();
        return true;
      }
      case MsgKind::kLossPunctuation: {
        // See HandleLeft: republish the bound, exactly once, no cascade.
        sink_->Emit(MakeLossMark<R, S>(msg->ref_side, msg->seq,
                                       LossPunctCount(*msg), config_.id));
        return true;
      }
      // No default (see HandleLeft): exhaustive so -Wswitch flags new kinds.
      case MsgKind::kArrival:
      case MsgKind::kAck:
      case MsgKind::kExpeditionEnd:
        ++counters_.anomalies;
        return true;
    }
    ++counters_.anomalies;  // out-of-range kind (corrupted message)
    return true;
  }

  // -- Matching --------------------------------------------------------------
  //
  // Every crossing pair is evaluated under the query-set snapshot of
  // max(probe epoch, entry epoch) — the epoch of the later-pushed input.
  // Outside an epoch transition this costs one compare per batch plus one
  // per emitted match.

  using Snapshot = QueryEpochSnapshot<Pred>;

  const Snapshot* SnapshotFor(Epoch e) {
    const Snapshot* snap = snaps_.Get(e);
    if (snap == nullptr) ++counters_.anomalies;  // never-installed epoch
    return snap;
  }

  /// Emits one result tagged with the session-wide query id that matched.
  void EmitResult(const Stamped<R>& r, const Stamped<S>& s, QueryId q) {
    ResultMsg<R, S> m = MakeResult(r, s, config_.id);
    m.query = q;
    sink_->Emit(m);
  }

  /// Evaluates the pair's epoch snapshot on the crossing pair, emitting one
  /// tagged result per matching query.
  void EmitMatches(const Stamped<R>& r, const Stamped<S>& s) {
    const Snapshot* snap = SnapshotFor(r.epoch > s.epoch ? r.epoch : s.epoch);
    if (snap == nullptr) return;
    snap->set.Match(r.value, s.value, [&](QueryId lane) {
      EmitResult(r, s, snap->GlobalId(lane));
    });
  }

  /// One pass over the local S segment (entry-major: each resident tuple is
  /// loaded once and tested against the whole probe run and every query —
  /// on the packed-compare kernels when the schema has a SIMD mapping).
  /// HSJ probe runs can straddle an epoch boundary (relocations), so the
  /// run is split into same-epoch groups first.
  void ScanBatchAgainstS(const Stamped<R>* rs, std::size_t k) {
    ForEachEpochGroup(rs, k, [&](const Stamped<R>* g, std::size_t n) {
      ScanGroupAgainstS(g, n);
    });
  }

  void ScanGroupAgainstS(const Stamped<R>* rs, std::size_t k) {
    const Epoch pe = rs[0].epoch;
    const Snapshot* snap = SnapshotFor(pe);
    if (snap != nullptr) {
      ws_.template MatchBatch<true>(
          snap->set, rs, k,
          [&](std::size_t j, QueryId lane, const StoreEntry<S>& entry) {
            if (entry.tuple.epoch > pe) return;  // newer entries swept below
            EmitResult(rs[j], entry.tuple, snap->GlobalId(lane));
          });
    }
    // Entries stored under a later epoch than the probe: evaluate under the
    // entry's snapshot (free outside transitions via max_epoch early-out).
    // Every store visits these newest-first (descending Seq — pinned by
    // test_stores.cpp); emission here is order-independent regardless, as
    // each entry is evaluated against all k probes in isolation and the
    // collector orders results by (probe seq, entry seq), not visit order.
    ws_.ForEachEpochAfter(pe, [&](const StoreEntry<S>& entry) {
      const Snapshot* es = SnapshotFor(entry.tuple.epoch);
      if (es == nullptr) return;
      for (std::size_t j = 0; j < k; ++j) {
        es->set.Match(rs[j].value, entry.tuple.value, [&](QueryId lane) {
          EmitResult(rs[j], entry.tuple, es->GlobalId(lane));
        });
      }
    });
    // Forwarded-but-unacked S tuples are virtually still resident here
    // (a handful of entries — scalar evaluation, per-pair epoch).
    iws_.ForEach([&](const Stamped<S>& s) {
      for (std::size_t j = 0; j < k; ++j) EmitMatches(rs[j], s);
    });
  }

  void ScanBatchAgainstR(const Stamped<S>* ss, std::size_t k) {
    ForEachEpochGroup(ss, k, [&](const Stamped<S>* g, std::size_t n) {
      ScanGroupAgainstR(g, n);
    });
  }

  void ScanGroupAgainstR(const Stamped<S>* ss, std::size_t k) {
    const Epoch pe = ss[0].epoch;
    const Snapshot* snap = SnapshotFor(pe);
    if (snap != nullptr) {
      wr_.template MatchBatch<false>(
          snap->set, ss, k,
          [&](std::size_t j, QueryId lane, const StoreEntry<R>& entry) {
            if (entry.tuple.epoch > pe) return;
            EmitResult(entry.tuple, ss[j], snap->GlobalId(lane));
          });
    }
    // Newest-first per the store epoch-walk contract; order-independent
    // here (see the ws_ sweep above).
    wr_.ForEachEpochAfter(pe, [&](const StoreEntry<R>& entry) {
      const Snapshot* es = SnapshotFor(entry.tuple.epoch);
      if (es == nullptr) return;
      for (std::size_t j = 0; j < k; ++j) {
        es->set.Match(entry.tuple.value, ss[j].value, [&](QueryId lane) {
          EmitResult(entry.tuple, ss[j], es->GlobalId(lane));
        });
      }
    });
  }

  /// Splits a probe run into maximal same-epoch groups.
  template <typename T, typename F>
  static void ForEachEpochGroup(const Stamped<T>* probes, std::size_t k,
                                F&& f) {
    std::size_t i = 0;
    while (i < k) {
      std::size_t run = 1;
      while (i + run < k && probes[i + run].epoch == probes[i].epoch) ++run;
      f(probes + i, run);
      i += run;
    }
  }

  // -- Epoch punctuations ------------------------------------------------------

  /// Punctuation of `epoch` ARRIVED on one flow. Once both flows have seen
  /// it, the upstream neighbours (or the driver) have promised no further
  /// pre-boundary probes in either direction, so this node can never again
  /// emit a result of an earlier epoch: publish the epoch marker.
  void OnEpochPunctuation(bool left_flow, Epoch epoch) {
    Epoch& side = left_flow ? left_epoch_ : right_epoch_;
    if (epoch > side) side = epoch;
    const Epoch both = std::min(left_epoch_, right_epoch_);
    while (marker_epoch_ < both) {
      ++marker_epoch_;
      ResultMsg<R, S> mark;
      mark.query = kEpochMarkQuery;
      mark.epoch = marker_epoch_;
      mark.origin = config_.id;
      sink_->Emit(mark);
    }
    // All future probes here carry an epoch >= `both` (the no-old-probes
    // promise from both upstream sides), and the max(probe, entry) rule
    // then never selects an older snapshot — safe to trim the MRU cache
    // (the registry keeps every epoch).
    snaps_.PruneBelow(both);
  }

  /// Cascades held punctuations onward once the local segment holds no
  /// pre-boundary tuple of that stream. Relocations leave oldest-first and
  /// segment epochs are monotone (front = oldest), so checking the FRONT
  /// entry suffices; once released, the punctuation trails every old tuple
  /// on the channel and the FIFO order extends the no-old-probes promise to
  /// the downstream neighbour. Old tuples leave by relocation, expiry or
  /// flush, so with a live stream the release lag is O(window) — exactly
  /// HSJ's result latency.
  bool ReleaseEpochPuncts() {
    bool progress = false;
    while (!pending_epoch_r_.empty() &&
           (wr_.size() == 0 ||
            wr_.Front().tuple.epoch >= pending_epoch_r_.front())) {
      FlowMsg<R> punct;
      punct.kind = MsgKind::kEpochChange;
      punct.epoch = pending_epoch_r_.front();
      right_out_.Push(punct);
      pending_epoch_r_.erase(pending_epoch_r_.begin());
      progress = true;
    }
    while (!pending_epoch_s_.empty() &&
           (ws_.size() == 0 ||
            ws_.Front().tuple.epoch >= pending_epoch_s_.front())) {
      FlowMsg<S> punct;
      punct.kind = MsgKind::kEpochChange;
      punct.epoch = pending_epoch_s_.front();
      left_out_.Push(punct);
      pending_epoch_s_.erase(pending_epoch_s_.begin());
      progress = true;
    }
    return progress;
  }

  // -- Relocation (the "handshake" movement) ---------------------------------

  bool ShouldRelocateR() const {
    if (config_.segment_capacity_r > 0) {
      return static_cast<int64_t>(wr_.size()) > config_.segment_capacity_r;
    }
    // Self-balancing: keep within one tuple of the right neighbour.
    const std::size_t neighbor =
        neighbor_r_size_ == nullptr
            ? 0
            : neighbor_r_size_->load(std::memory_order_relaxed);
    return wr_.size() > neighbor + 1;
  }

  bool ShouldRelocateS() const {
    if (config_.segment_capacity_s > 0) {
      return static_cast<int64_t>(ws_.size()) > config_.segment_capacity_s;
    }
    const std::size_t neighbor =
        neighbor_s_size_ == nullptr
            ? 0
            : neighbor_s_size_->load(std::memory_order_relaxed);
    return ws_.size() > neighbor + 1;
  }

  bool RelocateROverflow() {
    if (IsRightmost()) return false;
    bool progress = false;
    while (wr_.size() > 0 && ShouldRelocateR() && right_out_.Available(1)) {
      ForwardOldestR();
      progress = true;
    }
    PublishSizes();
    return progress;
  }

  void ForwardOldestR() {
    FlowMsg<R> msg = MakeArrival(wr_.Front().tuple);
    msg.flags |= kMsgRelocated;
    right_out_.Push(msg);
    wr_.PopFront();
    ++counters_.relocated_r;
  }

  bool RelocateSOverflow() {
    if (IsLeftmost()) return false;
    bool progress = false;
    while (ws_.size() > 0 && ShouldRelocateS() && left_out_.Available(1)) {
      ForwardOldestS();
      progress = true;
    }
    PublishSizes();
    return progress;
  }

  void PublishSizes() {
    r_size_pub_->value.store(wr_.size(), std::memory_order_relaxed);
    s_size_pub_->value.store(ws_.size(), std::memory_order_relaxed);
  }

  void ForwardOldestS() {
    const Stamped<S> oldest = ws_.Front().tuple;
    FlowMsg<S> msg = MakeArrival(oldest);
    msg.flags |= kMsgRelocated;
    left_out_.Push(msg);
    // The tuple stays virtually present (IWS) until the receiver acks.
    iws_.PushBack(oldest);
    ws_.PopFront();
    ++counters_.relocated_s;
  }

  // -- Flush ------------------------------------------------------------------

  void FlushR() {
    if (IsRightmost()) return;  // resident tuples here crossed everything
    while (wr_.size() > 0) ForwardOldestR();
    FlowMsg<R> flush;
    flush.kind = MsgKind::kFlush;
    right_out_.Push(flush);
  }

  void FlushS() {
    if (IsLeftmost()) return;
    while (ws_.size() > 0) ForwardOldestS();
    FlowMsg<S> flush;
    flush.kind = MsgKind::kFlush;
    left_out_.Push(flush);
  }

  // -- Expiries with chase ----------------------------------------------------

  void HandleExpiry(StreamSide side, Seq seq, Timestamp ts, uint16_t hops) {
    if (side == StreamSide::kS) {
      Stamped<S> victim;
      if (ws_.TakeSeq(seq, &victim)) {
        // Caught before finishing its traversal: continue as a dying
        // traveller so partners that arrived before this expiry (resting
        // further down the pipeline) are still met exactly once.
        if (!IsLeftmost()) {
          FlowMsg<S> fwd = MakeArrival(victim);
          fwd.flags |= kMsgRelocated | kMsgDying;
          left_out_.Push(fwd);
          iws_.PushBack(victim);
        }
        return;
      }
      // Purge any in-flight copy so arrivals behind this expiry cannot
      // match it; the resident copy will materialize at the neighbour.
      EraseIws(seq);
      ForwardExpiry(side, seq, ts, hops,
                    ChaseDirection(ws_, seq, /*older_is_left=*/true));
      return;
    }
    Stamped<R> victim;
    if (wr_.TakeSeq(seq, &victim)) {
      if (!IsRightmost()) {
        FlowMsg<R> fwd = MakeArrival(victim);
        fwd.flags |= kMsgRelocated | kMsgDying;
        right_out_.Push(fwd);
      }
      return;
    }
    ForwardExpiry(side, seq, ts, hops,
                  ChaseDirection(wr_, seq, /*older_is_left=*/false));
  }

  /// Direction the missing tuple must be in: -1 = left, +1 = right, 0 = give
  /// up (already gone). Segments hold contiguous seq ranges ordered along
  /// the pipeline (S: oldest at node 0; R: oldest at node n-1).
  template <typename T>
  int ChaseDirection(const VectorStore<T>& window, Seq seq,
                     bool older_is_left) const {
    if (window.size() > 0) {
      if (seq < window.FrontSeq()) return older_is_left ? -1 : +1;
      if (seq > window.BackSeq()) return older_is_left ? +1 : -1;
      return 0;  // in range but missing: already erased elsewhere
    }
    // Empty segment: the tuple can only be in flight from the newer side.
    return older_is_left ? +1 : -1;
  }

  void ForwardExpiry(StreamSide side, Seq seq, Timestamp ts, uint16_t hops,
                     int dir) {
    if (dir == 0) return;
    if (hops >= config_.max_expiry_hops) {
      ++counters_.anomalies;
      return;
    }
    if (hops >= 1) ++counters_.expiry_bounces;
    if (dir > 0) {
      if (IsRightmost()) {
        // Nothing to the right; the FIFO argument makes this unreachable.
        ++counters_.anomalies;
        return;
      }
      FlowMsg<R> msg;
      msg.kind = MsgKind::kExpiry;
      msg.ref_side = side;
      msg.seq = seq;
      msg.ts = ts;
      msg.hops = static_cast<uint16_t>(hops + 1);
      right_out_.Push(msg);
    } else {
      if (IsLeftmost()) {
        ++counters_.anomalies;
        return;
      }
      FlowMsg<S> msg;
      msg.kind = MsgKind::kExpiry;
      msg.ref_side = side;
      msg.seq = seq;
      msg.ts = ts;
      msg.hops = static_cast<uint16_t>(hops + 1);
      left_out_.Push(msg);
    }
  }

  bool EraseIws(Seq seq) { return iws_.Erase(seq); }

  Config config_;
  EpochSnapshotCache<Pred> snaps_;
  Sink* sink_;

  SpscQueue<FlowMsg<R>>* left_in_;
  SpscQueue<FlowMsg<S>>* right_in_;
  StagedChannel<FlowMsg<R>> right_out_;  // disconnected on rightmost node
  StagedChannel<FlowMsg<S>> left_out_;   // disconnected on leftmost node

  // Epoch punctuation bookkeeping: highest epoch ARRIVED per flow, highest
  // marker published, and punctuations held until the local segment clears
  // of pre-boundary tuples (see ReleaseEpochPuncts).
  Epoch left_epoch_ = 0;
  Epoch right_epoch_ = 0;
  Epoch marker_epoch_ = 0;
  std::vector<Epoch> pending_epoch_r_;
  std::vector<Epoch> pending_epoch_s_;

  VectorStore<R> wr_;        // front = oldest (ring store with SoA lanes)
  VectorStore<S> ws_;
  SeqRing<Stamped<S>> iws_;  // forwarded to the left, not yet acked

  // Scratch buffers of the batch arrival paths (reused across steps).
  std::vector<Stamped<R>> probe_r_;
  std::vector<Stamped<S>> probe_s_;
  std::vector<FlowMsg<R>> ack_buf_;

  // Published segment sizes (self-balancing). Heap-allocated so the node
  // stays movable while neighbours hold stable pointers.
  std::unique_ptr<CachePadded<std::atomic<std::size_t>>> r_size_pub_ =
      std::make_unique<CachePadded<std::atomic<std::size_t>>>();
  std::unique_ptr<CachePadded<std::atomic<std::size_t>>> s_size_pub_ =
      std::make_unique<CachePadded<std::atomic<std::size_t>>>();
  const std::atomic<std::size_t>* neighbor_r_size_ = nullptr;
  const std::atomic<std::size_t>* neighbor_s_size_ = nullptr;

  Counters counters_;
  std::atomic<uint64_t> processed_{0};
};

}  // namespace sjoin
