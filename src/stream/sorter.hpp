// Downstream sorting operator (paper Sections 6.2, 7.5). Consumes the
// punctuated result stream and produces a physically ordered stream: results
// are buffered until a punctuation <t_p> proves that no later result can
// have a timestamp < t_p, at which point everything strictly older than t_p
// is sorted and released. The maximum buffer occupancy is the metric of
// Figure 21 — with punctuations it stays tiny; without them the operator
// would have to buffer on the order of window-length x output-rate tuples.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "stream/handlers.hpp"
#include "stream/message.hpp"

namespace sjoin {

template <typename R, typename S>
class PunctuationSorter : public OutputHandler<R, S> {
 public:
  explicit PunctuationSorter(OutputHandler<R, S>* next) : next_(next) {}

  void OnResult(const ResultMsg<R, S>& result) override {
    buffer_.push_back(result);
    max_buffered_ = std::max(max_buffered_, buffer_.size());
  }

  void OnPunctuation(Timestamp tp) override {
    // Release everything strictly older than tp; results with ts == tp may
    // still be joined by future arrivals with the same timestamp, so they
    // stay buffered.
    auto split = std::partition(
        buffer_.begin(), buffer_.end(),
        [tp](const ResultMsg<R, S>& m) { return m.ts >= tp; });
    std::sort(split, buffer_.end(), Less);
    for (auto it = split; it != buffer_.end(); ++it) {
      last_emitted_ts_ = it->ts;
      ++emitted_;
      if (next_ != nullptr) next_->OnResult(*it);
    }
    buffer_.erase(split, buffer_.end());
    if (next_ != nullptr) next_->OnPunctuation(tp);
  }

  /// End-of-stream: release the remaining buffer in order.
  void Flush() {
    std::sort(buffer_.begin(), buffer_.end(), Less);
    for (const auto& m : buffer_) {
      last_emitted_ts_ = m.ts;
      ++emitted_;
      if (next_ != nullptr) next_->OnResult(m);
    }
    buffer_.clear();
  }

  std::size_t max_buffered() const { return max_buffered_; }
  std::size_t buffered() const { return buffer_.size(); }
  uint64_t emitted() const { return emitted_; }

 private:
  static bool Less(const ResultMsg<R, S>& a, const ResultMsg<R, S>& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.r_seq != b.r_seq) return a.r_seq < b.r_seq;
    return a.s_seq < b.s_seq;
  }

  OutputHandler<R, S>* next_;
  std::vector<ResultMsg<R, S>> buffer_;
  std::size_t max_buffered_ = 0;
  uint64_t emitted_ = 0;
  Timestamp last_emitted_ts_ = kMinTimestamp;
};

}  // namespace sjoin
