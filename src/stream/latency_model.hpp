// Closed-form latency model of the original handshake join (paper Section
// 3.1). With windows |W_R| and |W_S| in steady flow, a pair meeting at
// pipeline position alpha yields observed latency
//
//     T - max(t_r, t_s)  <  |W_R| * |W_S| / (|W_R| + |W_S|)
//
// and for equal windows the expected maximum is |W|/2. Units are whatever
// the caller uses for window sizes (the model is scale-free).
#pragma once

namespace sjoin {

/// Upper bound on HSJ result latency (Equation 8).
constexpr double HsjMaxLatencyBound(double wr, double ws) {
  return (wr <= 0.0 || ws <= 0.0) ? 0.0 : wr * ws / (wr + ws);
}

/// Pipeline position alpha at which tuples with t_r == t_s meet
/// (Equation 3 solved for t_r - t_s = 0).
constexpr double HsjEqualTimestampMeetingPoint(double wr, double ws) {
  return (wr + ws) <= 0.0 ? 0.5 : ws / (wr + ws);
}

/// Admission-control projection (overload control, DESIGN.md Section 12):
/// the latency a tuple admitted NOW is expected to observe. `waited_ns` is
/// the time it already spent at ingest (wall now minus its due/arrival
/// time), `ewma_result_ns` the EWMA of observed end-to-end result latency,
/// and `backlog_msgs * service_ns_per_msg` the queueing delay implied by
/// the current channel occupancy at the measured per-message service rate.
/// The queueing term and the EWMA overlap (the EWMA already contains the
/// queueing of recent results), so the projection takes their max rather
/// than their sum — it predicts, it must not double-count; shedding on a
/// projected violation acts BEFORE the deadline is blown, not after.
constexpr int64_t ProjectedAdmissionLatencyNs(int64_t waited_ns,
                                              int64_t ewma_result_ns,
                                              int64_t backlog_msgs,
                                              int64_t service_ns_per_msg) {
  const int64_t queueing = backlog_msgs * service_ns_per_msg;
  const int64_t pipeline = ewma_result_ns > queueing ? ewma_result_ns
                                                     : queueing;
  return (waited_ns > 0 ? waited_ns : 0) + pipeline;
}

}  // namespace sjoin
