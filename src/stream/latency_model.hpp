// Closed-form latency model of the original handshake join (paper Section
// 3.1). With windows |W_R| and |W_S| in steady flow, a pair meeting at
// pipeline position alpha yields observed latency
//
//     T - max(t_r, t_s)  <  |W_R| * |W_S| / (|W_R| + |W_S|)
//
// and for equal windows the expected maximum is |W|/2. Units are whatever
// the caller uses for window sizes (the model is scale-free).
#pragma once

namespace sjoin {

/// Upper bound on HSJ result latency (Equation 8).
constexpr double HsjMaxLatencyBound(double wr, double ws) {
  return (wr <= 0.0 || ws <= 0.0) ? 0.0 : wr * ws / (wr + ws);
}

/// Pipeline position alpha at which tuples with t_r == t_s meet
/// (Equation 3 solved for t_r - t_s = 0).
constexpr double HsjEqualTimestampMeetingPoint(double wr, double ws) {
  return (wr + ws) <= 0.0 ? 0.5 : ws / (wr + ws);
}

}  // namespace sjoin
