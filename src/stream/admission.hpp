// Latency-budget overload control (DESIGN.md Section 12). The admission
// controller sits at the ingest boundary (Feeder / JoinSession driver) and
// closes the system's first end-to-end control loop:
//
//   sense    — EWMA of observed result latency (fed by the collector side)
//              plus the driver-visible backlog (outboxes, channel
//              occupancy, HWM-derived in-flight count);
//   decide   — ProjectedAdmissionLatencyNs (stream/latency_model.hpp)
//              against the session's budget, per OverloadPolicy;
//   actuate  — shed the tuple AT INGEST, never mid-window: a shed tuple
//              consumes its sequence number (so the gap is expressible)
//              but never reaches a window store, an expiry tracker, or a
//              channel;
//   account  — every shed run is recorded as an exact (first_seq, count)
//              gap per side, drained by the caller into in-band
//              kLossPunctuation messages.
//
// Threading: ObserveResult is called from the collector/polling thread,
// the decision/accounting methods from the single driver thread. The
// observation state is relaxed atomics (a latency EWMA needs no ordering);
// the gap accounting is driver-thread-only.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "stream/latency_model.hpp"
#include "stream/message.hpp"

namespace sjoin {

/// What to do with a tuple that cannot make its latency budget.
enum class OverloadPolicy : uint8_t {
  kNone = 0,     ///< never shed; bounded queues backpressure (the baseline)
  kDropNewest,   ///< shed the incoming tuple
  kDropOldest,   ///< shed the oldest tuple still waiting at ingest
  kSample,       ///< degrade to sampled matching: admit 1-in-N while over
};

constexpr const char* ToString(OverloadPolicy p) {
  switch (p) {
    case OverloadPolicy::kNone:
      return "none";
    case OverloadPolicy::kDropNewest:
      return "drop_newest";
    case OverloadPolicy::kDropOldest:
      return "drop_oldest";
    case OverloadPolicy::kSample:
      return "sample";
  }
  return "?";
}

/// Parses a policy name; throws std::invalid_argument naming the offending
/// value (PR 3 knob discipline: unknown string knobs must self-diagnose).
inline OverloadPolicy ParseOverloadPolicy(const std::string& name) {
  if (name == "none") return OverloadPolicy::kNone;
  if (name == "drop_newest") return OverloadPolicy::kDropNewest;
  if (name == "drop_oldest") return OverloadPolicy::kDropOldest;
  if (name == "sample") return OverloadPolicy::kSample;
  throw std::invalid_argument(
      "ParseOverloadPolicy: unknown overload policy \"" + name +
      "\" (expected none|drop_newest|drop_oldest|sample)");
}

class AdmissionController {
 public:
  struct Options {
    int64_t budget_ns = 0;  ///< 0 with kNone = admission disabled
    OverloadPolicy policy = OverloadPolicy::kNone;
    /// EWMA smoothing factor for the observed result latency (and the
    /// per-message service estimate derived from result spacing).
    double ewma_alpha = 0.125;
    /// kSample: while over budget, admit one tuple in this many per side.
    uint32_t sample_keep_one_in = 8;
  };

  AdmissionController() = default;
  explicit AdmissionController(const Options& options) : options_(options) {}

  /// Late configuration for owners that construct the controller before the
  /// session config is final (JoinSession). Leaves the force-shed hook and
  /// all accounting state untouched.
  void Configure(const Options& options) { options_ = options; }

  const Options& options() const { return options_; }
  OverloadPolicy policy() const { return options_.policy; }
  bool enabled() const {
    return options_.policy != OverloadPolicy::kNone && options_.budget_ns > 0;
  }

  /// Test hook: when set, it alone decides shedding (by side and sequence
  /// number) — the fuzz tests use it to shed arbitrary ingest prefixes,
  /// suffixes and subsets deterministically. Accounting is unchanged.
  void SetForceShed(std::function<bool(StreamSide, Seq)> fn) {
    force_shed_ = std::move(fn);
  }
  bool has_force_shed() const { return static_cast<bool>(force_shed_); }

  // -- Sensing (collector/polling thread) ------------------------------------

  /// Feeds one observed end-to-end result latency into the EWMA.
  void ObserveResult(int64_t latency_ns, int64_t now_ns) {
    if (latency_ns < 0) latency_ns = 0;
    const double a = options_.ewma_alpha;
    const double prev = ewma_latency_ns_.load(std::memory_order_relaxed);
    const double next = prev <= 0.0
                            ? static_cast<double>(latency_ns)
                            : prev + a * (static_cast<double>(latency_ns) -
                                          prev);
    ewma_latency_ns_.store(next, std::memory_order_relaxed);
    last_observe_ns_.store(now_ns, std::memory_order_relaxed);
  }

  /// Feeds the number of messages actually handed to the channels since
  /// the last call; the per-message service estimate is the elapsed wall
  /// time divided by that count. Delivery spacing — NOT result spacing —
  /// is the right service sensor: a selective join can emit arbitrarily
  /// few results, which would wildly overestimate per-message cost, while
  /// under backpressure the producer can only hand off what the pipeline
  /// actually drains. Below saturation the estimate degrades to the
  /// offered inter-arrival time, which conservatively bounds the true
  /// service time from above with a small backlog — harmless.
  void ObserveDelivered(std::size_t count, int64_t now_ns) {
    if (count == 0) return;
    const int64_t last = last_delivery_ns_.load(std::memory_order_relaxed);
    last_delivery_ns_.store(now_ns, std::memory_order_relaxed);
    if (last == 0 || now_ns <= last) return;
    const double per_msg = static_cast<double>(now_ns - last) /
                           static_cast<double>(count);
    const double a = options_.ewma_alpha;
    const double prev = ewma_service_ns_.load(std::memory_order_relaxed);
    ewma_service_ns_.store(prev <= 0.0 ? per_msg : prev + a * (per_msg - prev),
                           std::memory_order_relaxed);
  }

  int64_t ewma_latency_ns() const {
    return static_cast<int64_t>(
        ewma_latency_ns_.load(std::memory_order_relaxed));
  }
  int64_t ewma_service_ns() const {
    return static_cast<int64_t>(
        ewma_service_ns_.load(std::memory_order_relaxed));
  }

  // -- Decision (driver thread) ----------------------------------------------

  /// True when a tuple that has already waited (now - arrival) and would
  /// join `backlog_msgs` queued messages projects past the budget.
  bool OverBudget(int64_t now_ns, int64_t arrival_wall_ns,
                  std::size_t backlog_msgs) const {
    if (!enabled()) return false;
    const int64_t projected = ProjectedAdmissionLatencyNs(
        now_ns - arrival_wall_ns, ewma_latency_ns(),
        static_cast<int64_t>(backlog_msgs), ewma_service_ns());
    return projected > options_.budget_ns;
  }

  /// Full policy decision for ONE incoming tuple: returns true when the
  /// caller must shed (for kDropOldest the caller picks the victim — the
  /// oldest tuple of `side` still at ingest — and the incoming tuple is
  /// admitted in its place when a victim exists). The force-shed test hook,
  /// when set, overrides the budget logic entirely.
  bool ShouldShed(StreamSide side, Seq seq, int64_t now_ns,
                  int64_t arrival_wall_ns, std::size_t backlog_msgs) {
    if (force_shed_) return force_shed_(side, seq);
    if (!OverBudget(now_ns, arrival_wall_ns, backlog_msgs)) return false;
    if (options_.policy == OverloadPolicy::kSample) {
      // Sampled degradation: keep a deterministic 1-in-N while over budget.
      uint64_t& n = side == StreamSide::kR ? sample_r_ : sample_s_;
      return (n++ % options_.sample_keep_one_in) != 0;
    }
    return true;
  }

  // -- Accounting (driver thread) --------------------------------------------

  /// Records one shed tuple. Adjacent sheds of a side coalesce into one
  /// open gap; the caller drains closed gaps via TakeGap (it must do so at
  /// the latest when the next admitted tuple of that side is delivered, so
  /// the punctuation stays at its in-band position).
  void RecordShed(StreamSide side, Seq seq) {
    auto& gaps = side == StreamSide::kR ? gaps_r_ : gaps_s_;
    if (!gaps.empty() && gaps.back().first_seq + gaps.back().count == seq) {
      ++gaps.back().count;
    } else {
      gaps.push_back(LossBound{side, seq, 1});
    }
    auto& total = side == StreamSide::kR ? shed_r_ : shed_s_;
    total.fetch_add(1, std::memory_order_relaxed);
  }

  /// Pops the oldest recorded gap of `side` into `*out`. Returns false when
  /// no gap is pending.
  bool TakeGap(StreamSide side, LossBound* out) {
    auto& gaps = side == StreamSide::kR ? gaps_r_ : gaps_s_;
    if (gaps.empty()) return false;
    *out = gaps.front();
    gaps.erase(gaps.begin());
    return true;
  }

  bool HasGap(StreamSide side) const {
    return side == StreamSide::kR ? !gaps_r_.empty() : !gaps_s_.empty();
  }

  /// Ground truth for the accounting invariant: total tuples shed per side
  /// (sum of all punctuated (first_seq, count) gaps must equal this).
  uint64_t shed_count(StreamSide side) const {
    return side == StreamSide::kR
               ? shed_r_.load(std::memory_order_relaxed)
               : shed_s_.load(std::memory_order_relaxed);
  }
  uint64_t shed_total() const {
    return shed_count(StreamSide::kR) + shed_count(StreamSide::kS);
  }

 private:
  Options options_;
  std::function<bool(StreamSide, Seq)> force_shed_;

  // Sensing state (relaxed atomics; written by the observer thread).
  std::atomic<double> ewma_latency_ns_{0.0};
  std::atomic<double> ewma_service_ns_{0.0};
  std::atomic<int64_t> last_observe_ns_{0};
  std::atomic<int64_t> last_delivery_ns_{0};

  // Accounting state (driver thread only, except the shed totals which are
  // read cross-thread for introspection).
  std::vector<LossBound> gaps_r_;
  std::vector<LossBound> gaps_s_;
  uint64_t sample_r_ = 0;
  uint64_t sample_s_ = 0;
  std::atomic<uint64_t> shed_r_{0};
  std::atomic<uint64_t> shed_s_{0};
};

}  // namespace sjoin
