// The set of predicates a join pipeline evaluates at every window crossing.
// Multi-query sharing (ROADMAP): one pipeline owns the windows, transport
// and driver; N registered queries of the same predicate *type* (band/equi
// predicates with different parameters) are evaluated against each crossing
// pair in a single store traversal, and every match is tagged with the
// QueryId that produced it. The set is frozen before the pipeline starts —
// nodes take an immutable copy, so the hot path reads a plain contiguous
// vector with no synchronization.
//
// Indexed stores (HashStore/OrderedStore) narrow the visited entries by the
// *store's* key extractor, which is shared by all queries; registering
// queries whose match set is not contained in the index probe range is a
// configuration error of the caller (exactly as for a single query).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace sjoin {

template <typename Pred>
class QuerySet {
 public:
  QuerySet() = default;
  /// Single-query set (the classic StreamJoiner configuration).
  explicit QuerySet(Pred pred) { preds_.push_back(pred); }
  explicit QuerySet(std::vector<Pred> preds) : preds_(std::move(preds)) {}

  /// Registers one predicate; returns its dense id (registration order).
  QueryId Add(const Pred& pred) {
    preds_.push_back(pred);
    return static_cast<QueryId>(preds_.size() - 1);
  }

  std::size_t size() const { return preds_.size(); }
  bool empty() const { return preds_.empty(); }

  const Pred& pred(QueryId q) const { return preds_[q]; }

  /// Evaluates every registered predicate on (r, s); calls f(QueryId) for
  /// each query that matches. This is the per-crossing hot path: one pair
  /// load, N predicate evaluations.
  template <typename RV, typename SV, typename F>
  void Match(const RV& r, const SV& s, F&& f) const {
    for (QueryId q = 0; q < preds_.size(); ++q) {
      if (preds_[q](r, s)) f(q);
    }
  }

  /// True iff any registered predicate matches (baseline engines run with
  /// this as their single "union" predicate and fan matches out per query
  /// at the sink).
  template <typename RV, typename SV>
  bool AnyMatch(const RV& r, const SV& s) const {
    for (const Pred& p : preds_) {
      if (p(r, s)) return true;
    }
    return false;
  }

 private:
  std::vector<Pred> preds_;
};

}  // namespace sjoin
