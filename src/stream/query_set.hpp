// The set of predicates a join pipeline evaluates at every window crossing.
// Multi-query sharing (ROADMAP): one pipeline owns the windows, transport
// and driver; N registered queries of the same predicate *type* (band/equi
// predicates with different parameters) are evaluated against each crossing
// pair in a single store traversal, and every match is tagged with the
// QueryId that produced it.
//
// Since the live-lifecycle change (DESIGN.md Section 10) a pipeline no
// longer evaluates ONE frozen QuerySet forever: each *epoch* of a session
// freezes its own QuerySet (a QueryEpochSnapshot, which also maps the
// set's dense lane indices back to session-wide QueryIds), and nodes switch
// snapshots when the epoch-change punctuation passes them. Within an epoch
// the hot path is unchanged — a plain contiguous predicate vector read with
// no synchronization; the QueryEpochRegistry (mutexed, cold path only) is
// touched once per epoch switch.
//
// Indexed stores (HashStore/OrderedStore) narrow the visited entries by the
// *store's* key extractor, which is shared by all queries; registering
// queries whose match set is not contained in the index probe range is a
// configuration error of the caller (exactly as for a single query).
#pragma once

#include <cstddef>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/contracts.hpp"
#include "common/simd.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace sjoin {

template <typename Pred>
class QuerySet {
 public:
  QuerySet() = default;
  /// Single-query set (the classic StreamJoiner configuration).
  explicit QuerySet(Pred pred) { preds_.push_back(pred); }
  explicit QuerySet(std::vector<Pred> preds) : preds_(std::move(preds)) {}

  /// Registers one predicate; returns its dense id (registration order).
  QueryId Add(const Pred& pred) {
    preds_.push_back(pred);
    return static_cast<QueryId>(preds_.size() - 1);
  }

  std::size_t size() const { return preds_.size(); }
  bool empty() const { return preds_.empty(); }

  const Pred& pred(QueryId q) const { return preds_[q]; }

  /// Evaluates every registered predicate on (r, s); calls f(QueryId) for
  /// each query that matches. This is the per-crossing hot path: one pair
  /// load, N predicate evaluations.
  template <typename RV, typename SV, typename F>
  void Match(const RV& r, const SV& s, F&& f) const {
    for (QueryId q = 0; q < preds_.size(); ++q) {
      if (preds_[q](r, s)) f(q);
    }
  }

  /// True iff any registered predicate matches (baseline engines run with
  /// this as their single "union" predicate and fan matches out per query
  /// at the sink).
  template <typename RV, typename SV>
  bool AnyMatch(const RV& r, const SV& s) const {
    for (const Pred& p : preds_) {
      if (p(r, s)) return true;
    }
    return false;
  }

  /// Match with an explicit probe direction: the stores evaluate a probe
  /// tuple against a stored entry without knowing which of the two is the
  /// predicate's R argument. kProbeIsLeft=true means pred(probe, entry)
  /// (an R tuple probing the S window); false means pred(entry, probe).
  template <bool kProbeIsLeft, typename ProbeV, typename EntryV, typename F>
  void MatchOriented(const ProbeV& probe, const EntryV& entry, F&& f) const {
    if constexpr (kProbeIsLeft) {
      Match(probe, entry, static_cast<F&&>(f));
    } else {
      Match(entry, probe, static_cast<F&&>(f));
    }
  }

  /// True iff query set evaluation against EntryT entries probed by ProbeT
  /// tuples can run on the SIMD kernels (both the predicate decomposition
  /// and the entry lane mapping must be declared; see common/simd.hpp).
  template <typename ProbeT, typename EntryT>
  static constexpr bool SimdCapable() {
    return SimdProbeTraits<Pred, ProbeT, EntryT>::kEnabled &&
           SimdEntryLanes<EntryT>::kEnabled;
  }

  /// Vector compare of ONE registered query against one loaded block of
  /// entry key lanes (the block form of Match — the SIMD probe hot path).
  /// Fills scratch->mask with bit i <=> pred matches (probe, entry lane i),
  /// for lanes [0, n), n <= kSimdBlock; bits >= n are zero (masked-tail
  /// contract). The caller keeps the block loaded and sweeps it with every
  /// (probe, query) combination before moving on — one entry load, k x N
  /// vector compares. Kernel selection follows ActiveSimdLevel(); every
  /// level computes exactly the scalar predicate's arithmetic, so driving
  /// result emission off these bitmasks is bit-identical to Match.
  template <typename EntryT, typename ProbeT>
  void Matches(QueryId q, const ProbeT& probe, const SimdLaneBlock& lanes,
               std::size_t n, SimdMatchScratch* scratch) const {
    using Traits = SimdProbeTraits<Pred, ProbeT, EntryT>;
    static_assert(Traits::kEnabled, "no SIMD mapping for this direction");
    if constexpr (Traits::kShape != SimdPredShape::kEqui) {
      static_assert(!Traits::kUseF32 || SimdEntryLanes<EntryT>::kHasF32,
                    "predicate declares a float sweep (kUseF32) but the "
                    "entry type has no float lane (kHasF32)");
    }
    const SimdKernels& kernels = ActiveKernels();
    const Pred& pred = preds_[q];
    if constexpr (Traits::kShape == SimdPredShape::kEqui) {
      kernels.eq_i32(lanes.k0, n, Traits::Key(pred, probe), scratch->mask);
    } else if constexpr (Traits::kShape == SimdPredShape::kBandEntry) {
      kernels.band_entry_i32(lanes.k0, n, Traits::Band0(pred),
                             Traits::P0(probe), scratch->mask);
      if constexpr (Traits::kUseF32) {
        kernels.band_entry_f32(lanes.k1, n, Traits::Band1(pred),
                               Traits::P1(probe), scratch->tmp);
        AndMask(scratch->mask, scratch->tmp, n);
      }
    } else {
      kernels.range_i32(lanes.k0, n, Traits::Lo0(pred, probe),
                        Traits::Hi0(pred, probe), scratch->mask);
      if constexpr (Traits::kUseF32) {
        kernels.range_f32(lanes.k1, n, Traits::Lo1(pred, probe),
                          Traits::Hi1(pred, probe), scratch->tmp);
        AndMask(scratch->mask, scratch->tmp, n);
      }
    }
  }

 private:
  std::vector<Pred> preds_;
};

/// One frozen epoch of a session's query set: the dense predicate set the
/// nodes sweep (QuerySet indices are *lane* indices local to this epoch)
/// plus the mapping from lane index back to the session-wide QueryId that
/// results must be tagged with. Immutable after construction; shared
/// read-only between the driver and every pipeline node.
template <typename Pred>
struct QueryEpochSnapshot {
  Epoch epoch = 0;
  QuerySet<Pred> set;
  std::vector<QueryId> global_ids;  ///< lane index -> session QueryId

  QueryId GlobalId(std::size_t lane) const { return global_ids[lane]; }
};

/// All epochs a pipeline has ever been told about, keyed by epoch number.
/// The driver installs new epochs (AddQuery/RemoveQuery on a live session)
/// *before* pushing the matching kEpochChange punctuation into the flows,
/// so a node that sees the punctuation — or an arrival stamped with a newer
/// epoch — always finds the snapshot here. Lookups are mutex-protected but
/// happen only on epoch switches (cold path); nodes cache the shared_ptr.
template <typename Pred>
class QueryEpochRegistry {
 public:
  using Snapshot = QueryEpochSnapshot<Pred>;

  QueryEpochRegistry() = default;

  /// Seeds epoch 0. `global_ids` empty means the identity mapping.
  explicit QueryEpochRegistry(QuerySet<Pred> initial,
                              std::vector<QueryId> global_ids = {}) {
    Install(std::move(initial), std::move(global_ids));
  }

  /// Registers the next epoch (numbered sequentially from 0) and returns
  /// its number. Must be called before any tuple or punctuation carrying
  /// that epoch enters a flow.
  Epoch Install(QuerySet<Pred> set, std::vector<QueryId> global_ids = {}) {
    auto snap = std::make_shared<Snapshot>();
    if (global_ids.empty()) {
      global_ids.resize(set.size());
      std::iota(global_ids.begin(), global_ids.end(), QueryId{0});
    }
    if (global_ids.size() != set.size()) {
      throw std::invalid_argument(
          "QueryEpochRegistry: global_ids size does not match set size");
    }
    snap->set = std::move(set);
    snap->global_ids = std::move(global_ids);
    MutexLock lock(&mu_);
    snap->epoch = static_cast<Epoch>(epochs_.size());
    // Contract (DESIGN.md Section 14): installed epochs advance strictly —
    // a regressing or repeated epoch number would let stale snapshots
    // shadow live ones at the nodes' MRU caches.
    install_order_.AssertAdvance(static_cast<long long>(snap->epoch),
                                 "QueryEpochRegistry", "installed epoch",
                                 /*strict=*/true);
    epochs_.push_back(snap);
    return snap->epoch;
  }

  /// Snapshot of epoch `e`, or null when `e` was never installed (a
  /// protocol bug — callers treat it as an anomaly).
  std::shared_ptr<const Snapshot> Get(Epoch e) const {
    MutexLock lock(&mu_);
    if (e >= epochs_.size()) return nullptr;
    return epochs_[e];
  }

  std::shared_ptr<const Snapshot> Latest() const {
    MutexLock lock(&mu_);
    return epochs_.empty() ? nullptr : epochs_.back();
  }

  std::size_t epoch_count() const {
    MutexLock lock(&mu_);
    return epochs_.size();
  }

 private:
  mutable AnnotatedMutex mu_;
  std::vector<std::shared_ptr<const Snapshot>> epochs_ SJOIN_GUARDED_BY(mu_);
  contracts::Monotone install_order_ SJOIN_GUARDED_BY(mu_);
};

/// A node-local MRU cache over a QueryEpochRegistry. During steady state
/// every lookup hits the front entry (one epoch compare); during an epoch
/// transition at most a handful of epochs are live at once. Entries older
/// than the node's fully-switched epoch are pruned on punctuation.
template <typename Pred>
class EpochSnapshotCache {
 public:
  using Snapshot = QueryEpochSnapshot<Pred>;

  EpochSnapshotCache() = default;
  explicit EpochSnapshotCache(const QueryEpochRegistry<Pred>* registry)
      : registry_(registry) {}

  /// Snapshot for epoch `e`; null only on a protocol violation (an epoch
  /// that was never installed).
  const Snapshot* Get(Epoch e) {
    for (std::size_t i = 0; i < cached_.size(); ++i) {
      if (cached_[i]->epoch == e) {
        if (i != 0) std::swap(cached_[0], cached_[i]);  // keep MRU first
        return cached_[0].get();
      }
    }
    if (registry_ == nullptr) return nullptr;
    std::shared_ptr<const Snapshot> snap = registry_->Get(e);
    if (snap == nullptr) return nullptr;
    cached_.insert(cached_.begin(), std::move(snap));
    return cached_[0].get();
  }

  /// Drops snapshots of epochs older than `min_live` (pruning on epoch
  /// switch keeps the cache bounded by the number of in-flight epochs).
  void PruneBelow(Epoch min_live) {
    for (std::size_t i = cached_.size(); i > 0; --i) {
      if (cached_[i - 1]->epoch < min_live) {
        cached_.erase(cached_.begin() + static_cast<std::ptrdiff_t>(i - 1));
      }
    }
  }

 private:
  const QueryEpochRegistry<Pred>* registry_ = nullptr;
  std::vector<std::shared_ptr<const Snapshot>> cached_;
};

}  // namespace sjoin
