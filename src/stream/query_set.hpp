// The set of predicates a join pipeline evaluates at every window crossing.
// Multi-query sharing (ROADMAP): one pipeline owns the windows, transport
// and driver; N registered queries of the same predicate *type* (band/equi
// predicates with different parameters) are evaluated against each crossing
// pair in a single store traversal, and every match is tagged with the
// QueryId that produced it. The set is frozen before the pipeline starts —
// nodes take an immutable copy, so the hot path reads a plain contiguous
// vector with no synchronization.
//
// Indexed stores (HashStore/OrderedStore) narrow the visited entries by the
// *store's* key extractor, which is shared by all queries; registering
// queries whose match set is not contained in the index probe range is a
// configuration error of the caller (exactly as for a single query).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/simd.hpp"
#include "common/types.hpp"

namespace sjoin {

template <typename Pred>
class QuerySet {
 public:
  QuerySet() = default;
  /// Single-query set (the classic StreamJoiner configuration).
  explicit QuerySet(Pred pred) { preds_.push_back(pred); }
  explicit QuerySet(std::vector<Pred> preds) : preds_(std::move(preds)) {}

  /// Registers one predicate; returns its dense id (registration order).
  QueryId Add(const Pred& pred) {
    preds_.push_back(pred);
    return static_cast<QueryId>(preds_.size() - 1);
  }

  std::size_t size() const { return preds_.size(); }
  bool empty() const { return preds_.empty(); }

  const Pred& pred(QueryId q) const { return preds_[q]; }

  /// Evaluates every registered predicate on (r, s); calls f(QueryId) for
  /// each query that matches. This is the per-crossing hot path: one pair
  /// load, N predicate evaluations.
  template <typename RV, typename SV, typename F>
  void Match(const RV& r, const SV& s, F&& f) const {
    for (QueryId q = 0; q < preds_.size(); ++q) {
      if (preds_[q](r, s)) f(q);
    }
  }

  /// True iff any registered predicate matches (baseline engines run with
  /// this as their single "union" predicate and fan matches out per query
  /// at the sink).
  template <typename RV, typename SV>
  bool AnyMatch(const RV& r, const SV& s) const {
    for (const Pred& p : preds_) {
      if (p(r, s)) return true;
    }
    return false;
  }

  /// Match with an explicit probe direction: the stores evaluate a probe
  /// tuple against a stored entry without knowing which of the two is the
  /// predicate's R argument. kProbeIsLeft=true means pred(probe, entry)
  /// (an R tuple probing the S window); false means pred(entry, probe).
  template <bool kProbeIsLeft, typename ProbeV, typename EntryV, typename F>
  void MatchOriented(const ProbeV& probe, const EntryV& entry, F&& f) const {
    if constexpr (kProbeIsLeft) {
      Match(probe, entry, static_cast<F&&>(f));
    } else {
      Match(entry, probe, static_cast<F&&>(f));
    }
  }

  /// True iff query set evaluation against EntryT entries probed by ProbeT
  /// tuples can run on the SIMD kernels (both the predicate decomposition
  /// and the entry lane mapping must be declared; see common/simd.hpp).
  template <typename ProbeT, typename EntryT>
  static constexpr bool SimdCapable() {
    return SimdProbeTraits<Pred, ProbeT, EntryT>::kEnabled &&
           SimdEntryLanes<EntryT>::kEnabled;
  }

  /// Vector compare of ONE registered query against one loaded block of
  /// entry key lanes (the block form of Match — the SIMD probe hot path).
  /// Fills scratch->mask with bit i <=> pred matches (probe, entry lane i),
  /// for lanes [0, n), n <= kSimdBlock; bits >= n are zero (masked-tail
  /// contract). The caller keeps the block loaded and sweeps it with every
  /// (probe, query) combination before moving on — one entry load, k x N
  /// vector compares. Kernel selection follows ActiveSimdLevel(); every
  /// level computes exactly the scalar predicate's arithmetic, so driving
  /// result emission off these bitmasks is bit-identical to Match.
  template <typename EntryT, typename ProbeT>
  void Matches(QueryId q, const ProbeT& probe, const SimdLaneBlock& lanes,
               std::size_t n, SimdMatchScratch* scratch) const {
    using Traits = SimdProbeTraits<Pred, ProbeT, EntryT>;
    static_assert(Traits::kEnabled, "no SIMD mapping for this direction");
    if constexpr (Traits::kShape != SimdPredShape::kEqui) {
      static_assert(!Traits::kUseF32 || SimdEntryLanes<EntryT>::kHasF32,
                    "predicate declares a float sweep (kUseF32) but the "
                    "entry type has no float lane (kHasF32)");
    }
    const SimdKernels& kernels = ActiveKernels();
    const Pred& pred = preds_[q];
    if constexpr (Traits::kShape == SimdPredShape::kEqui) {
      kernels.eq_i32(lanes.k0, n, Traits::Key(pred, probe), scratch->mask);
    } else if constexpr (Traits::kShape == SimdPredShape::kBandEntry) {
      kernels.band_entry_i32(lanes.k0, n, Traits::Band0(pred),
                             Traits::P0(probe), scratch->mask);
      if constexpr (Traits::kUseF32) {
        kernels.band_entry_f32(lanes.k1, n, Traits::Band1(pred),
                               Traits::P1(probe), scratch->tmp);
        AndMask(scratch->mask, scratch->tmp, n);
      }
    } else {
      kernels.range_i32(lanes.k0, n, Traits::Lo0(pred, probe),
                        Traits::Hi0(pred, probe), scratch->mask);
      if constexpr (Traits::kUseF32) {
        kernels.range_f32(lanes.k1, n, Traits::Lo1(pred, probe),
                          Traits::Hi1(pred, probe), scratch->tmp);
        AndMask(scratch->mask, scratch->tmp, n);
      }
    }
  }

 private:
  std::vector<Pred> preds_;
};

}  // namespace sjoin
