// Sliding-window specifications. Following the paper (Section 4.2.4), the
// join pipelines themselves are oblivious to the window type: an external
// driver interprets the WindowSpec and turns it into explicit expiry
// messages. Both classic forms are supported.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace sjoin {

/// Time-based (last tau microseconds) or count-based (last k tuples) window.
struct WindowSpec {
  enum class Type { kTime, kCount };

  Type type = Type::kTime;
  int64_t size = 0;  ///< microseconds for kTime, tuples for kCount

  /// Window covering the last `micros` microseconds of the stream.
  static WindowSpec Time(int64_t micros) {
    if (micros < 0) throw std::invalid_argument("negative time window");
    return WindowSpec{Type::kTime, micros};
  }

  /// Window covering the last `tuples` tuples of the stream.
  static WindowSpec Count(int64_t tuples) {
    if (tuples < 0) throw std::invalid_argument("negative count window");
    return WindowSpec{Type::kCount, tuples};
  }

  bool is_time() const { return type == Type::kTime; }
  bool is_count() const { return type == Type::kCount; }
};

}  // namespace sjoin
