// A trace is the raw input of a join run: interleaved arrivals on both
// streams with non-decreasing timestamps. Traces are what workload
// generators produce and what the driver turns into a script of arrivals
// and expiries.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace sjoin {

/// One arrival. Only the payload matching `side` is meaningful.
template <typename R, typename S>
struct TraceEvent {
  StreamSide side = StreamSide::kR;
  Timestamp ts = 0;
  R r{};
  S s{};
};

template <typename R, typename S>
using Trace = std::vector<TraceEvent<R, S>>;

template <typename R, typename S>
TraceEvent<R, S> ArriveR(Timestamp ts, const R& r) {
  TraceEvent<R, S> e;
  e.side = StreamSide::kR;
  e.ts = ts;
  e.r = r;
  return e;
}

template <typename R, typename S>
TraceEvent<R, S> ArriveS(Timestamp ts, const S& s) {
  TraceEvent<R, S> e;
  e.side = StreamSide::kS;
  e.ts = ts;
  e.s = s;
  return e;
}

}  // namespace sjoin
