// High-water marks for punctuation generation (paper Section 6.1.1). The
// pipeline end nodes publish the timestamp of every tuple that completes
// its traversal; because tuples finish in FIFO order, the published value
// is the maximum finished timestamp of that stream. The collector reads
// both marks *before* vacuuming the result queues, making
// min(t_max,R, t_max,S) a safe punctuation.
#pragma once

#include <atomic>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "runtime/cacheline.hpp"

namespace sjoin {

class HighWaterMarks {
 public:
  /// Called by the pipeline end node when a tuple of `side` completes its
  /// expedition/traversal. Timestamps and sequence numbers arrive in FIFO
  /// order per side, so both marks are monotone.
  void Publish(StreamSide side, Timestamp ts, Seq seq) {
    auto& mark = side == StreamSide::kR ? r_ : s_;
    auto& done = side == StreamSide::kR ? r_seq_ : s_seq_;
    // Contract (DESIGN.md Section 14): tuples finish in FIFO order per
    // side, so a regressing mark or completed-seq means an end node
    // published out of order — downstream punctuations would go unsafe.
    if (side == StreamSide::kR) {
      r_ts_order_.AssertAdvance(ts, "HighWaterMarks", "R mark");
      r_seq_order_.AssertAdvance(static_cast<long long>(seq),
                                 "HighWaterMarks", "R completed seq",
                                 /*strict=*/true);
    } else {
      s_ts_order_.AssertAdvance(ts, "HighWaterMarks", "S mark");
      s_seq_order_.AssertAdvance(static_cast<long long>(seq),
                                 "HighWaterMarks", "S completed seq",
                                 /*strict=*/true);
    }
    mark->store(ts, std::memory_order_release);
    done->store(static_cast<int64_t>(seq), std::memory_order_release);
  }

  Timestamp Get(StreamSide side) const {
    const auto& mark = side == StreamSide::kR ? r_ : s_;
    return mark->load(std::memory_order_acquire);
  }

  /// Highest sequence number of `side` that has completed its traversal,
  /// or -1 if none has. Because tuples finish in FIFO order, seq <= this
  /// value means that tuple is no longer travelling — the condition the
  /// driver uses to gate expiry emission (see Feeder::Options::expiry_gate).
  int64_t CompletedSeq(StreamSide side) const {
    const auto& done = side == StreamSide::kR ? r_seq_ : s_seq_;
    return done->load(std::memory_order_acquire);
  }

  /// The safe punctuation value min(t_max,R, t_max,S); kMinTimestamp until
  /// both streams have completed at least one tuple.
  Timestamp SafeMin() const {
    const Timestamp r = r_->load(std::memory_order_acquire);
    const Timestamp s = s_->load(std::memory_order_acquire);
    return r < s ? r : s;
  }

 private:
  CachePadded<std::atomic<Timestamp>> r_{{kMinTimestamp}};
  CachePadded<std::atomic<Timestamp>> s_{{kMinTimestamp}};
  CachePadded<std::atomic<int64_t>> r_seq_{{-1}};
  CachePadded<std::atomic<int64_t>> s_seq_{{-1}};
  // Checked-contracts state: per-side publish order (each side has a single
  // publishing end node, so plain members are safe under the contract the
  // SpscQueue roles already pin down).
  [[no_unique_address]] contracts::Monotone r_ts_order_;
  [[no_unique_address]] contracts::Monotone s_ts_order_;
  [[no_unique_address]] contracts::Monotone r_seq_order_;
  [[no_unique_address]] contracts::Monotone s_seq_order_;
};

}  // namespace sjoin
