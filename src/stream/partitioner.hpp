// Predicate-aware stream partitioning for sharded sessions (DESIGN.md
// Section 13). A ShardedJoinSession splits the two input streams over N
// independent pipeline shards; which split is *correct* depends on the
// predicate class:
//
//   hash        — equi-join predicates: both sides are hash-partitioned on
//                 the join key, so every matching pair lands on the same
//                 shard (pred(r, s) implies KeyR(r) == KeyS(s)). Linear
//                 scale-out: each tuple enters exactly one shard.
//   replicate_r — band/range (or arbitrary) predicates: R is replicated to
//                 every shard, S is partitioned round-robin. Every (r, s)
//                 candidate pair is co-located on exactly one shard (the
//                 one owning s), so no match can be lost and none can be
//                 duplicated. Scales the S-side work; R-side work is paid
//                 once per shard.
//   replicate_s — the mirror image (partition R, replicate S).
//   auto        — hash when the predicate type declares shard keys
//                 (ShardKeyTraits), replicate_r otherwise.
//
// Requesting `hash` for a predicate type without ShardKeyTraits is a
// configuration error and is rejected up front (ValidateShardedJoinConfig
// calls ResolvePartitionPolicy) — a silently mis-partitioned band join
// would simply lose matches.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/schema.hpp"
#include "common/types.hpp"

namespace sjoin {

/// How the two input streams are split across shards.
enum class PartitionPolicy : uint8_t {
  kAuto = 0,     ///< hash when the predicate declares keys, else replicate_r
  kHashKey,      ///< hash-partition both sides on the join key (equi only)
  kReplicateR,   ///< replicate R to all shards, partition S round-robin
  kReplicateS,   ///< replicate S to all shards, partition R round-robin
};

constexpr const char* ToString(PartitionPolicy p) {
  switch (p) {
    case PartitionPolicy::kAuto:
      return "auto";
    case PartitionPolicy::kHashKey:
      return "hash";
    case PartitionPolicy::kReplicateR:
      return "replicate_r";
    case PartitionPolicy::kReplicateS:
      return "replicate_s";
  }
  return "?";
}

/// Parses a policy name; throws std::invalid_argument naming the offending
/// value (PR 3 knob discipline: unknown string knobs must self-diagnose).
inline PartitionPolicy ParsePartitionPolicy(const std::string& name) {
  if (name == "auto") return PartitionPolicy::kAuto;
  if (name == "hash") return PartitionPolicy::kHashKey;
  if (name == "replicate_r") return PartitionPolicy::kReplicateR;
  if (name == "replicate_s") return PartitionPolicy::kReplicateS;
  throw std::invalid_argument(
      "ParsePartitionPolicy: unknown partition policy \"" + name +
      "\" (expected auto|hash|replicate_r|replicate_s)");
}

/// Declares that a predicate type is hash-partitionable: KeyR/KeyS extract
/// a shard key from each side such that pred(r, s) implies
/// KeyR(r) == KeyS(s) (the equi-join contract — equal keys land on the
/// same shard, so no matching pair is ever split). The primary template is
/// disabled; specialize it for every hash-partitionable predicate type.
template <typename Pred, typename R, typename S>
struct ShardKeyTraits {
  static constexpr bool kEnabled = false;
};

/// The library's equi-join predicate joins on r.x == s.a (common/schema.hpp).
template <>
struct ShardKeyTraits<EquiPredicate, RTuple, STuple> {
  static constexpr bool kEnabled = true;
  static uint64_t KeyR(const RTuple& r) {
    return static_cast<uint64_t>(static_cast<int64_t>(r.x));
  }
  static uint64_t KeyS(const STuple& s) {
    return static_cast<uint64_t>(static_cast<int64_t>(s.a));
  }
};

/// splitmix64 finalizer: shard assignment must not correlate with key
/// arithmetic (sequential keys modulo a small shard count would starve
/// shards), so keys are mixed before the modulo.
inline uint64_t MixShardKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shard owning `key` among `shards` shards (deterministic; equal keys map
/// to equal shards — the hash-partitioning correctness anchor).
inline int ShardOfKey(uint64_t key, int shards) {
  return static_cast<int>(MixShardKey(key) % static_cast<uint64_t>(shards));
}

/// Resolves the requested policy against the predicate type's metadata.
/// kAuto picks the best supported split; kHashKey is rejected (throws
/// std::invalid_argument) when the predicate type declares no shard keys.
template <typename Pred, typename R, typename S>
PartitionPolicy ResolvePartitionPolicy(PartitionPolicy requested) {
  constexpr bool hashable = ShardKeyTraits<Pred, R, S>::kEnabled;
  switch (requested) {
    case PartitionPolicy::kAuto:
      return hashable ? PartitionPolicy::kHashKey
                      : PartitionPolicy::kReplicateR;
    case PartitionPolicy::kHashKey:
      if (!hashable) {
        throw std::invalid_argument(
            "ShardedJoinConfig: partition policy \"hash\" requires a "
            "ShardKeyTraits specialization for the predicate type (equi-join "
            "key extractors); this predicate declares none — a band/range "
            "predicate cannot be hash-partitioned without losing matches. "
            "Use \"auto\", \"replicate_r\" or \"replicate_s\".");
      }
      return PartitionPolicy::kHashKey;
    case PartitionPolicy::kReplicateR:
    case PartitionPolicy::kReplicateS:
      return requested;
  }
  throw std::invalid_argument(
      "ShardedJoinConfig: partition must be auto|hash|replicate_r|"
      "replicate_s, got enum value " +
      std::to_string(static_cast<int>(requested)));
}

}  // namespace sjoin
