// The driver-facing entry points of a join pipeline: R arrivals (plus S
// expiries and R flushes) enter on the left, S arrivals (plus R expiries
// and S flushes) enter on the right (paper Section 4.2.4).
#pragma once

#include "runtime/spsc_queue.hpp"
#include "stream/message.hpp"

namespace sjoin {

template <typename R, typename S>
struct PipelinePorts {
  SpscQueue<FlowMsg<R>>* left = nullptr;
  SpscQueue<FlowMsg<S>>* right = nullptr;
};

}  // namespace sjoin
