// Output handlers consumed by the collector: the downstream side of the
// operator. Handlers receive the merged result stream plus punctuations and
// can be chained (Tee) — e.g. latency recording feeding a sorting operator.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "stream/message.hpp"
#include "stream/stats.hpp"

namespace sjoin {

/// Interface for consumers of the collected output stream.
template <typename R, typename S>
class OutputHandler {
 public:
  virtual ~OutputHandler() = default;
  virtual void OnResult(const ResultMsg<R, S>& result) = 0;
  virtual void OnPunctuation(Timestamp tp) {}
};

/// Stores everything (tests, examples).
template <typename R, typename S>
class CollectingHandler : public OutputHandler<R, S> {
 public:
  void OnResult(const ResultMsg<R, S>& result) override {
    results_.push_back(result);
  }
  void OnPunctuation(Timestamp tp) override { punctuations_.push_back(tp); }

  const std::vector<ResultMsg<R, S>>& results() const { return results_; }
  const std::vector<Timestamp>& punctuations() const { return punctuations_; }

 private:
  std::vector<ResultMsg<R, S>> results_;
  std::vector<Timestamp> punctuations_;
};

/// Counts results; the count is safe to read from other threads.
template <typename R, typename S>
class CountingHandler : public OutputHandler<R, S> {
 public:
  void OnResult(const ResultMsg<R, S>&) override {
    count_.store(count_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

/// Records per-result latency (emit wall time minus the arrival wall time of
/// the later input tuple) into an overall stat and a per-interval series.
/// Forwards to an optional downstream handler.
template <typename R, typename S>
class LatencyRecorder : public OutputHandler<R, S> {
 public:
  explicit LatencyRecorder(OutputHandler<R, S>* next = nullptr,
                           int64_t bucket_ns = 1'000'000'000)
      : next_(next), series_(bucket_ns) {}

  void OnResult(const ResultMsg<R, S>& result) override {
    const int64_t now = NowNs();
    const double latency_ms = NsToMs(now - result.ready_wall_ns);
    overall_.Add(latency_ms);
    series_.Add(now, latency_ms);
    if (next_ != nullptr) next_->OnResult(result);
  }

  void OnPunctuation(Timestamp tp) override {
    if (next_ != nullptr) next_->OnPunctuation(tp);
  }

  void Anchor(int64_t wall_ns) { series_.Anchor(wall_ns); }

  const RunningStat& overall() const { return overall_; }
  const TimeSeriesStat& series() const { return series_; }

 private:
  OutputHandler<R, S>* next_;
  RunningStat overall_;
  TimeSeriesStat series_;
};

/// Demultiplexes the merged result stream of a multi-query session onto the
/// per-query sinks: results are routed by their QueryId tag, punctuations
/// (a property of the shared windows, not of any one query) are broadcast
/// to every registered handler. A null handler is allowed — that query's
/// results are counted but dropped (count-only queries).
template <typename R, typename S>
class QueryRouter : public OutputHandler<R, S> {
 public:
  /// Registers the sink of the next query; returns its dense QueryId.
  QueryId Register(OutputHandler<R, S>* handler) {
    handlers_.push_back(handler);
    counts_.push_back(0);
    return static_cast<QueryId>(handlers_.size() - 1);
  }

  void OnResult(const ResultMsg<R, S>& result) override {
    if (result.query >= handlers_.size()) {
      ++misrouted_;  // must stay 0; a non-zero count is a pipeline bug
      return;
    }
    ++counts_[result.query];
    ++total_;
    OutputHandler<R, S>* handler = handlers_[result.query];
    if (handler != nullptr) handler->OnResult(result);
  }

  void OnPunctuation(Timestamp tp) override {
    for (OutputHandler<R, S>* handler : handlers_) {
      if (handler != nullptr) handler->OnPunctuation(tp);
    }
  }

  std::size_t query_count() const { return handlers_.size(); }
  uint64_t collected(QueryId q) const {
    return q < counts_.size() ? counts_[q] : 0;
  }
  uint64_t total_collected() const { return total_; }
  uint64_t misrouted() const { return misrouted_; }

 private:
  std::vector<OutputHandler<R, S>*> handlers_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  uint64_t misrouted_ = 0;
};

/// Fans one stream out to two handlers.
template <typename R, typename S>
class TeeHandler : public OutputHandler<R, S> {
 public:
  TeeHandler(OutputHandler<R, S>* a, OutputHandler<R, S>* b) : a_(a), b_(b) {}

  void OnResult(const ResultMsg<R, S>& result) override {
    a_->OnResult(result);
    b_->OnResult(result);
  }
  void OnPunctuation(Timestamp tp) override {
    a_->OnPunctuation(tp);
    b_->OnPunctuation(tp);
  }

 private:
  OutputHandler<R, S>* a_;
  OutputHandler<R, S>* b_;
};

}  // namespace sjoin
