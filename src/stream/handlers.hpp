// Output handlers consumed by the collector: the downstream side of the
// operator. Handlers receive the merged result stream plus punctuations and
// can be chained (Tee) — e.g. latency recording feeding a sorting operator.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "stream/admission.hpp"
#include "stream/message.hpp"
#include "stream/stats.hpp"

namespace sjoin {

/// Interface for consumers of the collected output stream.
template <typename R, typename S>
class OutputHandler {
 public:
  virtual ~OutputHandler() = default;
  virtual void OnResult(const ResultMsg<R, S>& result) = 0;
  virtual void OnPunctuation(Timestamp tp) {}

  /// Every result of a query epoch below the argument has been delivered
  /// (the collector saw the epoch marker of every pipeline node). Default
  /// no-op; the QueryRouter uses it to retire removed queries.
  virtual void OnEpochDrained(Epoch /*epoch*/) {}

  /// Final punctuation of a removed query: its last result has been
  /// delivered and no further OnResult call will ever carry this query id.
  virtual void OnQueryRetired(QueryId /*query*/) {}

  /// Exact loss bound from overload control (DESIGN.md Section 12): the
  /// `count` consecutive arrivals of `side` with sequence numbers
  /// [first_seq, first_seq + count) were shed AT INGEST — they never
  /// entered a window, so no delivered result references them, and every
  /// gap in the arrival sequence is covered by exactly one such call.
  /// Delivered at the bound's in-band stream position. Default no-op.
  virtual void OnLoss(StreamSide /*side*/, Seq /*first_seq*/,
                      uint64_t /*count*/) {}
};

/// Stores everything (tests, examples).
template <typename R, typename S>
class CollectingHandler : public OutputHandler<R, S> {
 public:
  void OnResult(const ResultMsg<R, S>& result) override {
    results_.push_back(result);
  }
  void OnPunctuation(Timestamp tp) override { punctuations_.push_back(tp); }
  void OnQueryRetired(QueryId query) override { retired_.push_back(query); }
  void OnLoss(StreamSide side, Seq first_seq, uint64_t count) override {
    losses_.push_back(LossBound{side, first_seq, count});
  }

  const std::vector<ResultMsg<R, S>>& results() const { return results_; }
  const std::vector<Timestamp>& punctuations() const { return punctuations_; }
  /// Queries whose final (retirement) punctuation has been delivered.
  const std::vector<QueryId>& retired_queries() const { return retired_; }
  /// Loss bounds in delivery order (overload-control accounting).
  const std::vector<LossBound>& losses() const { return losses_; }
  uint64_t lost(StreamSide side) const {
    uint64_t n = 0;
    for (const LossBound& b : losses_) {
      if (b.side == side) n += b.count;
    }
    return n;
  }

 private:
  std::vector<ResultMsg<R, S>> results_;
  std::vector<Timestamp> punctuations_;
  std::vector<QueryId> retired_;
  std::vector<LossBound> losses_;
};

/// Counts results; the count is safe to read from other threads.
template <typename R, typename S>
class CountingHandler : public OutputHandler<R, S> {
 public:
  void OnResult(const ResultMsg<R, S>&) override {
    count_.store(count_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

/// Records per-result latency (emit wall time minus the arrival wall time of
/// the later input tuple) into an overall stat and a per-interval series.
/// Forwards to an optional downstream handler.
template <typename R, typename S>
class LatencyRecorder : public OutputHandler<R, S> {
 public:
  explicit LatencyRecorder(OutputHandler<R, S>* next = nullptr,
                           int64_t bucket_ns = 1'000'000'000)
      : next_(next), series_(bucket_ns) {}

  void OnResult(const ResultMsg<R, S>& result) override {
    const int64_t now = NowNs();
    const int64_t latency_ns = now - result.ready_wall_ns;
    const double latency_ms = NsToMs(latency_ns);
    overall_.Add(latency_ms);
    series_.Add(now, latency_ms);
    histogram_.Add(latency_ns);
    if (observe_ != nullptr) observe_->ObserveResult(latency_ns, now);
    if (next_ != nullptr) next_->OnResult(result);
  }

  /// Closes the overload-control loop: every observed latency also feeds
  /// the admission controller's EWMA (the projection it sheds against).
  void ObserveInto(AdmissionController* admission) { observe_ = admission; }

  void OnPunctuation(Timestamp tp) override {
    if (next_ != nullptr) next_->OnPunctuation(tp);
  }
  void OnLoss(StreamSide side, Seq first_seq, uint64_t count) override {
    if (next_ != nullptr) next_->OnLoss(side, first_seq, count);
  }
  void OnEpochDrained(Epoch epoch) override {
    if (next_ != nullptr) next_->OnEpochDrained(epoch);
  }
  void OnQueryRetired(QueryId query) override {
    if (next_ != nullptr) next_->OnQueryRetired(query);
  }

  void Anchor(int64_t wall_ns) { series_.Anchor(wall_ns); }

  const RunningStat& overall() const { return overall_; }
  const TimeSeriesStat& series() const { return series_; }
  /// Tail percentiles (p50/p95/p99/p99.9 via QuantileMs).
  const LatencyHistogram& histogram() const { return histogram_; }

 private:
  OutputHandler<R, S>* next_;
  RunningStat overall_;
  TimeSeriesStat series_;
  LatencyHistogram histogram_;
  AdmissionController* observe_ = nullptr;
};

/// Demultiplexes the merged result stream of a multi-query session onto the
/// per-query sinks: results are routed by their QueryId tag, punctuations
/// (a property of the shared windows, not of any one query) are broadcast
/// once per registered *handler* — a handler registered for several queries
/// receives each punctuation exactly once (deduped by (epoch, punctuation
/// seq)). A null handler is allowed — that query's results are counted but
/// dropped (count-only queries).
///
/// Live query lifecycle (DESIGN.md Section 10): the router keeps one
/// membership table per query epoch. A result is routed only when its
/// `query` was a member of its `epoch` — anything else counts as misrouted
/// (a pipeline bug). Queries removed at an epoch install stay registered
/// until that epoch is *drained* (OnEpochDrained, driven by the collector's
/// per-node epoch markers, or synchronously for the baseline engines); at
/// that point the removed query's handler receives its final punctuation
/// (OnQueryRetired) and is guaranteed to never see a result of that query
/// again.
template <typename R, typename S>
class QueryRouter : public OutputHandler<R, S> {
 public:
  /// Registers the sink of the next query; returns its dense QueryId.
  /// Ids are never reused, so a handler may appear under several ids.
  QueryId Register(OutputHandler<R, S>* handler) {
    handlers_.push_back(handler);
    counts_.push_back(0);
    retired_.push_back(0);
    return static_cast<QueryId>(handlers_.size() - 1);
  }

  /// Declares epoch `epoch` (must be sequential from 0): `members` are the
  /// QueryIds live in it, `removed` the ids removed at this install (await
  /// retirement once every older epoch has drained). A router that never
  /// sees BeginEpoch routes by id alone (single-epoch legacy mode).
  void BeginEpoch(Epoch epoch, const std::vector<QueryId>& members,
                  std::vector<QueryId> removed = {}) {
    if (epoch != epochs_.size()) {
      throw std::logic_error("QueryRouter: epochs must begin sequentially");
    }
    EpochInfo info;
    info.member.assign(handlers_.size(), 0);
    for (QueryId q : members) info.member[q] = 1;
    info.removed = std::move(removed);
    epochs_.push_back(std::move(info));
  }

  void OnResult(const ResultMsg<R, S>& result) override {
    // Must stay routable: query registered, epoch declared, query a member
    // of that epoch. Anything else counts as misrouted (pipeline bug).
    if (result.query >= handlers_.size() ||
        (!epochs_.empty() &&
         (result.epoch >= epochs_.size() ||
          result.query >= epochs_[result.epoch].member.size() ||
          epochs_[result.epoch].member[result.query] == 0))) {
      ++misrouted_;
      return;
    }
    ++counts_[result.query];
    ++total_;
    OutputHandler<R, S>* handler = handlers_[result.query];
    if (handler != nullptr) handler->OnResult(result);
  }

  /// Broadcast with exactly-once-per-handler delivery: each OnPunctuation
  /// call is one (epoch, punctuation-seq) key, and within it every distinct
  /// handler that still owns a live (non-retired) query receives the value
  /// once, however many queries it is registered for — the per-call seen_
  /// list IS the (epoch, seq) dedupe, since a new call is a new key.
  void OnPunctuation(Timestamp tp) override {
    seen_.clear();
    for (QueryId q = 0; q < handlers_.size(); ++q) {
      OutputHandler<R, S>* handler = handlers_[q];
      if (handler == nullptr || retired_[q] != 0) continue;
      bool duplicate = false;
      for (OutputHandler<R, S>* s : seen_) duplicate |= (s == handler);
      if (duplicate) continue;  // already delivered under this (epoch, seq)
      seen_.push_back(handler);
      handler->OnPunctuation(tp);
    }
  }

  /// Loss bounds broadcast like punctuations: a property of the shared
  /// ingest, not of any one query, delivered exactly once per distinct
  /// live handler (same per-call dedupe as OnPunctuation). The router also
  /// keeps per-side totals — the session-level accounting the oracle tests
  /// check against the admission controller's ground truth.
  void OnLoss(StreamSide side, Seq first_seq, uint64_t count) override {
    (side == StreamSide::kR ? lost_r_ : lost_s_) += count;
    ++loss_bounds_;
    seen_.clear();
    for (QueryId q = 0; q < handlers_.size(); ++q) {
      OutputHandler<R, S>* handler = handlers_[q];
      if (handler == nullptr || retired_[q] != 0) continue;
      bool duplicate = false;
      for (OutputHandler<R, S>* s : seen_) duplicate |= (s == handler);
      if (duplicate) continue;
      seen_.push_back(handler);
      handler->OnLoss(side, first_seq, count);
    }
  }

  /// Every result of an epoch below `epoch` has been delivered: retire the
  /// queries removed at installs up to and including `epoch` (their last
  /// possible result carries an epoch below their removal boundary).
  void OnEpochDrained(Epoch epoch) override {
    if (epoch > drained_epoch_) drained_epoch_ = epoch;
    const Epoch limit =
        std::min<Epoch>(epoch, static_cast<Epoch>(epochs_.size()) - 1);
    while (!epochs_.empty() && next_retire_ <= limit) {
      for (QueryId q : epochs_[next_retire_].removed) Retire(q);
      ++next_retire_;
    }
  }

  std::size_t query_count() const { return handlers_.size(); }
  uint64_t collected(QueryId q) const {
    return q < counts_.size() ? counts_[q] : 0;
  }
  uint64_t total_collected() const { return total_; }
  uint64_t misrouted() const { return misrouted_; }
  /// Total tuples reported lost on `side` (sum of broadcast loss bounds).
  uint64_t lost(StreamSide side) const {
    return side == StreamSide::kR ? lost_r_ : lost_s_;
  }
  /// Number of distinct loss bounds delivered.
  uint64_t loss_bounds() const { return loss_bounds_; }
  /// Highest epoch known fully drained (all older results delivered).
  Epoch drained_epoch() const { return drained_epoch_; }
  bool retired(QueryId q) const {
    return q < retired_.size() && retired_[q] != 0;
  }

 private:
  struct EpochInfo {
    std::vector<uint8_t> member;   ///< by QueryId: live in this epoch?
    std::vector<QueryId> removed;  ///< removed at this epoch's install
  };

  void Retire(QueryId q) {
    if (q >= handlers_.size() || retired_[q] != 0) return;
    retired_[q] = 1;
    if (handlers_[q] != nullptr) handlers_[q]->OnQueryRetired(q);
  }

  std::vector<OutputHandler<R, S>*> handlers_;
  std::vector<uint64_t> counts_;
  std::vector<uint8_t> retired_;
  std::vector<EpochInfo> epochs_;
  std::vector<OutputHandler<R, S>*> seen_;  // per-broadcast dedupe scratch
  Epoch drained_epoch_ = 0;
  Epoch next_retire_ = 0;
  uint64_t total_ = 0;
  uint64_t misrouted_ = 0;
  uint64_t lost_r_ = 0;
  uint64_t lost_s_ = 0;
  uint64_t loss_bounds_ = 0;
};

/// Fans one stream out to two handlers.
template <typename R, typename S>
class TeeHandler : public OutputHandler<R, S> {
 public:
  TeeHandler(OutputHandler<R, S>* a, OutputHandler<R, S>* b) : a_(a), b_(b) {}

  void OnResult(const ResultMsg<R, S>& result) override {
    a_->OnResult(result);
    b_->OnResult(result);
  }
  void OnPunctuation(Timestamp tp) override {
    a_->OnPunctuation(tp);
    b_->OnPunctuation(tp);
  }
  void OnLoss(StreamSide side, Seq first_seq, uint64_t count) override {
    a_->OnLoss(side, first_seq, count);
    b_->OnLoss(side, first_seq, count);
  }

 private:
  OutputHandler<R, S>* a_;
  OutputHandler<R, S>* b_;
};

}  // namespace sjoin
