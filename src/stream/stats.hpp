// Streaming statistics used by the latency experiments: Welford running
// moments (numerically stable mean/stddev) plus a wall-clock-bucketed time
// series matching the "moving average / maximum per interval" plots of the
// paper (Figures 5, 19, 20).
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace sjoin {

/// Welford's online algorithm for count/mean/variance plus min/max.
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void Merge(const RunningStat& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-footprint log-bucketed histogram for tail-latency percentiles
/// (p50/p95/p99/p99.9). Values are nanoseconds; each power-of-two octave is
/// split into 2^kSubBits linear sub-buckets, so the representative value of
/// a bucket is within ~1/2^kSubBits (3.1%) of any member — HDR-histogram
/// style, O(1) Add, no allocation after construction, mergeable.
class LatencyHistogram {
 public:
  void Add(int64_t ns) {
    if (ns < 0) ns = 0;
    ++counts_[BucketIndex(static_cast<uint64_t>(ns))];
    ++count_;
  }

  void Merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
  }

  uint64_t count() const { return count_; }

  /// Value (ns) at quantile q in [0, 1]: the representative (midpoint) of
  /// the bucket holding the ceil(q * count)-th smallest sample. 0 if empty.
  int64_t QuantileNs(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (rank >= count_) rank = count_ - 1;
    uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > rank) return static_cast<int64_t>(BucketMid(i));
    }
    return static_cast<int64_t>(BucketMid(kBuckets - 1));
  }

  double QuantileMs(double q) const {
    return static_cast<double>(QuantileNs(q)) / 1e6;
  }

 private:
  static constexpr int kSubBits = 5;                  // 32 sub-buckets/octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kOctaves = 64 - kSubBits;      // values up to 2^63
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kSub) * (kOctaves + 1);

  static std::size_t BucketIndex(uint64_t v) {
    if (v < static_cast<uint64_t>(kSub)) return static_cast<std::size_t>(v);
    // Highest set bit places the octave; the next kSubBits bits below it
    // select the linear sub-bucket.
    const int msb = 63 - std::countl_zero(v);
    const int octave = msb - kSubBits;               // >= 1 here
    const uint64_t sub = (v >> octave) - kSub;       // in [0, kSub)
    return static_cast<std::size_t>(octave + 1) * kSub +
           static_cast<std::size_t>(sub);
  }

  static uint64_t BucketMid(std::size_t index) {
    const std::size_t octave1 = index / kSub;        // octave + 1, 0 = linear
    const uint64_t sub = index % kSub;
    if (octave1 == 0) return sub;
    const int octave = static_cast<int>(octave1) - 1;
    const uint64_t lo = (static_cast<uint64_t>(kSub) + sub) << octave;
    return lo + (uint64_t{1} << octave) / 2;
  }

  std::vector<uint64_t> counts_ = std::vector<uint64_t>(kBuckets, 0);
  uint64_t count_ = 0;
};

/// Values bucketed by wall-clock interval (default 1 s), for the latency-
/// over-time plots. The first Add() anchors bucket 0.
class TimeSeriesStat {
 public:
  explicit TimeSeriesStat(int64_t bucket_ns = 1'000'000'000)
      : bucket_ns_(bucket_ns) {}

  void Add(int64_t wall_ns, double value) {
    if (!anchored_) {
      base_ns_ = wall_ns;
      anchored_ = true;
    }
    int64_t idx64 = (wall_ns - base_ns_) / bucket_ns_;
    if (idx64 < 0) idx64 = 0;
    const std::size_t idx = static_cast<std::size_t>(idx64);
    if (idx >= buckets_.size()) buckets_.resize(idx + 1);
    buckets_[idx].Add(value);
  }

  /// Anchor explicitly (e.g. at experiment start) so bucket 0 is t=0.
  void Anchor(int64_t wall_ns) {
    base_ns_ = wall_ns;
    anchored_ = true;
  }

  const std::vector<RunningStat>& buckets() const { return buckets_; }
  int64_t bucket_ns() const { return bucket_ns_; }

 private:
  int64_t bucket_ns_;
  int64_t base_ns_ = 0;
  bool anchored_ = false;
  std::vector<RunningStat> buckets_;
};

}  // namespace sjoin
