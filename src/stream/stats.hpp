// Streaming statistics used by the latency experiments: Welford running
// moments (numerically stable mean/stddev) plus a wall-clock-bucketed time
// series matching the "moving average / maximum per interval" plots of the
// paper (Figures 5, 19, 20).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace sjoin {

/// Welford's online algorithm for count/mean/variance plus min/max.
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void Merge(const RunningStat& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Values bucketed by wall-clock interval (default 1 s), for the latency-
/// over-time plots. The first Add() anchors bucket 0.
class TimeSeriesStat {
 public:
  explicit TimeSeriesStat(int64_t bucket_ns = 1'000'000'000)
      : bucket_ns_(bucket_ns) {}

  void Add(int64_t wall_ns, double value) {
    if (!anchored_) {
      base_ns_ = wall_ns;
      anchored_ = true;
    }
    int64_t idx64 = (wall_ns - base_ns_) / bucket_ns_;
    if (idx64 < 0) idx64 = 0;
    const std::size_t idx = static_cast<std::size_t>(idx64);
    if (idx >= buckets_.size()) buckets_.resize(idx + 1);
    buckets_[idx].Add(value);
  }

  /// Anchor explicitly (e.g. at experiment start) so bucket 0 is t=0.
  void Anchor(int64_t wall_ns) {
    base_ns_ = wall_ns;
    anchored_ = true;
  }

  const std::vector<RunningStat>& buckets() const { return buckets_; }
  int64_t bucket_ns() const { return bucket_ns_; }

 private:
  int64_t bucket_ns_;
  int64_t base_ns_ = 0;
  bool anchored_ = false;
  std::vector<RunningStat> buckets_;
};

}  // namespace sjoin
