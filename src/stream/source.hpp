// Workload sources: the driver-side producers of arrival/expiry events.
// ScriptSource replays a prebuilt DriverScript (tests, latency experiments
// on fixed traces); GeneratedSource produces an endless paced workload with
// inline window bookkeeping (throughput and long-running latency benches).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "stream/script.hpp"
#include "stream/window.hpp"

namespace sjoin {

template <typename R, typename S>
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  /// Produces the next driver event. Returns false when exhausted.
  virtual bool Next(DriverEvent<R, S>* out) = 0;
};

/// Replays a DriverScript.
template <typename R, typename S>
class ScriptSource : public WorkloadSource<R, S> {
 public:
  explicit ScriptSource(const DriverScript<R, S>* script) : script_(script) {}

  bool Next(DriverEvent<R, S>* out) override {
    if (index_ >= script_->events.size()) return false;
    *out = script_->events[index_++];
    return true;
  }

  std::size_t position() const { return index_; }

 private:
  const DriverScript<R, S>* script_;
  std::size_t index_ = 0;
};

/// Endless (or bounded) generated workload: arrivals alternate R/S spaced
/// `period_us` apart in event time; expiries are interleaved according to
/// the window specs exactly as BuildDriverScript would.
template <typename R, typename S>
class GeneratedSource : public WorkloadSource<R, S> {
 public:
  struct Options {
    WindowSpec wr = WindowSpec::Count(1024);
    WindowSpec ws = WindowSpec::Count(1024);
    int64_t period_us = 1;       ///< event-time gap between arrivals
    uint64_t seed = 42;
    uint64_t max_arrivals = 0;   ///< 0 = unbounded
  };

  GeneratedSource(std::function<R(Rng&)> gen_r, std::function<S(Rng&)> gen_s,
                  const Options& options)
      : gen_r_(std::move(gen_r)),
        gen_s_(std::move(gen_s)),
        options_(options),
        rng_(options.seed),
        tracker_(options.wr, options.ws) {}

  bool Next(DriverEvent<R, S>* out) override {
    if (pending_.has_value()) {
      *out = *pending_;
      pending_.reset();
      return true;
    }
    if (options_.max_arrivals != 0 && arrivals_ >= options_.max_arrivals) {
      return false;
    }

    const Timestamp next_ts = static_cast<Timestamp>(arrivals_) *
                              options_.period_us;

    // Time-window expiries due before the next arrival.
    StreamSide exp_side;
    Seq exp_seq;
    Timestamp exp_ts;
    if (tracker_.PopTimeExpiry(next_ts, &exp_side, &exp_seq, &exp_ts)) {
      out->op = exp_side == StreamSide::kR ? DriverOp::kExpireR
                                           : DriverOp::kExpireS;
      out->seq = exp_seq;
      out->ts = exp_ts;
      return true;
    }

    // The arrival itself, alternating R / S.
    const bool is_r = (arrivals_ % 2) == 0;
    DriverEvent<R, S> arrive;
    arrive.ts = next_ts;
    if (is_r) {
      arrive.op = DriverOp::kArriveR;
      arrive.seq = r_seq_++;
      arrive.r = gen_r_(rng_);
    } else {
      arrive.op = DriverOp::kArriveS;
      arrive.seq = s_seq_++;
      arrive.s = gen_s_(rng_);
    }
    ++arrivals_;

    // Count-window expiry triggered by this arrival is emitted right after.
    if (tracker_.OnArrival(is_r ? StreamSide::kR : StreamSide::kS, arrive.seq,
                           arrive.ts, &exp_seq, &exp_ts)) {
      DriverEvent<R, S> expire;
      expire.op = is_r ? DriverOp::kExpireR : DriverOp::kExpireS;
      expire.seq = exp_seq;
      expire.ts = exp_ts;
      pending_ = expire;
    }

    *out = arrive;
    return true;
  }

 private:
  std::function<R(Rng&)> gen_r_;
  std::function<S(Rng&)> gen_s_;
  Options options_;
  Rng rng_;
  ExpiryTracker tracker_;
  uint64_t arrivals_ = 0;
  Seq r_seq_ = 0;
  Seq s_seq_ = 0;
  std::optional<DriverEvent<R, S>> pending_;
};

}  // namespace sjoin
