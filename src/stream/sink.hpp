// Result sinks: where pipeline nodes emit join matches. Nodes are templated
// on the sink so the hot emit path has no virtual dispatch.
//
//  * QueueSink  — per-node SPSC result queue drained by the collector
//    thread (the deployment configuration, paper Figure 15).
//  * VectorSink — unbounded in-memory buffer for deterministic tests.
//  * CountingSink — discards payloads, counts matches (throughput benches
//    where result contents are irrelevant).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "runtime/backoff.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/staged_channel.hpp"
#include "stream/message.hpp"

namespace sjoin {

/// Non-blocking emit into a bounded SPSC result queue with a local overflow
/// stage. Pipeline nodes must never block mid-step (a blocked node cannot
/// drain its own inputs, and in single-threaded execution it would starve
/// the collector), so bursts beyond the queue capacity stage locally and
/// drain on subsequent steps. This is the sink both pipelines use.
template <typename R, typename S>
class StagedQueueSink {
 public:
  explicit StagedQueueSink(SpscQueue<ResultMsg<R, S>>* queue)
      : channel_(queue) {}

  void Emit(const ResultMsg<R, S>& result) {
    channel_.Push(result);
    ++emitted_;
  }

  /// Moves staged results into the queue; called from the node's Step.
  bool Drain() { return channel_.Drain(); }

  /// Placement hook: reserve the stage from the owning node's thread (see
  /// StagedChannel::Prewarm).
  void Prewarm(std::size_t slots) { channel_.Prewarm(slots); }

  uint64_t emitted() const { return emitted_; }
  std::size_t staged() const { return channel_.staged(); }

 private:
  StagedChannel<ResultMsg<R, S>> channel_;
  uint64_t emitted_ = 0;
};

/// Blocking push into a bounded SPSC result queue. Blocking is safe because
/// the collector always drains; backoff keeps the wait cheap.
template <typename R, typename S>
class QueueSink {
 public:
  explicit QueueSink(SpscQueue<ResultMsg<R, S>>* queue) : queue_(queue) {}

  void Emit(const ResultMsg<R, S>& result) {
    Backoff backoff;
    while (!queue_->TryPush(result)) backoff.Pause();
    ++emitted_;
  }

  uint64_t emitted() const { return emitted_; }

 private:
  SpscQueue<ResultMsg<R, S>>* queue_;
  uint64_t emitted_ = 0;
};

/// Unbounded buffer; single-threaded use only.
template <typename R, typename S>
class VectorSink {
 public:
  void Emit(const ResultMsg<R, S>& result) { results_.push_back(result); }

  const std::vector<ResultMsg<R, S>>& results() const { return results_; }
  std::vector<ResultMsg<R, S>>& mutable_results() { return results_; }

 private:
  std::vector<ResultMsg<R, S>> results_;
};

/// Counts matches without storing them.
template <typename R, typename S>
class CountingSink {
 public:
  void Emit(const ResultMsg<R, S>&) { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

}  // namespace sjoin
