// The driver threads of the paper (Figure 15) rolled into one Steppable
// feeder: it pulls driver events from a WorkloadSource, routes them to the
// correct pipeline end, and reproduces the prototype's batching behaviour —
// tuples are accumulated into fixed-size batches before being pushed into
// the pipeline (Section 7.3: batch size 64 by default, 4 for the
// reduced-batching experiment of Figure 20). Batching delay is therefore
// part of measured latency, exactly as in the paper.
//
// Two operation modes:
//  * max-rate: events are released as fast as the pipeline accepts them
//    (throughput experiments — "maximum throughput the system could sustain
//    without dropping any data": bounded queues provide the backpressure).
//  * paced: event timestamps are mapped onto the wall clock
//    (wall = start + ts), and tuples are released only once due
//    (latency experiments at a fixed input rate).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "common/contracts.hpp"
#include "common/vec_deque.hpp"
#include "common/types.hpp"
#include "runtime/backoff.hpp"
#include "runtime/executor.hpp"
#include "stream/admission.hpp"
#include "stream/hwm.hpp"
#include "stream/message.hpp"
#include "stream/ports.hpp"
#include "stream/source.hpp"

namespace sjoin {

template <typename R, typename S>
class Feeder : public Steppable {
 public:
  struct Options {
    int batch_size = 64;   ///< per-side batch before pushing (paper: 64)
    bool paced = false;    ///< honor event timestamps against wall clock
    int max_events_per_step = 512;
    /// Stop generating events while either side's undelivered backlog
    /// exceeds this bound (0 = derive from batch size). This couples the
    /// two flows: if one pipeline end exerts backpressure, the driver stops
    /// advancing the *other* flow too, so the streams can never skew by
    /// more than outbox + channel capacity — the bounded-lag precondition
    /// of the handshake-join protocols (DESIGN.md).
    std::size_t max_outbox = 0;
    /// When set (LLHJ), an expiry message is released into its flow only
    /// after the expiring tuple has *completed its expedition* (end nodes
    /// publish completion through the high-water marks). This preserves
    /// exactness even when the driver runs far ahead of the pipeline: no
    /// tuple can be met in flight by an opposite tuple that entered behind
    /// its expiry. Messages queued behind a gated expiry wait with it, so
    /// flow order is preserved. In the paper's regime (windows of seconds,
    /// expeditions of microseconds) the gate never throttles.
    const HighWaterMarks* expiry_gate = nullptr;
    /// Overload control (DESIGN.md Section 12): when set and enabled,
    /// arrivals that project past their latency budget are shed HERE, at
    /// ingest — they consume their sequence number but never reach a
    /// channel, and expiry events referencing them are suppressed (the
    /// windows never held them). Every shed run is announced in-band as a
    /// kLossPunctuation on the flow the arrivals would have taken.
    AdmissionController* admission = nullptr;
    /// Optional whole-pipeline backlog probe for the admission projection
    /// (e.g. Pipeline::ApproxChannelBacklog). Without it the feeder only
    /// sees the ENTRY channels, and backpressure must cascade backward
    /// through every internal ring before ingest notices saturation — the
    /// probe removes that admit-burst lag.
    std::function<std::size_t()> backlog_probe;
  };

  Feeder(PipelinePorts<R, S> ports, WorkloadSource<R, S>* source,
         const Options& options)
      : ports_(ports), source_(source), options_(options) {
    if (options_.max_outbox == 0) {
      options_.max_outbox = std::max<std::size_t>(
          16, 2 * static_cast<std::size_t>(options_.batch_size));
    }
  }

  bool Step() override {
    const bool progress = StepImpl();
    // Publish the drained state once per step: finished() is polled from
    // other threads, so it must not inspect the feeder's working state.
    finished_.store((exhausted_ ||
                     stop_requested_.load(std::memory_order_acquire)) &&
                        left_pending_.empty() && right_pending_.empty() &&
                        left_outbox_.empty() && right_outbox_.empty(),
                    std::memory_order_release);
    return progress;
  }

  /// Stop producing new events; pending batches are still flushed.
  void RequestStop() { stop_requested_.store(true, std::memory_order_release); }

  /// True once the source is exhausted (or a stop was requested) AND every
  /// pending/outbox message has been delivered. Thread-safe: reflects the
  /// state as of the feeder's last completed Step.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

 private:
  bool StepImpl() {
    std::size_t delivered = 0;
    delivered += PushOutbox(&left_outbox_, ports_.left);
    delivered += PushOutbox(&right_outbox_, ports_.right);
    bool progress = delivered > 0;

    if (stop_requested_.load(std::memory_order_acquire)) {
      FlushPending();
      delivered += PushOutbox(&left_outbox_, ports_.left);
      delivered += PushOutbox(&right_outbox_, ports_.right);
      NoteDelivered(delivered);
      return progress || delivered > 0;
    }

    if (!started_) {
      start_wall_ns_ = NowNs();
      started_ = true;
    }

    int produced = 0;
    const int64_t now = NowNs();
    while (produced < options_.max_events_per_step) {
      if (exhausted_) break;
      if (left_outbox_.size() >= options_.max_outbox ||
          right_outbox_.size() >= options_.max_outbox) {
        break;  // downstream backpressure: hold *both* flows back
      }
      if (!have_next_ && !source_->Next(&next_event_)) {
        exhausted_ = true;
        break;
      }
      have_next_ = true;
      if (options_.paced) {
        const int64_t due = start_wall_ns_ + next_event_.ts * 1000;
        if (due > now) break;  // not yet due
      }
      Route(next_event_);
      have_next_ = false;
      ++produced;
      progress = true;
    }

    if (exhausted_ && !have_next_) FlushPending();

    // If an expiry is gate-blocked, the tuple it waits for may still sit in
    // the opposite pending batch; flush so the pipeline can complete it.
    if (GateBlocked(left_outbox_) || GateBlocked(right_outbox_)) {
      FlushPending();
    }

    const std::size_t pushed = PushOutbox(&left_outbox_, ports_.left) +
                               PushOutbox(&right_outbox_, ports_.right);
    delivered += pushed;
    progress |= pushed > 0;
    NoteDelivered(delivered);

    // Saturation backoff: at the backpressure point the consumer usually
    // drains a trickle every step, so Step() keeps returning true and the
    // executor's own idle backoff (which only engages on false) never
    // fires — the feeder thread pegs a core re-scanning a full outbox. Key
    // the pause on the state that actually gates production: an outbox
    // still at/over the bound after the final push means the next step
    // cannot produce either, so yielding costs no throughput.
    if (left_outbox_.size() >= options_.max_outbox ||
        right_outbox_.size() >= options_.max_outbox) {
      backoff_.Pause();
    } else {
      backoff_.Reset();
    }
    return progress;
  }

 public:
  uint64_t arrivals_pushed(StreamSide side) const {
    return side == StreamSide::kR
               ? r_pushed_.load(std::memory_order_relaxed)
               : s_pushed_.load(std::memory_order_relaxed);
  }

  int64_t start_wall_ns() const { return start_wall_ns_; }

 private:
  void Route(const DriverEvent<R, S>& event) {
    const int64_t wall =
        options_.paced ? start_wall_ns_ + event.ts * 1000 : NowNs();
    switch (event.op) {
      case DriverOp::kArriveR: {
        r_arrival_order_.AssertAdvance(static_cast<long long>(event.seq),
                                       "Feeder", "R arrival seq",
                                       /*strict=*/true);
        if (ShedsArrival(StreamSide::kR, event.seq, wall, &left_pending_)) {
          break;  // consumed its seq, never reaches a channel
        }
        FlushGaps(StreamSide::kR);  // punctuate ahead of the admitted tuple
        FlowMsg<R> msg;
        msg.kind = MsgKind::kArrival;
        msg.seq = event.seq;
        msg.ts = event.ts;
        msg.arrival_wall_ns = wall;
        msg.payload = event.r;
        left_pending_.push_back(msg);
        r_pushed_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case DriverOp::kArriveS: {
        s_arrival_order_.AssertAdvance(static_cast<long long>(event.seq),
                                       "Feeder", "S arrival seq",
                                       /*strict=*/true);
        if (ShedsArrival(StreamSide::kS, event.seq, wall, &right_pending_)) {
          break;
        }
        FlushGaps(StreamSide::kS);
        FlowMsg<S> msg;
        msg.kind = MsgKind::kArrival;
        msg.seq = event.seq;
        msg.ts = event.ts;
        msg.arrival_wall_ns = wall;
        msg.payload = event.s;
        right_pending_.push_back(msg);
        s_pushed_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case DriverOp::kExpireR: {
        r_expiry_order_.AssertAdvance(static_cast<long long>(event.seq),
                                      "Feeder", "R expiry seq",
                                      /*strict=*/true);
        if (ExpiryShed(StreamSide::kR, event.seq)) break;  // window never held it
        // R expiries enter at the right end and travel right-to-left.
        FlowMsg<S> msg;
        msg.kind = MsgKind::kExpiry;
        msg.ref_side = StreamSide::kR;
        msg.seq = event.seq;
        msg.ts = event.ts;
        right_pending_.push_back(msg);
        break;
      }
      case DriverOp::kExpireS: {
        s_expiry_order_.AssertAdvance(static_cast<long long>(event.seq),
                                      "Feeder", "S expiry seq",
                                      /*strict=*/true);
        if (ExpiryShed(StreamSide::kS, event.seq)) break;
        FlowMsg<R> msg;
        msg.kind = MsgKind::kExpiry;
        msg.ref_side = StreamSide::kS;
        msg.seq = event.seq;
        msg.ts = event.ts;
        left_pending_.push_back(msg);
        break;
      }
      case DriverOp::kFlushR: {
        FlowMsg<R> msg;
        msg.kind = MsgKind::kFlush;
        left_pending_.push_back(msg);
        break;
      }
      case DriverOp::kFlushS: {
        FlowMsg<S> msg;
        msg.kind = MsgKind::kFlush;
        right_pending_.push_back(msg);
        break;
      }
    }
    if (static_cast<int>(left_pending_.size()) >= options_.batch_size) {
      MoveToOutbox(&left_pending_, &left_outbox_);
    }
    if (static_cast<int>(right_pending_.size()) >= options_.batch_size) {
      MoveToOutbox(&right_pending_, &right_outbox_);
    }
  }

  void FlushPending() {
    // Close out any still-open loss gaps first: at end of stream (or a
    // gate-forced flush) there is no "next admitted arrival" to carry them.
    FlushGaps(StreamSide::kR);
    FlushGaps(StreamSide::kS);
    if (!left_pending_.empty()) MoveToOutbox(&left_pending_, &left_outbox_);
    if (!right_pending_.empty()) MoveToOutbox(&right_pending_, &right_outbox_);
  }

  // -- Overload control (DESIGN.md Section 12) -------------------------------

  /// Admission decision for one incoming arrival. Returns true when the
  /// incoming tuple is shed. Under kDropOldest the victim is the oldest
  /// same-side arrival still waiting in the pending batch (anything already
  /// in the outbox/channel is on its way and no longer at ingest) and the
  /// incoming tuple is admitted in its place; with no waiting victim the
  /// policy degrades to dropping the incoming tuple.
  template <typename T>
  bool ShedsArrival(StreamSide side, Seq seq, int64_t wall,
                    std::vector<FlowMsg<T>>* pending) {
    AdmissionController* adm = options_.admission;
    if (adm == nullptr) return false;
    if (!adm->ShouldShed(side, seq, NowNs(), wall, IngestBacklog())) {
      return false;
    }
    if (adm->policy() == OverloadPolicy::kDropOldest &&
        !adm->has_force_shed()) {
      for (auto it = pending->begin(); it != pending->end(); ++it) {
        if (it->kind == MsgKind::kArrival) {
          adm->RecordShed(side, it->seq);
          NoteShedSeq(side, it->seq);
          pending->erase(it);
          (side == StreamSide::kR ? r_pushed_ : s_pushed_)
              .fetch_sub(1, std::memory_order_relaxed);
          return false;  // incoming admitted in the victim's place
        }
      }
    }
    adm->RecordShed(side, seq);
    NoteShedSeq(side, seq);
    return true;
  }

  /// Drains recorded gaps of `side` into in-band loss punctuations on the
  /// flow the shed arrivals would have taken (R -> left/l2r, S -> right/r2l).
  void FlushGaps(StreamSide side) {
    AdmissionController* adm = options_.admission;
    if (adm == nullptr || !adm->HasGap(side)) return;
    LossBound gap;
    while (adm->TakeGap(side, &gap)) {
      if (side == StreamSide::kR) {
        left_pending_.push_back(
            MakeLossPunct<R>(side, gap.first_seq, gap.count));
      } else {
        right_pending_.push_back(
            MakeLossPunct<S>(side, gap.first_seq, gap.count));
      }
    }
  }

  /// Shed seqs per side, coalesced into ranges consumed front-to-back by
  /// ExpiryShed. Both are seq-monotone per side: sheds because every shed
  /// seq (victim or incoming) exceeds all earlier sheds of its side, and
  /// expiries because the windows are FIFO per side.
  void NoteShedSeq(StreamSide side, Seq seq) {
    auto& ranges = side == StreamSide::kR ? shed_r_ranges_ : shed_s_ranges_;
    // Contract: sheds are recorded in strictly advancing seq order — an
    // out-of-order shed would corrupt the coalesced ranges and let its
    // expiry slip past ExpiryShed into windows that never held the tuple.
    (side == StreamSide::kR ? r_shed_order_ : s_shed_order_)
        .AssertAdvance(static_cast<long long>(seq), "Feeder", "shed seq",
                       /*strict=*/true);
    if (!ranges.empty() && ranges.back().second + 1 == seq) {
      ranges.back().second = seq;
    } else {
      ranges.emplace_back(seq, seq);
    }
  }

  /// True when the expiry references a tuple that was shed at ingest: the
  /// windows never held it, so the expiry must not enter the pipeline
  /// (an expiry for an absent tuple would tombstone-leak in LLHJ and, worse,
  /// deadlock the expiry gate, which waits for a completion that can never
  /// be published).
  bool ExpiryShed(StreamSide side, Seq seq) {
    if (options_.admission == nullptr) return false;
    auto& ranges = side == StreamSide::kR ? shed_r_ranges_ : shed_s_ranges_;
    while (!ranges.empty() && ranges.front().second < seq) ranges.pop_front();
    return !ranges.empty() && ranges.front().first <= seq;
  }

  /// Service-rate sensing for the admission projection: what this feeder
  /// handed to the channels this step is what the pipeline drained (modulo
  /// the bounded ring capacity), so it is the honest per-message service
  /// signal — see AdmissionController::ObserveDelivered.
  void NoteDelivered(std::size_t delivered) {
    if (options_.admission != nullptr && delivered > 0) {
      options_.admission->ObserveDelivered(delivered, NowNs());
    }
  }

  /// Driver-visible backlog for the admission projection: batches not yet
  /// handed to the channels plus the occupancy of the entry channels — the
  /// latter is the instantaneous saturation signal (a full entry ring means
  /// the pipeline is behind RIGHT NOW, long before the latency EWMA, which
  /// trails by one end-to-end delay, can report it). When the high-water
  /// marks are wired, the arrivals still in flight inside the pipeline are
  /// folded in too; the measures overlap, so take the max, not the sum.
  std::size_t IngestBacklog() const {
    std::size_t n = left_pending_.size() + right_pending_.size() +
                    left_outbox_.size() + right_outbox_.size();
    n += options_.backlog_probe
             ? options_.backlog_probe()
             : ports_.left->SizeApprox() + ports_.right->SizeApprox();
    if (options_.expiry_gate != nullptr) {
      const int64_t in_flight =
          static_cast<int64_t>(r_pushed_.load(std::memory_order_relaxed) +
                               s_pushed_.load(std::memory_order_relaxed)) -
          (options_.expiry_gate->CompletedSeq(StreamSide::kR) + 1) -
          (options_.expiry_gate->CompletedSeq(StreamSide::kS) + 1);
      if (in_flight > static_cast<int64_t>(n)) {
        n = static_cast<std::size_t>(in_flight);
      }
    }
    return n;
  }

  /// FIFO delivery buffer consumed from a head cursor; keeping it a
  /// contiguous vector lets PushOutbox hand whole batches to
  /// SpscQueue::TryPushBurst (one atomic update per batch, not per tuple).
  template <typename T>
  struct Outbox {
    std::vector<FlowMsg<T>> buf;
    std::size_t head = 0;

    std::size_t size() const { return buf.size() - head; }
    bool empty() const { return head == buf.size(); }
    const FlowMsg<T>& front() const { return buf[head]; }
    void Compact() {
      if (head == buf.size()) {
        buf.clear();
        head = 0;
      } else if (head >= 1024) {
        // Under sustained backpressure the outbox may never fully empty;
        // reclaim the delivered prefix so memory stays proportional to the
        // (bounded) undelivered backlog, not to total traffic.
        buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  template <typename T>
  static void MoveToOutbox(std::vector<FlowMsg<T>>* pending,
                           Outbox<T>* outbox) {
    outbox->buf.insert(outbox->buf.end(), pending->begin(), pending->end());
    pending->clear();
  }

  template <typename T>
  bool GateBlocked(const Outbox<T>& outbox) const {
    if (outbox.empty() || options_.expiry_gate == nullptr) return false;
    const FlowMsg<T>& front = outbox.front();
    return front.kind == MsgKind::kExpiry &&
           options_.expiry_gate->CompletedSeq(front.ref_side) <
               static_cast<int64_t>(front.seq);
  }

  /// Returns the number of messages delivered to the channel.
  template <typename T>
  std::size_t PushOutbox(Outbox<T>* outbox, SpscQueue<FlowMsg<T>>* q) {
    std::size_t delivered = 0;
    while (!outbox->empty()) {
      const FlowMsg<T>* msgs = outbox->buf.data() + outbox->head;
      const std::size_t avail = outbox->size();
      // Longest deliverable prefix: everything up to the first expiry whose
      // tuple has not completed its expedition yet (flow order preserved —
      // messages behind a gated expiry wait with it).
      std::size_t run = avail;
      if (options_.expiry_gate != nullptr) {
        run = 0;
        while (run < avail) {
          const FlowMsg<T>& m = msgs[run];
          if (m.kind == MsgKind::kExpiry &&
              options_.expiry_gate->CompletedSeq(m.ref_side) <
                  static_cast<int64_t>(m.seq)) {
            break;
          }
          ++run;
        }
      }
      if (run == 0) break;  // front expiry still gated
      const std::size_t pushed = q->TryPushBurst(msgs, run);
      outbox->head += pushed;
      delivered += pushed;
      if (pushed < run || run < avail) break;  // channel full or gated
    }
    outbox->Compact();
    return delivered;
  }

  PipelinePorts<R, S> ports_;
  WorkloadSource<R, S>* source_;
  Options options_;

  std::vector<FlowMsg<R>> left_pending_;
  std::vector<FlowMsg<S>> right_pending_;
  Outbox<R> left_outbox_;
  Outbox<S> right_outbox_;

  DriverEvent<R, S> next_event_{};
  bool have_next_ = false;
  bool exhausted_ = false;
  bool started_ = false;
  int64_t start_wall_ns_ = 0;

  Backoff backoff_;  // saturation backoff (see StepImpl)
  VecDeque<std::pair<Seq, Seq>> shed_r_ranges_;  // [first, last], monotone
  VecDeque<std::pair<Seq, Seq>> shed_s_ranges_;

  // Checked-contracts state (DESIGN.md Section 14): per-side driver-order
  // protocol — arrival and expiry seqs strictly advance, and shed ranges
  // are recorded in strictly advancing order, which together make the
  // shed-range consumption in ExpiryShed sound (front-to-back popping
  // never discards a range a later expiry still needs).
  [[no_unique_address]] contracts::Monotone r_arrival_order_;
  [[no_unique_address]] contracts::Monotone s_arrival_order_;
  [[no_unique_address]] contracts::Monotone r_expiry_order_;
  [[no_unique_address]] contracts::Monotone s_expiry_order_;
  [[no_unique_address]] contracts::Monotone r_shed_order_;
  [[no_unique_address]] contracts::Monotone s_shed_order_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> finished_{false};
  std::atomic<uint64_t> r_pushed_{0};
  std::atomic<uint64_t> s_pushed_{0};
};

}  // namespace sjoin
