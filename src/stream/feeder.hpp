// The driver threads of the paper (Figure 15) rolled into one Steppable
// feeder: it pulls driver events from a WorkloadSource, routes them to the
// correct pipeline end, and reproduces the prototype's batching behaviour —
// tuples are accumulated into fixed-size batches before being pushed into
// the pipeline (Section 7.3: batch size 64 by default, 4 for the
// reduced-batching experiment of Figure 20). Batching delay is therefore
// part of measured latency, exactly as in the paper.
//
// Two operation modes:
//  * max-rate: events are released as fast as the pipeline accepts them
//    (throughput experiments — "maximum throughput the system could sustain
//    without dropping any data": bounded queues provide the backpressure).
//  * paced: event timestamps are mapped onto the wall clock
//    (wall = start + ts), and tuples are released only once due
//    (latency experiments at a fixed input rate).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "runtime/executor.hpp"
#include "stream/hwm.hpp"
#include "stream/message.hpp"
#include "stream/ports.hpp"
#include "stream/source.hpp"

namespace sjoin {

template <typename R, typename S>
class Feeder : public Steppable {
 public:
  struct Options {
    int batch_size = 64;   ///< per-side batch before pushing (paper: 64)
    bool paced = false;    ///< honor event timestamps against wall clock
    int max_events_per_step = 512;
    /// Stop generating events while either side's undelivered backlog
    /// exceeds this bound (0 = derive from batch size). This couples the
    /// two flows: if one pipeline end exerts backpressure, the driver stops
    /// advancing the *other* flow too, so the streams can never skew by
    /// more than outbox + channel capacity — the bounded-lag precondition
    /// of the handshake-join protocols (DESIGN.md).
    std::size_t max_outbox = 0;
    /// When set (LLHJ), an expiry message is released into its flow only
    /// after the expiring tuple has *completed its expedition* (end nodes
    /// publish completion through the high-water marks). This preserves
    /// exactness even when the driver runs far ahead of the pipeline: no
    /// tuple can be met in flight by an opposite tuple that entered behind
    /// its expiry. Messages queued behind a gated expiry wait with it, so
    /// flow order is preserved. In the paper's regime (windows of seconds,
    /// expeditions of microseconds) the gate never throttles.
    const HighWaterMarks* expiry_gate = nullptr;
  };

  Feeder(PipelinePorts<R, S> ports, WorkloadSource<R, S>* source,
         const Options& options)
      : ports_(ports), source_(source), options_(options) {
    if (options_.max_outbox == 0) {
      options_.max_outbox = std::max<std::size_t>(
          16, 2 * static_cast<std::size_t>(options_.batch_size));
    }
  }

  bool Step() override {
    const bool progress = StepImpl();
    // Publish the drained state once per step: finished() is polled from
    // other threads, so it must not inspect the feeder's working state.
    finished_.store((exhausted_ ||
                     stop_requested_.load(std::memory_order_acquire)) &&
                        left_pending_.empty() && right_pending_.empty() &&
                        left_outbox_.empty() && right_outbox_.empty(),
                    std::memory_order_release);
    return progress;
  }

  /// Stop producing new events; pending batches are still flushed.
  void RequestStop() { stop_requested_.store(true, std::memory_order_release); }

  /// True once the source is exhausted (or a stop was requested) AND every
  /// pending/outbox message has been delivered. Thread-safe: reflects the
  /// state as of the feeder's last completed Step.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

 private:
  bool StepImpl() {
    bool progress = false;
    progress |= PushOutbox(&left_outbox_, ports_.left);
    progress |= PushOutbox(&right_outbox_, ports_.right);

    if (stop_requested_.load(std::memory_order_acquire)) {
      FlushPending();
      progress |= PushOutbox(&left_outbox_, ports_.left);
      progress |= PushOutbox(&right_outbox_, ports_.right);
      return progress;
    }

    if (!started_) {
      start_wall_ns_ = NowNs();
      started_ = true;
    }

    int produced = 0;
    const int64_t now = NowNs();
    while (produced < options_.max_events_per_step) {
      if (exhausted_) break;
      if (left_outbox_.size() >= options_.max_outbox ||
          right_outbox_.size() >= options_.max_outbox) {
        break;  // downstream backpressure: hold *both* flows back
      }
      if (!have_next_ && !source_->Next(&next_event_)) {
        exhausted_ = true;
        break;
      }
      have_next_ = true;
      if (options_.paced) {
        const int64_t due = start_wall_ns_ + next_event_.ts * 1000;
        if (due > now) break;  // not yet due
      }
      Route(next_event_);
      have_next_ = false;
      ++produced;
      progress = true;
    }

    if (exhausted_ && !have_next_) FlushPending();

    // If an expiry is gate-blocked, the tuple it waits for may still sit in
    // the opposite pending batch; flush so the pipeline can complete it.
    if (GateBlocked(left_outbox_) || GateBlocked(right_outbox_)) {
      FlushPending();
    }

    progress |= PushOutbox(&left_outbox_, ports_.left);
    progress |= PushOutbox(&right_outbox_, ports_.right);
    return progress;
  }

 public:
  uint64_t arrivals_pushed(StreamSide side) const {
    return side == StreamSide::kR
               ? r_pushed_.load(std::memory_order_relaxed)
               : s_pushed_.load(std::memory_order_relaxed);
  }

  int64_t start_wall_ns() const { return start_wall_ns_; }

 private:
  void Route(const DriverEvent<R, S>& event) {
    const int64_t wall =
        options_.paced ? start_wall_ns_ + event.ts * 1000 : NowNs();
    switch (event.op) {
      case DriverOp::kArriveR: {
        FlowMsg<R> msg;
        msg.kind = MsgKind::kArrival;
        msg.seq = event.seq;
        msg.ts = event.ts;
        msg.arrival_wall_ns = wall;
        msg.payload = event.r;
        left_pending_.push_back(msg);
        r_pushed_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case DriverOp::kArriveS: {
        FlowMsg<S> msg;
        msg.kind = MsgKind::kArrival;
        msg.seq = event.seq;
        msg.ts = event.ts;
        msg.arrival_wall_ns = wall;
        msg.payload = event.s;
        right_pending_.push_back(msg);
        s_pushed_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case DriverOp::kExpireR: {
        // R expiries enter at the right end and travel right-to-left.
        FlowMsg<S> msg;
        msg.kind = MsgKind::kExpiry;
        msg.ref_side = StreamSide::kR;
        msg.seq = event.seq;
        msg.ts = event.ts;
        right_pending_.push_back(msg);
        break;
      }
      case DriverOp::kExpireS: {
        FlowMsg<R> msg;
        msg.kind = MsgKind::kExpiry;
        msg.ref_side = StreamSide::kS;
        msg.seq = event.seq;
        msg.ts = event.ts;
        left_pending_.push_back(msg);
        break;
      }
      case DriverOp::kFlushR: {
        FlowMsg<R> msg;
        msg.kind = MsgKind::kFlush;
        left_pending_.push_back(msg);
        break;
      }
      case DriverOp::kFlushS: {
        FlowMsg<S> msg;
        msg.kind = MsgKind::kFlush;
        right_pending_.push_back(msg);
        break;
      }
    }
    if (static_cast<int>(left_pending_.size()) >= options_.batch_size) {
      MoveToOutbox(&left_pending_, &left_outbox_);
    }
    if (static_cast<int>(right_pending_.size()) >= options_.batch_size) {
      MoveToOutbox(&right_pending_, &right_outbox_);
    }
  }

  void FlushPending() {
    if (!left_pending_.empty()) MoveToOutbox(&left_pending_, &left_outbox_);
    if (!right_pending_.empty()) MoveToOutbox(&right_pending_, &right_outbox_);
  }

  /// FIFO delivery buffer consumed from a head cursor; keeping it a
  /// contiguous vector lets PushOutbox hand whole batches to
  /// SpscQueue::TryPushBurst (one atomic update per batch, not per tuple).
  template <typename T>
  struct Outbox {
    std::vector<FlowMsg<T>> buf;
    std::size_t head = 0;

    std::size_t size() const { return buf.size() - head; }
    bool empty() const { return head == buf.size(); }
    const FlowMsg<T>& front() const { return buf[head]; }
    void Compact() {
      if (head == buf.size()) {
        buf.clear();
        head = 0;
      } else if (head >= 1024) {
        // Under sustained backpressure the outbox may never fully empty;
        // reclaim the delivered prefix so memory stays proportional to the
        // (bounded) undelivered backlog, not to total traffic.
        buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  template <typename T>
  static void MoveToOutbox(std::vector<FlowMsg<T>>* pending,
                           Outbox<T>* outbox) {
    outbox->buf.insert(outbox->buf.end(), pending->begin(), pending->end());
    pending->clear();
  }

  template <typename T>
  bool GateBlocked(const Outbox<T>& outbox) const {
    if (outbox.empty() || options_.expiry_gate == nullptr) return false;
    const FlowMsg<T>& front = outbox.front();
    return front.kind == MsgKind::kExpiry &&
           options_.expiry_gate->CompletedSeq(front.ref_side) <
               static_cast<int64_t>(front.seq);
  }

  template <typename T>
  bool PushOutbox(Outbox<T>* outbox, SpscQueue<FlowMsg<T>>* q) {
    bool progress = false;
    while (!outbox->empty()) {
      const FlowMsg<T>* msgs = outbox->buf.data() + outbox->head;
      const std::size_t avail = outbox->size();
      // Longest deliverable prefix: everything up to the first expiry whose
      // tuple has not completed its expedition yet (flow order preserved —
      // messages behind a gated expiry wait with it).
      std::size_t run = avail;
      if (options_.expiry_gate != nullptr) {
        run = 0;
        while (run < avail) {
          const FlowMsg<T>& m = msgs[run];
          if (m.kind == MsgKind::kExpiry &&
              options_.expiry_gate->CompletedSeq(m.ref_side) <
                  static_cast<int64_t>(m.seq)) {
            break;
          }
          ++run;
        }
      }
      if (run == 0) break;  // front expiry still gated
      const std::size_t pushed = q->TryPushBurst(msgs, run);
      outbox->head += pushed;
      progress |= pushed > 0;
      if (pushed < run || run < avail) break;  // channel full or gated
    }
    outbox->Compact();
    return progress;
  }

  PipelinePorts<R, S> ports_;
  WorkloadSource<R, S>* source_;
  Options options_;

  std::vector<FlowMsg<R>> left_pending_;
  std::vector<FlowMsg<S>> right_pending_;
  Outbox<R> left_outbox_;
  Outbox<S> right_outbox_;

  DriverEvent<R, S> next_event_{};
  bool have_next_ = false;
  bool exhausted_ = false;
  bool started_ = false;
  int64_t start_wall_ns_ = 0;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> finished_{false};
  std::atomic<uint64_t> r_pushed_{0};
  std::atomic<uint64_t> s_pushed_{0};
};

}  // namespace sjoin
