// Result collector (paper Section 5, Figure 15/16). Every pipeline node
// owns a dedicated result queue; the collector periodically vacuums all of
// them into the single physical output stream. With punctuation enabled it
// implements the Section 6.1.3 protocol:
//
//   1. read both high-water marks, t_p = min(t_max,R, t_max,S)
//   2. vacuum all result queues, forwarding result tuples
//   3. emit the punctuation <t_p> (if it advanced)
//
// Reading the marks *before* vacuuming is what makes the punctuation safe:
// every result produced after step 1 is driven by a tuple that had not yet
// finished its expedition, whose timestamp is therefore >= t_p.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "runtime/executor.hpp"
#include "runtime/spsc_queue.hpp"
#include "stream/handlers.hpp"
#include "stream/hwm.hpp"
#include "stream/message.hpp"

namespace sjoin {

template <typename R, typename S>
class Collector : public Steppable {
 public:
  /// `hwm` may be null; punctuations are emitted only when punctuate=true
  /// and a HighWaterMarks instance is supplied.
  Collector(std::vector<SpscQueue<ResultMsg<R, S>>*> queues,
            OutputHandler<R, S>* handler, HighWaterMarks* hwm = nullptr,
            bool punctuate = false)
      : queues_(std::move(queues)),
        handler_(handler),
        hwm_(hwm),
        punctuate_(punctuate && hwm != nullptr) {}

  /// One vacuum round. Returns the number of results forwarded. Queues are
  /// drained in bursts (one consumer-index update per run, not per result),
  /// mirroring the burst transport of the pipeline channels. Epoch markers
  /// (kEpochMarkQuery, see stream/message.hpp) are aggregated instead of
  /// forwarded: once every queue has yielded the marker of epoch E, FIFO
  /// order guarantees no result of an epoch < E is still queued, and the
  /// handler is told via OnEpochDrained(E).
  std::size_t VacuumOnce() {
    Timestamp tp = kMinTimestamp;
    if (punctuate_) tp = hwm_->SafeMin();  // step 1: read marks first

    std::size_t drained = 0;
    for (auto* queue : queues_) {  // step 2: vacuum
      for (;;) {
        ResultMsg<R, S>* run = nullptr;
        const std::size_t n = queue->PeekBurst(&run);
        if (n == 0) break;
        for (std::size_t i = 0; i < n; ++i) {
          if (IsEpochMark(run[i])) {
            OnEpochMark(run[i].epoch);
          } else if (IsLossMark(run[i])) {
            // Overload-control loss bound (exactly one per shed gap, from
            // the pipeline entry node): translate, don't forward.
            const LossBound bound = DecodeLossMark(run[i]);
            (bound.side == StreamSide::kR ? lost_r_ : lost_s_) += bound.count;
            ++loss_bounds_;
            handler_->OnLoss(bound.side, bound.first_seq, bound.count);
          } else {
            handler_->OnResult(run[i]);
            ++drained;
          }
        }
        queue->ConsumeBurst(n);
      }
    }
    total_ += drained;

    if (punctuate_ && tp != kMinTimestamp && tp > last_punctuation_) {
      handler_->OnPunctuation(tp);  // step 3
      last_punctuation_ = tp;
      ++punctuations_emitted_;
    }
    return drained;
  }

  bool Step() override { return VacuumOnce() > 0; }

  /// Placement hook: pulls every result ring onto the calling (consumer)
  /// thread's NUMA node. Runs automatically via OnThreadStart when the
  /// collector lives on an executor thread; owners that vacuum from their
  /// own thread (JoinSession, benches) call it once before the pipeline
  /// starts producing.
  void PrefaultQueues() {
    for (auto* queue : queues_) queue->PrefaultByConsumer();
  }

  void OnThreadStart() override { PrefaultQueues(); }

  uint64_t total_collected() const { return total_; }
  uint64_t punctuations_emitted() const { return punctuations_emitted_; }
  /// Overload-control accounting: tuples reported lost per side and the
  /// number of distinct loss bounds translated.
  uint64_t lost(StreamSide side) const {
    return side == StreamSide::kR ? lost_r_ : lost_s_;
  }
  uint64_t loss_bounds() const { return loss_bounds_; }
  Timestamp last_punctuation() const { return last_punctuation_; }
  /// Highest epoch whose marker arrived from every node (all results of
  /// older epochs have been forwarded to the handler).
  Epoch drained_epoch() const { return drained_epoch_; }

 private:
  /// Counts the per-node epoch markers. Nodes emit markers in increasing
  /// epoch order into FIFO queues, so completion is monotone: when the
  /// count for E reaches the queue count, every result of an epoch < E has
  /// already been forwarded above.
  void OnEpochMark(Epoch epoch) {
    if (epoch_marks_.size() < static_cast<std::size_t>(epoch) + 1) {
      epoch_marks_.resize(static_cast<std::size_t>(epoch) + 1, 0);
    }
    if (++epoch_marks_[epoch] == queues_.size() && epoch > drained_epoch_) {
      drained_epoch_ = epoch;
      handler_->OnEpochDrained(epoch);
    }
  }

  std::vector<SpscQueue<ResultMsg<R, S>>*> queues_;
  OutputHandler<R, S>* handler_;
  HighWaterMarks* hwm_;
  bool punctuate_;
  Timestamp last_punctuation_ = kMinTimestamp;
  uint64_t total_ = 0;
  uint64_t punctuations_emitted_ = 0;
  uint64_t lost_r_ = 0;
  uint64_t lost_s_ = 0;
  uint64_t loss_bounds_ = 0;
  std::vector<std::size_t> epoch_marks_;  // per-epoch marker count
  Epoch drained_epoch_ = 0;
};

}  // namespace sjoin
