// Wire format of the pipeline channels. Both handshake-join variants send
// exactly these message kinds between neighbouring nodes:
//
//   left-to-right flow (FlowMsg<R>):  R arrivals, acknowledgements of
//     forwarded S tuples, expiry messages for S tuples, flush (R side).
//   right-to-left flow (FlowMsg<S>):  S arrivals, expiry messages for R
//     tuples, expedition-end messages for R tuples (LLHJ only, paper
//     Section 4.2.3), flush (S side).
//
// Messages are PODs so the SPSC channels stay trivially copyable.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace sjoin {

enum class MsgKind : uint8_t {
  kArrival = 0,        ///< new or relocated tuple (payload valid)
  kAck = 1,            ///< acknowledgement of a forwarded opposite-stream tuple
  kExpiry = 2,         ///< window expiry of an opposite-stream tuple
  kExpeditionEnd = 3,  ///< LLHJ: tuple `seq` of R finished its expedition
  kFlush = 4,          ///< HSJ: force relocation of all resident tuples
  /// Query-epoch punctuation: the driver installed query epoch `epoch` at
  /// exactly this flow position. Injected into BOTH flows at the same
  /// driver-order boundary and cascaded node to node, so every node
  /// switches query sets at the same stream position per flow. A node that
  /// has seen the punctuation on both flows can no longer emit results of
  /// earlier epochs and publishes an epoch marker into its result queue
  /// (retired-epoch draining; see DESIGN.md Section 10).
  kEpochChange = 5,
  /// Loss punctuation: overload control shed a contiguous run of arrivals
  /// of stream `ref_side` AT INGEST (the shed tuples never entered the
  /// pipeline — no store ever held them, no expiry will ever reference
  /// them). The message rides the same flow the shed arrivals would have
  /// taken, so the loss bound is delivered in-band at its exact stream
  /// position. Field reuse (kept POD, no layout change): `seq` is the
  /// first shed sequence number and `ts` carries the run length
  /// (see MakeLossPunct / LossPunctCount). The pipeline entry node
  /// translates it into a result-queue loss marker (kLossMarkQuery) and
  /// does NOT cascade it — exactly-once accounting per gap.
  kLossPunctuation = 6,
};

/// FlowMsg flag bits.
inline constexpr uint8_t kMsgRelocated = 0x1;  ///< HSJ: relocation, not fresh
/// HSJ: the tuple's expiry caught it before it finished traversing the
/// pipeline. It continues as a non-resident "dying" traveller: it still
/// scans the remaining opposite segments (meeting partners that arrived
/// before its expiry) but is never stored again and self-discards at the
/// pipeline end. This realizes the idealized algorithm's "a tuple exits the
/// far end exactly when it expires" under discrete relocation.
inline constexpr uint8_t kMsgDying = 0x2;

/// A message travelling through one pipeline direction. T is the tuple type
/// of the stream that flows in this direction (payload is only meaningful
/// for kArrival; kAck/kExpiry reference an *opposite*-stream tuple by seq).
template <typename T>
struct FlowMsg {
  MsgKind kind = MsgKind::kArrival;
  uint8_t flags = 0;
  /// Which stream the referenced tuple belongs to. Meaningful for kExpiry:
  /// an expiry normally travels opposite to its tuple's flow, but while
  /// *chasing* a relocating tuple (HSJ, see DESIGN.md) it may ride either
  /// flow, so the side must be explicit.
  StreamSide ref_side = StreamSide::kR;
  uint16_t hops = 0;    ///< diagnostic hop counter (expiry chase guard)
  /// kArrival: the query epoch the tuple was pushed under (travels with the
  /// tuple through stores and relocations). kEpochChange: the epoch being
  /// installed at this flow position.
  Epoch epoch = 0;
  NodeId home = kNoNode;
  Seq seq = 0;
  Timestamp ts = 0;
  int64_t arrival_wall_ns = 0;
  T payload{};
};

/// True for tuple-arrival messages — the batchable kind of both pipeline
/// protocols (runs of arrivals are probed against the window stores in one
/// pass; control messages are handled one by one).
template <typename T>
constexpr bool IsArrival(const FlowMsg<T>& m) {
  return m.kind == MsgKind::kArrival;
}

/// Builds an arrival message from a stamped tuple.
template <typename T>
FlowMsg<T> MakeArrival(const Stamped<T>& t) {
  FlowMsg<T> msg;
  msg.kind = MsgKind::kArrival;
  msg.seq = t.seq;
  msg.ts = t.ts;
  msg.epoch = t.epoch;
  msg.arrival_wall_ns = t.arrival_wall_ns;
  msg.payload = t.value;
  return msg;
}

/// Builds the in-band loss punctuation for a shed run of `side` arrivals
/// beginning at sequence `first_seq`, `count` tuples long. T is the tuple
/// type of the flow the message rides (R-side losses ride the left flow,
/// S-side losses the right flow — the direction their arrivals would have
/// travelled).
template <typename T>
FlowMsg<T> MakeLossPunct(StreamSide side, Seq first_seq, uint64_t count) {
  FlowMsg<T> msg;
  msg.kind = MsgKind::kLossPunctuation;
  msg.ref_side = side;
  msg.seq = first_seq;
  msg.ts = static_cast<Timestamp>(count);
  return msg;
}

/// Run length of a loss punctuation (the documented `ts` field reuse).
template <typename T>
constexpr uint64_t LossPunctCount(const FlowMsg<T>& m) {
  return static_cast<uint64_t>(m.ts);
}

/// An exact loss bound as delivered to OutputHandler::OnLoss: `count`
/// consecutive arrivals of `side`, sequence numbers
/// [first_seq, first_seq + count), were shed at ingest by overload control.
struct LossBound {
  StreamSide side = StreamSide::kR;
  Seq first_seq = 0;
  uint64_t count = 0;
};

/// Sentinel QueryId of an epoch marker in a result queue: a node that has
/// seen the kEpochChange punctuation for epoch E on both of its input flows
/// emits {query = kEpochMarkQuery, epoch = E} into its result queue. FIFO
/// queue order then guarantees that once the collector has vacuumed the
/// marker for E from every node's queue, no result of an epoch < E is still
/// undelivered — the trigger for retiring removed queries.
inline constexpr QueryId kEpochMarkQuery = static_cast<QueryId>(-1);

/// A join result as produced inside the pipeline. `ts` is the result
/// timestamp max(t_r, t_s) (paper Section 6.1.2); `ready_wall_ns` is the
/// wall-clock arrival of the later input tuple, the latency reference point.
template <typename R, typename S>
struct ResultMsg {
  R r{};
  S s{};
  Seq r_seq = 0;
  Seq s_seq = 0;
  Timestamp ts = 0;
  int64_t ready_wall_ns = 0;
  NodeId origin = kNoNode;  ///< node that evaluated the predicate
  QueryId query = 0;        ///< which registered query this pair satisfied
  /// Query epoch whose set produced this result: max of the two input
  /// tuples' push epochs — i.e. the epoch the later input was pushed under.
  Epoch epoch = 0;
};

/// True iff `m` is an epoch marker, not a join result.
template <typename R, typename S>
constexpr bool IsEpochMark(const ResultMsg<R, S>& m) {
  return m.query == kEpochMarkQuery;
}

/// Sentinel QueryId of a loss marker in a result queue: the pipeline entry
/// node that consumes a kLossPunctuation republishes the bound into its
/// result queue under this id (field reuse: r_seq = first shed seq,
/// s_seq = run length, ts = shed side as 0/1). FIFO queue order delivers
/// the bound to the collector at its in-band position; the collector
/// translates it into OutputHandler::OnLoss instead of forwarding it.
inline constexpr QueryId kLossMarkQuery = static_cast<QueryId>(-2);

/// True iff `m` is a loss marker, not a join result.
template <typename R, typename S>
constexpr bool IsLossMark(const ResultMsg<R, S>& m) {
  return m.query == kLossMarkQuery;
}

template <typename R, typename S>
ResultMsg<R, S> MakeLossMark(StreamSide side, Seq first_seq, uint64_t count,
                             NodeId origin) {
  ResultMsg<R, S> mark;
  mark.query = kLossMarkQuery;
  mark.r_seq = first_seq;
  mark.s_seq = count;
  mark.ts = side == StreamSide::kR ? 0 : 1;
  mark.origin = origin;
  return mark;
}

/// Decodes a kLossMarkQuery result back into the exact bound.
template <typename R, typename S>
constexpr LossBound DecodeLossMark(const ResultMsg<R, S>& m) {
  return LossBound{m.ts == 0 ? StreamSide::kR : StreamSide::kS, m.r_seq,
                   m.s_seq};
}

template <typename R, typename S>
ResultMsg<R, S> MakeResult(const Stamped<R>& r, const Stamped<S>& s,
                           NodeId origin) {
  ResultMsg<R, S> out;
  out.r = r.value;
  out.s = s.value;
  out.r_seq = r.seq;
  out.s_seq = s.seq;
  out.ts = r.ts > s.ts ? r.ts : s.ts;
  out.ready_wall_ns = r.arrival_wall_ns > s.arrival_wall_ns
                          ? r.arrival_wall_ns
                          : s.arrival_wall_ns;
  out.origin = origin;
  out.epoch = r.epoch > s.epoch ? r.epoch : s.epoch;
  return out;
}

}  // namespace sjoin
