// The external driver of the paper (Section 4.2.4): it alone knows the
// window specification and translates a trace of arrivals into an explicit
// sequence of arrivals and expiries — the "driver script". Every engine
// (Kang, CellJoin, HSJ, LLHJ) consumes the same script, which is what makes
// exact oracle comparisons possible: the script fixes the per-flow total
// orders that define the result set.
//
// Expiry rules:
//  * time window W:  a tuple with timestamp t_v expires strictly when the
//    driver processes an arrival with t > t_v + W (so t - t_v <= W still
//    matches — the inclusive boundary all engines share).
//  * count window k: after an arrival pushes its own stream past k live
//    tuples, the oldest tuple of that stream expires immediately.
//
// Flush events (kFlushR/kFlushS) are appended on request. They force the
// original handshake join to relocate all resident tuples so that pairs
// still separated inside the pipeline meet; LLHJ and the baselines ignore
// them (their matching is driven entirely by arrivals). See DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/vec_deque.hpp"
#include "stream/trace.hpp"
#include "stream/window.hpp"

namespace sjoin {

enum class DriverOp : uint8_t {
  kArriveR,
  kArriveS,
  kExpireR,
  kExpireS,
  kFlushR,
  kFlushS,
};

constexpr bool IsArrival(DriverOp op) {
  return op == DriverOp::kArriveR || op == DriverOp::kArriveS;
}
constexpr bool IsExpiry(DriverOp op) {
  return op == DriverOp::kExpireR || op == DriverOp::kExpireS;
}

/// One driver action. For arrivals the matching payload field is set; for
/// expiries only `seq`/`ts` of the expiring tuple are meaningful.
template <typename R, typename S>
struct DriverEvent {
  DriverOp op = DriverOp::kArriveR;
  Seq seq = 0;
  Timestamp ts = 0;
  R r{};
  S s{};
};

template <typename R, typename S>
struct DriverScript {
  std::vector<DriverEvent<R, S>> events;
  Seq r_count = 0;  ///< number of R arrivals (seqs 0..r_count-1)
  Seq s_count = 0;
};

/// Incremental arrival -> arrivals+expiries translator. Used both by
/// BuildDriverScript (offline) and by the online feeders.
class ExpiryTracker {
 public:
  ExpiryTracker(WindowSpec wr, WindowSpec ws) : wr_(wr), ws_(ws) {}

  /// Expiries (side, seq) that must be emitted *before* an arrival with
  /// timestamp `t` (time-window rule). Call repeatedly until false.
  bool PopTimeExpiry(Timestamp t, StreamSide* side, Seq* seq,
                     Timestamp* expired_ts) {
    // Oldest-first across both streams so expiry order is deterministic.
    const bool r_due = wr_.is_time() && !live_r_.empty() &&
                       live_r_.front().ts + wr_.size < t;
    const bool s_due = ws_.is_time() && !live_s_.empty() &&
                       live_s_.front().ts + ws_.size < t;
    if (!r_due && !s_due) return false;
    bool take_r = r_due;
    if (r_due && s_due) take_r = live_r_.front().ts <= live_s_.front().ts;
    auto& q = take_r ? live_r_ : live_s_;
    *side = take_r ? StreamSide::kR : StreamSide::kS;
    *seq = q.front().seq;
    *expired_ts = q.front().ts;
    q.pop_front();
    return true;
  }

  /// Registers an arrival; returns (via out params) whether a count-window
  /// expiry of the same side must be emitted right after it.
  bool OnArrival(StreamSide side, Seq seq, Timestamp ts, Seq* expired_seq,
                 Timestamp* expired_ts) {
    auto& q = side == StreamSide::kR ? live_r_ : live_s_;
    const WindowSpec& spec = side == StreamSide::kR ? wr_ : ws_;
    q.push_back(Live{seq, ts});
    if (spec.is_count() && static_cast<int64_t>(q.size()) > spec.size) {
      *expired_seq = q.front().seq;
      *expired_ts = q.front().ts;
      q.pop_front();
      return true;
    }
    return false;
  }

  std::size_t live_count(StreamSide side) const {
    return side == StreamSide::kR ? live_r_.size() : live_s_.size();
  }

 private:
  struct Live {
    Seq seq;
    Timestamp ts;
  };

  WindowSpec wr_, ws_;
  // Live windows are pure FIFOs (push_back on arrival, pop_front on
  // expiry); VecDeque keeps them contiguous — the online feeders walk this
  // on every arrival, and std::deque is banned from hot-path dirs.
  VecDeque<Live> live_r_, live_s_;
};

/// Translates a trace into the full driver script.
template <typename R, typename S>
DriverScript<R, S> BuildDriverScript(const Trace<R, S>& trace, WindowSpec wr,
                                     WindowSpec ws, bool flush_at_end = true) {
  DriverScript<R, S> script;
  script.events.reserve(trace.size() * 2);
  ExpiryTracker tracker(wr, ws);

  for (const auto& event : trace) {
    StreamSide exp_side;
    Seq exp_seq;
    Timestamp exp_ts;
    while (tracker.PopTimeExpiry(event.ts, &exp_side, &exp_seq, &exp_ts)) {
      DriverEvent<R, S> e;
      e.op = exp_side == StreamSide::kR ? DriverOp::kExpireR
                                        : DriverOp::kExpireS;
      e.seq = exp_seq;
      e.ts = exp_ts;
      script.events.push_back(e);
    }

    DriverEvent<R, S> arrive;
    arrive.ts = event.ts;
    if (event.side == StreamSide::kR) {
      arrive.op = DriverOp::kArriveR;
      arrive.seq = script.r_count++;
      arrive.r = event.r;
    } else {
      arrive.op = DriverOp::kArriveS;
      arrive.seq = script.s_count++;
      arrive.s = event.s;
    }
    script.events.push_back(arrive);

    if (tracker.OnArrival(event.side, arrive.seq, arrive.ts, &exp_seq,
                          &exp_ts)) {
      DriverEvent<R, S> e;
      e.op = event.side == StreamSide::kR ? DriverOp::kExpireR
                                          : DriverOp::kExpireS;
      e.seq = exp_seq;
      e.ts = exp_ts;
      script.events.push_back(e);
    }
  }

  if (flush_at_end) {
    DriverEvent<R, S> flush_r;
    flush_r.op = DriverOp::kFlushR;
    DriverEvent<R, S> flush_s;
    flush_s.op = DriverOp::kFlushS;
    script.events.push_back(flush_r);
    script.events.push_back(flush_s);
  }
  return script;
}

}  // namespace sjoin
