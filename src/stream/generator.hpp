// Workload generation for the paper's benchmark (Section 7.1): join
// attributes uniform in 1..10000, which yields the reported ~1:250,000 hit
// rate for the two-dimensional +/-10 band join. Arrivals alternate R/S with
// symmetric data rates (|R| = |S|), as in the paper.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "common/schema.hpp"
#include "common/types.hpp"
#include "stream/trace.hpp"

namespace sjoin {

inline constexpr int64_t kPaperKeyDomain = 10000;

/// Uniform R tuple; key_domain controls the join hit rate.
inline RTuple MakeBandR(Rng& rng, int64_t key_domain = kPaperKeyDomain) {
  RTuple r;
  r.x = static_cast<int32_t>(rng.UniformInt(1, key_domain));
  r.y = static_cast<float>(rng.UniformInt(1, key_domain));
  r.z.Assign("payload-r");
  return r;
}

/// Uniform S tuple.
inline STuple MakeBandS(Rng& rng, int64_t key_domain = kPaperKeyDomain) {
  STuple s;
  s.a = static_cast<int32_t>(rng.UniformInt(1, key_domain));
  s.b = static_cast<float>(rng.UniformInt(1, key_domain));
  s.c = rng.UniformDouble();
  s.d = rng.Chance(0.5);
  return s;
}

/// Alternating R/S arrivals, `per_stream` each, spaced `period_us` apart
/// (period_us is the gap between *consecutive arrivals*, so the per-stream
/// inter-arrival time is 2 * period_us).
inline Trace<RTuple, STuple> MakeBandTrace(std::size_t per_stream,
                                           int64_t period_us, uint64_t seed,
                                           int64_t key_domain =
                                               kPaperKeyDomain) {
  Rng rng(seed);
  Trace<RTuple, STuple> trace;
  trace.reserve(per_stream * 2);
  Timestamp ts = 0;
  for (std::size_t i = 0; i < per_stream; ++i) {
    trace.push_back(ArriveR<RTuple, STuple>(ts, MakeBandR(rng, key_domain)));
    ts += period_us;
    trace.push_back(ArriveS<RTuple, STuple>(ts, MakeBandS(rng, key_domain)));
    ts += period_us;
  }
  return trace;
}

}  // namespace sjoin
