// Sharded multi-pipeline scale-out (DESIGN.md Section 13). A
// ShardedJoinSession runs N independent JoinSession pipelines ("shards"),
// each placed on its own NUMA node, behind the SAME single-session API and
// OutputHandler contract:
//
//   partitioning driver — ONE global driver owns sequence numbering,
//     monotonic timestamps, window bookkeeping (a single ExpiryTracker over
//     the global arrival order) and admission. Every arrival is routed by
//     the resolved PartitionPolicy (stream/partitioner.hpp): equi-joins
//     hash both sides on the join key; band/range predicates replicate one
//     side and round-robin the other. Expiries are routed to exactly the
//     shards that received the tuple (a per-side FIFO of partitioned-side
//     routes — global expiry order is per-side FIFO, so the front always
//     matches).
//   merging collector — per-shard output handlers feed one merge-level
//     QueryRouter, so per-query attribution, epoch retirement
//     (OnEpochDrained = min over shard drained epochs), punctuations
//     (min over shard punctuations), loss accounting (OnLoss aggregated
//     across shards) and latency histograms (LatencyHistogram::Merge) look
//     exactly like a single session to the registered handlers.
//
// Correctness: restricting the global driver-event sequence to one shard's
// subset preserves relative order, so a pair (r, s) is live-overlapping on
// its shard iff it is live-overlapping globally; hash partitioning puts
// every matching pair on one shard (ShardKeyTraits contract), replication
// puts every candidate pair on exactly one shard. The result multiset is
// therefore EXACTLY the single-shard oracle's — proven per engine by
// tests/test_sharded.cpp and re-proven on every PR by the CI
// sharded-equivalence leg.
//
// Overload control runs at the sharding driver only (per-shard admission is
// rejected by validation): one latency budget governs the whole session,
// sheds are recorded against global sequence numbers, and each loss gap is
// injected in-band into exactly one shard — the merge router then reports
// it exactly once per handler, keeping the PR 6 invariant
// tuples_lost_reported == tuples_shed after drain.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "core/join_session.hpp"
#include "runtime/topology.hpp"
#include "stream/admission.hpp"
#include "stream/handlers.hpp"
#include "stream/message.hpp"
#include "stream/partitioner.hpp"
#include "stream/script.hpp"
#include "stream/stats.hpp"

namespace sjoin {

struct ShardedJoinConfig {
  /// Per-shard engine configuration (engine, windows, parallelism,
  /// threading, placement...). `shard.topology` is the machine model the
  /// shards are spread over: shard k is placed on the k-th NUMA node
  /// (round-robin) via Topology::OnNode. Per-shard overload fields must
  /// stay disabled — admission runs at the sharding driver (below).
  JoinConfig shard;

  /// Number of independent pipeline shards. Must be >= 1; 1 degenerates to
  /// a plain JoinSession behind the same API.
  int shards = 2;

  /// How the two input streams are split (stream/partitioner.hpp). kAuto
  /// resolves from the predicate type's metadata.
  PartitionPolicy partition = PartitionPolicy::kAuto;

  /// Sharding-level overload control (DESIGN.md Section 12): one budget and
  /// policy for the whole session, applied at the partitioning driver
  /// against the summed shard backlog and the merged latency EWMA.
  int64_t latency_budget_us = 0;
  OverloadPolicy overload_policy = OverloadPolicy::kNone;
};

/// Rejects shard counts and policies the predicate set cannot support.
/// Throws std::invalid_argument naming the offending field AND value.
template <typename R, typename S, typename Pred>
void ValidateShardedJoinConfig(const ShardedJoinConfig& config) {
  if (config.shards < 1) {
    throw std::invalid_argument(
        "ShardedJoinConfig: shards must be >= 1, got " +
        std::to_string(config.shards));
  }
  if (config.shard.latency_budget_us != 0 ||
      config.shard.overload_policy != OverloadPolicy::kNone) {
    throw std::invalid_argument(
        std::string("ShardedJoinConfig: per-shard overload control must stay "
                    "disabled (got shard.latency_budget_us = ") +
        std::to_string(config.shard.latency_budget_us) +
        ", shard.overload_policy = \"" + ToString(config.shard.overload_policy) +
        "\"); admission runs at the sharding driver, which alone sees the "
        "global sequence numbers the loss accounting is expressed in — set "
        "ShardedJoinConfig::latency_budget_us / overload_policy instead");
  }
  if (config.latency_budget_us < 0) {
    throw std::invalid_argument(
        "ShardedJoinConfig: latency_budget_us must be >= 0 (0 disables "
        "admission), got " +
        std::to_string(config.latency_budget_us));
  }
  if (config.overload_policy != OverloadPolicy::kNone &&
      config.latency_budget_us == 0) {
    throw std::invalid_argument(
        std::string("ShardedJoinConfig: overload_policy \"") +
        ToString(config.overload_policy) +
        "\" requires a latency budget to shed against; got "
        "latency_budget_us = 0 (set a positive budget, or use policy "
        "\"none\")");
  }
  // Resolution throws when the requested policy is infeasible for the
  // predicate type (kHashKey without ShardKeyTraits).
  const PartitionPolicy resolved =
      ResolvePartitionPolicy<Pred, R, S>(config.partition);
  // Chase-convergence envelope for the handshake join: HSJ's expiry chase
  // (hsj_node.hpp) converges only while each shard's live window stays
  // comfortably above the pipeline length — with near-empty segments the
  // chase flip-flops against self-balancing relocations until it exhausts
  // its hop budget and leaks the tuple. Partitioning thins a side's stream
  // by the shard count, so the PER-SHARD window is what must clear the
  // floor. Reject configs below it instead of racing.
  if (config.shard.algorithm == Algorithm::kHandshake && config.shards > 1) {
    const int64_t floor =
        std::max<int64_t>(8, 2 * static_cast<int64_t>(config.shard.parallelism));
    auto check_side = [&](const char* side, const WindowSpec& w) {
      const int64_t global_tuples =
          w.is_count() ? w.size : config.shard.hsj_window_tuples_hint;
      const int64_t per_shard = global_tuples / config.shards;
      if (per_shard < floor) {
        throw std::invalid_argument(
            std::string("ShardedJoinConfig: handshake join needs a per-shard "
                        "live window of at least ") +
            std::to_string(floor) + " tuples (max(8, 2 * parallelism " +
            std::to_string(config.shard.parallelism) + ")) on every " +
            "partitioned side for its expiry chase to converge; side " + side +
            " has " + std::to_string(global_tuples) + " / " +
            std::to_string(config.shards) + " shards = " +
            std::to_string(per_shard) +
            ". Use fewer shards, a larger window, or another engine.");
      }
    };
    const bool r_thinned = resolved == PartitionPolicy::kHashKey ||
                           resolved == PartitionPolicy::kReplicateS;
    const bool s_thinned = resolved == PartitionPolicy::kHashKey ||
                           resolved == PartitionPolicy::kReplicateR;
    if (r_thinned) check_side("R", config.shard.window_r);
    if (s_thinned) check_side("S", config.shard.window_s);
  }
  ValidateJoinConfig(config.shard);
}

template <typename R, typename S, typename Pred>
class ShardedJoinSession {
 public:
  using Shard = JoinSession<R, S, Pred>;
  using QueryHandle = typename Shard::QueryHandle;

  explicit ShardedJoinSession(const ShardedJoinConfig& config)
      : config_(config),
        resolved_(ResolvePartitionPolicy<Pred, R, S>(config.partition)),
        tracker_(config.shard.window_r, config.shard.window_s) {
    ValidateShardedJoinConfig<R, S, Pred>(config_);
    BuildShards();
  }

  ~ShardedJoinSession() { Stop(); }

  ShardedJoinSession(const ShardedJoinSession&) = delete;
  ShardedJoinSession& operator=(const ShardedJoinSession&) = delete;

  // -- Query lifecycle (mirrors JoinSession) ---------------------------------

  /// Registers a query on every shard under one merge-level id; results
  /// from any shard are routed to `handler` by that id. Works before the
  /// first Push and on a running session (a new epoch is installed on
  /// every shard at the same global ingest boundary).
  QueryHandle AddQuery(Pred pred, OutputHandler<R, S>* handler) {
    const QueryId id = merge_router_.Register(handler);
    live_.push_back(1);
    if (started_) {
      ++current_epoch_;
      merge_router_.BeginEpoch(current_epoch_, LiveIds(), {});
    }
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const QueryHandle h = shards_[k]->AddQuery(pred, outputs_[k].get());
      if (h.id != id) {
        throw std::logic_error(
            "ShardedJoinSession: shard/merge query id diverged");
      }
    }
    if (started_) MergeEpochDrain();
    return QueryHandle{id};
  }

  /// Removes a live query on every shard at the same global boundary; its
  /// handler receives OnQueryRetired exactly once, after every shard has
  /// drained the removal epoch. Returns false when the handle is unknown or
  /// already removed.
  bool RemoveQuery(QueryHandle handle) {
    const QueryId id = handle.id;
    if (id >= live_.size() || live_[id] == 0) return false;
    live_[id] = 0;
    if (started_) {
      ++current_epoch_;
      merge_router_.BeginEpoch(current_epoch_, LiveIds(), {id});
    } else {
      pre_start_removed_.push_back(id);
    }
    for (auto& shard : shards_) {
      if (!shard->RemoveQuery(handle)) {
        throw std::logic_error(
            "ShardedJoinSession: shard rejected RemoveQuery the merge layer "
            "accepted (id " + std::to_string(id) + ")");
      }
    }
    if (started_) MergeEpochDrain();
    return true;
  }

  std::size_t query_count() const { return LiveCount(); }
  bool query_live(QueryId id) const {
    return id < live_.size() && live_[id] != 0;
  }

  // -- Ingestion (the global partitioning driver) ----------------------------

  void PushR(const R& r, Timestamp ts) {
    EnsureStarted();
    ts = Monotonic(ts);
    EmitTimeExpiries(ts);
    const Seq seq = r_seq_++;
    if (ShedAtIngest(StreamSide::kR, seq)) return;  // tracker never sees it
    EmitPendingLoss(StreamSide::kR);
    const int target = TargetShardR(r, seq);
    if (target < 0) {
      for (auto& shard : shards_) shard->PushRAt(r, ts, seq);
    } else {
      shards_[static_cast<std::size_t>(target)]->PushRAt(r, ts, seq);
      route_r_.push_back(Route{seq, target});
    }
    EmitCountExpiry(StreamSide::kR, seq, ts);
  }

  void PushS(const S& s, Timestamp ts) {
    EnsureStarted();
    ts = Monotonic(ts);
    EmitTimeExpiries(ts);
    const Seq seq = s_seq_++;
    if (ShedAtIngest(StreamSide::kS, seq)) return;
    EmitPendingLoss(StreamSide::kS);
    const int target = TargetShardS(s, seq);
    if (target < 0) {
      for (auto& shard : shards_) shard->PushSAt(s, ts, seq);
    } else {
      shards_[static_cast<std::size_t>(target)]->PushSAt(s, ts, seq);
      route_s_.push_back(Route{seq, target});
    }
    EmitCountExpiry(StreamSide::kS, seq, ts);
  }

  /// Span convenience (semantically the per-tuple loop; the partitioning
  /// driver routes tuple by tuple, so there is no cross-shard batch to
  /// stage).
  void PushR(std::span<const R> rs, std::span<const Timestamp> tss) {
    if (rs.size() != tss.size()) {
      throw std::invalid_argument(
          "ShardedJoinSession::PushR: tuple and timestamp spans differ in "
          "size");
    }
    for (std::size_t i = 0; i < rs.size(); ++i) PushR(rs[i], tss[i]);
  }

  void PushS(std::span<const S> ss, std::span<const Timestamp> tss) {
    if (ss.size() != tss.size()) {
      throw std::invalid_argument(
          "ShardedJoinSession::PushS: tuple and timestamp spans differ in "
          "size");
    }
    for (std::size_t i = 0; i < ss.size(); ++i) PushS(ss[i], tss[i]);
  }

  // -- Output ----------------------------------------------------------------

  /// Polls every shard and advances the merged epoch-drain watermark.
  void Poll() {
    for (auto& shard : shards_) shard->Poll();
    MergeEpochDrain();
  }

  /// Ends the input on every shard and drains everything to the handlers.
  void FinishInput() {
    if (!started_ || finished_) return;
    finished_ = true;
    EmitPendingLoss(StreamSide::kR);
    EmitPendingLoss(StreamSide::kS);
    for (auto& shard : shards_) shard->FinishInput();
    for (auto& shard : shards_) shard->Poll();
    MergeEpochDrain();
  }

  void Stop() {
    for (auto& shard : shards_) shard->Stop();
    MergeEpochDrain();
  }

  // -- Introspection ---------------------------------------------------------

  uint64_t results_collected() const { return merge_router_.total_collected(); }
  uint64_t results_collected(QueryId q) const {
    return merge_router_.collected(q);
  }

  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// The resolved (never kAuto) partitioning in effect.
  PartitionPolicy partition() const { return resolved_; }
  const ShardedJoinConfig& config() const { return config_; }
  bool started() const { return started_; }

  Epoch current_epoch() const { return current_epoch_; }
  Epoch drained_epoch() const { return merge_router_.drained_epoch(); }

  /// Anomaly counters across all shards plus merge-level misroutes; must
  /// stay zero.
  uint64_t pipeline_anomalies() const {
    uint64_t n = merge_router_.misrouted();
    for (const auto& shard : shards_) n += shard->pipeline_anomalies();
    return n;
  }

  /// Sharding-level admission (mutable so tests can install the
  /// deterministic force-shed hook before the first Push).
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }

  uint64_t tuples_shed(StreamSide side) const {
    return admission_.shed_count(side);
  }
  uint64_t tuples_lost_reported(StreamSide side) const {
    return merge_router_.lost(side);
  }

  /// End-to-end latency distribution merged across all shards
  /// (LatencyHistogram::Merge — the merging-collector contract).
  LatencyHistogram merged_latency_histogram() const {
    LatencyHistogram merged;
    for (const LatencyHistogram& h : shard_hists_) merged.Merge(h);
    return merged;
  }

  /// Per-shard results delivered so far (load-balance introspection).
  uint64_t shard_results(int shard) const {
    return shard_hists_[static_cast<std::size_t>(shard)].count();
  }

 private:
  /// Per-shard output adapter: every shard delivers its results,
  /// punctuations and loss bounds here; the owner merges them into the
  /// single-session handler contract. Shard-level epoch drains and
  /// retirements are intentionally ignored — the merge layer re-derives
  /// both from the min over shard drained epochs, so a handler never hears
  /// about an epoch some other shard is still draining.
  struct ShardOutput : OutputHandler<R, S> {
    ShardedJoinSession* owner = nullptr;
    int shard = 0;
    void OnResult(const ResultMsg<R, S>& m) override {
      owner->OnShardResult(shard, m);
    }
    void OnPunctuation(Timestamp tp) override {
      owner->OnShardPunctuation(shard, tp);
    }
    void OnLoss(StreamSide side, Seq first_seq, uint64_t count) override {
      owner->merge_router_.OnLoss(side, first_seq, count);
    }
    void OnEpochDrained(Epoch /*epoch*/) override {}
    void OnQueryRetired(QueryId /*query*/) override {}
  };

  struct Route {
    Seq seq = 0;
    int shard = 0;
  };

  std::size_t LiveCount() const {
    std::size_t n = 0;
    for (uint8_t alive : live_) n += alive;
    return n;
  }

  std::vector<QueryId> LiveIds() const {
    std::vector<QueryId> ids;
    for (QueryId q = 0; q < live_.size(); ++q) {
      if (live_[q] != 0) ids.push_back(q);
    }
    return ids;
  }

  /// Builds the member sessions, spreading threaded shards over the NUMA
  /// nodes of the configured (or detected) topology round-robin: shard k
  /// gets Topology::OnNode(node k mod nodes) as its whole machine model, so
  /// its PlacementPlan pins pipeline, helpers and channel memory onto that
  /// node alone. A single shard keeps the caller's topology untouched
  /// (exact degeneration to the plain session).
  void BuildShards() {
    std::shared_ptr<const Topology> topo = config_.shard.topology;
    std::vector<int> nodes;
    if (config_.shard.threaded && config_.shards > 1) {
      if (topo == nullptr) {
        topo = std::make_shared<const Topology>(Topology::Detect());
      }
      for (const TopoCpu& c : topo->entries()) {
        if (std::find(nodes.begin(), nodes.end(), c.node) == nodes.end()) {
          nodes.push_back(c.node);
        }
      }
    }
    shard_hists_.resize(static_cast<std::size_t>(config_.shards));
    shard_punct_.assign(static_cast<std::size_t>(config_.shards),
                        kMinTimestamp);
    for (int k = 0; k < config_.shards; ++k) {
      JoinConfig shard_config = config_.shard;
      if (!nodes.empty()) {
        Topology sub =
            topo->OnNode(nodes[static_cast<std::size_t>(k) % nodes.size()]);
        shard_config.topology =
            sub.cpu_count() > 0
                ? std::make_shared<const Topology>(std::move(sub))
                : topo;
      }
      auto output = std::make_unique<ShardOutput>();
      output->owner = this;
      output->shard = k;
      outputs_.push_back(std::move(output));
      shards_.push_back(std::make_unique<Shard>(shard_config));
    }
  }

  void EnsureStarted() {
    if (started_) return;
    if (LiveCount() == 0) {
      throw std::logic_error(
          "ShardedJoinSession: cannot start ingestion with 0 live queries "
          "(session state: not started, " + std::to_string(live_.size()) +
          " registered, " + std::to_string(pre_start_removed_.size()) +
          " removed before start); register at least one query via "
          "AddQuery before the first Push");
    }
    started_ = true;
    {
      AdmissionController::Options adm;
      adm.budget_ns = config_.latency_budget_us * 1000;
      adm.policy = config_.overload_policy;
      admission_.Configure(adm);  // preserves a pre-installed force hook
    }
    merge_router_.BeginEpoch(0, LiveIds(), pre_start_removed_);
    // Nothing precedes epoch 0: drained by definition (also retires
    // queries removed before the session ever started).
    merge_router_.OnEpochDrained(0);
    for (auto& shard : shards_) shard->Start();
  }

  // -- Partitioning ----------------------------------------------------------

  /// Shard owning an R arrival, or -1 to replicate it to every shard.
  int TargetShardR(const R& r, Seq seq) const {
    switch (resolved_) {
      case PartitionPolicy::kHashKey:
        if constexpr (ShardKeyTraits<Pred, R, S>::kEnabled) {
          return ShardOfKey(ShardKeyTraits<Pred, R, S>::KeyR(r),
                            shard_count());
        }
        return 0;  // unreachable: kHashKey is rejected without traits
      case PartitionPolicy::kReplicateR:
        return -1;
      case PartitionPolicy::kReplicateS:
        return static_cast<int>(seq % static_cast<Seq>(shards_.size()));
      case PartitionPolicy::kAuto:
        break;  // unreachable: resolved_ is never kAuto
    }
    return 0;
  }

  int TargetShardS(const S& s, Seq seq) const {
    switch (resolved_) {
      case PartitionPolicy::kHashKey:
        if constexpr (ShardKeyTraits<Pred, R, S>::kEnabled) {
          return ShardOfKey(ShardKeyTraits<Pred, R, S>::KeyS(s),
                            shard_count());
        }
        return 0;
      case PartitionPolicy::kReplicateS:
        return -1;
      case PartitionPolicy::kReplicateR:
        return static_cast<int>(seq % static_cast<Seq>(shards_.size()));
      case PartitionPolicy::kAuto:
        break;
    }
    return 0;
  }

  /// True when arrivals of `side` enter exactly one shard (and expiries
  /// must follow the recorded route); false when the side is replicated
  /// (expiries broadcast).
  bool SidePartitioned(StreamSide side) const {
    if (resolved_ == PartitionPolicy::kHashKey) return true;
    return side == StreamSide::kR
               ? resolved_ == PartitionPolicy::kReplicateS
               : resolved_ == PartitionPolicy::kReplicateR;
  }

  // -- Global driver (window bookkeeping over the global arrival order) ------

  Timestamp Monotonic(Timestamp ts) {
    if (ts < last_ts_) ts = last_ts_;
    last_ts_ = ts;
    return ts;
  }

  void EmitTimeExpiries(Timestamp ts) {
    StreamSide side;
    Seq seq;
    Timestamp expired_ts;
    while (tracker_.PopTimeExpiry(ts, &side, &seq, &expired_ts)) {
      RouteExpiry(side, seq, expired_ts);
    }
  }

  void EmitCountExpiry(StreamSide side, Seq seq, Timestamp ts) {
    Seq expired_seq;
    Timestamp expired_ts;
    if (tracker_.OnArrival(side, seq, ts, &expired_seq, &expired_ts)) {
      RouteExpiry(side, expired_seq, expired_ts);
    }
  }

  /// Sends the expiry of tuple `seq` to exactly the shards that hold it.
  /// Per-side expiries leave the tracker in FIFO arrival order — the same
  /// order the route records were pushed — so the front record must match.
  void RouteExpiry(StreamSide side, Seq seq, Timestamp ts) {
    if (!SidePartitioned(side)) {
      for (auto& shard : shards_) shard->PushExpiry(side, seq, ts);
      return;
    }
    auto& route = side == StreamSide::kR ? route_r_ : route_s_;
    if (route.empty() || route.front().seq != seq) {
      throw std::logic_error(
          "ShardedJoinSession: expiry routing desynchronized (side " +
          std::string(side == StreamSide::kR ? "R" : "S") + ", expiry seq " +
          std::to_string(seq) +
          (route.empty() ? ", no route recorded"
                         : ", front route seq " +
                               std::to_string(route.front().seq)) +
          ")");
    }
    const int shard = route.front().shard;
    route.pop_front();
    shards_[static_cast<std::size_t>(shard)]->PushExpiry(side, seq, ts);
  }

  // -- Overload control (sharding-level; DESIGN.md Sections 12 + 13) ---------

  bool ShedAtIngest(StreamSide side, Seq seq) {
    if (!admission_.enabled() && !admission_.has_force_shed()) return false;
    const int64_t now = NowNs();
    if (!admission_.ShouldShed(side, seq, now, now, TotalBacklog())) {
      return false;
    }
    admission_.RecordShed(side, seq);
    return true;
  }

  /// Injects every closed gap of `side` into exactly ONE shard (the first):
  /// the merge router broadcasts each bound once per handler, so delivering
  /// it through a single shard keeps the accounting exactly-once while
  /// staying in-band with that shard's result stream.
  void EmitPendingLoss(StreamSide side) {
    LossBound gap;
    while (admission_.TakeGap(side, &gap)) {
      shards_.front()->InjectLoss(gap.side, gap.first_seq, gap.count);
    }
  }

  std::size_t TotalBacklog() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) n += shard->ingest_backlog();
    return n;
  }

  // -- Merging collector -----------------------------------------------------

  void OnShardResult(int shard, const ResultMsg<R, S>& m) {
    if (m.ready_wall_ns > 0) {
      const int64_t now = NowNs();
      shard_hists_[static_cast<std::size_t>(shard)].Add(now - m.ready_wall_ns);
      admission_.ObserveResult(now - m.ready_wall_ns, now);
    }
    merge_router_.OnResult(m);
  }

  /// Punctuation merging: a timestamp is safe for the whole session only
  /// once EVERY shard has punctuated it (a shard that lags may still emit
  /// results below its own mark). The merged mark is the min over the
  /// shards' latest marks, forwarded whenever it advances.
  void OnShardPunctuation(int shard, Timestamp tp) {
    auto& mark = shard_punct_[static_cast<std::size_t>(shard)];
    mark = std::max(mark, tp);
    Timestamp merged = shard_punct_.front();
    for (Timestamp t : shard_punct_) merged = std::min(merged, t);
    if (merged > last_merged_punct_) {
      last_merged_punct_ = merged;
      merge_router_.OnPunctuation(merged);
    }
  }

  /// Epoch-drain merging: an epoch is drained session-wide once every
  /// shard has drained it. The merge router then retires removed queries
  /// and fires OnEpochDrained/OnQueryRetired exactly once.
  void MergeEpochDrain() {
    if (!started_ || shards_.empty()) return;
    Epoch merged = shards_.front()->drained_epoch();
    for (const auto& shard : shards_) {
      merged = std::min(merged, shard->drained_epoch());
    }
    merge_router_.OnEpochDrained(merged);
  }

  ShardedJoinConfig config_;
  PartitionPolicy resolved_;
  ExpiryTracker tracker_;
  QueryRouter<R, S> merge_router_;
  AdmissionController admission_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ShardOutput>> outputs_;
  std::vector<LatencyHistogram> shard_hists_;
  std::vector<Timestamp> shard_punct_;
  Timestamp last_merged_punct_ = kMinTimestamp;

  // Partitioned-side expiry routing: FIFO of (seq, shard) per side.
  std::deque<Route> route_r_;
  std::deque<Route> route_s_;

  // Query lifecycle state (mirrors JoinSession).
  std::vector<uint8_t> live_;
  std::vector<QueryId> pre_start_removed_;
  Epoch current_epoch_ = 0;

  Seq r_seq_ = 0;
  Seq s_seq_ = 0;
  Timestamp last_ts_ = kMinTimestamp;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace sjoin
